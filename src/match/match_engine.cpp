#include "fairmpi/match/match_engine.hpp"

#include <cstring>
#include <limits>
#include <mutex>

#include "fairmpi/common/error.hpp"
#include "fairmpi/common/timing.hpp"

namespace fairmpi::match {

using spc::Counter;

MatchEngine::MatchEngine(int num_ranks, bool allow_overtaking, spc::CounterSet& counters)
    : allow_overtaking_(allow_overtaking), spc_(counters),
      peers_(static_cast<std::size_t>(num_ranks)) {
  FAIRMPI_CHECK(num_ranks >= 1);
}

void MatchEngine::deliver(p2p::Request* req, const fabric::Packet& pkt) {
  if (pkt.hdr.opcode == fabric::Opcode::kRndvRts) {
    // Rendezvous: the envelope pairs with the receive here (preserving the
    // matching semantics), but the data transfer and the completion are
    // the rendezvous protocol's job.
    FAIRMPI_CHECK_MSG(rndv_hook_ != nullptr, "RndvRts received with no hook installed");
    rndv_hook_->on_rts_matched(req, pkt);
    return;
  }
  p2p::Status status;
  status.source = static_cast<int>(pkt.hdr.src_rank);
  status.tag = pkt.hdr.tag;
  status.size = pkt.hdr.payload_size;
  status.truncated = pkt.hdr.payload_size > req->capacity();
  const std::size_t n =
      status.truncated ? req->capacity() : static_cast<std::size_t>(pkt.hdr.payload_size);
  if (n != 0) std::memcpy(req->buffer(), pkt.payload(), n);
  spc_.add(Counter::kMessagesReceived);
  spc_.add(Counter::kBytesReceived, pkt.hdr.payload_size);
  req->complete(status);
}

std::size_t MatchEngine::match_one(fabric::Packet&& pkt) {
  const int src = static_cast<int>(pkt.hdr.src_rank);
  const int tag = pkt.hdr.tag;
  PeerState& ps = peer(src);

  // Queue search: earliest posted receive (by post stamp) whose filters
  // accept this message, across the source-specific and wildcard queues.
  auto accepts = [&](const p2p::Request* req) {
    return req->tag_filter() == p2p::kAnyTag || req->tag_filter() == tag;
  };

  std::size_t scanned = 0;
  std::deque<p2p::Request*>::iterator spec_it = ps.posted.end();
  for (auto it = ps.posted.begin(); it != ps.posted.end(); ++it, ++scanned) {
    if (accepts(*it)) {
      spec_it = it;
      break;
    }
  }
  std::deque<p2p::Request*>::iterator any_it = posted_any_.end();
  for (auto it = posted_any_.begin(); it != posted_any_.end(); ++it, ++scanned) {
    if (accepts(*it)) {
      any_it = it;
      break;
    }
  }
  spc_.add(Counter::kPostedQueueDepth, scanned);

  p2p::Request* winner = nullptr;
  if (spec_it != ps.posted.end() && any_it != posted_any_.end()) {
    // Both candidates match: the MPI matching order is post order.
    if ((*spec_it)->post_stamp < (*any_it)->post_stamp) {
      winner = *spec_it;
      ps.posted.erase(spec_it);
    } else {
      winner = *any_it;
      posted_any_.erase(any_it);
    }
  } else if (spec_it != ps.posted.end()) {
    winner = *spec_it;
    ps.posted.erase(spec_it);
  } else if (any_it != posted_any_.end()) {
    winner = *any_it;
    posted_any_.erase(any_it);
  }

  if (winner != nullptr) {
    deliver(winner, pkt);
    return 1;
  }

  spc_.add(Counter::kUnexpectedMessages);
  ps.unexpected.push_back(Unexpected{arrival_stamp_++, std::move(pkt)});
  return 0;
}

std::size_t MatchEngine::incoming(fabric::Packet&& pkt) {
  const int src = static_cast<int>(pkt.hdr.src_rank);
  FAIRMPI_CHECK_MSG(src >= 0 && src < static_cast<int>(peers_.size()),
                    "packet from unknown rank");

  std::scoped_lock guard(lock_);
  std::uint64_t elapsed = 0;
  std::size_t completions = 0;
  {
    ScopedElapsed timer(elapsed);
    spc_.add(Counter::kMatchAttempts);

    if (allow_overtaking_) {
      // Overtaking: every message is immediately matchable (§IV-D).
      completions = match_one(std::move(pkt));
    } else {
      PeerState& ps = peer(src);
      const std::uint32_t seq = pkt.hdr.seq;
      if (seq != ps.expected_seq) {
        // Sequence numbers never repeat per (comm, src->dst) stream and the
        // expected counter only advances past processed messages, so an
        // unexpected seq must be from the future.
        FAIRMPI_CHECK_MSG(
            static_cast<std::int32_t>(seq - ps.expected_seq) > 0,
            "duplicate or stale sequence number");
        spc_.add(Counter::kOutOfSequence);
        ps.reorder.emplace(seq, std::move(pkt));
        ++reorder_total_;
        spc_.update_max(Counter::kOosBufferPeak, reorder_total_);
      } else {
        ++ps.expected_seq;
        completions += match_one(std::move(pkt));
        // Drain any buffered messages that are now in order.
        for (auto it = ps.reorder.find(ps.expected_seq); it != ps.reorder.end();
             it = ps.reorder.find(ps.expected_seq)) {
          fabric::Packet next = std::move(it->second);
          ps.reorder.erase(it);
          --reorder_total_;
          ++ps.expected_seq;
          completions += match_one(std::move(next));
        }
      }
    }
  }
  spc_.add(Counter::kMatchTimeNs, elapsed);
  return completions;
}

bool MatchEngine::post(p2p::Request* req) {
  FAIRMPI_CHECK(req->kind() == p2p::Request::Kind::kRecv);
  const int src = req->source_filter();
  const int tag = req->tag_filter();
  FAIRMPI_CHECK_MSG(src == p2p::kAnySource ||
                        (src >= 0 && src < static_cast<int>(peers_.size())),
                    "invalid source filter");

  std::scoped_lock guard(lock_);
  std::uint64_t elapsed = 0;
  bool matched = false;
  {
    ScopedElapsed timer(elapsed);
    spc_.add(Counter::kMatchAttempts);

    auto accepts = [&](const Unexpected& u) {
      return tag == p2p::kAnyTag || tag == u.pkt.hdr.tag;
    };

    // Search the unexpected queue(s) for the earliest-arrived match.
    PeerState* best_ps = nullptr;
    std::deque<Unexpected>::iterator best_it;
    std::uint64_t best_arrival = std::numeric_limits<std::uint64_t>::max();
    std::size_t scanned = 0;

    auto scan_peer = [&](PeerState& ps) {
      for (auto it = ps.unexpected.begin(); it != ps.unexpected.end(); ++it, ++scanned) {
        if (accepts(*it)) {
          if (it->arrival < best_arrival) {
            best_arrival = it->arrival;
            best_ps = &ps;
            best_it = it;
          }
          break;  // within one peer, earliest match is the first match
        }
      }
    };

    if (src == p2p::kAnySource) {
      for (auto& ps : peers_) scan_peer(ps);
    } else {
      scan_peer(peer(src));
    }
    spc_.add(Counter::kUnexpectedQueueDepth, scanned);

    if (best_ps != nullptr) {
      deliver(req, best_it->pkt);
      best_ps->unexpected.erase(best_it);
      matched = true;
    } else {
      req->post_stamp = post_stamp_++;
      if (src == p2p::kAnySource) {
        posted_any_.push_back(req);
      } else {
        peer(src).posted.push_back(req);
      }
    }
  }
  spc_.add(Counter::kMatchTimeNs, elapsed);
  return matched;
}

bool MatchEngine::probe(int src, int tag, p2p::Status* status) {
  FAIRMPI_CHECK_MSG(src == p2p::kAnySource ||
                        (src >= 0 && src < static_cast<int>(peers_.size())),
                    "invalid source filter");
  std::scoped_lock guard(lock_);

  auto accepts = [&](const Unexpected& u) {
    return tag == p2p::kAnyTag || tag == u.pkt.hdr.tag;
  };
  const Unexpected* best = nullptr;
  auto scan_peer = [&](const PeerState& ps) {
    for (const auto& u : ps.unexpected) {
      if (accepts(u)) {
        if (best == nullptr || u.arrival < best->arrival) best = &u;
        break;
      }
    }
  };
  if (src == p2p::kAnySource) {
    for (const auto& ps : peers_) scan_peer(ps);
  } else {
    scan_peer(peers_[static_cast<std::size_t>(src)]);
  }
  if (best == nullptr) return false;

  if (status != nullptr) {
    status->source = static_cast<int>(best->pkt.hdr.src_rank);
    status->tag = best->pkt.hdr.tag;
    status->size = best->pkt.hdr.opcode == fabric::Opcode::kRndvRts
                       ? p2p::read_rts_body(best->pkt).total
                       : best->pkt.hdr.payload_size;
    status->truncated = false;
  }
  return true;
}

std::size_t MatchEngine::unexpected_count() const noexcept {
  std::scoped_lock guard(lock_);
  std::size_t n = 0;
  for (const auto& ps : peers_) n += ps.unexpected.size();
  return n;
}

std::size_t MatchEngine::reorder_buffered() const noexcept {
  std::scoped_lock guard(lock_);
  return reorder_total_;
}

std::size_t MatchEngine::posted_count() const noexcept {
  std::scoped_lock guard(lock_);
  std::size_t n = posted_any_.size();
  for (const auto& ps : peers_) n += ps.posted.size();
  return n;
}

}  // namespace fairmpi::match
