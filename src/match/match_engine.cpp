#include "fairmpi/match/match_engine.hpp"

#include <bit>
#include <cstring>
#include <limits>

#include "fairmpi/common/error.hpp"
#include "fairmpi/common/timing.hpp"

namespace fairmpi::match {

using spc::Counter;

MatchEngine::MatchEngine(int num_ranks, bool allow_overtaking, spc::CounterSet& counters,
                         bool reliable)
    : allow_overtaking_(allow_overtaking), reliable_(reliable), spc_(counters),
      peers_(static_cast<std::size_t>(num_ranks)) {
  FAIRMPI_CHECK(num_ranks >= 1);
  // Force the one-time TSC calibration now, off the matching path: the
  // first to_ns() call busy-waits ~2 ms, which must not happen under lock_.
  (void)CycleClock::to_ns(1);
}

MatchEngine::~MatchEngine() {
  // Return parked unexpected nodes to the pool so their packets (which may
  // own pooled payload buffers) are destroyed; the slab pool itself frees
  // raw memory wholesale and does not run destructors.
  for (auto& ps : peers_) {
    while (Unexpected* n = ps.unexpected.pop_front()) {
      unexpected_pool_.release(n);
    }
  }
}

void MatchEngine::deliver(spc::CounterSet::Cursor& ctr, p2p::Request* req,
                          const fabric::Packet& pkt) {
  if (pkt.hdr.opcode == fabric::Opcode::kRndvRts) {
    // Rendezvous: the envelope pairs with the receive here (preserving the
    // matching semantics), but the data transfer and the completion are
    // the rendezvous protocol's job.
    FAIRMPI_CHECK_MSG(rndv_hook_ != nullptr, "RndvRts received with no hook installed");
    rndv_hook_->on_rts_matched(req, pkt);
    return;
  }
  p2p::Status status;
  status.source = static_cast<int>(pkt.hdr.src_rank);
  status.tag = pkt.hdr.tag;
  status.size = pkt.hdr.payload_size;
  status.truncated = pkt.hdr.payload_size > req->capacity();
  const std::size_t n =
      status.truncated ? req->capacity() : static_cast<std::size_t>(pkt.hdr.payload_size);
  if (n != 0) std::memcpy(req->buffer(), pkt.payload(), n);
  // Count only when this delivery won the settle race: a request already
  // failed by ft propagation (racing arrival vs. fail_source) must not
  // inflate the delivery counters.
  if (req->complete(status)) {
    ctr.add(Counter::kMessagesReceived);
    ctr.add(Counter::kBytesReceived, pkt.hdr.payload_size);
  }
}

void MatchEngine::note_unexpected_add(PeerState& ps) {
  ++ps.unexpected_n;
  ++unexpected_total_;
  unexpected_mirror_.store(unexpected_total_, std::memory_order_relaxed);
}

void MatchEngine::note_unexpected_sub(PeerState& ps) {
  --ps.unexpected_n;
  --unexpected_total_;
  unexpected_mirror_.store(unexpected_total_, std::memory_order_relaxed);
}

std::size_t MatchEngine::match_one(spc::CounterSet::Cursor& ctr, fabric::Packet&& pkt,
                                   bool direct, Admission* admission) {
  const int src = static_cast<int>(pkt.hdr.src_rank);
  const int tag = pkt.hdr.tag;
  PeerState& ps = peer(src);

  // Queue search: earliest posted receive (by post stamp) whose filters
  // accept this message, across the source-specific and wildcard queues.
  auto accepts = [&](const p2p::Request* req) {
    return req->tag_filter() == p2p::kAnyTag || req->tag_filter() == tag;
  };

  std::size_t scanned = 0;
  p2p::Request* spec = nullptr;
  for (p2p::Request* r = ps.posted.front(); r != nullptr; r = PostedList::next(r)) {
    ++scanned;
    if (accepts(r)) {
      spec = r;
      break;
    }
  }
  p2p::Request* any = nullptr;
  for (p2p::Request* r = posted_any_.front(); r != nullptr; r = PostedList::next(r)) {
    ++scanned;
    if (accepts(r)) {
      any = r;
      break;
    }
  }
  ctr.add(Counter::kPostedQueueDepth, scanned);

  p2p::Request* winner = nullptr;
  if (spec != nullptr && any != nullptr) {
    // Both candidates match: the MPI matching order is post order.
    if (spec->post_stamp < any->post_stamp) {
      ps.posted.erase(spec);
      winner = spec;
    } else {
      posted_any_.erase(any);
      winner = any;
    }
  } else if (spec != nullptr) {
    ps.posted.erase(spec);
    winner = spec;
  } else if (any != nullptr) {
    posted_any_.erase(any);
    winner = any;
  }

  if (winner != nullptr) {
    deliver(ctr, winner, pkt);
    return 1;
  }

  // No posted receive: the message goes unexpected — the resource bounded
  // admission caps (DESIGN.md §5h). The uncapped configuration pays one
  // null-pointer branch here.
  if (gov_ != nullptr) {
    const overload::Limits& lim = gov_->limits();
    if (lim.unexpected_cap != 0 && ps.unexpected_n >= lim.unexpected_cap) {
      if (lim.unexpected_policy == overload::Policy::kShed) {
        if (direct) {
          // Shed at admission. The sequence number stays consumed (the
          // caller already advanced expected_seq), so the retransmit hits
          // the duplicate path — the shed ring there re-NACKs it. The rank
          // answers this packet with kNack instead of an ack, failing the
          // sender's tracked op typed kReceiverOverloaded.
          ps.shed_seqs[ps.shed_n % kShedMemory] = pkt.hdr.seq;
          ++ps.shed_n;
          ctr.add(Counter::kOverloadShedMessages);
          if (tracer_ != nullptr) {
            tracer_->record(trace::Event::kOverloadShed,
                            static_cast<std::uint32_t>(src), pkt.hdr.seq);
          }
          if (admission != nullptr) *admission = Admission::kShed;
          fabric::Packet drop = std::move(pkt);
          static_cast<void>(drop);
          return 0;
        }
        // Reorder-drain packet under kShed: it was already acked when it
        // parked, so shedding now would be silent loss. Admit — the
        // overshoot is bounded by the reorder window.
      } else if (!ps.paused) {
        // kQueue: latch the peer paused; the rank's progress loop trickles
        // its RX drains until post() observes the low watermark. The
        // message itself is admitted — backpressure lands on the
        // producer's ring, not on this already-delivered packet.
        ps.paused = true;
        gov_->pause_peer();
        ctr.add(Counter::kOverloadPausedPeers);
        if (tracer_ != nullptr) {
          tracer_->record(trace::Event::kOverloadPause,
                          static_cast<std::uint32_t>(src), 1);
        }
      }
    }
  }

  ctr.add(Counter::kUnexpectedMessages);
  Unexpected* node = unexpected_pool_.acquire();
  node->arrival = arrival_stamp_++;
  node->pkt = std::move(pkt);
  ps.unexpected.push_back(node);
  note_unexpected_add(ps);
  return 0;
}

void MatchEngine::park_out_of_sequence(spc::CounterSet::Cursor& ctr, PeerState& ps,
                                       fabric::Packet&& pkt) {
  const std::uint32_t seq = pkt.hdr.seq;
  // Unsigned distance from the in-order frontier; callers validated that
  // the packet is from the future, so delta >= 1.
  const std::uint32_t delta = seq - ps.expected_seq;
  if (delta < kReorderWindow) {
    if (!ps.reorder) {
      // First out-of-sequence arrival on this peer; one-time window setup.
      // lint: allow(hotpath-alloc) lazy one-time ring allocation per peer
      ps.reorder = std::make_unique<ReorderRing>();
    }
    const std::uint32_t idx = seq & (kReorderWindow - 1);
    ps.reorder->slot[idx] = std::move(pkt);
    ps.reorder->present |= std::uint64_t{1} << idx;
  } else {
    // More than a window ahead — possible only when >= kReorderWindow-1
    // messages are already parked, so the map cost is already amortized.
    // lint: allow(hotpath-alloc) beyond-window spill is the rare slow path
    ps.spill.emplace(seq, std::move(pkt));
  }
  ++reorder_total_;
  ctr.update_max(Counter::kOosBufferPeak, reorder_total_);
}

std::size_t MatchEngine::incoming(fabric::Packet&& pkt, Admission* admission) {
  const int src = static_cast<int>(pkt.hdr.src_rank);
  FAIRMPI_CHECK_MSG(src >= 0 && src < static_cast<int>(peers_.size()),
                    "packet from unknown rank");

  LockGuard guard(lock_);
  auto ctr = spc_.cursor();
  if (admission != nullptr) *admission = Admission::kAdmitted;
  if (revoked_) {
    // Revoked communicator: nothing will ever be posted again, so parking
    // this message as unexpected would just pin pooled payload memory.
    // Still acked (kAdmitted): the drop is deliberate, not overload.
    fabric::Packet sink = std::move(pkt);
    static_cast<void>(sink);
    return 0;
  }
  // §5h kQueue on a reliable fabric: defer at admission *before* the
  // sequence stream consumes this packet. The rank answers with neither
  // ack nor NACK, so the sender's retransmit clock re-presents it after the
  // queue drains below cap — the unexpected backlog is hard-bounded at the
  // cap and nothing is lost. A lossy fabric cannot defer (an unanswered
  // drop there is silent loss), so it falls through to the latch-and-
  // trickle soft throttle in match_one instead.
  if (admission != nullptr && gov_ != nullptr && reliable_) {
    const overload::Limits& lim = gov_->limits();
    PeerState& ps = peer(src);
    if (lim.unexpected_cap != 0 &&
        lim.unexpected_policy == overload::Policy::kQueue &&
        ps.unexpected_n >= lim.unexpected_cap) {
      if (!ps.paused) {
        ps.paused = true;
        gov_->pause_peer();
        ctr.add(Counter::kOverloadPausedPeers);
        if (tracer_ != nullptr) {
          tracer_->record(trace::Event::kOverloadPause,
                          static_cast<std::uint32_t>(src), 1);
        }
      }
      *admission = Admission::kDeferred;
      return 0;
    }
  }
  std::uint64_t cycles = 0;
  std::size_t completions = 0;
  {
    ScopedCycles timer(cycles);
    ctr.add(Counter::kMatchAttempts);

    if (allow_overtaking_) {
      // Overtaking: every message is immediately matchable (§IV-D). On a
      // lossy fabric the seq stream is the only duplicate detector left, so
      // reliable mode filters repeats through the per-peer SeenTracker.
      bool fresh = true;
      if (reliable_) {
        PeerState& ps = peer(src);
        if (!ps.seen) {
          // lint: allow(hotpath-alloc) lazy one-time tracker, lossy mode only
          ps.seen = std::make_unique<SeenTracker>();
        }
        fresh = ps.seen->mark(pkt.hdr.seq);
      }
      if (fresh) {
        completions = match_one(ctr, std::move(pkt), /*direct=*/true, admission);
      } else {
        // The SeenTracker marked the seq when the original arrived — which
        // includes originals that were then shed. Those must be re-NACKed,
        // not re-acked (an ack would retire the sender's tracker entry and
        // the shed would never surface typed).
        if (admission != nullptr && peer(src).was_shed(pkt.hdr.seq)) {
          *admission = Admission::kShedDuplicate;
        } else if (admission != nullptr) {
          *admission = Admission::kDuplicate;
        }
        ctr.add(Counter::kDupDiscards);
      }
    } else {
      PeerState& ps = peer(src);
      const std::uint32_t seq = pkt.hdr.seq;
      if (seq != ps.expected_seq) {
        // Sequence numbers never repeat per (comm, src->dst) stream and the
        // expected counter only advances past processed messages, so an
        // unexpected seq must be from the future — unless the fabric is
        // lossy: a retransmit whose original got through (the ack was the
        // loss) or a wire duplicate re-presents an already-seen seq, which
        // reliable mode discards to keep delivery exactly-once.
        const bool future = static_cast<std::int32_t>(seq - ps.expected_seq) > 0;
        if (reliable_) {
          const std::uint32_t delta = seq - ps.expected_seq;
          const bool parked_in_ring =
              future && delta < kReorderWindow && ps.reorder != nullptr &&
              ((ps.reorder->present >> (seq & (kReorderWindow - 1))) & 1) != 0;
          const bool parked_in_spill =
              future && delta >= kReorderWindow && ps.spill.contains(seq);
          if (!future || parked_in_ring || parked_in_spill) {
            // A shed consumes its seq (expected_seq advanced past it), so a
            // retransmit of a shed packet lands here as !future. Re-NACK it
            // from the shed ring; any other repeat re-acks as a duplicate.
            if (admission != nullptr && !future && ps.was_shed(seq)) {
              *admission = Admission::kShedDuplicate;
            } else if (admission != nullptr) {
              *admission = Admission::kDuplicate;
            }
            ctr.add(Counter::kDupDiscards);
          } else {
            ctr.add(Counter::kOutOfSequence);
            park_out_of_sequence(ctr, ps, std::move(pkt));
          }
        } else {
          FAIRMPI_CHECK_MSG(future, "duplicate or stale sequence number");
          ctr.add(Counter::kOutOfSequence);
          park_out_of_sequence(ctr, ps, std::move(pkt));
        }
      } else {
        ++ps.expected_seq;
        completions += match_one(ctr, std::move(pkt), /*direct=*/true, admission);
        // Drain parked messages that are now in order: ring first (the
        // common case — one shift+test per message), then the spill map.
        // Drained packets were acked when they parked, so they pass
        // direct=false (never shed) and report no admission verdict.
        ReorderRing* ring = ps.reorder.get();
        for (;;) {
          const std::uint32_t e = ps.expected_seq;
          const std::uint32_t idx = e & (kReorderWindow - 1);
          if (ring != nullptr && (ring->present >> idx) & 1) {
            ring->present &= ~(std::uint64_t{1} << idx);
            fabric::Packet next = std::move(ring->slot[idx]);
            --reorder_total_;
            ++ps.expected_seq;
            completions += match_one(ctr, std::move(next), /*direct=*/false, nullptr);
            continue;
          }
          if (!ps.spill.empty()) {
            auto it = ps.spill.find(e);
            if (it != ps.spill.end()) {
              fabric::Packet next = std::move(it->second);
              ps.spill.erase(it);
              --reorder_total_;
              ++ps.expected_seq;
              completions += match_one(ctr, std::move(next), /*direct=*/false, nullptr);
              continue;
            }
          }
          break;
        }
      }
    }
  }
  ctr.add(Counter::kMatchTimeNs, CycleClock::to_ns(cycles));
  return completions;
}

bool MatchEngine::post(p2p::Request* req) {
  FAIRMPI_CHECK(req->kind() == p2p::Request::Kind::kRecv);
  const int src = req->source_filter();
  const int tag = req->tag_filter();
  FAIRMPI_CHECK_MSG(src == p2p::kAnySource ||
                        (src >= 0 && src < static_cast<int>(peers_.size())),
                    "invalid source filter");

  LockGuard guard(lock_);
  auto ctr = spc_.cursor();
  if (revoked_) {
    // Checked under the match lock — the authoritative revocation gate. A
    // poster that read CommState::revoked() as false just before revoke()
    // landed must still fail here, never enqueue (it would hang forever:
    // fail_all_posted already swept the queues).
    if (req->fail(common::ErrorCode::kCommRevoked)) {
      ctr.add(Counter::kFtRevokedOps);
    }
    return true;
  }
  std::uint64_t cycles = 0;
  bool matched = false;
  {
    ScopedCycles timer(cycles);
    ctr.add(Counter::kMatchAttempts);

    auto accepts = [&](const Unexpected* u) {
      return tag == p2p::kAnyTag || tag == u->pkt.hdr.tag;
    };

    // Search the unexpected queue(s) for the earliest-arrived match.
    PeerState* best_ps = nullptr;
    Unexpected* best = nullptr;
    std::uint64_t best_arrival = std::numeric_limits<std::uint64_t>::max();
    std::size_t scanned = 0;

    auto scan_peer = [&](PeerState& ps) {
      for (Unexpected* u = ps.unexpected.front(); u != nullptr;
           u = UnexpectedList::next(u)) {
        ++scanned;
        if (accepts(u)) {
          if (u->arrival < best_arrival) {
            best_arrival = u->arrival;
            best_ps = &ps;
            best = u;
          }
          break;  // within one peer, earliest match is the first match
        }
      }
    };

    if (src == p2p::kAnySource) {
      for (auto& ps : peers_) scan_peer(ps);
    } else {
      scan_peer(peer(src));
    }
    ctr.add(Counter::kUnexpectedQueueDepth, scanned);

    if (best != nullptr) {
      const int consumed_src = static_cast<int>(best->pkt.hdr.src_rank);
      deliver(ctr, req, best->pkt);
      best_ps->unexpected.erase(best);
      unexpected_pool_.release(best);
      note_unexpected_sub(*best_ps);
      // kQueue re-admission: unlatch once the peer drained to the low
      // watermark (hysteresis — not at cap-1, or the latch would flap).
      if (best_ps->paused && gov_ != nullptr) {
        const overload::Limits& lim = gov_->limits();
        if (best_ps->unexpected_n * 100 <=
            static_cast<std::size_t>(lim.low_pct) * lim.unexpected_cap) {
          best_ps->paused = false;
          gov_->resume_peer();
          if (tracer_ != nullptr) {
            tracer_->record(trace::Event::kOverloadPause,
                            static_cast<std::uint32_t>(consumed_src), 0);
          }
        }
      }
      matched = true;
    } else if (src != p2p::kAnySource && peer(src).dead) {
      // ft fail-fast: nothing matchable remains from a confirmed-dead
      // source and nothing more can arrive — enqueueing would hang the
      // receiver forever. ANY_SOURCE receives still enqueue: a live peer
      // may satisfy them.
      if (req->fail(common::ErrorCode::kPeerFailed)) {
        ctr.add(Counter::kFtPeerFailedOps);
      }
      matched = true;  // completed immediately, albeit with an error
    } else {
      req->post_stamp = post_stamp_++;
      // Route cancels through this engine while the request is linked
      // (cancel-vs-match settles under lock_, exactly once). Installed
      // before the request becomes matchable; the caller still holds it.
      req->set_cancel_scope(this);
      if (src == p2p::kAnySource) {
        posted_any_.push_back(req);
      } else {
        peer(src).posted.push_back(req);
      }
      // Deadline gate: keep next_deadline_ a lower bound for every posted
      // deadline so expire_deadlines costs one relaxed load when idle.
      const std::uint64_t dl = req->deadline();
      if (dl != 0) {
        std::uint64_t cur = next_deadline_.load(std::memory_order_relaxed);
        while (dl < cur && !next_deadline_.compare_exchange_weak(
                               cur, dl, std::memory_order_relaxed)) {
        }
      }
    }
  }
  ctr.add(Counter::kMatchTimeNs, CycleClock::to_ns(cycles));
  return matched;
}

bool MatchEngine::probe(int src, int tag, p2p::Status* status) {
  FAIRMPI_CHECK_MSG(src == p2p::kAnySource ||
                        (src >= 0 && src < static_cast<int>(peers_.size())),
                    "invalid source filter");
  LockGuard guard(lock_);

  auto accepts = [&](const Unexpected* u) {
    return tag == p2p::kAnyTag || tag == u->pkt.hdr.tag;
  };
  const Unexpected* best = nullptr;
  auto scan_peer = [&](const PeerState& ps) {
    for (const Unexpected* u = ps.unexpected.front(); u != nullptr;
         u = UnexpectedList::next(u)) {
      if (accepts(u)) {
        if (best == nullptr || u->arrival < best->arrival) best = u;
        break;
      }
    }
  };
  if (src == p2p::kAnySource) {
    for (const auto& ps : peers_) scan_peer(ps);
  } else {
    scan_peer(peers_[static_cast<std::size_t>(src)]);
  }
  if (best == nullptr) return false;

  if (status != nullptr) {
    status->source = static_cast<int>(best->pkt.hdr.src_rank);
    status->tag = best->pkt.hdr.tag;
    status->size = best->pkt.hdr.opcode == fabric::Opcode::kRndvRts
                       ? p2p::read_rts_body(best->pkt).total
                       : best->pkt.hdr.payload_size;
    status->truncated = false;
  }
  return true;
}

std::size_t MatchEngine::fail_source(int src) {
  FAIRMPI_CHECK_MSG(src >= 0 && src < static_cast<int>(peers_.size()),
                    "invalid source rank");
  LockGuard guard(lock_);
  auto ctr = spc_.cursor();
  PeerState& ps = peer(src);
  ps.dead = true;

  // Sever the reorder stream: parked out-of-sequence packets can never
  // drain (the gaps below them died with the sender), so they would pin
  // reorder_total_ and leak pooled payloads until teardown.
  if (ps.reorder != nullptr) {
    while (ps.reorder->present != 0) {
      const std::uint32_t idx =
          static_cast<std::uint32_t>(std::countr_zero(ps.reorder->present));
      ps.reorder->present &= ~(std::uint64_t{1} << idx);
      fabric::Packet drop = std::move(ps.reorder->slot[idx]);
      static_cast<void>(drop);
      --reorder_total_;
    }
  }
  reorder_total_ -= ps.spill.size();
  ps.spill.clear();

  // Fail every source-specific posted receive; count on settle win only.
  std::size_t failed = 0;
  while (p2p::Request* r = ps.posted.pop_front()) {
    if (r->fail(common::ErrorCode::kPeerFailed)) {
      ctr.add(Counter::kFtPeerFailedOps);
      ++failed;
    }
  }
  return failed;
}

std::size_t MatchEngine::fail_all_posted() {
  LockGuard guard(lock_);
  auto ctr = spc_.cursor();
  revoked_ = true;
  std::size_t failed = 0;
  const auto drain = [&](PostedList& list) {
    while (p2p::Request* r = list.pop_front()) {
      if (r->fail(common::ErrorCode::kCommRevoked)) {
        ctr.add(Counter::kFtRevokedOps);
        ++failed;
      }
    }
  };
  for (auto& ps : peers_) drain(ps.posted);
  drain(posted_any_);
  return failed;
}

std::size_t MatchEngine::expire_deadlines(std::uint64_t now_ns) {
  // One relaxed load answers the common case: nothing posted has a
  // deadline, or the earliest one is still in the future.
  // lint: allow(relaxed-sync) sweep-cadence gate only; authoritative state is under lock_
  if (next_deadline_.load(std::memory_order_relaxed) > now_ns) return 0;

  LockGuard guard(lock_);
  auto ctr = spc_.cursor();
  std::uint64_t next = ~std::uint64_t{0};
  std::size_t expired = 0;
  const auto sweep = [&](PostedList& list) {
    p2p::Request* r = list.front();
    while (r != nullptr) {
      p2p::Request* nxt = PostedList::next(r);
      const std::uint64_t dl = r->deadline();
      if (dl != 0 && dl <= now_ns) {
        list.erase(r);
        if (r->fail(common::ErrorCode::kDeadlineExceeded)) {
          ctr.add(Counter::kDeadlineExceededOps);
          if (tracer_ != nullptr) {
            tracer_->record(trace::Event::kDeadline,
                            static_cast<std::uint32_t>(r->source_filter() + 1),
                            static_cast<std::uint32_t>(r->tag_filter()));
          }
          ++expired;
        }
      } else if (dl != 0 && dl < next) {
        next = dl;
      }
      r = nxt;
    }
  };
  for (auto& ps : peers_) sweep(ps.posted);
  sweep(posted_any_);
  next_deadline_.store(next, std::memory_order_relaxed);
  return expired;
}

bool MatchEngine::cancel_request(p2p::Request* req) {
  const int src = req->source_filter();
  FAIRMPI_CHECK_MSG(src == p2p::kAnySource ||
                        (src >= 0 && src < static_cast<int>(peers_.size())),
                    "cancel of a request this engine never posted");
  LockGuard guard(lock_);
  auto ctr = spc_.cursor();
  // Settle only while the request is verifiably still linked: a matcher
  // that consumed it (under this same lock) already owns the completion,
  // and a cancel must never turn a delivered message into a lost one.
  PostedList& list = src == p2p::kAnySource ? posted_any_ : peer(src).posted;
  for (p2p::Request* r = list.front(); r != nullptr; r = PostedList::next(r)) {
    if (r != req) continue;
    list.erase(req);
    if (req->fail(common::ErrorCode::kCancelled)) {
      ctr.add(Counter::kCancelledOps);
      if (tracer_ != nullptr) {
        tracer_->record(trace::Event::kCancel,
                        static_cast<std::uint32_t>(src + 1),
                        static_cast<std::uint32_t>(req->tag_filter()));
      }
      return true;
    }
    return false;
  }
  return false;
}

std::size_t MatchEngine::unexpected_count() const noexcept {
  LockGuard guard(lock_);
  return unexpected_total_;
}

std::size_t MatchEngine::reorder_buffered() const noexcept {
  LockGuard guard(lock_);
  return reorder_total_;
}

std::size_t MatchEngine::posted_count() const noexcept {
  LockGuard guard(lock_);
  std::size_t n = posted_any_.size();
  for (const auto& ps : peers_) n += ps.posted.size();
  return n;
}

}  // namespace fairmpi::match
