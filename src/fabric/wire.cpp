// Size-classed payload pool backing fabric::make_payload.
//
// Classes are powers of two from 128 B to 64 KiB (payloads <= kInlineBytes
// never reach the heap, and the rendezvous fragmenter caps fragments well
// under 64 KiB). Each class is a SlabArena, so steady-state traffic recycles
// buffers through per-thread caches with zero allocator calls; the arena's
// global-lock handoff keeps cross-thread release (packet freed by the
// receiver's progress thread) TSan-clean.

#include "fairmpi/fabric/wire.hpp"

#include <atomic>
#include <bit>

#include "fairmpi/common/slab_pool.hpp"

namespace fairmpi::fabric {
namespace {

constexpr int kMinShift = 7;   // 128 B — smallest pooled class
constexpr int kMaxShift = 16;  // 64 KiB — largest pooled class
constexpr int kNumClasses = kMaxShift - kMinShift + 1;

/// Size class for `n` bytes, or -1 when n exceeds the largest class.
int class_for(std::size_t n) noexcept {
  if (n > (std::size_t{1} << kMaxShift)) return -1;
  if (n <= (std::size_t{1} << kMinShift)) return 0;
  return static_cast<int>(std::bit_width(n - 1)) - kMinShift;
}

/// The per-class arenas, created on first use and deliberately immortal:
/// a PayloadBuffer held by a static-duration object (e.g. a test fixture)
/// may release after normal static destruction would have run.
common::SlabArena& arena(int cls) {
  static auto* arenas = [] {
    // lint: allow(hotpath-alloc) one-time immortal arena table
    auto* a = new std::array<common::SlabArena*, kNumClasses>();
    for (int i = 0; i < kNumClasses; ++i) {
      const std::size_t bytes = std::size_t{1} << (kMinShift + i);
      // Bigger classes carve fewer slots per slab to bound slab size.
      (*a)[static_cast<std::size_t>(i)] =
          // lint: allow(hotpath-alloc) one-time immortal per-class arena
          new common::SlabArena(bytes, bytes <= 4096 ? 64 : 8);
    }
    return a;
  }();
  return *(*arenas)[static_cast<std::size_t>(cls)];
}

/// In-use / high-water byte accounting (overload admission reads these).
/// Process-global like the arenas; relaxed — the counts gate admission and
/// feed observability, they order nothing.
std::atomic<std::uint64_t> pool_in_use_bytes{0};
std::atomic<std::uint64_t> pool_high_water_bytes{0};

/// Sticky process-global switch (like obs::set_enabled): the per-packet
/// byte accounting costs two shared-cache-line RMWs per make/release, which
/// the uncapped fast path must not pay. A Universe flips it on when a pool
/// cap or observability is configured; until then make/release pay one
/// relaxed load + a never-taken branch to a cold out-of-line body.
std::atomic<bool> pool_accounting_on{false};

#if defined(__GNUC__)
#define FAIRMPI_COLD __attribute__((noinline, cold))
#else
#define FAIRMPI_COLD
#endif

FAIRMPI_COLD void charge_pool_bytes_slow(std::uint64_t n) noexcept {
  const std::uint64_t now =
      pool_in_use_bytes.fetch_add(n, std::memory_order_relaxed) + n;
  // lint: allow(relaxed-sync) monotone high-water mark, no ordering needed
  std::uint64_t hw = pool_high_water_bytes.load(std::memory_order_relaxed);
  while (now > hw &&
         !pool_high_water_bytes.compare_exchange_weak(hw, now,
                                                      std::memory_order_relaxed)) {
  }
}

/// Saturating un-charge: a payload created before the accounting switch
/// flipped on was never charged, so its release must not wrap the gauge
/// negative — clamp at zero (at worst the gauge undercounts briefly).
FAIRMPI_COLD void uncharge_pool_bytes_slow(std::uint64_t n) noexcept {
  std::uint64_t cur = pool_in_use_bytes.load(std::memory_order_relaxed);
  while (!pool_in_use_bytes.compare_exchange_weak(cur, cur >= n ? cur - n : 0,
                                                  std::memory_order_relaxed)) {
  }
}

inline void charge_pool_bytes(std::uint64_t n) noexcept {
  // lint: allow(relaxed-sync) sticky diagnostics gate; counts order nothing
  if (pool_accounting_on.load(std::memory_order_relaxed)) [[unlikely]] {
    charge_pool_bytes_slow(n);
  }
}

inline void uncharge_pool_bytes(std::uint64_t n) noexcept {
  // lint: allow(relaxed-sync) sticky diagnostics gate; counts order nothing
  if (pool_accounting_on.load(std::memory_order_relaxed)) [[unlikely]] {
    uncharge_pool_bytes_slow(n);
  }
}

/// Huge (>64 KiB) payloads come from plain new[] with their byte count in a
/// 16-byte header ahead of the caller-visible pointer: the deleter then
/// stays a single byte (PayloadBuffer fits in a register pair) while the
/// release can still credit the exact size. 16 keeps the payload's
/// effective alignment at new[]'s.
constexpr std::size_t kHugeHeader = 16;

}  // namespace

void enable_payload_pool_accounting() noexcept {
  pool_accounting_on.store(true, std::memory_order_relaxed);
}

void release_pooled_payload(std::byte* p, int size_class) noexcept {
  arena(size_class).release(p);
  uncharge_pool_bytes(std::uint64_t{1} << (kMinShift + size_class));
}

void release_huge_payload(std::byte* p) noexcept {
  std::byte* raw = p - kHugeHeader;
  std::uint64_t n = 0;
  std::memcpy(&n, raw, sizeof n);
  delete[] raw;
  uncharge_pool_bytes(n);
}

PayloadPoolStats payload_pool_stats() noexcept {
  return PayloadPoolStats{pool_in_use_bytes.load(std::memory_order_relaxed),
                          pool_high_water_bytes.load(std::memory_order_relaxed)};
}

void reset_payload_pool_high_water() noexcept {
  pool_high_water_bytes.store(pool_in_use_bytes.load(std::memory_order_relaxed),
                              std::memory_order_relaxed);
}

PayloadBuffer make_payload(std::size_t n) {
  const int cls = class_for(n);
  if (cls < 0) {
    charge_pool_bytes(n);
    // lint: allow(hotpath-alloc) >64KiB payloads exceed every pool class
    auto* raw = new std::byte[n + kHugeHeader];
    const std::uint64_t bytes = n;
    std::memcpy(raw, &bytes, sizeof bytes);
    return PayloadBuffer(raw + kHugeHeader, PayloadDeleter{-1});
  }
  charge_pool_bytes(std::uint64_t{1} << (kMinShift + cls));
  return PayloadBuffer(static_cast<std::byte*>(arena(cls).acquire()),
                       PayloadDeleter{static_cast<std::int8_t>(cls)});
}

std::uint16_t wire_checksum(const WireHeader& hdr, const std::byte* payload,
                            std::size_t n) noexcept {
  WireHeader h = hdr;
  h.csum = 0;
  std::uint64_t fnv = 0xcbf29ce484222325ULL;
  const auto* p = reinterpret_cast<const unsigned char*>(&h);
  for (std::size_t i = 0; i < sizeof h; ++i) {
    fnv = (fnv ^ p[i]) * 0x100000001b3ULL;
  }
  for (std::size_t i = 0; i < n; ++i) {
    fnv = (fnv ^ static_cast<unsigned char>(payload[i])) * 0x100000001b3ULL;
  }
  // Fold 64 -> 16 bits; xor-folding keeps every input bit influential.
  fnv ^= fnv >> 32;
  fnv ^= fnv >> 16;
  return static_cast<std::uint16_t>(fnv & 0xffff);
}

void stamp_checksum(Packet& pkt) noexcept {
  pkt.hdr.csum = wire_checksum(pkt.hdr, pkt.payload(), pkt.hdr.payload_size);
}

bool verify_checksum(const Packet& pkt) noexcept {
  return pkt.hdr.csum == wire_checksum(pkt.hdr, pkt.payload(), pkt.hdr.payload_size);
}

Packet clone_packet(const Packet& pkt) {
  Packet out;
  out.hdr = pkt.hdr;
  const std::size_t n = pkt.hdr.payload_size;
  if (n == 0) return out;
  if (n <= kInlineBytes) {
    std::memcpy(out.inline_data.data(), pkt.inline_data.data(), n);
  } else {
    out.heap = make_payload(n);  // pooled — allocation-free in steady state
    std::memcpy(out.heap.get(), pkt.heap.get(), n);
  }
  return out;
}

}  // namespace fairmpi::fabric
