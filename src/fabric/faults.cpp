// Fault-injection decision engine (see include/fairmpi/fabric/faults.hpp).
#include "fairmpi/fabric/faults.hpp"

#include <cstring>
#include "fairmpi/common/error.hpp"

namespace fairmpi::fabric {

namespace {

/// Flip one random bit of the packet, never touching hdr.payload_size (see
/// the fault-model comment in faults.hpp). Corruptible bytes: the header
/// minus the 4-byte payload_size field, plus the payload.
void corrupt_packet(Xoshiro256& rng, Packet& pkt) {
  constexpr std::size_t kHdrBytes = sizeof(WireHeader);
  const std::size_t kSizeOff = offsetof(WireHeader, payload_size);
  const std::size_t corruptible = (kHdrBytes - sizeof(std::uint32_t)) +
                                  pkt.hdr.payload_size;
  std::size_t byte = rng.bounded(corruptible);
  const int bit = static_cast<int>(rng.bounded(8));
  if (byte < kHdrBytes - sizeof(std::uint32_t)) {
    if (byte >= kSizeOff) byte += sizeof(std::uint32_t);  // skip payload_size
    unsigned char raw[kHdrBytes];
    std::memcpy(raw, &pkt.hdr, kHdrBytes);
    raw[byte] ^= static_cast<unsigned char>(1u << bit);
    std::memcpy(&pkt.hdr, raw, kHdrBytes);
  } else {
    std::byte* p = pkt.mutable_payload();
    p[byte - (kHdrBytes - sizeof(std::uint32_t))] ^=
        static_cast<std::byte>(1u << bit);
  }
}

}  // namespace

FaultInjector::FaultInjector(int num_ranks, const FaultParams& params)
    : params_(params), num_ranks_(static_cast<std::size_t>(num_ranks)),
      kill_(num_ranks_), injected_by_(num_ranks_) {
  FAIRMPI_CHECK(num_ranks >= 1);
  Xoshiro256 master(params.seed);
  // lint: allow(hotpath-alloc) one-time construction of the link table
  links_.reserve(num_ranks_ * num_ranks_);
  for (std::size_t i = 0; i < num_ranks_ * num_ranks_; ++i) {
    // lint: allow(hotpath-alloc) one-time construction of the link table
    auto state = std::make_unique<LinkState>();
    state->rng = master.fork();
    links_.push_back(std::move(state));
  }
  for (std::size_t r = 0; r < num_ranks_; ++r) {
    kill_[r].value.store(~std::uint64_t{0}, std::memory_order_relaxed);
  }
}

void FaultInjector::process(int src, int dst, Packet&& pkt, Batch& out) {
  out.n = 0;
  out.primary = -1;
  // Peer-death gate. The per-src injection counter is what makes
  // kill_rank_at deterministic: the rank dies at a packet *index*, not a
  // time, so a re-run with the same seed and injection order dies at the
  // same packet. The count is charged before the liveness check so packet
  // at_seq itself is the first one the wire eats.
  injected_by_[static_cast<std::size_t>(src)].value.fetch_add(
      1, std::memory_order_relaxed);
  if (rank_dead(src) || rank_dead(dst)) {
    stats_.kill_drops.fetch_add(1, std::memory_order_relaxed);
    Packet sink = std::move(pkt);  // permanent link-down: the wire ate it
    static_cast<void>(sink);
    return;
  }
  LinkState& ln = link(src, dst);
  LockGuard guard(ln.lock);
  Xoshiro256& rng = ln.rng;
  stats_.injected.fetch_add(1, std::memory_order_relaxed);

  // Age the holdback first: packets whose horizon expired ride along AFTER
  // the newer primary below, which is what makes a parked packet arrive
  // out of order. Collect them now, append later.
  std::array<int, kHoldback> due{};
  std::size_t n_due = 0;
  if (ln.n_held != 0) {
    for (std::size_t i = 0; i < kHoldback; ++i) {
      LinkState::Held& h = ln.held[i];
      if (h.occupied && --h.release_after <= 0) due[n_due++] = static_cast<int>(i);
    }
  }

  // The primary packet's fate. Draws are conditional on the configured
  // probabilities, so disabled faults consume no stream state.
  bool consumed = false;
  if (params_.drop > 0.0 && rng.uniform() < params_.drop) {
    stats_.dropped.fetch_add(1, std::memory_order_relaxed);
    Packet sink = std::move(pkt);  // destroyed here: the wire ate it
    static_cast<void>(sink);
    consumed = true;
  }

  if (!consumed) {
    const bool want_reorder = params_.reorder > 0.0 && rng.uniform() < params_.reorder;
    const bool want_delay =
        !want_reorder && params_.delay > 0.0 && rng.uniform() < params_.delay;
    if ((want_reorder || want_delay) && ln.n_held < kHoldback) {
      for (std::size_t i = 0; i < kHoldback; ++i) {
        LinkState::Held& h = ln.held[i];
        if (h.occupied) continue;
        h.pkt = std::move(pkt);
        h.release_after = want_reorder ? 1 : 2 + static_cast<int>(rng.bounded(4));
        h.reordered = want_reorder;
        h.occupied = true;
        ++ln.n_held;
        break;
      }
      (want_reorder ? stats_.reordered : stats_.delayed)
          .fetch_add(1, std::memory_order_relaxed);
      consumed = true;
    }
  }

  if (!consumed) {
    if (params_.corrupt > 0.0 && rng.uniform() < params_.corrupt) {
      corrupt_packet(rng, pkt);
      stats_.corrupted.fetch_add(1, std::memory_order_relaxed);
    }
    const bool duplicate = params_.dup > 0.0 && rng.uniform() < params_.dup;
    out.primary = static_cast<int>(out.n);
    out.pkts[out.n++] = std::move(pkt);
    if (duplicate) {
      stats_.duplicated.fetch_add(1, std::memory_order_relaxed);
      out.pkts[out.n++] = clone_packet(out.pkts[static_cast<std::size_t>(out.primary)]);
    }
  }

  for (std::size_t i = 0; i < n_due; ++i) {
    LinkState::Held& h = ln.held[static_cast<std::size_t>(due[i])];
    out.pkts[out.n++] = std::move(h.pkt);
    h.occupied = false;
    --ln.n_held;
    stats_.released.fetch_add(1, std::memory_order_relaxed);
  }
}

std::size_t FaultInjector::held() const noexcept {
  std::size_t n = 0;
  for (const auto& ln : links_) {
    LockGuard guard(ln->lock);
    n += ln->n_held;
  }
  return n;
}

}  // namespace fairmpi::fabric
