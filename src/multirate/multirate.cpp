#include "fairmpi/multirate/multirate.hpp"

#include <algorithm>
#include <atomic>
#include <barrier>
#include <fstream>
#include <memory>
#include <thread>
#include <vector>

#include "fairmpi/common/error.hpp"
#include "fairmpi/common/timing.hpp"
#include "fairmpi/core/universe.hpp"
#include "fairmpi/obs/contention.hpp"

namespace fairmpi::multirate {

namespace {

struct PairEndpoints {
  Rank* sender = nullptr;
  Rank* receiver = nullptr;
  int sender_rank_id = 0;  ///< rank id the receiver matches against
  CommId comm = kWorldComm;
  int tag = 0;
};

/// Pin `lock` from a holder thread while `blocked_op` runs on this thread,
/// until the contention profiler has attributed wait time to `cls_name` (or
/// attempts run out — the obs_report.py gate reports the failure). Retries
/// absorb the one unlucky schedule where this thread is descheduled past
/// the whole hold window.
template <typename LockT, typename Op>
void contend_until_attributed(LockT& lock, const char* cls_name, Op blocked_op) {
  for (int attempt = 1; attempt <= 50; ++attempt) {
    std::atomic<bool> held{false};
    std::atomic<bool> entering{false};
    std::thread holder([&] {
      LockGuard pin(lock);
      held.store(true, std::memory_order_release);
      // Start the hold window only once this thread is about to probe the
      // lock, and escalate it per attempt: on a busy 1-core CI machine a
      // concurrent test process can deschedule us for longer than any
      // fixed window between announcing and actually probing.
      while (!entering.load(std::memory_order_acquire)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(3 * attempt));
    });
    while (!held.load(std::memory_order_acquire)) {
    }
    entering.store(true, std::memory_order_release);
    blocked_op();
    holder.join();
    for (const auto& c : obs::contention_snapshot()) {
      if (c.name == cls_name && c.wait_ns > 0) return;
    }
  }
}

/// See MultirateConfig::obs_selfcheck. Runs after the measured workload
/// (its threads are joined), so the holder and this thread are the only
/// actors on the universe.
void obs_selfcheck(Universe& uni) {
  if (!obs::enabled()) return;
  Rank& r0 = uni.rank(0);

  // cri.instance: a sender blocks on its injection instance (Alg. 1 uses
  // LOCK, not TRYLOCK, on the send path). Drain each probe message so the
  // fabric is quiescent again afterwards.
  cri::CriPool& pool = r0.pool();
  cri::CommResourceInstance& inst = pool.instance(pool.id_for_thread());
  constexpr int kSelfcheckTag = (1 << 20) + 0x5e1f;
  char buf[16] = {};
  contend_until_attributed(inst.lock(), "cri.instance", [&] {
    r0.send(kWorldComm, 1, kSelfcheckTag, buf, sizeof buf);
    uni.rank(1).recv(kWorldComm, 0, kSelfcheckTag, buf, sizeof buf);
  });

  // match.engine: any matching diagnostic takes the engine lock blocking.
  match::MatchEngine& me = r0.comm_state(kWorldComm).match();
  contend_until_attributed(me.internal_lock(), "match.engine",
                           [&] { (void)me.unexpected_count(); });
}

/// Write the configured observability artifacts while `uni` is still alive
/// (the trace rings and CRI counters die with it).
void export_observability(const MultirateConfig& cfg, Universe& uni) {
  if (cfg.obs_selfcheck) obs_selfcheck(uni);
  if (!cfg.trace_out.empty()) {
    std::ofstream os(cfg.trace_out);
    FAIRMPI_CHECK_MSG(os.good(), "cannot open multirate trace_out file");
    uni.export_chrome_trace(os);
  }
  if (!cfg.obs_out.empty()) {
    std::ofstream os(cfg.obs_out);
    FAIRMPI_CHECK_MSG(os.good(), "cannot open multirate obs_out file");
    uni.dump_observability(os);
  }
}

}  // namespace

MultirateResult run_pairwise(const MultirateConfig& cfg) {
  FAIRMPI_CHECK(cfg.pairs >= 1);
  FAIRMPI_CHECK(cfg.window >= 1);

  Config engine = cfg.engine;
  engine.num_ranks = cfg.process_mode ? 2 * cfg.pairs : 2;
  if (cfg.process_mode) engine.num_instances = 1;  // one context per process
  engine.max_communicators =
      std::max(engine.max_communicators, cfg.pairs + 2);
  Universe uni(engine);

  std::vector<PairEndpoints> eps(static_cast<std::size_t>(cfg.pairs));
  for (int p = 0; p < cfg.pairs; ++p) {
    auto& ep = eps[static_cast<std::size_t>(p)];
    if (cfg.process_mode) {
      ep.sender = &uni.rank(2 * p);
      ep.receiver = &uni.rank(2 * p + 1);
      ep.sender_rank_id = 2 * p;
      ep.tag = 0;
    } else {
      ep.sender = &uni.rank(0);
      ep.receiver = &uni.rank(1);
      ep.sender_rank_id = 0;
      ep.tag = p;  // pairs share the communicator, distinguished by tag
    }
    ep.comm = (cfg.comm_per_pair && !cfg.process_mode) ? uni.create_communicator()
                                                       : kWorldComm;
  }

  const std::size_t n = cfg.payload_bytes;
  std::vector<std::uint8_t> payload(n ? n : 1, 0xAB);

  std::atomic<bool> timing{false};
  std::atomic<bool> stop{false};
  std::atomic<int> receivers_done{0};
  std::atomic<std::uint64_t> delivered{0};
  // +1 for the coordinator thread that runs the clock.
  std::barrier sync(cfg.pairs * 2 + 1);

  // Window-credit flow control: the receiver acknowledges every consumed
  // window with a zero-byte message; the sender keeps at most kCredit
  // windows un-acknowledged. This bounds the unexpected-queue backlog while
  // keeping the pipeline full (the ack is 1/window of the traffic).
  constexpr int kCredit = 2;
  constexpr int kAckTagBase = 1 << 20;

  // Ack requests outlive the sender threads: a sender that bails out early
  // (all receivers done) may leave acks posted in the matching engine, and
  // another thread's progress call must not touch freed requests.
  std::vector<std::vector<std::unique_ptr<Request>>> ack_storage(
      static_cast<std::size_t>(cfg.pairs));

  auto sender_fn = [&](int p) {
    const PairEndpoints& ep = eps[static_cast<std::size_t>(p)];
    const int dst = cfg.process_mode ? 2 * p + 1 : 1;
    const int ack_tag = kAckTagBase + ep.tag;
    sync.arrive_and_wait();  // start together
    Request req;
    auto& acks = ack_storage[static_cast<std::size_t>(p)];
    std::size_t next_wait = 0;
    auto all_receivers_done = [&] {
      return receivers_done.load(std::memory_order_acquire) >= cfg.pairs;
    };
    while (!all_receivers_done()) {
      for (int i = 0; i < cfg.window && !all_receivers_done(); ++i) {
        ep.sender->isend(ep.comm, dst, ep.tag, payload.data(), n, req);
      }
      acks.push_back(std::make_unique<Request>());
      ep.sender->irecv(ep.comm, dst, ack_tag, nullptr, 0, *acks.back());
      if (acks.size() - next_wait >= kCredit) {
        Request& pending = *acks[next_wait];
        // The receiver stops acknowledging once stopped; bail out then.
        SpinWait waiter;
        while (!pending.done() && !all_receivers_done()) {
          if (ep.sender->progress() == 0) waiter.pause(); else waiter.reset();
        }
        ++next_wait;
      }
    }
  };

  auto receiver_fn = [&](int p) {
    const PairEndpoints& ep = eps[static_cast<std::size_t>(p)];
    const int src = ep.sender_rank_id;
    const int tag = cfg.any_tag ? kAnyTag : ep.tag;
    const int ack_tag = kAckTagBase + ep.tag;
    std::vector<Request> reqs(static_cast<std::size_t>(cfg.window));
    std::vector<Request*> ptrs;
    ptrs.reserve(reqs.size());
    for (auto& r : reqs) ptrs.push_back(&r);
    std::vector<std::uint8_t> buf((n ? n : 1) * static_cast<std::size_t>(cfg.window));

    sync.arrive_and_wait();
    std::uint64_t my_count = 0;
    Request ack;
    while (!stop.load(std::memory_order_acquire)) {
      for (int i = 0; i < cfg.window; ++i) {
        ep.receiver->irecv(ep.comm, src, tag,
                           buf.data() + static_cast<std::size_t>(i) * (n ? n : 1), n,
                           reqs[static_cast<std::size_t>(i)]);
      }
      ep.receiver->wait_all(ptrs.data(), ptrs.size());
      ep.receiver->isend(ep.comm, src, ack_tag, nullptr, 0, ack);
      if (timing.load(std::memory_order_acquire)) {
        my_count += static_cast<std::uint64_t>(cfg.window);
      }
    }
    delivered.fetch_add(my_count, std::memory_order_relaxed);
    receivers_done.fetch_add(1, std::memory_order_release);
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(cfg.pairs) * 2);
  for (int p = 0; p < cfg.pairs; ++p) threads.emplace_back(receiver_fn, p);
  for (int p = 0; p < cfg.pairs; ++p) threads.emplace_back(sender_fn, p);

  sync.arrive_and_wait();  // release everyone
  // Warmup: let windows cycle before timing.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));

  spc::Snapshot spc_before;
  for (int p = 0; p < cfg.pairs; ++p) {
    if (!cfg.process_mode && p > 0) break;  // thread mode: one receiver rank
    spc_before.merge(eps[static_cast<std::size_t>(p)].receiver->counters().snapshot());
  }

  const Stopwatch clock;
  timing.store(true, std::memory_order_release);
  std::this_thread::sleep_for(
      std::chrono::microseconds(static_cast<std::int64_t>(cfg.duration_s * 1e6)));
  timing.store(false, std::memory_order_release);
  const double elapsed = clock.elapsed_s();
  stop.store(true, std::memory_order_release);

  for (auto& t : threads) t.join();

  spc::Snapshot spc_after;
  for (int p = 0; p < cfg.pairs; ++p) {
    if (!cfg.process_mode && p > 0) break;
    spc_after.merge(eps[static_cast<std::size_t>(p)].receiver->counters().snapshot());
  }

  export_observability(cfg, uni);

  MultirateResult res;
  res.delivered = delivered.load();
  res.duration_s = elapsed;
  res.msg_rate = static_cast<double>(res.delivered) / elapsed;
  res.receiver_spc = spc_after.delta_since(spc_before);
  return res;
}

MultirateResult run_incast(const MultirateConfig& cfg) {
  FAIRMPI_CHECK(cfg.pairs >= 1);
  FAIRMPI_CHECK(cfg.window >= 1);

  Config engine = cfg.engine;
  engine.num_ranks = 2;
  Universe uni(engine);
  Rank& sender_rank = uni.rank(0);
  Rank& receiver_rank = uni.rank(1);
  constexpr int kTag = 3;

  const std::size_t n = cfg.payload_bytes;
  std::vector<std::uint8_t> payload(n ? n : 1, 0xCD);

  std::atomic<bool> timing{false};
  std::atomic<bool> stop{false};
  std::atomic<bool> receiver_done{false};
  std::atomic<std::uint64_t> delivered{0};
  // Aggregate flow control: senders stay at most kMaxInFlight messages
  // ahead of the receiver's consumption, bounding the unexpected-queue
  // backlog (the eager-buffer-limit analog; N free-running senders would
  // otherwise outrun the single receiver without bound).
  std::atomic<std::uint64_t> injected{0};
  std::atomic<std::uint64_t> consumed{0};
  const std::uint64_t kMaxInFlight = static_cast<std::uint64_t>(cfg.window) * 8 + 1024;
  std::barrier sync(cfg.pairs + 2);  // senders + receiver + coordinator

  auto sender_fn = [&] {
    sync.arrive_and_wait();
    Request req;
    SpinWait waiter;
    while (!receiver_done.load(std::memory_order_acquire)) {
      if (injected.load(std::memory_order_relaxed) -
              consumed.load(std::memory_order_acquire) >=
          kMaxInFlight) {
        // Throttled: the receiver needs CPU to drain; let it run.
        waiter.pause();
        continue;
      }
      waiter.reset();
      sender_rank.isend(kWorldComm, 1, kTag, payload.data(), n, req);
      injected.fetch_add(1, std::memory_order_relaxed);
    }
  };

  auto receiver_fn = [&] {
    std::vector<Request> reqs(static_cast<std::size_t>(cfg.window));
    std::vector<Request*> ptrs;
    for (auto& r : reqs) ptrs.push_back(&r);
    std::vector<std::uint8_t> buf((n ? n : 1) * static_cast<std::size_t>(cfg.window));
    sync.arrive_and_wait();
    std::uint64_t my_count = 0;
    while (!stop.load(std::memory_order_acquire)) {
      for (int i = 0; i < cfg.window; ++i) {
        receiver_rank.irecv(kWorldComm, 0, kTag,
                            buf.data() + static_cast<std::size_t>(i) * (n ? n : 1), n,
                            reqs[static_cast<std::size_t>(i)]);
      }
      receiver_rank.wait_all(ptrs.data(), ptrs.size());
      consumed.fetch_add(static_cast<std::uint64_t>(cfg.window), std::memory_order_release);
      if (timing.load(std::memory_order_acquire)) {
        my_count += static_cast<std::uint64_t>(cfg.window);
      }
    }
    delivered.store(my_count, std::memory_order_relaxed);
    receiver_done.store(true, std::memory_order_release);
  };

  std::vector<std::thread> threads;
  threads.emplace_back(receiver_fn);
  for (int s = 0; s < cfg.pairs; ++s) threads.emplace_back(sender_fn);

  sync.arrive_and_wait();
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  const spc::Snapshot before = receiver_rank.counters().snapshot();
  const Stopwatch clock;
  timing.store(true, std::memory_order_release);
  std::this_thread::sleep_for(
      std::chrono::microseconds(static_cast<std::int64_t>(cfg.duration_s * 1e6)));
  timing.store(false, std::memory_order_release);
  const double elapsed = clock.elapsed_s();
  stop.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();

  export_observability(cfg, uni);

  MultirateResult res;
  res.delivered = delivered.load();
  res.duration_s = elapsed;
  res.msg_rate = static_cast<double>(res.delivered) / elapsed;
  res.receiver_spc = receiver_rank.counters().snapshot().delta_since(before);
  return res;
}

}  // namespace fairmpi::multirate
