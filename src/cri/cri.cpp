#include "fairmpi/cri/cri.hpp"

#include <memory>

#include "fairmpi/common/backoff.hpp"
#include "fairmpi/common/error.hpp"
#include "fairmpi/common/timing.hpp"
#include "fairmpi/common/topology.hpp"

namespace fairmpi::cri {

const char* assignment_name(Assignment a) noexcept {
  switch (a) {
    case Assignment::kRoundRobin: return "round-robin";
    case Assignment::kDedicated: return "dedicated";
  }
  return "unknown";
}

std::atomic<std::uint64_t> CriPool::next_pool_key_{0};

std::size_t CommResourceInstance::flush_submissions() {
  const std::size_t n = submit_.drain([this](const fabric::SubmitDesc& d) {
    // The [C1] acquire in drain() made the producer's packet fully visible;
    // inject it exactly as the producer would have under the lock.
    const bool ok = endpoints_[static_cast<std::size_t>(d.dst)].try_send(std::move(*d.pkt));
    if (ok) stats_.note_injection();
    // [T1] resolve: release publishes the injection (or, on backpressure,
    // the fact that try_send left *pkt intact) to the waiting producer.
    // Past this store the producer owns its packet and ticket again.
    d.ticket->status.store(
        static_cast<std::uint8_t>(ok ? fabric::SubmitStatus::kInjected
                                     : fabric::SubmitStatus::kBackpressure),
        std::memory_order_release);
  });
  stats_.note_submit_flush(n);
  return n;
}

bool CommResourceInstance::inject(int dst, fabric::Packet& pkt, spc::CounterSet& counters) {
  // Fast path: free lock, no waits, no ring traffic — this is what keeps
  // cri.instance wait-cycles at zero on the uncontended path. The flush is
  // usually a single empty-frontier load.
  if (lock_.try_lock()) {
    LockGuard adopt(lock_, adopt_lock);
    flush_submissions();
    const bool ok = endpoints_[static_cast<std::size_t>(dst)].try_send(std::move(pkt));
    if (ok) stats_.note_injection();
    return ok;
  }

  auto spc = counters.cursor();
  if (!use_funnel_) {
    // Funnel disengaged (1-hardware-thread host, default ring size — see
    // the constructor): a blocking profiled acquire IS the optimal
    // contended path here, since no combiner can run while we poll. Still
    // flush: other pools' instances may have queued before we were built,
    // and the explicit-opt-in configs interleave with this path.
    const std::uint64_t t0 = now_ns();
    lock_.lock();
    spc.add(spc::Counter::kInstanceLockWaitNs, now_ns() - t0);
    LockGuard adopt(lock_, adopt_lock);
    flush_submissions();
    const bool ok = endpoints_[static_cast<std::size_t>(dst)].try_send(std::move(pkt));
    if (ok) stats_.note_injection();
    return ok;
  }
  fabric::SubmitTicket ticket;
  const fabric::SubmitPushOutcome push = submit_.try_push({&pkt, &ticket, dst});
  if (!push.ok) {
    // Ring full: a flush is overdue, so a blocking (profiled) acquire and a
    // self-service flush is the productive move — queueing behind a full
    // ring would only deepen the backlog.
    spc.add(spc::Counter::kSubmitRingFull);
    const std::uint64_t t0 = now_ns();
    lock_.lock();
    spc.add(spc::Counter::kInstanceLockWaitNs, now_ns() - t0);
    LockGuard adopt(lock_, adopt_lock);
    flush_submissions();
    const bool ok = endpoints_[static_cast<std::size_t>(dst)].try_send(std::move(pkt));
    if (ok) stats_.note_injection();
    return ok;
  }

  spc.add(spc::Counter::kSubmitQueued);
  if (push.rang_doorbell) spc.add(spc::Counter::kSubmitDoorbells);
  if (push.cas_retries != 0) spc.add(spc::Counter::kSubmitCasRetries, push.cas_retries);
  stats_.note_submit_claim(push.cas_retries, push.rang_doorbell);

  // Wait for the ticket, re-electing as flusher whenever the lock frees up
  // (the combining funnel: one acquisition retires every queued
  // submission). The backoff keeps the lock's cache line quiet while the
  // holder works; once it saturates we ring the doorbell (the "timeout"
  // arm of the batching rule) and fall through to a blocking acquire so a
  // long hold shows up as attributed cri.instance wait time instead of an
  // invisible spin.
  common::Backoff backoff;
  bool escalated = false;
  for (;;) {
    const fabric::SubmitStatus st = ticket.load_acquire();
    if (st != fabric::SubmitStatus::kPending) {
      return st == fabric::SubmitStatus::kInjected;
    }
    bool held;
    if (escalated) {
      const std::uint64_t t0 = now_ns();
      // lint: allow(bare-lock) timed escalation acquire, adopted by the LockGuard in the if (held) branch below
      lock_.lock();
      spc.add(spc::Counter::kInstanceLockWaitNs, now_ns() - t0);
      held = true;
    } else {
      held = lock_.try_lock();
    }
    if (held) {
      LockGuard adopt(lock_, adopt_lock);
      flush_submissions();
      // Our descriptor is published, so the flush retired it unless an
      // earlier claim is still mid-fill (publish frontier short of us);
      // loop to re-check — the hole closes within a few stores.
      continue;
    }
    backoff.pause();
    // Saturation means the pauses have become yields — scheduler-scale
    // waiting, where a blocking (futex) acquire beats polling. On a 1-CPU
    // host Backoff saturates on the first pause, so contended producers go
    // straight to the futex instead of burning the holder's quantum.
    if (!escalated &&
        (backoff.saturated() || backoff.rounds() >= kEscalateRounds)) {
      escalated = true;
      submit_.ring_doorbell();
    }
  }
}

CriPool::CriPool(fabric::Fabric& fabric, int rank, Assignment assignment,
                 std::size_t submit_ring_entries)
    : assignment_(assignment),
      pool_key_(next_pool_key_.fetch_add(1, std::memory_order_relaxed)) {
  fabric::Nic& nic = fabric.nic(rank);
  const int n = nic.num_contexts();
  // lint: allow(hotpath-alloc) ctor: pool built once per rank per universe
  instances_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    instances_.push_back(
        // lint: allow(hotpath-alloc) ctor: one instance per NIC context
        std::make_unique<CommResourceInstance>(i, fabric, nic.context(i), submit_ring_entries));
  }
  FAIRMPI_CHECK(!instances_.empty());
  // Domain layout i mod D: consecutive instances land on distinct
  // LLC/NUMA domains, so the default "thread t drives instance t" pattern
  // never stacks two hot instances on one domain while another sits idle.
  // Single-domain hosts (and the 1-CPU CI runner) map everything to 0 and
  // the layout is a no-op.
  const int domains = common::cpu_topology().num_domains;
  // lint: allow(hotpath-alloc) ctor: placement table sized once
  instance_domain_.resize(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    instance_domain_[static_cast<std::size_t>(i)] = i % (domains > 0 ? domains : 1);
  }
  // lint: allow(hotpath-alloc) ctor: one padded claim flag per instance
  claimed_ = std::make_unique<Padded<std::atomic<std::uint8_t>>[]>(static_cast<std::size_t>(n));
}

int CriPool::claim_instance() {
  // Preference order: instances homed on the calling thread's own locality
  // domain first (current_cpu() is a hint — a later migration costs
  // locality, not correctness), then everything else. The claim itself is
  // one CAS per probed flag; relaxed suffices because the flag only
  // allocates the id — all instance state transfer happens through the
  // instance lock.
  const int my_domain = common::cpu_topology().domain_of(common::current_cpu());
  const int n = size();
  for (int pass = 0; pass < 2; ++pass) {
    for (int i = 0; i < n; ++i) {
      const bool own = instance_domain_[static_cast<std::size_t>(i)] == my_domain;
      if ((pass == 0) != own) continue;
      std::uint8_t expected = 0;
      if (claimed_[static_cast<std::size_t>(i)]->compare_exchange_strong(
              expected, 1, std::memory_order_relaxed)) {
        return i;
      }
    }
  }
  return -1;  // oversubscribed: every instance already has an owner
}

int CriPool::dedicated_id() {
  // Per-thread binding table indexed by pool key. Pools are few and
  // long-lived (one per rank per universe), so a flat vector beats a hash
  // map on this hot path. -1 marks "not yet bound" (Alg. 1: my_id
  // undefined -> assign and remember).
  thread_local std::vector<std::int32_t> bindings;
  // lint: allow(hotpath-alloc) first-bind slow path: TLS table grows once per newer pool, later calls are a flat load
  if (bindings.size() <= pool_key_) bindings.resize(pool_key_ + 1, -1);
  std::int32_t& slot = bindings[pool_key_];
  if (slot < 0) {
    const int claimed = claim_instance();
    slot = static_cast<std::int32_t>(claimed >= 0 ? claimed : next_round_robin());
  }
  return slot;
}

}  // namespace fairmpi::cri
