#include "fairmpi/cri/cri.hpp"

#include <memory>

#include "fairmpi/common/error.hpp"

namespace fairmpi::cri {

const char* assignment_name(Assignment a) noexcept {
  switch (a) {
    case Assignment::kRoundRobin: return "round-robin";
    case Assignment::kDedicated: return "dedicated";
  }
  return "unknown";
}

std::atomic<std::uint64_t> CriPool::next_pool_key_{0};

CriPool::CriPool(fabric::Fabric& fabric, int rank, Assignment assignment)
    : assignment_(assignment),
      pool_key_(next_pool_key_.fetch_add(1, std::memory_order_relaxed)) {
  fabric::Nic& nic = fabric.nic(rank);
  instances_.reserve(static_cast<std::size_t>(nic.num_contexts()));
  for (int i = 0; i < nic.num_contexts(); ++i) {
    instances_.push_back(
        std::make_unique<CommResourceInstance>(i, fabric, nic.context(i)));
  }
  FAIRMPI_CHECK(!instances_.empty());
}

int CriPool::dedicated_id() {
  // Per-thread binding table indexed by pool key. Pools are few and
  // long-lived (one per rank per universe), so a flat vector beats a hash
  // map on this hot path. -1 marks "not yet bound" (Alg. 1: my_id
  // undefined -> assign via round-robin and remember).
  thread_local std::vector<std::int32_t> bindings;
  if (bindings.size() <= pool_key_) bindings.resize(pool_key_ + 1, -1);
  std::int32_t& slot = bindings[pool_key_];
  if (slot < 0) slot = static_cast<std::int32_t>(next_round_robin());
  return slot;
}

}  // namespace fairmpi::cri
