#include "fairmpi/debug/lockcheck.hpp"

#if FAIRMPI_LOCKCHECK

#include <cstdio>
#include <cstdlib>
#include <cstring>
namespace fairmpi::debug {

namespace {

// ---- class registry + acquisition-order graph (global, mutex-guarded; the
// ---- guard is a plain std::mutex so the validator never recurses into
// ---- itself).

std::mutex g_registry_mu;
LockClass g_classes[kMaxLockClasses];
int g_num_classes = 0;

/// order_edge[a][b] == true: a blocking acquisition of class b happened
/// while a lock of class a was held ("a is locked before b").
bool g_order_edge[kMaxLockClasses][kMaxLockClasses];

/// The acquisition site that established edge a->b, for reports.
struct EdgeSite {
  const char* file = nullptr;
  unsigned line = 0;
};
EdgeSite g_edge_site[kMaxLockClasses][kMaxLockClasses];

/// DFS: is `to` reachable from `from` over recorded edges? Caller holds
/// g_registry_mu.
bool reachable(std::uint32_t from, std::uint32_t to) {
  bool visited[kMaxLockClasses] = {};
  std::uint32_t stack[kMaxLockClasses];
  int depth = 0;
  stack[depth++] = from;
  visited[from] = true;
  while (depth > 0) {
    const std::uint32_t cur = stack[--depth];
    if (cur == to) return true;
    for (std::uint32_t next = 0; next < static_cast<std::uint32_t>(g_num_classes); ++next) {
      if (g_order_edge[cur][next] && !visited[next]) {
        visited[next] = true;
        stack[depth++] = next;
      }
    }
  }
  return false;
}

// ---- per-thread held stack

struct Held {
  const LockClass* cls;
  const void* addr;
  const char* file;
  unsigned line;
};

struct ThreadState {
  Held stack[kMaxHeldLocks];
  int depth = 0;
};

thread_local ThreadState t_state;

// ---- violation reporting

void default_handler(const Violation& v) {
  std::fputs(v.report, stderr);
  std::fflush(stderr);
  std::abort();
}

ViolationHandler g_handler = &default_handler;

/// Append the calling thread's held stack to `buf` (one lock per line).
void format_held_stack(char* buf, std::size_t cap) {
  std::size_t used = std::strlen(buf);
  for (int i = 0; i < t_state.depth && used < cap; ++i) {
    const Held& h = t_state.stack[i];
    const int n = std::snprintf(buf + used, cap - used,
                                "    held[%d]: \"%s\" (rank %u) acquired at %s:%u\n", i,
                                h.cls->name, static_cast<unsigned>(h.cls->rank), h.file, h.line);
    if (n <= 0) break;
    used += static_cast<std::size_t>(n);
  }
}

void report(Violation::Kind kind, const LockClass* attempted, const LockClass* conflicting,
            const std::source_location& loc, const EdgeSite* reverse_site) {
  Violation v;
  v.kind = kind;
  v.attempted = attempted;
  v.conflicting = conflicting;
  const char* what = kind == Violation::Kind::kRankOrder ? "lock rank order violation"
                     : kind == Violation::Kind::kCycle   ? "lock acquisition cycle"
                                                         : "held-lock stack overflow";
  std::snprintf(v.report, sizeof v.report,
                "fairmpi lockcheck: %s\n"
                "    attempting: \"%s\" (rank %u) at %s:%u\n",
                what, attempted->name, static_cast<unsigned>(attempted->rank), loc.file_name(),
                static_cast<unsigned>(loc.line()));
  if (conflicting != nullptr) {
    std::size_t used = std::strlen(v.report);
    std::snprintf(v.report + used, sizeof v.report - used,
                  "    conflicts with held: \"%s\" (rank %u)\n", conflicting->name,
                  static_cast<unsigned>(conflicting->rank));
  }
  if (reverse_site != nullptr && reverse_site->file != nullptr) {
    std::size_t used = std::strlen(v.report);
    std::snprintf(v.report + used, sizeof v.report - used,
                  "    established order \"%s\" -> \"%s\" at %s:%u\n", attempted->name,
                  conflicting != nullptr ? conflicting->name : "?", reverse_site->file,
                  reverse_site->line);
  }
  format_held_stack(v.report, sizeof v.report);
  g_handler(v);
}

}  // namespace

ViolationHandler set_violation_handler(ViolationHandler handler) noexcept {
  ViolationHandler prev = g_handler;
  g_handler = handler != nullptr ? handler : &default_handler;
  return prev == &default_handler ? nullptr : prev;
}

const LockClass* intern_lock_class(LockRank rank, const char* name) {
  LockGuard guard(g_registry_mu);
  for (int i = 0; i < g_num_classes; ++i) {
    if (g_classes[i].rank == rank && std::strcmp(g_classes[i].name, name) == 0) {
      return &g_classes[i];
    }
  }
  if (g_num_classes >= kMaxLockClasses) {
    std::fputs("fairmpi lockcheck: lock class table full (raise kMaxLockClasses)\n", stderr);
    std::abort();
  }
  LockClass& cls = g_classes[g_num_classes];
  cls.name = name;
  cls.rank = rank;
  cls.id = static_cast<std::uint32_t>(g_num_classes);
  ++g_num_classes;
  return &cls;
}

void check_blocking_acquire(const LockClass* cls, const void* addr,
                            const std::source_location& loc) {
  (void)addr;
  if (t_state.depth == 0) return;

  // Rank rule: must outrank (or tie with a *different* class) everything held.
  for (int i = 0; i < t_state.depth; ++i) {
    const LockClass* held = t_state.stack[i].cls;
    if (held->rank > cls->rank || (held == cls)) {
      report(Violation::Kind::kRankOrder, cls, held, loc, nullptr);
      return;  // handler chose not to abort; skip graph update
    }
  }

  // Cycle rule: record held -> cls edges; closing a cycle is a violation.
  LockGuard guard(g_registry_mu);
  for (int i = 0; i < t_state.depth; ++i) {
    const LockClass* held = t_state.stack[i].cls;
    if (held == cls) continue;
    if (reachable(cls->id, held->id)) {
      report(Violation::Kind::kCycle, cls, held, loc, &g_edge_site[cls->id][held->id]);
      return;
    }
    if (!g_order_edge[held->id][cls->id]) {
      g_order_edge[held->id][cls->id] = true;
      g_edge_site[held->id][cls->id] = EdgeSite{loc.file_name(), loc.line()};
    }
  }
}

void note_acquired(const LockClass* cls, const void* addr, const std::source_location& loc) {
  if (t_state.depth >= kMaxHeldLocks) {
    report(Violation::Kind::kOverflow, cls, nullptr, loc, nullptr);
    return;
  }
  Held& h = t_state.stack[t_state.depth++];
  h.cls = cls;
  h.addr = addr;
  h.file = loc.file_name();
  h.line = loc.line();
}

void note_released(const void* addr) noexcept {
  // Usually LIFO (scoped_lock), but search from the top so out-of-order
  // release is handled too.
  for (int i = t_state.depth - 1; i >= 0; --i) {
    if (t_state.stack[i].addr == addr) {
      for (int j = i; j + 1 < t_state.depth; ++j) t_state.stack[j] = t_state.stack[j + 1];
      --t_state.depth;
      return;
    }
  }
  // Releasing a lock we never saw acquired: tolerated (e.g. handler
  // continued past a skipped push after an overflow report).
}

int held_count() noexcept { return t_state.depth; }

void reset_for_test() noexcept {
  t_state.depth = 0;
  LockGuard guard(g_registry_mu);
  std::memset(g_order_edge, 0, sizeof g_order_edge);
  for (auto& row : g_edge_site) {
    for (auto& site : row) site = EdgeSite{};
  }
}

}  // namespace fairmpi::debug

#endif  // FAIRMPI_LOCKCHECK
