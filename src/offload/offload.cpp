#include "fairmpi/offload/offload.hpp"

#include "fairmpi/common/error.hpp"

namespace fairmpi::offload {

OffloadDriver::OffloadDriver(Rank& rank, std::size_t queue_entries)
    : rank_(rank), queue_(queue_entries), worker_([this] { run(); }) {}

OffloadDriver::~OffloadDriver() {
  stop_.store(true, std::memory_order_release);
  worker_.join();
}

void OffloadDriver::submit(Command&& cmd) {
  FAIRMPI_CHECK_MSG(!stop_.load(std::memory_order_relaxed),
                    "submit after driver shutdown");
  while (!queue_.try_push(std::move(cmd))) {
    // Command-queue backpressure: the comm thread is saturated; the
    // application thread politely spins (it has nothing else to do for
    // this operation anyway).
    detail::cpu_relax();
  }
  submitted_.fetch_add(1, std::memory_order_relaxed);
}

void OffloadDriver::submit_isend(CommId comm, int dst, int tag, const void* buf,
                                 std::size_t n, Request& req) {
  req.init_send();  // visible as incomplete until the comm thread injects
  Command cmd;
  cmd.kind = Command::Kind::kSend;
  cmd.comm = comm;
  cmd.peer = dst;
  cmd.tag = tag;
  cmd.buffer = const_cast<void*>(buf);
  cmd.bytes = n;
  cmd.request = &req;
  submit(std::move(cmd));
}

void OffloadDriver::submit_irecv(CommId comm, int src, int tag, void* buf,
                                 std::size_t capacity, Request& req) {
  // init_recv happens on the comm thread (it owns the matching post); mark
  // the request pending here so done() reads false immediately.
  req.init_recv(buf, capacity, src, tag);
  Command cmd;
  cmd.kind = Command::Kind::kRecv;
  cmd.comm = comm;
  cmd.peer = src;
  cmd.tag = tag;
  cmd.buffer = buf;
  cmd.bytes = capacity;
  cmd.request = &req;
  submit(std::move(cmd));
}

void OffloadDriver::run() {
  // The single engine driver: drain commands, then progress. Stop only
  // once the queue is empty so submitted operations are not lost.
  for (;;) {
    Command cmd;
    bool worked = false;
    while (queue_.try_pop(cmd)) {
      worked = true;
      switch (cmd.kind) {
        case Command::Kind::kSend: {
          // The engine completes the caller's request at injection.
          rank_.isend(cmd.comm, cmd.peer, cmd.tag, cmd.buffer, cmd.bytes, *cmd.request);
          break;
        }
        case Command::Kind::kRecv:
          rank_.comm_state(cmd.comm).match().post(cmd.request);
          break;
        case Command::Kind::kNone:
          FAIRMPI_CHECK_MSG(false, "empty offload command");
      }
    }
    if (rank_.progress() != 0) worked = true;
    if (!worked) {
      if (stop_.load(std::memory_order_acquire)) return;
      detail::cpu_relax();
    }
  }
}

}  // namespace fairmpi::offload
