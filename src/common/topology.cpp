#include "fairmpi/common/topology.hpp"

#include <algorithm>
#include <fstream>
#include <memory>
#include <sstream>
#include <unordered_map>

#if defined(__linux__)
#include <sched.h>
#endif

namespace fairmpi::common {

namespace {

/// First line of a sysfs attribute, or "" when unreadable.
std::string read_line(const std::string& path) {
  std::ifstream in(path);
  if (!in) return {};
  std::string line;
  std::getline(in, line);
  return line;
}

/// Assign each CPU a dense domain id keyed by its peer-list string: CPUs
/// exposing identical "shared with" lists share a domain. Returns false if
/// no CPU yielded a non-empty key (the caller then tries the next source).
bool assign_domains(const std::vector<int>& cpus,
                    const std::vector<std::string>& keys, CpuTopology& topo) {
  std::unordered_map<std::string, int> key_to_domain;
  bool any = false;
  for (std::size_t i = 0; i < cpus.size(); ++i) {
    if (keys[i].empty()) continue;
    any = true;
    const auto [it, inserted] =
        key_to_domain.emplace(keys[i], static_cast<int>(key_to_domain.size()));
    topo.cpu_domain[static_cast<std::size_t>(cpus[i])] = it->second;
  }
  if (!any) return false;
  topo.num_domains = static_cast<int>(key_to_domain.size());
  return true;
}

}  // namespace

std::vector<int> parse_cpu_list(const std::string& list) {
  std::vector<int> cpus;
  std::stringstream ss(list);
  std::string chunk;
  while (std::getline(ss, chunk, ',')) {
    // Trim whitespace (sysfs lines end in '\n'; tests may indent).
    const auto b = chunk.find_first_not_of(" \t\r\n");
    if (b == std::string::npos) continue;
    const auto e = chunk.find_last_not_of(" \t\r\n");
    chunk = chunk.substr(b, e - b + 1);
    const auto dash = chunk.find('-');
    try {
      if (dash == std::string::npos) {
        cpus.push_back(std::stoi(chunk));
      } else {
        const int lo = std::stoi(chunk.substr(0, dash));
        const int hi = std::stoi(chunk.substr(dash + 1));
        for (int c = lo; c <= hi; ++c) cpus.push_back(c);
      }
    } catch (...) {
      // Malformed chunk: skip it (see header contract).
    }
  }
  std::sort(cpus.begin(), cpus.end());
  cpus.erase(std::unique(cpus.begin(), cpus.end()), cpus.end());
  return cpus;
}

CpuTopology probe_topology(const std::string& sysfs_root) {
  CpuTopology topo;
  const std::string cpu_root = sysfs_root + "/devices/system/cpu";
  std::vector<int> cpus = parse_cpu_list(read_line(cpu_root + "/online"));
  if (cpus.empty()) {
    // No online file (containers often mask it): fall back to a single CPU;
    // single domain is the contract for unprobeable hosts.
    return topo;
  }
  topo.num_cpus = cpus.back() + 1;
  topo.cpu_domain.assign(static_cast<std::size_t>(topo.num_cpus), 0);

  // Preferred source: LLC sharing (cache/index3, then index2 for parts that
  // top out at L2). CPUs with identical shared_cpu_list sit in one domain.
  for (const char* index : {"index3", "index2"}) {
    std::vector<std::string> keys;
    keys.reserve(cpus.size());
    for (const int c : cpus) {
      keys.push_back(read_line(cpu_root + "/cpu" + std::to_string(c) + "/cache/" + index +
                               "/shared_cpu_list"));
    }
    if (assign_domains(cpus, keys, topo)) return topo;
  }

  // Fallback: NUMA node cpulists. Key each CPU by the node that claims it.
  {
    std::vector<std::string> keys(cpus.size());
    const std::string node_root = sysfs_root + "/devices/system/node";
    for (int node = 0; node < topo.num_cpus; ++node) {  // nodes ≤ cpus always
      const std::string list = read_line(node_root + "/node" + std::to_string(node) + "/cpulist");
      if (list.empty()) continue;
      for (const int c : parse_cpu_list(list)) {
        const auto it = std::find(cpus.begin(), cpus.end(), c);
        if (it != cpus.end()) keys[static_cast<std::size_t>(it - cpus.begin())] = list;
      }
    }
    if (assign_domains(cpus, keys, topo)) return topo;
  }

  // Neither source present: everything already maps to domain 0.
  return topo;
}

namespace {

std::unique_ptr<CpuTopology>& topology_override() {
  static std::unique_ptr<CpuTopology> override_topo;
  return override_topo;
}

}  // namespace

const CpuTopology& cpu_topology() {
  if (const auto& o = topology_override()) return *o;
  static const CpuTopology probed = probe_topology();
  return probed;
}

int current_cpu() noexcept {
#if defined(__linux__)
  return sched_getcpu();
#else
  return -1;
#endif
}

void set_topology_for_testing(CpuTopology topo) {
  topology_override() = std::make_unique<CpuTopology>(std::move(topo));
}

void clear_topology_for_testing() { topology_override().reset(); }

}  // namespace fairmpi::common
