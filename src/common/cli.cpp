#include "fairmpi/common/cli.hpp"

#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <variant>

namespace fairmpi {

struct Cli::Option {
  std::string name;
  std::string help;
  std::string default_text;
  bool is_flag = false;
  // Exactly one of these is non-null, pointing at the user-held Value<T>.
  Value<std::int64_t>* as_int = nullptr;
  Value<double>* as_double = nullptr;
  Value<std::string>* as_str = nullptr;
  Value<bool>* as_bool = nullptr;
  Value<std::vector<std::int64_t>>* as_int_list = nullptr;
  // Ownership of the Value objects themselves.
  std::variant<std::monostate, std::unique_ptr<Value<std::int64_t>>,
               std::unique_ptr<Value<double>>, std::unique_ptr<Value<std::string>>,
               std::unique_ptr<Value<bool>>,
               std::unique_ptr<Value<std::vector<std::int64_t>>>>
      storage;
};

Cli::Cli(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

Cli::~Cli() = default;

Cli::Option* Cli::find(const std::string& name) {
  for (auto& opt : options_) {
    if (opt->name == name) return opt.get();
  }
  return nullptr;
}

Cli::Value<std::int64_t>& Cli::opt_int(std::string name, std::int64_t def, std::string help) {
  auto opt = std::make_unique<Option>();
  auto val = std::make_unique<Value<std::int64_t>>(def);
  opt->as_int = val.get();
  opt->name = std::move(name);
  opt->help = std::move(help);
  opt->default_text = std::to_string(def);
  opt->storage = std::move(val);
  options_.push_back(std::move(opt));
  return *options_.back()->as_int;
}

Cli::Value<double>& Cli::opt_double(std::string name, double def, std::string help) {
  auto opt = std::make_unique<Option>();
  auto val = std::make_unique<Value<double>>(def);
  opt->as_double = val.get();
  opt->name = std::move(name);
  opt->help = std::move(help);
  opt->default_text = std::to_string(def);
  opt->storage = std::move(val);
  options_.push_back(std::move(opt));
  return *options_.back()->as_double;
}

Cli::Value<std::string>& Cli::opt_str(std::string name, std::string def, std::string help) {
  auto opt = std::make_unique<Option>();
  auto val = std::make_unique<Value<std::string>>(def);
  opt->as_str = val.get();
  opt->name = std::move(name);
  opt->help = std::move(help);
  opt->default_text = def.empty() ? "\"\"" : def;
  opt->storage = std::move(val);
  options_.push_back(std::move(opt));
  return *options_.back()->as_str;
}

Cli::Value<bool>& Cli::opt_flag(std::string name, std::string help) {
  auto opt = std::make_unique<Option>();
  auto val = std::make_unique<Value<bool>>(false);
  opt->as_bool = val.get();
  opt->is_flag = true;
  opt->name = std::move(name);
  opt->help = std::move(help);
  opt->default_text = "false";
  opt->storage = std::move(val);
  options_.push_back(std::move(opt));
  return *options_.back()->as_bool;
}

Cli::Value<std::vector<std::int64_t>>& Cli::opt_int_list(std::string name,
                                                         std::vector<std::int64_t> def,
                                                         std::string help) {
  auto opt = std::make_unique<Option>();
  std::ostringstream os;
  for (std::size_t i = 0; i < def.size(); ++i) os << (i ? "," : "") << def[i];
  auto val = std::make_unique<Value<std::vector<std::int64_t>>>(std::move(def));
  opt->as_int_list = val.get();
  opt->name = std::move(name);
  opt->help = std::move(help);
  opt->default_text = os.str();
  opt->storage = std::move(val);
  options_.push_back(std::move(opt));
  return *options_.back()->as_int_list;
}

std::string Cli::usage() const {
  std::ostringstream os;
  os << program_ << " — " << description_ << "\n\nOptions:\n";
  for (const auto& opt : options_) {
    os << "  --" << opt->name;
    if (!opt->is_flag) os << " <value>";
    os << "\n      " << opt->help << " (default: " << opt->default_text << ")\n";
  }
  os << "  --help\n      show this message\n";
  return os.str();
}

namespace {

bool parse_i64(const std::string& text, std::int64_t& out) {
  const char* begin = text.data();
  const char* end = begin + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, out);
  return ec == std::errc{} && ptr == end;
}

bool parse_f64(const std::string& text, double& out) {
  try {
    std::size_t pos = 0;
    out = std::stod(text, &pos);
    return pos == text.size();
  } catch (...) {
    return false;
  }
}

}  // namespace

std::string Cli::parse_for_test(const std::vector<std::string>& args) {
  for (std::size_t i = 0; i < args.size(); ++i) {
    std::string arg = args[i];
    if (arg == "--help" || arg == "-h") return "help";
    if (arg.rfind("--", 0) != 0) return "unexpected positional argument: " + arg;
    arg = arg.substr(2);
    std::string inline_value;
    bool has_inline = false;
    if (const auto eq = arg.find('='); eq != std::string::npos) {
      inline_value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      has_inline = true;
    }
    Option* opt = find(arg);
    if (opt == nullptr) return "unknown option: --" + arg;
    if (opt->is_flag) {
      if (has_inline) return "flag --" + arg + " does not take a value";
      opt->as_bool->value_ = true;
      continue;
    }
    std::string value;
    if (has_inline) {
      value = inline_value;
    } else {
      if (i + 1 >= args.size()) return "missing value for --" + arg;
      value = args[++i];
    }
    if (opt->as_int != nullptr) {
      if (!parse_i64(value, opt->as_int->value_)) return "bad integer for --" + arg;
    } else if (opt->as_double != nullptr) {
      if (!parse_f64(value, opt->as_double->value_)) return "bad number for --" + arg;
    } else if (opt->as_str != nullptr) {
      opt->as_str->value_ = value;
    } else if (opt->as_int_list != nullptr) {
      std::vector<std::int64_t> items;
      std::string token;
      std::istringstream is(value);
      while (std::getline(is, token, ',')) {
        std::int64_t item = 0;
        if (!parse_i64(token, item)) return "bad integer list for --" + arg;
        items.push_back(item);
      }
      if (items.empty()) return "empty list for --" + arg;
      opt->as_int_list->value_ = std::move(items);
    }
  }
  return "";
}

void Cli::parse(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  const std::string err = parse_for_test(args);
  if (err.empty()) return;
  if (err == "help") {
    std::fputs(usage().c_str(), stdout);
    std::exit(0);
  }
  std::fprintf(stderr, "%s: %s\n\n%s", program_.c_str(), err.c_str(), usage().c_str());
  std::exit(2);
}

}  // namespace fairmpi
