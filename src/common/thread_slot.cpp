#include "fairmpi/common/thread_slot.hpp"

#include "fairmpi/common/spinlock.hpp"

namespace fairmpi::common {
namespace {

// Free-slot registry. A spinlock (not RankedLock) is deliberate: this lock
// is taken once per thread lifetime, never while any engine lock is held
// (the TLS holder is constructed on a thread's very first counter/pool
// touch, which can be under the match lock — but slot acquisition nests
// nothing and can never participate in a cycle, being leaf and one-shot).
Spinlock registry_lock;  // lint: allow(unranked-mutex) leaf, once-per-thread-lifetime
bool slot_used[kMaxThreadSlots] FAIRMPI_GUARDED_BY(registry_lock);

int acquire_slot() noexcept {
  LockGuard guard(registry_lock);
  for (int i = 0; i < kMaxThreadSlots; ++i) {
    if (!slot_used[i]) {
      slot_used[i] = true;
      return i;
    }
  }
  return kNoThreadSlot;
}

void release_slot(int slot) noexcept {
  if (slot == kNoThreadSlot) return;
  LockGuard guard(registry_lock);
  slot_used[slot] = false;
}

// RAII holder: acquires on the thread's first call, releases at thread
// exit. The release/acquire pairing on registry_lock is what lets a later
// thread safely inherit slot-indexed caches the dead thread populated.
// The destructor downgrades the cached id to kNoThreadSlot *before*
// releasing the slot, so any later TLS destructor on this thread falls back
// to shared paths instead of writing a slot a new thread may already own.
struct SlotHolder {
  int id;
  SlotHolder() noexcept : id(acquire_slot()) { detail::tls_slot = id; }
  ~SlotHolder() {
    detail::tls_slot = kNoThreadSlot;
    release_slot(id);
  }
};

}  // namespace

namespace detail {

int register_this_thread() noexcept {
  thread_local SlotHolder holder;
  // The holder's constructor set tls_slot; re-read it rather than holder.id
  // so a re-entrant call during teardown sees the downgraded value.
  return tls_slot;
}

}  // namespace detail

}  // namespace fairmpi::common
