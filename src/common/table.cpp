#include "fairmpi/common/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

#include "fairmpi/common/error.hpp"

namespace fairmpi {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  FAIRMPI_CHECK_MSG(cells.size() == headers_.size(), "row width must match header width");
  rows_.push_back(std::move(cells));
}

std::string Table::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }

  std::ostringstream os;
  auto rule = [&] {
    os << '+';
    for (const auto w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  auto line = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << ' ' << cells[c] << std::string(widths[c] - cells[c].size(), ' ') << " |";
    }
    os << '\n';
  };

  rule();
  line(headers_);
  rule();
  for (const auto& row : rows_) line(row);
  rule();
  return os.str();
}

namespace {
void csv_cell(std::ostream& os, const std::string& cell) {
  if (cell.find_first_of(",\"\n") != std::string::npos) {
    os << '"';
    for (const char ch : cell) {
      if (ch == '"') os << '"';
      os << ch;
    }
    os << '"';
  } else {
    os << cell;
  }
}
}  // namespace

void Table::write_csv(std::ostream& os) const {
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c) os << ',';
    csv_cell(os, headers_[c]);
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      csv_cell(os, row[c]);
    }
    os << '\n';
  }
}

std::string format_si(double value, int precision) {
  const char* suffix = "";
  double scaled = value;
  const double mag = std::fabs(value);
  if (mag >= 1e9) {
    scaled = value / 1e9;
    suffix = " G";
  } else if (mag >= 1e6) {
    scaled = value / 1e6;
    suffix = " M";
  } else if (mag >= 1e3) {
    scaled = value / 1e3;
    suffix = " K";
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%s", precision, scaled, suffix);
  return buf;
}

std::string format_ns(double ns) {
  char buf[64];
  if (ns >= 1e9) {
    std::snprintf(buf, sizeof buf, "%.2f s", ns / 1e9);
  } else if (ns >= 1e6) {
    std::snprintf(buf, sizeof buf, "%.2f ms", ns / 1e6);
  } else if (ns >= 1e3) {
    std::snprintf(buf, sizeof buf, "%.2f us", ns / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%.0f ns", ns);
  }
  return buf;
}

SeriesChart::SeriesChart(std::string title, std::string x_label, std::string y_label)
    : title_(std::move(title)), x_label_(std::move(x_label)), y_label_(std::move(y_label)) {}

void SeriesChart::add_series(std::string name, std::vector<std::pair<double, double>> points) {
  static constexpr char kMarkers[] = "*o+x#@%&=~";
  const char marker = kMarkers[series_.size() % (sizeof kMarkers - 1)];
  series_.push_back(Series{std::move(name), marker, std::move(points)});
}

std::string SeriesChart::render(int width, int height) const {
  std::ostringstream os;
  os << "=== " << title_ << " ===\n";
  if (series_.empty()) {
    os << "(no data)\n";
    return os.str();
  }

  double xmin = std::numeric_limits<double>::infinity(), xmax = -xmin;
  double ymin = std::numeric_limits<double>::infinity(), ymax = -ymin;
  for (const auto& s : series_) {
    for (const auto& [x, y] : s.points) {
      xmin = std::min(xmin, x);
      xmax = std::max(xmax, x);
      if (!log_y_ || y > 0) {
        ymin = std::min(ymin, y);
        ymax = std::max(ymax, y);
      }
    }
  }
  if (!(xmin < xmax)) xmax = xmin + 1;
  if (!(ymin < ymax)) ymax = ymin + (ymin == 0 ? 1 : std::fabs(ymin) * 0.1 + 1e-12);

  auto ymap = [&](double y) {
    if (log_y_) {
      const double lo = std::log10(ymin), hi = std::log10(ymax);
      return (std::log10(std::max(y, ymin)) - lo) / (hi - lo);
    }
    return (y - ymin) / (ymax - ymin);
  };

  std::vector<std::string> grid(static_cast<std::size_t>(height),
                                std::string(static_cast<std::size_t>(width), ' '));
  for (const auto& s : series_) {
    for (const auto& [x, y] : s.points) {
      if (log_y_ && y <= 0) continue;
      const double fx = (x - xmin) / (xmax - xmin);
      const double fy = ymap(y);
      auto col = static_cast<int>(std::lround(fx * (width - 1)));
      auto row = static_cast<int>(std::lround((1.0 - fy) * (height - 1)));
      col = std::clamp(col, 0, width - 1);
      row = std::clamp(row, 0, height - 1);
      grid[static_cast<std::size_t>(row)][static_cast<std::size_t>(col)] = s.marker;
    }
  }

  // Y-axis labels on the left: top, middle, bottom.
  const std::string top = format_si(ymax), bot = format_si(ymin);
  const std::string mid =
      format_si(log_y_ ? std::pow(10.0, (std::log10(ymin) + std::log10(ymax)) / 2)
                       : (ymin + ymax) / 2);
  std::size_t label_w = std::max({top.size(), mid.size(), bot.size()}) + 1;
  for (int r = 0; r < height; ++r) {
    std::string label;
    if (r == 0) label = top;
    else if (r == height / 2) label = mid;
    else if (r == height - 1) label = bot;
    os << std::string(label_w - label.size(), ' ') << label << " |"
       << grid[static_cast<std::size_t>(r)] << '\n';
  }
  os << std::string(label_w + 1, ' ') << '+' << std::string(static_cast<std::size_t>(width), '-')
     << '\n';
  {
    const std::string lo = format_si(xmin, 0), hi = format_si(xmax, 0);
    os << std::string(label_w + 2, ' ') << lo
       << std::string(static_cast<std::size_t>(std::max(
              1, width - static_cast<int>(lo.size()) - static_cast<int>(hi.size()))), ' ')
       << hi << "   (" << x_label_ << (log_y_ ? ", log-scale " : ", ") << y_label_ << ")\n";
  }
  os << "  legend:";
  for (const auto& s : series_) os << "  [" << s.marker << "] " << s.name;
  os << '\n';
  return os.str();
}

void SeriesChart::write_csv(std::ostream& os) const {
  os << "series,x,y\n";
  for (const auto& s : series_) {
    for (const auto& [x, y] : s.points) {
      csv_cell(os, s.name);
      os << ',' << x << ',' << y << '\n';
    }
  }
}

}  // namespace fairmpi
