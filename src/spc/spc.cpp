#include "fairmpi/spc/spc.hpp"

#include <sstream>

namespace fairmpi::spc {

const char* counter_name(Counter c) noexcept {
  switch (c) {
    case Counter::kMessagesSent: return "MessagesSent";
    case Counter::kMessagesReceived: return "MessagesReceived";
    case Counter::kBytesSent: return "BytesSent";
    case Counter::kBytesReceived: return "BytesReceived";
    case Counter::kUnexpectedMessages: return "UnexpectedMessages";
    case Counter::kOutOfSequence: return "OutOfSequence";
    case Counter::kMatchTimeNs: return "MatchTimeNs";
    case Counter::kMatchAttempts: return "MatchAttempts";
    case Counter::kPostedQueueDepth: return "PostedQueueDepth";
    case Counter::kUnexpectedQueueDepth: return "UnexpectedQueueDepth";
    case Counter::kOosBufferPeak: return "OosBufferPeak";
    case Counter::kSendBackpressure: return "SendBackpressure";
    case Counter::kProgressCalls: return "ProgressCalls";
    case Counter::kProgressCompletions: return "ProgressCompletions";
    case Counter::kInstanceTrylockFail: return "InstanceTrylockFail";
    case Counter::kInstanceLockWaitNs: return "InstanceLockWaitNs";
    case Counter::kRmaPuts: return "RmaPuts";
    case Counter::kRmaGets: return "RmaGets";
    case Counter::kRmaAccumulates: return "RmaAccumulates";
    case Counter::kRmaFlushes: return "RmaFlushes";
    case Counter::kHeaderDrops: return "HeaderDrops";
    case Counter::kCsumDrops: return "CsumDrops";
    case Counter::kDupDiscards: return "DupDiscards";
    case Counter::kRetransmits: return "Retransmits";
    case Counter::kAcksSent: return "AcksSent";
    case Counter::kAcksReceived: return "AcksReceived";
    case Counter::kReliabilityErrors: return "ReliabilityErrors";
    case Counter::kWatchdogStalls: return "WatchdogStalls";
    case Counter::kSubmitQueued: return "SubmitQueued";
    case Counter::kSubmitRingFull: return "SubmitRingFull";
    case Counter::kSubmitDoorbells: return "SubmitDoorbells";
    case Counter::kSubmitCasRetries: return "SubmitCasRetries";
    case Counter::kRmaFlushAllBusy: return "RmaFlushAllBusy";
    case Counter::kFtHeartbeatsSent: return "FtHeartbeatsSent";
    case Counter::kFtHeartbeatsReceived: return "FtHeartbeatsReceived";
    case Counter::kFtSuspects: return "FtSuspects";
    case Counter::kFtDeaths: return "FtDeaths";
    case Counter::kFtPeerFailedOps: return "FtPeerFailedOps";
    case Counter::kFtRevokedOps: return "FtRevokedOps";
    case Counter::kOverloadShedMessages: return "OverloadShedMessages";
    case Counter::kOverloadNacksSent: return "OverloadNacksSent";
    case Counter::kOverloadNacksReceived: return "OverloadNacksReceived";
    case Counter::kOverloadPausedPeers: return "OverloadPausedPeers";
    case Counter::kOverloadLevelChanges: return "OverloadLevelChanges";
    case Counter::kOverloadPoolPeak: return "OverloadPoolPeak";
    case Counter::kCancelledOps: return "CancelledOps";
    case Counter::kDeadlineExceededOps: return "DeadlineExceededOps";
    case Counter::kQuiesceTimeouts: return "QuiesceTimeouts";
    case Counter::kCollOps: return "CollOps";
    case Counter::kCollRounds: return "CollRounds";
    case Counter::kCollSegments: return "CollSegments";
    case Counter::kCollLaneAcquires: return "CollLaneAcquires";
    case Counter::kCollLaneWaits: return "CollLaneWaits";
    case Counter::kCollBinomialOps: return "CollBinomialOps";
    case Counter::kCollRsagOps: return "CollRsagOps";
    case Counter::kCollPipelinedOps: return "CollPipelinedOps";
    case Counter::kReservedTagRejects: return "ReservedTagRejects";
    case Counter::kCount: break;
  }
  return "Unknown";
}

Snapshot Snapshot::delta_since(const Snapshot& earlier) const noexcept {
  Snapshot out;
  for (int i = 0; i < kNumCounters; ++i) {
    const auto c = static_cast<Counter>(i);
    const auto idx = static_cast<std::size_t>(i);
    out.values[idx] = is_high_water(c) ? values[idx] : values[idx] - earlier.values[idx];
  }
  return out;
}

void Snapshot::merge(const Snapshot& other) noexcept {
  for (int i = 0; i < kNumCounters; ++i) {
    const auto c = static_cast<Counter>(i);
    const auto idx = static_cast<std::size_t>(i);
    if (is_high_water(c)) {
      values[idx] = values[idx] > other.values[idx] ? values[idx] : other.values[idx];
    } else {
      values[idx] += other.values[idx];
    }
  }
}

std::string Snapshot::to_string() const {
  std::ostringstream os;
  for (int i = 0; i < kNumCounters; ++i) {
    const auto c = static_cast<Counter>(i);
    os << counter_name(c) << " = " << values[static_cast<std::size_t>(i)] << '\n';
  }
  return os.str();
}

CounterSet::~CounterSet() {
  for (auto& slot : shards_) {
    delete slot.load(std::memory_order_acquire);
  }
}

CounterSet::Shard& CounterSet::slow_shard(std::size_t idx) noexcept {
  auto* fresh = new Shard();
  Shard* expected = nullptr;
  // For a private slot only the owning thread installs, but the overflow
  // slot (and a snapshot() racing first-touch) makes CAS the safe idiom;
  // the loser frees its copy and adopts the winner's shard.
  if (shards_[idx].compare_exchange_strong(expected, fresh, std::memory_order_acq_rel,
                                           std::memory_order_acquire)) {
    return *fresh;
  }
  delete fresh;
  return *expected;
}

CounterSet::Shard& CounterSet::overflow_shard() noexcept {
  Shard* s = shards_[common::kMaxThreadSlots].load(std::memory_order_acquire);
  if (s != nullptr) return *s;
  return slow_shard(common::kMaxThreadSlots);
}

void CounterSet::add_shared(Counter c, std::uint64_t n) noexcept {
  // Shared cell: many overflow threads write it, so a real RMW is required.
  overflow_shard().cells[static_cast<std::size_t>(c)].fetch_add(n, std::memory_order_relaxed);
}

void CounterSet::max_shared(Counter c, std::uint64_t candidate) noexcept {
  auto& cell = overflow_shard().cells[static_cast<std::size_t>(c)];
  std::uint64_t cur = cell.load(std::memory_order_relaxed);
  while (candidate > cur &&
         !cell.compare_exchange_weak(cur, candidate, std::memory_order_relaxed)) {
  }
}

std::uint64_t CounterSet::raw_total(Counter c) const noexcept {
  const auto idx = static_cast<std::size_t>(c);
  std::uint64_t total = 0;
  for (const auto& slot : shards_) {
    const Shard* s = slot.load(std::memory_order_acquire);
    if (s == nullptr) continue;
    const std::uint64_t v = s->cells[idx].load(std::memory_order_relaxed);
    total = is_high_water(c) ? (v > total ? v : total) : total + v;
  }
  return total;
}

std::uint64_t CounterSet::get(Counter c) const noexcept {
  const std::uint64_t total = raw_total(c);
  if (is_high_water(c)) return total;
  const std::uint64_t base = base_[static_cast<std::size_t>(c)].load(std::memory_order_relaxed);
  // Sums are monotone, so total >= base except mid-race; clamp for safety.
  return total >= base ? total - base : 0;
}

Snapshot CounterSet::snapshot() const noexcept {
  Snapshot out;
  for (int i = 0; i < kNumCounters; ++i) {
    out.values[static_cast<std::size_t>(i)] = get(static_cast<Counter>(i));
  }
  return out;
}

Snapshot CounterSet::lifetime_snapshot() const noexcept {
  Snapshot out;
  for (int i = 0; i < kNumCounters; ++i) {
    out.values[static_cast<std::size_t>(i)] = raw_total(static_cast<Counter>(i));
  }
  return out;
}

void CounterSet::reset() noexcept {
  for (int i = 0; i < kNumCounters; ++i) {
    const auto c = static_cast<Counter>(i);
    if (is_high_water(c)) continue;  // lifetime maxima survive reset()
    // Rebase instead of zeroing the cells: an add() racing this reset lands
    // in its shard either before or after the sum above — never lost, only
    // attributed to the old or the new epoch.
    base_[static_cast<std::size_t>(i)].store(raw_total(c), std::memory_order_relaxed);
  }
}

}  // namespace fairmpi::spc
