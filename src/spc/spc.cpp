#include "fairmpi/spc/spc.hpp"

#include <sstream>

namespace fairmpi::spc {

const char* counter_name(Counter c) noexcept {
  switch (c) {
    case Counter::kMessagesSent: return "MessagesSent";
    case Counter::kMessagesReceived: return "MessagesReceived";
    case Counter::kBytesSent: return "BytesSent";
    case Counter::kBytesReceived: return "BytesReceived";
    case Counter::kUnexpectedMessages: return "UnexpectedMessages";
    case Counter::kOutOfSequence: return "OutOfSequence";
    case Counter::kMatchTimeNs: return "MatchTimeNs";
    case Counter::kMatchAttempts: return "MatchAttempts";
    case Counter::kPostedQueueDepth: return "PostedQueueDepth";
    case Counter::kUnexpectedQueueDepth: return "UnexpectedQueueDepth";
    case Counter::kOosBufferPeak: return "OosBufferPeak";
    case Counter::kSendBackpressure: return "SendBackpressure";
    case Counter::kProgressCalls: return "ProgressCalls";
    case Counter::kProgressCompletions: return "ProgressCompletions";
    case Counter::kInstanceTrylockFail: return "InstanceTrylockFail";
    case Counter::kInstanceLockWaitNs: return "InstanceLockWaitNs";
    case Counter::kRmaPuts: return "RmaPuts";
    case Counter::kRmaGets: return "RmaGets";
    case Counter::kRmaAccumulates: return "RmaAccumulates";
    case Counter::kRmaFlushes: return "RmaFlushes";
    case Counter::kCount: break;
  }
  return "Unknown";
}

namespace {
bool is_high_water(Counter c) noexcept { return c == Counter::kOosBufferPeak; }
}  // namespace

Snapshot Snapshot::delta_since(const Snapshot& earlier) const noexcept {
  Snapshot out;
  for (int i = 0; i < kNumCounters; ++i) {
    const auto c = static_cast<Counter>(i);
    const auto idx = static_cast<std::size_t>(i);
    out.values[idx] = is_high_water(c) ? values[idx] : values[idx] - earlier.values[idx];
  }
  return out;
}

void Snapshot::merge(const Snapshot& other) noexcept {
  for (int i = 0; i < kNumCounters; ++i) {
    const auto c = static_cast<Counter>(i);
    const auto idx = static_cast<std::size_t>(i);
    if (is_high_water(c)) {
      values[idx] = values[idx] > other.values[idx] ? values[idx] : other.values[idx];
    } else {
      values[idx] += other.values[idx];
    }
  }
}

std::string Snapshot::to_string() const {
  std::ostringstream os;
  for (int i = 0; i < kNumCounters; ++i) {
    const auto c = static_cast<Counter>(i);
    os << counter_name(c) << " = " << values[static_cast<std::size_t>(i)] << '\n';
  }
  return os.str();
}

}  // namespace fairmpi::spc
