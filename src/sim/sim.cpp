#include "fairmpi/sim/sim.hpp"

#include <algorithm>

namespace fairmpi::sim {

Simulation::~Simulation() {
  // Destroy anything still queued (suspended actors that never finished),
  // then the root frames. Queue handles may include roots; destroy roots
  // exactly once via the roots_ list and skip queued handles that belong to
  // roots. Non-root queued handles (awaited children) are owned by their
  // parent Task objects, which live in a root's frame, so destroying the
  // root frame releases them — destroying them here too would double-free.
  // Hence: only roots are destroyed explicitly.
  while (!queue_.empty()) queue_.pop();
  for (auto h : roots_) {
    if (h) h.destroy();
  }
}

void Simulation::spawn(Task task) {
  auto h = task.release();
  FAIRMPI_CHECK_MSG(h, "spawn of an empty task");
  roots_.push_back(h);
  schedule(now_, h);
}

void Simulation::schedule(Time at, std::coroutine_handle<> h) {
  FAIRMPI_CHECK_MSG(at >= now_, "cannot schedule into the past");
  queue_.push(Event{at, next_seq_++, h});
}

void Simulation::reap_done_roots() {
  for (auto& h : roots_) {
    if (h && h.done()) {
      h.destroy();
      h = nullptr;
    }
  }
  roots_.erase(std::remove(roots_.begin(), roots_.end(),
                           std::coroutine_handle<Task::promise_type>{}),
               roots_.end());
}

Time Simulation::run() {
  while (!queue_.empty()) {
    const Event ev = queue_.top();
    queue_.pop();
    now_ = ev.at;
    ++events_;
    ev.handle.resume();
  }
  reap_done_roots();
  return now_;
}

bool Simulation::run_until(Time deadline) {
  while (!queue_.empty() && queue_.top().at <= deadline) {
    const Event ev = queue_.top();
    queue_.pop();
    now_ = ev.at;
    ++events_;
    ev.handle.resume();
  }
  if (now_ < deadline) now_ = deadline;
  // Periodic reap keeps long simulations from accumulating dead frames.
  reap_done_roots();
  return !queue_.empty();
}

}  // namespace fairmpi::sim
