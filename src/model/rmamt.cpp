#include "fairmpi/model/rmamt.hpp"

#include <deque>
#include <memory>
#include <vector>

#include "fairmpi/common/error.hpp"
#include "fairmpi/common/rng.hpp"

namespace fairmpi::model {

namespace {

using cri::Assignment;
using sim::SimMutex;
using sim::Simulation;
using sim::Task;
using sim::Time;

/// A put completion parked on an instance CQ; visible once the wire has
/// delivered the payload.
struct Cqe {
  int thread = 0;
  Time ready = 0;
};

struct World {
  explicit World(const RmaModelConfig& config)
      : cfg(config), C(config.costs), master(config.seed), lock_rng(master.fork()) {
    for (int i = 0; i < cfg.instances; ++i) {
      locks.push_back(std::make_unique<SimMutex>(sim, C.lock_handoff_base,
                                                 C.lock_handoff_per_waiter, &lock_rng));
    }
    cqs.resize(static_cast<std::size_t>(cfg.instances));
    pending.assign(static_cast<std::size_t>(cfg.threads), 0);
    last_instance.assign(static_cast<std::size_t>(cfg.threads), -1);
  }

  const RmaModelConfig& cfg;
  CostModel C;
  Simulation sim;
  Xoshiro256 master;
  Xoshiro256 lock_rng;

  std::vector<std::unique_ptr<SimMutex>> locks;
  std::vector<std::deque<Cqe>> cqs;
  double wire_next_free = 0;

  std::vector<std::uint64_t> pending;  ///< outstanding puts per thread
  std::vector<int> last_instance;      ///< affinity tracking (RR migration)
  std::uint64_t rr = 0;
  std::uint64_t ops_in_window = 0;
};

Time jit(const CostModel& C, Xoshiro256& rng, Time base) {
  if (base == 0 || C.jitter_frac <= 0) return base;
  const double u = rng.uniform() * 2.0 - 1.0;
  const double v = static_cast<double>(base) * (1.0 + C.jitter_frac * u);
  return v < 1.0 ? 1 : static_cast<Time>(v);
}

/// Drain ready completions from one instance CQ (lock held by caller).
/// Returns via out-param how many entries were retired.
Task drain_cq(World& w, Xoshiro256& rng, int k, std::size_t& retired) {
  co_await w.sim.delay(jit(w.C, rng, w.C.rma_flush_poll));
  auto& cq = w.cqs[static_cast<std::size_t>(k)];
  while (!cq.empty() && cq.front().ready <= w.sim.now()) {
    const Cqe e = cq.front();
    cq.pop_front();
    FAIRMPI_CHECK(w.pending[static_cast<std::size_t>(e.thread)] > 0);
    --w.pending[static_cast<std::size_t>(e.thread)];
    ++retired;
  }
}

/// One RMA-MT thread: rounds of `ops_per_round` puts, then flush.
Task rma_thread(World& w, int t) {
  Xoshiro256 rng = w.master.fork();
  const CostModel& C = w.C;
  const RmaModelConfig& cfg = w.cfg;
  const auto ti = static_cast<std::size_t>(t);

  for (;;) {
    for (int op = 0; op < cfg.ops_per_round; ++op) {
      // Instance selection (Alg. 1).
      int k;
      if (cfg.assignment == Assignment::kDedicated) {
        k = t % cfg.instances;
        co_await w.sim.delay(jit(C, rng, C.tls_lookup));
      } else {
        k = static_cast<int>(w.rr++ % static_cast<std::uint64_t>(cfg.instances));
        co_await w.sim.delay(C.atomic_op);
      }
      // Losing instance affinity costs a working-set migration (descriptor
      // rings, doorbell page) — the round-robin tax the paper observes.
      if (w.last_instance[ti] != k) {
        co_await w.sim.delay(jit(C, rng, C.rma_migration));
        w.last_instance[ti] = k;
      }

      SimMutex& lk = *w.locks[static_cast<std::size_t>(k)];
      co_await lk.acquire();
      const Time cpu = jit(C, rng,
                           C.rma_op_cpu + static_cast<Time>(C.rma_byte_ns *
                                                            static_cast<double>(
                                                                cfg.message_size)));
      co_await w.sim.delay(cpu);

      // Wire pacing (shared NIC).
      const double svc = C.wire_service_ns(cfg.message_size);
      const double now_d = static_cast<double>(w.sim.now());
      w.wire_next_free = (w.wire_next_free > now_d ? w.wire_next_free : now_d) + svc;
      const Time arrival = static_cast<Time>(w.wire_next_free);
      w.cqs[static_cast<std::size_t>(k)].push_back(Cqe{t, arrival});
      ++w.pending[ti];
      lk.release();
      // An op counts when the wire has carried it, attributed to the
      // window its arrival falls in — injection bursts queued on the NIC
      // cannot inflate the reported rate beyond the wire peak.
      if (arrival > cfg.warmup_ns && arrival <= cfg.warmup_ns + cfg.measure_ns) {
        ++w.ops_in_window;
      }
    }

    // MPI_Win_flush: drain own instance first, then sweep (btl-level flush
    // behaviour; identical under both progress designs, except the serial
    // design's incidental opal_progress gate probe).
    if (cfg.progress == progress::ProgressMode::kSerial) {
      co_await w.sim.delay(jit(C, rng, C.progress_gate));
    }
    Time backoff = C.rma_flush_poll;
    while (w.pending[ti] > 0) {
      const int own = cfg.assignment == Assignment::kDedicated
                          ? t % cfg.instances
                          : static_cast<int>(w.rr++ %
                                             static_cast<std::uint64_t>(cfg.instances));
      std::size_t retired = 0;
      for (int i = 0; i < cfg.instances && w.pending[ti] > 0; ++i) {
        const int k = (own + i) % cfg.instances;
        SimMutex& lk = *w.locks[static_cast<std::size_t>(k)];
        if (!lk.try_acquire()) continue;
        co_await drain_cq(w, rng, k, retired);
        lk.release();
        // Dedicated threads' completions live on their own instance; stop
        // sweeping once something was retired there.
        if (retired > 0 && cfg.assignment == Assignment::kDedicated) break;
      }
      if (w.pending[ti] > 0 && retired == 0) {
        co_await w.sim.delay(jit(C, rng, backoff));
        if (backoff < 4000) backoff *= 2;
      }
    }
  }
}

}  // namespace

RmaModelResult run_rma_model(const RmaModelConfig& cfg) {
  FAIRMPI_CHECK(cfg.threads >= 1);
  FAIRMPI_CHECK(cfg.instances >= 1);
  FAIRMPI_CHECK(cfg.ops_per_round >= 1);

  World w(cfg);
  for (int t = 0; t < cfg.threads; ++t) w.sim.spawn(rma_thread(w, t));

  // Run past the window end so in-flight rounds whose arrivals fall inside
  // the window are actually injected.
  w.sim.run_until(cfg.warmup_ns + cfg.measure_ns + cfg.measure_ns / 4);

  RmaModelResult res;
  res.ops = w.ops_in_window;
  res.msg_rate = static_cast<double>(res.ops) * 1e9 / static_cast<double>(cfg.measure_ns);
  res.peak_rate = cfg.costs.wire_peak_rate(cfg.message_size);
  res.events = w.sim.events_processed();
  return res;
}

}  // namespace fairmpi::model
