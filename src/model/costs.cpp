#include "fairmpi/model/costs.hpp"

namespace fairmpi::model {

CostModel alembert() {
  CostModel c;  // the defaults are the Alembert calibration
  c.name = "alembert";
  return c;
}

CostModel trinitite_haswell() {
  CostModel c;
  c.name = "trinitite-haswell";
  // Aries (ugni) has slightly higher per-op software cost than the IB uct
  // path but the same order of magnitude; the RMA constants are the ones
  // that matter for Fig. 6.
  c.rma_op_cpu = 980;
  c.wire_msg_gap_ns = 34.0;  // ~29 M msg/s small-message peak
  c.wire_byte_ns = 0.08;     // 100 Gb/s
  return c;
}

CostModel trinitite_knl() {
  CostModel c = trinitite_haswell();
  c.name = "trinitite-knl";
  // KNL cores run the serial MPI software path roughly 3x slower than
  // Haswell cores (low clock, narrow OoO window); the fabric is the same.
  c.atomic_op *= 3;
  c.tls_lookup *= 3;
  c.lock_uncontended *= 3;
  c.lock_handoff_base *= 2;
  c.send_path *= 3;
  c.send_inject *= 3;
  c.progress_gate *= 3;
  c.poll_empty *= 3;
  c.extract_msg *= 3;
  c.match_base *= 3;
  c.recv_post *= 3;
  c.wait_spin *= 3;
  c.rma_op_cpu = 3100;
  c.rma_byte_ns = 0.035;  // weaker per-core copy bandwidth
  c.rma_flush_poll *= 3;
  c.rma_migration *= 2;
  return c;
}

}  // namespace fairmpi::model
