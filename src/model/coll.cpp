#include "fairmpi/model/coll.hpp"

#include <algorithm>
#include <cmath>

namespace fairmpi::model {

namespace {

/// Cost of one point-to-point hop carrying `bytes`: sender path + inject,
/// receiver extract + match, and wire serialization. The per-byte rate is
/// derived from the wire model's 100 Gb/s link (0.08 ns/byte) — collective
/// bandwidth terms only need the right order of magnitude relative to the
/// per-hop constant.
double hop_ns(const CostModel& c, double bytes) {
  constexpr double kNsPerByte = 0.08;
  return static_cast<double>(c.send_path + c.send_inject + c.extract_msg +
                             c.match_base + c.recv_post) +
         bytes * kNsPerByte;
}

double log2_ceil(int n) { return std::ceil(std::log2(static_cast<double>(std::max(n, 2)))); }

}  // namespace

double coll_latency_ns(const CollModelConfig& cfg) {
  const CostModel& c = cfg.costs;
  const int n = std::max(cfg.ranks, 1);
  const auto bytes = static_cast<double>(cfg.payload_bytes);
  const double hops = log2_ceil(n);

  double one = 0.0;  // latency of a single collective, uncontended
  switch (cfg.algo) {
    case CollAlgo::kBinomialBcast:
      one = hops * hop_ns(c, bytes);
      break;
    case CollAlgo::kPipelinedBcast: {
      const auto seg = static_cast<double>(std::max<std::size_t>(cfg.segment_bytes, 1));
      const double segs = std::ceil(bytes / seg);
      // Pipeline fill (tree depth) + steady-state drain of the remaining
      // segments through the slowest link.
      one = hops * hop_ns(c, seg) + (segs - 1.0) * hop_ns(c, seg);
      break;
    }
    case CollAlgo::kBinomialReduce:
      one = hops * (hop_ns(c, bytes) + static_cast<double>(c.atomic_op) * bytes / 8.0);
      break;
    case CollAlgo::kReduceBcast:
      one = 2.0 * hops * hop_ns(c, bytes);
      break;
    case CollAlgo::kRsagAllreduce: {
      const double chunk = bytes / static_cast<double>(n);
      one = 2.0 * static_cast<double>(n - 1) * hop_ns(c, chunk);
      break;
    }
  }

  const int t = std::max(cfg.threads, 1);
  if (cfg.comm_per_thread || t == 1) {
    // Tag-lane / per-thread-communicator design: trees share only the
    // progress engine. Mild sublinear interference from the shared
    // per-process section (the paper's Fig. 5 residual bottleneck).
    return one + static_cast<double>(c.process_shared) * std::log2(static_cast<double>(t) + 1.0) *
                     hops;
  }
  // One communicator, one matching lock: every hop of every thread's tree
  // serializes through it, plus contended-handoff penalties that grow with
  // the number of spinners — collectives effectively run back-to-back.
  const double handoff = static_cast<double>(c.match_handoff_base) +
                         static_cast<double>(c.lock_handoff_per_waiter) * (t - 1);
  return static_cast<double>(t) * one + handoff * hops * static_cast<double>(t - 1);
}

}  // namespace fairmpi::model
