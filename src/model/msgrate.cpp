#include "fairmpi/model/msgrate.hpp"

#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "fairmpi/common/error.hpp"
#include "fairmpi/common/rng.hpp"

namespace fairmpi::model {

namespace {

using cri::Assignment;
using progress::ProgressMode;
using sim::SimMutex;
using sim::Simulation;
using sim::Task;
using sim::Time;

/// One in-flight envelope. `arrival` is when the wire has delivered it and
/// it becomes visible to the receiver's polling.
struct Msg {
  int pair = 0;
  std::uint64_t seq = 0;
  Time arrival = 0;
};

/// Matching state of one communicator (single source process per comm in
/// this benchmark, so one sequence stream per comm).
struct CommState {
  explicit CommState(Simulation& sim, int pairs, Xoshiro256* lock_rng, Time hb, Time hw)
      : lock(sim, hb, hw, lock_rng), posted(static_cast<std::size_t>(pairs), 0),
        unexpected(static_cast<std::size_t>(pairs), 0) {}

  SimMutex lock;                       ///< the per-communicator matching lock
  std::uint64_t next_seq = 0;          ///< sender-side ticket counter
  std::uint64_t expected = 0;          ///< receiver-side sequence validation
  std::map<std::uint64_t, int> reorder;  ///< out-of-sequence buffer: seq -> pair
  std::vector<int> posted;             ///< posted receives per pair (tag)
  std::vector<int> unexpected;         ///< unexpected messages per pair
  int posted_total = 0;
};

struct World {
  explicit World(const MsgRateConfig& config)
      : cfg(config), C(config.costs), master(config.seed), lock_rng(master.fork()) {
    const int n_resources = cfg.process_mode ? cfg.pairs : cfg.instances;
    const int n_comms = (cfg.comm_per_pair || cfg.process_mode) ? cfg.pairs : 1;

    auto make_locks = [&](std::vector<std::unique_ptr<SimMutex>>& out) {
      for (int i = 0; i < n_resources; ++i) {
        // Instance locks are TAS spinlocks: random grant order.
        out.push_back(std::make_unique<SimMutex>(sim, C.lock_handoff_base,
                                                 C.lock_handoff_per_waiter, &lock_rng));
      }
    };
    make_locks(send_locks);
    make_locks(prog_locks);
    rings.resize(static_cast<std::size_t>(n_resources));

    gate = std::make_unique<SimMutex>(sim);  // try-only; order irrelevant
    // Offload "comm threads": FIFO, no handoff penalty — a single driver
    // keeps the engine's working set hot in its own cache.
    offload_snd = std::make_unique<SimMutex>(sim);
    offload_rcv = std::make_unique<SimMutex>(sim);
    big_lock = std::make_unique<SimMutex>(sim, C.lock_handoff_base,
                                          C.lock_handoff_per_waiter, &lock_rng);
    // The shared-process section is a set of scattered atomics rather than
    // one lock line, so its handoff penalty is far milder than a CRI lock.
    shared_snd = std::make_unique<SimMutex>(sim, C.lock_handoff_base / 4,
                                            C.lock_handoff_per_waiter / 10, &lock_rng);
    shared_rcv = std::make_unique<SimMutex>(sim, C.lock_handoff_base / 4,
                                            C.lock_handoff_per_waiter / 10, &lock_rng);

    for (int c = 0; c < n_comms; ++c) {
      // The matching lock's handoff penalty is charged explicitly inside
      // the timed critical section (match_incoming) so the MATCH_TIME
      // counter sees it, as the paper's SPC does; hence 0 here.
      comms.push_back(std::make_unique<CommState>(sim, cfg.pairs, &lock_rng, 0, 0));
    }

    completed.assign(static_cast<std::size_t>(cfg.pairs), 0);
    rr_send = 0;
    rr_prog = 0;
  }

  int comm_of(int pair) const {
    return (cfg.comm_per_pair || cfg.process_mode) ? pair : 0;
  }
  int num_resources() const { return static_cast<int>(rings.size()); }

  const MsgRateConfig& cfg;
  CostModel C;
  Simulation sim;
  Xoshiro256 master;
  Xoshiro256 lock_rng;

  // Per-"context" resources. In thread mode there are cfg.instances of
  // them shared by all pairs; in process mode each pair owns its own.
  std::vector<std::unique_ptr<SimMutex>> send_locks;  // sender node CRIs
  std::vector<std::unique_ptr<SimMutex>> prog_locks;  // receiver node CRIs
  std::vector<std::deque<Msg>> rings;                 // receiver RX rings

  std::unique_ptr<SimMutex> gate;        // serial progress gate (receiver node)
  std::unique_ptr<SimMutex> offload_snd; // offload comm-thread, sender node
  std::unique_ptr<SimMutex> offload_rcv; // offload comm-thread, receiver node
  std::unique_ptr<SimMutex> big_lock;    // global-lock baseline
  std::unique_ptr<SimMutex> shared_snd;  // shared-process section, sender node
  std::unique_ptr<SimMutex> shared_rcv;  // shared-process section, receiver node

  std::vector<std::unique_ptr<CommState>> comms;

  double wire_next_free_snd = 0;  // sender node NIC occupancy

  // Counters (stats).
  std::vector<std::uint64_t> completed;  // per pair
  std::uint64_t delivered_total = 0;
  std::uint64_t sent_total = 0;
  std::uint64_t oos_total = 0;
  std::uint64_t incoming_total = 0;  ///< envelopes that entered matching
  std::uint64_t match_time = 0;

  std::uint64_t rr_send = 0, rr_prog = 0;
};

/// Multiplicative jitter: base * U[1-f, 1+f].
Time jit(const CostModel& C, Xoshiro256& rng, Time base) {
  if (base == 0 || C.jitter_frac <= 0) return base;
  const double u = rng.uniform() * 2.0 - 1.0;
  const double v = static_cast<double>(base) * (1.0 + C.jitter_frac * u);
  return v < 1.0 ? 1 : static_cast<Time>(v);
}

/// Deliver one in-order envelope to its pair: complete a posted receive or
/// queue as unexpected. Pure bookkeeping (costs are charged by the caller).
void deliver(World& w, CommState& comm, int pair) {
  auto idx = static_cast<std::size_t>(pair);
  if (comm.posted[idx] > 0) {
    --comm.posted[idx];
    --comm.posted_total;
    ++w.completed[idx];
    ++w.delivered_total;
  } else {
    ++comm.unexpected[idx];
  }
}

/// Match one extracted envelope (assumes the communicator's match lock is
/// NOT held; acquires it, charges the matching costs, releases).
/// Match time is accounted from before the lock acquisition, like the
/// paper's MATCH_TIME software counter.
Task match_incoming(World& w, Xoshiro256& rng, Msg msg) {
  CommState& comm = *w.comms[static_cast<std::size_t>(w.comm_of(msg.pair))];
  const CostModel& C = w.C;
  const bool contended = comm.lock.locked();
  co_await comm.lock.acquire();
  // Time-in-matching starts once the lock is ours (the paper's MATCH_TIME
  // semantics); the first cost is the cache-coherence penalty of taking
  // over matching state another thread just wrote — the reason concurrent
  // progress inflates matching time ~3x (Table II) even though the
  // matching work itself is unchanged.
  const Time t0 = w.sim.now();
  ++w.incoming_total;
  if (contended || comm.lock.waiters() > 0) {
    const auto spinners = comm.lock.waiters() < 12 ? comm.lock.waiters() : std::size_t{12};
    co_await w.sim.delay(jit(C, rng,
                             C.match_handoff_base +
                                 C.match_handoff_per_waiter * static_cast<Time>(spinners)));
  }

  auto search_cost = [&]() -> Time {
    if (w.cfg.any_tag) return jit(C, rng, C.match_any_tag);
    // Linear scan of the posted queue. In-sequence consumption keeps the
    // match near the front of its tag's run: the entries ahead of it are
    // (at most a few) unconsumed entries of the *other* tags sharing the
    // communicator, so the effective scan depth is O(pairs-in-comm), not
    // O(pairs * window).
    const int pairs_in_comm =
        (w.cfg.comm_per_pair || w.cfg.process_mode) ? 1 : w.cfg.pairs;
    const int depth = comm.posted_total < 4 * pairs_in_comm ? comm.posted_total
                                                            : 4 * pairs_in_comm;
    return jit(C, rng,
               C.match_base / 4 +
                   C.match_search_per_entry * static_cast<Time>(depth / 2 + 1));
  };

  if (w.cfg.overtaking) {
    // Sequence validation skipped: every envelope matches immediately.
    co_await w.sim.delay(search_cost());
    deliver(w, comm, msg.pair);
  } else {
    co_await w.sim.delay(jit(C, rng, C.match_base));  // sequence validation
    if (msg.seq != comm.expected) {
      // Out of sequence: allocate + insert into the reorder buffer.
      ++w.oos_total;
      co_await w.sim.delay(jit(C, rng, C.oos_insert));
      comm.reorder.emplace(msg.seq, msg.pair);
    } else {
      ++comm.expected;
      co_await w.sim.delay(search_cost());
      deliver(w, comm, msg.pair);
      // Drain now-in-order buffered envelopes.
      for (auto it = comm.reorder.find(comm.expected); it != comm.reorder.end();
           it = comm.reorder.find(comm.expected)) {
        const int pair = it->second;
        comm.reorder.erase(it);
        ++comm.expected;
        co_await w.sim.delay(jit(C, rng, C.oos_drain) + search_cost());
        deliver(w, comm, pair);
      }
    }
  }
  comm.lock.release();
  w.match_time += w.sim.now() - t0;
}

/// Drain one RX ring (its instance lock must be held by the caller):
/// extract up to one batch of arrived envelopes and run matching on each.
Task drain_ring(World& w, Xoshiro256& rng, int ring_idx, std::size_t& extracted) {
  const CostModel& C = w.C;
  co_await w.sim.delay(jit(C, rng, C.poll_empty));
  auto& ring = w.rings[static_cast<std::size_t>(ring_idx)];
  for (int i = 0; i < C.progress_batch; ++i) {
    if (ring.empty() || ring.front().arrival > w.sim.now()) break;
    Msg msg = ring.front();
    ring.pop_front();
    co_await w.sim.delay(jit(C, rng, C.extract_msg));
    co_await match_incoming(w, rng, msg);
    ++extracted;
  }
}

/// One progress-engine call on the receiver node by pair `p`'s thread.
Task progress_once(World& w, Xoshiro256& rng, int p, std::size_t& got) {
  const CostModel& C = w.C;
  const MsgRateConfig& cfg = w.cfg;
  co_await w.sim.delay(jit(C, rng, C.progress_gate));

  if (cfg.process_mode) {
    // Single-threaded process: progress its own (only) context directly.
    co_await drain_ring(w, rng, p, got);
    co_return;
  }

  if (cfg.global_lock) {
    // Big-lock design: the whole engine is one critical section.
    co_await w.big_lock->acquire();
    co_await drain_ring(w, rng, 0, got);
    w.big_lock->release();
    co_return;
  }

  if (cfg.offload) {
    // One dedicated driver extracts; waiting entities queue FIFO on it
    // (modeling the command/completion queue, not a contended lock).
    co_await w.offload_rcv->acquire();
    co_await drain_ring(w, rng, 0, got);
    w.offload_rcv->release();
    co_return;
  }

  if (cfg.progress == ProgressMode::kSerial) {
    // Traditional design: one thread in the engine, others bail out.
    if (!w.gate->try_acquire()) co_return;
    for (int i = 0; i < w.num_resources(); ++i) {
      SimMutex& lk = *w.prog_locks[static_cast<std::size_t>(i)];
      co_await lk.acquire();
      co_await drain_ring(w, rng, i, got);
      lk.release();
    }
    w.gate->release();
    co_return;
  }

  // Algorithm 2: own instance first (per assignment policy), then sweep.
  const int own = cfg.assignment == Assignment::kDedicated
                      ? p % w.num_resources()
                      : static_cast<int>(w.rr_prog++ % static_cast<std::uint64_t>(
                                             w.num_resources()));
  co_await w.sim.delay(
      jit(C, rng, cfg.assignment == Assignment::kDedicated ? C.tls_lookup : C.atomic_op));
  {
    SimMutex& lk = *w.prog_locks[static_cast<std::size_t>(own)];
    if (lk.try_acquire()) {
      co_await drain_ring(w, rng, own, got);
      lk.release();
    }
  }
  if (got == 0) {
    for (int i = 0; i < w.num_resources(); ++i) {
      const int k = static_cast<int>(w.rr_prog++ %
                                     static_cast<std::uint64_t>(w.num_resources()));
      SimMutex& lk = *w.prog_locks[static_cast<std::size_t>(k)];
      if (!lk.try_acquire()) continue;
      co_await drain_ring(w, rng, k, got);
      lk.release();
      if (got > 0) break;
    }
  }
}

/// Sender entity for pair `p` (node 0): an endless stream of eager sends.
Task sender(World& w, int p) {
  Xoshiro256 rng = w.master.fork();
  const CostModel& C = w.C;
  const MsgRateConfig& cfg = w.cfg;
  CommState& comm = *w.comms[static_cast<std::size_t>(w.comm_of(p))];

  if (cfg.offload) {
    // Offload design: enqueue a command (one atomic), then the dedicated
    // comm actor executes the whole send path serially, uncontended.
    for (;;) {
      co_await w.sim.delay(C.atomic_op);  // command enqueue
      co_await w.offload_snd->acquire();
      co_await w.sim.delay(jit(C, rng, C.send_path) + jit(C, rng, C.send_inject));
      const std::uint64_t seq = comm.next_seq++;
      const double svc = C.wire_service_ns(cfg.payload_bytes);
      const double now_d = static_cast<double>(w.sim.now());
      w.wire_next_free_snd =
          (w.wire_next_free_snd > now_d ? w.wire_next_free_snd : now_d) + svc;
      const Time arrival = static_cast<Time>(w.wire_next_free_snd);
      auto& ring = w.rings[0];
      Time backoff = C.wait_spin * 4;
      while (ring.size() >= w.cfg.ring_entries) {
        w.offload_snd->release();
        co_await w.sim.delay(jit(C, rng, backoff));
        if (backoff < 4000) backoff *= 2;
        co_await w.offload_snd->acquire();
      }
      ring.push_back(Msg{p, seq, arrival});
      w.offload_snd->release();
      ++w.sent_total;
    }
  }

  for (;;) {
    // PML bookkeeping (request setup, descriptor).
    co_await w.sim.delay(jit(C, rng, C.send_path));

    if (!cfg.process_mode) {
      // Per-message touch of process-shared state (allocator, counters).
      co_await w.shared_snd->acquire();
      co_await w.sim.delay(jit(C, rng, C.process_shared));
      w.shared_snd->release();
    }

    // Sequence ticket — before resource acquisition, as in OB1. This is
    // the out-of-sequence race.
    if (!cfg.process_mode) co_await w.sim.delay(C.atomic_op);
    const std::uint64_t seq = comm.next_seq++;

    // Instance selection (Alg. 1).
    int k;
    if (cfg.process_mode) {
      k = p;
    } else if (cfg.global_lock) {
      k = 0;
    } else if (cfg.assignment == Assignment::kDedicated) {
      k = p % w.num_resources();
      co_await w.sim.delay(jit(C, rng, C.tls_lookup));
    } else {
      k = static_cast<int>(w.rr_send++ % static_cast<std::uint64_t>(w.num_resources()));
      co_await w.sim.delay(C.atomic_op);
    }

    SimMutex& lk = cfg.global_lock ? *w.big_lock : *w.send_locks[static_cast<std::size_t>(k)];
    co_await lk.acquire();
    co_await w.sim.delay(jit(C, rng, C.send_inject));

    // Wire pacing: the NIC serializes injected messages; the envelope
    // becomes visible at the receiver once the wire has carried it.
    const double svc = C.wire_service_ns(cfg.payload_bytes);
    const double now_d = static_cast<double>(w.sim.now());
    w.wire_next_free_snd = (w.wire_next_free_snd > now_d ? w.wire_next_free_snd : now_d) + svc;
    const Time arrival = static_cast<Time>(w.wire_next_free_snd);

    // RX ring with backpressure: full ring forces the sender to release
    // the instance and retry (the fabric's EAGAIN).
    const int ring_idx = k % w.num_resources();
    auto& ring = w.rings[static_cast<std::size_t>(ring_idx)];
    Time backoff = C.wait_spin * 4;
    while (ring.size() >= w.cfg.ring_entries) {
      lk.release();
      // Exponential backoff keeps the event count bounded while the
      // receiver is the bottleneck; a spinning sender burns only its own
      // (infinite, in this model) CPU, so the poll cadence is not
      // performance-relevant beyond reaction latency.
      co_await w.sim.delay(jit(C, rng, backoff));
      if (backoff < 4000) backoff *= 2;
      co_await lk.acquire();
    }
    ring.push_back(Msg{p, seq, arrival});
    lk.release();
    ++w.sent_total;
  }
}

/// Receiver entity for pair `p` (node 1): windows of irecv + progress.
Task receiver(World& w, int p) {
  Xoshiro256 rng = w.master.fork();
  const CostModel& C = w.C;
  const MsgRateConfig& cfg = w.cfg;
  CommState& comm = *w.comms[static_cast<std::size_t>(w.comm_of(p))];
  const auto idx = static_cast<std::size_t>(p);
  std::uint64_t issued = 0;

  for (;;) {
    // Post a window of receives (under the matching lock: the posted and
    // unexpected queues are matching state).
    for (int i = 0; i < cfg.window; ++i) {
      co_await w.sim.delay(jit(C, rng, C.recv_post));
      if (!cfg.process_mode) {
        co_await w.shared_rcv->acquire();
        co_await w.sim.delay(jit(C, rng, C.process_shared));
        w.shared_rcv->release();
      }
      co_await comm.lock.acquire();
      if (comm.unexpected[idx] > 0) {
        --comm.unexpected[idx];
        ++w.completed[idx];
        ++w.delivered_total;
      } else {
        ++comm.posted[idx];
        ++comm.posted_total;
      }
      comm.lock.release();
      ++issued;
    }
    // Wait for the window to complete, progressing the engine. Fruitless
    // progress attempts back off exponentially (bounded event count; the
    // spin cadence of a thread that extracts nothing does not affect the
    // extraction throughput of the threads doing work).
    Time backoff = C.wait_spin;
    while (w.completed[idx] < issued) {
      std::size_t got = 0;
      co_await progress_once(w, rng, p, got);
      if (got == 0) {
        co_await w.sim.delay(jit(C, rng, backoff));
        if (backoff < 4000) backoff *= 2;
      } else {
        backoff = C.wait_spin;
      }
    }
  }
}

}  // namespace

MsgRateResult run_msgrate(const MsgRateConfig& cfg) {
  FAIRMPI_CHECK(cfg.pairs >= 1);
  FAIRMPI_CHECK(cfg.instances >= 1);
  FAIRMPI_CHECK(cfg.window >= 1);
  FAIRMPI_CHECK_MSG(cfg.process_mode + cfg.global_lock + cfg.offload <= 1,
                    "process_mode, global_lock and offload are exclusive");

  World w(cfg);
  for (int p = 0; p < cfg.pairs; ++p) {
    w.sim.spawn(sender(w, p));
    w.sim.spawn(receiver(w, p));
  }

  w.sim.run_until(cfg.warmup_ns);
  const std::uint64_t delivered0 = w.delivered_total;
  const std::uint64_t sent0 = w.sent_total;
  const std::uint64_t oos0 = w.oos_total;
  const std::uint64_t incoming0 = w.incoming_total;
  const std::uint64_t match0 = w.match_time;

  w.sim.run_until(cfg.warmup_ns + cfg.measure_ns);

  MsgRateResult res;
  res.delivered = w.delivered_total - delivered0;
  res.sent = w.sent_total - sent0;
  res.out_of_sequence = w.oos_total - oos0;
  res.incoming = w.incoming_total - incoming0;
  res.match_time_ns = w.match_time - match0;
  res.msg_rate = static_cast<double>(res.delivered) * 1e9 /
                 static_cast<double>(cfg.measure_ns);
  res.oos_fraction = res.incoming
                         ? static_cast<double>(res.out_of_sequence) /
                               static_cast<double>(res.incoming)
                         : 0.0;
  res.events = w.sim.events_processed();
  return res;
}

}  // namespace fairmpi::model
