// Ack/retransmit tracker (see include/fairmpi/p2p/reliability.hpp).
//
// Hot-path discipline: the only steady-state allocations are the in-flight
// map's nodes, which exist exclusively when fault injection / reliability is
// switched on — the pristine-fabric hot path never reaches this file. The
// retransmit master copies recycle payload buffers through the fabric's
// size-classed pool (clone_packet).
#include "fairmpi/p2p/reliability.hpp"

#include "fairmpi/common/error.hpp"

namespace fairmpi::p2p {

ReliabilityTracker::ReliabilityTracker(std::uint64_t rto_ns, std::uint64_t rto_max_ns,
                                       int max_retries)
    : rto_ns_(rto_ns), rto_max_ns_(rto_max_ns), max_retries_(max_retries) {
  // max_retries == 0 is the fail-fast mode: the first unacked rto expiry
  // fails the entry typed without ever retransmitting.
  FAIRMPI_CHECK(rto_ns >= 1 && rto_max_ns >= rto_ns && max_retries >= 0);
}

void ReliabilityTracker::track(int dst, const fabric::Packet& pkt,
                               std::uint64_t now_ns) {
  Entry e;
  e.dst = dst;
  e.retries = 0;
  e.rto_ns = rto_ns_;
  e.deadline_ns = now_ns + rto_ns_;
  e.pkt = fabric::clone_packet(pkt);
  const PacketKey key = key_of(dst, pkt.hdr);

  LockGuard guard(lock_);
  const std::uint64_t deadline = e.deadline_ns;
  // lint: allow(hotpath-alloc) map node exists only under fault injection
  if (inflight_.insert_or_assign(key, std::move(e)).second) {
    in_flight_.fetch_add(1, std::memory_order_relaxed);
  }
  // lint: allow(relaxed-sync) advisory sweep hint; authoritative state is under lock_
  if (deadline < next_deadline_.load(std::memory_order_relaxed)) {
    next_deadline_.store(deadline, std::memory_order_relaxed);
  }
}

bool ReliabilityTracker::ack(const PacketKey& key) {
  LockGuard guard(lock_);
  if (inflight_.erase(key) == 0) return false;
  in_flight_.fetch_sub(1, std::memory_order_relaxed);
  return true;
}

void ReliabilityTracker::untrack(const PacketKey& key) {
  LockGuard guard(lock_);
  if (inflight_.erase(key) != 0) {
    in_flight_.fetch_sub(1, std::memory_order_relaxed);
  }
}

bool ReliabilityTracker::nack(const PacketKey& key, Failure* out) {
  LockGuard guard(lock_);
  const auto it = inflight_.find(key);
  if (it == inflight_.end()) return false;
  if (out != nullptr) {
    *out = Failure{key, it->second.retries, common::ErrorCode::kReceiverOverloaded};
  }
  inflight_.erase(it);
  in_flight_.fetch_sub(1, std::memory_order_relaxed);
  return true;
}

void ReliabilityTracker::sweep(std::uint64_t now_ns, std::vector<Resend>& resends,
                               std::vector<Failure>& failures) {
  LockGuard guard(lock_);
  std::uint64_t earliest = ~std::uint64_t{0};
  for (auto it = inflight_.begin(); it != inflight_.end();) {
    Entry& e = it->second;
    if (static_cast<std::size_t>(e.dst) < failed_peers_.size() &&
        failed_peers_[static_cast<std::size_t>(e.dst)]) {
      // Tracked after the peer's death was confirmed (racing send):
      // deadline is irrelevant, the link is permanently down.
      // lint: allow(hotpath-alloc) failure reporting is the cold outcome
      failures.push_back(Failure{it->first, e.retries,
                                 common::ErrorCode::kPeerFailed});
      it = inflight_.erase(it);
      in_flight_.fetch_sub(1, std::memory_order_relaxed);
      continue;
    }
    if (e.deadline_ns > now_ns) {
      if (e.deadline_ns < earliest) earliest = e.deadline_ns;
      ++it;
      continue;
    }
    if (e.retries >= max_retries_) {
      // lint: allow(hotpath-alloc) failure reporting is the cold outcome
      failures.push_back(Failure{it->first, e.retries,
                                 common::ErrorCode::kRetryExhausted});
      it = inflight_.erase(it);
      in_flight_.fetch_sub(1, std::memory_order_relaxed);
      continue;
    }
    // Claim only: push the deadline one (current) rto out so concurrent
    // sweeps don't double-clone it. Backoff and the retry charge happen in
    // confirm_retransmit, once the clone verifiably left the sender.
    e.deadline_ns = now_ns + e.rto_ns;
    if (e.deadline_ns < earliest) earliest = e.deadline_ns;
    // lint: allow(hotpath-alloc) resend batch exists only under injection
    resends.push_back(Resend{e.dst, fabric::clone_packet(e.pkt)});
    ++it;
  }
  next_deadline_.store(earliest, std::memory_order_relaxed);
}

void ReliabilityTracker::fail_peer(int peer, std::vector<Failure>& failures) {
  LockGuard guard(lock_);
  if (static_cast<std::size_t>(peer) >= failed_peers_.size()) {
    // lint: allow(hotpath-alloc) peer death is a cold, once-per-rank event
    failed_peers_.resize(static_cast<std::size_t>(peer) + 1, false);
  }
  failed_peers_[static_cast<std::size_t>(peer)] = true;
  for (auto it = inflight_.begin(); it != inflight_.end();) {
    if (it->second.dst != peer) {
      ++it;
      continue;
    }
    // lint: allow(hotpath-alloc) peer death is a cold, once-per-rank event
    failures.push_back(Failure{it->first, it->second.retries,
                               common::ErrorCode::kPeerFailed});
    it = inflight_.erase(it);
    in_flight_.fetch_sub(1, std::memory_order_relaxed);
  }
}

bool ReliabilityTracker::peer_failed(int peer) const noexcept {
  LockGuard guard(lock_);
  return static_cast<std::size_t>(peer) < failed_peers_.size() &&
         failed_peers_[static_cast<std::size_t>(peer)];
}

void ReliabilityTracker::confirm_retransmit(const PacketKey& key,
                                            std::uint64_t now_ns) {
  LockGuard guard(lock_);
  const auto it = inflight_.find(key);
  if (it == inflight_.end()) return;  // acked while we were injecting
  Entry& e = it->second;
  ++e.retries;
  e.rto_ns = e.rto_ns * 2 < rto_max_ns_ ? e.rto_ns * 2 : rto_max_ns_;
  e.deadline_ns = now_ns + e.rto_ns;
  // lint: allow(relaxed-sync) advisory sweep hint; authoritative state is under lock_
  if (e.deadline_ns < next_deadline_.load(std::memory_order_relaxed)) {
    next_deadline_.store(e.deadline_ns, std::memory_order_relaxed);
  }
}

}  // namespace fairmpi::p2p
