#include "fairmpi/p2p/sender.hpp"

#include <mutex>

#include "fairmpi/common/error.hpp"
#include "fairmpi/common/timing.hpp"
#include "fairmpi/fabric/wire.hpp"

namespace fairmpi::p2p {

using spc::Counter;

void eager_send(CommState& comm, cri::CriPool& pool, progress::ProgressEngine& engine,
                spc::CounterSet& counters, int src_rank, int dst, int tag,
                const void* buf, std::size_t n, Request& req) {
  FAIRMPI_CHECK_MSG(tag >= 0, "negative tags are reserved (wildcards/internal)");
  req.init_send();

  // Sequence ticketing happens before resource acquisition, as in OB1. Two
  // threads that ticket back-to-back can inject in the opposite order (or
  // into different contexts) — this is where out-of-sequence messages come
  // from, even with a single instance.
  fabric::Packet pkt;
  pkt.hdr.opcode = fabric::Opcode::kEager;
  pkt.hdr.src_rank = static_cast<std::uint16_t>(src_rank);
  pkt.hdr.comm_id = comm.id();
  pkt.hdr.tag = tag;
  pkt.hdr.seq = comm.next_seq(dst);
  pkt.set_payload(buf, n);

  for (;;) {
    const int k = pool.id_for_thread();
    cri::CommResourceInstance& inst = pool.instance(k);

    bool injected = false;
    {
      // Blocking acquisition (Alg. 1 uses LOCK, not TRYLOCK, on the send
      // path); account the wait only when actually contended to keep the
      // uncontended fast path clock-free.
      if (!inst.lock().try_lock()) {
        const std::uint64_t t0 = now_ns();
        inst.lock().lock();
        counters.add(Counter::kInstanceLockWaitNs, now_ns() - t0);
      }
      std::scoped_lock adopt(std::adopt_lock, inst.lock());
      injected = inst.endpoint(dst).try_send(std::move(pkt));
    }
    if (injected) break;

    // Destination RX ring full: the fabric's EAGAIN. Drop the instance,
    // make progress on our own resources (the peer may be blocked on *our*
    // ring in a bidirectional flood), then retry.
    counters.add(Counter::kSendBackpressure);
    engine.progress();
  }

  counters.add(Counter::kMessagesSent);
  counters.add(Counter::kBytesSent, n);
  req.complete();
}

}  // namespace fairmpi::p2p
