#include "fairmpi/p2p/sender.hpp"

#include "fairmpi/common/backoff.hpp"
#include "fairmpi/common/error.hpp"
#include "fairmpi/common/timing.hpp"
#include "fairmpi/fabric/wire.hpp"

namespace fairmpi::p2p {

using spc::Counter;

common::ErrorCode eager_send(CommState& comm, cri::CriPool& pool,
                             progress::ProgressEngine& engine,
                             spc::CounterSet& counters, int src_rank, int dst, int tag,
                             const void* buf, std::size_t n, Request& req,
                             const SendPolicy& policy) {
  FAIRMPI_CHECK_MSG(tag >= 0, "negative tags are reserved (wildcards/internal)");
  req.init_send(policy.deadline_ns);

  const auto dst_dead = [&]() {
    return policy.peer_failed != nullptr &&
           policy.peer_failed(policy.peer_failed_user, dst);
  };
  if (dst_dead()) {
    counters.add(Counter::kFtPeerFailedOps);
    req.fail(common::ErrorCode::kPeerFailed);
    return common::ErrorCode::kPeerFailed;
  }

  const auto make_progress = [&]() -> std::size_t {
    return policy.progress != nullptr ? policy.progress(policy.progress_user)
                                      : engine.progress();
  };
  const auto expired = [&]() {
    return policy.deadline_ns != 0 && now_ns() >= policy.deadline_ns;
  };

  std::uint64_t attempts = 0;
  // Adaptive spin-then-backoff (SNIPPETS.md §1 idiom) instead of the old
  // fixed SpinWait: backpressure waits are holder-length-unknown, so the
  // probe cadence should stretch while the backlog persists and snap back
  // on any progress.
  common::Backoff waiter;

  // One iteration of any wait loop: charge the retry budget, escape typed
  // on peer death / external cancel / deadline expiry, otherwise progress
  // and back off. `tracked` non-null = the packet is in the reliability
  // table and an abandoned send must untrack it (it never reached the
  // wire from this loop's point of view; a clone a concurrent sweep
  // already re-injected is at-least-once semantics as usual).
  const auto wait_tick = [&](const PacketKey* tracked) -> common::ErrorCode {
    counters.add(Counter::kSendBackpressure);
    if (policy.retry_limit != 0 && ++attempts >= policy.retry_limit) {
      if (tracked != nullptr) policy.tracker->untrack(*tracked);
      if (req.fail(common::ErrorCode::kSendBudgetExhausted)) {
        counters.add(Counter::kReliabilityErrors);
      }
      return common::ErrorCode::kSendBudgetExhausted;
    }
    if (dst_dead()) {
      if (tracked != nullptr) policy.tracker->untrack(*tracked);
      counters.add(Counter::kFtPeerFailedOps);
      req.fail(common::ErrorCode::kPeerFailed);
      return common::ErrorCode::kPeerFailed;
    }
    if (req.done()) {
      // Another thread settled the request under us — Request::cancel().
      if (tracked != nullptr) policy.tracker->untrack(*tracked);
      return req.error();
    }
    if (expired()) {
      if (tracked != nullptr) policy.tracker->untrack(*tracked);
      if (req.fail(common::ErrorCode::kDeadlineExceeded)) {
        counters.add(Counter::kDeadlineExceededOps);
      }
      return common::ErrorCode::kDeadlineExceeded;
    }
    if (make_progress() == 0) waiter.pause(); else waiter.reset();
    return common::ErrorCode::kOk;
  };

  // Sender-side overload admission (DESIGN.md §5h), consulted before the
  // sequence number is ticketed so a refused send never leaves a hole in
  // the peer's ordered stream. Uncapped configurations pay one branch.
  if (policy.governor != nullptr && policy.governor->enabled()) {
    const overload::Limits& lim = policy.governor->limits();
    if (lim.pool_cap_bytes != 0) {
      while (policy.governor->pool_at_cap(fabric::payload_pool_stats().in_use_bytes)) {
        if (lim.pool_policy == overload::Policy::kShed) {
          req.fail(common::ErrorCode::kLocalOverloaded);
          return common::ErrorCode::kLocalOverloaded;
        }
        const common::ErrorCode rc = wait_tick(nullptr);
        if (rc != common::ErrorCode::kOk) return rc;
      }
      waiter.reset();
    }
    if (lim.tracker_cap != 0 && policy.tracker != nullptr) {
      while (policy.governor->tracker_at_cap(policy.tracker->in_flight())) {
        if (lim.tracker_policy == overload::Policy::kShed) {
          req.fail(common::ErrorCode::kLocalOverloaded);
          return common::ErrorCode::kLocalOverloaded;
        }
        const common::ErrorCode rc = wait_tick(nullptr);
        if (rc != common::ErrorCode::kOk) return rc;
      }
      waiter.reset();
    }
  }

  // Sequence ticketing happens before resource acquisition, as in OB1. Two
  // threads that ticket back-to-back can inject in the opposite order (or
  // into different contexts) — this is where out-of-sequence messages come
  // from, even with a single instance.
  fabric::Packet pkt;
  pkt.hdr.opcode = fabric::Opcode::kEager;
  pkt.hdr.src_rank = static_cast<std::uint16_t>(src_rank);
  pkt.hdr.comm_id = comm.id();
  pkt.hdr.tag = tag;
  pkt.hdr.seq = comm.next_seq(dst);
  pkt.set_payload(buf, n);

  // Send-window gate: block (progressing, so acks keep flowing both ways)
  // while the unacked backlog is at the window. Charged against the same
  // retry budget as ring backpressure — a peer that never acks is the same
  // livelock as a peer that never drains.
  if (policy.tracker != nullptr && policy.window != 0) {
    while (policy.tracker->in_flight() >= policy.window) {
      const common::ErrorCode rc = wait_tick(nullptr);
      if (rc != common::ErrorCode::kOk) return rc;
    }
    waiter.reset();
  }

  // Track before the first injection attempt so an ack racing back through
  // a fast peer always finds the entry (reliability.hpp contract). On a
  // failed attempt the fabric hands the packet back intact, so the tracked
  // clone and the wire packet never diverge.
  if (policy.tracker != nullptr) {
    policy.tracker->track(dst, pkt, now_ns());
  }
  for (;;) {
    const int k = pool.id_for_thread();
    cri::CommResourceInstance& inst = pool.instance(k);

    // Lock-free submission path (DESIGN.md §5f): a free instance lock is
    // taken and used directly; a held one means the packet rides the
    // submission ring and whoever holds the lock injects on our behalf.
    // Either way the packet is intact again on backpressure.
    const bool injected = inst.inject(dst, pkt, counters);
    if (injected) break;

    // Destination RX ring full: the fabric's EAGAIN. Drop the instance,
    // make progress on our own resources (the peer may be blocked on *our*
    // ring in a bidirectional flood), then retry — spinning while young,
    // yielding once saturated so a descheduled peer can run.
    const PacketKey key = key_of(dst, pkt.hdr);
    const common::ErrorCode rc =
        wait_tick(policy.tracker != nullptr ? &key : nullptr);
    if (rc != common::ErrorCode::kOk) return rc;
  }

  counters.add(Counter::kMessagesSent);
  counters.add(Counter::kBytesSent, n);
  // complete() is the last touch: the waiting owner may destroy `req` the
  // instant done() flips, so the outcome travels via the return value.
  req.complete();
  return common::ErrorCode::kOk;
}

}  // namespace fairmpi::p2p
