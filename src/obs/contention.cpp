#include "fairmpi/obs/contention.hpp"

#include <cstring>
#include "fairmpi/common/spinlock.hpp"
#include "fairmpi/common/thread_slot.hpp"
#include "fairmpi/common/timing.hpp"

namespace fairmpi::obs {

namespace {

/// One class's cells within a shard. Private shards are single-writer
/// (relaxed load+store increments); the overflow shard uses real RMWs.
struct Cell {
  std::atomic<std::uint64_t> acquires{0};
  std::atomic<std::uint64_t> contended{0};
  std::atomic<std::uint64_t> wait_cycles{0};
  std::atomic<std::uint64_t> trylock_fails{0};
};

struct alignas(fairmpi::kCacheLine) Shard {
  Cell cells[kMaxContentionClasses];
};

/// Registry of interned classes. The intern lock is a bare Spinlock on
/// purpose: this file implements the profiler RankedLock reports into, so
/// routing its own lock through RankedLock would recurse (and interning is
/// a once-per-class cold path anyway).
// Static-contract note (DESIGN.md §5e): names/ranks deliberately carry no
// FAIRMPI_GUARDED_BY(intern_lock). They are written only under the lock,
// but snapshot readers read them lock-free — made safe by the release
// store to n_classes below paired with readers' acquire load (entries
// below n_classes are immutable once published). A guarded_by annotation
// would force readers to take the lock and outlaw the publish protocol.
struct Registry {
  // lint: allow(unranked-mutex) profiler-internal leaf lock, see comment above
  Spinlock intern_lock;
  std::atomic<int> n_classes{0};
  const char* names[kMaxContentionClasses] = {};
  std::uint16_t ranks[kMaxContentionClasses] = {};
  /// Shards indexed by thread slot; last index is the shared overflow
  /// shard. Allocated on first touch, leaked at exit (the profiler is
  /// process-lifetime, like the thread-slot registry it mirrors).
  std::atomic<Shard*> shards[common::kMaxThreadSlots + 1] = {};
};

Registry& registry() noexcept {
  static Registry r;
  return r;
}

Shard& shard_for(std::size_t idx, bool& shared) noexcept {
  Registry& r = registry();
  shared = idx == static_cast<std::size_t>(common::kMaxThreadSlots);
  Shard* s = r.shards[idx].load(std::memory_order_acquire);
  if (s != nullptr) return *s;
  // lint: allow(hotpath-alloc) first touch of a thread's shard (setup path)
  auto* fresh = new Shard();
  Shard* expected = nullptr;
  if (r.shards[idx].compare_exchange_strong(expected, fresh, std::memory_order_acq_rel,
                                            std::memory_order_acquire)) {
    return *fresh;
  }
  delete fresh;
  return *expected;
}

/// The calling thread's cell for `cls`; sets `shared` when RMWs are needed.
Cell& cell_for(std::uint16_t cls, bool& shared) noexcept {
  const int slot = common::this_thread_slot();
  const std::size_t idx = slot == common::kNoThreadSlot
                              ? static_cast<std::size_t>(common::kMaxThreadSlots)
                              : static_cast<std::size_t>(slot);
  return shard_for(idx, shared).cells[cls];
}

void bump(std::atomic<std::uint64_t>& c, std::uint64_t n, bool shared) noexcept {
  if (shared) {
    c.fetch_add(n, std::memory_order_relaxed);
  } else {
    // Single-writer cell: relaxed load+store is a data-race-free increment
    // without the lock prefix (same idiom as spc::CounterSet::add).
    c.store(c.load(std::memory_order_relaxed) + n, std::memory_order_relaxed);
  }
}

}  // namespace

void set_enabled(bool on) noexcept {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

std::uint16_t intern_contention_class(std::uint16_t rank, const char* name) noexcept {
  Registry& r = registry();
  LockGuard guard(r.intern_lock);
  const int n = r.n_classes.load(std::memory_order_relaxed);
  for (int i = 0; i < n; ++i) {
    if (r.ranks[i] == rank && std::strcmp(r.names[i], name) == 0) {
      return static_cast<std::uint16_t>(i);
    }
  }
  if (n >= kMaxContentionClasses) return kNoContentionClass;  // unprofiled, not fatal
  r.names[n] = name;
  r.ranks[n] = rank;
  r.n_classes.store(n + 1, std::memory_order_release);
  return static_cast<std::uint16_t>(n);
}

void note_uncontended_acquire(std::uint16_t cls) noexcept {
  if (cls >= kMaxContentionClasses) return;
  bool shared = false;
  Cell& c = cell_for(cls, shared);
  bump(c.acquires, 1, shared);
}

void note_contended_acquire(std::uint16_t cls, std::uint64_t wait_cycles) noexcept {
  if (cls >= kMaxContentionClasses) return;
  bool shared = false;
  Cell& c = cell_for(cls, shared);
  bump(c.acquires, 1, shared);
  bump(c.contended, 1, shared);
  bump(c.wait_cycles, wait_cycles, shared);
}

void note_trylock_fail(std::uint16_t cls) noexcept {
  if (cls >= kMaxContentionClasses) return;
  bool shared = false;
  Cell& c = cell_for(cls, shared);
  bump(c.trylock_fails, 1, shared);
}

std::vector<ClassContention> contention_snapshot() {
  Registry& r = registry();
  const int n = r.n_classes.load(std::memory_order_acquire);
  std::vector<ClassContention> out(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    ClassContention& row = out[static_cast<std::size_t>(i)];
    row.name = r.names[i];
    row.rank = r.ranks[i];
    std::uint64_t cycles = 0;
    for (auto& slot : r.shards) {
      const Shard* s = slot.load(std::memory_order_acquire);
      if (s == nullptr) continue;
      const Cell& c = s->cells[i];
      row.acquires += c.acquires.load(std::memory_order_relaxed);
      row.contended += c.contended.load(std::memory_order_relaxed);
      cycles += c.wait_cycles.load(std::memory_order_relaxed);
      row.trylock_fails += c.trylock_fails.load(std::memory_order_relaxed);
    }
    row.wait_ns = CycleClock::to_ns(cycles);
  }
  return out;
}

void reset_contention_for_test() noexcept {
  Registry& r = registry();
  for (auto& slot : r.shards) {
    Shard* s = slot.load(std::memory_order_acquire);
    if (s == nullptr) continue;
    for (auto& c : s->cells) {
      c.acquires.store(0, std::memory_order_relaxed);
      c.contended.store(0, std::memory_order_relaxed);
      c.wait_cycles.store(0, std::memory_order_relaxed);
      c.trylock_fails.store(0, std::memory_order_relaxed);
    }
  }
}

}  // namespace fairmpi::obs
