// Observability export: Chrome trace-event JSON + the dump_observability
// snapshot (Universe member functions live here so core/ never includes the
// obs headers beyond what cri.hpp already pulls in).
//
// Trace format: the Trace Event Format's JSON-object flavor
// ({"traceEvents":[...]}), readable by chrome://tracing and Perfetto's
// legacy importer (https://ui.perfetto.dev). Mapping:
//
//   rank          -> process (pid), named via "M"/process_name metadata
//   thread slot   -> thread (tid) within the rank's process, named likewise
//   trace::Entry  -> "i" (instant) event, scope "t", args {a, b}
//   kCriDrain     -> additionally an "n" (async instant) event on an async
//                    lane per (rank, instance) — cat "cri", id "<instance>" —
//                    so each CRI renders as its own track of drain activity
//
// Timestamps: trace::Entry records steady-clock ns, shared by all ranks of
// the in-process universe; the exporter rebases to the earliest entry and
// converts to the format's microseconds with 3 decimals, so ns resolution
// survives the JSON round-trip.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "fairmpi/core/universe.hpp"
#include "fairmpi/obs/contention.hpp"
#include "fairmpi/trace/trace.hpp"

namespace fairmpi {

namespace {

/// Minimal JSON string escape: the names we emit are static identifiers,
/// but lock-class names come from callers (tests mint their own), so be
/// correct rather than trusting them.
std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

/// Microsecond timestamp with nanosecond resolution kept as decimals.
void emit_ts(std::ostream& os, std::uint64_t ns_since_t0) {
  os << ns_since_t0 / 1000 << '.';
  const auto frac = static_cast<int>(ns_since_t0 % 1000);
  os << static_cast<char>('0' + frac / 100) << static_cast<char>('0' + frac / 10 % 10)
     << static_cast<char>('0' + frac % 10);
}

void emit_spc(std::ostream& os, const spc::Snapshot& snap, const char* indent) {
  os << "{";
  for (int c = 0; c < spc::kNumCounters; ++c) {
    if (c != 0) os << ",";
    os << "\n" << indent << "  \"" << spc::counter_name(static_cast<spc::Counter>(c))
       << "\": " << snap.values[static_cast<std::size_t>(c)];
  }
  os << "\n" << indent << "}";
}

}  // namespace

void Universe::export_chrome_trace(std::ostream& os) const {
  struct RankTrace {
    int rank;
    std::vector<trace::Entry> entries;
  };
  std::vector<RankTrace> traces;
  std::uint64_t t0 = ~std::uint64_t{0};
  for (const auto& rank : ranks_) {
    RankTrace rt{rank->id(), rank->tracer().snapshot()};
    if (!rt.entries.empty()) t0 = std::min(t0, rt.entries.front().timestamp_ns);
    traces.push_back(std::move(rt));
  }
  if (t0 == ~std::uint64_t{0}) t0 = 0;

  os << "{\"traceEvents\":[";
  bool first = true;
  const auto sep = [&]() -> std::ostream& {
    if (!first) os << ",";
    first = false;
    return os << "\n ";
  };

  for (const RankTrace& rt : traces) {
    sep() << "{\"ph\":\"M\",\"pid\":" << rt.rank
          << ",\"name\":\"process_name\",\"args\":{\"name\":\"rank " << rt.rank
          << "\"}}";
    // Name each thread track that actually recorded something.
    std::vector<std::uint16_t> tids;
    for (const trace::Entry& e : rt.entries) {
      if (std::find(tids.begin(), tids.end(), e.tid) == tids.end()) tids.push_back(e.tid);
    }
    std::sort(tids.begin(), tids.end());
    for (const std::uint16_t tid : tids) {
      sep() << "{\"ph\":\"M\",\"pid\":" << rt.rank << ",\"tid\":" << tid
            << ",\"name\":\"thread_name\",\"args\":{\"name\":\""
            << (tid == trace::kNoTraceTid ? std::string("unregistered")
                                          : "thread-slot " + std::to_string(tid))
            << "\"}}";
    }
    for (const trace::Entry& e : rt.entries) {
      const std::uint64_t rel = e.timestamp_ns - t0;
      sep() << "{\"ph\":\"i\",\"pid\":" << rt.rank << ",\"tid\":" << e.tid
            << ",\"ts\":";
      emit_ts(os, rel);
      os << ",\"s\":\"t\",\"cat\":\"fairmpi\",\"name\":\"" << trace::event_name(e.event)
         << "\",\"args\":{\"a\":" << e.a << ",\"b\":" << e.b << "}}";
      if (e.event == trace::Event::kCriDrain) {
        // One async lane per (rank, instance): cat+id identify the lane.
        sep() << "{\"ph\":\"n\",\"pid\":" << rt.rank << ",\"tid\":" << e.tid
              << ",\"ts\":";
        emit_ts(os, rel);
        os << ",\"cat\":\"cri\",\"id\":\"cri-" << rt.rank << '.' << e.a
           << "\",\"name\":\"cri " << e.a << " drain\",\"args\":{\"instance\":" << e.a
           << ",\"batch\":" << e.b << "}}";
      }
    }
  }
  os << "\n],\"displayTimeUnit\":\"ns\"}\n";
}

void Universe::dump_observability(std::ostream& os) const {
  os << "{\n";
  os << "  \"obs_enabled\": " << (obs::enabled() ? "true" : "false") << ",\n";
  os << "  \"config\": {\n"
     << "    \"num_ranks\": " << num_ranks() << ",\n"
     << "    \"num_instances\": " << cfg_.num_instances << ",\n"
     << "    \"assignment\": \"" << cri::assignment_name(cfg_.assignment) << "\",\n"
     << "    \"progress\": \"" << progress::progress_mode_name(cfg_.progress_mode)
     << "\",\n"
     << "    \"reliable\": " << (cfg_.reliable ? "true" : "false") << ",\n"
     << "    \"ft\": " << (cfg_.ft_enabled ? "true" : "false") << "\n  },\n";

  // Per-class lock contention. Process-global: a process hosting several
  // universes reports one merged table (lock classes are shared anyway).
  os << "  \"contention\": [";
  const std::vector<obs::ClassContention> classes = obs::contention_snapshot();
  for (std::size_t i = 0; i < classes.size(); ++i) {
    const obs::ClassContention& c = classes[i];
    os << (i == 0 ? "" : ",") << "\n    {\"name\": \"" << json_escape(c.name)
       << "\", \"rank\": " << c.rank << ", \"acquires\": " << c.acquires
       << ", \"contended\": " << c.contended << ", \"wait_ns\": " << c.wait_ns
       << ", \"trylock_fails\": " << c.trylock_fails << "}";
  }
  os << "\n  ],\n";

  os << "  \"ranks\": [";
  for (std::size_t r = 0; r < ranks_.size(); ++r) {
    Rank& rank = *ranks_[r];
    os << (r == 0 ? "" : ",") << "\n    {\"rank\": " << rank.id()
       << ", \"instances\": [";
    cri::CriPool& pool = rank.pool();
    for (int i = 0; i < pool.size(); ++i) {
      const obs::InstanceUtilization u = pool.instance(i).stats().snapshot();
      os << (i == 0 ? "" : ",") << "\n      {\"id\": " << i
         << ", \"injections\": " << u.injections
         << ", \"packets_drained\": " << u.packets_drained
         << ", \"completions_drained\": " << u.completions_drained
         << ", \"own_trylock_misses\": " << u.own_trylock_misses
         << ", \"orphan_sweeps\": " << u.orphan_sweeps
         << ", \"drain_visits\": " << u.drain_visits << ", \"drain_hist\": [";
      for (int b = 0; b < obs::kDrainHistBuckets; ++b) {
        os << (b == 0 ? "" : ", ") << u.drain_hist[static_cast<std::size_t>(b)];
      }
      os << "], \"submit_claimed\": " << u.submit_claimed
         << ", \"submit_doorbells\": " << u.submit_doorbells
         << ", \"submit_cas_retries\": " << u.submit_cas_retries
         << ", \"submit_flush_hist\": [";
      for (int b = 0; b < obs::kSubmitHistBuckets; ++b) {
        os << (b == 0 ? "" : ", ") << u.submit_flush_hist[static_cast<std::size_t>(b)];
      }
      os << "]}";
    }
    os << "\n    ], \"ft\": ";
    // Liveness view (null with ft off): this rank's verdict on every peer,
    // plus the detection-latency histogram (bucket i: confirmed < 2^i ms
    // after last contact; last bucket overflows).
    ft::FailureDetector* det = rank.failure_detector();
    if (det == nullptr) {
      os << "null";
    } else {
      os << "{\"peers\": [";
      for (int p = 0; p < num_ranks(); ++p) {
        os << (p == 0 ? "" : ", ") << '"'
           << (p == rank.id() ? "self" : ft::peer_state_name(det->state(p))) << '"';
      }
      os << "], \"suspects\": " << det->suspects() << ", \"deaths\": " << det->deaths()
         << ", \"detection_latency_ms_hist\": [";
      const auto hist = det->latency_hist();
      for (int b = 0; b < ft::FailureDetector::kLatencyBuckets; ++b) {
        os << (b == 0 ? "" : ", ") << hist[static_cast<std::size_t>(b)];
      }
      os << "]}";
    }
    os << ", \"overload\": ";
    // Overload-control view (§5h; null when no cap is configured): the
    // degradation level, latched-paused peer count, and the active limits
    // so a report is self-describing.
    const overload::Governor& gov = rank.governor();
    if (!gov.enabled()) {
      os << "null";
    } else {
      const overload::Limits& lim = gov.limits();
      os << "{\"level\": \"" << overload::level_name(gov.level())
         << "\", \"paused_peers\": " << gov.paused_peers()
         << ", \"unexpected_cap\": " << lim.unexpected_cap
         << ", \"unexpected_policy\": \"" << overload::policy_name(lim.unexpected_policy)
         << "\", \"pool_cap_bytes\": " << lim.pool_cap_bytes
         << ", \"pool_policy\": \"" << overload::policy_name(lim.pool_policy)
         << "\", \"tracker_cap\": " << lim.tracker_cap
         << ", \"tracker_policy\": \"" << overload::policy_name(lim.tracker_policy)
         << "\", \"high_pct\": " << lim.high_pct << ", \"low_pct\": " << lim.low_pct
         << "}";
    }
    os << ", \"spc\": ";
    emit_spc(os, rank.counters().snapshot(), "    ");
    os << "}";
  }
  os << "\n  ],\n";

  // Process-global payload-pool accounting (§5h): shared by every rank in
  // the process, so it reports once, not per rank.
  const fabric::PayloadPoolStats pool_stats = fabric::payload_pool_stats();
  os << "  \"payload_pool\": {\"in_use_bytes\": " << pool_stats.in_use_bytes
     << ", \"high_water_bytes\": " << pool_stats.high_water_bytes << "},\n";

  os << "  \"spc_total\": ";
  emit_spc(os, aggregate_counters(), "  ");
  os << "\n}\n";
}

}  // namespace fairmpi
