#include "fairmpi/trace/trace.hpp"

#include <algorithm>

#include "fairmpi/common/thread_slot.hpp"
#include "fairmpi/common/timing.hpp"

namespace fairmpi::trace {

const char* event_name(Event e) noexcept {
  switch (e) {
    case Event::kNone: return "None";
    case Event::kSend: return "Send";
    case Event::kRecvPost: return "RecvPost";
    case Event::kRecvDone: return "RecvDone";
    case Event::kProgress: return "Progress";
    case Event::kRmaPut: return "RmaPut";
    case Event::kRmaGet: return "RmaGet";
    case Event::kRmaFlush: return "RmaFlush";
    case Event::kRndvRts: return "RndvRts";
    case Event::kRndvDone: return "RndvDone";
    case Event::kRetransmit: return "Retransmit";
    case Event::kWatchdogStall: return "WatchdogStall";
    case Event::kAckSent: return "AckSent";
    case Event::kAckRecv: return "AckRecv";
    case Event::kCsumDrop: return "CsumDrop";
    case Event::kCriDrain: return "CriDrain";
    case Event::kPeerSuspect: return "PeerSuspect";
    case Event::kPeerDead: return "PeerDead";
    case Event::kCommRevoke: return "CommRevoke";
    case Event::kOverloadShed: return "OverloadShed";
    case Event::kOverloadLevel: return "OverloadLevel";
    case Event::kOverloadPause: return "OverloadPause";
    case Event::kCancel: return "Cancel";
    case Event::kDeadline: return "Deadline";
    case Event::kCollOp: return "CollOp";
  }
  return "Unknown";
}

Tracer::Tracer(std::size_t capacity)
    : capacity_(capacity == 0 ? 0 : next_pow2(capacity)),
      mask_(capacity_ == 0 ? 0 : capacity_ - 1),
      slots_(capacity_) {}

void Tracer::record(Event event, std::uint32_t a, std::uint32_t b) noexcept {
  if (!enabled()) return;
  const std::uint64_t idx = next_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[static_cast<std::size_t>(idx) & mask_];
  // Seqlock-style write: odd sequence marks the slot as in flux so
  // snapshot() can skip torn entries. The CAS *claims* the slot: when the
  // ring wraps onto a slot whose writer is still mid-flight, ours is the
  // record the lossy ring would have discarded anyway, so drop it. Without
  // the claim, two writers interleave their field stores — a writer-writer
  // race TSan caught (both sides looked like valid entries to snapshot()
  // because they finish on the same even sequence). The CAS acquire also
  // orders us after the previous writer's release store of seq.
  std::uint64_t seq = slot.sequence.load(std::memory_order_relaxed);
  if ((seq & 1) != 0 ||
      !slot.sequence.compare_exchange_strong(seq, seq + 1, std::memory_order_acq_rel,
                                             std::memory_order_relaxed)) {
    return;
  }
  // Relaxed atomic field stores: a concurrent snapshot() may read these
  // mid-write (it detects and discards the value via the sequence recheck,
  // but the loads themselves must not be a data race).
  const int slot_id = common::this_thread_slot();
  const std::uint16_t tid = slot_id == common::kNoThreadSlot
                                ? kNoTraceTid
                                : static_cast<std::uint16_t>(slot_id);
  std::atomic_ref(slot.entry.timestamp_ns).store(now_ns(), std::memory_order_relaxed);
  std::atomic_ref(slot.entry.event).store(event, std::memory_order_relaxed);
  std::atomic_ref(slot.entry.tid).store(tid, std::memory_order_relaxed);
  std::atomic_ref(slot.entry.a).store(a, std::memory_order_relaxed);
  std::atomic_ref(slot.entry.b).store(b, std::memory_order_relaxed);
  slot.sequence.store(seq + 2, std::memory_order_release);
}

std::vector<Entry> Tracer::snapshot() const {
  std::vector<Entry> out;
  out.reserve(capacity_);
  for (const Slot& slot : slots_) {
    const std::uint64_t before = slot.sequence.load(std::memory_order_acquire);
    if (before == 0 || (before & 1) != 0) continue;  // empty or mid-write
    // atomic_ref needs a mutable lvalue even for loads; the entry is never
    // written through this path.
    Entry& e = const_cast<Slot&>(slot).entry;
    Entry copy;
    copy.timestamp_ns = std::atomic_ref(e.timestamp_ns).load(std::memory_order_relaxed);
    copy.event = std::atomic_ref(e.event).load(std::memory_order_relaxed);
    copy.tid = std::atomic_ref(e.tid).load(std::memory_order_relaxed);
    copy.a = std::atomic_ref(e.a).load(std::memory_order_relaxed);
    copy.b = std::atomic_ref(e.b).load(std::memory_order_relaxed);
    const std::uint64_t after = slot.sequence.load(std::memory_order_acquire);
    if (after != before) continue;  // overwritten while copying
    out.push_back(copy);
  }
  std::sort(out.begin(), out.end(),
            [](const Entry& x, const Entry& y) { return x.timestamp_ns < y.timestamp_ns; });
  return out;
}

void Tracer::dump(std::ostream& os) const {
  const std::vector<Entry> entries = snapshot();
  if (entries.empty()) {
    os << "(trace empty)\n";
    return;
  }
  const std::uint64_t t0 = entries.front().timestamp_ns;
  for (const Entry& e : entries) {
    os << "+" << (e.timestamp_ns - t0) << "ns\ttid=" << e.tid << '\t'
       << event_name(e.event) << "\ta=" << e.a << "\tb=" << e.b << '\n';
  }
}

}  // namespace fairmpi::trace
