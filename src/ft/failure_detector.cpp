// Failure-detector sweep (see include/fairmpi/ft/failure_detector.hpp).
#include "fairmpi/ft/failure_detector.hpp"

#include "fairmpi/common/error.hpp"

namespace fairmpi::ft {

using spc::Counter;

FailureDetector::FailureDetector(int num_ranks, int self, const FtParams& params,
                                 spc::CounterSet& counters, trace::Tracer& tracer)
    : num_ranks_(num_ranks), self_(self), params_(params), spc_(counters),
      tracer_(tracer), cells_(static_cast<std::size_t>(num_ranks)),
      cold_(static_cast<std::size_t>(num_ranks)) {
  FAIRMPI_CHECK(params.strikes >= 1);
  FAIRMPI_CHECK(params.heartbeat_ns >= 1 && params.suspect_ns >= params.heartbeat_ns);
}

bool FailureDetector::poll(std::uint64_t now_ns, std::vector<int>& probes,
                           std::vector<int>& newly_dead) {
  // Cheap cadence gate before any lock traffic; a sweep observed slightly
  // late just runs on the next poll. Half the probe interval so a strike
  // round is never skipped wholesale by gate aliasing.
  // lint: allow(relaxed-sync) cadence gate only; the try_lock owns the sweep
  if (now_ns - last_poll_ns_.load(std::memory_order_relaxed) < params_.heartbeat_ns / 2) {
    return false;
  }
  if (!lock_.try_lock()) return false;  // another thread is sweeping
  LockGuard adopt(lock_, adopt_lock);
  last_poll_ns_.store(now_ns, std::memory_order_relaxed);

  for (int p = 0; p < num_ranks_; ++p) {
    if (p == self_) continue;
    Cold& c = cold_[static_cast<std::size_t>(p)];
    if (c.state == PeerState::kDead) continue;
    Cell& cell = cells_[static_cast<std::size_t>(p)].value;

    std::uint64_t heard = cell.last_heard.load(std::memory_order_relaxed);
    if (heard == 0) {
      // No contact yet: baseline the epoch at first observation instead of
      // suspecting a peer we never exchanged a packet with. CAS so a racing
      // real packet's note_alive is never overwritten.
      cell.last_heard.compare_exchange_strong(heard, now_ns,
                                              std::memory_order_relaxed,
                                              std::memory_order_relaxed);
      continue;
    }
    const std::uint64_t silence = now_ns - heard;

    if (silence < params_.suspect_ns) {
      if (c.state == PeerState::kSuspect) {
        // Recovered: traffic resumed before the strikes ran out.
        c.state = PeerState::kAlive;
        c.strikes = 0;
        int hint = p;
        suspect_hint_.compare_exchange_strong(hint, -1, std::memory_order_relaxed,
                                              std::memory_order_relaxed);
        tracer_.record(trace::Event::kPeerSuspect, static_cast<std::uint32_t>(p), 0);
      }
      // Advertise our own liveness on a sender-side cadence, NOT gated on
      // inbound silence. Receive-gated probing deadlocks symmetric
      // idleness: A's probes keep B's inbound silence low, so B never
      // probes back and A confirms a perfectly live peer dead.
      if (now_ns - c.last_probe_ns >= params_.heartbeat_ns) {
        c.last_probe_ns = now_ns;
        probes.push_back(p);
      }
      continue;
    }

    if (c.state == PeerState::kAlive) {
      c.state = PeerState::kSuspect;
      c.strikes = 0;
      c.last_strike_ns = now_ns;
      c.last_probe_ns = now_ns;
      suspects_.fetch_add(1, std::memory_order_relaxed);
      spc_.add(Counter::kFtSuspects);
      tracer_.record(trace::Event::kPeerSuspect, static_cast<std::uint32_t>(p), 1);
      suspect_hint_.store(p, std::memory_order_relaxed);
      probes.push_back(p);
      continue;
    }

    // kSuspect: one strike per unanswered probe interval.
    if (now_ns - c.last_strike_ns < params_.heartbeat_ns) continue;
    c.last_strike_ns = now_ns;
    if (++c.strikes < params_.strikes) {
      c.last_probe_ns = now_ns;
      probes.push_back(p);
      continue;
    }

    // Confirmed dead (terminal). Detection latency = last contact to now.
    c.state = PeerState::kDead;
    cell.dead.store(true, std::memory_order_release);
    deaths_.fetch_add(1, std::memory_order_relaxed);
    spc_.add(Counter::kFtDeaths);
    const std::uint64_t ms = silence / 1'000'000;
    int bucket = 0;
    while (bucket < kLatencyBuckets - 1 && ms >= (std::uint64_t{1} << bucket)) ++bucket;
    lat_hist_[static_cast<std::size_t>(bucket)].fetch_add(1, std::memory_order_relaxed);
    tracer_.record(trace::Event::kPeerDead, static_cast<std::uint32_t>(p),
                   static_cast<std::uint32_t>(ms));
    suspect_hint_.store(p, std::memory_order_relaxed);
    newly_dead.push_back(p);
  }
  return true;
}

PeerState FailureDetector::state(int peer) const {
  LockGuard guard(lock_);
  return cold_[static_cast<std::size_t>(peer)].state;
}

}  // namespace fairmpi::ft
