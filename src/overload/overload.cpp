// Overload governor (see include/fairmpi/overload/overload.hpp).
//
// Hot-path discipline: nothing here allocates; the ladder is three atomics
// and every admission check is a relaxed load + compare.
#include "fairmpi/overload/overload.hpp"

namespace fairmpi::overload {

const char* policy_name(Policy p) noexcept {
  switch (p) {
    case Policy::kQueue: return "queue";
    case Policy::kShed: return "shed";
  }
  return "unknown";
}

const char* level_name(Level l) noexcept {
  switch (l) {
    case Level::kHealthy: return "healthy";
    case Level::kPressured: return "pressured";
    case Level::kOverloaded: return "overloaded";
  }
  return "unknown";
}

int Governor::pressure_pct(std::uint64_t unexpected_total, std::uint64_t pool_in_use,
                           std::uint64_t tracker_in_flight) const noexcept {
  // Worst-of over the capped resources. The unexpected signal compares the
  // *total* backlog against the per-peer cap — conservative (total >= any
  // one peer's depth), which is the right bias for the incast case the cap
  // exists for: one slow consumer, many producers.
  std::uint64_t pct = 0;
  const auto consider = [&pct](std::uint64_t use, std::uint64_t cap) {
    if (cap == 0) return;
    const std::uint64_t p = use >= cap ? 100 : use * 100 / cap;
    if (p > pct) pct = p;
  };
  consider(unexpected_total, lim_.unexpected_cap);
  consider(pool_in_use, lim_.pool_cap_bytes);
  consider(tracker_in_flight, lim_.tracker_cap);
  // lint: allow(relaxed-sync) advisory pressure estimate; the latch is lock-owned
  if (paused_peers_.load(std::memory_order_relaxed) != 0) {
    pct = 100;  // a latched peer is at cap by definition
  }
  return static_cast<int>(pct);
}

Governor::Transition Governor::sample(std::uint64_t unexpected_total,
                                      std::uint64_t pool_in_use,
                                      std::uint64_t tracker_in_flight) noexcept {
  Transition t;
  if (!enabled_) return t;
  const int pct = pressure_pct(unexpected_total, pool_in_use, tracker_in_flight);

  std::uint8_t cur = level_.load(std::memory_order_relaxed);
  const auto cur_level = static_cast<Level>(cur);
  Level next = cur_level;
  if (pct >= 100) {
    next = Level::kOverloaded;
  } else if (pct >= lim_.high_pct) {
    // At least pressured; this is also the single step down an overloaded
    // rank takes once it is out of the 100% band.
    next = Level::kPressured;
  } else if (pct <= lim_.low_pct) {
    next = Level::kHealthy;
  } else if (cur_level == Level::kOverloaded) {
    // Between low and high: hysteresis band. Overloaded steps down to
    // pressured (the cap condition cleared); pressured/healthy hold.
    next = Level::kPressured;
  }

  t.from = cur_level;
  t.to = next;
  if (next == cur_level) return t;
  // One winner per transition: a lost CAS means a racing sampler already
  // moved the ladder; report no change and let the next sample converge.
  if (level_.compare_exchange_strong(cur, static_cast<std::uint8_t>(next),
                                     std::memory_order_relaxed)) {
    t.changed = true;
  } else {
    t.from = t.to = static_cast<Level>(cur);
  }
  return t;
}

}  // namespace fairmpi::overload
