#include "fairmpi/progress/progress.hpp"

#include <mutex>

#include "fairmpi/common/error.hpp"

namespace fairmpi::progress {

using spc::Counter;

const char* progress_mode_name(ProgressMode m) noexcept {
  switch (m) {
    case ProgressMode::kSerial: return "serial";
    case ProgressMode::kConcurrent: return "concurrent";
  }
  return "unknown";
}

ProgressEngine::ProgressEngine(cri::CriPool& pool, PacketSink& sink, ProgressMode mode,
                               spc::CounterSet& counters, int batch)
    : pool_(pool), sink_(sink), mode_(mode), spc_(counters), batch_(batch) {
  FAIRMPI_CHECK(batch >= 1);
}

std::size_t ProgressEngine::progress_instance_locked(cri::CommResourceInstance& inst) {
  std::size_t completions = 0;

  // Completion queue first: completions release resources (RMA pending
  // counts, send credits) that the packet path may be waiting on.
  fabric::Completion comp;
  while (inst.context().cq().try_pop(comp)) {
    completions += sink_.handle_completion(comp);
  }

  // RX ring: extract up to `batch_` envelopes and hand them to matching.
  fabric::Packet pkt;
  for (int i = 0; i < batch_ && inst.context().rx().try_pop(pkt); ++i) {
    completions += sink_.handle_packet(std::move(pkt));
  }
  return completions;
}

std::size_t ProgressEngine::progress_serial() {
  // Traditional design: one thread in the engine; others return at once.
  if (!serial_gate_.try_lock()) {
    spc_.add(Counter::kInstanceTrylockFail);
    return 0;
  }
  std::scoped_lock adopt(std::adopt_lock, serial_gate_);

  std::size_t completions = 0;
  for (int i = 0; i < pool_.size(); ++i) {
    cri::CommResourceInstance& inst = pool_.instance(i);
    // The gate already excludes other progress threads, but send paths also
    // take instance locks, so each instance is still locked individually.
    std::scoped_lock guard(inst.lock());
    completions += progress_instance_locked(inst);
  }
  return completions;
}

std::size_t ProgressEngine::progress_concurrent() {
  // Algorithm 2. Own instance first...
  std::size_t completions = 0;
  const int own = pool_.id_for_thread();
  {
    cri::CommResourceInstance& inst = pool_.instance(own);
    if (inst.lock().try_lock()) {
      std::scoped_lock adopt(std::adopt_lock, inst.lock());
      completions = progress_instance_locked(inst);
    } else {
      spc_.add(Counter::kInstanceTrylockFail);
    }
  }
  // ... and only if it yielded nothing, sweep the others (guaranteeing
  // every instance is progressed eventually — orphaned-CRI liveness).
  if (completions == 0) {
    for (int i = 0; i < pool_.size(); ++i) {
      const int k = pool_.next_round_robin();
      cri::CommResourceInstance& inst = pool_.instance(k);
      if (!inst.lock().try_lock()) {
        spc_.add(Counter::kInstanceTrylockFail);
        continue;
      }
      {
        std::scoped_lock adopt(std::adopt_lock, inst.lock());
        completions = progress_instance_locked(inst);
      }
      if (completions > 0) break;
    }
  }
  return completions;
}

std::size_t ProgressEngine::progress() {
  spc_.add(Counter::kProgressCalls);
  const std::size_t completions =
      mode_ == ProgressMode::kSerial ? progress_serial() : progress_concurrent();
  if (completions != 0) spc_.add(Counter::kProgressCompletions, completions);
  return completions;
}

}  // namespace fairmpi::progress
