#include "fairmpi/progress/progress.hpp"

#include "fairmpi/common/error.hpp"

namespace fairmpi::progress {

using spc::Counter;

const char* progress_mode_name(ProgressMode m) noexcept {
  switch (m) {
    case ProgressMode::kSerial: return "serial";
    case ProgressMode::kConcurrent: return "concurrent";
  }
  return "unknown";
}

ProgressEngine::ProgressEngine(cri::CriPool& pool, PacketSink& sink, ProgressMode mode,
                               spc::CounterSet& counters, int batch, trace::Tracer* tracer)
    : pool_(pool), sink_(sink), mode_(mode), spc_(counters), batch_(batch),
      tracer_(tracer) {
  FAIRMPI_CHECK(batch >= 1);
}

void ProgressEngine::drain_locked(cri::CommResourceInstance& inst, DrainBatch& b) {
  const std::size_t cap =
      static_cast<std::size_t>(batch_) < kMaxDrainBatch ? static_cast<std::size_t>(batch_)
                                                        : kMaxDrainBatch;
  // Submission ring first: queued injections become RX/CQ traffic the pops
  // below can then harvest in the same visit (and the producers parked on
  // their tickets wake). This is the consumer half of the doorbell
  // protocol — we hold the instance lock, so we are *the* flusher.
  inst.flush_submissions();
  // Completion queue first: completions release resources (RMA pending
  // counts, send credits) that the packet path may be waiting on. The
  // per-visit cap bounds lock hold time; wait loops call progress()
  // repeatedly, so a deep CQ still drains promptly.
  b.n_comps = inst.context().cq().try_pop_n(b.comps.data(), cap);
  b.n_pkts = inst.context().rx().try_pop_n(b.pkts.data(), cap);
}

void ProgressEngine::note_drain(cri::CommResourceInstance& inst, const DrainBatch& b,
                                bool sweep) {
  inst.stats().note_drain(b.n_pkts, b.n_comps, sweep);
  const std::size_t total = b.n_pkts + b.n_comps;
  if (total != 0 && tracer_ != nullptr) {
    tracer_->record(trace::Event::kCriDrain, static_cast<std::uint32_t>(inst.id()),
                    static_cast<std::uint32_t>(total));
  }
}

std::size_t ProgressEngine::dispatch(DrainBatch& b) {
  std::size_t completions = 0;
  for (std::size_t i = 0; i < b.n_comps; ++i) {
    completions += sink_.handle_completion(b.comps[i]);
  }
  for (std::size_t i = 0; i < b.n_pkts; ++i) {
    completions += sink_.handle_packet(std::move(b.pkts[i]));
  }
  return completions;
}

std::size_t ProgressEngine::progress_instance_locked(cri::CommResourceInstance& inst) {
  DrainBatch b;
  drain_locked(inst, b);
  note_drain(inst, b, /*sweep=*/false);
  return dispatch(b);
}

std::size_t ProgressEngine::progress_serial() {
  // Traditional design: one thread in the engine; others return at once.
  if (!serial_gate_.try_lock()) {
    spc_.add(Counter::kInstanceTrylockFail);
    return 0;
  }
  LockGuard adopt(serial_gate_, adopt_lock);

  std::size_t completions = 0;
  for (int i = 0; i < pool_.size(); ++i) {
    cri::CommResourceInstance& inst = pool_.instance(i);
    DrainBatch b;
    {
      // The gate already excludes other progress threads, but send paths
      // also take instance locks, so each instance is still locked
      // individually — only for the ring pops, not the dispatch.
      LockGuard guard(inst.lock());
      drain_locked(inst, b);
    }
    note_drain(inst, b, /*sweep=*/false);
    completions += dispatch(b);
  }
  return completions;
}

std::size_t ProgressEngine::progress_concurrent() {
  // Algorithm 2. Own instance first...
  std::size_t completions = 0;
  const int own = pool_.id_for_thread();
  {
    cri::CommResourceInstance& inst = pool_.instance(own);
    if (inst.lock().try_lock()) {
      DrainBatch b;
      {
        LockGuard adopt(inst.lock(), adopt_lock);
        drain_locked(inst, b);
      }
      note_drain(inst, b, /*sweep=*/false);
      completions = dispatch(b);
    } else {
      spc_.add(Counter::kInstanceTrylockFail);
      inst.stats().note_own_trylock_miss();
    }
  }
  // ... and only if it yielded nothing, sweep the others (guaranteeing
  // every instance is progressed eventually — orphaned-CRI liveness).
  if (completions == 0) {
    for (int i = 0; i < pool_.size(); ++i) {
      const int k = pool_.next_round_robin();
      cri::CommResourceInstance& inst = pool_.instance(k);
      if (!inst.lock().try_lock()) {
        spc_.add(Counter::kInstanceTrylockFail);
        continue;
      }
      DrainBatch b;
      {
        LockGuard adopt(inst.lock(), adopt_lock);
        drain_locked(inst, b);
      }
      note_drain(inst, b, /*sweep=*/k != own);
      completions = dispatch(b);
      if (completions > 0) break;
    }
  }
  return completions;
}

std::size_t ProgressEngine::progress() {
  spc_.add(Counter::kProgressCalls);
  const std::size_t completions =
      mode_ == ProgressMode::kSerial ? progress_serial() : progress_concurrent();
  if (completions != 0) spc_.add(Counter::kProgressCompletions, completions);
  return completions;
}

}  // namespace fairmpi::progress
