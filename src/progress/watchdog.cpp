// Stall watchdog implementation (see include/fairmpi/progress/watchdog.hpp).
#include "fairmpi/progress/watchdog.hpp"

#include "fairmpi/common/error.hpp"

namespace fairmpi::progress {

using spc::Counter;

Watchdog::Watchdog(cri::CriPool& pool, spc::CounterSet& counters,
                   trace::Tracer& tracer, std::uint64_t interval_ns,
                   int stall_sweeps, std::uint64_t rndv_stall_ns)
    : pool_(pool), spc_(counters), tracer_(tracer), interval_ns_(interval_ns),
      stall_sweeps_(stall_sweeps), rndv_stall_ns_(rndv_stall_ns),
      instances_(static_cast<std::size_t>(pool.size())) {
  FAIRMPI_CHECK(stall_sweeps >= 1);
}

std::size_t Watchdog::poll(std::uint64_t now_ns) {
  if (interval_ns_ == ~std::uint64_t{0}) return 0;  // disabled
  // Cheap time gate before any lock traffic. A sweep observed slightly late
  // (stale load) just runs on the next poll; the lock below serializes the
  // sweep itself.
  // lint: allow(relaxed-sync) interval gate only; the try_lock owns the sweep
  if (interval_ns_ != 0 &&
      now_ns - last_sweep_ns_.load(std::memory_order_relaxed) < interval_ns_) {
    return 0;
  }
  if (!lock_.try_lock()) return 0;  // another thread is sweeping
  LockGuard adopt(lock_, adopt_lock);
  last_sweep_ns_.store(now_ns, std::memory_order_relaxed);

  std::size_t flagged = 0;
  for (int i = 0; i < pool_.size(); ++i) {
    fabric::NetworkContext& ctx = pool_.instance(i).context();
    // Consumption frontier from existing lock-free instrumentation: packets
    // ever delivered minus those still queued. Both reads are racy against
    // producers, which only makes the frontier look *smaller* — a stall is
    // declared only after it stays frozen with a backlog for N full sweeps.
    const std::uint64_t delivered = ctx.delivered();
    const std::uint64_t backlog =
        static_cast<std::uint64_t>(ctx.rx().size_approx());
    const std::uint64_t consumed = delivered - backlog;

    InstanceState& st = instances_[static_cast<std::size_t>(i)];
    // Signed progress delta. A spurious *decrease* is possible (a push
    // landing between the two reads inflates backlog), and the old
    // `consumed != last` test treated that phantom as progress — resetting
    // the strike counter of a genuinely frozen instance every time inbound
    // traffic raced the sweep, so a flooded-and-stuck CRI was never
    // escalated. Only a genuine advance (delta > 0, even *partial* — the
    // backlog need not drain fully) ends the episode.
    const auto delta = static_cast<std::int64_t>(consumed - st.last_consumed);
    if (backlog == 0 || delta > 0) {
      st.last_consumed = consumed;
      st.strikes = 0;
      st.escalated = false;  // episode over: draining resumed
      continue;
    }
    if (delta < 0) continue;  // racy read: inconclusive — no strike, no reset
    if (++st.strikes < stall_sweeps_ || st.escalated) continue;

    st.escalated = true;
    ++flagged;
    stalls_.fetch_add(1, std::memory_order_relaxed);
    spc_.add(Counter::kWatchdogStalls);
    tracer_.record(trace::Event::kWatchdogStall, static_cast<std::uint32_t>(i),
                   static_cast<std::uint32_t>(st.strikes));
    if (sink_ != nullptr) {
      // Attribute the stall to the peer the failure detector currently
      // suspects (if ft is on and suspects someone); -1 = unattributed.
      const int peer =
          suspect_hint_ != nullptr ? suspect_hint_->load(std::memory_order_relaxed) : -1;
      sink_(common::Error{common::ErrorCode::kStalledInstance, rank_, peer,
                          static_cast<std::uint64_t>(i)},
            sink_user_);
    }
  }

  if (probe_ != nullptr && now_ns > rndv_stall_ns_) {
    const std::size_t rndv = probe_->scan_stalled(now_ns, now_ns - rndv_stall_ns_);
    flagged += rndv;
    stalls_.fetch_add(rndv, std::memory_order_relaxed);
  }
  return flagged;
}

}  // namespace fairmpi::progress
