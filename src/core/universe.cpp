#include "fairmpi/core/universe.hpp"

#include <cctype>
#include <cstdlib>
#include <string>

#include "fairmpi/common/error.hpp"
#include "fairmpi/common/timing.hpp"
#include "fairmpi/core/cvar.hpp"

namespace fairmpi {

namespace {
std::vector<int> contexts_per_rank(const Config& cfg) {
  FAIRMPI_CHECK_MSG(cfg.num_ranks >= 1, "universe needs at least one rank");
  FAIRMPI_CHECK_MSG(cfg.num_instances >= 1, "at least one CRI per rank");
  return std::vector<int>(static_cast<std::size_t>(cfg.num_ranks), cfg.num_instances);
}

/// Chaos-testing hook: the fault/reliability knobs are also honoured from
/// the environment for universes built from a programmatic Config (tests,
/// benches), so a CI job can replay an entire suite over a lossy fabric
/// without touching each call site. Only fault-model knobs are read here —
/// topology/design knobs from the environment stay the job of
/// config_from_env, so a test's explicitly constructed design is never
/// silently overridden.
Config apply_chaos_env(Config cfg) {
  static constexpr const char* kChaosKnobs[] = {
      "fault_drop",     "fault_dup",        "fault_delay",
      "fault_reorder",  "fault_corrupt",    "fault_seed",
      "reliable",       "rto_ns",           "rto_max_ns",
      "max_retries",    "reliability_window", "send_retry_limit",
      "watchdog_interval_ns", "watchdog_stall_sweeps", "rndv_stall_ns",
      // ft knobs ride along so a chaos job can arm the failure detector
      // (FAIRMPI_FT=1) across a whole suite without touching call sites.
      "ft",             "ft_heartbeat_ns",  "ft_suspect_ns",
      "ft_strikes",
      // Observability knobs ride along for the same reason: FAIRMPI_TRACE=1
      // FAIRMPI_OBS=1 must instrument a test/bench binary that builds its
      // Config programmatically, without touching each call site. They are
      // additive-only (never alter the communication design under test).
      "trace",          "trace_entries",    "obs",
      // Overload-control caps (§5h) ride along so a memory-pressure chaos
      // job can squeeze a whole suite under tiny caps without touching
      // call sites. Additive: unset means uncapped, exactly as before.
      "unexpected_cap", "unexpected_policy", "payload_pool_cap",
      "payload_pool_policy", "tracker_cap",  "tracker_policy",
      "overload_high_pct", "overload_low_pct", "op_deadline_ns",
  };
  for (const char* name : kChaosKnobs) {
    std::string env_name = "FAIRMPI_";
    for (const char* p = name; *p != '\0'; ++p) {
      env_name.push_back(static_cast<char>(std::toupper(static_cast<unsigned char>(*p))));
    }
    const char* value = std::getenv(env_name.c_str());
    if (value == nullptr) continue;
    FAIRMPI_CHECK_MSG(apply_cvar(cfg, name, value), "malformed FAIRMPI_* variable");
  }
  // A lossy fabric without the reliability protocol cannot keep MPI
  // semantics; switching faults on implies switching reliability on.
  if (cfg.faults.any()) cfg.reliable = true;
  // "FAIRMPI_TRACE=1" alone should record something exportable.
  if (cfg.trace_enabled && cfg.trace_entries == 0) cfg.trace_entries = 1 << 16;
  return cfg;
}
}  // namespace

Universe::Universe(Config cfg)
    : cfg_(apply_chaos_env(std::move(cfg))),
      fabric_(contexts_per_rank(cfg_), cfg_.fabric) {
  FAIRMPI_CHECK(cfg_.max_communicators >= 1);
  // Sticky process-global switch: lock classes (and their contention cells)
  // exist below any one universe, so the profile does too. Never unset —
  // a later obs-less universe must not blind a concurrent profiled one.
  if (cfg_.obs_enabled) obs::set_enabled(true);
  // Same sticky-switch discipline for the payload-pool byte accounting
  // (§5h): the uncapped fast path skips the per-packet RMWs entirely.
  if (cfg_.payload_pool_cap_bytes != 0 || cfg_.obs_enabled) {
    fabric::enable_payload_pool_accounting();
  }
  // Reliability plumbing must exist before any rank can inject. ft forces
  // the injector even on a pristine fabric: the detector's kill mode
  // (FaultInjector::kill_rank) is its ground truth for rank death.
  fabric_.configure_reliability(cfg_.faults, cfg_.reliable, cfg_.ft_enabled);
  ranks_.reserve(static_cast<std::size_t>(cfg_.num_ranks));
  for (int r = 0; r < cfg_.num_ranks; ++r) {
    // make_unique can't reach the private constructor.
    ranks_.emplace_back(new Rank(*this, r));
  }
  // World communicator exists everywhere from the start.
  for (auto& rank : ranks_) rank->install_comm(kWorldComm);
}

Universe::~Universe() = default;

CommId Universe::create_communicator() {
  LockGuard guard(comm_create_lock_);
  const CommId id = next_comm_.fetch_add(1, std::memory_order_relaxed);
  FAIRMPI_CHECK_MSG(id < static_cast<CommId>(cfg_.max_communicators),
                    "communicator table exhausted (raise Config::max_communicators)");
  for (auto& rank : ranks_) rank->install_comm(id);
  return id;
}

CommId Universe::create_communicator(std::vector<int> members) {
  FAIRMPI_CHECK_MSG(!members.empty(), "communicator group must be non-empty");
  for (std::size_t i = 0; i < members.size(); ++i) {
    FAIRMPI_CHECK_MSG(members[i] >= 0 && members[i] < num_ranks(),
                      "group member out of range");
    FAIRMPI_CHECK_MSG(i == 0 || members[i] > members[i - 1],
                      "group members must be strictly increasing");
  }
  LockGuard guard(comm_create_lock_);
  const CommId id = next_comm_.fetch_add(1, std::memory_order_relaxed);
  FAIRMPI_CHECK_MSG(id < static_cast<CommId>(cfg_.max_communicators),
                    "communicator table exhausted (raise Config::max_communicators)");
  // Installed on every rank — members and non-members alike — so any rank
  // can still resolve the id (non-members simply never operate on it).
  for (auto& rank : ranks_) rank->install_comm(id, members);
  return id;
}

// --- ft: communicator-level recovery (DESIGN.md §5g) ---

void Universe::revoke(CommId id) {
  for (auto& rank : ranks_) {
    p2p::CommState& cs = rank->comm_state(id);
    if (cs.revoked()) continue;  // idempotent per rank
    cs.revoke();
    const std::size_t failed = cs.match().fail_all_posted();
    rank->tracer().record(trace::Event::kCommRevoke, id,
                          static_cast<std::uint32_t>(failed));
  }
}

std::vector<int> Universe::survivors() const {
  fabric::FaultInjector* injector =
      const_cast<fabric::Fabric&>(fabric_).injector();
  std::vector<int> alive;
  alive.reserve(ranks_.size());
  for (const auto& rank : ranks_) {
    const int r = rank->id();
    bool dead = injector != nullptr && injector->rank_dead(r);
    for (const auto& other : ranks_) {
      if (dead) break;
      ft::FailureDetector* det = other->ft_.get();
      if (other->id() != r && det != nullptr && det->is_dead(r)) dead = true;
    }
    if (!dead) alive.push_back(r);
  }
  return alive;
}

bool Universe::quiesce(std::uint64_t timeout_ns) {
  const std::vector<int> alive = survivors();
  const std::uint64_t deadline = now_ns() + timeout_ns;
  // Quiescent = two consecutive all-idle sweeps (one can be a fluke of
  // approximate ring counts) with every surviving tracker empty. Tracked
  // entries toward dead peers drain via the sweep's failed_peers purge.
  int idle_sweeps = 0;
  while (idle_sweeps < 2) {
    std::size_t work = 0;
    bool tracked = false;
    for (const int r : alive) {
      Rank& rk = *ranks_[static_cast<std::size_t>(r)];
      work += rk.progress();
      if (rk.tracker_ != nullptr && rk.tracker_->in_flight() != 0) tracked = true;
    }
    idle_sweeps = work == 0 && !tracked ? idle_sweeps + 1 : 0;
    if (now_ns() > deadline) {
      // Say WHY the drain failed (§5h satellite): every rank still holding
      // backlog reports a typed kQuiesceTimeout through its error sink,
      // with the three resource counts packed into `detail` (16 bits each,
      // saturating: [tracked in-flight | unexpected queued | rndv pending])
      // so a sink can tell a stuck retransmit from a flooded queue.
      const auto sat16 = [](std::size_t v) -> std::uint64_t {
        return v > 0xffff ? 0xffff : static_cast<std::uint64_t>(v);
      };
      for (const int r : alive) {
        Rank& rk = *ranks_[static_cast<std::size_t>(r)];
        const std::size_t in_flight =
            rk.tracker_ != nullptr ? rk.tracker_->in_flight() : 0;
        std::size_t unexpected = 0;
        for (auto& slot : rk.comms_) {
          p2p::CommState* cs = slot.load(std::memory_order_acquire);
          if (cs != nullptr) unexpected += cs->match().unexpected_count();
        }
        std::size_t rndv = 0;
        {
          LockGuard guard(rk.rndv_lock_);
          rndv = rk.rndv_sends_.size() + rk.rndv_recvs_.size();
        }
        if (in_flight == 0 && unexpected == 0 && rndv == 0) continue;
        rk.spc_.add(spc::Counter::kQuiesceTimeouts);
        rk.report_error(common::Error{
            common::ErrorCode::kQuiesceTimeout, r, -1,
            (sat16(in_flight) << 32) | (sat16(unexpected) << 16) | sat16(rndv)});
      }
      return false;
    }
  }
  return true;
}

CommId Universe::shrink(CommId id) {
  revoke(id);
  // Bounded drain so no survivor is still blocked inside an operation on
  // the revoked communicator when the replacement starts talking. 50 ms is
  // generous next to the detector's defaults (~8 ms to confirm a death).
  (void)quiesce(50'000'000);
  return create_communicator(survivors());
}

void Universe::sweep_reliability(std::uint64_t now_ns) noexcept {
  fabric::FaultInjector* injector = fabric_.injector();
  for (auto& rank : ranks_) {
    // A killed rank's NIC does not retransmit: its outbound packets are
    // eaten by the injector anyway, so sweeping its tracker would only
    // burn the survivors' progress cycles on a corpse's retry furnace.
    if (injector != nullptr && injector->rank_dead(rank->id())) continue;
    p2p::ReliabilityTracker* tracker = rank->tracker_.get();
    // lint: allow(relaxed-sync) next_deadline is a racy fast-path gate; the
    // sweep itself re-checks every deadline under the tracker lock.
    if (tracker != nullptr && now_ns >= tracker->next_deadline()) {
      rank->reliability_sweep(now_ns);
    }
  }
}

spc::Snapshot Universe::aggregate_counters() const {
  spc::Snapshot total;
  for (const auto& rank : ranks_) {
    total.merge(rank->counters().snapshot());
  }
  return total;
}

}  // namespace fairmpi
