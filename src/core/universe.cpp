#include "fairmpi/core/universe.hpp"

#include <cctype>
#include <cstdlib>
#include <string>

#include "fairmpi/common/error.hpp"
#include "fairmpi/core/cvar.hpp"

namespace fairmpi {

namespace {
std::vector<int> contexts_per_rank(const Config& cfg) {
  FAIRMPI_CHECK_MSG(cfg.num_ranks >= 1, "universe needs at least one rank");
  FAIRMPI_CHECK_MSG(cfg.num_instances >= 1, "at least one CRI per rank");
  return std::vector<int>(static_cast<std::size_t>(cfg.num_ranks), cfg.num_instances);
}

/// Chaos-testing hook: the fault/reliability knobs are also honoured from
/// the environment for universes built from a programmatic Config (tests,
/// benches), so a CI job can replay an entire suite over a lossy fabric
/// without touching each call site. Only fault-model knobs are read here —
/// topology/design knobs from the environment stay the job of
/// config_from_env, so a test's explicitly constructed design is never
/// silently overridden.
Config apply_chaos_env(Config cfg) {
  static constexpr const char* kChaosKnobs[] = {
      "fault_drop",     "fault_dup",        "fault_delay",
      "fault_reorder",  "fault_corrupt",    "fault_seed",
      "reliable",       "rto_ns",           "rto_max_ns",
      "max_retries",    "reliability_window", "send_retry_limit",
      "watchdog_interval_ns", "watchdog_stall_sweeps", "rndv_stall_ns",
      // Observability knobs ride along for the same reason: FAIRMPI_TRACE=1
      // FAIRMPI_OBS=1 must instrument a test/bench binary that builds its
      // Config programmatically, without touching each call site. They are
      // additive-only (never alter the communication design under test).
      "trace",          "trace_entries",    "obs",
  };
  for (const char* name : kChaosKnobs) {
    std::string env_name = "FAIRMPI_";
    for (const char* p = name; *p != '\0'; ++p) {
      env_name.push_back(static_cast<char>(std::toupper(static_cast<unsigned char>(*p))));
    }
    const char* value = std::getenv(env_name.c_str());
    if (value == nullptr) continue;
    FAIRMPI_CHECK_MSG(apply_cvar(cfg, name, value), "malformed FAIRMPI_* variable");
  }
  // A lossy fabric without the reliability protocol cannot keep MPI
  // semantics; switching faults on implies switching reliability on.
  if (cfg.faults.any()) cfg.reliable = true;
  // "FAIRMPI_TRACE=1" alone should record something exportable.
  if (cfg.trace_enabled && cfg.trace_entries == 0) cfg.trace_entries = 1 << 16;
  return cfg;
}
}  // namespace

Universe::Universe(Config cfg)
    : cfg_(apply_chaos_env(std::move(cfg))),
      fabric_(contexts_per_rank(cfg_), cfg_.fabric) {
  FAIRMPI_CHECK(cfg_.max_communicators >= 1);
  // Sticky process-global switch: lock classes (and their contention cells)
  // exist below any one universe, so the profile does too. Never unset —
  // a later obs-less universe must not blind a concurrent profiled one.
  if (cfg_.obs_enabled) obs::set_enabled(true);
  // Reliability plumbing must exist before any rank can inject.
  fabric_.configure_reliability(cfg_.faults, cfg_.reliable);
  ranks_.reserve(static_cast<std::size_t>(cfg_.num_ranks));
  for (int r = 0; r < cfg_.num_ranks; ++r) {
    // make_unique can't reach the private constructor.
    ranks_.emplace_back(new Rank(*this, r));
  }
  // World communicator exists everywhere from the start.
  for (auto& rank : ranks_) rank->install_comm(kWorldComm);
}

Universe::~Universe() = default;

CommId Universe::create_communicator() {
  LockGuard guard(comm_create_lock_);
  const CommId id = next_comm_.fetch_add(1, std::memory_order_relaxed);
  FAIRMPI_CHECK_MSG(id < static_cast<CommId>(cfg_.max_communicators),
                    "communicator table exhausted (raise Config::max_communicators)");
  for (auto& rank : ranks_) rank->install_comm(id);
  return id;
}

void Universe::sweep_reliability(std::uint64_t now_ns) noexcept {
  for (auto& rank : ranks_) {
    p2p::ReliabilityTracker* tracker = rank->tracker_.get();
    // lint: allow(relaxed-sync) next_deadline is a racy fast-path gate; the
    // sweep itself re-checks every deadline under the tracker lock.
    if (tracker != nullptr && now_ns >= tracker->next_deadline()) {
      rank->reliability_sweep(now_ns);
    }
  }
}

spc::Snapshot Universe::aggregate_counters() const {
  spc::Snapshot total;
  for (const auto& rank : ranks_) {
    total.merge(rank->counters().snapshot());
  }
  return total;
}

}  // namespace fairmpi
