#include "fairmpi/core/universe.hpp"

#include <mutex>

#include "fairmpi/common/error.hpp"

namespace fairmpi {

namespace {
std::vector<int> contexts_per_rank(const Config& cfg) {
  FAIRMPI_CHECK_MSG(cfg.num_ranks >= 1, "universe needs at least one rank");
  FAIRMPI_CHECK_MSG(cfg.num_instances >= 1, "at least one CRI per rank");
  return std::vector<int>(static_cast<std::size_t>(cfg.num_ranks), cfg.num_instances);
}
}  // namespace

Universe::Universe(Config cfg)
    : cfg_(cfg), fabric_(contexts_per_rank(cfg), cfg.fabric) {
  FAIRMPI_CHECK(cfg_.max_communicators >= 1);
  ranks_.reserve(static_cast<std::size_t>(cfg_.num_ranks));
  for (int r = 0; r < cfg_.num_ranks; ++r) {
    // make_unique can't reach the private constructor.
    ranks_.emplace_back(new Rank(*this, r));
  }
  // World communicator exists everywhere from the start.
  for (auto& rank : ranks_) rank->install_comm(kWorldComm);
}

Universe::~Universe() = default;

CommId Universe::create_communicator() {
  std::scoped_lock guard(comm_create_lock_);
  const CommId id = next_comm_.fetch_add(1, std::memory_order_relaxed);
  FAIRMPI_CHECK_MSG(id < static_cast<CommId>(cfg_.max_communicators),
                    "communicator table exhausted (raise Config::max_communicators)");
  for (auto& rank : ranks_) rank->install_comm(id);
  return id;
}

spc::Snapshot Universe::aggregate_counters() const {
  spc::Snapshot total;
  for (const auto& rank : ranks_) {
    total.merge(rank->counters().snapshot());
  }
  return total;
}

}  // namespace fairmpi
