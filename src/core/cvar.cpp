#include "fairmpi/core/cvar.hpp"

#include <charconv>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "fairmpi/common/error.hpp"

namespace fairmpi {

namespace {

bool parse_u64(std::string_view text, std::uint64_t& out) {
  const char* begin = text.data();
  const char* end = begin + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, out);
  return ec == std::errc{} && ptr == end;
}

bool parse_prob(std::string_view text, double& out) {
  // from_chars<double> is available on the toolchain, but strtod keeps the
  // parse locale-independent enough for "0.01"-style probabilities.
  char buf[64];
  if (text.empty() || text.size() >= sizeof buf) return false;
  std::memcpy(buf, text.data(), text.size());
  buf[text.size()] = '\0';
  char* end = nullptr;
  const double v = std::strtod(buf, &end);
  if (end != buf + text.size()) return false;
  if (!(v >= 0.0 && v <= 1.0)) return false;
  out = v;
  return true;
}

bool parse_policy(std::string_view text, overload::Policy& out) {
  if (text == "queue") {
    out = overload::Policy::kQueue;
    return true;
  }
  if (text == "shed") {
    out = overload::Policy::kShed;
    return true;
  }
  return false;
}

bool parse_bool(std::string_view text, bool& out) {
  if (text == "0" || text == "false" || text == "off") {
    out = false;
    return true;
  }
  if (text == "1" || text == "true" || text == "on") {
    out = true;
    return true;
  }
  return false;
}

}  // namespace

bool apply_cvar(Config& cfg, std::string_view name, std::string_view value) {
  std::uint64_t u = 0;
  if (name == "num_instances") {
    if (!parse_u64(value, u) || u < 1) return false;
    cfg.num_instances = static_cast<int>(u);
    return true;
  }
  if (name == "assignment") {
    if (value == "rr" || value == "round-robin") {
      cfg.assignment = cri::Assignment::kRoundRobin;
      return true;
    }
    if (value == "dedicated") {
      cfg.assignment = cri::Assignment::kDedicated;
      return true;
    }
    return false;
  }
  if (name == "progress") {
    if (value == "serial") {
      cfg.progress_mode = progress::ProgressMode::kSerial;
      return true;
    }
    if (value == "concurrent") {
      cfg.progress_mode = progress::ProgressMode::kConcurrent;
      return true;
    }
    return false;
  }
  if (name == "allow_overtaking") {
    return parse_bool(value, cfg.allow_overtaking);
  }
  if (name == "progress_batch") {
    if (!parse_u64(value, u) || u < 1) return false;
    cfg.progress_batch = static_cast<int>(u);
    return true;
  }
  if (name == "eager_limit") {
    if (!parse_u64(value, u)) return false;
    cfg.eager_limit = static_cast<std::size_t>(u);
    return true;
  }
  if (name == "rndv_frag_bytes") {
    if (!parse_u64(value, u) || u < 1) return false;
    cfg.rndv_frag_bytes = static_cast<std::size_t>(u);
    return true;
  }
  if (name == "rx_ring_entries") {
    if (!parse_u64(value, u) || u < 2) return false;
    cfg.fabric.rx_ring_entries = static_cast<std::size_t>(u);
    return true;
  }
  if (name == "submit_ring_entries") {
    if (!parse_u64(value, u) || u < 2) return false;
    cfg.submit_ring_entries = static_cast<std::size_t>(u);
    return true;
  }
  if (name == "cq_entries") {
    if (!parse_u64(value, u) || u < 2) return false;
    cfg.fabric.cq_entries = static_cast<std::size_t>(u);
    return true;
  }
  if (name == "max_communicators") {
    if (!parse_u64(value, u) || u < 1) return false;
    cfg.max_communicators = static_cast<int>(u);
    return true;
  }
  if (name == "fault_drop") return parse_prob(value, cfg.faults.drop);
  if (name == "fault_dup") return parse_prob(value, cfg.faults.dup);
  if (name == "fault_delay") return parse_prob(value, cfg.faults.delay);
  if (name == "fault_reorder") return parse_prob(value, cfg.faults.reorder);
  if (name == "fault_corrupt") return parse_prob(value, cfg.faults.corrupt);
  if (name == "fault_seed") {
    if (!parse_u64(value, u)) return false;
    cfg.faults.seed = u;
    return true;
  }
  if (name == "reliable") {
    return parse_bool(value, cfg.reliable);
  }
  if (name == "rto_ns") {
    if (!parse_u64(value, u) || u < 1) return false;
    cfg.rto_ns = u;
    return true;
  }
  if (name == "rto_max_ns") {
    if (!parse_u64(value, u) || u < 1) return false;
    cfg.rto_max_ns = u;
    return true;
  }
  if (name == "max_retries") {
    // 0 is the fail-fast mode: the first unacked rto expiry fails the send
    // typed instead of retransmitting.
    if (!parse_u64(value, u)) return false;
    cfg.max_retries = static_cast<int>(u);
    return true;
  }
  if (name == "reliability_window") {
    if (!parse_u64(value, u)) return false;
    cfg.reliability_window = static_cast<std::size_t>(u);
    return true;
  }
  if (name == "send_retry_limit") {
    if (!parse_u64(value, u) || u < 1) return false;
    cfg.send_retry_limit = u;
    return true;
  }
  if (name == "watchdog_interval_ns") {
    if (!parse_u64(value, u)) return false;
    cfg.watchdog_interval_ns = u;
    return true;
  }
  if (name == "watchdog_stall_sweeps") {
    if (!parse_u64(value, u) || u < 1) return false;
    cfg.watchdog_stall_sweeps = static_cast<int>(u);
    return true;
  }
  if (name == "rndv_stall_ns") {
    if (!parse_u64(value, u) || u < 1) return false;
    cfg.rndv_stall_ns = u;
    return true;
  }
  if (name == "trace") {
    return parse_bool(value, cfg.trace_enabled);
  }
  if (name == "trace_entries") {
    if (!parse_u64(value, u)) return false;
    cfg.trace_entries = static_cast<std::size_t>(u);
    return true;
  }
  if (name == "obs") {
    return parse_bool(value, cfg.obs_enabled);
  }
  if (name == "ft") {
    return parse_bool(value, cfg.ft_enabled);
  }
  if (name == "ft_heartbeat_ns") {
    if (!parse_u64(value, u) || u < 1) return false;
    cfg.ft_heartbeat_ns = u;
    return true;
  }
  if (name == "ft_suspect_ns") {
    if (!parse_u64(value, u) || u < 1) return false;
    cfg.ft_suspect_ns = u;
    return true;
  }
  if (name == "ft_strikes") {
    if (!parse_u64(value, u) || u < 1) return false;
    cfg.ft_strikes = static_cast<int>(u);
    return true;
  }
  if (name == "unexpected_cap") {
    if (!parse_u64(value, u)) return false;
    cfg.unexpected_cap = static_cast<std::size_t>(u);
    return true;
  }
  if (name == "unexpected_policy") return parse_policy(value, cfg.unexpected_policy);
  if (name == "payload_pool_cap") {
    if (!parse_u64(value, u)) return false;
    cfg.payload_pool_cap_bytes = u;
    return true;
  }
  if (name == "payload_pool_policy") {
    return parse_policy(value, cfg.payload_pool_policy);
  }
  if (name == "tracker_cap") {
    if (!parse_u64(value, u)) return false;
    cfg.tracker_cap = static_cast<std::size_t>(u);
    return true;
  }
  if (name == "tracker_policy") return parse_policy(value, cfg.tracker_policy);
  if (name == "overload_high_pct") {
    if (!parse_u64(value, u) || u < 1 || u > 100) return false;
    cfg.overload_high_pct = static_cast<int>(u);
    return true;
  }
  if (name == "overload_low_pct") {
    if (!parse_u64(value, u) || u > 100) return false;
    cfg.overload_low_pct = static_cast<int>(u);
    return true;
  }
  if (name == "op_deadline_ns") {
    if (!parse_u64(value, u)) return false;
    cfg.op_deadline_ns = u;
    return true;
  }
  if (name == "coll_segment_bytes") {
    if (!parse_u64(value, u)) return false;
    cfg.coll_segment_bytes = static_cast<std::size_t>(u);
    return true;
  }
  if (name == "coll_rsag_min_bytes") {
    if (!parse_u64(value, u)) return false;
    cfg.coll_rsag_min_bytes = static_cast<std::size_t>(u);
    return true;
  }
  return false;
}

Config config_from_env(Config base) {
  static constexpr const char* kNames[] = {
      "num_instances", "assignment",      "progress",        "allow_overtaking",
      "progress_batch", "eager_limit",    "rndv_frag_bytes", "rx_ring_entries",
      "submit_ring_entries",
      "cq_entries",     "max_communicators",
      "fault_drop",    "fault_dup",       "fault_delay",     "fault_reorder",
      "fault_corrupt", "fault_seed",      "reliable",        "rto_ns",
      "rto_max_ns",    "max_retries",     "reliability_window",
      "send_retry_limit",
      "watchdog_interval_ns", "watchdog_stall_sweeps", "rndv_stall_ns",
      "trace",         "trace_entries",   "obs",
      "ft",            "ft_heartbeat_ns", "ft_suspect_ns",   "ft_strikes",
      "unexpected_cap", "unexpected_policy",
      "payload_pool_cap", "payload_pool_policy",
      "tracker_cap",   "tracker_policy",
      "overload_high_pct", "overload_low_pct", "op_deadline_ns",
      "coll_segment_bytes", "coll_rsag_min_bytes",
  };
  for (const char* name : kNames) {
    std::string env_name = "FAIRMPI_";
    for (const char* p = name; *p != '\0'; ++p) {
      env_name.push_back(*p == '-' ? '_'
                                   : static_cast<char>(std::toupper(
                                         static_cast<unsigned char>(*p))));
    }
    const char* value = std::getenv(env_name.c_str());
    if (value == nullptr) continue;
    FAIRMPI_CHECK_MSG(apply_cvar(base, name, value), "malformed FAIRMPI_* variable");
  }
  return base;
}

std::string list_cvars(const Config& cfg) {
  std::ostringstream os;
  os << "num_instances     = " << cfg.num_instances << '\n'
     << "assignment        = " << cri::assignment_name(cfg.assignment) << '\n'
     << "progress          = " << progress::progress_mode_name(cfg.progress_mode) << '\n'
     << "allow_overtaking  = " << (cfg.allow_overtaking ? "true" : "false") << '\n'
     << "progress_batch    = " << cfg.progress_batch << '\n'
     << "eager_limit       = " << cfg.eager_limit << '\n'
     << "rndv_frag_bytes   = " << cfg.rndv_frag_bytes << '\n'
     << "rx_ring_entries   = " << cfg.fabric.rx_ring_entries << '\n'
     << "submit_ring_entries = " << cfg.submit_ring_entries << '\n'
     << "cq_entries        = " << cfg.fabric.cq_entries << '\n'
     << "max_communicators = " << cfg.max_communicators << '\n'
     << "fault_drop        = " << cfg.faults.drop << '\n'
     << "fault_dup         = " << cfg.faults.dup << '\n'
     << "fault_delay       = " << cfg.faults.delay << '\n'
     << "fault_reorder     = " << cfg.faults.reorder << '\n'
     << "fault_corrupt     = " << cfg.faults.corrupt << '\n'
     << "fault_seed        = " << cfg.faults.seed << '\n'
     << "reliable          = " << (cfg.reliable ? "true" : "false") << '\n'
     << "rto_ns            = " << cfg.rto_ns << '\n'
     << "rto_max_ns        = " << cfg.rto_max_ns << '\n'
     << "max_retries       = " << cfg.max_retries << '\n'
     << "reliability_window = " << cfg.reliability_window << '\n'
     << "send_retry_limit  = " << cfg.send_retry_limit << '\n'
     << "watchdog_interval_ns  = " << cfg.watchdog_interval_ns << '\n'
     << "watchdog_stall_sweeps = " << cfg.watchdog_stall_sweeps << '\n'
     << "rndv_stall_ns     = " << cfg.rndv_stall_ns << '\n'
     << "trace             = " << (cfg.trace_enabled ? "true" : "false") << '\n'
     << "trace_entries     = " << cfg.trace_entries << '\n'
     << "obs               = " << (cfg.obs_enabled ? "true" : "false") << '\n'
     << "ft                = " << (cfg.ft_enabled ? "true" : "false") << '\n'
     << "ft_heartbeat_ns   = " << cfg.ft_heartbeat_ns << '\n'
     << "ft_suspect_ns     = " << cfg.ft_suspect_ns << '\n'
     << "ft_strikes        = " << cfg.ft_strikes << '\n'
     << "unexpected_cap    = " << cfg.unexpected_cap << '\n'
     << "unexpected_policy = " << overload::policy_name(cfg.unexpected_policy) << '\n'
     << "payload_pool_cap  = " << cfg.payload_pool_cap_bytes << '\n'
     << "payload_pool_policy = " << overload::policy_name(cfg.payload_pool_policy)
     << '\n'
     << "tracker_cap       = " << cfg.tracker_cap << '\n'
     << "tracker_policy    = " << overload::policy_name(cfg.tracker_policy) << '\n'
     << "overload_high_pct = " << cfg.overload_high_pct << '\n'
     << "overload_low_pct  = " << cfg.overload_low_pct << '\n'
     << "op_deadline_ns    = " << cfg.op_deadline_ns << '\n'
     << "coll_segment_bytes = " << cfg.coll_segment_bytes << '\n'
     << "coll_rsag_min_bytes = " << cfg.coll_rsag_min_bytes << '\n';
  return os.str();
}

}  // namespace fairmpi
