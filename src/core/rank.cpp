#include <vector>

#include "fairmpi/common/error.hpp"
#include "fairmpi/common/spinlock.hpp"
#include "fairmpi/common/timing.hpp"
#include "fairmpi/core/universe.hpp"
#include "fairmpi/p2p/sender.hpp"

namespace fairmpi {

using spc::Counter;

Rank::Rank(Universe& uni, int id)
    : uni_(&uni), id_(id), tracer_(uni.config().trace_entries),
      pool_(uni.fabric(), id, uni.config().assignment, uni.config().submit_ring_entries),
      engine_(pool_, *this, uni.config().progress_mode, spc_, uni.config().progress_batch,
              &tracer_),
      comms_(static_cast<std::size_t>(uni.config().max_communicators)) {
  for (auto& slot : comms_) slot.store(nullptr, std::memory_order_relaxed);
  const Config& cfg = uni.config();
  if (cfg.trace_enabled) tracer_.enable(true);
  if (cfg.reliable) {
    tracker_ = std::make_unique<p2p::ReliabilityTracker>(cfg.rto_ns, cfg.rto_max_ns,
                                                         cfg.max_retries);
  }
  if (cfg.watchdog_interval_ns != ~std::uint64_t{0}) {
    watchdog_ = std::make_unique<progress::Watchdog>(
        pool_, spc_, tracer_, cfg.watchdog_interval_ns, cfg.watchdog_stall_sweeps,
        cfg.rndv_stall_ns);
    watchdog_->set_stall_probe(this);
    watchdog_->set_error_sink(err_sink_, err_user_, id_);
  }
}

void Rank::set_error_sink(common::ErrorSink sink, void* user) noexcept {
  err_sink_ = sink;
  err_user_ = user;
  if (watchdog_ != nullptr) watchdog_->set_error_sink(sink, user, id_);
}

void Rank::report_error(const common::Error& err) noexcept {
  if (err_sink_ != nullptr) err_sink_(err, err_user_);
}

Rank::~Rank() {
  for (auto& slot : comms_) {
    delete slot.load(std::memory_order_relaxed);
  }
}

void Rank::install_comm(CommId id) {
  FAIRMPI_CHECK(id < comms_.size());
  FAIRMPI_CHECK_MSG(comms_[id].load(std::memory_order_relaxed) == nullptr,
                    "communicator id already installed");
  auto* state = new p2p::CommState(id, uni_->num_ranks(),
                                   uni_->config().allow_overtaking, spc_,
                                   uni_->config().reliable);
  state->match().set_rendezvous_hook(this);
  comms_[id].store(state, std::memory_order_release);
}

p2p::CommState& Rank::comm_state(CommId id) {
  FAIRMPI_CHECK_MSG(id < comms_.size(), "communicator id out of range");
  p2p::CommState* state = comms_[id].load(std::memory_order_acquire);
  FAIRMPI_CHECK_MSG(state != nullptr, "communicator not created");
  return *state;
}

void Rank::isend(CommId comm, int dst, int tag, const void* buf, std::size_t n,
                 Request& req) {
  FAIRMPI_CHECK_MSG(dst >= 0 && dst < uni_->num_ranks(), "invalid destination rank");
  if (n > uni_->config().eager_limit) {
    FAIRMPI_CHECK_MSG(tag >= 0, "negative tags are reserved (wildcards/internal)");
    tracer_.record(trace::Event::kRndvRts, static_cast<std::uint32_t>(dst),
                   static_cast<std::uint32_t>(n));
    rndv_isend(comm, dst, tag, buf, n, req);
    return;
  }
  tracer_.record(trace::Event::kSend, static_cast<std::uint32_t>(dst),
                 static_cast<std::uint32_t>(tag));
  const p2p::SendPolicy policy{
      tracker_.get(), uni_->config().send_retry_limit,
      uni_->config().reliability_window,
      [](void* user) { return static_cast<Rank*>(user)->progress(); }, this};
  // Outcome comes back by value: completing `req` hands it back to the
  // waiting owner, which may destroy it before we could read failed().
  const common::ErrorCode ec = p2p::eager_send(comm_state(comm), pool_, engine_, spc_,
                                               id_, dst, tag, buf, n, req, policy);
  if (ec != common::ErrorCode::kOk) {
    report_error(common::Error{ec, id_, dst, 0});
  }
}

void Rank::irecv(CommId comm, int src, int tag, void* buf, std::size_t capacity,
                 Request& req) {
  FAIRMPI_CHECK_MSG(src == kAnySource || (src >= 0 && src < uni_->num_ranks()),
                    "invalid source rank");
  FAIRMPI_CHECK_MSG(tag == kAnyTag || tag >= 0, "invalid tag filter");
  req.init_recv(buf, capacity, src, tag);
  tracer_.record(trace::Event::kRecvPost, static_cast<std::uint32_t>(src + 1),
                 static_cast<std::uint32_t>(tag));
  comm_state(comm).match().post(&req);
}

void Rank::send(CommId comm, int dst, int tag, const void* buf, std::size_t n) {
  Request req;
  isend(comm, dst, tag, buf, n, req);
  wait(req);  // eager sends complete at injection; wait() is a formality
}

Status Rank::recv(CommId comm, int src, int tag, void* buf, std::size_t capacity) {
  Request req;
  irecv(comm, src, tag, buf, capacity, req);
  wait(req);
  return req.status();
}

// The wait loops below use SpinWait, not bare cpu_relax(): completion
// depends on a peer thread running (to inject, progress, or ack), so on an
// oversubscribed host a pure spinner would burn its whole scheduler quantum
// while that peer sits runnable — quantizing throughput at one window per
// quantum (the Multirate.SinglePairDeliversAtPlausibleRate failure mode on
// the 1-core CI box).

void Rank::wait(Request& req) {
  SpinWait waiter;
  while (!req.done()) {
    if (progress() == 0) waiter.pause(); else waiter.reset();
  }
}

bool Rank::test(Request& req) {
  if (req.done()) return true;
  progress();
  return req.done();
}

void Rank::wait_all(Request* const* reqs, std::size_t n) {
  SpinWait waiter;
  for (;;) {
    bool all_done = true;
    for (std::size_t i = 0; i < n; ++i) {
      if (!reqs[i]->done()) {
        all_done = false;
        break;
      }
    }
    if (all_done) return;
    if (progress() == 0) waiter.pause(); else waiter.reset();
  }
}

std::size_t Rank::wait_any(Request* const* reqs, std::size_t n) {
  FAIRMPI_CHECK_MSG(n > 0, "wait_any needs at least one request");
  SpinWait waiter;
  for (;;) {
    for (std::size_t i = 0; i < n; ++i) {
      if (reqs[i]->done()) return i;
    }
    if (progress() == 0) waiter.pause(); else waiter.reset();
  }
}

bool Rank::iprobe(CommId comm, int src, int tag, Status* status) {
  progress();
  return comm_state(comm).match().probe(src, tag, status);
}

Status Rank::probe(CommId comm, int src, int tag) {
  Status status;
  SpinWait waiter;
  while (!comm_state(comm).match().probe(src, tag, &status)) {
    if (progress() == 0) waiter.pause(); else waiter.reset();
  }
  return status;
}

std::size_t Rank::progress() {
  // Deferred rendezvous protocol work first (runs with no engine lock
  // held — see p2p/rendezvous.hpp), then the progress engine proper.
  drain_control();
  if (tracker_ != nullptr || watchdog_ != nullptr) {
    const std::uint64_t now = now_ns();
    // Sweep every rank's tracker, not just ours: retransmission models the
    // NIC's autonomous recovery, so it must run even when the packet's
    // owner has stopped calling progress() (see Universe::sweep_reliability).
    if (tracker_ != nullptr) uni_->sweep_reliability(now);
    if (watchdog_ != nullptr) watchdog_->poll(now);
  }
  const std::size_t completions = engine_.progress();
  // Acks enqueued while the engine dispatched packets leave immediately —
  // waiting for the next drain_control would add an rto of latency per hop
  // under load.
  if (tracker_ != nullptr) flush_acks();
  if (completions != 0) {
    tracer_.record(trace::Event::kProgress, static_cast<std::uint32_t>(completions));
  }
  return completions;
}

bool Rank::inject_raw(int dst, fabric::Packet&& pkt) {
  const int k = pool_.id_for_thread();
  cri::CommResourceInstance& inst = pool_.instance(k);
  // Same lock-free submission path as eager_send (DESIGN.md §5f): control
  // traffic (acks, retransmits) rides the ring when the instance is busy
  // instead of blocking on the lock.
  return inst.inject(dst, pkt, spc_);
}

void Rank::enqueue_packet_ack(const fabric::WireHeader& hdr) {
  LockGuard guard(control_lock_);
  acks_.push_back(p2p::ControlMsg{p2p::ControlMsg::Kind::kSendPacketAck,
                                  static_cast<int>(hdr.src_rank), hdr.comm_id,
                                  /*local_cookie=*/0, /*remote_cookie=*/hdr.imm,
                                  hdr.seq, static_cast<std::uint16_t>(hdr.opcode)});
}

void Rank::flush_acks() {
  for (;;) {
    p2p::ControlMsg msg;
    {
      LockGuard guard(control_lock_);
      if (acks_.empty()) return;
      msg = acks_.front();
      acks_.pop_front();
    }
    // Reliability ack: echo the received packet's identifying key so the
    // sender can retire its tracked clone. Unreliable by design — if this
    // ack is lost the peer retransmits and we re-ack.
    fabric::Packet ack;
    ack.hdr.opcode = fabric::Opcode::kAck;
    ack.hdr.src_rank = static_cast<std::uint16_t>(id_);
    ack.hdr.comm_id = msg.comm;
    ack.hdr.tag = static_cast<std::int32_t>(msg.ack_opcode);
    ack.hdr.seq = msg.seq;
    ack.hdr.imm = msg.remote_cookie;
    if (!inject_raw(msg.peer, std::move(ack))) {
      // Peer's ring is full: requeue and stop — pushing harder only spins.
      LockGuard guard(control_lock_);
      acks_.push_front(msg);
      return;
    }
    spc_.add(Counter::kAcksSent);
    tracer_.record(trace::Event::kAckSent, static_cast<std::uint32_t>(msg.peer),
                   msg.seq);
  }
}

void Rank::reliability_sweep(std::uint64_t now) {
  if (sweeping_.exchange(true, std::memory_order_acquire)) return;
  // lint: allow(hotpath-alloc) only reached when packets expired (lossy run)
  std::vector<p2p::ReliabilityTracker::Resend> resends;
  std::vector<p2p::ReliabilityTracker::Failure> failures;
  tracker_->sweep(now, resends, failures);
  for (auto& r : resends) {
    const p2p::PacketKey key = p2p::key_of(r.dst, r.pkt.hdr);
    // Single attempt: if the ring is full the tracker still holds the
    // entry, so a later sweep simply tries again — no nested retry loop.
    // Only a clone that actually reached the wire is charged against the
    // retry budget (confirm applies the backoff); a ring-full failure is
    // the sender's own congestion, not evidence of loss.
    if (inject_raw(r.dst, std::move(r.pkt))) {
      spc_.add(Counter::kRetransmits);
      tracer_.record(trace::Event::kRetransmit, static_cast<std::uint32_t>(r.dst),
                     key.seq);
      tracker_->confirm_retransmit(key, now);
    }
  }
  for (const auto& f : failures) {
    spc_.add(Counter::kReliabilityErrors);
    report_error(common::Error{common::ErrorCode::kRetryExhausted, id_,
                               static_cast<int>(f.key.peer), f.key.seq});
  }
  sweeping_.store(false, std::memory_order_release);
}

std::size_t Rank::scan_stalled(std::uint64_t now, std::uint64_t horizon) {
  (void)now;
  struct Stalled {
    int peer;
    std::uint64_t cookie;
  };
  // lint: allow(hotpath-alloc) watchdog escalation path, not the hot path
  std::vector<Stalled> flagged;
  {
    LockGuard guard(rndv_lock_);
    for (auto& [cookie, st] : rndv_sends_) {
      if (!st->stall_flagged && st->born_ns != 0 && st->born_ns < horizon) {
        st->stall_flagged = true;
        flagged.push_back(Stalled{st->dst, cookie});
      }
    }
    for (auto& [cookie, st] : rndv_recvs_) {
      if (!st->stall_flagged && st->born_ns != 0 && st->born_ns < horizon) {
        st->stall_flagged = true;
        flagged.push_back(Stalled{st->status.source, cookie});
      }
    }
  }
  for (const auto& s : flagged) {
    spc_.add(Counter::kWatchdogStalls);
    tracer_.record(trace::Event::kWatchdogStall, static_cast<std::uint32_t>(s.peer),
                   static_cast<std::uint32_t>(s.cookie));
    report_error(common::Error{common::ErrorCode::kStalledRendezvous, id_, s.peer,
                               s.cookie});
  }
  return flagged.size();
}

std::size_t Rank::handle_packet(fabric::Packet&& pkt) {
  // Structural validation before anything dereferences header fields: a
  // corrupted opcode or rank id is counted and dropped, never dispatched.
  if (!fabric::validate_structure(pkt, uni_->num_ranks())) {
    spc_.add(Counter::kHeaderDrops);
    return 0;
  }
  if (tracker_ != nullptr) {
    if (!fabric::verify_checksum(pkt)) {
      spc_.add(Counter::kCsumDrops);
      tracer_.record(trace::Event::kCsumDrop, pkt.hdr.src_rank, pkt.hdr.seq);
      return 0;
    }
    if (pkt.hdr.opcode == fabric::Opcode::kAck) {
      spc_.add(Counter::kAcksReceived);
      tracer_.record(trace::Event::kAckRecv, pkt.hdr.src_rank, pkt.hdr.seq);
      (void)tracker_->ack(p2p::key_of_ack(pkt.hdr));
      return 0;
    }
    // Ack every structurally valid packet — duplicates included, because
    // the duplicate usually means our previous ack was the casualty.
    enqueue_packet_ack(pkt.hdr);
  } else if (pkt.hdr.opcode == fabric::Opcode::kAck) {
    // Reliability off: there is no tracker to retire the ack against.
    spc_.add(Counter::kHeaderDrops);
    return 0;
  }
  switch (pkt.hdr.opcode) {
    case fabric::Opcode::kEager:
    case fabric::Opcode::kRndvRts:
      // Both carry a matching envelope; RTS delivery diverts to the
      // rendezvous hook inside the engine.
      return comm_state(pkt.hdr.comm_id).match().incoming(std::move(pkt));
    case fabric::Opcode::kRndvAck:
      return handle_rndv_ack(pkt);
    case fabric::Opcode::kRndvData:
      return handle_rndv_data(pkt);
    case fabric::Opcode::kAck:
    case fabric::Opcode::kInvalid:
      break;  // both consumed above; unreachable
  }
  FAIRMPI_CHECK_MSG(false, "invalid opcode on the wire");
  return 0;
}

std::size_t Rank::handle_completion(const fabric::Completion& c) {
  switch (c.kind) {
    case fabric::Completion::Kind::kSendDone: {
      auto* req = static_cast<p2p::Request*>(c.cookie);
      req->complete();
      return 1;
    }
    case fabric::Completion::Kind::kRmaDone: {
      // The cookie is the initiating window's pending-operation counter
      // (see rma/window.cpp). Handled here too because a generic progress
      // call may drain RMA completions before the flush path sees them.
      auto* pending = static_cast<std::atomic<std::uint64_t>*>(c.cookie);
      pending->fetch_sub(1, std::memory_order_release);
      return 1;
    }
    case fabric::Completion::Kind::kNone:
      break;
  }
  FAIRMPI_CHECK_MSG(false, "invalid completion on a CQ");
  return 0;
}

// --- Communicator forwarding ---

int Communicator::rank() const noexcept { return rank_->id(); }

int Communicator::size() const noexcept { return rank_->universe().num_ranks(); }

void Communicator::isend(int dst, int tag, const void* buf, std::size_t n, Request& req) {
  rank_->isend(id_, dst, tag, buf, n, req);
}

void Communicator::irecv(int src, int tag, void* buf, std::size_t capacity, Request& req) {
  rank_->irecv(id_, src, tag, buf, capacity, req);
}

void Communicator::send(int dst, int tag, const void* buf, std::size_t n) {
  rank_->send(id_, dst, tag, buf, n);
}

Status Communicator::recv(int src, int tag, void* buf, std::size_t capacity) {
  return rank_->recv(id_, src, tag, buf, capacity);
}

void Communicator::barrier() {
  // Dissemination barrier: log2(n) rounds of paired send/recv on reserved
  // tags. Reserved tag space starts at kBarrierTagBase; user tags in the
  // examples/benches stay far below it.
  constexpr int kBarrierTagBase = 1 << 30;
  const int n = size();
  const int me = rank();
  if (n == 1) return;
  unsigned char token = 0;
  for (int step = 0, dist = 1; dist < n; ++step, dist <<= 1) {
    const int to = (me + dist) % n;
    const int from = ((me - dist) % n + n) % n;
    Request sreq, rreq;
    unsigned char in = 0;
    rank_->isend(id_, to, kBarrierTagBase + step, &token, 1, sreq);
    rank_->irecv(id_, from, kBarrierTagBase + step, &in, 1, rreq);
    rank_->wait(rreq);
    rank_->wait(sreq);
  }
}

}  // namespace fairmpi
