#include <mutex>

#include "fairmpi/common/error.hpp"
#include "fairmpi/common/spinlock.hpp"
#include "fairmpi/core/universe.hpp"
#include "fairmpi/p2p/sender.hpp"

namespace fairmpi {

Rank::Rank(Universe& uni, int id)
    : uni_(&uni), id_(id), tracer_(uni.config().trace_entries),
      pool_(uni.fabric(), id, uni.config().assignment),
      engine_(pool_, *this, uni.config().progress_mode, spc_, uni.config().progress_batch),
      comms_(static_cast<std::size_t>(uni.config().max_communicators)) {
  for (auto& slot : comms_) slot.store(nullptr, std::memory_order_relaxed);
}

Rank::~Rank() {
  for (auto& slot : comms_) {
    delete slot.load(std::memory_order_relaxed);
  }
}

void Rank::install_comm(CommId id) {
  FAIRMPI_CHECK(id < comms_.size());
  FAIRMPI_CHECK_MSG(comms_[id].load(std::memory_order_relaxed) == nullptr,
                    "communicator id already installed");
  auto* state = new p2p::CommState(id, uni_->num_ranks(),
                                   uni_->config().allow_overtaking, spc_);
  state->match().set_rendezvous_hook(this);
  comms_[id].store(state, std::memory_order_release);
}

p2p::CommState& Rank::comm_state(CommId id) {
  FAIRMPI_CHECK_MSG(id < comms_.size(), "communicator id out of range");
  p2p::CommState* state = comms_[id].load(std::memory_order_acquire);
  FAIRMPI_CHECK_MSG(state != nullptr, "communicator not created");
  return *state;
}

void Rank::isend(CommId comm, int dst, int tag, const void* buf, std::size_t n,
                 Request& req) {
  FAIRMPI_CHECK_MSG(dst >= 0 && dst < uni_->num_ranks(), "invalid destination rank");
  if (n > uni_->config().eager_limit) {
    FAIRMPI_CHECK_MSG(tag >= 0, "negative tags are reserved (wildcards/internal)");
    tracer_.record(trace::Event::kRndvRts, static_cast<std::uint32_t>(dst),
                   static_cast<std::uint32_t>(n));
    rndv_isend(comm, dst, tag, buf, n, req);
    return;
  }
  tracer_.record(trace::Event::kSend, static_cast<std::uint32_t>(dst),
                 static_cast<std::uint32_t>(tag));
  p2p::eager_send(comm_state(comm), pool_, engine_, spc_, id_, dst, tag, buf, n, req);
}

void Rank::irecv(CommId comm, int src, int tag, void* buf, std::size_t capacity,
                 Request& req) {
  FAIRMPI_CHECK_MSG(src == kAnySource || (src >= 0 && src < uni_->num_ranks()),
                    "invalid source rank");
  FAIRMPI_CHECK_MSG(tag == kAnyTag || tag >= 0, "invalid tag filter");
  req.init_recv(buf, capacity, src, tag);
  tracer_.record(trace::Event::kRecvPost, static_cast<std::uint32_t>(src + 1),
                 static_cast<std::uint32_t>(tag));
  comm_state(comm).match().post(&req);
}

void Rank::send(CommId comm, int dst, int tag, const void* buf, std::size_t n) {
  Request req;
  isend(comm, dst, tag, buf, n, req);
  wait(req);  // eager sends complete at injection; wait() is a formality
}

Status Rank::recv(CommId comm, int src, int tag, void* buf, std::size_t capacity) {
  Request req;
  irecv(comm, src, tag, buf, capacity, req);
  wait(req);
  return req.status();
}

// The wait loops below use SpinWait, not bare cpu_relax(): completion
// depends on a peer thread running (to inject, progress, or ack), so on an
// oversubscribed host a pure spinner would burn its whole scheduler quantum
// while that peer sits runnable — quantizing throughput at one window per
// quantum (the Multirate.SinglePairDeliversAtPlausibleRate failure mode on
// the 1-core CI box).

void Rank::wait(Request& req) {
  SpinWait waiter;
  while (!req.done()) {
    if (progress() == 0) waiter.pause(); else waiter.reset();
  }
}

bool Rank::test(Request& req) {
  if (req.done()) return true;
  progress();
  return req.done();
}

void Rank::wait_all(Request* const* reqs, std::size_t n) {
  SpinWait waiter;
  for (;;) {
    bool all_done = true;
    for (std::size_t i = 0; i < n; ++i) {
      if (!reqs[i]->done()) {
        all_done = false;
        break;
      }
    }
    if (all_done) return;
    if (progress() == 0) waiter.pause(); else waiter.reset();
  }
}

std::size_t Rank::wait_any(Request* const* reqs, std::size_t n) {
  FAIRMPI_CHECK_MSG(n > 0, "wait_any needs at least one request");
  SpinWait waiter;
  for (;;) {
    for (std::size_t i = 0; i < n; ++i) {
      if (reqs[i]->done()) return i;
    }
    if (progress() == 0) waiter.pause(); else waiter.reset();
  }
}

bool Rank::iprobe(CommId comm, int src, int tag, Status* status) {
  progress();
  return comm_state(comm).match().probe(src, tag, status);
}

Status Rank::probe(CommId comm, int src, int tag) {
  Status status;
  SpinWait waiter;
  while (!comm_state(comm).match().probe(src, tag, &status)) {
    if (progress() == 0) waiter.pause(); else waiter.reset();
  }
  return status;
}

std::size_t Rank::progress() {
  // Deferred rendezvous protocol work first (runs with no engine lock
  // held — see p2p/rendezvous.hpp), then the progress engine proper.
  drain_control();
  const std::size_t completions = engine_.progress();
  if (completions != 0) {
    tracer_.record(trace::Event::kProgress, static_cast<std::uint32_t>(completions));
  }
  return completions;
}

std::size_t Rank::handle_packet(fabric::Packet&& pkt) {
  switch (pkt.hdr.opcode) {
    case fabric::Opcode::kEager:
    case fabric::Opcode::kRndvRts:
      // Both carry a matching envelope; RTS delivery diverts to the
      // rendezvous hook inside the engine.
      return comm_state(pkt.hdr.comm_id).match().incoming(std::move(pkt));
    case fabric::Opcode::kRndvAck:
      return handle_rndv_ack(pkt);
    case fabric::Opcode::kRndvData:
      return handle_rndv_data(pkt);
    case fabric::Opcode::kInvalid:
      break;
  }
  FAIRMPI_CHECK_MSG(false, "invalid opcode on the wire");
  return 0;
}

std::size_t Rank::handle_completion(const fabric::Completion& c) {
  switch (c.kind) {
    case fabric::Completion::Kind::kSendDone: {
      auto* req = static_cast<p2p::Request*>(c.cookie);
      req->complete();
      return 1;
    }
    case fabric::Completion::Kind::kRmaDone: {
      // The cookie is the initiating window's pending-operation counter
      // (see rma/window.cpp). Handled here too because a generic progress
      // call may drain RMA completions before the flush path sees them.
      auto* pending = static_cast<std::atomic<std::uint64_t>*>(c.cookie);
      pending->fetch_sub(1, std::memory_order_release);
      return 1;
    }
    case fabric::Completion::Kind::kNone:
      break;
  }
  FAIRMPI_CHECK_MSG(false, "invalid completion on a CQ");
  return 0;
}

// --- Communicator forwarding ---

int Communicator::rank() const noexcept { return rank_->id(); }

int Communicator::size() const noexcept { return rank_->universe().num_ranks(); }

void Communicator::isend(int dst, int tag, const void* buf, std::size_t n, Request& req) {
  rank_->isend(id_, dst, tag, buf, n, req);
}

void Communicator::irecv(int src, int tag, void* buf, std::size_t capacity, Request& req) {
  rank_->irecv(id_, src, tag, buf, capacity, req);
}

void Communicator::send(int dst, int tag, const void* buf, std::size_t n) {
  rank_->send(id_, dst, tag, buf, n);
}

Status Communicator::recv(int src, int tag, void* buf, std::size_t capacity) {
  return rank_->recv(id_, src, tag, buf, capacity);
}

void Communicator::barrier() {
  // Dissemination barrier: log2(n) rounds of paired send/recv on reserved
  // tags. Reserved tag space starts at kBarrierTagBase; user tags in the
  // examples/benches stay far below it.
  constexpr int kBarrierTagBase = 1 << 30;
  const int n = size();
  const int me = rank();
  if (n == 1) return;
  unsigned char token = 0;
  for (int step = 0, dist = 1; dist < n; ++step, dist <<= 1) {
    const int to = (me + dist) % n;
    const int from = ((me - dist) % n + n) % n;
    Request sreq, rreq;
    unsigned char in = 0;
    rank_->isend(id_, to, kBarrierTagBase + step, &token, 1, sreq);
    rank_->irecv(id_, from, kBarrierTagBase + step, &in, 1, rreq);
    rank_->wait(rreq);
    rank_->wait(sreq);
  }
}

}  // namespace fairmpi
