#include <vector>

#include "fairmpi/common/error.hpp"
#include "fairmpi/common/spinlock.hpp"
#include "fairmpi/common/timing.hpp"
#include "fairmpi/core/universe.hpp"
#include "fairmpi/p2p/sender.hpp"

namespace fairmpi {

using spc::Counter;

namespace {

overload::Limits limits_from(const Config& cfg) noexcept {
  overload::Limits lim;
  lim.unexpected_cap = cfg.unexpected_cap;
  lim.unexpected_policy = cfg.unexpected_policy;
  lim.pool_cap_bytes = cfg.payload_pool_cap_bytes;
  lim.pool_policy = cfg.payload_pool_policy;
  lim.tracker_cap = cfg.tracker_cap;
  lim.tracker_policy = cfg.tracker_policy;
  lim.high_pct = cfg.overload_high_pct;
  lim.low_pct = cfg.overload_low_pct;
  return lim;
}

}  // namespace

Rank::Rank(Universe& uni, int id)
    : uni_(&uni), id_(id), tracer_(uni.config().trace_entries),
      pool_(uni.fabric(), id, uni.config().assignment, uni.config().submit_ring_entries),
      engine_(pool_, *this, uni.config().progress_mode, spc_, uni.config().progress_batch,
              &tracer_),
      comms_(static_cast<std::size_t>(uni.config().max_communicators)),
      governor_(limits_from(uni.config())) {
  for (auto& slot : comms_) slot.store(nullptr, std::memory_order_relaxed);
  const Config& cfg = uni.config();
  if (cfg.trace_enabled) tracer_.enable(true);
  if (cfg.reliable) {
    tracker_ = std::make_unique<p2p::ReliabilityTracker>(cfg.rto_ns, cfg.rto_max_ns,
                                                         cfg.max_retries);
  }
  if (cfg.watchdog_interval_ns != ~std::uint64_t{0}) {
    watchdog_ = std::make_unique<progress::Watchdog>(
        pool_, spc_, tracer_, cfg.watchdog_interval_ns, cfg.watchdog_stall_sweeps,
        cfg.rndv_stall_ns);
    watchdog_->set_stall_probe(this);
    watchdog_->set_error_sink(err_sink_, err_user_, id_);
  }
  if (cfg.ft_enabled) {
    ft::FtParams fp;
    fp.heartbeat_ns = cfg.ft_heartbeat_ns;
    fp.suspect_ns = cfg.ft_suspect_ns;
    fp.strikes = cfg.ft_strikes;
    // Sized from the *config*: Universe::num_ranks() counts constructed
    // ranks, which is still growing while this constructor runs — rank r
    // would get a detector with only r cells and note_alive would index
    // past them on the first inbound packet.
    ft_ = std::make_unique<ft::FailureDetector>(cfg.num_ranks, id, fp, spc_, tracer_);
    // Scratch sized once: failure propagation must not allocate on the
    // progress path (a poll that confirms nothing touches neither vector).
    ft_probes_.reserve(static_cast<std::size_t>(cfg.num_ranks));
    ft_newly_dead_.reserve(static_cast<std::size_t>(cfg.num_ranks));
    if (watchdog_ != nullptr) watchdog_->set_suspect_hint(ft_->suspect_hint());
  }
}

void Rank::set_error_sink(common::ErrorSink sink, void* user) noexcept {
  err_sink_ = sink;
  err_user_ = user;
  if (watchdog_ != nullptr) watchdog_->set_error_sink(sink, user, id_);
}

void Rank::report_error(const common::Error& err) noexcept {
  if (err_sink_ != nullptr) err_sink_(err, err_user_);
}

Rank::~Rank() {
  for (auto& slot : comms_) {
    delete slot.load(std::memory_order_relaxed);
  }
}

void Rank::install_comm(CommId id, std::vector<int> members) {
  FAIRMPI_CHECK(id < comms_.size());
  FAIRMPI_CHECK_MSG(comms_[id].load(std::memory_order_relaxed) == nullptr,
                    "communicator id already installed");
  auto* state = new p2p::CommState(id, uni_->num_ranks(),
                                   uni_->config().allow_overtaking, spc_,
                                   uni_->config().reliable, std::move(members));
  state->match().set_rendezvous_hook(this);
  state->match().set_overload(&governor_, &tracer_);
  comms_[id].store(state, std::memory_order_release);
}

p2p::CommState& Rank::comm_state(CommId id) {
  FAIRMPI_CHECK_MSG(id < comms_.size(), "communicator id out of range");
  p2p::CommState* state = comms_[id].load(std::memory_order_acquire);
  FAIRMPI_CHECK_MSG(state != nullptr, "communicator not created");
  return *state;
}

void Rank::isend(CommId comm, int dst, int tag, const void* buf, std::size_t n,
                 Request& req, std::uint64_t deadline_ns) {
  FAIRMPI_CHECK_MSG(dst >= 0 && dst < uni_->num_ranks(), "invalid destination rank");
  p2p::CommState& cs = comm_state(comm);
  if (cs.revoked()) {
    req.init_send();
    if (req.fail(common::ErrorCode::kCommRevoked)) spc_.add(Counter::kFtRevokedOps);
    report_error(common::Error{common::ErrorCode::kCommRevoked, id_, dst, comm});
    return;
  }
  if (peer_failed(dst)) {
    // Confirmed-dead destination: fail fast — uniformly for eager and
    // rendezvous — instead of feeding a permanently-down link.
    req.init_send();
    if (req.fail(common::ErrorCode::kPeerFailed)) spc_.add(Counter::kFtPeerFailedOps);
    report_error(common::Error{common::ErrorCode::kPeerFailed, id_, dst, 0});
    return;
  }
  if (n > uni_->config().eager_limit) {
    FAIRMPI_CHECK_MSG(tag >= 0, "negative tags are reserved (wildcards/internal)");
    tracer_.record(trace::Event::kRndvRts, static_cast<std::uint32_t>(dst),
                   static_cast<std::uint32_t>(n));
    rndv_isend(comm, dst, tag, buf, n, req, deadline_ns);
    return;
  }
  tracer_.record(trace::Event::kSend, static_cast<std::uint32_t>(dst),
                 static_cast<std::uint32_t>(tag));
  p2p::SendPolicy policy{
      tracker_.get(), uni_->config().send_retry_limit,
      uni_->config().reliability_window,
      [](void* user) { return static_cast<Rank*>(user)->progress(); }, this};
  if (ft_ != nullptr) {
    // Mid-wait escape hatch: a send blocked on this peer's window/ring when
    // the detector confirms its death fails typed instead of burning the
    // whole retry budget into a severed link.
    policy.peer_failed = [](void* user, int peer) {
      return static_cast<Rank*>(user)->peer_failed(peer);
    };
    policy.peer_failed_user = this;
  }
  policy.governor = &governor_;
  policy.deadline_ns = deadline_ns;
  // Outcome comes back by value: completing `req` hands it back to the
  // waiting owner, which may destroy it before we could read failed().
  const common::ErrorCode ec = p2p::eager_send(cs, pool_, engine_, spc_,
                                               id_, dst, tag, buf, n, req, policy);
  if (ec != common::ErrorCode::kOk) {
    report_error(common::Error{ec, id_, dst, 0});
  }
}

void Rank::irecv(CommId comm, int src, int tag, void* buf, std::size_t capacity,
                 Request& req, std::uint64_t deadline_ns) {
  FAIRMPI_CHECK_MSG(src == kAnySource || (src >= 0 && src < uni_->num_ranks()),
                    "invalid source rank");
  FAIRMPI_CHECK_MSG(tag == kAnyTag || tag >= 0, "invalid tag filter");
  req.init_recv(buf, capacity, src, tag, deadline_ns);
  tracer_.record(trace::Event::kRecvPost, static_cast<std::uint32_t>(src + 1),
                 static_cast<std::uint32_t>(tag));
  // Arm the rank-level sweep gate before the request becomes visible to the
  // engine: overload_poll must not be able to observe a posted deadline the
  // gate does not yet cover.
  if (deadline_ns != 0) arm_deadline(deadline_ns);
  comm_state(comm).match().post(&req);
}

void Rank::send(CommId comm, int dst, int tag, const void* buf, std::size_t n) {
  Request req;
  isend(comm, dst, tag, buf, n, req);
  wait(req);  // eager sends complete at injection; wait() is a formality
}

Status Rank::recv(CommId comm, int src, int tag, void* buf, std::size_t capacity) {
  Request req;
  irecv(comm, src, tag, buf, capacity, req);
  wait(req);
  return req.status();
}

// The wait loops below use SpinWait, not bare cpu_relax(): completion
// depends on a peer thread running (to inject, progress, or ack), so on an
// oversubscribed host a pure spinner would burn its whole scheduler quantum
// while that peer sits runnable — quantizing throughput at one window per
// quantum (the Multirate.SinglePairDeliversAtPlausibleRate failure mode on
// the 1-core CI box).

void Rank::wait(Request& req) {
  SpinWait waiter;
  while (!req.done()) {
    if (progress() == 0) waiter.pause(); else waiter.reset();
  }
}

bool Rank::test(Request& req) {
  if (req.done()) return true;
  progress();
  return req.done();
}

void Rank::wait_all(Request* const* reqs, std::size_t n) {
  SpinWait waiter;
  for (;;) {
    bool all_done = true;
    for (std::size_t i = 0; i < n; ++i) {
      if (!reqs[i]->done()) {
        all_done = false;
        break;
      }
    }
    if (all_done) return;
    if (progress() == 0) waiter.pause(); else waiter.reset();
  }
}

std::size_t Rank::wait_any(Request* const* reqs, std::size_t n) {
  FAIRMPI_CHECK_MSG(n > 0, "wait_any needs at least one request");
  SpinWait waiter;
  for (;;) {
    for (std::size_t i = 0; i < n; ++i) {
      if (reqs[i]->done()) return i;
    }
    if (progress() == 0) waiter.pause(); else waiter.reset();
  }
}

bool Rank::iprobe(CommId comm, int src, int tag, Status* status) {
  progress();
  return comm_state(comm).match().probe(src, tag, status);
}

Status Rank::probe(CommId comm, int src, int tag) {
  Status status;
  SpinWait waiter;
  while (!comm_state(comm).match().probe(src, tag, &status)) {
    if (progress() == 0) waiter.pause(); else waiter.reset();
  }
  return status;
}

std::size_t Rank::progress() {
  // Deferred rendezvous protocol work first (runs with no engine lock
  // held — see p2p/rendezvous.hpp), then the progress engine proper.
  drain_control();
  if (tracker_ != nullptr || watchdog_ != nullptr || ft_ != nullptr) {
    const std::uint64_t now = now_ns();
    // Sweep every rank's tracker, not just ours: retransmission models the
    // NIC's autonomous recovery, so it must run even when the packet's
    // owner has stopped calling progress() (see Universe::sweep_reliability).
    if (tracker_ != nullptr) uni_->sweep_reliability(now);
    if (watchdog_ != nullptr) watchdog_->poll(now);
    if (ft_ != nullptr) ft_poll(now);
  }
  // §5h sweeps are pay-for-what-you-use: a run with no caps and no armed
  // deadlines takes this branch on two relaxed loads and skips the call.
  if (governor_.enabled() ||
      earliest_deadline_.load(std::memory_order_relaxed) != ~std::uint64_t{0}) {
    overload_poll(now_ns());
  }
  // kQueue backpressure (RX trickle): while any peer is latched paused the
  // governor admits only 1-in-kRxTrickle receive rounds, throttling the
  // flood without starving acks/heartbeats entirely (ft liveness).
  const std::size_t completions = governor_.defer_rx() ? 0 : engine_.progress();
  // Acks enqueued while the engine dispatched packets leave immediately —
  // waiting for the next drain_control would add an rto of latency per hop
  // under load.
  if (tracker_ != nullptr) flush_acks();
  if (completions != 0) {
    tracer_.record(trace::Event::kProgress, static_cast<std::uint32_t>(completions));
  }
  return completions;
}

bool Rank::inject_raw(int dst, fabric::Packet&& pkt) {
  const int k = pool_.id_for_thread();
  cri::CommResourceInstance& inst = pool_.instance(k);
  // Same lock-free submission path as eager_send (DESIGN.md §5f): control
  // traffic (acks, retransmits) rides the ring when the instance is busy
  // instead of blocking on the lock.
  return inst.inject(dst, pkt, spc_);
}

void Rank::enqueue_packet_ack(const fabric::WireHeader& hdr) {
  LockGuard guard(control_lock_);
  acks_.push_back(p2p::ControlMsg{p2p::ControlMsg::Kind::kSendPacketAck,
                                  static_cast<int>(hdr.src_rank), hdr.comm_id,
                                  /*local_cookie=*/0, /*remote_cookie=*/hdr.imm,
                                  hdr.seq, static_cast<std::uint16_t>(hdr.opcode)});
}

void Rank::enqueue_packet_nack(const fabric::WireHeader& hdr) {
  LockGuard guard(control_lock_);
  acks_.push_back(p2p::ControlMsg{p2p::ControlMsg::Kind::kSendPacketNack,
                                  static_cast<int>(hdr.src_rank), hdr.comm_id,
                                  /*local_cookie=*/0, /*remote_cookie=*/hdr.imm,
                                  hdr.seq, static_cast<std::uint16_t>(hdr.opcode)});
}

void Rank::flush_acks() {
  for (;;) {
    p2p::ControlMsg msg;
    {
      LockGuard guard(control_lock_);
      if (acks_.empty()) return;
      msg = acks_.front();
      acks_.pop_front();
    }
    // Reliability ack: echo the received packet's identifying key so the
    // sender can retire its tracked clone. Unreliable by design — if this
    // ack is lost the peer retransmits and we re-ack. A NACK (overload
    // shed, §5h) rides the same queue and carries the same key; only the
    // opcode differs, so the sender can fail the op typed instead of
    // retiring it.
    const bool is_nack = msg.kind == p2p::ControlMsg::Kind::kSendPacketNack;
    fabric::Packet ack;
    ack.hdr.opcode = is_nack ? fabric::Opcode::kNack : fabric::Opcode::kAck;
    ack.hdr.src_rank = static_cast<std::uint16_t>(id_);
    ack.hdr.comm_id = msg.comm;
    ack.hdr.tag = static_cast<std::int32_t>(msg.ack_opcode);
    ack.hdr.seq = msg.seq;
    ack.hdr.imm = msg.remote_cookie;
    if (!inject_raw(msg.peer, std::move(ack))) {
      // Peer's ring is full: requeue and stop — pushing harder only spins.
      LockGuard guard(control_lock_);
      acks_.push_front(msg);
      return;
    }
    if (!is_nack) {
      spc_.add(Counter::kAcksSent);
      tracer_.record(trace::Event::kAckSent, static_cast<std::uint32_t>(msg.peer),
                     msg.seq);
    }
  }
}

void Rank::reliability_sweep(std::uint64_t now) {
  if (sweeping_.exchange(true, std::memory_order_acquire)) return;
  // lint: allow(hotpath-alloc) only reached when packets expired (lossy run)
  std::vector<p2p::ReliabilityTracker::Resend> resends;
  std::vector<p2p::ReliabilityTracker::Failure> failures;
  tracker_->sweep(now, resends, failures);
  for (auto& r : resends) {
    const p2p::PacketKey key = p2p::key_of(r.dst, r.pkt.hdr);
    // Single attempt: if the ring is full the tracker still holds the
    // entry, so a later sweep simply tries again — no nested retry loop.
    // Only a clone that actually reached the wire is charged against the
    // retry budget (confirm applies the backoff); a ring-full failure is
    // the sender's own congestion, not evidence of loss.
    if (inject_raw(r.dst, std::move(r.pkt))) {
      spc_.add(Counter::kRetransmits);
      tracer_.record(trace::Event::kRetransmit, static_cast<std::uint32_t>(r.dst),
                     key.seq);
      tracker_->confirm_retransmit(key, now);
    }
  }
  for (const auto& f : failures) {
    // Typed propagation: entries purged because the peer was confirmed dead
    // carry kPeerFailed (counted separately) — they are not retry failures.
    spc_.add(f.code == common::ErrorCode::kPeerFailed ? Counter::kFtPeerFailedOps
                                                      : Counter::kReliabilityErrors);
    report_error(common::Error{f.code, id_, static_cast<int>(f.key.peer), f.key.seq});
  }
  sweeping_.store(false, std::memory_order_release);
}

// --- ft layer (DESIGN.md §5g) ---

void Rank::ft_poll(std::uint64_t now) {
  // One sweeper at a time: the scratch vectors below are single-writer by
  // this guard, so the steady-state poll allocates nothing.
  if (ft_polling_.exchange(true, std::memory_order_acquire)) return;
  ft_probes_.clear();
  ft_newly_dead_.clear();
  if (ft_->poll(now, ft_probes_, ft_newly_dead_)) {
    // Classification done under the detector lock; everything below runs
    // with NO detector lock held (heartbeat injection takes CRI locks,
    // propagation takes match/reliability/rndv locks — all ranked away
    // from kFtDetector in both directions; see lockcheck.hpp).
    for (const int dst : ft_probes_) send_heartbeat(dst);
    for (const int peer : ft_newly_dead_) on_peer_dead(peer);
  }
  ft_polling_.store(false, std::memory_order_release);
}

void Rank::send_heartbeat(int dst) {
  fabric::Packet hb;
  hb.hdr.opcode = fabric::Opcode::kHeartbeat;
  hb.hdr.src_rank = static_cast<std::uint16_t>(id_);
  hb.hdr.comm_id = kWorldComm;
  // Single attempt, never tracked: a heartbeat lost to backpressure or the
  // fault model is simply re-sent on the next idle round.
  if (inject_raw(dst, std::move(hb))) {
    spc_.add(Counter::kFtHeartbeatsSent);
  }
}

void Rank::on_peer_dead(int peer) {
  // 1. Tracked sends toward the peer fail typed (not retry-burned); the
  //    tracker also latches the peer so entries tracked by racing senders
  //    are caught by the next sweep.
  if (tracker_ != nullptr) {
    // lint: allow(hotpath-alloc) peer death is a cold, once-per-rank event
    std::vector<p2p::ReliabilityTracker::Failure> failures;
    tracker_->fail_peer(peer, failures);
    for (const auto& f : failures) {
      spc_.add(Counter::kFtPeerFailedOps);
      report_error(common::Error{common::ErrorCode::kPeerFailed, id_, peer, f.key.seq});
    }
  }
  // 2. Posted receives filtered on the peer fail on every installed
  //    communicator (and future ones fail at post; match_engine.cpp).
  for (auto& slot : comms_) {
    p2p::CommState* cs = slot.load(std::memory_order_acquire);
    if (cs != nullptr) {
      (void)cs->match().fail_source(peer);
    }
  }
  // 3. In-flight rendezvous transfers to/from the peer fail.
  fail_rendezvous_peer(peer);
  // 4. One summary error so a sink-only consumer hears about the death
  //    even with zero outstanding operations.
  report_error(common::Error{common::ErrorCode::kPeerFailed, id_, peer, 0});
}

void Rank::fail_rendezvous_peer(int peer) {
  // lint: allow(hotpath-alloc) peer death is a cold, once-per-rank event
  std::vector<p2p::Request*> victims;
  // lint: allow(hotpath-alloc) peer death is a cold, once-per-rank event
  std::vector<std::unique_ptr<p2p::RndvSendState>> dead_sends;
  {
    LockGuard guard(rndv_lock_);
    for (auto it = rndv_sends_.begin(); it != rndv_sends_.end();) {
      if (it->second->dst == peer) {
        // Claim by extraction, exactly like the kSendData drain — whoever
        // extracts owns the state, so no deliverer can race us here.
        victims.push_back(it->second->request);
        dead_sends.push_back(std::move(it->second));
        it = rndv_sends_.erase(it);
      } else {
        ++it;
      }
    }
    for (auto& [cookie, st] : rndv_recvs_) {
      if (st->status.source == peer && !st->failed) {
        // Receives are tombstoned, NOT erased: a progress thread may hold
        // the state pointer from before the death was confirmed (see
        // rendezvous.hpp). handle_rndv_data checks `failed` under this
        // lock, so no new fragment touches the buffer from here on.
        st->failed = true;
        victims.push_back(st->request);
      }
    }
  }
  for (p2p::Request* req : victims) {
    if (req->fail(common::ErrorCode::kPeerFailed)) {
      spc_.add(Counter::kFtPeerFailedOps);
    }
  }
}

// --- overload control & deadlines (DESIGN.md §5h) ---

void Rank::handle_nack(const fabric::WireHeader& hdr) {
  const p2p::PacketKey key = p2p::key_of_ack(hdr);
  p2p::ReliabilityTracker::Failure f;
  if (!tracker_->nack(key, &f)) return;  // duplicate NACK, or an ack raced in
  report_error(common::Error{common::ErrorCode::kReceiverOverloaded, id_,
                             static_cast<int>(key.peer), key.seq});
  if (key.opcode != static_cast<std::uint16_t>(fabric::Opcode::kRndvRts)) return;
  // The receiver shed our RTS at admission: no RndvAck will ever arrive,
  // so the NACK is this transfer's only possible terminal event — claim
  // the send state by extraction (same ownership rule as the kSendData
  // drain) and fail the request typed.
  p2p::Request* victim = nullptr;
  std::unique_ptr<p2p::RndvSendState> dead;
  {
    LockGuard guard(rndv_lock_);
    for (auto it = rndv_sends_.begin(); it != rndv_sends_.end(); ++it) {
      if (it->second->dst == static_cast<int>(key.peer) &&
          it->second->comm == key.comm && it->second->rts_seq == key.seq &&
          !it->second->failed) {
        victim = it->second->request;
        dead = std::move(it->second);
        rndv_sends_.erase(it);
        break;
      }
    }
  }
  if (victim != nullptr) {
    (void)victim->fail(common::ErrorCode::kReceiverOverloaded);
  }
}

void Rank::arm_deadline(std::uint64_t deadline_ns) noexcept {
  std::uint64_t cur = earliest_deadline_.load(std::memory_order_relaxed);
  while (deadline_ns < cur &&
         !earliest_deadline_.compare_exchange_weak(cur, deadline_ns,
                                                   std::memory_order_relaxed)) {
  }
}

void Rank::expire_rendezvous_deadlines(std::uint64_t now, std::uint64_t* next) {
  struct Victim {
    p2p::Request* req;
    int peer;
  };
  // lint: allow(hotpath-alloc) only reached when a deadline is armed
  std::vector<Victim> victims;
  {
    LockGuard guard(rndv_lock_);
    for (auto& [cookie, st] : rndv_sends_) {
      if (st->failed || st->request == nullptr) continue;
      const std::uint64_t dl = st->request->deadline();
      if (dl == 0) continue;
      if (dl <= now) {
        // Tombstone, not extraction: the receiver's ack may still arrive,
        // and the kSendData drain must find the state to discard it
        // instead of streaming from a buffer the owner already reclaimed.
        st->failed = true;
        victims.push_back(Victim{st->request, st->dst});
      } else if (dl < *next) {
        *next = dl;
      }
    }
    for (auto& [cookie, st] : rndv_recvs_) {
      if (st->failed || st->request == nullptr) continue;
      const std::uint64_t dl = st->request->deadline();
      if (dl == 0) continue;
      if (dl <= now) {
        st->failed = true;  // same tombstone rule as the ft purge
        victims.push_back(Victim{st->request, st->status.source});
      } else if (dl < *next) {
        *next = dl;
      }
    }
  }
  for (const Victim& v : victims) {
    if (v.req->fail(common::ErrorCode::kDeadlineExceeded)) {
      spc_.add(Counter::kDeadlineExceededOps);
      tracer_.record(trace::Event::kDeadline,
                     static_cast<std::uint32_t>(v.peer + 1), 0);
      report_error(common::Error{common::ErrorCode::kDeadlineExceeded, id_,
                                 v.peer, 0});
    }
  }
}

void Rank::overload_poll(std::uint64_t now) {
  // Deadline expiry sweep, gated on the rank-level CAS-min gate.
  const std::uint64_t observed = earliest_deadline_.load(std::memory_order_relaxed);
  if (observed != ~std::uint64_t{0} && now >= observed) {
    std::uint64_t next = ~std::uint64_t{0};
    for (auto& slot : comms_) {
      p2p::CommState* cs = slot.load(std::memory_order_acquire);
      if (cs == nullptr) continue;
      cs->match().expire_deadlines(now);
      const std::uint64_t d = cs->match().next_deadline_relaxed();
      if (d < next) next = d;
    }
    expire_rendezvous_deadlines(now, &next);
    // Raise the gate only past the value observed before the sweep: a
    // concurrent arm_deadline that lowered it mid-sweep wins the CAS, the
    // gate stays conservatively low, and the next poll re-sweeps — an arm
    // is never lost, at worst one sweep runs early.
    std::uint64_t expected = observed;
    (void)earliest_deadline_.compare_exchange_strong(expected, next,
                                                     std::memory_order_relaxed);
  }
  // Degradation ladder, sampled 1-in-64 progress visits — resource sums
  // walk every communicator, too heavy for every visit.
  if (!governor_.enabled()) return;
  if ((overload_visits_.fetch_add(1, std::memory_order_relaxed) & 63) != 0) return;
  std::uint64_t unexpected = 0;
  for (auto& slot : comms_) {
    p2p::CommState* cs = slot.load(std::memory_order_acquire);
    if (cs != nullptr) unexpected += cs->match().unexpected_count_relaxed();
  }
  const fabric::PayloadPoolStats pool = fabric::payload_pool_stats();
  const std::uint64_t in_flight =
      tracker_ != nullptr ? tracker_->in_flight() : 0;
  const overload::Governor::Transition t =
      governor_.sample(unexpected, pool.in_use_bytes, in_flight);
  if (t.changed) {
    spc_.add(Counter::kOverloadLevelChanges);
    tracer_.record(trace::Event::kOverloadLevel, static_cast<std::uint32_t>(t.to),
                   static_cast<std::uint32_t>(t.from));
  }
  spc_.update_max(Counter::kOverloadPoolPeak, pool.high_water_bytes);
}

bool Rank::cancel_request(p2p::Request* req) {
  // Rendezvous cancel: tombstone whichever registry holds the request
  // (ack/data may still arrive; the drains discard against `failed`), then
  // settle outside the lock.
  int peer = -1;
  {
    LockGuard guard(rndv_lock_);
    for (auto& [cookie, st] : rndv_sends_) {
      if (st->request == req && !st->failed) {
        st->failed = true;
        peer = st->dst;
        break;
      }
    }
    if (peer < 0) {
      for (auto& [cookie, st] : rndv_recvs_) {
        if (st->request == req && !st->failed) {
          st->failed = true;
          peer = st->status.source;
          break;
        }
      }
    }
  }
  if (peer < 0) return false;  // completed/failed concurrently, or not ours
  if (!req->fail(common::ErrorCode::kCancelled)) return false;
  spc_.add(Counter::kCancelledOps);
  tracer_.record(trace::Event::kCancel, static_cast<std::uint32_t>(peer + 1), 0);
  return true;
}

std::size_t Rank::scan_stalled(std::uint64_t now, std::uint64_t horizon) {
  (void)now;
  struct Stalled {
    int peer;
    std::uint64_t cookie;
  };
  // lint: allow(hotpath-alloc) watchdog escalation path, not the hot path
  std::vector<Stalled> flagged;
  {
    LockGuard guard(rndv_lock_);
    for (auto& [cookie, st] : rndv_sends_) {
      if (!st->stall_flagged && st->born_ns != 0 && st->born_ns < horizon) {
        st->stall_flagged = true;
        flagged.push_back(Stalled{st->dst, cookie});
      }
    }
    for (auto& [cookie, st] : rndv_recvs_) {
      if (!st->stall_flagged && st->born_ns != 0 && st->born_ns < horizon) {
        st->stall_flagged = true;
        flagged.push_back(Stalled{st->status.source, cookie});
      }
    }
  }
  for (const auto& s : flagged) {
    spc_.add(Counter::kWatchdogStalls);
    tracer_.record(trace::Event::kWatchdogStall, static_cast<std::uint32_t>(s.peer),
                   static_cast<std::uint32_t>(s.cookie));
    report_error(common::Error{common::ErrorCode::kStalledRendezvous, id_, s.peer,
                               s.cookie});
  }
  return flagged.size();
}

std::size_t Rank::handle_packet(fabric::Packet&& pkt) {
  // Structural validation before anything dereferences header fields: a
  // corrupted opcode or rank id is counted and dropped, never dispatched.
  if (!fabric::validate_structure(pkt, uni_->num_ranks())) {
    spc_.add(Counter::kHeaderDrops);
    return 0;
  }
  if (tracker_ != nullptr && !fabric::verify_checksum(pkt)) {
    spc_.add(Counter::kCsumDrops);
    tracer_.record(trace::Event::kCsumDrop, pkt.hdr.src_rank, pkt.hdr.seq);
    return 0;
  }
  // Liveness piggybacking: every validated inbound packet — any opcode —
  // refreshes its source's epoch, so a peer with ANY traffic toward us
  // never needs explicit heartbeats.
  if (ft_ != nullptr) {
    ft_->note_alive(static_cast<int>(pkt.hdr.src_rank), now_ns());
  }
  if (pkt.hdr.opcode == fabric::Opcode::kHeartbeat) {
    // Consumed before the ack path on purpose: heartbeats are pure liveness
    // evidence — never acked, never tracked; a lost one is recovered by the
    // next probe round.
    spc_.add(Counter::kFtHeartbeatsReceived);
    return 0;
  }
  if (tracker_ != nullptr) {
    if (pkt.hdr.opcode == fabric::Opcode::kAck) {
      spc_.add(Counter::kAcksReceived);
      tracer_.record(trace::Event::kAckRecv, pkt.hdr.src_rank, pkt.hdr.seq);
      (void)tracker_->ack(p2p::key_of_ack(pkt.hdr));
      return 0;
    }
    if (pkt.hdr.opcode == fabric::Opcode::kNack) {
      // Receiver shed the packet at admission (§5h): fail the tracked op
      // typed kReceiverOverloaded instead of retrying into the overload.
      spc_.add(Counter::kOverloadNacksReceived);
      handle_nack(pkt.hdr);
      return 0;
    }
    // Ack every structurally valid packet — duplicates included, because
    // the duplicate usually means our previous ack was the casualty.
    // Matchable envelopes (kEager/kRndvRts) are the exception: their
    // ack-or-NACK decision belongs to the admission verdict below, so
    // acking here would silently retire a packet the engine then sheds.
    if (pkt.hdr.opcode != fabric::Opcode::kEager &&
        pkt.hdr.opcode != fabric::Opcode::kRndvRts) {
      enqueue_packet_ack(pkt.hdr);
    }
  } else if (pkt.hdr.opcode == fabric::Opcode::kAck ||
             pkt.hdr.opcode == fabric::Opcode::kNack) {
    // Reliability off: there is no tracker to retire the (n)ack against.
    spc_.add(Counter::kHeaderDrops);
    return 0;
  }
  switch (pkt.hdr.opcode) {
    case fabric::Opcode::kEager:
    case fabric::Opcode::kRndvRts: {
      // Both carry a matching envelope; RTS delivery diverts to the
      // rendezvous hook inside the engine. The header outlives the move so
      // the admission verdict can be answered on the wire afterwards.
      const fabric::WireHeader hdr = pkt.hdr;
      fairmpi::match::Admission adm = fairmpi::match::Admission::kAdmitted;
      const std::size_t delivered =
          comm_state(hdr.comm_id).match().incoming(std::move(pkt), &adm);
      if (tracker_ != nullptr) {
        if (adm == fairmpi::match::Admission::kShed ||
            adm == fairmpi::match::Admission::kShedDuplicate) {
          if (adm == fairmpi::match::Admission::kShed) {
            spc_.add(Counter::kOverloadNacksSent);
          }
          enqueue_packet_nack(hdr);
        } else if (adm != fairmpi::match::Admission::kDeferred) {
          enqueue_packet_ack(hdr);
        }
        // kDeferred: answer nothing — the sender's retransmit clock is the
        // backpressure (§5h kQueue).
      }
      return delivered;
    }
    case fabric::Opcode::kRndvAck:
      return handle_rndv_ack(pkt);
    case fabric::Opcode::kRndvData:
      return handle_rndv_data(pkt);
    case fabric::Opcode::kAck:
    case fabric::Opcode::kNack:
    case fabric::Opcode::kHeartbeat:
    case fabric::Opcode::kInvalid:
      break;  // all consumed above; unreachable
  }
  FAIRMPI_CHECK_MSG(false, "invalid opcode on the wire");
  return 0;
}

std::size_t Rank::handle_completion(const fabric::Completion& c) {
  switch (c.kind) {
    case fabric::Completion::Kind::kSendDone: {
      auto* req = static_cast<p2p::Request*>(c.cookie);
      req->complete();
      return 1;
    }
    case fabric::Completion::Kind::kRmaDone: {
      // The cookie is the initiating window's pending-operation counter
      // (see rma/window.cpp). Handled here too because a generic progress
      // call may drain RMA completions before the flush path sees them.
      auto* pending = static_cast<std::atomic<std::uint64_t>*>(c.cookie);
      pending->fetch_sub(1, std::memory_order_release);
      return 1;
    }
    case fabric::Completion::Kind::kNone:
      break;
  }
  FAIRMPI_CHECK_MSG(false, "invalid completion on a CQ");
  return 0;
}

// --- Communicator forwarding (group-local <-> global translation here) ---

int Communicator::global_of(int local) const noexcept {
  const p2p::CommState& cs = rank_->comm_state(id_);
  return cs.has_group() ? cs.to_global(local) : local;
}

int Communicator::rank() const noexcept {
  const p2p::CommState& cs = rank_->comm_state(id_);
  return cs.has_group() ? cs.to_local(rank_->id()) : rank_->id();
}

int Communicator::size() const noexcept {
  const p2p::CommState& cs = rank_->comm_state(id_);
  return cs.has_group() ? cs.group_size() : rank_->universe().num_ranks();
}

bool Communicator::revoked() const noexcept {
  return rank_->comm_state(id_).revoked();
}

// Reserved-tag guard (bugfix, DESIGN.md §5i): tags at or above
// p2p::kReservedTagBase carry collective lanes and barrier rounds. A user
// op posted there through the public Communicator API would silently match
// against (or steal) collective traffic — fail it typed at post time
// instead. Engine internals (coll, barrier) bypass via the Rank-level ops.
bool Communicator::reject_reserved_tag(Request& req, int tag, int peer,
                                       bool is_send) const {
  if (tag == kAnyTag || tag < p2p::kReservedTagBase) return false;
  if (is_send) {
    req.init_send();
  } else {
    req.init_recv(nullptr, 0, peer, tag, 0);
  }
  if (req.fail(common::ErrorCode::kReservedTag)) {
    rank_->counters().add(Counter::kReservedTagRejects);
  }
  rank_->report_error(common::Error{common::ErrorCode::kReservedTag, rank_->id(), peer,
                                    static_cast<std::uint64_t>(tag)});
  return true;
}

void Communicator::isend(int dst, int tag, const void* buf, std::size_t n, Request& req,
                         std::uint64_t deadline_ns) {
  if (reject_reserved_tag(req, tag, dst, /*is_send=*/true)) return;
  rank_->isend(id_, global_of(dst), tag, buf, n, req, deadline_ns);
}

void Communicator::irecv(int src, int tag, void* buf, std::size_t capacity, Request& req,
                         std::uint64_t deadline_ns) {
  if (reject_reserved_tag(req, tag, src, /*is_send=*/false)) return;
  rank_->irecv(id_, src == kAnySource ? src : global_of(src), tag, buf, capacity, req,
               deadline_ns);
}

void Communicator::send(int dst, int tag, const void* buf, std::size_t n) {
  Request req;
  isend(dst, tag, buf, n, req);  // through the reserved-tag guard
  rank_->wait(req);
}

Status Communicator::recv(int src, int tag, void* buf, std::size_t capacity) {
  Status status;
  (void)recv_checked(src, tag, buf, capacity, &status);
  return status;
}

// Checked ops honour Config::op_deadline_ns (§5h): 0 keeps the historical
// wait-forever semantics; nonzero turns every checked op into a bounded
// call that fails typed kDeadlineExceeded instead of hanging.
static std::uint64_t checked_deadline(Rank& rank) {
  const std::uint64_t rel = rank.universe().config().op_deadline_ns;
  return rel == 0 ? 0 : now_ns() + rel;
}

common::ErrorCode Communicator::send_checked(int dst, int tag, const void* buf,
                                             std::size_t n) {
  Request req;
  isend(dst, tag, buf, n, req, checked_deadline(*rank_));
  rank_->wait(req);
  return req.error();
}

common::ErrorCode Communicator::recv_checked(int src, int tag, void* buf,
                                             std::size_t capacity, Status* status) {
  Request req;
  irecv(src, tag, buf, capacity, req, checked_deadline(*rank_));
  rank_->wait(req);
  if (status != nullptr) {
    *status = req.status();
    // Status carries the wire (global) source; hand back the group-local id.
    const p2p::CommState& cs = rank_->comm_state(id_);
    if (cs.has_group() && status->source != kAnySource) {
      status->source = cs.to_local(status->source);
    }
  }
  return req.error();
}

void Communicator::barrier() { (void)barrier_checked(); }

common::ErrorCode Communicator::barrier_checked() {
  // Dissemination barrier: log2(n) rounds of paired send/recv on reserved
  // tags. Reserved tag space starts at kBarrierTagBase; user tags in the
  // examples/benches stay far below it. Rank arithmetic is group-local;
  // translation happens at the isend/irecv boundary below.
  constexpr int kBarrierTagBase = 1 << 30;
  const int n = size();
  const int me = rank();
  if (n == 1) return common::ErrorCode::kOk;
  // One deadline for the whole barrier, computed at entry: the rounds are
  // serial, so per-round deadlines would let a barrier overrun by log2(n)×.
  const std::uint64_t deadline = checked_deadline(*rank_);
  unsigned char token = 0;
  for (int step = 0, dist = 1; dist < n; ++step, dist <<= 1) {
    if (revoked()) return common::ErrorCode::kCommRevoked;
    const int to = (me + dist) % n;
    const int from = ((me - dist) % n + n) % n;
    Request sreq, rreq;
    unsigned char in = 0;
    rank_->isend(id_, global_of(to), kBarrierTagBase + step, &token, 1, sreq, deadline);
    rank_->irecv(id_, global_of(from), kBarrierTagBase + step, &in, 1, rreq, deadline);
    rank_->wait(rreq);
    rank_->wait(sreq);
    // A dead partner (kPeerFailed) or a concurrent revoke fails the round's
    // requests typed — surface the first one instead of hanging (§5g).
    if (rreq.failed()) return rreq.error();
    if (sreq.failed()) return sreq.error();
  }
  return common::ErrorCode::kOk;
}

}  // namespace fairmpi
