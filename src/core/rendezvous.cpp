// Rendezvous protocol implementation (Rank methods). Protocol overview and
// lock discipline in include/fairmpi/p2p/rendezvous.hpp.
#include <cstring>
#include "fairmpi/common/error.hpp"
#include "fairmpi/common/timing.hpp"
#include "fairmpi/core/universe.hpp"

namespace fairmpi {

using fabric::Opcode;
using fabric::Packet;
using p2p::ControlMsg;
using p2p::RndvRecvState;
using p2p::RndvSendState;
using p2p::RtsBody;
using spc::Counter;

void Rank::rndv_isend(CommId comm, int dst, int tag, const void* buf, std::size_t n,
                      Request& req, std::uint64_t deadline_ns) {
  req.init_send(deadline_ns);
  // Cancel/deadline route through the rendezvous registry (tombstone the
  // state, then settle — Rank::cancel_request). Installed before the state
  // is registered: a cancel racing this call may observe neither and
  // report false, which is the documented best-effort window.
  req.set_cancel_scope(this);

  auto state = std::make_unique<RndvSendState>();
  state->data = static_cast<const std::byte*>(buf);
  state->total = n;
  state->dst = dst;
  state->comm = comm;
  state->request = &req;
  state->born_ns = now_ns();
  // Seq is ticketed before registration so the state records its RTS key:
  // a receiver-side shed NACKs {kRndvRts, dst, comm, rts_seq} and
  // handle_nack must find this transfer by exactly that key.
  state->rts_seq = comm_state(comm).next_seq(dst);
  const std::uint32_t rts_seq = state->rts_seq;

  std::uint64_t cookie = 0;
  {
    LockGuard guard(rndv_lock_);
    cookie = next_cookie_++;
    rndv_sends_.emplace(cookie, std::move(state));
  }
  if (deadline_ns != 0) arm_deadline(deadline_ns);

  // The RTS is a sequence-numbered envelope like any eager message — it is
  // what the receiver matches, preserving the non-overtaking guarantee for
  // large messages too.
  Packet rts;
  rts.hdr.opcode = Opcode::kRndvRts;
  rts.hdr.src_rank = static_cast<std::uint16_t>(id_);
  rts.hdr.comm_id = comm;
  rts.hdr.tag = tag;
  rts.hdr.seq = rts_seq;
  const RtsBody body{n, cookie};
  rts.set_payload(&body, sizeof body);
  inject_control(dst, std::move(rts));
}

void Rank::on_rts_matched(p2p::Request* req, const Packet& rts) {
  // Matching lock is held: record the transfer and defer the ack.
  const RtsBody body = p2p::read_rts_body(rts);

  auto state = std::make_unique<RndvRecvState>();
  state->request = req;
  state->buffer = static_cast<std::byte*>(req->buffer());
  state->capacity = req->capacity();
  state->total = body.total;
  state->remaining.store(body.total, std::memory_order_relaxed);
  state->status.source = static_cast<int>(rts.hdr.src_rank);
  state->status.tag = rts.hdr.tag;
  state->status.size = body.total;
  state->status.truncated = body.total > req->capacity();
  state->born_ns = now_ns();
  if (uni_->config().reliable) {
    // Fragment dedup bitmap: one bit per expected RndvData fragment.
    const std::uint64_t frag = uni_->config().rndv_frag_bytes;
    const std::uint64_t nfrags = body.total == 0 ? 0 : (body.total + frag - 1) / frag;
    state->frag_words = static_cast<std::size_t>((nfrags + 63) / 64);
    if (state->frag_words != 0) {
      state->frag_seen =
          std::make_unique<std::atomic<std::uint64_t>[]>(state->frag_words);
    }
  }

  std::uint64_t cookie = 0;
  {
    LockGuard guard(rndv_lock_);
    cookie = next_cookie_++;
    rndv_recvs_.emplace(cookie, std::move(state));
  }
  // Scope handoff: the request left the engine's posted lists when it
  // matched, so cancel/deadline now belong to the rendezvous registry.
  req->set_cancel_scope(this);
  // Re-arm the rank gate: the engine sweep may have raised it past this
  // request's deadline between the match and this registration.
  if (req->deadline() != 0) arm_deadline(req->deadline());
  {
    LockGuard guard(control_lock_);
    control_.push_back(ControlMsg{ControlMsg::Kind::kSendAck,
                                  static_cast<int>(rts.hdr.src_rank), rts.hdr.comm_id,
                                  cookie, body.sender_cookie});
  }
}

std::size_t Rank::handle_rndv_ack(const Packet& pkt) {
  // Instance lock is held by the progress path: defer the (potentially
  // large) data transmission to the control queue.
  std::uint64_t recv_cookie = 0;
  std::memcpy(&recv_cookie, pkt.payload(), sizeof recv_cookie);
  {
    LockGuard guard(control_lock_);
    control_.push_back(ControlMsg{ControlMsg::Kind::kSendData,
                                  static_cast<int>(pkt.hdr.src_rank), pkt.hdr.comm_id,
                                  pkt.hdr.imm, recv_cookie});
  }
  return 0;
}

std::size_t Rank::handle_rndv_data(const Packet& pkt) {
  RndvRecvState* state = nullptr;
  {
    LockGuard guard(rndv_lock_);
    const auto it = rndv_recvs_.find(pkt.hdr.imm);
    if (it == rndv_recvs_.end()) {
      // Reliable fabric: a retransmitted fragment can outlive its transfer
      // (the completion erased the state after every byte landed).
      FAIRMPI_CHECK_MSG(tracker_ != nullptr, "rendezvous data for unknown transfer");
      spc_.add(Counter::kDupDiscards);
      return 0;
    }
    state = it->second.get();
    if (state->failed) {
      // ft tombstone: the transfer's request already failed kPeerFailed;
      // the user may have freed the buffer, so a straggling fragment (in
      // an RX ring since before the death was confirmed) must not land.
      spc_.add(Counter::kDupDiscards);
      return 0;
    }
    // Dedup under the registry lock: losers must not touch `state` after
    // release (the transfer may complete and free it); winners keep it
    // alive through `remaining`, which cannot reach zero until they
    // subtract their own fragment below.
    if (!state->mark_fragment(pkt.hdr.seq)) {
      spc_.add(Counter::kDupDiscards);
      return 0;
    }
  }

  const std::uint64_t offset =
      static_cast<std::uint64_t>(pkt.hdr.seq) * uni_->config().rndv_frag_bytes;
  const std::uint64_t bytes = pkt.hdr.payload_size;
  if (offset < state->capacity && bytes != 0) {
    const std::uint64_t room = state->capacity - offset;
    std::memcpy(state->buffer + offset, pkt.payload(),
                static_cast<std::size_t>(bytes < room ? bytes : room));
  }

  const std::uint64_t left =
      state->remaining.fetch_sub(bytes, std::memory_order_acq_rel) - bytes;
  if (left != 0) return 0;

  // Last fragment: publish completion and retire the transfer. Counters
  // only on the settle win — the request may have been failed by a racing
  // death confirmation (the settled_ CAS in request.hpp arbitrates).
  if (state->request->complete(state->status)) {
    spc_.add(Counter::kMessagesReceived);
    spc_.add(Counter::kBytesReceived, state->total);
    tracer_.record(trace::Event::kRndvDone,
                   static_cast<std::uint32_t>(state->status.source),
                   static_cast<std::uint32_t>(state->total));
  }
  {
    LockGuard guard(rndv_lock_);
    rndv_recvs_.erase(pkt.hdr.imm);
  }
  return 1;
}

void Rank::inject_control(int dst, Packet&& pkt) {
  // Reliable mode: register for retransmit before the first attempt (the
  // ack can race back through a fast peer), and bound the backpressure
  // loop — on exhaustion the entry stays tracked, so the retransmit sweep
  // keeps trying (or eventually surfaces kRetryExhausted). Acks themselves
  // are never tracked; their loss is what retransmits exist for.
  const bool tracked =
      tracker_ != nullptr && pkt.hdr.opcode != Opcode::kAck;
  if (tracked) tracker_->track(dst, pkt, now_ns());
  // Tracked packets only need a handful of attempts: the retransmit sweep
  // owns recovery from there, so a long spin here would just stall the
  // control drain. Untracked control on a pristine fabric keeps the
  // original unbounded loop (the peer always drains eventually).
  constexpr std::uint64_t kTrackedAttempts = 64;
  std::uint64_t attempts = 0;
  for (;;) {
    if (peer_failed(dst)) {
      // Confirmed-dead destination: a full ring on a severed link never
      // drains, so the untracked-control loop below would spin forever.
      // Drop the packet — the owning operation is failed by the death
      // propagation (on_peer_dead), not by this transmission path.
      if (tracked) tracker_->untrack(p2p::key_of(dst, pkt.hdr));
      return;
    }
    const int k = pool_.id_for_thread();
    cri::CommResourceInstance& inst = pool_.instance(k);
    bool injected = false;
    {
      LockGuard guard(inst.lock());
      injected = inst.endpoint(dst).try_send(std::move(pkt));
      if (injected) inst.stats().note_injection();
    }
    if (injected) return;
    spc_.add(Counter::kSendBackpressure);
    if (tracked && ++attempts >= kTrackedAttempts) return;
    if (tracker_ != nullptr) flush_acks();  // keep our acks flowing meanwhile
    engine_.progress();
  }
}

void Rank::drain_control() {
  if (tracker_ != nullptr) flush_acks();
  for (;;) {
    ControlMsg msg;
    {
      LockGuard guard(control_lock_);
      if (control_.empty()) return;
      msg = control_.front();
      control_.pop_front();
    }

    switch (msg.kind) {
      case ControlMsg::Kind::kSendAck: {
        Packet ack;
        ack.hdr.opcode = Opcode::kRndvAck;
        ack.hdr.src_rank = static_cast<std::uint16_t>(id_);
        ack.hdr.comm_id = msg.comm;
        ack.hdr.imm = msg.remote_cookie;  // sender-side cookie
        ack.set_payload(&msg.local_cookie, sizeof msg.local_cookie);
        inject_control(msg.peer, std::move(ack));
        break;
      }
      case ControlMsg::Kind::kSendData: {
        // Claim the send state by extracting it: a duplicated RndvAck (our
        // packet-ack for it got lost) enqueues a second kSendData, and two
        // drainers must not both stream fragments from a buffer the user
        // may free the moment the first completes the request.
        std::unique_ptr<RndvSendState> state;
        {
          LockGuard guard(rndv_lock_);
          const auto it = rndv_sends_.find(msg.local_cookie);
          if (it == rndv_sends_.end()) {
            FAIRMPI_CHECK_MSG(tracker_ != nullptr, "ack for unknown rendezvous send");
            spc_.add(Counter::kDupDiscards);
            break;
          }
          state = std::move(it->second);
          rndv_sends_.erase(it);
        }
        if (state->failed) {
          // Cancelled / deadline-expired tombstone: the request is already
          // settled and the owner may have reclaimed the buffer — discard
          // instead of streaming stale memory (rendezvous.hpp).
          spc_.add(Counter::kDupDiscards);
          break;
        }
        if (peer_failed(msg.peer)) {
          // Receiver died between its RndvAck and our drain: fail the send
          // instead of streaming the whole payload into a severed link.
          if (state->request->fail(common::ErrorCode::kPeerFailed)) {
            spc_.add(Counter::kFtPeerFailedOps);
          }
          break;
        }
        const std::size_t frag = uni_->config().rndv_frag_bytes;
        std::uint64_t offset = 0;
        std::uint32_t index = 0;
        // A zero-length transfer still needs one (empty) fragment so the
        // receiver's remaining-counter protocol fires... except remaining
        // starts at 0 then; handled below by completing directly.
        while (offset < state->total) {
          const std::uint64_t chunk =
              state->total - offset < frag ? state->total - offset : frag;
          Packet data;
          data.hdr.opcode = Opcode::kRndvData;
          data.hdr.src_rank = static_cast<std::uint16_t>(id_);
          data.hdr.comm_id = msg.comm;
          data.hdr.seq = index++;
          data.hdr.imm = msg.remote_cookie;  // receiver-side cookie
          data.set_payload(state->data + offset, static_cast<std::size_t>(chunk));
          inject_control(msg.peer, std::move(data));
          offset += chunk;
        }
        if (state->request->complete()) {
          spc_.add(Counter::kMessagesSent);
          spc_.add(Counter::kBytesSent, state->total);
        }
        break;
      }
      case ControlMsg::Kind::kSendPacketAck:
      case ControlMsg::Kind::kSendPacketNack:
        // Handled by flush_acks ((n)acks ride their own queue); kept in
        // the enum so the message layout stays shared.
        break;
      case ControlMsg::Kind::kNone:
        FAIRMPI_CHECK_MSG(false, "empty control message");
    }
  }
}

}  // namespace fairmpi
