// Rendezvous protocol implementation (Rank methods). Protocol overview and
// lock discipline in include/fairmpi/p2p/rendezvous.hpp.
#include <cstring>
#include <mutex>

#include "fairmpi/common/error.hpp"
#include "fairmpi/core/universe.hpp"

namespace fairmpi {

using fabric::Opcode;
using fabric::Packet;
using p2p::ControlMsg;
using p2p::RndvRecvState;
using p2p::RndvSendState;
using p2p::RtsBody;
using spc::Counter;

void Rank::rndv_isend(CommId comm, int dst, int tag, const void* buf, std::size_t n,
                      Request& req) {
  req.init_send();

  auto state = std::make_unique<RndvSendState>();
  state->data = static_cast<const std::byte*>(buf);
  state->total = n;
  state->dst = dst;
  state->comm = comm;
  state->request = &req;

  std::uint64_t cookie = 0;
  {
    std::scoped_lock guard(rndv_lock_);
    cookie = next_cookie_++;
    rndv_sends_.emplace(cookie, std::move(state));
  }

  // The RTS is a sequence-numbered envelope like any eager message — it is
  // what the receiver matches, preserving the non-overtaking guarantee for
  // large messages too.
  Packet rts;
  rts.hdr.opcode = Opcode::kRndvRts;
  rts.hdr.src_rank = static_cast<std::uint16_t>(id_);
  rts.hdr.comm_id = comm;
  rts.hdr.tag = tag;
  rts.hdr.seq = comm_state(comm).next_seq(dst);
  const RtsBody body{n, cookie};
  rts.set_payload(&body, sizeof body);
  inject_control(dst, std::move(rts));
}

void Rank::on_rts_matched(p2p::Request* req, const Packet& rts) {
  // Matching lock is held: record the transfer and defer the ack.
  const RtsBody body = p2p::read_rts_body(rts);

  auto state = std::make_unique<RndvRecvState>();
  state->request = req;
  state->buffer = static_cast<std::byte*>(req->buffer());
  state->capacity = req->capacity();
  state->total = body.total;
  state->remaining.store(body.total, std::memory_order_relaxed);
  state->status.source = static_cast<int>(rts.hdr.src_rank);
  state->status.tag = rts.hdr.tag;
  state->status.size = body.total;
  state->status.truncated = body.total > req->capacity();

  std::uint64_t cookie = 0;
  {
    std::scoped_lock guard(rndv_lock_);
    cookie = next_cookie_++;
    rndv_recvs_.emplace(cookie, std::move(state));
  }
  {
    std::scoped_lock guard(control_lock_);
    control_.push_back(ControlMsg{ControlMsg::Kind::kSendAck,
                                  static_cast<int>(rts.hdr.src_rank), rts.hdr.comm_id,
                                  cookie, body.sender_cookie});
  }
}

std::size_t Rank::handle_rndv_ack(const Packet& pkt) {
  // Instance lock is held by the progress path: defer the (potentially
  // large) data transmission to the control queue.
  std::uint64_t recv_cookie = 0;
  std::memcpy(&recv_cookie, pkt.payload(), sizeof recv_cookie);
  {
    std::scoped_lock guard(control_lock_);
    control_.push_back(ControlMsg{ControlMsg::Kind::kSendData,
                                  static_cast<int>(pkt.hdr.src_rank), pkt.hdr.comm_id,
                                  pkt.hdr.imm, recv_cookie});
  }
  return 0;
}

std::size_t Rank::handle_rndv_data(const Packet& pkt) {
  RndvRecvState* state = nullptr;
  {
    std::scoped_lock guard(rndv_lock_);
    const auto it = rndv_recvs_.find(pkt.hdr.imm);
    FAIRMPI_CHECK_MSG(it != rndv_recvs_.end(), "rendezvous data for unknown transfer");
    state = it->second.get();
  }

  const std::uint64_t offset =
      static_cast<std::uint64_t>(pkt.hdr.seq) * uni_->config().rndv_frag_bytes;
  const std::uint64_t bytes = pkt.hdr.payload_size;
  if (offset < state->capacity && bytes != 0) {
    const std::uint64_t room = state->capacity - offset;
    std::memcpy(state->buffer + offset, pkt.payload(),
                static_cast<std::size_t>(bytes < room ? bytes : room));
  }

  const std::uint64_t left =
      state->remaining.fetch_sub(bytes, std::memory_order_acq_rel) - bytes;
  if (left != 0) return 0;

  // Last fragment: publish completion and retire the transfer.
  spc_.add(Counter::kMessagesReceived);
  spc_.add(Counter::kBytesReceived, state->total);
  tracer_.record(trace::Event::kRndvDone,
                 static_cast<std::uint32_t>(state->status.source),
                 static_cast<std::uint32_t>(state->total));
  state->request->complete(state->status);
  {
    std::scoped_lock guard(rndv_lock_);
    rndv_recvs_.erase(pkt.hdr.imm);
  }
  return 1;
}

void Rank::inject_control(int dst, Packet&& pkt) {
  for (;;) {
    const int k = pool_.id_for_thread();
    cri::CommResourceInstance& inst = pool_.instance(k);
    bool injected = false;
    {
      std::scoped_lock guard(inst.lock());
      injected = inst.endpoint(dst).try_send(std::move(pkt));
    }
    if (injected) return;
    spc_.add(Counter::kSendBackpressure);
    engine_.progress();
  }
}

void Rank::drain_control() {
  for (;;) {
    ControlMsg msg;
    {
      std::scoped_lock guard(control_lock_);
      if (control_.empty()) return;
      msg = control_.front();
      control_.pop_front();
    }

    switch (msg.kind) {
      case ControlMsg::Kind::kSendAck: {
        Packet ack;
        ack.hdr.opcode = Opcode::kRndvAck;
        ack.hdr.src_rank = static_cast<std::uint16_t>(id_);
        ack.hdr.comm_id = msg.comm;
        ack.hdr.imm = msg.remote_cookie;  // sender-side cookie
        ack.set_payload(&msg.local_cookie, sizeof msg.local_cookie);
        inject_control(msg.peer, std::move(ack));
        break;
      }
      case ControlMsg::Kind::kSendData: {
        RndvSendState* state = nullptr;
        {
          std::scoped_lock guard(rndv_lock_);
          const auto it = rndv_sends_.find(msg.local_cookie);
          FAIRMPI_CHECK_MSG(it != rndv_sends_.end(), "ack for unknown rendezvous send");
          state = it->second.get();
        }
        const std::size_t frag = uni_->config().rndv_frag_bytes;
        std::uint64_t offset = 0;
        std::uint32_t index = 0;
        // A zero-length transfer still needs one (empty) fragment so the
        // receiver's remaining-counter protocol fires... except remaining
        // starts at 0 then; handled below by completing directly.
        while (offset < state->total) {
          const std::uint64_t chunk =
              state->total - offset < frag ? state->total - offset : frag;
          Packet data;
          data.hdr.opcode = Opcode::kRndvData;
          data.hdr.src_rank = static_cast<std::uint16_t>(id_);
          data.hdr.comm_id = msg.comm;
          data.hdr.seq = index++;
          data.hdr.imm = msg.remote_cookie;  // receiver-side cookie
          data.set_payload(state->data + offset, static_cast<std::size_t>(chunk));
          inject_control(msg.peer, std::move(data));
          offset += chunk;
        }
        spc_.add(Counter::kMessagesSent);
        spc_.add(Counter::kBytesSent, state->total);
        state->request->complete();
        {
          std::scoped_lock guard(rndv_lock_);
          rndv_sends_.erase(msg.local_cookie);
        }
        break;
      }
      case ControlMsg::Kind::kNone:
        FAIRMPI_CHECK_MSG(false, "empty control message");
    }
  }
}

}  // namespace fairmpi
