#include "fairmpi/rmamt/rmamt.hpp"

#include <algorithm>
#include <atomic>
#include <barrier>
#include <thread>
#include <vector>

#include "fairmpi/common/error.hpp"
#include "fairmpi/common/timing.hpp"
#include "fairmpi/rma/window.hpp"

namespace fairmpi::rmamt {

RmamtResult run_put_flush(const RmamtConfig& cfg) {
  FAIRMPI_CHECK(cfg.threads >= 1);
  FAIRMPI_CHECK(cfg.ops_per_round >= 1);
  FAIRMPI_CHECK(cfg.message_size >= 1);

  Config engine = cfg.engine;
  engine.num_ranks = 2;
  Universe uni(engine);

  // Each thread puts into its own disjoint slot of the target region so
  // rounds are data-race-free by construction.
  const std::size_t slot = cfg.message_size;
  std::vector<std::byte> target_region(slot * static_cast<std::size_t>(cfg.threads));
  std::vector<std::byte> initiator_region(1);
  rma::WindowGroup group(
      uni, {{initiator_region.data(), initiator_region.size()},
            {target_region.data(), target_region.size()}});

  std::atomic<bool> timing{false};
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> total_ops{0};
  std::barrier sync(cfg.threads + 1);

  auto worker = [&](int t) {
    std::vector<std::byte> src(cfg.message_size, std::byte{0x5A});
    rma::Window& win = group.window(0);
    const std::size_t disp = static_cast<std::size_t>(t) * slot;
    sync.arrive_and_wait();
    std::uint64_t my_ops = 0;
    while (!stop.load(std::memory_order_acquire)) {
      for (int i = 0; i < cfg.ops_per_round; ++i) {
        win.put(/*target=*/1, disp, src.data(), cfg.message_size);
      }
      win.flush(1);
      if (timing.load(std::memory_order_acquire)) {
        my_ops += static_cast<std::uint64_t>(cfg.ops_per_round);
      }
    }
    total_ops.fetch_add(my_ops, std::memory_order_relaxed);
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(cfg.threads));
  for (int t = 0; t < cfg.threads; ++t) threads.emplace_back(worker, t);

  sync.arrive_and_wait();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));  // warmup
  const Stopwatch clock;
  timing.store(true, std::memory_order_release);
  std::this_thread::sleep_for(
      std::chrono::microseconds(static_cast<std::int64_t>(cfg.duration_s * 1e6)));
  timing.store(false, std::memory_order_release);
  const double elapsed = clock.elapsed_s();
  stop.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();

  RmamtResult res;
  res.ops = total_ops.load();
  res.duration_s = elapsed;
  res.msg_rate = static_cast<double>(res.ops) / elapsed;
  return res;
}

}  // namespace fairmpi::rmamt
