#include "fairmpi/rma/window.hpp"

#include <cstring>

#include "fairmpi/common/backoff.hpp"
#include "fairmpi/common/error.hpp"
#include "fairmpi/common/timing.hpp"

namespace fairmpi::rma {

using spc::Counter;

namespace {
std::atomic<std::uint64_t> g_next_window_key{0};
}  // namespace

Window::Window(WindowGroup& group, Rank& rank, void* base, std::size_t bytes)
    : group_(&group), rank_(&rank), base_(base), bytes_(bytes),
      window_key_(g_next_window_key.fetch_add(1, std::memory_order_relaxed)) {}

Window::PendingSlot& Window::thread_slot() {
  // Sticky per-thread binding keyed by the window's global id (same
  // pattern as CriPool::dedicated_id); keys are never reused, so stale
  // entries from destroyed windows are simply dead weight.
  thread_local std::vector<PendingSlot*> bindings;
  if (bindings.size() <= window_key_) bindings.resize(window_key_ + 1, nullptr);
  PendingSlot*& slot = bindings[window_key_];
  if (slot == nullptr) {
    LockGuard guard(slots_lock_);
    slots_.push_back(std::make_unique<PendingSlot>());
    slot = slots_.back().get();
  }
  return *slot;
}

std::uint64_t Window::pending() const {
  LockGuard guard(slots_lock_);
  std::uint64_t total = 0;
  for (const auto& slot : slots_) {
    total += slot->count->load(std::memory_order_acquire);
  }
  return total;
}

WindowGroup::WindowGroup(Universe& universe, const std::vector<Region>& regions) {
  FAIRMPI_CHECK_MSG(static_cast<int>(regions.size()) == universe.num_ranks(),
                    "one region per rank required");
  windows_.reserve(regions.size());
  for (int r = 0; r < universe.num_ranks(); ++r) {
    const Region& reg = regions[static_cast<std::size_t>(r)];
    FAIRMPI_CHECK_MSG(reg.base != nullptr || reg.bytes == 0, "null region with nonzero size");
    windows_.emplace_back(new Window(*this, universe.rank(r), reg.base, reg.bytes));
  }
}

namespace {
/// Lock an instance, timing the wait only when contended (same accounting
/// as the two-sided send path).
void lock_timed(cri::CommResourceInstance& inst, spc::CounterSet& counters)
    FAIRMPI_ACQUIRE(inst.lock()) {
  if (inst.lock().try_lock()) return;
  const std::uint64_t t0 = now_ns();
  // lint: allow(bare-lock) timed-acquire helper; every caller immediately
  // adopts with LockGuard(inst.lock(), adopt_lock)
  inst.lock().lock();
  counters.add(Counter::kInstanceLockWaitNs, now_ns() - t0);
}
}  // namespace

void Window::post_completion(cri::CommResourceInstance& inst) {
  PendingSlot& slot = thread_slot();
  slot.count->fetch_add(1, std::memory_order_relaxed);
  inst.stats().note_injection();  // RMA ops inject a CQ event, not a packet
  const fabric::Completion done{fabric::Completion::Kind::kRmaDone, &slot.count.value};
  while (!inst.context().cq().try_push(fabric::Completion{done})) {
    // CQ overrun: harvest one event inline (the NIC analog is a CQ poll
    // forced by the driver before more work can be posted).
    fabric::Completion drained;
    if (inst.context().cq().try_pop(drained)) {
      rank_->handle_completion(drained);
    }
  }
}

bool Window::fail_if_dead(int target) {
  if (!rank_->peer_failed(target)) return false;
  // No data movement, no pending increment: the op never existed as far as
  // flush is concerned; the typed error is the whole outcome.
  rank_->counters().add(Counter::kFtPeerFailedOps);
  rank_->report_error(common::Error{common::ErrorCode::kPeerFailed, rank_->id(),
                                    target, window_key_});
  return true;
}

void Window::put(int target, std::size_t disp, const void* src, std::size_t n) {
  Window& tw = group_->window(target);
  FAIRMPI_CHECK_MSG(disp + n <= tw.bytes_, "put out of window bounds");
  if (fail_if_dead(target)) return;

  cri::CommResourceInstance& inst = rank_->pool().instance(rank_->pool().id_for_thread());
  lock_timed(inst, rank_->counters());
  {
    LockGuard adopt(inst.lock(), adopt_lock);
    if (n != 0) {
      std::memcpy(static_cast<std::byte*>(tw.base_) + disp, src, n);
    }
    post_completion(inst);
  }
  rank_->counters().add(Counter::kRmaPuts);
  rank_->counters().add(Counter::kBytesSent, n);
  rank_->tracer().record(trace::Event::kRmaPut, static_cast<std::uint32_t>(target),
                         static_cast<std::uint32_t>(n));
}

void Window::get(int target, std::size_t disp, void* dst, std::size_t n) {
  Window& tw = group_->window(target);
  FAIRMPI_CHECK_MSG(disp + n <= tw.bytes_, "get out of window bounds");
  if (fail_if_dead(target)) return;

  cri::CommResourceInstance& inst = rank_->pool().instance(rank_->pool().id_for_thread());
  lock_timed(inst, rank_->counters());
  {
    LockGuard adopt(inst.lock(), adopt_lock);
    if (n != 0) {
      std::memcpy(dst, static_cast<const std::byte*>(tw.base_) + disp, n);
    }
    post_completion(inst);
  }
  rank_->counters().add(Counter::kRmaGets);
  rank_->counters().add(Counter::kBytesReceived, n);
  rank_->tracer().record(trace::Event::kRmaGet, static_cast<std::uint32_t>(target),
                         static_cast<std::uint32_t>(n));
}

void Window::accumulate_add_u64(int target, std::size_t disp, std::uint64_t operand) {
  (void)fetch_add_u64(target, disp, operand);
}

std::uint64_t Window::fetch_add_u64(int target, std::size_t disp, std::uint64_t operand) {
  Window& tw = group_->window(target);
  FAIRMPI_CHECK_MSG(disp % alignof(std::uint64_t) == 0, "accumulate needs aligned disp");
  FAIRMPI_CHECK_MSG(disp + sizeof(std::uint64_t) <= tw.bytes_,
                    "accumulate out of window bounds");
  if (fail_if_dead(target)) return 0;

  cri::CommResourceInstance& inst = rank_->pool().instance(rank_->pool().id_for_thread());
  lock_timed(inst, rank_->counters());
  std::uint64_t old = 0;
  {
    LockGuard adopt(inst.lock(), adopt_lock);
    {
      // Target-side atomicity: accumulates to one location serialize on the
      // target window's stripe lock, regardless of initiating rank/thread.
      LockGuard atomic_guard(tw.accumulate_lock(disp));
      auto* cell = reinterpret_cast<std::uint64_t*>(static_cast<std::byte*>(tw.base_) + disp);
      old = *cell;
      *cell = old + operand;
    }
    post_completion(inst);
  }
  rank_->counters().add(Counter::kRmaAccumulates);
  return old;
}

template <typename DonePredicate>
void Window::drain_until(DonePredicate done) {
  cri::CriPool& pool = rank_->pool();
  common::Backoff waiter;
  while (!done()) {
    // Own instance first (Alg. 2's affinity), then sweep: a thread's
    // completions usually sit on the instance it injected through.
    const int own = pool.id_for_thread();
    bool polled = false;
    for (int i = 0; i < pool.size(); ++i) {
      const int k = (own + i) % pool.size();
      cri::CommResourceInstance& inst = pool.instance(k);
      if (!inst.lock().try_lock()) {
        rank_->counters().add(Counter::kInstanceTrylockFail);
        continue;
      }
      polled = true;
      {
        LockGuard adopt(inst.lock(), adopt_lock);
        rank_->engine().progress_instance_locked(inst);
      }
      if (done()) break;
    }
    if (polled) {
      waiter.reset();
      continue;
    }
    // Every instance busy. This used to pause silently — a flush that
    // polled nothing was indistinguishable from one that worked. Record
    // the miss, back off adaptively, and once the backoff saturates stop
    // try-locking: block on our own instance (timed, so the wait is
    // attributed like every other contended acquire) and drain it for
    // real. Bounded: the hold we are waiting out is a ring pop or an RMA
    // op, never unbounded user code.
    rank_->counters().add(Counter::kRmaFlushAllBusy);
    if (waiter.saturated()) {
      cri::CommResourceInstance& inst = pool.instance(own);
      lock_timed(inst, rank_->counters());
      LockGuard adopt(inst.lock(), adopt_lock);
      rank_->engine().progress_instance_locked(inst);
      waiter.reset();
      continue;
    }
    waiter.pause();
  }
}

void Window::flush(int target) {
  (void)target;  // pending ops are tracked per thread, not per target
  flush_all();
}

void Window::flush_all() {
  rank_->counters().add(Counter::kRmaFlushes);
  PendingSlot& slot = thread_slot();
  rank_->tracer().record(
      trace::Event::kRmaFlush,
      static_cast<std::uint32_t>(slot.count->load(std::memory_order_relaxed)));
  drain_until([&slot] { return slot.count->load(std::memory_order_acquire) == 0; });
}

void Window::flush_process() {
  rank_->counters().add(Counter::kRmaFlushes);
  drain_until([this] { return pending() == 0; });
}

void Window::lock_all() noexcept {
  epoch_open_.store(true, std::memory_order_relaxed);
}

void Window::unlock_all() {
  flush_process();
  epoch_open_.store(false, std::memory_order_relaxed);
}

void Window::lock(LockKind kind, int target) {
  std::atomic<int>& state = group_->window(target).target_lock_;
  SpinWait waiter;
  if (kind == LockKind::kExclusive) {
    int expected = 0;
    while (!state.compare_exchange_weak(expected, -1, std::memory_order_acquire,
                                        std::memory_order_relaxed)) {
      expected = 0;
      waiter.pause();
    }
    return;
  }
  // Shared: increment unless an exclusive holder (-1) is present.
  int cur = state.load(std::memory_order_relaxed);
  for (;;) {
    if (cur < 0) {
      waiter.pause();
      cur = state.load(std::memory_order_relaxed);
      continue;
    }
    if (state.compare_exchange_weak(cur, cur + 1, std::memory_order_acquire,
                                    std::memory_order_relaxed)) {
      return;
    }
  }
}

void Window::unlock(int target) {
  // MPI_Win_unlock completes all operations to the target first.
  flush(target);
  std::atomic<int>& state = group_->window(target).target_lock_;
  const int cur = state.load(std::memory_order_relaxed);
  FAIRMPI_CHECK_MSG(cur != 0, "unlock without a held target lock");
  if (cur < 0) {
    state.store(0, std::memory_order_release);
  } else {
    state.fetch_sub(1, std::memory_order_release);
  }
}

common::ErrorCode WindowGroup::fence_arrive(Rank& self, std::uint64_t deadline_ns) {
  const int n = num_ranks();
  const int gen = fence_generation_.load(std::memory_order_acquire);
  if (fence_arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == n) {
    fence_arrived_.store(0, std::memory_order_relaxed);
    fence_generation_.store(gen + 1, std::memory_order_release);
    return common::ErrorCode::kOk;
  }
  SpinWait waiter;
  while (fence_generation_.load(std::memory_order_acquire) == gen) {
    // ft escape: a participant confirmed dead by our detector will never
    // arrive, so this spin would hang every survivor forever. The check is
    // per-iteration atomic loads only, and always false with ft off (the
    // detector never confirms anyone), preserving the pure-spin behaviour.
    for (int r = 0; r < n; ++r) {
      if (r != self.id() && self.peer_failed(r)) {
        return common::ErrorCode::kPeerFailed;
      }
    }
    // Deadline escape (§5h): a straggler-stuck fence fails typed instead
    // of hanging. The abandoned arrival leaves the barrier broken — this
    // is an exit ramp, not a recoverable timeout.
    if (deadline_ns != 0 && now_ns() >= deadline_ns) {
      return common::ErrorCode::kDeadlineExceeded;
    }
    waiter.pause();
  }
  return common::ErrorCode::kOk;
}

void Window::fence() { (void)fence_checked(); }

common::ErrorCode Window::fence_checked() {
  // Complete our outbound operations (all threads of this rank), then
  // rendezvous with every rank so all inbound operations are complete too
  // before anyone proceeds.
  flush_process();
  const std::uint64_t rel = rank_->universe().config().op_deadline_ns;
  const common::ErrorCode ec =
      group_->fence_arrive(*rank_, rel == 0 ? 0 : now_ns() + rel);
  if (ec == common::ErrorCode::kPeerFailed) {
    rank_->counters().add(Counter::kFtPeerFailedOps);
  } else if (ec == common::ErrorCode::kDeadlineExceeded) {
    rank_->counters().add(Counter::kDeadlineExceededOps);
  }
  if (ec != common::ErrorCode::kOk) {
    rank_->report_error(common::Error{ec, rank_->id(), /*peer=*/-1, window_key_});
  }
  return ec;
}

}  // namespace fairmpi::rma
