// Byte-level collective algorithm cores (DESIGN.md §5i).
//
// The public templates in coll/coll.hpp erase the element type into
// (bytes, elem_size, ReduceFn) and dispatch here, so the tree/ring logic
// compiles once instead of per datatype. All internal traffic runs on the
// caller's tag lane through the Rank-level ops (the Communicator-level
// reserved-tag guard does not apply to the engine itself).
//
// Error discipline: one deadline per collective computed at entry (the
// rounds are serial — per-round deadlines would let a collective overrun
// by rounds×), a revocation check before every round, and on any typed
// failure every still-outstanding request is cancelled and awaited before
// returning — a posted receive referencing a stack frame we are about to
// unwind is the alternative.
#include "fairmpi/coll/coll.hpp"

#include <algorithm>
#include <cstring>
#include <vector>

#include "fairmpi/common/spinlock.hpp"
#include "fairmpi/common/timing.hpp"

namespace fairmpi::coll::detail {

namespace {

using common::ErrorCode;
using spc::Counter;

/// Operation ids recorded in the kCollOp trace event (`a` field).
enum OpId : std::uint32_t {
  kOpBcast = 0,
  kOpReduce = 1,
  kOpAllreduce = 2,
  kOpGather = 3,
  kOpScatter = 4,
};

/// Posting window for pipelined trees: how many segment receives are kept
/// posted ahead of consumption. Bounds posted-queue depth (and the match
/// engine's scan cost) while still overlapping receive s+1 with the
/// forwarding of segment s.
constexpr std::size_t kPipelineWindow = 4;

/// Per-collective context: identity, lane, the single entry deadline, and
/// round/segment accounting flushed to the SPCs on scope exit (any return
/// path).
struct Ctx {
  Communicator comm;
  Rank& rank;
  p2p::CommState& cs;
  const Config& cfg;
  int lane;
  std::uint64_t deadline;
  std::uint64_t rounds = 0;
  std::uint64_t segments = 0;

  Ctx(Communicator c, int lane_, OpId op)
      : comm(c),
        rank(c.owner()),
        cs(rank.comm_state(c.id())),
        cfg(rank.universe().config()),
        lane(lane_) {
    const std::uint64_t rel = cfg.op_deadline_ns;
    deadline = rel == 0 ? 0 : now_ns() + rel;
    rank.counters().add(Counter::kCollOps);
    rank.tracer().record(trace::Event::kCollOp, op, static_cast<std::uint32_t>(lane_));
  }

  ~Ctx() {
    auto spc = rank.counters().cursor();
    if (rounds != 0) spc.add(Counter::kCollRounds, rounds);
    if (segments != 0) spc.add(Counter::kCollSegments, segments);
  }

  Ctx(const Ctx&) = delete;
  Ctx& operator=(const Ctx&) = delete;

  bool revoked() const noexcept { return cs.revoked(); }

  int tag(int offset) const noexcept { return lane_tag(lane, offset); }

  // dst/src are group-local; the Rank-level ops speak global ids.
  void isend(int dst, int offset, const void* buf, std::size_t n, Request& req) {
    rank.isend(comm.id(), comm.global_of(dst), tag(offset), buf, n, req, deadline);
  }
  void irecv(int src, int offset, void* buf, std::size_t capacity, Request& req) {
    rank.irecv(comm.id(), comm.global_of(src), tag(offset), buf, capacity, req,
               deadline);
  }

  ErrorCode wait(Request& req) {
    rank.wait(req);
    return req.error();
  }

  ErrorCode send(int dst, int offset, const void* buf, std::size_t n) {
    Request req;
    isend(dst, offset, buf, n, req);
    return wait(req);
  }
  ErrorCode recv(int src, int offset, void* buf, std::size_t capacity) {
    Request req;
    irecv(src, offset, buf, capacity, req);
    return wait(req);
  }

  /// Error-path cleanup: settle every still-outstanding request before the
  /// frame that owns it unwinds. Cancel routes through the engine-side
  /// owner (match engine / rendezvous registry), so a cancel-vs-match race
  /// settles exactly once; whichever way it lands, wait() then returns.
  void drain(Request* reqs, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      if (!reqs[i].done()) (void)reqs[i].cancel();
    }
    for (std::size_t i = 0; i < n; ++i) rank.wait(reqs[i]);
  }
};

/// Binomial-tree shape for virtual rank `vr` of `n` (root at vr 0):
/// parent (or -1 at the root) and children in send order.
struct BinomialTree {
  int parent = -1;
  int children[32];
  int num_children = 0;
};

BinomialTree binomial_tree(int vr, int n) {
  BinomialTree t;
  int mask = 1;
  while (mask < n && (vr & mask) == 0) mask <<= 1;  // lowest set bit (>= n at root)
  if (vr != 0) t.parent = vr - mask;                // clear the lowest set bit
  for (mask >>= 1; mask > 0; mask >>= 1) {
    if (vr + mask < n) t.children[t.num_children++] = vr + mask;
  }
  return t;
}

/// Segment count for a payload under the configured segment size; 1 means
/// single-shot (no pipeline). allow_overtaking drops the in-order matching
/// the segment streams rely on, so it forces single-shot.
std::size_t segment_count(const Ctx& ctx, std::size_t bytes) {
  const std::size_t seg = ctx.cfg.coll_segment_bytes;
  if (seg == 0 || bytes <= seg || ctx.cfg.allow_overtaking) return 1;
  return (bytes + seg - 1) / seg;
}

}  // namespace

int acquire_lane(Communicator comm) {
  Rank& rank = comm.owner();
  p2p::CommState& cs = rank.comm_state(comm.id());
  int lane = cs.try_acquire_coll_lane();
  if (lane < 0) {
    // All lanes busy: another thread's collective must retire first. Count
    // the contention once, then spin-progress — lanes free without any
    // network event, but progressing keeps the collectives that hold them
    // moving.
    rank.counters().add(Counter::kCollLaneWaits);
    SpinWait waiter;
    while ((lane = cs.try_acquire_coll_lane()) < 0) {
      rank.progress();
      waiter.pause();
    }
  }
  rank.counters().add(Counter::kCollLaneAcquires);
  return lane;
}

void release_lane(Communicator comm, int lane) {
  comm.owner().comm_state(comm.id()).release_coll_lane(lane);
}

ErrorCode broadcast_bytes(Communicator comm, int root, void* data, std::size_t bytes,
                          int lane) {
  const int n = comm.size();
  const int me = comm.rank();
  if (n == 1) return ErrorCode::kOk;
  Ctx ctx(comm, lane, kOpBcast);

  const int vr = (me - root + n) % n;
  const BinomialTree tree = binomial_tree(vr, n);
  const auto to_real = [&](int v) { return (v + root) % n; };
  auto* bytes_data = static_cast<unsigned char*>(data);

  const std::size_t num_segs = segment_count(ctx, bytes);
  ctx.rank.counters().add(num_segs > 1 ? Counter::kCollPipelinedOps
                                       : Counter::kCollBinomialOps);
  const std::size_t seg = num_segs > 1 ? ctx.cfg.coll_segment_bytes : bytes;

  // Pipelined binomial broadcast: interior nodes forward segment s to
  // their children while (up to kPipelineWindow) later segments are
  // already posted toward the parent. Single-shot is the num_segs == 1
  // degenerate case of the same loop.
  Request rreqs[kPipelineWindow];
  const std::size_t posted_ahead = std::min(num_segs, kPipelineWindow);
  const auto seg_len = [&](std::size_t s) {
    return s + 1 == num_segs ? bytes - s * seg : seg;
  };
  if (tree.parent >= 0) {
    for (std::size_t s = 0; s < posted_ahead; ++s) {
      ctx.irecv(to_real(tree.parent), kOffBcast, bytes_data + s * seg, seg_len(s),
                rreqs[s]);
    }
  }
  for (std::size_t s = 0; s < num_segs; ++s) {
    if (ctx.revoked()) {
      if (tree.parent >= 0) ctx.drain(rreqs, posted_ahead);
      return ErrorCode::kCommRevoked;
    }
    if (tree.parent >= 0) {
      const ErrorCode rc = ctx.wait(rreqs[s % kPipelineWindow]);
      if (rc != ErrorCode::kOk) {
        ctx.drain(rreqs, posted_ahead);
        return rc;
      }
      ++ctx.rounds;
    }
    for (int c = 0; c < tree.num_children; ++c) {
      const ErrorCode rc =
          ctx.send(to_real(tree.children[c]), kOffBcast, bytes_data + s * seg, seg_len(s));
      if (rc != ErrorCode::kOk) {
        if (tree.parent >= 0) ctx.drain(rreqs, posted_ahead);
        return rc;
      }
      ++ctx.rounds;
    }
    if (tree.parent >= 0 && s + kPipelineWindow < num_segs) {
      const std::size_t next = s + kPipelineWindow;
      ctx.irecv(to_real(tree.parent), kOffBcast, bytes_data + next * seg, seg_len(next),
                rreqs[next % kPipelineWindow]);
    }
  }
  if (num_segs > 1) ctx.segments += num_segs;
  return ErrorCode::kOk;
}

ErrorCode reduce_bytes(Communicator comm, int root, const void* in, void* out,
                       std::size_t bytes, std::size_t elem_size, ReduceFn fn, int lane) {
  const int n = comm.size();
  const int me = comm.rank();
  if (n == 1) {
    std::memcpy(out, in, bytes);
    return ErrorCode::kOk;
  }
  Ctx ctx(comm, lane, kOpReduce);

  const int vr = (me - root + n) % n;
  const BinomialTree tree = binomial_tree(vr, n);
  const auto to_real = [&](int v) { return (v + root) % n; };

  // Accumulate into the root's `out` directly; everyone else combines in a
  // scratch accumulator sized to the payload.
  std::vector<unsigned char> scratch_acc;
  unsigned char* acc;
  if (me == root) {
    acc = static_cast<unsigned char*>(out);
    std::memcpy(acc, in, bytes);
  } else {
    scratch_acc.assign(static_cast<const unsigned char*>(in),
                       static_cast<const unsigned char*>(in) + bytes);
    acc = scratch_acc.data();
  }

  const std::size_t num_segs = segment_count(ctx, bytes);
  ctx.rank.counters().add(num_segs > 1 ? Counter::kCollPipelinedOps
                                       : Counter::kCollBinomialOps);
  const std::size_t seg = num_segs > 1 ? ctx.cfg.coll_segment_bytes : bytes;
  const auto seg_len = [&](std::size_t s) {
    return s + 1 == num_segs ? bytes - s * seg : seg;
  };

  // Pipelined binomial reduce: per segment, combine every child's
  // contribution, then forward the partial segment to the parent — the
  // parent can fold segment s while the subtree is still producing s+1.
  // Children are combined in tree order (deterministic result for
  // non-commutative float rounding).
  std::vector<unsigned char> incoming(seg);
  for (std::size_t s = 0; s < num_segs; ++s) {
    if (ctx.revoked()) return ErrorCode::kCommRevoked;
    const std::size_t len = seg_len(s);
    for (int c = 0; c < tree.num_children; ++c) {
      const ErrorCode rc =
          ctx.recv(to_real(tree.children[c]), kOffReduce, incoming.data(), len);
      if (rc != ErrorCode::kOk) return rc;
      fn(acc + s * seg, incoming.data(), len / elem_size);
      ++ctx.rounds;
    }
    if (tree.parent >= 0) {
      const ErrorCode rc = ctx.send(to_real(tree.parent), kOffReduce, acc + s * seg, len);
      if (rc != ErrorCode::kOk) return rc;
      ++ctx.rounds;
    }
  }
  if (num_segs > 1) ctx.segments += num_segs;
  return ErrorCode::kOk;
}

namespace {

/// Ring reduce-scatter + allgather allreduce (the "rsag" algorithm):
/// bandwidth-optimal for large payloads — every rank sends and receives
/// 2*(n-1)/n of the payload regardless of n, versus the reduce+broadcast
/// pair's 2×log2(n) full-payload hops through the root's links.
ErrorCode allreduce_ring(Ctx& ctx, const void* in, void* out, std::size_t bytes,
                         std::size_t elem_size, ReduceFn fn) {
  const int n = ctx.comm.size();
  const int me = ctx.comm.rank();
  const std::size_t count = bytes / elem_size;
  auto* out_bytes = static_cast<unsigned char*>(out);
  std::memcpy(out_bytes, in, bytes);

  // Chunk c covers elements [ofs(c), ofs(c+1)): count/n each, the first
  // count%n chunks one element larger.
  const std::size_t q = count / static_cast<std::size_t>(n);
  const std::size_t r = count % static_cast<std::size_t>(n);
  const auto ofs = [&](int c) {
    const auto uc = static_cast<std::size_t>(c);
    return uc * q + std::min(uc, r);
  };
  const auto chunk_len = [&](int c) { return ofs(c + 1) - ofs(c); };

  const int right = (me + 1) % n;
  const int left = (me - 1 + n) % n;
  std::vector<unsigned char> scratch((q + (r != 0 ? 1 : 0)) * elem_size);

  // Reduce-scatter: after n-1 steps rank me holds the fully-reduced chunk
  // (me+1) % n. Each step sends the chunk reduced so far downstream and
  // folds the one arriving from upstream.
  for (int s = 0; s < n - 1; ++s) {
    if (ctx.revoked()) return ErrorCode::kCommRevoked;
    const int send_chunk = (me - s + n) % n;
    const int recv_chunk = (me - s - 1 + n) % n;
    Request sreq;
    ctx.isend(right, kOffAllreduceRs, out_bytes + ofs(send_chunk) * elem_size,
              chunk_len(send_chunk) * elem_size, sreq);
    const ErrorCode rrc = ctx.recv(left, kOffAllreduceRs, scratch.data(),
                                   chunk_len(recv_chunk) * elem_size);
    if (rrc != ErrorCode::kOk) {
      ctx.drain(&sreq, 1);
      return rrc;
    }
    fn(out_bytes + ofs(recv_chunk) * elem_size, scratch.data(), chunk_len(recv_chunk));
    const ErrorCode src = ctx.wait(sreq);
    if (src != ErrorCode::kOk) return src;
    ++ctx.rounds;
  }

  // Allgather ring: circulate the reduced chunks; receives land in place.
  for (int s = 0; s < n - 1; ++s) {
    if (ctx.revoked()) return ErrorCode::kCommRevoked;
    const int send_chunk = (me + 1 - s + 2 * n) % n;
    const int recv_chunk = (me - s + n) % n;
    Request sreq;
    ctx.isend(right, kOffAllreduceAg, out_bytes + ofs(send_chunk) * elem_size,
              chunk_len(send_chunk) * elem_size, sreq);
    const ErrorCode rrc = ctx.recv(left, kOffAllreduceAg,
                                   out_bytes + ofs(recv_chunk) * elem_size,
                                   chunk_len(recv_chunk) * elem_size);
    if (rrc != ErrorCode::kOk) {
      ctx.drain(&sreq, 1);
      return rrc;
    }
    const ErrorCode src = ctx.wait(sreq);
    if (src != ErrorCode::kOk) return src;
    ++ctx.rounds;
  }
  return ErrorCode::kOk;
}

}  // namespace

ErrorCode allreduce_bytes(Communicator comm, const void* in, void* out,
                          std::size_t bytes, std::size_t elem_size, ReduceFn fn,
                          int lane) {
  const int n = comm.size();
  if (n == 1) {
    std::memcpy(out, in, bytes);
    return ErrorCode::kOk;
  }
  const Config& cfg = comm.owner().universe().config();
  if (bytes >= cfg.coll_rsag_min_bytes && bytes / elem_size > 0) {
    Ctx ctx(comm, lane, kOpAllreduce);
    ctx.rank.counters().add(Counter::kCollRsagOps);
    return allreduce_ring(ctx, in, out, bytes, elem_size, fn);
  }
  // Latency regime: reduce to local rank 0, broadcast the result. The two
  // phases use distinct tag offsets of the same lane, so back-to-back
  // allreduces on one lane cannot cross-match.
  const int me = comm.rank();
  ErrorCode rc;
  if (me == 0) {
    rc = reduce_bytes(comm, 0, in, out, bytes, elem_size, fn, lane);
  } else {
    std::vector<unsigned char> scratch(bytes);
    rc = reduce_bytes(comm, 0, in, scratch.data(), bytes, elem_size, fn, lane);
  }
  if (rc != ErrorCode::kOk) return rc;
  return broadcast_bytes(comm, 0, out, bytes, lane);
}

ErrorCode gather_bytes(Communicator comm, int root, const void* in, std::size_t bytes,
                       void* out, int lane) {
  const int n = comm.size();
  const int me = comm.rank();
  if (n == 1) {
    std::memcpy(out, in, bytes);
    return ErrorCode::kOk;
  }
  Ctx ctx(comm, lane, kOpGather);
  if (me == root) {
    auto* out_bytes = static_cast<unsigned char*>(out);
    std::memcpy(out_bytes + static_cast<std::size_t>(me) * bytes, in, bytes);
    for (int r = 0; r < n; ++r) {
      if (r == root) continue;
      if (ctx.revoked()) return ErrorCode::kCommRevoked;
      const ErrorCode rc =
          ctx.recv(r, kOffGather, out_bytes + static_cast<std::size_t>(r) * bytes, bytes);
      if (rc != ErrorCode::kOk) return rc;
      ++ctx.rounds;
    }
    return ErrorCode::kOk;
  }
  ++ctx.rounds;
  return ctx.send(root, kOffGather, in, bytes);
}

ErrorCode scatter_bytes(Communicator comm, int root, const void* in, void* out,
                        std::size_t bytes, int lane) {
  const int n = comm.size();
  const int me = comm.rank();
  if (n == 1) {
    std::memcpy(out, in, bytes);
    return ErrorCode::kOk;
  }
  Ctx ctx(comm, lane, kOpScatter);
  if (me == root) {
    const auto* in_bytes = static_cast<const unsigned char*>(in);
    for (int r = 0; r < n; ++r) {
      if (r == root) continue;
      if (ctx.revoked()) return ErrorCode::kCommRevoked;
      const ErrorCode rc =
          ctx.send(r, kOffScatter, in_bytes + static_cast<std::size_t>(r) * bytes, bytes);
      if (rc != ErrorCode::kOk) return rc;
      ++ctx.rounds;
    }
    std::memcpy(out, in_bytes + static_cast<std::size_t>(me) * bytes, bytes);
    return ErrorCode::kOk;
  }
  ++ctx.rounds;
  return ctx.recv(root, kOffScatter, out, bytes);
}

}  // namespace fairmpi::coll::detail
