#include "fairmpi/benchsupport/report.hpp"

#include <cstdio>
#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "fairmpi/common/error.hpp"
#include "fairmpi/common/table.hpp"

namespace fairmpi::benchsupport {

FigureReport::FigureReport(std::string id, std::string title, std::string x_label,
                           std::string y_label, bool log_y)
    : id_(std::move(id)), title_(std::move(title)), x_label_(std::move(x_label)),
      y_label_(std::move(y_label)), log_y_(log_y) {}

const FigureReport::Series* FigureReport::find(const std::string& name) const {
  for (const auto& s : series_) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

FigureReport::Series& FigureReport::find_or_create(const std::string& name) {
  for (auto& s : series_) {
    if (s.name == name) return s;
  }
  series_.push_back(Series{name, {}});
  return series_.back();
}

void FigureReport::add_point(const std::string& series, double x, double mean,
                             double stddev) {
  find_or_create(series).points.push_back(Point{x, mean, stddev});
}

void FigureReport::add_point(const std::string& series, double x,
                             const RunningStats& stats) {
  add_point(series, x, stats.mean(), stats.stddev());
}

std::string FigureReport::render() const {
  SeriesChart chart(id_ + ": " + title_, x_label_, y_label_);
  chart.set_log_y(log_y_);
  for (const auto& s : series_) {
    std::vector<std::pair<double, double>> pts;
    pts.reserve(s.points.size());
    for (const auto& p : s.points) pts.emplace_back(p.x, p.mean);
    chart.add_series(s.name, std::move(pts));
  }

  Table table({x_label_, "series", y_label_ + " (mean)", "stddev"});
  for (const auto& s : series_) {
    for (const auto& p : s.points) {
      char xbuf[32];
      std::snprintf(xbuf, sizeof xbuf, "%g", p.x);
      table.add_row({xbuf, s.name, format_si(p.mean), format_si(p.stddev)});
    }
  }
  return chart.render() + "\n" + table.render();
}

void FigureReport::write_csv(const std::string& dir) const {
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/" + id_ + ".csv";
  std::ofstream os(path);
  FAIRMPI_CHECK_MSG(os.good(), "cannot open CSV output file");
  os << "series,x,mean,stddev\n";
  for (const auto& s : series_) {
    for (const auto& p : s.points) {
      os << s.name << ',' << p.x << ',' << p.mean << ',' << p.stddev << '\n';
    }
  }
  FAIRMPI_CHECK_MSG(os.good(), "CSV write failed");
}

bool FigureReport::has_point(const std::string& series, double x) const {
  const Series* s = find(series);
  if (s == nullptr) return false;
  for (const auto& p : s->points) {
    if (p.x == x) return true;
  }
  return false;
}

double FigureReport::value_at(const std::string& series, double x) const {
  const Series* s = find(series);
  FAIRMPI_CHECK_MSG(s != nullptr, "unknown series in value_at");
  for (const auto& p : s->points) {
    if (p.x == x) return p.mean;
  }
  FAIRMPI_CHECK_MSG(false, "no point at requested x in value_at");
  return 0.0;
}

void CheckList::expect(bool condition, std::string what, std::string detail) {
  entries_.push_back(Entry{condition, std::move(what), std::move(detail)});
  if (!condition) ++failures_;
}

void CheckList::expect_ratio_at_least(double a, double b, double min_ratio,
                                      std::string what) {
  char detail[128];
  std::snprintf(detail, sizeof detail, "%.3g vs %.3g (ratio %.2f, need >= %.2f)", a, b,
                b != 0 ? a / b : 0.0, min_ratio);
  expect(a >= min_ratio * b, std::move(what), detail);
}

void CheckList::expect_close(double a, double b, double tol_frac, std::string what) {
  const double scale = std::max(std::abs(a), std::abs(b));
  char detail[128];
  std::snprintf(detail, sizeof detail, "%.3g vs %.3g (tol %.0f%%)", a, b, tol_frac * 100);
  expect(std::abs(a - b) <= tol_frac * scale, std::move(what), detail);
}

std::string CheckList::render() const {
  std::ostringstream os;
  os << "Expectation checks (paper-shape validation):\n";
  for (const auto& e : entries_) {
    os << "  [" << (e.pass ? "PASS" : "FAIL") << "] " << e.what;
    if (!e.detail.empty()) os << " — " << e.detail;
    os << '\n';
  }
  os << "  " << (total() - failures_) << "/" << total() << " checks passed\n";
  return os.str();
}

}  // namespace fairmpi::benchsupport
