// Multirate-pairwise (paper ref [6]) over the *real* fairmpi engine.
//
// Spawns pairs of communication entities — sender on one rank, receiver on
// another (paper Fig. 2) — and measures the aggregate message rate over a
// timed window-flow-controlled run, with the receiver-side SPC delta
// captured for Table II-style reporting.
//
// Thread mode: one 2-rank universe; entity i is thread i of its rank.
// Process mode: a 2N-rank universe of single-threaded ranks; pair i is
// ranks (2i, 2i+1) — within one address space (the fairmpi universe is
// in-process by design), but with fully private communication resources,
// which is what distinguishes process mode in the paper's comparison.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "fairmpi/core/config.hpp"
#include "fairmpi/spc/spc.hpp"

namespace fairmpi::multirate {

struct MultirateConfig {
  Config engine;               ///< instances / assignment / progress / overtaking
  int pairs = 1;
  bool process_mode = false;   ///< pair = two single-threaded ranks
  bool comm_per_pair = false;  ///< dedicated communicator per pair (Fig. 3c)
  bool any_tag = false;        ///< post receives with kAnyTag (Fig. 4)
  std::size_t payload_bytes = 0;
  int window = 128;
  double duration_s = 0.25;    ///< timed measurement length

  /// Observability exports, written after the run while the universe is
  /// still alive (empty = no export). trace_out holds Chrome trace-event
  /// JSON (enable recording via FAIRMPI_TRACE=1 or engine.trace_enabled);
  /// obs_out holds the Universe::dump_observability() snapshot.
  std::string trace_out;
  std::string obs_out;

  /// Deterministically exercise the contention profiler against the
  /// engine's two hottest lock classes (cri.instance, match.engine) before
  /// exporting: a holder thread pins each lock while this thread runs the
  /// real blocking operation behind it. A timed workload alone cannot
  /// guarantee preemption-driven contention on a 1-2 core CI runner, so
  /// the obs_report.py --require-wait gate opts into this; on bigger
  /// machines the run's natural contention lands on top. No-op unless the
  /// obs layer is enabled.
  bool obs_selfcheck = false;
};

struct MultirateResult {
  double msg_rate = 0.0;          ///< delivered messages per wall second
  std::uint64_t delivered = 0;    ///< during the timed region
  double duration_s = 0.0;        ///< actual measured duration
  spc::Snapshot receiver_spc;     ///< receiver-side SPC delta (Table II)
};

/// Run the pairwise pattern once. Uses real threads; intended for
/// host-scale validation (a 2-core container cannot reproduce 20-pair
/// scaling — use the model backend for paper-scale sweeps).
MultirateResult run_pairwise(const MultirateConfig& cfg);

/// Incast pattern: N sender threads on rank 0 all target ONE receiver
/// thread on rank 1, sharing a single tag on the world communicator — the
/// worst case for the §II-C effects: one sequence stream fed by every
/// sender, so out-of-sequence pressure and matching-queue contention are
/// maximal. `cfg.pairs` is the sender count; `comm_per_pair`, `any_tag`
/// and `process_mode` do not apply (the pattern is about sharing).
MultirateResult run_incast(const MultirateConfig& cfg);

}  // namespace fairmpi::multirate
