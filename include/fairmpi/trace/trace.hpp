// Lightweight event tracing for the real engine.
//
// A fixed-capacity ring of 24-byte entries per tracer; recording is a
// relaxed-atomic slot claim plus three stores, cheap enough to leave
// compiled in (it is gated by an enabled flag that defaults to off, so the
// steady-state cost is one relaxed load). Intended for debugging engine
// behaviour that SPC aggregates hide — e.g. *when* a burst of
// out-of-sequence buffering happened, or the interleaving of sends across
// instances.
//
// The ring overwrites oldest entries; snapshot() returns the surviving
// window in chronological order.
#pragma once

#include <atomic>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "fairmpi/common/align.hpp"

namespace fairmpi::trace {

enum class Event : std::uint8_t {
  kNone = 0,
  kSend,        ///< a = destination rank, b = tag
  kRecvPost,    ///< a = source filter (+1, 0 = ANY), b = tag filter
  kRecvDone,    ///< a = source rank, b = tag
  kProgress,    ///< a = completions harvested
  kRmaPut,      ///< a = target rank, b = low 32 bits of size
  kRmaGet,      ///< a = target rank, b = low 32 bits of size
  kRmaFlush,    ///< a = pending ops at entry
  kRndvRts,     ///< a = destination rank, b = low 32 bits of total
  kRndvDone,    ///< a = peer rank, b = low 32 bits of total
  kRetransmit,  ///< a = peer rank, b = packet seq
  kWatchdogStall,  ///< a = instance index (or peer), b = strike count
  kAckSent,     ///< a = peer rank, b = cumulative seq acked (reliability)
  kAckRecv,     ///< a = peer rank, b = cumulative seq acked (reliability)
  kCsumDrop,    ///< a = peer rank, b = packet seq (checksum fault dropped)
  kCriDrain,    ///< a = instance index, b = batch size (packets+completions)
  kPeerSuspect, ///< a = peer rank, b = 1 entered suspect / 0 recovered
  kPeerDead,    ///< a = peer rank, b = detection latency (ms)
  kCommRevoke,  ///< a = communicator id, b = posted receives failed
  kOverloadShed,   ///< a = source rank, b = packet seq (admission drop)
  kOverloadLevel,  ///< a = new degradation level, b = previous level
  kOverloadPause,  ///< a = peer rank, b = 1 paused / 0 resumed (kQueue)
  kCancel,         ///< a = peer rank (+1, 0 = ANY), b = tag
  kDeadline,       ///< a = peer rank (+1, 0 = ANY), b = tag
  kCollOp,         ///< a = collective op id (coll::detail), b = tag lane
};

const char* event_name(Event e) noexcept;

/// Per-thread attribution for exported traces: the recording thread's slot
/// (common/thread_slot.hpp), or kNoTraceTid for unregistered threads.
inline constexpr std::uint16_t kNoTraceTid = 0xFFFF;

struct Entry {
  std::uint64_t timestamp_ns = 0;
  Event event = Event::kNone;
  std::uint16_t tid = kNoTraceTid;  ///< fits the struct's former padding
  std::uint32_t a = 0;
  std::uint32_t b = 0;
};

class Tracer {
 public:
  /// Capacity is rounded up to a power of two; 0 keeps tracing compiled
  /// but permanently disabled (no ring allocated).
  explicit Tracer(std::size_t capacity = 0);

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Toggle recording. No-op (stays disabled) when capacity is 0.
  void enable(bool on) noexcept {
    enabled_.store(on && capacity_ != 0, std::memory_order_relaxed);
  }
  bool enabled() const noexcept { return enabled_.load(std::memory_order_relaxed); }

  /// Record one event (thread-safe, wait-free). Dropped without trace if
  /// the ring has wrapped onto a slot whose writer is still mid-flight —
  /// the entry a full ring would have overwritten moments later anyway.
  void record(Event event, std::uint32_t a = 0, std::uint32_t b = 0) noexcept;

  /// Chronological copy of the surviving entries. Exact only when no
  /// thread is concurrently recording (entries mid-write may be skipped).
  std::vector<Entry> snapshot() const;

  /// Human-readable dump of snapshot().
  void dump(std::ostream& os) const;

  std::uint64_t recorded() const noexcept {
    return next_.load(std::memory_order_relaxed);
  }
  std::size_t capacity() const noexcept { return capacity_; }

 private:
  struct Slot {
    std::atomic<std::uint64_t> sequence{0};  ///< odd while being written
    Entry entry{};
  };

  const std::size_t capacity_;  // power of two (or 0)
  const std::size_t mask_;
  std::vector<Slot> slots_;
  std::atomic<bool> enabled_{false};
  alignas(kCacheLine) std::atomic<std::uint64_t> next_{0};
};

}  // namespace fairmpi::trace
