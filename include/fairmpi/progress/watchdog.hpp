// Progress-engine watchdog: detects instances that stop completing.
//
// A CRI whose RX ring holds packets but whose consumption frontier is
// frozen is stalled — its dedicated thread died, a progress holder is
// wedged, or flow control deadlocked. Likewise a rendezvous transfer
// pending far past its expected lifetime (orphaned CRI on the peer, lost
// protocol packet past retry budget). The watchdog detects both from
// existing lock-free instrumentation — NetworkContext::delivered() and
// MpscRing::size_approx() — so the packet hot path carries zero extra
// accounting.
//
// Escalation ladder per stalled object, once per stall episode:
//   1. spc::Counter::kWatchdogStalls
//   2. trace::Event::kWatchdogStall
//   3. the rank's error sink (common::Error, typed)
//
// Lock discipline: poll() try-locks its own state (rank kWatchdog, 42) so
// concurrent progress threads never convoy on it, and may acquire the
// rendezvous registries (rank 50) while held — never any CRI or match lock.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "fairmpi/common/error.hpp"
#include "fairmpi/common/spinlock.hpp"
#include "fairmpi/cri/cri.hpp"
#include "fairmpi/debug/lockcheck.hpp"
#include "fairmpi/debug/thread_safety.hpp"
#include "fairmpi/spc/spc.hpp"
#include "fairmpi/trace/trace.hpp"

namespace fairmpi::progress {

/// Extra stall sources the owning rank contributes (stuck rendezvous);
/// called with the watchdog lock held, so implementations may take locks
/// ranked above kWatchdog only.
class StallProbe {
 public:
  virtual ~StallProbe() = default;
  /// Report objects pending since before `horizon_ns` (escalating each
  /// through counters/trace/sink itself); returns how many were flagged.
  virtual std::size_t scan_stalled(std::uint64_t now_ns,
                                   std::uint64_t horizon_ns) = 0;
};

class Watchdog {
 public:
  /// @param interval_ns  min time between sweeps (0 = every poll; ~0 = off)
  /// @param stall_sweeps consecutive frozen-backlog sweeps before escalation
  /// @param rndv_stall_ns age threshold handed to the StallProbe
  Watchdog(cri::CriPool& pool, spc::CounterSet& counters, trace::Tracer& tracer,
           std::uint64_t interval_ns, int stall_sweeps, std::uint64_t rndv_stall_ns);

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  void set_error_sink(common::ErrorSink sink, void* user, int rank) noexcept {
    sink_ = sink;
    sink_user_ = user;
    rank_ = rank;
  }
  void set_stall_probe(StallProbe* probe) noexcept { probe_ = probe; }

  /// ft attribution: point at the failure detector's suspect hint so a
  /// stall escalation can name the peer the detector currently suspects
  /// (instead of peer = -1, "something is stuck but I don't know who").
  /// Install before traffic starts; the hint itself is a lock-free atomic.
  void set_suspect_hint(const std::atomic<int>* hint) noexcept {
    suspect_hint_ = hint;
  }

  /// One watchdog check; returns the number of stalls escalated (0 almost
  /// always — including when the interval has not elapsed or another
  /// thread holds the sweep lock).
  std::size_t poll(std::uint64_t now_ns);

  /// Stall episodes escalated so far (test hook).
  std::uint64_t stalls_flagged() const noexcept {
    return stalls_.load(std::memory_order_relaxed);
  }

 private:
  struct InstanceState {
    std::uint64_t last_consumed = 0;
    int strikes = 0;
    bool escalated = false;  ///< one report per stall episode
  };

  cri::CriPool& pool_;
  spc::CounterSet& spc_;
  trace::Tracer& tracer_;
  const std::uint64_t interval_ns_;
  const int stall_sweeps_;
  const std::uint64_t rndv_stall_ns_;

  common::ErrorSink sink_ = nullptr;
  void* sink_user_ = nullptr;
  int rank_ = -1;
  StallProbe* probe_ = nullptr;
  const std::atomic<int>* suspect_hint_ = nullptr;  ///< ft detector's, or null

  std::atomic<std::uint64_t> last_sweep_ns_{0};
  RankedLock<Spinlock> lock_{debug::LockRank::kWatchdog, "progress.watchdog"};
  std::vector<InstanceState> instances_ FAIRMPI_GUARDED_BY(lock_);
  std::atomic<std::uint64_t> stalls_{0};
};

}  // namespace fairmpi::progress
