// The progress engine (§II-B, §III-E, Algorithm 2).
//
// Two designs, selectable at runtime:
//
//   * kSerial — the traditional Open MPI scheme: a single thread at a time
//     may progress communications. A thread that finds the engine busy
//     returns immediately (as opal_progress does under THREAD_MULTIPLE);
//     the holder sweeps every CRI. Message extraction is limited to the
//     power of one thread.
//
//   * kConcurrent — Algorithm 2: every thread may progress. A thread
//     try-locks its *own* instance first (per the pool's assignment
//     policy); only when that instance yields no completions does it sweep
//     the other instances round-robin, which both avoids convoying and
//     guarantees that orphaned instances (e.g. whose dedicated thread
//     exited) are still progressed eventually.
#pragma once

#include <atomic>
#include <cstdint>

#include "fairmpi/common/align.hpp"
#include "fairmpi/common/spinlock.hpp"
#include "fairmpi/cri/cri.hpp"
#include "fairmpi/debug/lockcheck.hpp"
#include "fairmpi/fabric/fabric.hpp"
#include "fairmpi/spc/spc.hpp"

namespace fairmpi::progress {

enum class ProgressMode {
  kSerial,
  kConcurrent,
};

const char* progress_mode_name(ProgressMode m) noexcept;

/// Where extracted traffic goes: implemented by core::Rank, which dispatches
/// packets to the matching engine and completions to their owners.
class PacketSink {
 public:
  virtual ~PacketSink() = default;
  /// Handle one incoming packet; returns number of user-visible completions.
  virtual std::size_t handle_packet(fabric::Packet&& pkt) = 0;
  /// Handle one completion-queue event; returns completions (usually 1).
  virtual std::size_t handle_completion(const fabric::Completion& c) = 0;
};

class ProgressEngine {
 public:
  /// @param batch  max packets drained from one RX ring per visit, bounding
  ///               lock hold time.
  ProgressEngine(cri::CriPool& pool, PacketSink& sink, ProgressMode mode,
                 spc::CounterSet& counters, int batch = 64);

  ProgressEngine(const ProgressEngine&) = delete;
  ProgressEngine& operator=(const ProgressEngine&) = delete;

  ProgressMode mode() const noexcept { return mode_; }

  /// One progress call. Returns the number of completions harvested
  /// (0 does not imply quiescence — the engine may have been busy).
  std::size_t progress();

  /// Drain one instance's CQ and RX ring. The instance lock must be held by
  /// the caller. Exposed for the RMA flush path, which polls its own
  /// instance directly (as btl-level flush does in Open MPI).
  std::size_t progress_instance_locked(cri::CommResourceInstance& inst);

 private:
  std::size_t progress_serial();
  std::size_t progress_concurrent();

  cri::CriPool& pool_;
  PacketSink& sink_;
  const ProgressMode mode_;
  spc::CounterSet& spc_;
  const int batch_;
  /// Guard for the serial design; try-lock only, FIFO irrelevant since
  /// non-holders bail out. Lowest rank in the hierarchy: instance and
  /// match locks are acquired under it, never the reverse.
  RankedLock<Spinlock> serial_gate_{LockRank::kProgressGate, "progress.serial-gate"};
};

}  // namespace fairmpi::progress
