// The progress engine (§II-B, §III-E, Algorithm 2).
//
// Two designs, selectable at runtime:
//
//   * kSerial — the traditional Open MPI scheme: a single thread at a time
//     may progress communications. A thread that finds the engine busy
//     returns immediately (as opal_progress does under THREAD_MULTIPLE);
//     the holder sweeps every CRI. Message extraction is limited to the
//     power of one thread.
//
//   * kConcurrent — Algorithm 2: every thread may progress. A thread
//     try-locks its *own* instance first (per the pool's assignment
//     policy); only when that instance yields no completions does it sweep
//     the other instances round-robin, which both avoids convoying and
//     guarantees that orphaned instances (e.g. whose dedicated thread
//     exited) are still progressed eventually.
// Lock-scope discipline: progress drains an instance's CQ and RX ring into
// stack buffers *while holding the CRI lock*, then releases it and hands the
// batch to the sink (matching, completion owners) lock-free. The instance
// lock therefore covers only ring pops — a few hundred ns for a full batch —
// instead of the whole matching pipeline, which is where Algorithm 2's
// try-lock sweep was previously losing its concurrency. Dispatch order
// within a batch is preserved (completions first, packets in arrival
// order); cross-batch interleaving with other progress threads is exactly
// as arbitrary as the fabric already is, and the matching engine's sequence
// validation owns ordering correctness.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>

#include "fairmpi/common/align.hpp"
#include "fairmpi/common/spinlock.hpp"
#include "fairmpi/cri/cri.hpp"
#include "fairmpi/debug/lockcheck.hpp"
#include "fairmpi/debug/thread_safety.hpp"
#include "fairmpi/fabric/fabric.hpp"
#include "fairmpi/spc/spc.hpp"
#include "fairmpi/trace/trace.hpp"

namespace fairmpi::progress {

enum class ProgressMode {
  kSerial,
  kConcurrent,
};

const char* progress_mode_name(ProgressMode m) noexcept;

/// Where extracted traffic goes: implemented by core::Rank, which dispatches
/// packets to the matching engine and completions to their owners.
class PacketSink {
 public:
  virtual ~PacketSink() = default;
  /// Handle one incoming packet; returns number of user-visible completions.
  virtual std::size_t handle_packet(fabric::Packet&& pkt) = 0;
  /// Handle one completion-queue event; returns completions (usually 1).
  virtual std::size_t handle_completion(const fabric::Completion& c) = 0;
};

class ProgressEngine {
 public:
  /// @param batch  max packets drained from one RX ring per visit, bounding
  ///               lock hold time.
  /// @param tracer optional event ring: non-empty drains are recorded as
  ///               kCriDrain (a = instance id, b = batch size) so exported
  ///               traces get one lane per CRI.
  ProgressEngine(cri::CriPool& pool, PacketSink& sink, ProgressMode mode,
                 spc::CounterSet& counters, int batch = 64,
                 trace::Tracer* tracer = nullptr);

  ProgressEngine(const ProgressEngine&) = delete;
  ProgressEngine& operator=(const ProgressEngine&) = delete;

  ProgressMode mode() const noexcept { return mode_; }

  /// One progress call. Returns the number of completions harvested
  /// (0 does not imply quiescence — the engine may have been busy).
  std::size_t progress();

  /// Drain one instance's CQ and RX ring and dispatch inline. The instance
  /// lock must be held by the caller (dispatch therefore runs under it —
  /// unavoidable here). Exposed for the RMA flush path, which polls its own
  /// instance directly (as btl-level flush does in Open MPI).
  std::size_t progress_instance_locked(cri::CommResourceInstance& inst)
      FAIRMPI_REQUIRES(inst.lock());

  /// Hard cap on one drain batch (the stack buffer size); the runtime
  /// `batch` knob is clamped to it.
  static constexpr std::size_t kMaxDrainBatch = 64;

 private:
  /// One instance visit's haul, staged on the caller's stack so dispatch
  /// can happen after the instance lock is dropped.
  struct DrainBatch {
    std::array<fabric::Completion, kMaxDrainBatch> comps;
    std::array<fabric::Packet, kMaxDrainBatch> pkts;
    std::size_t n_comps = 0;
    std::size_t n_pkts = 0;
  };

  /// Pop up to a batch of completions + packets. Instance lock held.
  void drain_locked(cri::CommResourceInstance& inst, DrainBatch& b)
      FAIRMPI_REQUIRES(inst.lock());
  /// Observability bookkeeping for one finished drain visit (lock already
  /// released): per-instance counters + the kCriDrain trace event.
  void note_drain(cri::CommResourceInstance& inst, const DrainBatch& b, bool sweep);
  /// Hand a drained batch to the sink; returns completions. No locks held
  /// (the sink takes the match lock itself).
  std::size_t dispatch(DrainBatch& b);

  std::size_t progress_serial();
  std::size_t progress_concurrent();

  cri::CriPool& pool_;
  PacketSink& sink_;
  const ProgressMode mode_;
  spc::CounterSet& spc_;
  const int batch_;
  trace::Tracer* tracer_;
  /// Guard for the serial design; try-lock only, FIFO irrelevant since
  /// non-holders bail out. Lowest rank in the hierarchy: instance and
  /// match locks are acquired under it, never the reverse.
  RankedLock<Spinlock> serial_gate_{LockRank::kProgressGate, "progress.serial-gate"};
};

}  // namespace fairmpi::progress
