// Lock-contention profiler (observability layer; DESIGN.md §5d).
//
// Table II explains Fig. 3 by *attributing* time: out-of-sequence counts and
// matching time name the mechanism behind the rate curves. The same question
// recurs for every lock in the engine — "which lock class is the engine
// actually waiting on?" — and aggregate SPCs cannot answer it (they count
// one CRI wait metric, attributed to nothing). This profiler attributes
// acquire-wait cycles and try-lock failures to *lock classes* — the same
// (rank, name) identity the lock-rank validator uses — so a multirate run
// can report, e.g., that 80% of blocked time sits on `cri.instance` under
// serial progress and migrates to `match.engine` once CRIs are replicated.
//
// Design (mirrors the sharded SPC CounterSet):
//   * process-global registry of lock classes (RankedLock instances cache
//     their interned id, so steady state never re-interns);
//   * per-thread shards (common/thread_slot.hpp): the owning thread writes
//     its cells with plain relaxed stores, snapshot() sums across shards;
//     threads past the slot registry share one overflow shard with real
//     RMWs — correct, just contended;
//   * wait time is measured in TSC cycles (common/timing.hpp CycleClock)
//     and converted to ns only when a snapshot is rendered.
//
// Disabled-cost policy: everything is gated on one process-global relaxed
// load (enabled()). RankedLock's fast paths test it before touching any
// profiler state, so with FAIRMPI_OBS unset the engine pays one predicted-
// not-taken branch per lock operation — benchmarked at noise level by
// BM_RankedLockObs{Off,On} in bench_ablation_locks.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "fairmpi/common/align.hpp"

namespace fairmpi::obs {

/// Master switch for the observability layer (lock-contention profiling and
/// per-CRI utilization). Off by default; Universe flips it on when
/// Config::obs_enabled (cvar `obs`, env FAIRMPI_OBS=1) is set. Process-
/// global and sticky by design: lock classes are process-global (RankedLock
/// exists below any Universe), so the profile is too.
namespace detail {
inline std::atomic<bool> g_enabled{false};
}  // namespace detail

inline bool enabled() noexcept {
  // lint: allow(relaxed-sync) pure on/off gate; profiler cells are
  // independently synchronized (atomics) and tolerate a stale epoch.
  return detail::g_enabled.load(std::memory_order_relaxed);
}
void set_enabled(bool on) noexcept;

/// Upper bound on distinct lock classes (the engine uses ~12; tests mint a
/// few more). Interning past the cap returns kNoContentionClass and those
/// locks simply go unprofiled — never an abort, observability must not take
/// the engine down.
inline constexpr int kMaxContentionClasses = 64;
inline constexpr std::uint16_t kNoContentionClass = 0xFFFF;

/// Intern a lock class by (rank, name). Repeated interning of the same pair
/// returns the same id. Cheap but not free (linear scan under a lock) —
/// callers cache the id (RankedLock does).
std::uint16_t intern_contention_class(std::uint16_t rank, const char* name) noexcept;

// --- hot-path hooks (call only when enabled(); cls may be
//     kNoContentionClass, in which case the call is a no-op) ---

/// A successful acquisition that never waited (a lock() whose first probe
/// succeeded, or a successful try_lock()).
void note_uncontended_acquire(std::uint16_t cls) noexcept;
/// A blocking lock() that had to wait `wait_cycles` TSC cycles.
void note_contended_acquire(std::uint16_t cls, std::uint64_t wait_cycles) noexcept;
/// A failed try_lock() probe (Algorithm 2's skip).
void note_trylock_fail(std::uint16_t cls) noexcept;

// --- reporting (off-path) ---

/// Per-class totals at a point in time. wait_ns is already converted from
/// cycles.
struct ClassContention {
  std::string name;
  std::uint16_t rank = 0;
  std::uint64_t acquires = 0;       ///< successful acquisitions, total
  std::uint64_t contended = 0;      ///< ... of which had to wait
  std::uint64_t wait_ns = 0;        ///< total blocked time
  std::uint64_t trylock_fails = 0;  ///< failed try_lock probes
};

/// Sum over all shards for every interned class, in intern order. Classes
/// with no recorded activity are included (all-zero rows), so reports can
/// distinguish "never contended" from "not instrumented".
std::vector<ClassContention> contention_snapshot();

/// Zero every shard cell (test isolation only; racing writers may survive
/// into the next epoch, exactly like spc::CounterSet::reset's caveat).
void reset_contention_for_test() noexcept;

}  // namespace fairmpi::obs
