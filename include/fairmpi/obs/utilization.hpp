// Per-CRI utilization counters (observability layer; DESIGN.md §5d).
//
// Algorithm 1 (instance assignment) and Algorithm 2 (own-instance-first
// progress with a try-lock sweep) make claims about *which instance* work
// lands on: dedicated assignment should keep every thread on its own CRI,
// the sweep should only touch siblings when the own instance is dry, and
// orphaned instances must still drain. The aggregate SPCs cannot confirm
// any of that — they sum over instances. These counters resolve the
// per-instance axis: injections and extractions per CRI show the load
// balance, own-instance try-lock misses count Alg. 2 skips at their
// source, orphan sweeps count cross-instance rescues, and the drain-batch
// histogram shows whether progress harvests singles or bursts.
//
// Writers run under (or adjacent to) the instance lock on already-owned
// cache lines, and every update is gated on obs::enabled(), so the
// disabled cost is one predicted branch per drain/injection.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>

#include "fairmpi/common/align.hpp"
#include "fairmpi/obs/contention.hpp"

namespace fairmpi::obs {

/// Drain-batch histogram buckets: batch sizes 1, 2, 3-4, 5-8, 9-16, 17-32,
/// 33+ (the progress engine caps a batch at 64). Empty visits are counted
/// in drain_visits but not bucketed.
inline constexpr int kDrainHistBuckets = 7;

/// Submission-ring flush-batch histogram reuses the drain bucket layout
/// (1, 2, 3-4, 5-8, 9-16, 17-32, 33+): a flush retires at most
/// ring-capacity descriptors, and the interesting question — does the
/// combining funnel retire singles or bursts? — has the same shape.
inline constexpr int kSubmitHistBuckets = kDrainHistBuckets;

/// Plain-value snapshot row for one instance (see InstanceCounters).
struct InstanceUtilization {
  std::uint64_t injections = 0;
  std::uint64_t packets_drained = 0;
  std::uint64_t completions_drained = 0;
  std::uint64_t own_trylock_misses = 0;
  std::uint64_t orphan_sweeps = 0;
  std::uint64_t drain_visits = 0;
  std::array<std::uint64_t, kDrainHistBuckets> drain_hist{};
  // Submission-ring telemetry (DESIGN.md §5f).
  std::uint64_t submit_claimed = 0;      ///< ring slots claimed by producers
  std::uint64_t submit_doorbells = 0;    ///< batched doorbell rings
  std::uint64_t submit_cas_retries = 0;  ///< producer tail-CAS collisions
  std::array<std::uint64_t, kSubmitHistBuckets> submit_flush_hist{};
};

/// The live counters, one per CommResourceInstance. Multiple threads touch
/// an instance over its lifetime (and sweeps read concurrently), so cells
/// are relaxed atomics; fetch_add is fine — the updates sit on lines the
/// lock holder already owns.
class alignas(kCacheLine) InstanceCounters {
 public:
  /// One packet handed to this instance's endpoints (instance lock held).
  void note_injection() noexcept {
    if (!enabled()) return;
    injections_.fetch_add(1, std::memory_order_relaxed);
  }

  /// One drain visit that popped `n_pkts` packets and `n_comps`
  /// completions. `sweep` marks a non-owner visit (Alg. 2's rescue path).
  void note_drain(std::size_t n_pkts, std::size_t n_comps, bool sweep) noexcept {
    if (!enabled()) return;
    drain_visits_.fetch_add(1, std::memory_order_relaxed);
    const std::size_t total = n_pkts + n_comps;
    if (total == 0) return;
    packets_drained_.fetch_add(n_pkts, std::memory_order_relaxed);
    completions_drained_.fetch_add(n_comps, std::memory_order_relaxed);
    drain_hist_[bucket(total)].fetch_add(1, std::memory_order_relaxed);
    if (sweep) orphan_sweeps_.fetch_add(1, std::memory_order_relaxed);
  }

  /// A thread's try_lock on its OWN instance failed (Alg. 2 line 1 miss).
  void note_own_trylock_miss() noexcept {
    if (!enabled()) return;
    own_trylock_misses_.fetch_add(1, std::memory_order_relaxed);
  }

  /// One submission-ring slot claimed by a producer (lock-free path taken),
  /// with the CAS collisions it took to claim it and whether this claim
  /// completed a doorbell batch.
  void note_submit_claim(std::uint32_t cas_retries, bool rang_doorbell) noexcept {
    if (!enabled()) return;
    submit_claimed_.fetch_add(1, std::memory_order_relaxed);
    if (cas_retries != 0) submit_cas_retries_.fetch_add(cas_retries, std::memory_order_relaxed);
    if (rang_doorbell) submit_doorbells_.fetch_add(1, std::memory_order_relaxed);
  }

  /// One flush under the instance lock that retired `n` descriptors.
  void note_submit_flush(std::size_t n) noexcept {
    if (!enabled() || n == 0) return;
    submit_flush_hist_[bucket(n)].fetch_add(1, std::memory_order_relaxed);
  }

  InstanceUtilization snapshot() const noexcept {
    InstanceUtilization u;
    u.injections = injections_.load(std::memory_order_relaxed);
    u.packets_drained = packets_drained_.load(std::memory_order_relaxed);
    u.completions_drained = completions_drained_.load(std::memory_order_relaxed);
    u.own_trylock_misses = own_trylock_misses_.load(std::memory_order_relaxed);
    u.orphan_sweeps = orphan_sweeps_.load(std::memory_order_relaxed);
    u.drain_visits = drain_visits_.load(std::memory_order_relaxed);
    for (int i = 0; i < kDrainHistBuckets; ++i) {
      u.drain_hist[static_cast<std::size_t>(i)] =
          drain_hist_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
    }
    u.submit_claimed = submit_claimed_.load(std::memory_order_relaxed);
    u.submit_doorbells = submit_doorbells_.load(std::memory_order_relaxed);
    u.submit_cas_retries = submit_cas_retries_.load(std::memory_order_relaxed);
    for (int i = 0; i < kSubmitHistBuckets; ++i) {
      u.submit_flush_hist[static_cast<std::size_t>(i)] =
          submit_flush_hist_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
    }
    return u;
  }

  static int bucket(std::size_t total) noexcept {
    if (total <= 2) return static_cast<int>(total) - 1;  // 1, 2
    int b = 2;
    for (std::size_t bound = 4; bound < total && b < kDrainHistBuckets - 1; bound <<= 1) {
      ++b;
    }
    return b;
  }

 private:
  std::atomic<std::uint64_t> injections_{0};
  std::atomic<std::uint64_t> packets_drained_{0};
  std::atomic<std::uint64_t> completions_drained_{0};
  std::atomic<std::uint64_t> own_trylock_misses_{0};
  std::atomic<std::uint64_t> orphan_sweeps_{0};
  std::atomic<std::uint64_t> drain_visits_{0};
  std::array<std::atomic<std::uint64_t>, kDrainHistBuckets> drain_hist_{};
  std::atomic<std::uint64_t> submit_claimed_{0};
  std::atomic<std::uint64_t> submit_doorbells_{0};
  std::atomic<std::uint64_t> submit_cas_retries_{0};
  std::array<std::atomic<std::uint64_t>, kSubmitHistBuckets> submit_flush_hist_{};
};

}  // namespace fairmpi::obs
