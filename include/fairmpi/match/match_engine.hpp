// OB1-style per-communicator matching engine (§II-C, §III-F of the paper).
//
// One MatchEngine per communicator, guarded by one lock — matching is "the
// only strictly serial operation in MPI two-sided communication". Creating
// one communicator per thread pair therefore parallelizes matching, which
// is exactly how the paper simulates concurrent matching (Fig. 3c).
//
// Pipeline for an incoming envelope (under the lock):
//   1. sequence validation — per (src) expected counter; out-of-sequence
//      arrivals are buffered. Skipped entirely in overtaking mode
//      (`mpi_assert_allow_overtaking`, §IV-D).
//   2. queue search — first posted receive whose (source, tag) filter
//      matches, honouring post order across the per-peer and ANY_SOURCE
//      queues; unmatched messages land in the per-peer unexpected queue.
//
// Allocation discipline (DESIGN.md §5): the steady-state matching path
// never calls the general-purpose allocator.
//   * posted queues are intrusive lists threaded through p2p::Request;
//   * unexpected messages live in pooled nodes (common::SlabPool);
//   * the reorder buffer is a fixed power-of-two ring indexed by
//     `seq & (kReorderWindow-1)` — a std::map spill handles the rare
//     arrival more than kReorderWindow-1 messages ahead.
//
// SPCs record out-of-sequence counts, match time and queue depths — the
// counters behind the paper's Table II.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "fairmpi/common/intrusive_list.hpp"
#include "fairmpi/common/slab_pool.hpp"
#include "fairmpi/common/spinlock.hpp"
#include "fairmpi/debug/lockcheck.hpp"
#include "fairmpi/debug/thread_safety.hpp"
#include "fairmpi/fabric/wire.hpp"
#include "fairmpi/overload/overload.hpp"
#include "fairmpi/p2p/rendezvous.hpp"
#include "fairmpi/p2p/request.hpp"
#include "fairmpi/spc/spc.hpp"
#include "fairmpi/trace/trace.hpp"

namespace fairmpi::match {

/// Receiver-side admission verdict for one incoming eager/RTS packet,
/// reported back to the rank so the ack-vs-NACK decision happens *after*
/// matching (DESIGN.md §5h): acking a shed packet would silently retire the
/// sender's reliability entry and the overload would never surface typed.
enum class Admission : std::uint8_t {
  kAdmitted = 0,   ///< delivered, parked, or queued unexpected — ack it
  kDuplicate,      ///< duplicate of an already-accepted packet — re-ack it
  kShed,           ///< dropped at admission (first time) — NACK it
  kShedDuplicate,  ///< retransmit of a shed packet — NACK again, no recount
  kDeferred,       ///< kQueue at cap on a reliable fabric — answer nothing;
                   ///< the sender's retransmit clock re-presents the packet
};

/// Reorder window per (comm, src) stream: out-of-sequence arrivals up to
/// this many messages ahead park in a ring slot; anything further spills to
/// an ordered map. Power of two so the slot index is `seq & mask`. 64 covers
/// the deepest interleave the multi-context fabric produces in the paper's
/// configurations (<= 20 contexts) with headroom.
inline constexpr std::uint32_t kReorderWindow = 64;
static_assert((kReorderWindow & (kReorderWindow - 1)) == 0);

/// Exactly-once filter for *overtaking* mode on a lossy fabric. Without
/// sequence validation every arrival is matchable, so a duplicated or
/// retransmitted packet would deliver twice; this tracker records which
/// sequence numbers have been seen per (comm, src) stream. Exact, not
/// probabilistic: `floor_` advances over the contiguous fully-seen prefix
/// (everything below it is seen), a circular bitmap covers the next kWindow
/// sequence numbers, and arrivals beyond the window — possible only after
/// deep loss — spill to an ordered set that migrates back into the window
/// as the floor advances. Guarded by the owning engine's match lock.
/// Sequence distances are compared as int32, like the reorder path: streams
/// are assumed never to span more than 2^31 outstanding messages.
class SeenTracker {
 public:
  static constexpr std::uint32_t kWindow = 1024;

  /// Mark `seq` seen; true when this is its first delivery.
  bool mark(std::uint32_t seq) {
    const std::int32_t delta = static_cast<std::int32_t>(seq - floor_);
    if (delta < 0) return false;  // below the floor: seen long ago
    if (static_cast<std::uint32_t>(delta) >= kWindow) {
      // Beyond the window: the stream has a loss hole >= kWindow deep.
      // lint: allow(hotpath-alloc) deep-loss spill, lossy-fabric mode only
      return far_.insert(seq).second;
    }
    if (test(seq)) return false;
    set(seq);
    while (test(floor_)) {
      clear(floor_);
      ++floor_;
      // Far entries the advance just brought into range join the window.
      while (!far_.empty()) {
        const std::uint32_t f = *far_.begin();
        if (static_cast<std::int32_t>(f - floor_) >= static_cast<std::int32_t>(kWindow)) break;
        set(f);
        far_.erase(far_.begin());
      }
    }
    return true;
  }

 private:
  bool test(std::uint32_t s) const noexcept {
    return (bits_[(s % kWindow) / 64] >> (s % 64)) & 1;
  }
  void set(std::uint32_t s) noexcept {
    bits_[(s % kWindow) / 64] |= std::uint64_t{1} << (s % 64);
  }
  void clear(std::uint32_t s) noexcept {
    bits_[(s % kWindow) / 64] &= ~(std::uint64_t{1} << (s % 64));
  }

  std::uint32_t floor_ = 0;  ///< every seq below this has been seen
  std::array<std::uint64_t, kWindow / 64> bits_{};
  std::set<std::uint32_t> far_;  ///< seen seqs >= floor_ + kWindow
};

class MatchEngine : public p2p::CancelScope {
 public:
  /// @param num_ranks   ranks in the communicator's universe (peer table size)
  /// @param allow_overtaking  skip sequence validation (MPI info key
  ///                          mpi_assert_allow_overtaking)
  /// @param counters    the owning rank's SPC set
  /// @param reliable    the fabric may duplicate/retransmit: discard repeated
  ///                    deliveries (counted as kDupDiscards) instead of
  ///                    treating a repeated sequence number as corruption
  MatchEngine(int num_ranks, bool allow_overtaking, spc::CounterSet& counters,
              bool reliable = false);

  MatchEngine(const MatchEngine&) = delete;
  MatchEngine& operator=(const MatchEngine&) = delete;
  ~MatchEngine() override;

  /// Handle one incoming eager packet (called from the progress engine).
  /// Returns the number of receive requests completed (out-of-sequence
  /// drains can complete several at once). When `admission` is non-null it
  /// receives the overload verdict for *this* packet (ack vs. NACK — see
  /// Admission above); without a governor installed it is always
  /// kAdmitted/kDuplicate, preserving the historical contract.
  std::size_t incoming(fabric::Packet&& pkt, Admission* admission = nullptr);

  /// Post a receive. Returns true when the request matched an unexpected
  /// message and completed immediately.
  bool post(p2p::Request* req);

  /// Non-destructive matching query (MPI_Iprobe semantics): is there an
  /// unexpected message a receive with these filters would match right
  /// now? Fills `status` (source, tag, size) on success. Messages parked
  /// in the reorder buffer are not yet matchable and are not reported.
  bool probe(int src, int tag, p2p::Status* status);

  /// ft propagation: `src` is confirmed dead. Fails every source-specific
  /// posted receive from it with kPeerFailed, drops its parked
  /// reorder-ring/spill packets (they can never become in-order — the
  /// stream is severed), and marks the source dead so *future* posted
  /// receives filtered on it fail immediately once no matchable unexpected
  /// message remains. Already-arrived unexpected messages stay matchable
  /// (they were delivered by the wire before the death). ANY_SOURCE
  /// receives are untouched — another peer may still satisfy them.
  /// Returns the number of receives failed.
  std::size_t fail_source(int src);

  /// Communicator revocation: fail every posted receive — source-specific
  /// and ANY_SOURCE — with kCommRevoked, and latch the engine revoked so a
  /// concurrently posting thread that read the CommState flag early fails
  /// under the match lock instead of enqueueing forever. Subsequent
  /// incoming packets are dropped. Returns the number failed.
  std::size_t fail_all_posted();

  /// Diagnostics. Each takes lock_, so the count is internally consistent,
  /// but may of course be stale by the time the caller reads it; exact only
  /// when externally quiesced. Safe to call concurrently with matching.
  /// unexpected_count is O(1): a counter maintained under lock_ on every
  /// enqueue/dequeue (the admission watermark check must be hot-path safe).
  std::size_t unexpected_count() const noexcept;
  std::size_t reorder_buffered() const noexcept;
  std::size_t posted_count() const noexcept;

  /// Lock-free unexpected total (relaxed mirror of the counter above) for
  /// the governor's progress-path pressure sampling.
  std::size_t unexpected_count_relaxed() const noexcept {
    return unexpected_mirror_.load(std::memory_order_relaxed);
  }

  /// Install overload admission (done once by the owning Rank before any
  /// traffic; null or a governor with no caps keeps the engine bit-exact
  /// with the historical behaviour). The tracer, when given, records
  /// kOverloadShed / kOverloadPause events.
  void set_overload(overload::Governor* gov, trace::Tracer* tracer = nullptr) noexcept {
    gov_ = gov;
    tracer_ = tracer;
  }

  /// Progress-driven deadline sweep: settle every posted receive whose
  /// deadline passed as kDeadlineExceeded and unlink it. Gated by an
  /// atomic min-deadline, so a stream with no deadlines costs one relaxed
  /// load per call. Returns the number of receives expired.
  std::size_t expire_deadlines(std::uint64_t now_ns);

  /// The expire sweep's gate value (~0 = no posted deadline), for the
  /// rank-level sweep scheduler.
  std::uint64_t next_deadline_relaxed() const noexcept {
    return next_deadline_.load(std::memory_order_relaxed);
  }

  /// p2p::CancelScope: cancel a posted receive. Takes the match lock,
  /// scans the posted queue the request would sit on, and only settles
  /// (kCancelled) while the request is verifiably still linked — so a
  /// cancel racing a matcher can never lose a consumed message.
  bool cancel_request(p2p::Request* req) override;

  bool allow_overtaking() const noexcept { return allow_overtaking_; }

  /// Install the rendezvous observer (must happen before any RndvRts
  /// traffic; done once by the owning Rank at construction).
  void set_rendezvous_hook(p2p::RendezvousHook* hook) noexcept { rndv_hook_ = hook; }

  /// The engine's internal lock, exposed ONLY for the observability
  /// self-check (deterministic contention-profiler exercise: a holder
  /// thread pins the lock while another thread runs a real matching
  /// operation). Not part of the matching API — matching callers never
  /// take this directly.
  RankedLock<Spinlock>& internal_lock() const noexcept FAIRMPI_RETURN_CAPABILITY(lock_) {
    return lock_;
  }

 private:
  /// Pooled node parking one unexpected message. Link hooks are owned by
  /// the match lock, like everything else in here.
  struct Unexpected {
    std::uint64_t arrival = 0;
    fabric::Packet pkt;
    Unexpected* prev = nullptr;
    Unexpected* next = nullptr;
  };
  using UnexpectedList =
      common::IntrusiveList<Unexpected, &Unexpected::prev, &Unexpected::next>;
  using PostedList =
      common::IntrusiveList<p2p::Request, &p2p::Request::mq_prev, &p2p::Request::mq_next>;

  /// Fixed-window reorder buffer; lazily allocated on a peer's first
  /// out-of-sequence arrival so in-order streams pay nothing for it.
  /// Invariant: every live entry has seq in (expected, expected + window),
  /// so slot indices never collide and a set `present` bit at
  /// `expected & mask` always belongs to `expected` itself.
  struct ReorderRing {
    std::uint64_t present = 0;  ///< bit i <=> slot i holds a parked packet
    std::array<fabric::Packet, kReorderWindow> slot;
  };
  static_assert(kReorderWindow <= 64, "present bitmap is one word");

  /// Shed-sequence memory depth per peer. A retransmit of a shed packet
  /// must be re-NACKed, not re-acked (an ack silently retires the sender's
  /// tracker entry and the shed never surfaces typed). 64 entries bound the
  /// memory because the sender's reliability_window bounds how many seqs it
  /// can have outstanding against us at once.
  static constexpr std::uint32_t kShedMemory = 64;

  struct PeerState {
    std::uint32_t expected_seq = 0;
    std::unique_ptr<ReorderRing> reorder;             ///< window buffer (lazy)
    std::map<std::uint32_t, fabric::Packet> spill;    ///< beyond-window overflow
    std::unique_ptr<SeenTracker> seen;  ///< dedup, reliable+overtaking only (lazy)
    UnexpectedList unexpected;
    std::size_t unexpected_n = 0;  ///< O(1) depth (admission watermark check)
    PostedList posted;  ///< source-specific posted receives
    bool dead = false;  ///< ft: source confirmed dead (fail_source ran)
    bool paused = false;  ///< overload kQueue: latched over the cap
    std::array<std::uint32_t, kShedMemory> shed_seqs{};  ///< re-NACK ring
    std::uint32_t shed_n = 0;  ///< total sheds (ring write cursor)

    bool was_shed(std::uint32_t seq) const noexcept {
      const std::uint32_t live = shed_n < kShedMemory ? shed_n : kShedMemory;
      for (std::uint32_t i = 0; i < live; ++i) {
        if (shed_seqs[i] == seq) return true;
      }
      return false;
    }
  };

  // The private pipeline below threads a spc::CounterSet::Cursor through so
  // the per-thread counter shard is resolved once per public entry point.

  /// Match one in-order packet against the posted queues; deliver or store
  /// as unexpected. Returns 1 on delivery, 0 otherwise. Lock held.
  /// `direct` marks the packet the caller just received off the wire (not
  /// a reorder-ring drain): only direct packets may be shed, because a
  /// drained packet was already acked when it parked — shedding it now
  /// would be silent loss. `admission` (may be null) reports the verdict.
  std::size_t match_one(spc::CounterSet::Cursor& ctr, fabric::Packet&& pkt,
                        bool direct, Admission* admission) FAIRMPI_REQUIRES(lock_);

  /// Unexpected-queue bookkeeping: per-peer depth, engine total, the
  /// lock-free mirror, and the governor's cross-engine total. Lock held.
  void note_unexpected_add(PeerState& ps) FAIRMPI_REQUIRES(lock_);
  void note_unexpected_sub(PeerState& ps) FAIRMPI_REQUIRES(lock_);

  /// Park an out-of-sequence packet (ring slot or spill map). Lock held.
  void park_out_of_sequence(spc::CounterSet::Cursor& ctr, PeerState& ps,
                            fabric::Packet&& pkt) FAIRMPI_REQUIRES(lock_);

  /// Hand a matched packet to its request: eager payloads are copied and
  /// the request completes; rendezvous RTS envelopes are reported to the
  /// hook (the request completes when the data lands). Lock held.
  void deliver(spc::CounterSet::Cursor& ctr, p2p::Request* req,
               const fabric::Packet& pkt) FAIRMPI_REQUIRES(lock_);

  PeerState& peer(int rank) FAIRMPI_REQUIRES(lock_) {
    return peers_[static_cast<std::size_t>(rank)];
  }

  const bool allow_overtaking_;
  const bool reliable_;
  spc::CounterSet& spc_;
  p2p::RendezvousHook* rndv_hook_ = nullptr;
  overload::Governor* gov_ = nullptr;  ///< admission caps (null = uncapped)
  trace::Tracer* tracer_ = nullptr;    ///< overload event recording (optional)

  /// Acquired under the CRI instance lock on the progress path (rank
  /// kMatch > kCriInstance); never held while acquiring engine resources —
  /// rendezvous sends discovered under it are deferred (p2p/rendezvous.hpp).
  /// (The slab pool's internal lock, rank kSlabPool, is the one exception:
  /// it is a leaf above the whole hierarchy.)
  mutable RankedLock<Spinlock> lock_{LockRank::kMatch, "match.engine"};
  std::vector<PeerState> peers_ FAIRMPI_GUARDED_BY(lock_);
  PostedList posted_any_ FAIRMPI_GUARDED_BY(lock_);  ///< ANY_SOURCE posted receives
  common::SlabPool<Unexpected> unexpected_pool_ FAIRMPI_GUARDED_BY(lock_);
  std::uint64_t post_stamp_ FAIRMPI_GUARDED_BY(lock_) = 0;
  std::uint64_t arrival_stamp_ FAIRMPI_GUARDED_BY(lock_) = 0;
  std::uint64_t reorder_total_ FAIRMPI_GUARDED_BY(lock_) = 0;  ///< ring + spill entries
  std::uint64_t unexpected_total_ FAIRMPI_GUARDED_BY(lock_) = 0;  ///< O(1) count
  bool revoked_ FAIRMPI_GUARDED_BY(lock_) = false;  ///< ft: comm revoked (terminal)
  /// Lock-free mirror of unexpected_total_ (governor pressure sampling).
  std::atomic<std::size_t> unexpected_mirror_{0};
  /// Earliest posted-receive deadline (~0 = none): the expire sweep's
  /// one-relaxed-load gate, maintained on post and recomputed on sweep.
  std::atomic<std::uint64_t> next_deadline_{~std::uint64_t{0}};
};

}  // namespace fairmpi::match
