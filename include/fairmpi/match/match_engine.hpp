// OB1-style per-communicator matching engine (§II-C, §III-F of the paper).
//
// One MatchEngine per communicator, guarded by one lock — matching is "the
// only strictly serial operation in MPI two-sided communication". Creating
// one communicator per thread pair therefore parallelizes matching, which
// is exactly how the paper simulates concurrent matching (Fig. 3c).
//
// Pipeline for an incoming envelope (under the lock):
//   1. sequence validation — per (src) expected counter; out-of-sequence
//      arrivals are buffered in a reorder map (a real allocation on the
//      critical path, as §II-C stresses). Skipped entirely in overtaking
//      mode (`mpi_assert_allow_overtaking`, §IV-D).
//   2. queue search — first posted receive whose (source, tag) filter
//      matches, honouring post order across the per-peer and ANY_SOURCE
//      queues; unmatched messages land in the per-peer unexpected queue.
//
// SPCs record out-of-sequence counts, match time and queue depths — the
// counters behind the paper's Table II.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <vector>

#include "fairmpi/common/spinlock.hpp"
#include "fairmpi/debug/lockcheck.hpp"
#include "fairmpi/fabric/wire.hpp"
#include "fairmpi/p2p/rendezvous.hpp"
#include "fairmpi/p2p/request.hpp"
#include "fairmpi/spc/spc.hpp"

namespace fairmpi::match {

class MatchEngine {
 public:
  /// @param num_ranks   ranks in the communicator's universe (peer table size)
  /// @param allow_overtaking  skip sequence validation (MPI info key
  ///                          mpi_assert_allow_overtaking)
  /// @param counters    the owning rank's SPC set
  MatchEngine(int num_ranks, bool allow_overtaking, spc::CounterSet& counters);

  MatchEngine(const MatchEngine&) = delete;
  MatchEngine& operator=(const MatchEngine&) = delete;

  /// Handle one incoming eager packet (called from the progress engine).
  /// Returns the number of receive requests completed (out-of-sequence
  /// drains can complete several at once).
  std::size_t incoming(fabric::Packet&& pkt);

  /// Post a receive. Returns true when the request matched an unexpected
  /// message and completed immediately.
  bool post(p2p::Request* req);

  /// Non-destructive matching query (MPI_Iprobe semantics): is there an
  /// unexpected message a receive with these filters would match right
  /// now? Fills `status` (source, tag, size) on success. Messages parked
  /// in the reorder buffer are not yet matchable and are not reported.
  bool probe(int src, int tag, p2p::Status* status);

  /// Diagnostics (approximate unless externally quiesced).
  std::size_t unexpected_count() const noexcept;
  std::size_t reorder_buffered() const noexcept;
  std::size_t posted_count() const noexcept;

  bool allow_overtaking() const noexcept { return allow_overtaking_; }

  /// Install the rendezvous observer (must happen before any RndvRts
  /// traffic; done once by the owning Rank at construction).
  void set_rendezvous_hook(p2p::RendezvousHook* hook) noexcept { rndv_hook_ = hook; }

 private:
  struct Unexpected {
    std::uint64_t arrival;
    fabric::Packet pkt;
  };

  struct PeerState {
    std::uint32_t expected_seq = 0;
    std::map<std::uint32_t, fabric::Packet> reorder;  ///< out-of-sequence buffer
    std::deque<Unexpected> unexpected;
    std::deque<p2p::Request*> posted;  ///< source-specific posted receives
  };

  /// Match one in-order packet against the posted queues; deliver or store
  /// as unexpected. Returns 1 on delivery, 0 otherwise. Lock held.
  std::size_t match_one(fabric::Packet&& pkt);

  /// Hand a matched packet to its request: eager payloads are copied and
  /// the request completes; rendezvous RTS envelopes are reported to the
  /// hook (the request completes when the data lands). Lock held.
  void deliver(p2p::Request* req, const fabric::Packet& pkt);

  PeerState& peer(int rank) { return peers_[static_cast<std::size_t>(rank)]; }

  const bool allow_overtaking_;
  spc::CounterSet& spc_;
  p2p::RendezvousHook* rndv_hook_ = nullptr;

  /// Acquired under the CRI instance lock on the progress path (rank
  /// kMatch > kCriInstance); never held while acquiring engine resources —
  /// rendezvous sends discovered under it are deferred (p2p/rendezvous.hpp).
  mutable RankedLock<Spinlock> lock_{LockRank::kMatch, "match.engine"};
  std::vector<PeerState> peers_;
  std::deque<p2p::Request*> posted_any_;  ///< ANY_SOURCE posted receives
  std::uint64_t post_stamp_ = 0;
  std::uint64_t arrival_stamp_ = 0;
  std::uint64_t reorder_total_ = 0;  ///< current total reorder-buffer entries
};

}  // namespace fairmpi::match
