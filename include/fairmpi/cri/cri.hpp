// Communication Resource Instances (§III-B/D, Algorithm 1).
//
// A CRI bundles the resources one thread needs to drive the network — a
// network context (with its RX ring and CQ) plus one endpoint per peer —
// behind a single per-instance lock. The pool replicates CRIs so threads
// can inject and extract concurrently; the assignment policy decides which
// instance a thread uses:
//
//   * kRoundRobin — an atomic circular counter hands out a (probably)
//     different instance on every call: no sustained contention, good load
//     balance, at the price of one atomic per operation and losing
//     instance affinity (Alg. 1, GET-INSTANCE-ID--ROUND-ROBIN).
//   * kDedicated — sticky thread-local binding, first assigned via
//     round-robin: zero contention while #threads <= #instances
//     (Alg. 1, GET-INSTANCE-ID--DEDICATED).
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "fairmpi/common/align.hpp"
#include "fairmpi/common/spinlock.hpp"
#include "fairmpi/debug/lockcheck.hpp"
#include "fairmpi/debug/thread_safety.hpp"
#include "fairmpi/fabric/fabric.hpp"
#include "fairmpi/obs/utilization.hpp"

namespace fairmpi::cri {

/// The per-instance lock type: a spinlock acquired through the lock-rank
/// validator at rank kCriInstance (progress gate < CRI < match).
using InstanceLock = RankedLock<Spinlock>;

enum class Assignment {
  kRoundRobin,
  kDedicated,
};

const char* assignment_name(Assignment a) noexcept;

/// One instance: context + per-peer endpoints + the protection lock.
class CommResourceInstance {
 public:
  CommResourceInstance(int id, fabric::Fabric& fabric, fabric::NetworkContext& ctx)
      : id_(id), ctx_(&ctx) {
    endpoints_.reserve(static_cast<std::size_t>(fabric.num_ranks()));
    for (int peer = 0; peer < fabric.num_ranks(); ++peer) {
      endpoints_.emplace_back(fabric, ctx, peer);
    }
  }

  CommResourceInstance(const CommResourceInstance&) = delete;
  CommResourceInstance& operator=(const CommResourceInstance&) = delete;

  int id() const noexcept { return id_; }
  InstanceLock& lock() noexcept FAIRMPI_RETURN_CAPABILITY(lock_) { return lock_; }

  /// The instance's network context. Deliberately NOT lock-required: the
  /// stall watchdog reads the context's lock-free counters while the
  /// instance is busy (that race is its design, watchdog.cpp), and ring
  /// consumption is governed by the single-consumer contract in
  /// mpsc_ring.hpp rather than a capability the analysis can express.
  fabric::NetworkContext& context() noexcept { return *ctx_; }

  /// Injection endpoint for `peer`. Injection mutates per-endpoint credit
  /// and sequence state, so callers must hold the instance lock.
  fabric::Endpoint& endpoint(int peer) FAIRMPI_REQUIRES(lock_) {
    return endpoints_[static_cast<std::size_t>(peer)];
  }

  /// Per-instance utilization counters (observability; no-ops unless
  /// obs::enabled()). Injection sites and the progress engine feed them.
  obs::InstanceCounters& stats() noexcept { return stats_; }
  const obs::InstanceCounters& stats() const noexcept { return stats_; }

 private:
  const int id_;
  fabric::NetworkContext* ctx_;
  std::vector<fabric::Endpoint> endpoints_ FAIRMPI_GUARDED_BY(lock_);
  InstanceLock lock_{LockRank::kCriInstance, "cri.instance"};
  obs::InstanceCounters stats_;
};

/// The pool of CRIs owned by one rank, plus the "centralized body" (§III-B)
/// that assigns instances to threads.
class CriPool {
 public:
  /// Builds one CRI per context of `rank`'s NIC.
  CriPool(fabric::Fabric& fabric, int rank, Assignment assignment);

  CriPool(const CriPool&) = delete;
  CriPool& operator=(const CriPool&) = delete;

  int size() const noexcept { return static_cast<int>(instances_.size()); }
  Assignment assignment() const noexcept { return assignment_; }

  CommResourceInstance& instance(int i) { return *instances_[static_cast<std::size_t>(i)]; }

  /// Alg. 1 GET-INSTANCE-ID--ROUND-ROBIN: atomic circular counter.
  int next_round_robin() noexcept {
    return static_cast<int>(rr_->fetch_add(1, std::memory_order_relaxed) %
                            static_cast<std::uint32_t>(instances_.size()));
  }

  /// Alg. 1 GET-INSTANCE-ID--DEDICATED: sticky thread-local id, assigned via
  /// round-robin on a thread's first use of this pool.
  int dedicated_id();

  /// The instance id for the calling thread per the configured policy.
  int id_for_thread() {
    return assignment_ == Assignment::kDedicated ? dedicated_id() : next_round_robin();
  }

 private:
  const Assignment assignment_;
  const std::uint64_t pool_key_;  ///< global key for the TLS binding table
  std::vector<std::unique_ptr<CommResourceInstance>> instances_;
  Padded<std::atomic<std::uint32_t>> rr_{};

  static std::atomic<std::uint64_t> next_pool_key_;
};

}  // namespace fairmpi::cri
