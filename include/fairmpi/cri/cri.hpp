// Communication Resource Instances (§III-B/D, Algorithm 1).
//
// A CRI bundles the resources one thread needs to drive the network — a
// network context (with its RX ring and CQ) plus one endpoint per peer —
// behind a single per-instance lock. The pool replicates CRIs so threads
// can inject and extract concurrently; the assignment policy decides which
// instance a thread uses:
//
//   * kRoundRobin — an atomic circular counter hands out a (probably)
//     different instance on every call: no sustained contention, good load
//     balance, at the price of one atomic per operation and losing
//     instance affinity (Alg. 1, GET-INSTANCE-ID--ROUND-ROBIN).
//   * kDedicated — sticky thread-local binding, first assigned by a
//     topology-aware claim scan (nearest-LLC-domain instance first, then
//     any free instance, round-robin once oversubscribed): zero contention
//     while #threads <= #instances (Alg. 1, GET-INSTANCE-ID--DEDICATED),
//     and no cross-domain coherence traffic while the host's topology
//     leaves room.
//
// PR 7 (DESIGN.md §5f) adds the lock-free injection path: each instance
// carries a SubmitRing, and inject() only takes the instance lock when it
// is free — a contended producer instead claims a ring slot with one CAS
// and waits (adaptive backoff, then a profiled blocking acquire) for
// whichever lock holder flushes the ring on its behalf.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "fairmpi/common/align.hpp"
#include "fairmpi/common/backoff.hpp"
#include "fairmpi/common/spinlock.hpp"
#include "fairmpi/debug/lockcheck.hpp"
#include "fairmpi/debug/thread_safety.hpp"
#include "fairmpi/fabric/fabric.hpp"
#include "fairmpi/fabric/submit_ring.hpp"
#include "fairmpi/obs/utilization.hpp"
#include "fairmpi/spc/spc.hpp"

namespace fairmpi::cri {

/// The per-instance lock type: a spinlock acquired through the lock-rank
/// validator at rank kCriInstance (progress gate < CRI < match).
using InstanceLock = RankedLock<Spinlock>;

enum class Assignment {
  kRoundRobin,
  kDedicated,
};

const char* assignment_name(Assignment a) noexcept;

/// One instance: context + per-peer endpoints + the protection lock + the
/// lock-free submission ring. Cache-line aligned so sibling instances in a
/// pool never share a line (placement, DESIGN.md §5f).
class alignas(kCacheLine) CommResourceInstance {
 public:
  /// Default submission-ring depth; overridable per pool (Config).
  static constexpr std::size_t kDefaultSubmitEntries = 256;

  /// Fruitless backoff rounds before a queued producer escalates from
  /// try_lock re-election to a blocking (profiled) acquire. Eight rounds
  /// is the point where Backoff's exponential budget saturates — past it
  /// the wait is scheduler-scale and should be attributed, not hidden.
  static constexpr std::uint32_t kEscalateRounds = 8;

  CommResourceInstance(int id, fabric::Fabric& fabric, fabric::NetworkContext& ctx,
                       std::size_t submit_entries = kDefaultSubmitEntries)
      : id_(id),
        ctx_(&ctx),
        submit_(submit_entries),
        // Topology-aware funnel engagement: on a host with one hardware
        // thread a contended producer can never be drained concurrently
        // (the combiner is descheduled while the producer polls), so the
        // claim/ticket machinery is pure overhead over a futex handoff —
        // measured ~15% multirate regression on the 1-core CI host. An
        // explicitly configured (non-default) ring size opts in
        // unconditionally so tests exercise the funnel everywhere.
        use_funnel_(common::Backoff::spin_profitable() ||
                    submit_entries != kDefaultSubmitEntries) {
    // lint: allow(hotpath-alloc) ctor: endpoint table sized once per instance
    endpoints_.reserve(static_cast<std::size_t>(fabric.num_ranks()));
    for (int peer = 0; peer < fabric.num_ranks(); ++peer) {
      endpoints_.emplace_back(fabric, ctx, peer);
    }
  }

  CommResourceInstance(const CommResourceInstance&) = delete;
  CommResourceInstance& operator=(const CommResourceInstance&) = delete;

  int id() const noexcept { return id_; }
  InstanceLock& lock() noexcept FAIRMPI_RETURN_CAPABILITY(lock_) { return lock_; }

  /// The instance's network context. Deliberately NOT lock-required: the
  /// stall watchdog reads the context's lock-free counters while the
  /// instance is busy (that race is its design, watchdog.cpp), and ring
  /// consumption is governed by the single-consumer contract in
  /// mpsc_ring.hpp rather than a capability the analysis can express.
  fabric::NetworkContext& context() noexcept { return *ctx_; }

  /// Injection endpoint for `peer`. Injection mutates per-endpoint credit
  /// and sequence state, so callers must hold the instance lock.
  fabric::Endpoint& endpoint(int peer) FAIRMPI_REQUIRES(lock_) {
    return endpoints_[static_cast<std::size_t>(peer)];
  }

  /// Per-instance utilization counters (observability; no-ops unless
  /// obs::enabled()). Injection sites and the progress engine feed them.
  obs::InstanceCounters& stats() noexcept { return stats_; }
  const obs::InstanceCounters& stats() const noexcept { return stats_; }

  /// The lock-free submission ring (producer side; see submit_ring.hpp for
  /// the protocol). Exposed for tests/benches; production code goes
  /// through inject()/flush_submissions().
  fabric::SubmitRing& submit_ring() noexcept { return submit_; }

  /// Inject one eager packet toward `dst` without requiring the caller to
  /// hold (or even touch, on the contended path) the instance lock:
  ///
  ///   free lock   -> take it, flush the ring, inject directly
  ///   held lock   -> claim a ring slot (one CAS) and wait on the ticket,
  ///                  re-electing via try_lock (combining funnel) and
  ///                  escalating to a profiled blocking acquire once the
  ///                  adaptive backoff saturates
  ///   full ring   -> blocking acquire (the ring being full means a flush
  ///                  is overdue anyway)
  ///
  /// Returns false on fabric backpressure (destination RX ring full); the
  /// packet is left intact for the caller's retry loop either way.
  bool inject(int dst, fabric::Packet& pkt, spc::CounterSet& counters);

  /// Drain the submission ring, injecting each queued descriptor and
  /// resolving its ticket. Single consumer: callers hold the instance
  /// lock. Returns descriptors retired.
  std::size_t flush_submissions() FAIRMPI_REQUIRES(lock_);

 private:
  const int id_;
  fabric::NetworkContext* ctx_;
  std::vector<fabric::Endpoint> endpoints_ FAIRMPI_GUARDED_BY(lock_);
  InstanceLock lock_{LockRank::kCriInstance, "cri.instance"};
  fabric::SubmitRing submit_;
  const bool use_funnel_;  ///< see ctor: spin-profitable host or explicit size
  obs::InstanceCounters stats_;
};

/// The pool of CRIs owned by one rank, plus the "centralized body" (§III-B)
/// that assigns instances to threads.
class CriPool {
 public:
  /// Builds one CRI per context of `rank`'s NIC. `submit_ring_entries`
  /// sizes each instance's submission ring (Config::submit_ring_entries).
  CriPool(fabric::Fabric& fabric, int rank, Assignment assignment,
          std::size_t submit_ring_entries = CommResourceInstance::kDefaultSubmitEntries);

  CriPool(const CriPool&) = delete;
  CriPool& operator=(const CriPool&) = delete;

  int size() const noexcept { return static_cast<int>(instances_.size()); }
  Assignment assignment() const noexcept { return assignment_; }

  CommResourceInstance& instance(int i) { return *instances_[static_cast<std::size_t>(i)]; }

  /// Locality domain instance `i` is homed on: instances are laid out
  /// i mod D across the host's D LLC/NUMA domains at construction, so
  /// sibling instances land on distinct domains as long as the host has
  /// them. Single-domain hosts map everything to 0.
  int instance_domain(int i) const noexcept {
    return instance_domain_[static_cast<std::size_t>(i)];
  }

  /// Alg. 1 GET-INSTANCE-ID--ROUND-ROBIN: atomic circular counter.
  int next_round_robin() noexcept {
    return static_cast<int>(rr_->fetch_add(1, std::memory_order_relaxed) %
                            static_cast<std::uint32_t>(instances_.size()));
  }

  /// Alg. 1 GET-INSTANCE-ID--DEDICATED, topology-aware: on a thread's
  /// first use of this pool it claims a free instance — preferring ones
  /// homed on its own locality domain — and stays bound to it. Once every
  /// instance is claimed (threads > instances), later threads fall back to
  /// round-robin assignment, preserving the wrap behaviour of Alg. 1.
  int dedicated_id();

  /// The instance id for the calling thread per the configured policy.
  int id_for_thread() {
    return assignment_ == Assignment::kDedicated ? dedicated_id() : next_round_robin();
  }

 private:
  /// Claim a free instance for a first-time dedicated thread (see
  /// dedicated_id); -1 when every instance is already claimed.
  int claim_instance();

  const Assignment assignment_;
  const std::uint64_t pool_key_;  ///< global key for the TLS binding table
  std::vector<std::unique_ptr<CommResourceInstance>> instances_;
  std::vector<int> instance_domain_;  ///< instance -> locality domain
  /// Dedicated-claim flags, one padded cell per instance so two threads
  /// binding simultaneously never bounce a shared line.
  std::unique_ptr<Padded<std::atomic<std::uint8_t>>[]> claimed_;
  Padded<std::atomic<std::uint32_t>> rr_{};

  static std::atomic<std::uint64_t> next_pool_key_;
};

}  // namespace fairmpi::cri
