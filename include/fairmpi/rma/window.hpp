// One-sided (RMA) communication (§II-D, §IV-F).
//
// Models MPI-3 passive-target RMA over RDMA-capable hardware: put/get move
// data directly into/out of the target rank's exposed memory with *no
// target-side involvement and no matching* — which is exactly why the paper
// finds RMA scales with threads once each thread has its own CRI.
//
// Completion model: an operation performs its data movement at initiation
// (the simulated NIC is the calling thread) and posts a completion event to
// the initiating CRI's completion queue; `flush*` drains CQs until the
// window's pending-operation count returns to zero. As in Open MPI's
// btl-level flush, draining polls the caller's own instance first and only
// then sweeps the others — independent of the two-sided progress design,
// which is why the paper sees little difference between serial and
// concurrent progress for RMA.
//
// Synchronization: flush orders RMA completion; making the *results* visible
// to another thread still requires a happens-before edge (barrier, message,
// or atomic flag), as with real MPI_Win_flush + MPI_Win_sync usage.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "fairmpi/common/align.hpp"
#include "fairmpi/common/spinlock.hpp"
#include "fairmpi/core/universe.hpp"
#include "fairmpi/debug/lockcheck.hpp"
#include "fairmpi/debug/thread_safety.hpp"

namespace fairmpi::rma {

class WindowGroup;

/// One rank's view of a window group: its exposed region plus the ability
/// to initiate RMA to every rank's region.
class Window {
 public:
  Window(const Window&) = delete;
  Window& operator=(const Window&) = delete;

  /// Remote write: copy `n` bytes from `src` into `target`'s region at
  /// byte displacement `disp`. Completes (for flush purposes) when the
  /// completion is drained from the initiating CRI's CQ.
  ///
  /// ft: an operation targeting a confirmed-dead rank fails fast — no data
  /// movement, no pending-count increment (so flush never waits on it), a
  /// typed kPeerFailed through the initiating rank's error sink instead.
  void put(int target, std::size_t disp, const void* src, std::size_t n);

  /// Remote read into `dst`. Same ft fail-fast contract as put(): `dst` is
  /// left untouched when the target is confirmed dead.
  void get(int target, std::size_t disp, void* dst, std::size_t n);

  /// Remote atomic add on an aligned uint64_t at `disp`.
  void accumulate_add_u64(int target, std::size_t disp, std::uint64_t operand);

  /// Remote atomic fetch-and-add; the old value is returned immediately
  /// (synchronous flavour of MPI_Fetch_and_op). Returns 0 (and reports
  /// kPeerFailed, performing no add) when the target is confirmed dead.
  std::uint64_t fetch_add_u64(int target, std::size_t disp, std::uint64_t operand);

  /// Complete the *calling thread's* outstanding operations through this
  /// window (all targets — fairmpi tracks per-thread, not per-target).
  /// This matches btl-level flush behaviour under dedicated instance
  /// binding and avoids cross-thread starvation: a thread's flush never
  /// waits on another thread's still-in-flight round. For strict
  /// process-wide MPI_Win_flush semantics use flush_process().
  void flush(int target);
  void flush_all();

  /// Complete ALL threads' outstanding operations (strict MPI_Win_flush
  /// scope). Used by unlock_all() and fence(), where epoch semantics
  /// demand it.
  void flush_process();

  /// Passive-target epoch bookkeeping (no queuing semantics needed in this
  /// engine; provided for API compatibility and assertion checking).
  void lock_all() noexcept;
  void unlock_all();

  /// Passive-target per-target lock (MPI_Win_lock semantics): kExclusive
  /// serializes against every other locker of `target`'s window; kShared
  /// admits concurrent shared holders. unlock() flushes first, so remote
  /// completion is guaranteed on return (as MPI requires).
  enum class LockKind { kExclusive, kShared };
  void lock(LockKind kind, int target);
  void unlock(int target);

  /// Active-target fence (MPI_Win_fence): completes all outstanding
  /// operations of every rank and synchronizes all ranks of the window
  /// group. Collective — exactly one thread per rank must call it.
  ///
  /// ft: a participant confirmed dead can never arrive, so a survivor's
  /// spin escapes with a typed kPeerFailed instead of hanging. The barrier
  /// is then broken for good — rebuild the window group after recovery.
  void fence();

  /// fence() with a typed outcome and deadline enforcement (§5h): when
  /// Config::op_deadline_ns is nonzero the arrival spin gives up after
  /// that long and returns kDeadlineExceeded (also reported through the
  /// error sink). A deadline-abandoned fence leaves the barrier broken,
  /// exactly like the ft escape — rebuild the window group.
  common::ErrorCode fence_checked();

  void* base() const noexcept { return base_; }
  std::size_t size() const noexcept { return bytes_; }
  /// Outstanding operations across all threads (diagnostics).
  std::uint64_t pending() const;

 private:
  friend class WindowGroup;
  Window(WindowGroup& group, Rank& rank, void* base, std::size_t bytes);

  /// One thread's outstanding-operation counter, on its own cache line so
  /// concurrent initiators never ping-pong on completion accounting.
  struct PendingSlot {
    Padded<std::atomic<std::uint64_t>> count{};
  };
  /// The calling thread's slot (created on first use, sticky thereafter).
  PendingSlot& thread_slot();
  /// Drain instance CQs until `done(...)` is satisfied.
  template <typename DonePredicate>
  void drain_until(DonePredicate done);

  /// Post one completion to `inst`'s CQ, draining inline if the CQ is full.
  void post_completion(cri::CommResourceInstance& inst);

  /// ft fail-fast gate shared by every initiating op: true when `target`
  /// is confirmed dead, after counting the failed op and reporting a typed
  /// kPeerFailed (imm = the window's global key) through the rank's sink.
  bool fail_if_dead(int target);

  RankedLock<Spinlock>& accumulate_lock(std::size_t disp) noexcept {
    return acc_locks_[(disp / kCacheLine) % acc_locks_.size()];
  }

  /// Build the stripe-lock array: RankedLock is neither copyable nor
  /// movable, so each element is constructed in place via guaranteed
  /// elision from a prvalue.
  template <std::size_t... I>
  static std::array<RankedLock<Spinlock>, sizeof...(I)> make_acc_locks(
      std::index_sequence<I...>) {
    return {{((void)I, RankedLock<Spinlock>{LockRank::kRmaAccumulate, "rma.accumulate"})...}};
  }

  static constexpr std::size_t kAccStripes = 16;

  WindowGroup* group_;
  Rank* rank_;
  void* base_;
  std::size_t bytes_;
  /// Per-thread pending slots; the spinlock guards the vector only (slot
  /// counters are accessed lock-free through stable pointers). Acquired
  /// under the CRI instance lock on the completion path, hence the rank.
  mutable RankedLock<Spinlock> slots_lock_{LockRank::kRmaSlots, "rma.slots"};
  std::vector<std::unique_ptr<PendingSlot>> slots_ FAIRMPI_GUARDED_BY(slots_lock_);
  const std::uint64_t window_key_;
  std::atomic<bool> epoch_open_{false};
  /// Stripe locks serializing accumulates on this (target) window.
  std::array<RankedLock<Spinlock>, kAccStripes> acc_locks_ =
      make_acc_locks(std::make_index_sequence<kAccStripes>{});
  /// Reader/writer state for passive-target lock/unlock *of this window as
  /// a target*: -1 = exclusive holder, 0 = free, >0 = shared holders.
  std::atomic<int> target_lock_{0};
};

/// A collectively-created set of windows, one per rank (MPI_Win_create).
class WindowGroup {
 public:
  struct Region {
    void* base = nullptr;
    std::size_t bytes = 0;
  };

  /// `regions[r]` is the memory rank r exposes. Must have one entry per
  /// rank of the universe.
  WindowGroup(Universe& universe, const std::vector<Region>& regions);

  WindowGroup(const WindowGroup&) = delete;
  WindowGroup& operator=(const WindowGroup&) = delete;

  Window& window(int rank) { return *windows_[static_cast<std::size_t>(rank)]; }
  int num_ranks() const noexcept { return static_cast<int>(windows_.size()); }

 private:
  friend class Window;
  /// One fence round: arrive, spin until everyone has arrived. Sense-
  /// reversing so the barrier is reusable. Returns false when the spin
  /// escaped because `self`'s detector confirmed a participant dead (the
  /// caller reports the typed error; the barrier is broken thereafter).
  common::ErrorCode fence_arrive(Rank& self, std::uint64_t deadline_ns);

  std::vector<std::unique_ptr<Window>> windows_;
  std::atomic<int> fence_arrived_{0};
  std::atomic<int> fence_generation_{0};
};

}  // namespace fairmpi::rma
