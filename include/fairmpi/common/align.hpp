// Cache-line alignment helpers.
//
// Almost every shared counter in fairmpi lives on its own cache line: the
// paper's whole premise is that contention (locks, shared atomics) dominates
// multithreaded MPI cost, so we are careful not to *add* false sharing on
// top of the contention we deliberately study.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace fairmpi {

// Fixed at 64 (true for x86-64 and most aarch64): using
// std::hardware_destructive_interference_size would make layout depend on
// compiler flags, which -Winterference-size rightly flags.
inline constexpr std::size_t kCacheLine = 64;

// For the handful of per-packet hot-path functions where an out-of-line
// call shows up in the injection-latency budget (GCC declines to inline
// SpscRing<Packet>::try_push at -O2 because the fieldwise Packet move makes
// the body look big, even though it flattens to ~20 movs).
#if defined(__GNUC__)
#define FAIRMPI_ALWAYS_INLINE inline __attribute__((always_inline))
#else
#define FAIRMPI_ALWAYS_INLINE inline
#endif

/// Wraps a T so that it occupies (at least) one full cache line, preventing
/// false sharing between adjacent elements in arrays of hot objects.
template <typename T>
struct alignas(kCacheLine) Padded {
  T value{};

  Padded() = default;
  template <typename... Args>
  explicit Padded(Args&&... args) : value(std::forward<Args>(args)...) {}

  T& operator*() noexcept { return value; }
  const T& operator*() const noexcept { return value; }
  T* operator->() noexcept { return &value; }
  const T* operator->() const noexcept { return &value; }
};

static_assert(alignof(Padded<int>) == kCacheLine);

/// Round `n` up to the next multiple of `align` (power of two).
constexpr std::size_t round_up(std::size_t n, std::size_t align) noexcept {
  return (n + align - 1) & ~(align - 1);
}

/// True iff `n` is a power of two (and nonzero).
constexpr bool is_pow2(std::size_t n) noexcept { return n != 0 && (n & (n - 1)) == 0; }

/// Smallest power of two >= n (n must be <= 2^63).
constexpr std::size_t next_pow2(std::size_t n) noexcept {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace fairmpi
