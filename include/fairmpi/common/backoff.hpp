// Adaptive spin-then-backoff policy for contended try_lock retry loops.
//
// SpinWait (spinlock.hpp) is the right shape for "the event is imminent and
// produced by a running thread": spin a fixed budget, then yield. Contended
// *lock retry* loops have a different profile — the holder's critical
// section length is unknown, and hammering try_lock at full rate keeps the
// lock's cache line bouncing, which slows the holder down (the classic
// spin-backoff result; SNIPPETS.md §1's MUTEX_SPIN_BACKOFF measures exactly
// this: pthread_spin_trylock, then spin(1000*factor), factor doubling to a
// cap). Backoff reproduces that idiom: the pause between probes grows
// exponentially, so a retrying thread probes often when the wait is short
// and leaves the line alone when it is long; once the budget saturates the
// wait is assumed scheduler-scale and each round yields (critical on the
// 1-core CI host, where the holder cannot run while we spin).
//
// Callers that escalate (e.g. the submission-ring producer falling back to
// a blocking lock) key the escalation on rounds(): a saturated backoff that
// keeps losing is the signal that combining/self-service beats waiting.
#pragma once

#include <cstdint>
#include <thread>

#include "fairmpi/common/spinlock.hpp"

namespace fairmpi::common {

class Backoff {
 public:
  /// `max_spin` caps the per-round pause (in cpu_relax iterations).
  constexpr explicit Backoff(std::uint32_t max_spin = kDefaultMaxSpin) noexcept
      : max_spin_(max_spin) {}

  /// One fruitless probe: pause for the current budget, then double it.
  /// Saturated rounds yield instead of spinning — at that point the holder
  /// is likely descheduled and burning the quantum only delays it.
  void pause() noexcept {
    ++rounds_;
    if (!spin_profitable()) cur_ = max_spin_;  // 1 CPU: spinning blocks the holder
    if (cur_ >= max_spin_) {
      std::this_thread::yield();
      return;
    }
    for (std::uint32_t i = 0; i < cur_; ++i) fairmpi::detail::cpu_relax();
    cur_ <<= 1;
  }

  /// Whether spinning can ever pay off on this host: with one hardware
  /// thread the lock holder cannot run while we spin, so every spin round
  /// only delays the event being waited for (measured ~15% multirate
  /// regression on the 1-core CI host before this check). Cached once.
  static bool spin_profitable() noexcept {
    static const bool profitable = std::thread::hardware_concurrency() > 1;
    return profitable;
  }

  /// Progress was made: restart the probe cadence.
  void reset() noexcept {
    cur_ = kInitialSpin;
    rounds_ = 0;
  }

  /// The exponential budget has hit its cap (pauses are now yields).
  bool saturated() const noexcept { return cur_ >= max_spin_; }

  /// Fruitless probes since the last reset().
  std::uint32_t rounds() const noexcept { return rounds_; }

  static constexpr std::uint32_t kInitialSpin = 16;
  static constexpr std::uint32_t kDefaultMaxSpin = 2048;

 private:
  std::uint32_t cur_ = kInitialSpin;
  std::uint32_t rounds_ = 0;
  std::uint32_t max_spin_;
};

}  // namespace fairmpi::common
