// Fail-fast error handling.
//
// fairmpi is an engine, not an application framework: internal invariant
// violations abort immediately with a location, mirroring how MPI
// implementations treat internal corruption (there is no meaningful way to
// continue once a matching queue or ring buffer is inconsistent).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string_view>

namespace fairmpi::detail {

[[noreturn]] inline void fail(const char* file, int line, const char* expr,
                              std::string_view msg = {}) {
  std::fprintf(stderr, "fairmpi: check failed at %s:%d: %s%s%.*s\n", file, line, expr,
               msg.empty() ? "" : " — ", static_cast<int>(msg.size()),
               msg.empty() ? "" : msg.data());
  std::fflush(stderr);
  std::abort();
}

}  // namespace fairmpi::detail

/// Always-on invariant check (kept in release builds; these guard correctness
/// of concurrent data structures where silent corruption is far worse than
/// the branch cost).
#define FAIRMPI_CHECK(expr)                                           \
  do {                                                                \
    if (!(expr)) ::fairmpi::detail::fail(__FILE__, __LINE__, #expr);  \
  } while (0)

#define FAIRMPI_CHECK_MSG(expr, msg)                                       \
  do {                                                                     \
    if (!(expr)) ::fairmpi::detail::fail(__FILE__, __LINE__, #expr, msg);  \
  } while (0)

/// Debug-only check for hot paths.
#ifndef NDEBUG
#define FAIRMPI_DCHECK(expr) FAIRMPI_CHECK(expr)
#else
#define FAIRMPI_DCHECK(expr) \
  do {                       \
  } while (0)
#endif
