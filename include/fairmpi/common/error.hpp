// Fail-fast error handling.
//
// fairmpi is an engine, not an application framework: internal invariant
// violations abort immediately with a location, mirroring how MPI
// implementations treat internal corruption (there is no meaningful way to
// continue once a matching queue or ring buffer is inconsistent).
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string_view>

namespace fairmpi::common {

/// Typed, recoverable engine errors (graceful degradation — DESIGN.md
/// "Fault model & reliability layer"). Unlike the FAIRMPI_CHECK aborts
/// below, these describe conditions a correctly-functioning engine can hit
/// on a misbehaving fabric: they surface through SPC counters, the trace
/// ring, and the rank's error sink instead of terminating the process.
enum class ErrorCode : std::uint8_t {
  kOk = 0,
  kSendBudgetExhausted,   ///< EAGAIN retry budget spent without injecting
  kRetryExhausted,        ///< retransmit limit reached without an ack
  kStalledInstance,       ///< watchdog: CRI backlog stopped draining
  kStalledRendezvous,     ///< watchdog: rendezvous pending past threshold
  kPeerFailed,            ///< ft: operation targeted a confirmed-dead rank
  kCommRevoked,           ///< ft: operation on a revoked communicator
  kReceiverOverloaded,    ///< overload: receiver shed the message (NACK)
  kLocalOverloaded,       ///< overload: local cap refused the op at admission
  kCancelled,             ///< request cancelled by the application
  kDeadlineExceeded,      ///< per-op deadline expired before completion
  kQuiesceTimeout,        ///< quiesce gave up with backlog still pending
  kReservedTag,           ///< user op posted a tag inside the reserved block
};

inline const char* error_code_name(ErrorCode c) noexcept {
  switch (c) {
    case ErrorCode::kOk: return "Ok";
    case ErrorCode::kSendBudgetExhausted: return "SendBudgetExhausted";
    case ErrorCode::kRetryExhausted: return "RetryExhausted";
    case ErrorCode::kStalledInstance: return "StalledInstance";
    case ErrorCode::kStalledRendezvous: return "StalledRendezvous";
    case ErrorCode::kPeerFailed: return "PeerFailed";
    case ErrorCode::kCommRevoked: return "CommRevoked";
    case ErrorCode::kReceiverOverloaded: return "ReceiverOverloaded";
    case ErrorCode::kLocalOverloaded: return "LocalOverloaded";
    case ErrorCode::kCancelled: return "Cancelled";
    case ErrorCode::kDeadlineExceeded: return "DeadlineExceeded";
    case ErrorCode::kQuiesceTimeout: return "QuiesceTimeout";
    case ErrorCode::kReservedTag: return "ReservedTag";
  }
  return "Unknown";
}

/// One reported error. `detail` is code-specific: the packet seq for
/// retransmit exhaustion, the instance index for a stalled CRI, the state
/// cookie for a stalled rendezvous.
struct Error {
  ErrorCode code = ErrorCode::kOk;
  int rank = -1;          ///< reporting rank
  int peer = -1;          ///< peer involved (-1 when not applicable)
  std::uint64_t detail = 0;
};

/// Error callback: invoked synchronously on the thread that detected the
/// condition. No CRI or matching lock is ever held at the call, but
/// diagnostic locks (the watchdog's own state) may be — handlers must be
/// cheap, reentrant, and must not call back into the engine.
using ErrorSink = void (*)(const Error& err, void* user);

}  // namespace fairmpi::common

namespace fairmpi::detail {

[[noreturn]] inline void fail(const char* file, int line, const char* expr,
                              std::string_view msg = {}) {
  std::fprintf(stderr, "fairmpi: check failed at %s:%d: %s%s%.*s\n", file, line, expr,
               msg.empty() ? "" : " — ", static_cast<int>(msg.size()),
               msg.empty() ? "" : msg.data());
  std::fflush(stderr);
  std::abort();
}

}  // namespace fairmpi::detail

/// Always-on invariant check (kept in release builds; these guard correctness
/// of concurrent data structures where silent corruption is far worse than
/// the branch cost).
#define FAIRMPI_CHECK(expr)                                           \
  do {                                                                \
    if (!(expr)) ::fairmpi::detail::fail(__FILE__, __LINE__, #expr);  \
  } while (0)

#define FAIRMPI_CHECK_MSG(expr, msg)                                       \
  do {                                                                     \
    if (!(expr)) ::fairmpi::detail::fail(__FILE__, __LINE__, #expr, msg);  \
  } while (0)

/// Debug-only check for hot paths.
#ifndef NDEBUG
#define FAIRMPI_DCHECK(expr) FAIRMPI_CHECK(expr)
#else
#define FAIRMPI_DCHECK(expr) \
  do {                       \
  } while (0)
#endif
