// Bounded lock-free ring buffer (Vyukov-style bounded MPMC queue).
//
// This is the RX ring of a simulated network context: remote sender threads
// are the producers, the (single, lock-protected) progressing thread is the
// consumer. The queue is actually MPMC-safe, which keeps it robust if a
// progress design ever allows concurrent drains of one context.
//
// A full ring is the fabric's backpressure signal: try_push() returns false
// and the sender must progress its own resources before retrying — exactly
// the "BTL returns EAGAIN" flow in a real MPI stack (see p2p/sender.cpp).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>

#include "fairmpi/common/align.hpp"
#include "fairmpi/common/error.hpp"

namespace fairmpi {

template <typename T>
class MpscRing {
 public:
  /// Capacity is rounded up to a power of two; minimum 2.
  explicit MpscRing(std::size_t capacity)
      : capacity_(next_pow2(capacity < 2 ? 2 : capacity)),
        mask_(capacity_ - 1),
        cells_(std::make_unique<Cell[]>(capacity_)) {
    for (std::size_t i = 0; i < capacity_; ++i) {
      cells_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  MpscRing(const MpscRing&) = delete;
  MpscRing& operator=(const MpscRing&) = delete;

  /// Attempt to enqueue. Returns false when the ring is full (backpressure).
  /// Safe to call from any number of threads concurrently.
  bool try_push(T&& item) noexcept {
    std::uint64_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos & mask_];
      const std::uint64_t seq = cell.seq.load(std::memory_order_acquire);
      const std::int64_t dif = static_cast<std::int64_t>(seq) - static_cast<std::int64_t>(pos);
      if (dif == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1, std::memory_order_relaxed)) {
          cell.value = std::move(item);
          cell.seq.store(pos + 1, std::memory_order_release);
          return true;
        }
        // CAS failed: pos was refreshed, retry with the new value.
      } else if (dif < 0) {
        return false;  // full
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
  }

  bool try_push(const T& item) noexcept {
    T copy = item;
    return try_push(std::move(copy));
  }

  /// Attempt to dequeue into `out`. Returns false when empty.
  /// Safe for concurrent consumers (MPMC), though fairmpi uses one consumer
  /// at a time under the owning CRI's lock.
  bool try_pop(T& out) noexcept {
    std::uint64_t pos = head_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos & mask_];
      const std::uint64_t seq = cell.seq.load(std::memory_order_acquire);
      const std::int64_t dif =
          static_cast<std::int64_t>(seq) - static_cast<std::int64_t>(pos + 1);
      if (dif == 0) {
        if (head_.compare_exchange_weak(pos, pos + 1, std::memory_order_relaxed)) {
          out = std::move(cell.value);
          cell.seq.store(pos + capacity_, std::memory_order_release);
          return true;
        }
      } else if (dif < 0) {
        return false;  // empty
      } else {
        pos = head_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Approximate occupancy; exact only when quiescent.
  std::size_t size_approx() const noexcept {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    return tail >= head ? static_cast<std::size_t>(tail - head) : 0;
  }

  bool empty_approx() const noexcept { return size_approx() == 0; }

  std::size_t capacity() const noexcept { return capacity_; }

 private:
  struct Cell {
    std::atomic<std::uint64_t> seq{0};
    T value{};
  };

  const std::size_t capacity_;
  const std::size_t mask_;
  std::unique_ptr<Cell[]> cells_;
  alignas(kCacheLine) std::atomic<std::uint64_t> tail_{0};  // producers
  alignas(kCacheLine) std::atomic<std::uint64_t> head_{0};  // consumer
};

}  // namespace fairmpi
