// Bounded lock-free ring buffer (Vyukov-style bounded queue), multi-producer
// single-consumer.
//
// This is the RX ring of a simulated network context: remote sender threads
// are the producers, the progressing thread is the consumer. The engine
// serializes consumers externally — every drain happens under the owning
// CRI's lock (progress.cpp) — so the pop side exploits single-consumer
// ownership: head_ is advanced with a plain store instead of a CAS, and
// try_pop_n() amortizes the head update over a whole batch. The push side
// stays fully MPMC-safe.
//
// A full ring is the fabric's backpressure signal: try_push() returns false
// and the sender must progress its own resources before retrying — exactly
// the "BTL returns EAGAIN" flow in a real MPI stack (see p2p/sender.cpp).
//
// Static-contract note (DESIGN.md §5e): the single-consumer rule is a
// *cross-object* contract — the capability protecting the pop side is the
// owning CRI's lock, which lives in a different object than the ring.
// Clang's thread-safety attributes cannot name another object's member
// from here, so this file carries no GUARDED_BY annotations; the contract
// is enforced one level up, where ProgressEngine::drain_locked() is
// FAIRMPI_REQUIRES(inst.lock()) and every caller is checked against it.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>

#include "fairmpi/common/align.hpp"
#include "fairmpi/common/error.hpp"

namespace fairmpi {

template <typename T>
class MpscRing {
 public:
  /// Capacity is rounded up to a power of two; minimum 2.
  explicit MpscRing(std::size_t capacity)
      : capacity_(next_pow2(capacity < 2 ? 2 : capacity)),
        mask_(capacity_ - 1),
        cells_(std::make_unique<Cell[]>(capacity_)) {  // lint: allow(hotpath-alloc) ctor
    for (std::size_t i = 0; i < capacity_; ++i) {
      cells_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  MpscRing(const MpscRing&) = delete;
  MpscRing& operator=(const MpscRing&) = delete;

  /// Attempt to enqueue. Returns false when the ring is full (backpressure).
  /// Safe to call from any number of threads concurrently.
  bool try_push(T&& item) noexcept {
    std::uint64_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos & mask_];
      const std::uint64_t seq = cell.seq.load(std::memory_order_acquire);
      const std::int64_t dif = static_cast<std::int64_t>(seq) - static_cast<std::int64_t>(pos);
      if (dif == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1, std::memory_order_relaxed)) {
          cell.value = std::move(item);
          cell.seq.store(pos + 1, std::memory_order_release);
          return true;
        }
        // CAS failed: pos was refreshed, retry with the new value.
      } else if (dif < 0) {
        return false;  // full
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
  }

  bool try_push(const T& item) noexcept {
    T copy = item;
    return try_push(std::move(copy));
  }

  /// Attempt to dequeue into `out`. Returns false when empty.
  /// Single consumer at a time: callers must hold the owning CRI's lock (or
  /// otherwise own the ring exclusively). head_ is written with a plain
  /// store — no CAS — which is what makes the drain path allocation- and
  /// rmw-free.
  bool try_pop(T& out) noexcept {
    const std::uint64_t pos = head_.load(std::memory_order_relaxed);
    Cell& cell = cells_[pos & mask_];
    const std::uint64_t seq = cell.seq.load(std::memory_order_acquire);
    if (seq != pos + 1) return false;  // empty (or producer mid-publish)
    out = std::move(cell.value);
    cell.seq.store(pos + capacity_, std::memory_order_release);
    head_.store(pos + 1, std::memory_order_relaxed);
    return true;
  }

  /// Dequeue up to `max_n` items into `out[0..)`, returning the count.
  /// Same single-consumer contract as try_pop. One head_ store per batch.
  std::size_t try_pop_n(T* out, std::size_t max_n) noexcept {
    const std::uint64_t pos = head_.load(std::memory_order_relaxed);
    std::size_t n = 0;
    while (n < max_n) {
      Cell& cell = cells_[(pos + n) & mask_];
      const std::uint64_t seq = cell.seq.load(std::memory_order_acquire);
      if (seq != pos + n + 1) break;  // drained up to the publish frontier
      out[n] = std::move(cell.value);
      cell.seq.store(pos + n + capacity_, std::memory_order_release);
      ++n;
    }
    if (n != 0) head_.store(pos + n, std::memory_order_relaxed);
    return n;
  }

  /// Count of successful pushes so far (the producers' claim cursor). Exact
  /// for every push that has *returned*; a claim mid-publish is counted one
  /// early, which is the same slack size_approx() already has. Lets the
  /// fabric derive delivered-packet totals from the ring instead of
  /// maintaining a separate per-delivery fetch_add on the hot path.
  std::uint64_t pushed_approx() const noexcept {
    return tail_.load(std::memory_order_relaxed);
  }

  /// Approximate occupancy; exact only when quiescent.
  std::size_t size_approx() const noexcept {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    return tail >= head ? static_cast<std::size_t>(tail - head) : 0;
  }

  bool empty_approx() const noexcept { return size_approx() == 0; }

  std::size_t capacity() const noexcept { return capacity_; }

 private:
  struct Cell {
    std::atomic<std::uint64_t> seq{0};
    T value{};
  };

  const std::size_t capacity_;
  const std::size_t mask_;
  std::unique_ptr<Cell[]> cells_;
  alignas(kCacheLine) std::atomic<std::uint64_t> tail_{0};  // producers
  alignas(kCacheLine) std::atomic<std::uint64_t> head_{0};  // consumer
};

}  // namespace fairmpi
