// Dense per-thread slot ids.
//
// Several hot-path structures (the sharded SPC shards, SlabArena's per-thread
// freelist caches) want one private cache line per *live* thread, indexed by
// a small integer. `std::thread::id` is neither small nor dense, and a bare
// monotonic thread_local counter would eventually alias two live threads onto
// one slot — which silently breaks the "single writer per cell" invariant
// those structures rely on.
//
// This registry hands out ids from [0, kMaxThreadSlots) and recycles an id
// when its thread exits (thread_local destructor), so two *live* threads
// never share a slot. If more than kMaxThreadSlots threads are alive at
// once, the surplus threads get kNoThreadSlot and callers must fall back to
// their shared/contended path — correct, just slower.
#pragma once

namespace fairmpi::common {

/// Upper bound on concurrently-registered threads. Sized well above any
/// bench configuration (the paper tops out at 2 x 20 thread pairs); per-slot
/// state is one cache line, so the cost of headroom is small.
inline constexpr int kMaxThreadSlots = 128;

/// Sentinel returned once the registry is exhausted.
inline constexpr int kNoThreadSlot = -1;

namespace detail {
/// Sentinel distinct from kNoThreadSlot: "this thread never registered".
inline constexpr int kSlotUnset = -2;
/// Cached slot id. Written by register_this_thread() on first use and reset
/// to kNoThreadSlot by the registry when the thread exits (so late TLS
/// destructors that still consult it take the shared fallback path instead
/// of touching a slot that may already belong to a new thread).
inline thread_local int tls_slot = kSlotUnset;
/// Registers the calling thread; sets tls_slot; returns the slot.
int register_this_thread() noexcept;
}  // namespace detail

/// This thread's slot in [0, kMaxThreadSlots), or kNoThreadSlot when more
/// than kMaxThreadSlots threads are currently alive. Stable for the thread's
/// lifetime; released (and eventually reused by a *later* thread) at exit.
/// The registry lock's release/acquire pairing orders everything the dead
/// thread did to slot-indexed state before any reuse — callers need no
/// extra synchronization for the handover.
/// Hot path is a single TLS read (called per SPC update / pool op).
inline int this_thread_slot() noexcept {
  const int s = detail::tls_slot;
  return s != detail::kSlotUnset ? s : detail::register_this_thread();
}

}  // namespace fairmpi::common
