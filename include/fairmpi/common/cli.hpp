// Minimal command-line option parser for the bench/example binaries.
//
// Usage:
//   fairmpi::Cli cli("bench_fig3", "Reproduces Figure 3.");
//   auto& pairs = cli.opt_int("pairs", 8, "max number of thread pairs");
//   auto& full  = cli.opt_flag("full", "run the paper-scale sweep");
//   cli.parse(argc, argv);          // exits on --help / bad input
//   use *pairs, *full ...
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace fairmpi {

class Cli {
 public:
  /// Holder for a parsed option value; filled in by parse().
  template <typename T>
  class Value {
   public:
    explicit Value(T def) : value_(std::move(def)) {}
    const T& operator*() const noexcept { return value_; }

   private:
    friend class Cli;
    T value_;
  };

  Cli(std::string program, std::string description);
  ~Cli();

  Cli(const Cli&) = delete;
  Cli& operator=(const Cli&) = delete;

  Value<std::int64_t>& opt_int(std::string name, std::int64_t def, std::string help);
  Value<double>& opt_double(std::string name, double def, std::string help);
  Value<std::string>& opt_str(std::string name, std::string def, std::string help);
  Value<bool>& opt_flag(std::string name, std::string help);
  /// Comma-separated integer list, e.g. --sizes 1,128,1024.
  Value<std::vector<std::int64_t>>& opt_int_list(std::string name,
                                                 std::vector<std::int64_t> def,
                                                 std::string help);

  /// Parses argv. Prints usage and exits(0) on --help; prints an error and
  /// exits(2) on unknown options or malformed values.
  void parse(int argc, char** argv);

  /// Render the usage text (exposed for tests).
  std::string usage() const;

  /// Test hook: like parse() but returns an error string instead of exiting.
  /// Empty string means success; "help" means --help was requested.
  std::string parse_for_test(const std::vector<std::string>& args);

 private:
  struct Option;
  Option* find(const std::string& name);

  std::string program_;
  std::string description_;
  std::vector<std::unique_ptr<Option>> options_;
};

}  // namespace fairmpi
