// Streaming statistics.
//
// The paper reports "the mean and the standard deviation ... which should be
// noted is consistently very small" over several hundred runs; every bench
// in this repo does the same via RunningStats (Welford's algorithm).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <vector>

namespace fairmpi {

/// Numerically stable single-pass mean/variance accumulator.
class RunningStats {
 public:
  void add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const noexcept { return std::sqrt(variance()); }
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }

  /// Relative standard deviation (coefficient of variation); 0 if mean == 0.
  double rel_stddev() const noexcept { return mean_ != 0.0 ? stddev() / mean_ : 0.0; }

  void merge(const RunningStats& other) noexcept {
    if (other.n_ == 0) return;
    if (n_ == 0) {
      *this = other;
      return;
    }
    const double delta = other.mean_ - mean_;
    const auto na = static_cast<double>(n_);
    const auto nb = static_cast<double>(other.n_);
    const double nt = na + nb;
    m2_ += other.m2_ + delta * delta * na * nb / nt;
    mean_ += delta * nb / nt;
    n_ += other.n_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Percentile over a scratch copy (linear interpolation, p in [0,100]).
inline double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const double rank = (p / 100.0) * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] + (xs[hi] - xs[lo]) * frac;
}

}  // namespace fairmpi
