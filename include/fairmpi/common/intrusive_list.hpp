// Intrusive doubly-linked list.
//
// The matching engine's posted/unexpected queues used to be std::deque:
// every post/match cycle touched the deque's block map and erase() shuffled
// elements. Threading the links through the nodes themselves (p2p::Request,
// the pooled unexpected node) makes push_back/erase pointer writes only —
// zero allocations, O(1) unlink from the middle, which is the common case
// for tag-filtered matching.
//
// Not thread-safe; fairmpi lists are always owned by a lock (the match
// engine's). A node may be on at most one list per hook pair.
#pragma once

#include <cstddef>

namespace fairmpi::common {

template <typename T, T* T::*Prev, T* T::*Next>
class IntrusiveList {
 public:
  IntrusiveList() = default;
  IntrusiveList(const IntrusiveList&) = delete;
  IntrusiveList& operator=(const IntrusiveList&) = delete;

  bool empty() const noexcept { return head_ == nullptr; }
  std::size_t size() const noexcept { return size_; }
  T* front() const noexcept { return head_; }

  static T* next(const T* n) noexcept { return n->*Next; }

  void push_back(T* n) noexcept {
    n->*Prev = tail_;
    n->*Next = nullptr;
    if (tail_ != nullptr) {
      tail_->*Next = n;
    } else {
      head_ = n;
    }
    tail_ = n;
    ++size_;
  }

  /// Unlink `n` (must be on this list). Links are nulled so a double erase
  /// or use-after-unlink trips fast in debug builds.
  void erase(T* n) noexcept {
    T* p = n->*Prev;
    T* x = n->*Next;
    if (p != nullptr) {
      p->*Next = x;
    } else {
      head_ = x;
    }
    if (x != nullptr) {
      x->*Prev = p;
    } else {
      tail_ = p;
    }
    n->*Prev = nullptr;
    n->*Next = nullptr;
    --size_;
  }

  T* pop_front() noexcept {
    T* n = head_;
    if (n != nullptr) erase(n);
    return n;
  }

 private:
  T* head_ = nullptr;
  T* tail_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace fairmpi::common
