// Bounded single-producer single-consumer ring (Lamport queue with cached
// peer indices).
//
// This is the per-source lane of a network context's RX queue
// (fabric/fabric.hpp): exactly one producer — the thread currently holding
// the *source* CRI instance's lock — and one consumer — the thread holding
// the *destination* instance's lock during a drain. Neither side performs an
// atomic read-modify-write: the whole point of the lane decomposition is
// that injection costs two plain loads and two stores, where the shared
// MPSC ring paid a ~10ns locked CAS per packet (DESIGN.md §5f).
//
// Memory ordering (producer):
//   [S1] tail_.load(relaxed)        — own cursor, nobody else writes it
//   [S2] head_.load(acquire)        — only on apparent-full refresh; pairs
//                                     with the consumer's [C2] release so
//                                     slot reuse happens-after the consumer
//                                     moved the value out
//   [S3] slot move-in (plain)       — slot is provably unowned: it was
//                                     consumed (head_ covers it) and no
//                                     other producer exists
//   [S4] tail_.store(t+1, release)  — publishes [S3] to the consumer
// Memory ordering (consumer): symmetric — head_ relaxed own-read, tail_
// acquire refresh pairing with [S4], slot move-out, head_ release store.
//
// The cached indices (head_cache_, tail_cache_) are deliberately plain:
// each is written and read only by its own side. Sides may migrate across
// threads over time (whoever holds the respective CRI lock), and the lock
// handoff provides the happens-before edge for the plain fields.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>

#include "fairmpi/common/align.hpp"

namespace fairmpi {

template <typename T>
class SpscRing {
 public:
  /// Capacity is rounded up to a power of two; minimum 2.
  explicit SpscRing(std::size_t capacity)
      : capacity_(next_pow2(capacity < 2 ? 2 : capacity)),
        mask_(capacity_ - 1),
        slots_(std::make_unique<T[]>(capacity_)) {}  // lint: allow(hotpath-alloc) ctor

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  /// Enqueue; false when full. PRODUCER SIDE ONLY — callers must guarantee
  /// external serialization (one producer at a time per ring).
  FAIRMPI_ALWAYS_INLINE bool try_push(T&& item) noexcept {
    const std::uint64_t t = tail_.load(std::memory_order_relaxed);  // [S1]
    if (t - head_cache_ >= capacity_) {
      head_cache_ = head_.load(std::memory_order_acquire);  // [S2]
      if (t - head_cache_ >= capacity_) return false;       // genuinely full
    }
    slots_[t & mask_] = std::move(item);             // [S3]
    tail_.store(t + 1, std::memory_order_release);   // [S4]
#if defined(__GNUC__)
    // A deep ring is streamed, not revisited: the next push's slot is cold
    // unless we ask for it now, while the ~200 cycles until that push are
    // free to overlap the fill.
    __builtin_prefetch(&slots_[(t + 1) & mask_], 1 /*write*/, 0);
#endif
    return true;
  }

  /// Dequeue into `out`; false when empty. CONSUMER SIDE ONLY.
  FAIRMPI_ALWAYS_INLINE bool try_pop(T& out) noexcept {
    const std::uint64_t h = head_.load(std::memory_order_relaxed);  // [C1]
    if (h == tail_cache_) {
      tail_cache_ = tail_.load(std::memory_order_acquire);  // pairs with [S4]
      if (h == tail_cache_) return false;                   // genuinely empty
    }
    out = std::move(slots_[h & mask_]);
    head_.store(h + 1, std::memory_order_release);   // [C2]
    return true;
  }

  /// Dequeue up to `max_n` items, returning the count; one head_ store per
  /// batch. CONSUMER SIDE ONLY.
  std::size_t try_pop_n(T* out, std::size_t max_n) noexcept {
    const std::uint64_t h = head_.load(std::memory_order_relaxed);
    std::uint64_t avail = tail_cache_ - h;
    if (avail == 0) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      avail = tail_cache_ - h;
      if (avail == 0) return 0;
    }
    const std::size_t n = avail < max_n ? static_cast<std::size_t>(avail) : max_n;
    for (std::size_t i = 0; i < n; ++i) out[i] = std::move(slots_[(h + i) & mask_]);
    head_.store(h + n, std::memory_order_release);
    return n;
  }

  /// Count of pushes published so far (exact for returned pushes). The
  /// producer's own cursor; other threads read a possibly-stale value.
  std::uint64_t pushed_approx() const noexcept {
    return tail_.load(std::memory_order_relaxed);
  }

  /// Approximate occupancy; exact only when quiescent.
  std::size_t size_approx() const noexcept {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    return tail >= head ? static_cast<std::size_t>(tail - head) : 0;
  }

  bool empty_approx() const noexcept { return size_approx() == 0; }

  std::size_t capacity() const noexcept { return capacity_; }

 private:
  const std::size_t capacity_;
  const std::size_t mask_;
  std::unique_ptr<T[]> slots_;
  // Producer-owned line: claim cursor + cached view of the consumer.
  alignas(kCacheLine) std::atomic<std::uint64_t> tail_{0};
  std::uint64_t head_cache_ = 0;
  // Consumer-owned line: drain cursor + cached view of the producer.
  alignas(kCacheLine) std::atomic<std::uint64_t> head_{0};
  std::uint64_t tail_cache_ = 0;
};

}  // namespace fairmpi
