// Lock primitives used to protect communication resources.
//
// The paper's designs hinge on the behaviour of these locks:
//   * per-CRI locks (test-and-set spinlock with try_lock, §III-C/D),
//   * the serial progress-engine lock (ticket lock, FIFO, so the "funnel"
//     effect of serialized progress is fair and reproducible),
//   * the per-communicator matching lock.
// All satisfy the C++ Lockable requirements so std::scoped_lock /
// std::unique_lock work (CP.20: RAII, never plain lock()/unlock()).
#pragma once

#include <atomic>
#include <cstdint>

#include "fairmpi/common/align.hpp"

namespace fairmpi {

namespace detail {
/// Polite spin: tells the CPU we are in a spin-wait loop.
inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}
}  // namespace detail

/// Test-and-test-and-set spinlock with exponential backoff.
///
/// This is the per-instance (CRI) lock: critical sections are short
/// (inject one message / poll one CQ), so spinning beats blocking, and
/// try_lock() is the primitive the paper's Algorithm 2 is built on.
class alignas(kCacheLine) Spinlock {
 public:
  Spinlock() = default;
  Spinlock(const Spinlock&) = delete;
  Spinlock& operator=(const Spinlock&) = delete;

  void lock() noexcept {
    std::uint32_t backoff = 1;
    for (;;) {
      if (!locked_.exchange(true, std::memory_order_acquire)) return;
      // Spin on a plain load first so the lock line stays shared while held.
      while (locked_.load(std::memory_order_relaxed)) {
        for (std::uint32_t i = 0; i < backoff; ++i) detail::cpu_relax();
        if (backoff < 1024) backoff <<= 1;
      }
    }
  }

  bool try_lock() noexcept {
    // Fail fast without a bus transaction if the lock is visibly held.
    if (locked_.load(std::memory_order_relaxed)) return false;
    return !locked_.exchange(true, std::memory_order_acquire);
  }

  void unlock() noexcept { locked_.store(false, std::memory_order_release); }

  /// Non-synchronizing peek, for stats/heuristics only.
  bool is_locked() const noexcept { return locked_.load(std::memory_order_relaxed); }

 private:
  std::atomic<bool> locked_{false};
};

/// FIFO ticket lock.
///
/// Used where fairness matters for reproducibility — most importantly the
/// serial progress-engine funnel, where an unfair lock would let one thread
/// starve the others and distort message-rate measurements.
class alignas(kCacheLine) TicketLock {
 public:
  TicketLock() = default;
  TicketLock(const TicketLock&) = delete;
  TicketLock& operator=(const TicketLock&) = delete;

  void lock() noexcept {
    const std::uint32_t my = next_.fetch_add(1, std::memory_order_relaxed);
    while (serving_.load(std::memory_order_acquire) != my) detail::cpu_relax();
  }

  bool try_lock() noexcept {
    std::uint32_t serving = serving_.load(std::memory_order_relaxed);
    std::uint32_t expected = serving;
    // Only take a ticket if we would be served immediately.
    if (next_.load(std::memory_order_relaxed) != serving) return false;
    return next_.compare_exchange_strong(expected, serving + 1, std::memory_order_acquire,
                                         std::memory_order_relaxed);
  }

  void unlock() noexcept {
    serving_.store(serving_.load(std::memory_order_relaxed) + 1, std::memory_order_release);
  }

 private:
  std::atomic<std::uint32_t> next_{0};
  alignas(kCacheLine) std::atomic<std::uint32_t> serving_{0};
};

}  // namespace fairmpi
