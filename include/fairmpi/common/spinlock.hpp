// Lock primitives used to protect communication resources.
//
// The paper's designs hinge on the behaviour of these locks:
//   * per-CRI locks (test-and-set spinlock with try_lock, §III-C/D),
//   * the serial progress-engine lock (ticket lock, FIFO, so the "funnel"
//     effect of serialized progress is fair and reproducible),
//   * the per-communicator matching lock.
// All satisfy the C++ Lockable requirements; engine code wraps acquisitions
// in fairmpi::LockGuard (CP.20: RAII, never plain lock()/unlock()), which —
// unlike libstdc++'s std::scoped_lock — carries thread-safety annotations.
//
// Both lock classes are Clang thread-safety *capabilities* (DESIGN.md §5e):
// under the `tsa` preset the compiler statically checks that state declared
// FAIRMPI_GUARDED_BY one of these locks is only touched while it is held.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>

#include "fairmpi/common/align.hpp"
#include "fairmpi/debug/thread_safety.hpp"

namespace fairmpi {

namespace detail {
/// Polite spin: tells the CPU we are in a spin-wait loop.
inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}
}  // namespace detail

/// Bounded spin, then yield — for wait loops whose completion depends on
/// another thread making progress (wait/wait_all, flow-control stalls,
/// contended lock slow paths).
///
/// Pure cpu_relax() spinning is right when the event is microseconds away
/// and a core is available to produce it. On an oversubscribed host (more
/// runnable threads than cores — notably the 1-core CI container) a pure
/// spinner burns its entire scheduler quantum (~4 ms) while the thread it
/// waits on is runnable but not running, quantizing throughput at one
/// wait/wakeup pair per quantum. Yielding after a short spin caps that
/// stall at the cost of one syscall on the (rare) saturated path.
class SpinWait {
 public:
  /// One fruitless iteration: spin while young, yield once saturated.
  void pause() noexcept {
    if (spins_ < kYieldThreshold) {
      ++spins_;
      detail::cpu_relax();
    } else {
      std::this_thread::yield();
    }
  }

  /// Progress was made: start the spin budget over.
  void reset() noexcept { spins_ = 0; }

 private:
  static constexpr std::uint32_t kYieldThreshold = 64;
  std::uint32_t spins_ = 0;
};

/// Test-and-test-and-set spinlock with exponential backoff.
///
/// This is the per-instance (CRI) lock: critical sections are short
/// (inject one message / poll one CQ), so spinning beats blocking, and
/// try_lock() is the primitive the paper's Algorithm 2 is built on.
class alignas(kCacheLine) FAIRMPI_CAPABILITY("mutex") Spinlock {
 public:
  Spinlock() = default;
  Spinlock(const Spinlock&) = delete;
  Spinlock& operator=(const Spinlock&) = delete;

  void lock() noexcept FAIRMPI_ACQUIRE() {
    std::uint32_t backoff = 1;
    for (;;) {
      if (!locked_.exchange(true, std::memory_order_acquire)) return;
      // Spin on a plain load first so the lock line stays shared while held.
      while (locked_.load(std::memory_order_relaxed)) {
        if (backoff < kMaxBackoff) {
          for (std::uint32_t i = 0; i < backoff; ++i) detail::cpu_relax();
          backoff <<= 1;
        } else {
          // Saturated backoff: the holder has been in for a while — likely
          // descheduled. Yield so it can run (critical on 1-core hosts).
          std::this_thread::yield();
        }
      }
    }
  }

  /// CONTRACT: a FAILED try_lock performs no acquire operation — the
  /// fast-path load below is deliberately relaxed, and on failure the
  /// exchange is never executed. Callers must not rely on a failed
  /// try_lock for memory ordering (no happens-before edge with the lock
  /// holder is established). Algorithm 2's sweep depends on this: a
  /// progress thread probing a busy sibling instance must observe nothing
  /// of that instance's in-flight critical section, and the probe must
  /// stay a read-only cache hit rather than a bus transaction.
  /// (Covered by Spinlock.FailedTryLockIsEffectFree in tests/common.)
  bool try_lock() noexcept FAIRMPI_TRY_ACQUIRE(true) {
    // Fail fast without a bus transaction if the lock is visibly held.
    // lint: allow(relaxed-sync) gate only; the exchange below is the acquire
    if (locked_.load(std::memory_order_relaxed)) return false;
    return !locked_.exchange(true, std::memory_order_acquire);
  }

  void unlock() noexcept FAIRMPI_RELEASE() {
    locked_.store(false, std::memory_order_release);
  }

  /// Non-synchronizing peek, for stats/heuristics only.
  bool is_locked() const noexcept { return locked_.load(std::memory_order_relaxed); }

 private:
  std::atomic<bool> locked_{false};

  static constexpr std::uint32_t kMaxBackoff = 1024;
};

/// FIFO ticket lock.
///
/// Used where fairness matters for reproducibility — most importantly the
/// serial progress-engine funnel, where an unfair lock would let one thread
/// starve the others and distort message-rate measurements.
class alignas(kCacheLine) FAIRMPI_CAPABILITY("mutex") TicketLock {
 public:
  TicketLock() = default;
  TicketLock(const TicketLock&) = delete;
  TicketLock& operator=(const TicketLock&) = delete;

  void lock() noexcept FAIRMPI_ACQUIRE() {
    const std::uint32_t my = next_.fetch_add(1, std::memory_order_relaxed);
    SpinWait waiter;
    // FIFO hand-off: the yield in SpinWait matters doubly here — ticket
    // holders ahead of us cannot be overtaken, so spinning while one of
    // them is descheduled would stall the whole queue.
    while (serving_.load(std::memory_order_acquire) != my) waiter.pause();
  }

  bool try_lock() noexcept FAIRMPI_TRY_ACQUIRE(true) {
    // The acquire below is the synchronization point: unlock() publishes
    // the critical section with a release store to serving_, so the edge
    // must be read from serving_ — an acquire on the next_ CAS pairs with
    // nothing (all next_ RMWs are relaxed) and leaves the previous
    // holder's writes unordered. TSan caught exactly that as a data race
    // between two lock-protected sections (LockTest.TryLockMixedWithLock).
    std::uint32_t serving = serving_.load(std::memory_order_acquire);
    std::uint32_t expected = serving;
    // Only take a ticket if we would be served immediately. A failed probe
    // still consumes no ticket and writes nothing (see Spinlock::try_lock).
    if (next_.load(std::memory_order_relaxed) != serving) return false;
    return next_.compare_exchange_strong(expected, serving + 1, std::memory_order_relaxed,
                                         std::memory_order_relaxed);
  }

  void unlock() noexcept FAIRMPI_RELEASE() {
    serving_.store(serving_.load(std::memory_order_relaxed) + 1, std::memory_order_release);
  }

 private:
  std::atomic<std::uint32_t> next_{0};
  alignas(kCacheLine) std::atomic<std::uint32_t> serving_{0};
};

}  // namespace fairmpi
