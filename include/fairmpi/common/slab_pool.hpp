// Slab allocator with per-thread freelist caches.
//
// The paper's hot-path discipline (§II-C: "a real allocation on the critical
// path") demands that steady-state injection/extraction/matching never call
// the general-purpose allocator. SlabArena provides the mechanism: slots are
// carved from slabs in batches, recycled through a per-thread cache (no
// synchronization at all on the common path), and rebalanced through a
// spinlock-protected global freelist when a cache runs dry or overflows —
// which is also the TSan-clean cross-thread return path (objects may be
// acquired on one thread and released on another; the global lock's
// release/acquire edge orders the handoff).
//
// Slots are rounded up to a whole number of cache lines so objects handed to
// different threads never share a line (the same false-sharing rule as
// common/align.hpp).
//
// SlabPool<T> is the typed veneer used directly by engines (unexpected-match
// nodes); fabric::PayloadPool (fabric/wire.hpp) builds size-classed payload
// recycling for packets and rendezvous fragments on the same arena.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <utility>
#include <vector>

#include "fairmpi/common/align.hpp"
#include "fairmpi/common/error.hpp"
#include "fairmpi/common/spinlock.hpp"
#include "fairmpi/common/thread_slot.hpp"
#include "fairmpi/debug/lockcheck.hpp"
#include "fairmpi/debug/thread_safety.hpp"

namespace fairmpi::common {

/// Untyped slab arena: fixed slot size, per-thread caches, global spillover.
class SlabArena {
 public:
  /// @param slot_bytes    payload bytes per slot (rounded up to cache lines)
  /// @param slab_slots    slots carved per slab allocation
  explicit SlabArena(std::size_t slot_bytes, std::size_t slab_slots = 64)
      : slot_bytes_(round_up(slot_bytes < sizeof(void*) ? sizeof(void*) : slot_bytes,
                             kCacheLine)),
        slab_slots_(slab_slots) {
    FAIRMPI_CHECK(slab_slots >= 1);
  }

  SlabArena(const SlabArena&) = delete;
  SlabArena& operator=(const SlabArena&) = delete;

  /// Frees the slabs wholesale. All objects must already be released (or be
  /// trivially destructible): the arena does not track live slots.
  ~SlabArena() = default;

  /// Pop a raw slot. Allocation-free whenever the thread cache or the global
  /// freelist has a slot; grows a new slab (the only malloc) otherwise.
  void* acquire() {
    const int slot = this_thread_slot();
    if (slot != kNoThreadSlot) {
      Cache& c = *caches_[static_cast<std::size_t>(slot)];
      if (c.head != nullptr) {
        FreeNode* n = c.head;
        c.head = n->next;
        --c.count;
        return n;
      }
      refill(c);
      FreeNode* n = c.head;
      c.head = n->next;
      --c.count;
      return n;
    }
    // Registry exhausted (> kMaxThreadSlots live threads): contended path.
    LockGuard guard(global_lock_);
    if (global_head_ == nullptr) grow_locked();
    FreeNode* n = global_head_;
    global_head_ = n->next;
    global_count_ -= 1;
    return n;
  }

  /// Return a slot, possibly from a different thread than acquired it.
  void release(void* p) noexcept {
    auto* n = static_cast<FreeNode*>(p);
    const int slot = this_thread_slot();
    if (slot != kNoThreadSlot) {
      Cache& c = *caches_[static_cast<std::size_t>(slot)];
      n->next = c.head;
      c.head = n;
      if (++c.count > kCacheHighWater) flush(c);
      return;
    }
    LockGuard guard(global_lock_);
    n->next = global_head_;
    global_head_ = n;
    global_count_ += 1;
  }

  std::size_t slot_bytes() const noexcept { return slot_bytes_; }

  /// Diagnostics (exact only when quiescent).
  std::size_t slabs_allocated() const noexcept {
    LockGuard guard(global_lock_);
    return slabs_.size();
  }

 private:
  struct FreeNode {
    FreeNode* next;
  };
  /// One cache line per thread slot; `head`/`count` are only ever touched by
  /// the slot's owning thread (thread_slot.hpp guarantees unique ownership
  /// among live threads and orders handover across thread exit/reuse).
  struct alignas(kCacheLine) Cache {
    FreeNode* head = nullptr;
    std::uint32_t count = 0;
  };

  static constexpr std::uint32_t kRefillBatch = 16;
  static constexpr std::uint32_t kCacheHighWater = 2 * kRefillBatch;

  /// Move up to kRefillBatch slots global -> cache, growing a slab if the
  /// global list is empty too.
  void refill(Cache& c) {
    LockGuard guard(global_lock_);
    if (global_head_ == nullptr) grow_locked();
    std::uint32_t moved = 0;
    while (global_head_ != nullptr && moved < kRefillBatch) {
      FreeNode* n = global_head_;
      global_head_ = n->next;
      n->next = c.head;
      c.head = n;
      ++moved;
    }
    global_count_ -= moved;
    c.count += moved;
  }

  /// Move kRefillBatch slots cache -> global (keeps caches bounded so one
  /// producer-only thread cannot strand the whole pool).
  void flush(Cache& c) noexcept {
    LockGuard guard(global_lock_);
    for (std::uint32_t i = 0; i < kRefillBatch && c.head != nullptr; ++i) {
      FreeNode* n = c.head;
      c.head = n->next;
      n->next = global_head_;
      global_head_ = n;
      --c.count;
      global_count_ += 1;
    }
  }

  /// Carve one slab into the global freelist. global_lock_ held.
  void grow_locked() FAIRMPI_REQUIRES(global_lock_) {
    // lint: allow(hotpath-alloc) the pool's one real allocation: carving a slab
    auto slab = std::make_unique<std::byte[]>(slot_bytes_ * slab_slots_ + kCacheLine);
    // Align the first slot to a cache line; slot_bytes_ is a multiple of
    // kCacheLine so every subsequent slot stays aligned.
    auto base = reinterpret_cast<std::uintptr_t>(slab.get());
    base = (base + kCacheLine - 1) & ~(static_cast<std::uintptr_t>(kCacheLine) - 1);
    for (std::size_t i = 0; i < slab_slots_; ++i) {
      auto* n = reinterpret_cast<FreeNode*>(base + i * slot_bytes_);
      n->next = global_head_;
      global_head_ = n;
    }
    global_count_ += slab_slots_;
    slabs_.push_back(std::move(slab));
  }

  const std::size_t slot_bytes_;
  const std::size_t slab_slots_;
  std::vector<Padded<Cache>> caches_{static_cast<std::size_t>(kMaxThreadSlots)};
  /// Leaf lock: refill/flush may run under any engine lock (rank kSlabPool
  /// sits above the whole hierarchy) and acquires nothing itself.
  mutable RankedLock<Spinlock> global_lock_{LockRank::kSlabPool, "common.slab-pool"};
  FreeNode* global_head_ FAIRMPI_GUARDED_BY(global_lock_) = nullptr;
  std::size_t global_count_ FAIRMPI_GUARDED_BY(global_lock_) = 0;
  std::vector<std::unique_ptr<std::byte[]>> slabs_ FAIRMPI_GUARDED_BY(global_lock_);
};

/// Typed pool over SlabArena: placement-constructs on acquire, destroys on
/// release. The owner must release every live object before destroying the
/// pool (slabs are freed wholesale without running destructors).
template <typename T>
class SlabPool {
 public:
  explicit SlabPool(std::size_t slab_objects = 64) : arena_(sizeof(T), slab_objects) {
    static_assert(alignof(T) <= kCacheLine, "slots are cache-line aligned");
  }

  template <typename... Args>
  T* acquire(Args&&... args) {
    void* p = arena_.acquire();
    return ::new (p) T(std::forward<Args>(args)...);
  }

  void release(T* obj) noexcept {
    obj->~T();
    arena_.release(obj);
  }

  std::size_t slabs_allocated() const noexcept { return arena_.slabs_allocated(); }

 private:
  SlabArena arena_;
};

}  // namespace fairmpi::common
