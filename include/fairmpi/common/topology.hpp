// Cache/NUMA topology probe for CRI placement (no hwloc dependency).
//
// Zambre et al.'s endpoint scaling results assume the replicated resources
// actually live apart: two CRIs whose state shares an LLC domain still
// exchange coherence traffic even when software contention is zero. This
// probe answers the one placement question the pool needs — "which last-
// level-cache (or, failing that, NUMA) domain does each CPU belong to?" —
// straight from sysfs:
//
//   /sys/devices/system/cpu/online                         population
//   /sys/devices/system/cpu/cpuN/cache/index3/shared_cpu_list   LLC peers
//   (fallback) /sys/devices/system/node/nodeK/cpulist           NUMA peers
//
// Domains are numbered by first appearance (CPU order), so domain ids are
// dense and stable for a given machine. Hosts that expose neither cache
// nor node layout (minimal containers, the 1-CPU CI runner) degenerate to
// a single domain, in which case topology-aware placement collapses to the
// plain round-robin it replaced — same behaviour, zero special-casing.
//
// The probe runs once per process (cpu_topology() caches); tests inject
// synthetic layouts either by pointing probe_topology() at a mocked sysfs
// root or via set_topology_for_testing().
#pragma once

#include <string>
#include <vector>

namespace fairmpi::common {

/// Result of one topology probe. `cpu_domain[cpu]` is the locality domain
/// (LLC if known, else NUMA node, else 0) of that CPU id; CPUs the probe
/// never saw (offline/sparse numbering) map to domain 0.
struct CpuTopology {
  int num_cpus = 1;
  int num_domains = 1;
  std::vector<int> cpu_domain;  ///< size num_cpus, values in [0, num_domains)

  /// Domain of `cpu`, tolerant of out-of-range ids (negative sched_getcpu
  /// failures, hotplugged CPUs beyond the probed range).
  int domain_of(int cpu) const noexcept {
    if (cpu < 0 || cpu >= static_cast<int>(cpu_domain.size())) return 0;
    return cpu_domain[static_cast<std::size_t>(cpu)];
  }
};

/// Parse a sysfs cpulist string ("0-3,8,10-11") into CPU ids, ascending.
/// Malformed chunks are skipped rather than fatal — a probe that fails
/// degrades placement quality, never correctness.
std::vector<int> parse_cpu_list(const std::string& list);

/// Probe `sysfs_root` (default "/sys") for the CPU→domain map. Never
/// throws; on any gap it falls back as described in the file comment.
CpuTopology probe_topology(const std::string& sysfs_root = "/sys");

/// The process-wide cached probe of the real /sys (or the injected test
/// topology). First call probes; later calls are a pointer read.
const CpuTopology& cpu_topology();

/// CPU the calling thread is running on right now (sched_getcpu), or -1
/// when the kernel cannot say. Advisory: the thread may migrate the next
/// instant — placement treats it as a locality *hint*, never an identity.
int current_cpu() noexcept;

/// Test hooks: install a synthetic topology for cpu_topology() / clear it
/// back to the real probe. Not thread-safe; call before pools exist.
void set_topology_for_testing(CpuTopology topo);
void clear_topology_for_testing();

}  // namespace fairmpi::common
