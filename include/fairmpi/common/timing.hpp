// Wall-clock timing utilities for the real backend and the benches.
#pragma once

#include <chrono>
#include <cstdint>

namespace fairmpi {

/// Monotonic nanoseconds since an arbitrary epoch.
inline std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Accumulates elapsed time into a plain counter; used by the SPC match-time
/// counter, which is only ever updated while the matching lock is held (so a
/// non-atomic accumulator is race-free by construction).
class ScopedElapsed {
 public:
  explicit ScopedElapsed(std::uint64_t& sink) noexcept : sink_(sink), start_(now_ns()) {}
  ScopedElapsed(const ScopedElapsed&) = delete;
  ScopedElapsed& operator=(const ScopedElapsed&) = delete;
  ~ScopedElapsed() { sink_ += now_ns() - start_; }

 private:
  std::uint64_t& sink_;
  std::uint64_t start_;
};

/// Simple stopwatch for bench loops.
class Stopwatch {
 public:
  Stopwatch() : start_(now_ns()) {}
  void reset() noexcept { start_ = now_ns(); }
  std::uint64_t elapsed_ns() const noexcept { return now_ns() - start_; }
  double elapsed_s() const noexcept { return static_cast<double>(elapsed_ns()) * 1e-9; }

 private:
  std::uint64_t start_;
};

}  // namespace fairmpi
