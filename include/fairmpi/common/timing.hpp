// Wall-clock timing utilities for the real backend and the benches.
#pragma once

#include <chrono>
#include <cstdint>

namespace fairmpi {

/// Monotonic nanoseconds since an arbitrary epoch.
inline std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Cheap cycle counter for hot-path interval timing.
///
/// The match path times every critical section for the kMatchTimeNs SPC
/// (paper Table II). clock_gettime — even through the vDSO — costs ~20 ns
/// per read; with two reads per post() and two per incoming() that was a
/// third of the whole in-order matching cost (bench_ablation_matching).
/// On x86-64 we read the TSC instead (invariant/constant-rate on every
/// microarchitecture we target) and convert to nanoseconds only when the
/// counter is *read*, off the hot path. Other architectures fall back to
/// the monotonic clock.
class CycleClock {
 public:
  static std::uint64_t now() noexcept {
#if defined(__x86_64__)
    return __builtin_ia32_rdtsc();
#else
    return now_ns();
#endif
  }

  /// Convert a cycle delta to nanoseconds. Calibrated once per process
  /// against the monotonic clock (~0.1% accuracy — SPC-grade, not
  /// benchmark-grade).
  static std::uint64_t to_ns(std::uint64_t cycles) noexcept {
#if defined(__x86_64__)
    return static_cast<std::uint64_t>(static_cast<double>(cycles) * ns_per_cycle());
#else
    return cycles;
#endif
  }

 private:
#if defined(__x86_64__)
  static double ns_per_cycle() noexcept {
    static const double ratio = [] {
      const std::uint64_t t0 = now_ns();
      const std::uint64_t c0 = __builtin_ia32_rdtsc();
      // ~2 ms busy window: long enough to swamp the two clock reads.
      while (now_ns() - t0 < 2'000'000) {
      }
      const std::uint64_t c1 = __builtin_ia32_rdtsc();
      const std::uint64_t t1 = now_ns();
      return c1 > c0 ? static_cast<double>(t1 - t0) / static_cast<double>(c1 - c0) : 1.0;
    }();
    return ratio;
  }
#endif
};

/// Accumulates elapsed *cycles* into a plain counter (convert with
/// CycleClock::to_ns when reporting). Used under the matching lock, so a
/// non-atomic accumulator is race-free by construction.
class ScopedCycles {
 public:
  explicit ScopedCycles(std::uint64_t& sink) noexcept
      : sink_(sink), start_(CycleClock::now()) {}
  ScopedCycles(const ScopedCycles&) = delete;
  ScopedCycles& operator=(const ScopedCycles&) = delete;
  ~ScopedCycles() { sink_ += CycleClock::now() - start_; }

 private:
  std::uint64_t& sink_;
  std::uint64_t start_;
};

/// Accumulates elapsed time into a plain counter; used by the SPC match-time
/// counter, which is only ever updated while the matching lock is held (so a
/// non-atomic accumulator is race-free by construction).
class ScopedElapsed {
 public:
  explicit ScopedElapsed(std::uint64_t& sink) noexcept : sink_(sink), start_(now_ns()) {}
  ScopedElapsed(const ScopedElapsed&) = delete;
  ScopedElapsed& operator=(const ScopedElapsed&) = delete;
  ~ScopedElapsed() { sink_ += now_ns() - start_; }

 private:
  std::uint64_t& sink_;
  std::uint64_t start_;
};

/// Simple stopwatch for bench loops.
class Stopwatch {
 public:
  Stopwatch() : start_(now_ns()) {}
  void reset() noexcept { start_ = now_ns(); }
  std::uint64_t elapsed_ns() const noexcept { return now_ns() - start_; }
  double elapsed_s() const noexcept { return static_cast<double>(elapsed_ns()) * 1e-9; }

 private:
  std::uint64_t start_;
};

}  // namespace fairmpi
