// Deterministic random number generation.
//
// xoshiro256** seeded via splitmix64. Every simulated component draws from
// its own stream so the discrete-event model is bit-reproducible regardless
// of scheduling (DESIGN.md §5: same seed + config => identical series).
#pragma once

#include <cstdint>

namespace fairmpi {

/// splitmix64 — used to expand a single seed into full generator state.
struct SplitMix64 {
  std::uint64_t state;

  explicit SplitMix64(std::uint64_t seed) : state(seed) {}

  std::uint64_t next() noexcept {
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
};

/// xoshiro256** 1.0 — fast, high-quality 64-bit generator.
/// Satisfies UniformRandomBitGenerator so it plugs into <random>.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    SplitMix64 sm(seed);
    for (auto& w : s_) w = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t bounded(std::uint64_t bound) noexcept {
    if (bound == 0) return 0;
    const unsigned __int128 m =
        static_cast<unsigned __int128>((*this)()) * static_cast<unsigned __int128>(bound);
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Derive an independent stream (for per-actor RNGs in the simulator).
  Xoshiro256 fork() noexcept { return Xoshiro256((*this)() ^ 0xd1b54a32d192ed03ULL); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4]{};
};

}  // namespace fairmpi
