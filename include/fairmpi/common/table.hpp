// Result presentation: aligned ASCII tables, CSV dumps, and log/linear-scale
// ASCII charts so each bench binary can print the paper's tables and a
// terminal rendering of each figure's series.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace fairmpi {

/// Column-aligned ASCII table (also CSV-exportable).
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Aligned, boxed rendering for terminals.
  std::string render() const;

  /// RFC-4180-ish CSV (no quoting of commas needed for our content, but
  /// cells containing commas or quotes are quoted anyway).
  void write_csv(std::ostream& os) const;

  std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// "1.23 M", "456 K", "7.8 G" — matches the paper's axis labelling.
std::string format_si(double value, int precision = 2);

/// Format nanoseconds as "1.23 ms" / "456 us" / ...
std::string format_ns(double ns);

/// Multi-series ASCII chart. One series per (name, points) pair; points are
/// (x, y). Renders a braille-free, plain-ASCII plot with per-series marker
/// characters and a legend — enough to eyeball the paper's curve shapes in
/// a terminal or CI log.
class SeriesChart {
 public:
  SeriesChart(std::string title, std::string x_label, std::string y_label);

  void set_log_y(bool log_y) noexcept { log_y_ = log_y; }

  void add_series(std::string name, std::vector<std::pair<double, double>> points);

  std::string render(int width = 72, int height = 20) const;

  /// Dump all series as long-format CSV: series,x,y.
  void write_csv(std::ostream& os) const;

 private:
  struct Series {
    std::string name;
    char marker;
    std::vector<std::pair<double, double>> points;
  };

  std::string title_;
  std::string x_label_;
  std::string y_label_;
  bool log_y_ = false;
  std::vector<Series> series_;
};

}  // namespace fairmpi
