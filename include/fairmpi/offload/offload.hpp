// Software offloading (paper ref [20]; DESIGN.md §6 extension).
//
// An alternative answer to multithreaded MPI: instead of letting N threads
// into the engine (and paying for locks), funnel every operation through a
// lock-less command queue to ONE dedicated communication thread that owns
// the engine outright. Application threads never contend on engine locks;
// they pay one queue enqueue per operation and wait on the request flag.
//
// Trade-off (visible in the model's Fig. 5 extension series): no lock
// storms — but the aggregate rate is capped by the single comm thread,
// so it cannot approach the CRI designs' parallel injection.
#pragma once

#include <atomic>
#include <cstddef>
#include <thread>

#include "fairmpi/common/mpsc_ring.hpp"
#include "fairmpi/core/universe.hpp"

namespace fairmpi::offload {

/// Drives one Rank from a dedicated communication thread. Application
/// threads submit through submit_*() (wait-free except under queue
/// backpressure) and complete via Request::done() — they must NOT call
/// Rank::progress()/wait() themselves (that would defeat the design and
/// reintroduce engine contention).
class OffloadDriver {
 public:
  /// @param queue_entries  command-queue capacity (backpressure bound)
  explicit OffloadDriver(Rank& rank, std::size_t queue_entries = 4096);
  ~OffloadDriver();

  OffloadDriver(const OffloadDriver&) = delete;
  OffloadDriver& operator=(const OffloadDriver&) = delete;

  /// Enqueue a send; `req` completes once the comm thread has injected it.
  void submit_isend(CommId comm, int dst, int tag, const void* buf, std::size_t n,
                    Request& req);
  /// Enqueue a receive post; `req` completes when the message arrives.
  void submit_irecv(CommId comm, int src, int tag, void* buf, std::size_t capacity,
                    Request& req);

  /// Spin until the request completes (no engine work — the comm thread
  /// does it all).
  static void wait(const Request& req) {
    while (!req.done()) detail::cpu_relax();
  }

  /// Commands accepted so far (diagnostics).
  std::uint64_t submitted() const noexcept {
    return submitted_.load(std::memory_order_relaxed);
  }

 private:
  struct Command {
    enum class Kind : std::uint8_t { kNone = 0, kSend, kRecv };
    Kind kind = Kind::kNone;
    CommId comm = kWorldComm;
    int peer = 0;
    int tag = 0;
    void* buffer = nullptr;
    std::size_t bytes = 0;
    Request* request = nullptr;
  };

  void submit(Command&& cmd);
  void run();  // comm-thread main loop

  Rank& rank_;
  MpscRing<Command> queue_;
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> submitted_{0};
  std::thread worker_;
};

}  // namespace fairmpi::offload
