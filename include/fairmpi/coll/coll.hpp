// Multithreaded collective operations over fairmpi communicators.
//
// Tag-parallel concurrency (DESIGN.md §5i): every communicator carries
// p2p::kMaxCollLanes independent *tag lanes* — disjoint tag blocks inside
// the reserved space starting at kCollTagBase. Each collective runs
// entirely inside one lane, so collectives on different lanes never match
// each other's traffic:
//
//   - N threads on N per-thread communicators (the paper's §III-F trick)
//     each use lane 0 of their own communicator — fully concurrent.
//   - Multiple outstanding collectives on ONE communicator use explicit
//     CollHandle reservations. Lane assignment is lowest-free-bit, so
//     handles acquired in the same order on every rank agree on the lane
//     number everywhere — that ordering is the caller's contract, exactly
//     like the MPI requirement that ranks enter collectives in the same
//     order. Calls without a handle take a scoped lane internally; with
//     one collective in flight per communicator (the pre-§5i rule) that
//     is always lane 0 and nothing changes.
//
// Algorithms: binomial trees for broadcast/reduce (log2(n) rounds) with
// pipelined segmentation above Config::coll_segment_bytes (cvar
// `coll_segment_bytes`, env FAIRMPI_COLL_SEGMENT_BYTES); allreduce is
// reduce+broadcast below Config::coll_rsag_min_bytes (cvar
// `coll_rsag_min_bytes`) and a bandwidth-optimal ring reduce-scatter +
// allgather at or above it; linear gather/scatter. Segmentation relies on
// in-order matching and turns itself off under allow_overtaking.
//
// Failure tolerance (DESIGN.md §5g): every collective returns a typed
// common::ErrorCode. kOk on success; kPeerFailed when a partner rank died
// mid-collective (detected by the failure detector); kCommRevoked when the
// communicator was revoked. A non-kOk return means the collective did NOT
// complete — output buffers may be partially written and the communicator
// should be revoked (then shrunk) before further use, since other ranks may
// be stranded mid-tree. Callers that predate ft can keep ignoring the
// return value: with ft off the codes can never occur. Every internal
// round honours Config::op_deadline_ns with ONE deadline computed at
// collective entry (the barrier_checked rule).
//
// Observability: collectives account kCollOps/kCollRounds/kCollSegments/
// kCollLane* and per-algorithm SPCs (exported by dump_observability and
// rendered by tools/obs_report.py) and record a kCollOp trace event.
#pragma once

#include <cstddef>
#include <cstring>
#include <type_traits>

#include "fairmpi/common/error.hpp"
#include "fairmpi/core/universe.hpp"

namespace fairmpi::coll {

/// Reserved tag block for collective traffic. User tags must stay below:
/// Communicator::isend/irecv fail tags >= this typed kReservedTag.
inline constexpr int kCollTagBase = p2p::kReservedTagBase;

/// Tags consumed per lane (operation offsets within a lane).
inline constexpr int kCollLaneStride = 8;

/// Concurrent collectives per communicator (one lane each).
inline constexpr int kMaxCollLanes = p2p::kMaxCollLanes;

enum class ReduceOp { kSum, kMin, kMax };

namespace detail {

// Per-lane tag offsets. Kept stable so traces are readable: tag =
// kCollTagBase + lane * kCollLaneStride + offset.
inline constexpr int kOffBcast = 0;
inline constexpr int kOffReduce = 1;
inline constexpr int kOffGather = 2;
inline constexpr int kOffScatter = 3;
inline constexpr int kOffAllreduceRs = 4;  ///< ring reduce-scatter phase
inline constexpr int kOffAllreduceAg = 5;  ///< ring allgather phase

inline constexpr int lane_tag(int lane, int offset) noexcept {
  return kCollTagBase + lane * kCollLaneStride + offset;
}

// Back-compat aliases for the pre-lane fixed tags (lane 0).
inline constexpr int kTagBcast = kCollTagBase + kOffBcast;
inline constexpr int kTagReduce = kCollTagBase + kOffReduce;
inline constexpr int kTagGather = kCollTagBase + kOffGather;
inline constexpr int kTagScatter = kCollTagBase + kOffScatter;
inline constexpr int kTagAllreduce = kCollTagBase + kOffAllreduceRs;

template <typename T>
void apply(ReduceOp op, T* acc, const T* in, std::size_t count) {
  switch (op) {
    case ReduceOp::kSum:
      for (std::size_t i = 0; i < count; ++i) acc[i] = acc[i] + in[i];
      return;
    case ReduceOp::kMin:
      for (std::size_t i = 0; i < count; ++i) acc[i] = in[i] < acc[i] ? in[i] : acc[i];
      return;
    case ReduceOp::kMax:
      for (std::size_t i = 0; i < count; ++i) acc[i] = acc[i] < in[i] ? in[i] : acc[i];
      return;
  }
  FAIRMPI_CHECK_MSG(false, "unknown reduce op");
}

/// Type-erased elementwise reduction, the bridge between the typed public
/// templates and the byte-level cores in src/coll/coll.cpp.
using ReduceFn = void (*)(void* acc, const void* in, std::size_t count);

template <typename T>
ReduceFn reduce_fn(ReduceOp op) {
  switch (op) {
    case ReduceOp::kSum:
      return [](void* acc, const void* in, std::size_t count) {
        apply(ReduceOp::kSum, static_cast<T*>(acc), static_cast<const T*>(in), count);
      };
    case ReduceOp::kMin:
      return [](void* acc, const void* in, std::size_t count) {
        apply(ReduceOp::kMin, static_cast<T*>(acc), static_cast<const T*>(in), count);
      };
    case ReduceOp::kMax:
      return [](void* acc, const void* in, std::size_t count) {
        apply(ReduceOp::kMax, static_cast<T*>(acc), static_cast<const T*>(in), count);
      };
  }
  FAIRMPI_CHECK_MSG(false, "unknown reduce op");
  return nullptr;
}

// Byte-level algorithm cores (src/coll/coll.cpp). `lane` selects the tag
// lane; element counts are bytes / elem_size.
common::ErrorCode broadcast_bytes(Communicator comm, int root, void* data,
                                  std::size_t bytes, int lane);
common::ErrorCode reduce_bytes(Communicator comm, int root, const void* in, void* out,
                               std::size_t bytes, std::size_t elem_size, ReduceFn fn,
                               int lane);
common::ErrorCode allreduce_bytes(Communicator comm, const void* in, void* out,
                                  std::size_t bytes, std::size_t elem_size, ReduceFn fn,
                                  int lane);
common::ErrorCode gather_bytes(Communicator comm, int root, const void* in,
                               std::size_t bytes, void* out, int lane);
common::ErrorCode scatter_bytes(Communicator comm, int root, const void* in, void* out,
                                std::size_t bytes, int lane);

/// Blocking lane acquire: spins (counting kCollLaneWaits) while all
/// kMaxCollLanes lanes of the communicator are busy.
int acquire_lane(Communicator comm);
void release_lane(Communicator comm, int lane);

}  // namespace detail

/// RAII reservation of one collective tag lane on a communicator, enabling
/// multiple outstanding collectives per communicator. Concurrency contract:
/// every rank must acquire its CollHandles for a communicator in the same
/// order (lowest-free-bit allocation then yields the same lane everywhere),
/// and each handle must be used by one thread at a time with all ranks
/// issuing the same collective sequence on it. Blocks while all lanes are
/// busy; destroying the handle frees the lane.
class CollHandle {
 public:
  explicit CollHandle(Communicator comm)
      : comm_(comm), lane_(detail::acquire_lane(comm)) {}
  ~CollHandle() {
    if (lane_ >= 0) detail::release_lane(comm_, lane_);
  }
  CollHandle(const CollHandle&) = delete;
  CollHandle& operator=(const CollHandle&) = delete;
  CollHandle(CollHandle&& other) noexcept : comm_(other.comm_), lane_(other.lane_) {
    other.lane_ = -1;
  }
  CollHandle& operator=(CollHandle&&) = delete;

  int lane() const noexcept { return lane_; }
  Communicator comm() const noexcept { return comm_; }

 private:
  Communicator comm_;
  int lane_;
};

namespace detail {

/// Lane for one collective call: the handle's reservation, or a scoped
/// acquire for handle-less calls (which yields lane 0 in the classic
/// one-collective-per-communicator usage).
class LaneScope {
 public:
  LaneScope(Communicator comm, const CollHandle* handle)
      : comm_(comm),
        lane_(handle != nullptr ? handle->lane() : acquire_lane(comm)),
        owned_(handle == nullptr) {}
  ~LaneScope() {
    if (owned_) release_lane(comm_, lane_);
  }
  LaneScope(const LaneScope&) = delete;
  LaneScope& operator=(const LaneScope&) = delete;

  int lane() const noexcept { return lane_; }

 private:
  Communicator comm_;
  int lane_;
  bool owned_;
};

}  // namespace detail

/// Block until every rank of the communicator has entered the barrier (or
/// the communicator breaks: see the failure-tolerance contract above).
inline common::ErrorCode barrier(Communicator comm) { return comm.barrier_checked(); }

/// Broadcast `count` elements from `root`'s `data` to every rank's `data`.
/// Binomial tree, O(log n) rounds; payloads above Config::coll_segment_bytes
/// are pipelined through the tree in segments.
template <typename T>
common::ErrorCode broadcast(Communicator comm, int root, T* data, std::size_t count,
                            const CollHandle* handle = nullptr) {
  static_assert(std::is_trivially_copyable_v<T>);
  const int n = comm.size();
  FAIRMPI_CHECK_MSG(root >= 0 && root < n, "invalid broadcast root");
  if (n == 1) return common::ErrorCode::kOk;
  detail::LaneScope lane(comm, handle);
  return detail::broadcast_bytes(comm, root, data, count * sizeof(T), lane.lane());
}

/// Reduce `count` elements from every rank's `in` into `root`'s `out`
/// (elementwise `op`). Binomial tree, O(log n) rounds; `out` is only
/// written at the root (may be null elsewhere).
template <typename T>
common::ErrorCode reduce(Communicator comm, int root, const T* in, T* out,
                         std::size_t count, ReduceOp op,
                         const CollHandle* handle = nullptr) {
  static_assert(std::is_trivially_copyable_v<T>);
  const int n = comm.size();
  FAIRMPI_CHECK_MSG(root >= 0 && root < n, "invalid reduce root");
  if (comm.rank() == root) {
    FAIRMPI_CHECK_MSG(out != nullptr, "reduce root needs an output buffer");
  }
  if (n == 1) {
    std::memcpy(out, in, count * sizeof(T));
    return common::ErrorCode::kOk;
  }
  detail::LaneScope lane(comm, handle);
  return detail::reduce_bytes(comm, root, in, out, count * sizeof(T), sizeof(T),
                              detail::reduce_fn<T>(op), lane.lane());
}

/// Allreduce: `out` is written everywhere. Reduce+broadcast below
/// Config::coll_rsag_min_bytes, ring reduce-scatter + allgather above.
template <typename T>
common::ErrorCode allreduce(Communicator comm, const T* in, T* out, std::size_t count,
                            ReduceOp op, const CollHandle* handle = nullptr) {
  static_assert(std::is_trivially_copyable_v<T>);
  if (comm.size() == 1) {
    std::memcpy(out, in, count * sizeof(T));
    return common::ErrorCode::kOk;
  }
  detail::LaneScope lane(comm, handle);
  return detail::allreduce_bytes(comm, in, out, count * sizeof(T), sizeof(T),
                                 detail::reduce_fn<T>(op), lane.lane());
}

/// Gather `count` elements from every rank into `root`'s `out`
/// (rank i's block lands at out + i*count). Linear.
template <typename T>
common::ErrorCode gather(Communicator comm, int root, const T* in, std::size_t count,
                         T* out, const CollHandle* handle = nullptr) {
  static_assert(std::is_trivially_copyable_v<T>);
  const int n = comm.size();
  FAIRMPI_CHECK_MSG(root >= 0 && root < n, "invalid gather root");
  if (comm.rank() == root) {
    FAIRMPI_CHECK_MSG(out != nullptr, "gather root needs an output buffer");
  }
  if (n == 1) {
    std::memcpy(out, in, count * sizeof(T));
    return common::ErrorCode::kOk;
  }
  detail::LaneScope lane(comm, handle);
  return detail::gather_bytes(comm, root, in, count * sizeof(T), out, lane.lane());
}

/// Scatter `count` elements per rank from `root`'s `in` (rank i's block at
/// in + i*count) into every rank's `out`. Linear.
template <typename T>
common::ErrorCode scatter(Communicator comm, int root, const T* in, T* out,
                          std::size_t count, const CollHandle* handle = nullptr) {
  static_assert(std::is_trivially_copyable_v<T>);
  const int n = comm.size();
  FAIRMPI_CHECK_MSG(root >= 0 && root < n, "invalid scatter root");
  if (comm.rank() == root) {
    FAIRMPI_CHECK_MSG(in != nullptr, "scatter root needs an input buffer");
  }
  if (n == 1) {
    std::memcpy(out, in, count * sizeof(T));
    return common::ErrorCode::kOk;
  }
  detail::LaneScope lane(comm, handle);
  return detail::scatter_bytes(comm, root, in, out, count * sizeof(T), lane.lane());
}

}  // namespace fairmpi::coll
