// Collective operations over fairmpi communicators (substrate extension:
// the paper's benchmarks are point-to-point/RMA, but a library a
// downstream application can adopt needs the collective basics).
//
// Semantics follow blocking MPI collectives: exactly one thread per rank
// participates in a given collective call, every rank of the communicator
// must participate, and at most one collective is in flight per
// communicator at a time (use distinct communicators for concurrent
// collectives — cheap here, and exactly the paper's §III-F trick).
//
// Algorithms: binomial trees for broadcast/reduce (log2(n) rounds),
// reduce+broadcast for allreduce, linear gather/scatter. Internal traffic
// uses the reserved tag block starting at kCollTagBase, far above user
// tags.
//
// Failure tolerance (DESIGN.md §5g): every collective returns a typed
// common::ErrorCode. kOk on success; kPeerFailed when a partner rank died
// mid-collective (detected by the failure detector); kCommRevoked when the
// communicator was revoked. A non-kOk return means the collective did NOT
// complete — output buffers may be partially written and the communicator
// should be revoked (then shrunk) before further use, since other ranks may
// be stranded mid-tree. Callers that predate ft can keep ignoring the
// return value: with ft off the codes can never occur.
#pragma once

#include <cstddef>
#include <cstring>
#include <vector>

#include "fairmpi/common/error.hpp"
#include "fairmpi/core/universe.hpp"

namespace fairmpi::coll {

/// Reserved tag block for collective traffic (user tags must stay below).
inline constexpr int kCollTagBase = 1 << 29;

enum class ReduceOp { kSum, kMin, kMax };

namespace detail {

inline constexpr int kTagBcast = kCollTagBase + 0;
inline constexpr int kTagReduce = kCollTagBase + 1;
inline constexpr int kTagGather = kCollTagBase + 2;
inline constexpr int kTagScatter = kCollTagBase + 3;
inline constexpr int kTagAllreduce = kCollTagBase + 4;

template <typename T>
void apply(ReduceOp op, T* acc, const T* in, std::size_t count) {
  switch (op) {
    case ReduceOp::kSum:
      for (std::size_t i = 0; i < count; ++i) acc[i] = acc[i] + in[i];
      return;
    case ReduceOp::kMin:
      for (std::size_t i = 0; i < count; ++i) acc[i] = in[i] < acc[i] ? in[i] : acc[i];
      return;
    case ReduceOp::kMax:
      for (std::size_t i = 0; i < count; ++i) acc[i] = acc[i] < in[i] ? in[i] : acc[i];
      return;
  }
  FAIRMPI_CHECK_MSG(false, "unknown reduce op");
}

}  // namespace detail

/// Block until every rank of the communicator has entered the barrier (or
/// the communicator breaks: see the failure-tolerance contract above).
inline common::ErrorCode barrier(Communicator comm) { return comm.barrier_checked(); }

/// Broadcast `count` elements from `root`'s `data` to every rank's `data`.
/// Binomial tree: O(log n) rounds.
template <typename T>
common::ErrorCode broadcast(Communicator comm, int root, T* data, std::size_t count) {
  static_assert(std::is_trivially_copyable_v<T>);
  const int n = comm.size();
  const int me = comm.rank();
  FAIRMPI_CHECK_MSG(root >= 0 && root < n, "invalid broadcast root");
  if (n == 1) return common::ErrorCode::kOk;
  const std::size_t bytes = count * sizeof(T);

  // Virtual ranks put the root at 0. A rank receives from the parent that
  // differs in its lowest set bit, then forwards to children at every
  // lower bit position (standard binomial broadcast).
  const int vr = (me - root + n) % n;
  int mask = 1;
  while (mask < n && (vr & mask) == 0) mask <<= 1;  // lowest set bit (or >= n at root)
  if (vr != 0) {
    const int parent = ((vr - mask) + root) % n;  // clear the lowest set bit
    const auto rc = comm.recv_checked(parent, detail::kTagBcast, data, bytes);
    if (rc != common::ErrorCode::kOk) return rc;
  }
  mask >>= 1;
  for (; mask > 0; mask >>= 1) {
    if (vr + mask < n) {
      const int child = (vr + mask + root) % n;
      const auto rc = comm.send_checked(child, detail::kTagBcast, data, bytes);
      if (rc != common::ErrorCode::kOk) return rc;
    }
  }
  return common::ErrorCode::kOk;
}

/// Reduce `count` elements from every rank's `in` into `root`'s `out`
/// (elementwise `op`). Binomial tree, O(log n) rounds; `out` is only
/// written at the root (may be null elsewhere).
template <typename T>
common::ErrorCode reduce(Communicator comm, int root, const T* in, T* out,
                         std::size_t count, ReduceOp op) {
  static_assert(std::is_trivially_copyable_v<T>);
  const int n = comm.size();
  const int me = comm.rank();
  FAIRMPI_CHECK_MSG(root >= 0 && root < n, "invalid reduce root");
  const std::size_t bytes = count * sizeof(T);

  std::vector<T> acc(in, in + count);
  std::vector<T> incoming(count);
  const int vr = (me - root + n) % n;
  // Combine children (who differ from us in one higher bit), lowest
  // distance first; then forward the partial result to the parent.
  for (int mask = 1; mask < n; mask <<= 1) {
    if ((vr & mask) == 0) {
      if (vr + mask < n) {
        const int child = (vr + mask + root) % n;
        const auto rc = comm.recv_checked(child, detail::kTagReduce, incoming.data(), bytes);
        if (rc != common::ErrorCode::kOk) return rc;
        detail::apply(op, acc.data(), incoming.data(), count);
      }
    } else {
      const int parent = ((vr ^ mask) + root) % n;
      const auto rc = comm.send_checked(parent, detail::kTagReduce, acc.data(), bytes);
      if (rc != common::ErrorCode::kOk) return rc;
      break;
    }
  }
  if (me == root) {
    FAIRMPI_CHECK_MSG(out != nullptr, "reduce root needs an output buffer");
    std::memcpy(out, acc.data(), bytes);
  }
  return common::ErrorCode::kOk;
}

/// Allreduce = reduce to rank 0 + broadcast. `out` is written everywhere.
template <typename T>
common::ErrorCode allreduce(Communicator comm, const T* in, T* out, std::size_t count,
                            ReduceOp op) {
  common::ErrorCode rc;
  if (comm.rank() == 0) {
    rc = reduce(comm, 0, in, out, count, op);
  } else {
    std::vector<T> scratch(count);
    rc = reduce(comm, 0, in, scratch.data(), count, op);
  }
  if (rc != common::ErrorCode::kOk) return rc;
  return broadcast(comm, 0, out, count);
}

/// Gather `count` elements from every rank into `root`'s `out`
/// (rank i's block lands at out + i*count). Linear.
template <typename T>
common::ErrorCode gather(Communicator comm, int root, const T* in, std::size_t count,
                         T* out) {
  static_assert(std::is_trivially_copyable_v<T>);
  const int n = comm.size();
  const int me = comm.rank();
  const std::size_t bytes = count * sizeof(T);
  if (me == root) {
    FAIRMPI_CHECK_MSG(out != nullptr, "gather root needs an output buffer");
    std::memcpy(out + static_cast<std::size_t>(me) * count, in, bytes);
    for (int r = 0; r < n; ++r) {
      if (r == root) continue;
      const auto rc = comm.recv_checked(
          r, detail::kTagGather, out + static_cast<std::size_t>(r) * count, bytes);
      if (rc != common::ErrorCode::kOk) return rc;
    }
    return common::ErrorCode::kOk;
  }
  return comm.send_checked(root, detail::kTagGather, in, bytes);
}

/// Scatter `count` elements per rank from `root`'s `in` (rank i's block at
/// in + i*count) into every rank's `out`. Linear.
template <typename T>
common::ErrorCode scatter(Communicator comm, int root, const T* in, T* out,
                          std::size_t count) {
  static_assert(std::is_trivially_copyable_v<T>);
  const int n = comm.size();
  const int me = comm.rank();
  const std::size_t bytes = count * sizeof(T);
  if (me == root) {
    FAIRMPI_CHECK_MSG(in != nullptr, "scatter root needs an input buffer");
    for (int r = 0; r < n; ++r) {
      if (r == root) continue;
      const auto rc = comm.send_checked(
          r, detail::kTagScatter, in + static_cast<std::size_t>(r) * count, bytes);
      if (rc != common::ErrorCode::kOk) return rc;
    }
    std::memcpy(out, in + static_cast<std::size_t>(me) * count, bytes);
    return common::ErrorCode::kOk;
  }
  return comm.recv_checked(root, detail::kTagScatter, out, bytes);
}

}  // namespace fairmpi::coll
