// Bench harness support: aggregate repeated runs into mean/stddev series,
// render each paper figure as an ASCII chart plus a data table, dump CSVs,
// and check the paper's qualitative expectations so a bench run is
// self-validating ("who wins, by roughly what factor, where crossovers
// fall" — EXPERIMENTS.md records the outcomes).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "fairmpi/common/stats.hpp"

namespace fairmpi::benchsupport {

/// Run `fn(seed)` for `reps` distinct seeds and aggregate the returned
/// metric. The paper reports mean and (consistently small) standard
/// deviation over repeated runs; so do we.
template <typename Fn>
RunningStats repeat(int reps, std::uint64_t base_seed, Fn&& fn) {
  RunningStats stats;
  for (int r = 0; r < reps; ++r) {
    stats.add(fn(base_seed + static_cast<std::uint64_t>(r) * 7919));
  }
  return stats;
}

/// One reproduced figure (or sub-figure): multiple named series of
/// (x, mean, stddev) points.
class FigureReport {
 public:
  FigureReport(std::string id, std::string title, std::string x_label,
               std::string y_label, bool log_y = true);

  void add_point(const std::string& series, double x, double mean, double stddev = 0.0);
  void add_point(const std::string& series, double x, const RunningStats& stats);

  /// ASCII chart + aligned data table.
  std::string render() const;

  /// Write `<dir>/<id>.csv` (long format: series,x,mean,stddev).
  /// Creates the directory if needed; aborts on I/O failure.
  void write_csv(const std::string& dir) const;

  /// Mean of the point at `x` in `series` (aborts if absent) — used by the
  /// expectation checks.
  double value_at(const std::string& series, double x) const;
  bool has_point(const std::string& series, double x) const;

  const std::string& id() const noexcept { return id_; }

 private:
  struct Point {
    double x, mean, stddev;
  };
  struct Series {
    std::string name;
    std::vector<Point> points;
  };
  const Series* find(const std::string& name) const;
  Series& find_or_create(const std::string& name);

  std::string id_, title_, x_label_, y_label_;
  bool log_y_;
  std::vector<Series> series_;
};

/// Self-validation of a bench run against the paper's qualitative claims.
class CheckList {
 public:
  void expect(bool condition, std::string what, std::string detail = "");
  /// Passes when a >= min_ratio * b.
  void expect_ratio_at_least(double a, double b, double min_ratio, std::string what);
  /// Passes when |a-b| <= tol_frac * max(|a|,|b|).
  void expect_close(double a, double b, double tol_frac, std::string what);

  std::string render() const;
  int failures() const noexcept { return failures_; }
  int total() const noexcept { return static_cast<int>(entries_.size()); }

 private:
  struct Entry {
    bool pass;
    std::string what;
    std::string detail;
  };
  std::vector<Entry> entries_;
  int failures_ = 0;
};

}  // namespace fairmpi::benchsupport
