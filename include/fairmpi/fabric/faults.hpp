// Seeded, deterministic fault injection for the simulated fabric.
//
// The paper's designs are exercised only on a perfectly reliable transport;
// production multithreaded MPI stacks break precisely where transports
// misbehave (flow-control stalls, loss, duplication — the failure modes the
// MPI+threads "lessons learned" literature reports). The injector sits
// inside Fabric::try_deliver and perturbs traffic per *link* — one
// (src_rank, dst_rank) pair — with independent xoshiro256** streams forked
// from a single seed, so a single-threaded injection sequence is
// bit-reproducible: same seed + same per-link packet order => same fates.
// Under concurrency the per-link decision *sequence* is still deterministic;
// which packet draws which fate follows the (inherently racy) injection
// interleaving, and the reliability layer makes the outcome exact either
// way.
//
// Fault model:
//   drop     packet vanishes; the sender still sees success (a lost wire
//            packet, not backpressure).
//   dup      a deep clone is delivered alongside the original.
//   delay    the packet parks in a per-link holdback slot and is released
//            after 2..5 later packets on the same link (count-based, so
//            deterministic — no wall clock).
//   reorder  delay with a one-packet horizon: the packet is emitted after
//            the next one, swapping adjacent arrivals.
//   corrupt  a random bit flips in the header or payload. payload_size is
//            exempt — it is validated by the simulated NIC's descriptor
//            (DMA-length) check, mirroring transports that protect lengths
//            in hardware; corrupting it would turn a checksum test into an
//            out-of-bounds read.
//
// Lock discipline: one RankedLock (kFaultInject) per link, held only across
// a single injection's decisions; the only lock it may acquire underneath
// is the payload pool's leaf (cloning a heap payload).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "fairmpi/common/align.hpp"
#include "fairmpi/common/rng.hpp"
#include "fairmpi/common/spinlock.hpp"
#include "fairmpi/debug/lockcheck.hpp"
#include "fairmpi/debug/thread_safety.hpp"
#include "fairmpi/fabric/wire.hpp"

namespace fairmpi::fabric {

/// Per-link fault probabilities (each in [0, 1]) and the master seed.
struct FaultParams {
  double drop = 0.0;
  double dup = 0.0;
  double delay = 0.0;
  double reorder = 0.0;
  double corrupt = 0.0;
  std::uint64_t seed = 0x5eedfab51cULL;

  bool any() const noexcept {
    return drop > 0.0 || dup > 0.0 || delay > 0.0 || reorder > 0.0 || corrupt > 0.0;
  }
};

/// Aggregate injector statistics (relaxed atomics; exact when quiescent).
/// ring_losses counts duplicate/released packets that found the destination
/// ring full — they become ordinary losses, recovered like any drop.
struct FaultStats {
  std::atomic<std::uint64_t> injected{0};
  std::atomic<std::uint64_t> dropped{0};
  std::atomic<std::uint64_t> duplicated{0};
  std::atomic<std::uint64_t> delayed{0};
  std::atomic<std::uint64_t> reordered{0};
  std::atomic<std::uint64_t> corrupted{0};
  std::atomic<std::uint64_t> released{0};
  std::atomic<std::uint64_t> ring_losses{0};
  std::atomic<std::uint64_t> kill_drops{0};  ///< packets eaten by a dead rank's links
};

class FaultInjector {
 public:
  /// Holdback depth per link; a full holdback delivers its oldest entry.
  static constexpr std::size_t kHoldback = 4;
  /// Max packets one injection can emit: released holdbacks + original + dup.
  static constexpr std::size_t kMaxEmit = kHoldback + 2;

  /// One injection's outcome: `pkts[0..n)` must be pushed toward the
  /// destination in order. `primary` is the index of the caller's own
  /// packet within pkts, or -1 when it was dropped or parked (the caller
  /// reports success to the sender in that case).
  struct Batch {
    std::array<Packet, kMaxEmit> pkts;
    std::size_t n = 0;
    int primary = -1;
  };

  FaultInjector(int num_ranks, const FaultParams& params);

  /// Run one packet through the link's fault model. Consumes `pkt`; fills
  /// `out`. If the caller later fails to push the primary packet (ring
  /// full), it must move it back out of the batch and report backpressure.
  void process(int src, int dst, Packet&& pkt, Batch& out);

  const FaultParams& params() const noexcept { return params_; }
  FaultStats& stats() noexcept { return stats_; }

  /// Packets currently parked across all links (test/diagnostic hook).
  std::size_t held() const noexcept;

  // --- peer-death mode (ft; permanent link-down) ---

  /// Kill `r` immediately: every subsequent packet with src or dst == r is
  /// eaten by the wire (counted in stats().kill_drops). Irreversible.
  void kill_rank(int r) noexcept { kill_at(r).store(0, std::memory_order_relaxed); }

  /// Kill `r` once it has injected `at_seq` packets in total (absolute
  /// count across all of r's links since construction): the death point is
  /// a packet index, not a wall-clock instant, so it is seeded and
  /// reproducible like every other fault. An at_seq already passed kills
  /// immediately.
  void kill_rank_at(int r, std::uint64_t at_seq) noexcept {
    kill_at(r).store(at_seq, std::memory_order_relaxed);
  }

  /// True once `r`'s death point has been reached.
  bool rank_dead(int r) const noexcept {
    const std::uint64_t at = kill_[static_cast<std::size_t>(r)].value.load(
        std::memory_order_relaxed);
    return injected_by_[static_cast<std::size_t>(r)].value.load(
               std::memory_order_relaxed) >= at;
  }

 private:
  struct LinkState {
    RankedLock<Spinlock> lock{debug::LockRank::kFaultInject, "fabric.fault-link"};
    Xoshiro256 rng FAIRMPI_GUARDED_BY(lock){0};
    struct Held {
      Packet pkt;
      int release_after = 0;  ///< emit once this many later packets pass
      bool reordered = false; ///< parked by the reorder fault (stats)
      bool occupied = false;
    };
    std::array<Held, kHoldback> held FAIRMPI_GUARDED_BY(lock);
    std::size_t n_held FAIRMPI_GUARDED_BY(lock) = 0;
  };

  LinkState& link(int src, int dst) noexcept {
    return *links_[static_cast<std::size_t>(src) * num_ranks_ +
                   static_cast<std::size_t>(dst)];
  }

  std::atomic<std::uint64_t>& kill_at(int r) noexcept {
    return kill_[static_cast<std::size_t>(r)].value;
  }

  const FaultParams params_;
  const std::size_t num_ranks_;
  std::vector<std::unique_ptr<LinkState>> links_;
  FaultStats stats_;
  /// Death point per rank (~0 = immortal; see kill_rank_at) and the running
  /// count of packets each rank has injected. Padded: the counter is bumped
  /// on every injection by whichever thread carries the packet.
  std::vector<Padded<std::atomic<std::uint64_t>>> kill_;
  std::vector<Padded<std::atomic<std::uint64_t>>> injected_by_;
};

}  // namespace fairmpi::fabric
