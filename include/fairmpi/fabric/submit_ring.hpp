// Lock-free MPSC submission ring with a batched doorbell (DESIGN.md §5f).
//
// The CRI injection path used to serialize every producer on the instance
// lock even when the critical section was one endpoint try_send. This ring
// moves the producer side off the lock: a contended sender claims a slot
// with a single CAS, writes a descriptor pointing at its (stack-resident)
// packet and completion ticket, publishes via the slot's sequence number,
// and waits on the ticket. Whoever holds the instance lock next — a
// progress thread, the RMA flush path, or one of the waiting producers
// electing itself by try_lock — drains the ring under the lock and injects
// on the producers' behalf (a combining funnel: one lock acquisition
// retires many submissions). Producers therefore never *require* a
// consumer: self-election bounds their wait, and the doorbell below is a
// consumer-side hint only, never a correctness mechanism.
//
// The descriptor transfer is the same Vyukov bounded-queue protocol as
// MpscRing (mpsc_ring.hpp); it is restated here — rather than reusing the
// template — because the submission protocol needs producer-side CAS-retry
// accounting and the doorbell folded into the claim, and because this file
// is the documented home of the memory-ordering argument the lock-free
// injection path rests on.
//
// Ordering argument (every atomic below cites one of these edges):
//   [P1] claim      tail_.compare_exchange(pos, pos+1, relaxed) — claiming
//                   only *reserves* the slot; nothing is published by the
//                   CAS itself, so it carries no ordering. Uniqueness of
//                   pos is the CAS's atomicity, not its memory order.
//   [P2] fill       desc plain store — the slot is exclusively owned
//                   between claim and publish; no other thread reads it.
//   [P3] publish    cell.seq.store(pos+1, release) — makes [P2] visible to
//                   the consumer whose matching load is [C1].
//   [C1] observe    cell.seq.load(acquire) == pos+1 — pairs with [P3]: the
//                   consumer that sees the published seq sees the whole
//                   descriptor, including everything the producer wrote to
//                   *pkt before submitting.
//   [C2] recycle    cell.seq.store(pos+capacity, release) — returns the
//                   slot to producers; pairs with the acquire seq load in
//                   try_push so a producer lapping the ring sees the slot
//                   is consumed before overwriting it.
//   [T1] resolve    ticket.store(release) by the flusher after the packet
//                   has been consumed (or handed back); pairs with the
//                   producer's acquire load in wait loops. After [T1] the
//                   flusher never touches the descriptor, the ticket, or
//                   the packet again — that is what makes the producer's
//                   stack storage safe to reclaim on return.
//   [B1] doorbell   bell_.store(1, release) / consumer exchange(0, acquire)
//                   — a *hint* with no correctness role: a doorbell lost to
//                   reordering or an early consumer clear only delays
//                   consumption until the producer self-elects. The release
//                   is courtesy (a consumer woken by the bell usually finds
//                   the descriptor without spinning), not necessity.
//
// Single-consumer discipline: drain() must run under the owning CRI's
// instance lock, exactly like MpscRing::try_pop_n — the lock is the
// consumer-side capability, enforced one level up where
// CommResourceInstance::flush_submissions() is FAIRMPI_REQUIRES(lock_).
#pragma once

#include <atomic>
#include <cstdint>

#include "fairmpi/common/align.hpp"
#include "fairmpi/common/error.hpp"
#include "fairmpi/fabric/wire.hpp"

namespace fairmpi::fabric {

/// Producer-side completion state, polled (acquire) by the submitting
/// thread and resolved (release, [T1]) by whichever thread flushes the
/// descriptor under the instance lock.
enum class SubmitStatus : std::uint8_t {
  kPending = 0,      ///< descriptor in flight
  kInjected = 1,     ///< packet delivered to the fabric
  kBackpressure = 2, ///< destination ring full; packet handed back intact
};

/// Lives on the producer's stack for the duration of one submission. The
/// producer must not return (and so must not reclaim the storage) until
/// the status leaves kPending.
struct SubmitTicket {
  std::atomic<std::uint8_t> status{static_cast<std::uint8_t>(SubmitStatus::kPending)};

  SubmitStatus load_acquire() const noexcept {
    // Pairs with [T1]: seeing kBackpressure implies the flusher's failed
    // try_send (which left *pkt intact) happened-before this load, so the
    // producer may immediately reuse the packet.
    return static_cast<SubmitStatus>(status.load(std::memory_order_acquire));
  }
};

/// What travels through the ring: pointers into the producer's frame plus
/// the destination rank. Trivially copyable by design — the packet itself
/// never moves through the ring, only its address does, so a submission
/// costs one CAS + 16 bytes of plain stores regardless of payload size.
struct SubmitDesc {
  Packet* pkt = nullptr;
  SubmitTicket* ticket = nullptr;
  std::int32_t dst = -1;
};

/// What one try_push observed, for the SPC/obs counters at the call site.
struct SubmitPushOutcome {
  bool ok = false;                ///< false: ring full (caller falls back)
  bool rang_doorbell = false;     ///< this claim completed a doorbell batch
  std::uint32_t cas_retries = 0;  ///< failed tail CAS attempts (collisions)
};

class SubmitRing {
 public:
  /// One doorbell ring per this many claims (or on demand via
  /// ring_doorbell() when a producer's backoff saturates — the "timeout"
  /// arm of the batching rule).
  static constexpr std::uint64_t kDoorbellBatch = 8;

  /// Capacity is rounded up to a power of two; minimum 2.
  explicit SubmitRing(std::size_t capacity)
      : capacity_(next_pow2(capacity < 2 ? 2 : capacity)),
        mask_(capacity_ - 1),
        cells_(new Cell[capacity_]) {  // lint: allow(hotpath-alloc) ctor
    for (std::size_t i = 0; i < capacity_; ++i) {
      cells_[i].seq.store(i, std::memory_order_relaxed);
    }
  }
  ~SubmitRing() { delete[] cells_; }

  SubmitRing(const SubmitRing&) = delete;
  SubmitRing& operator=(const SubmitRing&) = delete;

  /// Producer: claim + fill + publish, and ring the doorbell on batch
  /// boundaries. Any number of threads may call this concurrently; the
  /// instance lock is NOT required (that is the point).
  SubmitPushOutcome try_push(const SubmitDesc& d) noexcept {
    SubmitPushOutcome out;
    std::uint64_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos & mask_];
      // Acquire pairs with [C2]: a slot whose seq shows "free again" is
      // only reused once the previous descriptor was fully consumed.
      const std::uint64_t seq = cell.seq.load(std::memory_order_acquire);
      const std::int64_t dif = static_cast<std::int64_t>(seq) - static_cast<std::int64_t>(pos);
      if (dif == 0) {
        // [P1] claim: relaxed is sufficient — the CAS only allocates pos
        // to this producer; publication is [P3] below.
        if (tail_.compare_exchange_weak(pos, pos + 1, std::memory_order_relaxed)) {
          cell.desc = d;  // [P2] fill: slot exclusively ours until publish
          // [P3] publish: release makes the descriptor (and the packet
          // contents it points to) visible to the [C1] acquire in drain().
          cell.seq.store(pos + 1, std::memory_order_release);
          if ((pos + 1) % kDoorbellBatch == 0) {
            ring_doorbell();
            out.rang_doorbell = true;
          }
          out.ok = true;
          return out;
        }
        ++out.cas_retries;  // lost the claim race; pos was refreshed
      } else if (dif < 0) {
        return out;  // full: caller falls back to the blocking-lock path
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
  }

  /// [B1] Arm the consumer-side hint. Cheap to call redundantly: the load
  /// keeps an already-armed bell's line in shared state (no write).
  void ring_doorbell() noexcept {
    // The bell is a hint with no ordering role (see [B1] in the header
    // comment); the relaxed pre-load only avoids a redundant store.
    // lint: allow(relaxed-sync) doorbell hint, no data published through it
    if (bell_.load(std::memory_order_relaxed) == 0) {
      bell_.store(1, std::memory_order_release);
    }
  }

  /// Consumer-side: has a producer rung since the last drain? One relaxed
  /// load of a line that is quiet between batches — this is what the
  /// progress path polls instead of the producers' tail_ line.
  bool doorbell_rung() const noexcept {
    // lint: allow(relaxed-sync) hint only; the real edge is [P3]/[C1]
    return bell_.load(std::memory_order_relaxed) != 0;
  }

  /// Consumer: pop every published descriptor (bounded by capacity) and
  /// hand each to `fn`. Single-consumer: callers must hold the owning
  /// CRI's instance lock (see header comment). `fn` is responsible for
  /// resolving each descriptor's ticket ([T1]) — after fn returns the
  /// slot is recycled and the descriptor must not be touched again.
  template <typename Fn>
  std::size_t drain(Fn&& fn) noexcept {
    // Clear the bell *before* popping: a producer that publishes after our
    // scan re-arms it for the next visit; one that published before is
    // popped below. A hint lost to the race costs a delayed visit, never a
    // stranded descriptor (producers self-elect).
    if (doorbell_rung()) bell_.store(0, std::memory_order_relaxed);
    const std::uint64_t pos = head_;
    std::size_t n = 0;
    while (n < capacity_) {
      Cell& cell = cells_[(pos + n) & mask_];
      // [C1]: acquire pairs with [P3] — past this load the descriptor and
      // the producer-side packet it points at are fully visible.
      const std::uint64_t seq = cell.seq.load(std::memory_order_acquire);
      if (seq != pos + n + 1) break;  // publish frontier reached
      const SubmitDesc d = cell.desc;
      // [C2]: recycle the slot before running fn — fn resolves the ticket,
      // and the producer may submit again the instant it sees that, so the
      // slot must already be reusable.
      cell.seq.store(pos + n + capacity_, std::memory_order_release);
      fn(d);
      ++n;
    }
    head_ = pos + n;  // plain: single consumer, serialized by the CRI lock
    if (n != 0) {
      // lint: allow(relaxed-sync) diagnostic shadow of head_ for
      // pending_approx(); carries no data (the real edge is [C2])
      head_approx_.store(pos + n, std::memory_order_relaxed);
    }
    return n;
  }

  /// Producer-visible occupancy estimate (diagnostics only).
  std::size_t pending_approx() const noexcept {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    const std::uint64_t head = head_approx_.load(std::memory_order_relaxed);
    return tail >= head ? static_cast<std::size_t>(tail - head) : 0;
  }

  std::size_t capacity() const noexcept { return capacity_; }

 private:
  struct Cell {
    std::atomic<std::uint64_t> seq{0};
    SubmitDesc desc{};
  };

  static std::size_t next_pow2(std::size_t v) noexcept {
    std::size_t p = 1;
    while (p < v) p <<= 1;
    return p;
  }

  const std::size_t capacity_;
  const std::size_t mask_;
  Cell* cells_;
  /// Producers' claim cursor [P1]; its own line — this is the only line
  /// contended producers write.
  alignas(kCacheLine) std::atomic<std::uint64_t> tail_{0};
  /// Consumer cursor: non-atomic on purpose — written and read only under
  /// the instance lock (single-consumer discipline). head_approx_ shadows
  /// it for the lock-free pending_approx() diagnostic.
  alignas(kCacheLine) std::uint64_t head_ = 0;
  std::atomic<std::uint64_t> head_approx_{0};
  /// [B1] batched doorbell: armed by producers once per kDoorbellBatch
  /// claims (or explicitly), cleared by the consumer per drain visit.
  alignas(kCacheLine) std::atomic<std::uint64_t> bell_{0};
};

}  // namespace fairmpi::fabric
