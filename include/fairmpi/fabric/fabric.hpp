// Simulated network fabric.
//
// Substitution for InfiniBand EDR / Cray Aries (DESIGN.md §4): an in-process
// fabric that provides the *structural* resources the paper's CRI design
// replicates — per-context RX queues and completion queues — and the same
// arbitrary cross-context arrival order real networks exhibit.
//
// Topology model: every rank owns a NIC with `n` network contexts. Context
// `i` of rank A reaches rank B through B's RX ring `i mod n_B` — the analog
// of connecting one QP/endpoint per (context, peer) pair. A receiver
// progressing context `j` therefore only sees traffic injected through
// matching sender contexts; when senders spread over many contexts, messages
// from one (comm, peer) stream arrive interleaved across rings, which is
// precisely the out-of-sequence pressure §II-C describes.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "fairmpi/common/align.hpp"
#include "fairmpi/common/error.hpp"
#include "fairmpi/common/mpsc_ring.hpp"
#include "fairmpi/fabric/faults.hpp"
#include "fairmpi/fabric/wire.hpp"

namespace fairmpi::fabric {

/// Sizing knobs for the fabric.
struct FabricParams {
  std::size_t rx_ring_entries = 4096;  ///< per-context RX descriptor ring
  std::size_t cq_entries = 4096;       ///< per-context completion queue
};

/// A completion event on a context's CQ. Two-sided eager sends complete at
/// injection (buffered semantics); the CQ carries completions for tracked
/// operations — RMA puts/gets and rendezvous fragments.
struct Completion {
  enum class Kind : std::uint8_t { kNone = 0, kRmaDone, kSendDone };
  Kind kind = Kind::kNone;
  void* cookie = nullptr;  ///< kRmaDone: rma::Window*; kSendDone: p2p request
};

/// One network context: the unit of resource replication inside a CRI.
/// Owns an RX ring (remote producers, locally-locked consumer) and a CQ.
class NetworkContext {
 public:
  NetworkContext(int rank, int index, const FabricParams& params)
      : rank_(rank), index_(index), rx_(params.rx_ring_entries), cq_(params.cq_entries) {}

  int rank() const noexcept { return rank_; }
  int index() const noexcept { return index_; }

  MpscRing<Packet>& rx() noexcept { return rx_; }
  MpscRing<Completion>& cq() noexcept { return cq_; }

  /// Count of packets ever delivered into this context (diagnostics).
  std::uint64_t delivered() const noexcept {
    return delivered_->load(std::memory_order_relaxed);
  }
  void note_delivered() noexcept { delivered_->fetch_add(1, std::memory_order_relaxed); }

 private:
  const int rank_;
  const int index_;
  MpscRing<Packet> rx_;
  MpscRing<Completion> cq_;
  Padded<std::atomic<std::uint64_t>> delivered_{};
};

/// A rank's NIC: the bundle of contexts the CRI pool hands out.
class Nic {
 public:
  Nic(int rank, int num_contexts, const FabricParams& params) : rank_(rank) {
    FAIRMPI_CHECK(num_contexts >= 1);
    contexts_.reserve(static_cast<std::size_t>(num_contexts));
    for (int i = 0; i < num_contexts; ++i) {
      contexts_.push_back(std::make_unique<NetworkContext>(rank, i, params));
    }
  }

  int rank() const noexcept { return rank_; }
  int num_contexts() const noexcept { return static_cast<int>(contexts_.size()); }
  NetworkContext& context(int i) { return *contexts_[static_cast<std::size_t>(i)]; }
  const NetworkContext& context(int i) const { return *contexts_[static_cast<std::size_t>(i)]; }

 private:
  const int rank_;
  std::vector<std::unique_ptr<NetworkContext>> contexts_;
};

/// The switch connecting all NICs of a universe.
class Fabric {
 public:
  /// `contexts_per_rank[r]` = number of contexts on rank r's NIC.
  Fabric(const std::vector<int>& contexts_per_rank, FabricParams params = {})
      : params_(params) {
    nics_.reserve(contexts_per_rank.size());
    for (std::size_t r = 0; r < contexts_per_rank.size(); ++r) {
      nics_.push_back(std::make_unique<Nic>(static_cast<int>(r), contexts_per_rank[r], params_));
    }
  }

  int num_ranks() const noexcept { return static_cast<int>(nics_.size()); }
  Nic& nic(int rank) { return *nics_[static_cast<std::size_t>(rank)]; }

  /// RX context on `dst_rank` that sender context `src_ctx` feeds. The
  /// common case (symmetric context counts, so src_ctx < n) skips the
  /// integer divide — ~20 cycles that showed up on the injection path.
  int route(int dst_rank, int src_ctx) const noexcept {
    const int n = nics_[static_cast<std::size_t>(dst_rank)]->num_contexts();
    return src_ctx < n ? src_ctx : src_ctx % n;
  }

  /// Inject a packet from (src context `src_ctx`) toward `dst_rank`.
  /// Returns false when the destination ring is full — the caller must
  /// back off (drop the CRI lock, progress, retry); see p2p/sender.cpp.
  /// With checksums enabled every packet is stamped here, *before* fault
  /// injection, so in-flight corruption is detectable at the receiver.
  bool try_deliver(int dst_rank, int src_ctx, Packet&& pkt) {
    Nic& dst = *nics_[static_cast<std::size_t>(dst_rank)];
    NetworkContext& ctx = dst.context(route(dst_rank, src_ctx));
    if (checksums_) stamp_checksum(pkt);
    if (injector_ == nullptr) {
      if (!ctx.rx().try_push(std::move(pkt))) return false;
      ctx.note_delivered();
      return true;
    }
    return deliver_faulty(ctx, dst_rank, std::move(pkt));
  }

  /// Enable checksum stamping and (when params.any()) fault injection.
  /// Call before traffic flows; not thread-safe against concurrent sends.
  void configure_reliability(const FaultParams& faults, bool checksums) {
    checksums_ = checksums;
    if (faults.any()) {
      injector_ = std::make_unique<FaultInjector>(num_ranks(), faults);
    }
  }

  FaultInjector* injector() noexcept { return injector_.get(); }
  bool checksums() const noexcept { return checksums_; }

  const FabricParams& params() const noexcept { return params_; }

 private:
  /// Slow path: run the packet through the link's fault model and push the
  /// resulting batch. Only a full ring under the *primary* packet reports
  /// backpressure; lost duplicates/releases are ordinary wire losses.
  bool deliver_faulty(NetworkContext& ctx, int dst_rank, Packet&& pkt) {
    const int src = static_cast<int>(pkt.hdr.src_rank);
    FaultInjector::Batch batch;
    injector_->process(src, dst_rank, std::move(pkt), batch);
    bool ok = true;
    for (std::size_t i = 0; i < batch.n; ++i) {
      const bool is_primary = static_cast<int>(i) == batch.primary;
      if (ctx.rx().try_push(std::move(batch.pkts[i]))) {
        ctx.note_delivered();
      } else if (is_primary) {
        pkt = std::move(batch.pkts[i]);  // hand it back for the retry
        ok = false;
      } else {
        injector_->stats().ring_losses.fetch_add(1, std::memory_order_relaxed);
      }
    }
    return ok;
  }

  FabricParams params_;
  std::vector<std::unique_ptr<Nic>> nics_;
  std::unique_ptr<FaultInjector> injector_;
  bool checksums_ = false;
};

/// A (context, peer) pairing — the sender-side handle a CRI uses to reach
/// one destination rank, mirroring one endpoint/QP per peer per context.
class Endpoint {
 public:
  Endpoint(Fabric& fabric, NetworkContext& local, int dst_rank) noexcept
      : fabric_(&fabric), local_(&local), dst_rank_(dst_rank) {}

  int dst_rank() const noexcept { return dst_rank_; }

  /// Injects; false on backpressure.
  bool try_send(Packet&& pkt) {
    pkt.hdr.src_ctx = static_cast<std::uint16_t>(local_->index());
    return fabric_->try_deliver(dst_rank_, local_->index(), std::move(pkt));
  }

 private:
  Fabric* fabric_;
  NetworkContext* local_;
  int dst_rank_;
};

}  // namespace fairmpi::fabric
