// Simulated network fabric.
//
// Substitution for InfiniBand EDR / Cray Aries (DESIGN.md §4): an in-process
// fabric that provides the *structural* resources the paper's CRI design
// replicates — per-context RX queues and completion queues — and the same
// arbitrary cross-context arrival order real networks exhibit.
//
// Topology model: every rank owns a NIC with `n` network contexts. Context
// `i` of rank A reaches rank B through B's RX ring `i mod n_B` — the analog
// of connecting one QP/endpoint per (context, peer) pair. A receiver
// progressing context `j` therefore only sees traffic injected through
// matching sender contexts; when senders spread over many contexts, messages
// from one (comm, peer) stream arrive interleaved across rings, which is
// precisely the out-of-sequence pressure §II-C describes.
//
// RX lane decomposition (DESIGN.md §5f): a context's RX queue is not one
// shared MPSC ring but an array of SPSC *lanes*, one per (src_rank,
// src_ctx) stream that routes here — the moral equivalent of one QP per
// endpoint pair in Zambre et al.'s scalable-endpoints design. Every
// production injection into lane (r, c) happens while holding source
// instance (r, c)'s lock (Endpoint::try_send callers go through
// CommResourceInstance::endpoint(), which is REQUIRES(lock_)), so each lane
// has exactly one producer at a time and enqueue needs NO atomic RMW — the
// ~10ns locked CAS the shared ring paid per packet is gone. The drain side
// sweeps lanes round-robin under the destination CRI lock, preserving the
// single-consumer discipline. Per-(src, ctx) FIFO is preserved (one stream
// = one lane); cross-stream interleaving was already arbitrary.
//
// Capacity semantics: FabricParams::rx_ring_entries is the PER-LANE depth —
// a per-source credit window, as real NICs bound in-flight traffic per QP —
// so a slow stream backpressures its own sender without stealing credits
// from other streams.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "fairmpi/common/align.hpp"
#include "fairmpi/common/error.hpp"
#include "fairmpi/common/mpsc_ring.hpp"
#include "fairmpi/common/spsc_ring.hpp"
#include "fairmpi/fabric/faults.hpp"
#include "fairmpi/fabric/wire.hpp"

namespace fairmpi::fabric {

/// Sizing knobs for the fabric.
struct FabricParams {
  /// Per-lane RX depth (per-source credit window). Kept at the old shared-
  /// ring depth on purpose: a shallower per-lane window regresses bursty
  /// single-stream workloads — on the 1-core host a sender thread can fill
  /// a 512-entry lane within one scheduling quantum, and the backpressured
  /// retries land with stale sequence numbers (measured: ~860k out-of-
  /// sequence arrivals and -30% incast message rate at 512 vs ~300 at
  /// 4096). The footprint now scales with lane count (lanes x entries x
  /// sizeof(Packet)); memory-constrained runs shrink it via
  /// FAIRMPI_RX_RING_ENTRIES.
  std::size_t rx_ring_entries = 4096;
  std::size_t cq_entries = 4096;       ///< per-context completion queue
};

/// Source-stream geometry a NIC needs to size its contexts' RX lanes.
struct RxLayout {
  int num_ranks = 1;
  int max_src_contexts = 1;  ///< max contexts on any rank's NIC
};

/// A completion event on a context's CQ. Two-sided eager sends complete at
/// injection (buffered semantics); the CQ carries completions for tracked
/// operations — RMA puts/gets and rendezvous fragments.
struct Completion {
  enum class Kind : std::uint8_t { kNone = 0, kRmaDone, kSendDone };
  Kind kind = Kind::kNone;
  void* cookie = nullptr;  ///< kRmaDone: rma::Window*; kSendDone: p2p request
};

/// A context's receive queue: SPSC lanes indexed by source stream, drained
/// round-robin by the single consumer (the thread holding the owning CRI's
/// lock). Producers must hold the *source* instance's lock — that lock is
/// what serializes each lane (see file header).
class RxQueue {
 public:
  RxQueue(const RxLayout& layout, int num_local_contexts, std::size_t entries_per_lane)
      : n_local_(num_local_contexts < 1 ? 1 : num_local_contexts),
        k_stride_((layout.max_src_contexts + n_local_ - 1) / n_local_ < 1
                      ? 1
                      : (layout.max_src_contexts + n_local_ - 1) / n_local_) {
    const int n = (layout.num_ranks < 1 ? 1 : layout.num_ranks) * k_stride_;
    lanes_.reserve(static_cast<std::size_t>(n));  // lint: allow(hotpath-alloc) ctor
    for (int i = 0; i < n; ++i) {
      lanes_.push_back(std::make_unique<SpscRing<Packet>>(entries_per_lane));
    }
  }

  /// Lane carrying stream (src_rank, src_ctx). Out-of-range streams (tests
  /// minting arbitrary headers) fold modulo the lane count — safe there
  /// because such pushes are single-threaded by construction.
  std::size_t lane_for(int src_rank, int src_ctx) const noexcept {
    const int k = src_ctx < n_local_ ? 0 : (src_ctx / n_local_) % k_stride_;
    const auto lane = static_cast<std::size_t>(src_rank) * static_cast<std::size_t>(k_stride_) +
                      static_cast<std::size_t>(k);
    return lane < lanes_.size() ? lane : lane % lanes_.size();
  }

  /// Enqueue on a specific lane; false when that lane's credits are spent.
  /// Caller must be the lane's (serialized) producer.
  bool try_push_lane(std::size_t lane, Packet&& pkt) noexcept {
    return lanes_[lane]->try_push(std::move(pkt));
  }

  /// Stable pointer to a lane's ring, so an Endpoint can skip the
  /// vector + unique_ptr indirections on every send. Lanes are created in
  /// the constructor and never reallocated.
  SpscRing<Packet>* lane_ring(std::size_t lane) noexcept {
    return lanes_[lane].get();
  }

  /// Enqueue, deriving the lane from the packet's own header. Convenience
  /// for tests that push hand-built packets; production traffic goes
  /// through Endpoint, which caches the lane.
  bool try_push(Packet&& pkt) noexcept {
    return try_push_lane(lane_for(pkt.hdr.src_rank, pkt.hdr.src_ctx), std::move(pkt));
  }

  /// Dequeue one packet, round-robin across lanes. Single consumer. The
  /// hot-lane pointer skips the vector + unique_ptr derefs while one lane
  /// keeps hitting (the overwhelmingly common shape: one busy peer).
  bool try_pop(Packet& out) noexcept {
    if (hot_ != nullptr && hot_->try_pop(out)) return true;
    const std::size_t n = lanes_.size();
    for (std::size_t i = 0; i < n; ++i) {
      SpscRing<Packet>* lane = lanes_[cursor_].get();
      if (lane->try_pop(out)) {
        hot_ = lane;
        return true;
      }
      cursor_ = cursor_ + 1 == n ? 0 : cursor_ + 1;
    }
    return false;
  }

  /// Dequeue up to `max_n` packets, sweeping each lane at most once.
  /// Single consumer. The cursor persists across calls so a hot lane
  /// cannot starve the others.
  std::size_t try_pop_n(Packet* out, std::size_t max_n) noexcept {
    const std::size_t lanes = lanes_.size();
    std::size_t n = 0;
    for (std::size_t i = 0; i < lanes && n < max_n; ++i) {
      n += lanes_[cursor_]->try_pop_n(out + n, max_n - n);
      if (n >= max_n) break;  // lane still hot: resume here next drain
      cursor_ = cursor_ + 1 == lanes ? 0 : cursor_ + 1;
    }
    return n;
  }

  /// Total packets ever enqueued (sum of lane push cursors).
  std::uint64_t pushed_total() const noexcept {
    std::uint64_t n = 0;
    for (const auto& lane : lanes_) n += lane->pushed_approx();
    return n;
  }

  /// Approximate occupancy across all lanes.
  std::size_t size_approx() const noexcept {
    std::size_t n = 0;
    for (const auto& lane : lanes_) n += lane->size_approx();
    return n;
  }

  bool empty_approx() const noexcept { return size_approx() == 0; }

  std::size_t num_lanes() const noexcept { return lanes_.size(); }
  /// Per-lane depth (the per-source credit window).
  std::size_t lane_capacity() const noexcept { return lanes_[0]->capacity(); }

 private:
  const int n_local_;
  const int k_stride_;
  std::vector<std::unique_ptr<SpscRing<Packet>>> lanes_;
  std::size_t cursor_ = 0;               ///< consumer-owned; CRI lock hands it off
  SpscRing<Packet>* hot_ = nullptr;      ///< consumer-owned last-hit lane
};

/// One network context: the unit of resource replication inside a CRI.
/// Owns an RX queue (per-source SPSC lanes, locally-locked consumer) and a
/// CQ.
class NetworkContext {
 public:
  NetworkContext(int rank, int index, const RxLayout& layout, int num_local_contexts,
                 const FabricParams& params)
      : rank_(rank),
        index_(index),
        rx_(layout, num_local_contexts, params.rx_ring_entries),
        cq_(params.cq_entries) {}

  int rank() const noexcept { return rank_; }
  int index() const noexcept { return index_; }

  RxQueue& rx() noexcept { return rx_; }
  MpscRing<Completion>& cq() noexcept { return cq_; }

  /// Count of packets ever delivered into this context (diagnostics).
  /// Derived from the lanes' push cursors — every successful push IS a
  /// delivery, so maintaining a separate fetch_add per packet on the
  /// injection path bought nothing but an extra contended RMW.
  std::uint64_t delivered() const noexcept { return rx_.pushed_total(); }

 private:
  const int rank_;
  const int index_;
  RxQueue rx_;
  MpscRing<Completion> cq_;
};

/// A rank's NIC: the bundle of contexts the CRI pool hands out.
class Nic {
 public:
  Nic(int rank, int num_contexts, const RxLayout& layout, const FabricParams& params)
      : rank_(rank) {
    FAIRMPI_CHECK(num_contexts >= 1);
    contexts_.reserve(static_cast<std::size_t>(num_contexts));
    for (int i = 0; i < num_contexts; ++i) {
      contexts_.push_back(
          std::make_unique<NetworkContext>(rank, i, layout, num_contexts, params));
    }
  }

  int rank() const noexcept { return rank_; }
  int num_contexts() const noexcept { return static_cast<int>(contexts_.size()); }
  NetworkContext& context(int i) { return *contexts_[static_cast<std::size_t>(i)]; }
  const NetworkContext& context(int i) const { return *contexts_[static_cast<std::size_t>(i)]; }

 private:
  const int rank_;
  std::vector<std::unique_ptr<NetworkContext>> contexts_;
};

/// The switch connecting all NICs of a universe.
class Fabric {
 public:
  /// `contexts_per_rank[r]` = number of contexts on rank r's NIC.
  Fabric(const std::vector<int>& contexts_per_rank, FabricParams params = {})
      : params_(params) {
    RxLayout layout;
    layout.num_ranks = static_cast<int>(contexts_per_rank.size());
    for (const int n : contexts_per_rank) {
      if (n > layout.max_src_contexts) layout.max_src_contexts = n;
    }
    nics_.reserve(contexts_per_rank.size());
    for (std::size_t r = 0; r < contexts_per_rank.size(); ++r) {
      nics_.push_back(std::make_unique<Nic>(static_cast<int>(r), contexts_per_rank[r],
                                            layout, params_));
    }
  }

  int num_ranks() const noexcept { return static_cast<int>(nics_.size()); }
  Nic& nic(int rank) { return *nics_[static_cast<std::size_t>(rank)]; }

  /// RX context on `dst_rank` that sender context `src_ctx` feeds. The
  /// common case (symmetric context counts, so src_ctx < n) skips the
  /// integer divide — ~20 cycles that showed up on the injection path.
  int route(int dst_rank, int src_ctx) const noexcept {
    const int n = nics_[static_cast<std::size_t>(dst_rank)]->num_contexts();
    return src_ctx < n ? src_ctx : src_ctx % n;
  }

  /// Inject a packet from stream (src_rank, src_ctx) toward `dst_rank`.
  /// Returns false when the stream's lane is out of credits — the caller
  /// must back off (drop the CRI lock, progress, retry); see p2p/sender.cpp.
  /// With checksums enabled every packet is stamped here, *before* fault
  /// injection, so in-flight corruption is detectable at the receiver.
  /// Callers must be the stream's serialized producer (the source instance
  /// lock); Endpoint::try_send is the production entry and caches the
  /// routing below.
  bool try_deliver(int dst_rank, int src_rank, int src_ctx, Packet&& pkt) {
    NetworkContext& ctx = nic(dst_rank).context(route(dst_rank, src_ctx));
    const std::size_t lane = ctx.rx().lane_for(src_rank, src_ctx);
    if (plain_path_) return ctx.rx().try_push_lane(lane, std::move(pkt));
    return deliver_slow(ctx, lane, dst_rank, std::move(pkt));
  }

  /// Reliability/fault path shared by try_deliver and the lane-cached
  /// Endpoint fast path: checksum stamping and the link fault model.
  bool deliver_slow(NetworkContext& ctx, std::size_t lane, int dst_rank, Packet&& pkt) {
    if (checksums_) stamp_checksum(pkt);
    if (injector_ == nullptr) return ctx.rx().try_push_lane(lane, std::move(pkt));
    return deliver_faulty(ctx, lane, dst_rank, std::move(pkt));
  }

  /// Enable checksum stamping and (when params.any()) fault injection.
  /// `force_injector` builds the injector even with all-zero probabilities —
  /// the ft layer needs its peer-death mode (kill_rank) available on an
  /// otherwise pristine fabric. Call before traffic flows; not thread-safe
  /// against concurrent sends.
  void configure_reliability(const FaultParams& faults, bool checksums,
                             bool force_injector = false) {
    checksums_ = checksums;
    if (faults.any() || force_injector) {
      injector_ = std::make_unique<FaultInjector>(num_ranks(), faults);
    }
    plain_path_ = !checksums_ && injector_ == nullptr;
  }

  FaultInjector* injector() noexcept { return injector_.get(); }
  bool checksums() const noexcept { return checksums_; }
  /// True when injection can bypass checksums and fault modeling.
  bool plain_path() const noexcept { return plain_path_; }

  const FabricParams& params() const noexcept { return params_; }

 private:
  /// Slow path: run the packet through the link's fault model and push the
  /// resulting batch. Only a full lane under the *primary* packet reports
  /// backpressure; lost duplicates/releases are ordinary wire losses. The
  /// whole batch lands on the caller's lane (the caller is its serialized
  /// producer) — a parked-then-released reordered packet may therefore hop
  /// streams, which is exactly the cross-stream reordering the fault model
  /// exists to produce.
  bool deliver_faulty(NetworkContext& ctx, std::size_t lane, int dst_rank, Packet&& pkt) {
    const int src = static_cast<int>(pkt.hdr.src_rank);
    FaultInjector::Batch batch;
    injector_->process(src, dst_rank, std::move(pkt), batch);
    bool ok = true;
    for (std::size_t i = 0; i < batch.n; ++i) {
      const bool is_primary = static_cast<int>(i) == batch.primary;
      if (ctx.rx().try_push_lane(lane, std::move(batch.pkts[i]))) {
        // delivered() is derived from the lanes' push cursors; nothing to do.
      } else if (is_primary) {
        pkt = std::move(batch.pkts[i]);  // hand it back for the retry
        ok = false;
      } else {
        injector_->stats().ring_losses.fetch_add(1, std::memory_order_relaxed);
      }
    }
    return ok;
  }

  FabricParams params_;
  std::vector<std::unique_ptr<Nic>> nics_;
  std::unique_ptr<FaultInjector> injector_;
  bool checksums_ = false;
  bool plain_path_ = true;
};

/// A (context, peer) pairing — the sender-side handle a CRI uses to reach
/// one destination rank, mirroring one endpoint/QP per peer per context.
/// The destination context and lane are resolved ONCE here: fabric routing
/// is static after construction, and re-walking nic/context/lane tables per
/// packet cost several dependent loads on the hottest path in the codebase.
class Endpoint {
 public:
  Endpoint(Fabric& fabric, NetworkContext& local, int dst_rank) noexcept
      : fabric_(&fabric),
        dst_ctx_(&fabric.nic(dst_rank).context(fabric.route(dst_rank, local.index()))),
        dst_rank_(dst_rank),
        lane_(dst_ctx_->rx().lane_for(local.rank(), local.index())),
        ring_(dst_ctx_->rx().lane_ring(lane_)),
        src_ctx_(static_cast<std::uint16_t>(local.index())) {}

  int dst_rank() const noexcept { return dst_rank_; }

  /// Injects; false on backpressure. Caller must be this endpoint's
  /// serialized producer — production callers reach here through
  /// CommResourceInstance::endpoint(), which requires the instance lock.
  bool try_send(Packet&& pkt) {
    pkt.hdr.src_ctx = src_ctx_;
    if (fabric_->plain_path()) {
      return ring_->try_push(std::move(pkt));
    }
    return fabric_->deliver_slow(*dst_ctx_, lane_, dst_rank_, std::move(pkt));
  }

 private:
  Fabric* fabric_;
  NetworkContext* dst_ctx_;
  int dst_rank_;
  std::size_t lane_;
  SpscRing<Packet>* ring_;  ///< lane_'s ring, cached past two indirections
  std::uint16_t src_ctx_;
};

}  // namespace fairmpi::fabric
