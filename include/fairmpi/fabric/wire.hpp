// Wire format of the simulated fabric.
//
// Open MPI's OB1 eager protocol prepends a small matching envelope (~28
// bytes: source, communicator, tag, sequence number) to every fragment; the
// paper's zero-byte experiments measure exactly the cost of moving and
// matching this envelope. Our header is 32 bytes and carries the same
// information plus an opcode for RMA extensions.
//
// Payload buffers larger than the inline threshold are recycled through a
// size-classed slab pool (make_payload below) rather than new[]'d per
// packet: a real transport posts sends from a registered buffer pool, and
// §II-C's hot-path discipline forbids general-purpose allocation per
// message. The pool is process-global because packets (and with them buffer
// ownership) migrate across threads through the RX rings.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>

namespace fairmpi::fabric {

enum class Opcode : std::uint16_t {
  kInvalid = 0,
  kEager,        ///< two-sided eager message (envelope [+ payload])
  kRndvRts,      ///< rendezvous request-to-send (large-message extension)
  kRndvAck,      ///< rendezvous clear-to-send
  kRndvData,     ///< rendezvous payload fragment
  kAck,          ///< reliability acknowledgement (echoes the acked key)
  kHeartbeat,    ///< ft liveness probe (header-only; never acked or tracked)
  kNack,         ///< overload shed notice (echoes the shed packet's key)
};

/// Last opcode value that is valid on the wire (header validation).
inline constexpr std::uint16_t kMaxOpcode = static_cast<std::uint16_t>(Opcode::kNack);

/// The matching envelope. POD, fixed 32 bytes. The old 32-bit src_ctx
/// diagnostic field donates its upper half to the reliability checksum so
/// the envelope stays exactly as compact as OB1's.
struct WireHeader {
  Opcode opcode = Opcode::kInvalid;
  std::uint16_t src_rank = 0;     ///< sending rank in the universe
  std::uint32_t comm_id = 0;      ///< destination communicator
  std::int32_t tag = 0;           ///< user tag (kAck: acked packet's opcode)
  std::uint32_t seq = 0;          ///< per (comm, src->dst) sequence number
  std::uint32_t payload_size = 0; ///< bytes following the header
  std::uint16_t src_ctx = 0;      ///< sender-side context id (diagnostics)
  std::uint16_t csum = 0;         ///< header+payload checksum (0 when disabled)
  std::uint64_t imm = 0;          ///< opcode-specific immediate (e.g. request cookie)
};
static_assert(sizeof(WireHeader) == 32, "envelope must stay compact");
static_assert(std::is_trivially_copyable_v<WireHeader>);

/// Payload bytes small enough to travel inline in the ring slot, as a real
/// NIC inlines small sends into the descriptor.
inline constexpr std::size_t kInlineBytes = 64;

/// Return a pooled payload buffer to its size class (wire.cpp). Called by
/// PayloadDeleter, possibly on a different thread than acquired the buffer.
void release_pooled_payload(std::byte* p, int size_class) noexcept;

/// Release a new[] payload (payloads above the largest pool class). The
/// byte count lives in a small header ahead of the returned pointer, so the
/// deleter stays one byte and the pool accounting can still credit exactly.
void release_huge_payload(std::byte* p) noexcept;

/// Deleter carrying the buffer's size class; class -1 means the buffer came
/// from plain new[] via the huge-payload path.
struct PayloadDeleter {
  std::int8_t size_class = -1;
  void operator()(std::byte* p) const noexcept {
    if (size_class < 0) {
      release_huge_payload(p);
    } else {
      release_pooled_payload(p, size_class);
    }
  }
};

/// Process-global payload-pool byte accounting: bytes currently checked out
/// (pooled buffers count their size class's full capacity, new[] payloads
/// their exact size) and the lifetime high-water mark. The admission layer
/// reads in_use_bytes with one relaxed load; tests assert high_water stays
/// within the configured cap.
struct PayloadPoolStats {
  std::uint64_t in_use_bytes = 0;
  std::uint64_t high_water_bytes = 0;
};
PayloadPoolStats payload_pool_stats() noexcept;

/// Sticky process-global enable for the per-packet pool byte accounting
/// (§5h). Off by default — the uncapped fast path pays one relaxed load —
/// and flipped on by any Universe configured with a payload-pool cap or
/// with observability enabled. Never unset (a later uncapped universe must
/// not blind a concurrent capped one); payloads charged before the flip
/// release with a saturating credit.
void enable_payload_pool_accounting() noexcept;

/// Rebase the high-water mark to the current in-use level (test isolation;
/// the pool is process-global, so suites reset between scenarios).
void reset_payload_pool_high_water() noexcept;

/// Owning heap payload handle; recycles to the pool on destruction.
using PayloadBuffer = std::unique_ptr<std::byte[], PayloadDeleter>;

/// Acquire an `n`-byte payload buffer from the size-classed pool
/// (allocation-free in steady state; new[] above the largest class).
PayloadBuffer make_payload(std::size_t n);

// Relaxed-atomic-load header copy rationale (FAIRMPI_WIRE_FIELD_COPY
// below): a whole-struct WireHeader copy compiles to 16-byte vector loads,
// which stall in the store buffer when the header was just written with
// narrow field stores — the universal pattern on the injection path
// (protocol code fills hdr.opcode/tag/seq/... and the packet is immediately
// moved into a ring slot; a load can only forward from a pending store that
// fully contains it). Plain exact-width field copies do NOT fix this: GCC's
// store-merging pass coalesces them straight back into vector ops. Relaxed
// __atomic loads are exempt from merging, compile to the same single mov as
// a plain access on x86, and keep every load no wider than the narrowest
// store it might forward from. The STORE side stays plain on purpose: GCC
// merges the nine field stores into two 16-byte vector stores, which is
// cheaper to issue and still forwards cleanly to any later field-width
// atomic load (each is fully contained in the wide store). Net: ~2x per
// ring push+pop on the injection path versus whole-struct copies. Under
// TSan we fall back to plain copies: the atomics are a codegen device, not
// synchronization, and must not mask real races on packet handoff.
#if !defined(FAIRMPI_TSAN)
#if defined(__SANITIZE_THREAD__)
#define FAIRMPI_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define FAIRMPI_TSAN 1
#endif
#endif
#endif

#if defined(__GNUC__) && !defined(FAIRMPI_TSAN)
#define FAIRMPI_WIRE_FIELD_COPY(dst, src, f) \
  (dst).f = __atomic_load_n(&(src).f, __ATOMIC_RELAXED)
#else
#define FAIRMPI_WIRE_FIELD_COPY(dst, src, f) (dst).f = (src).f
#endif

/// Copy a header field-by-field with exact-width, merge-proof accesses (see
/// the block comment above FAIRMPI_WIRE_FIELD_COPY).
inline void copy_header(WireHeader& dst, const WireHeader& src) noexcept {
  FAIRMPI_WIRE_FIELD_COPY(dst, src, opcode);
  FAIRMPI_WIRE_FIELD_COPY(dst, src, src_rank);
  FAIRMPI_WIRE_FIELD_COPY(dst, src, comm_id);
  FAIRMPI_WIRE_FIELD_COPY(dst, src, tag);
  FAIRMPI_WIRE_FIELD_COPY(dst, src, seq);
  FAIRMPI_WIRE_FIELD_COPY(dst, src, payload_size);
  FAIRMPI_WIRE_FIELD_COPY(dst, src, src_ctx);
  FAIRMPI_WIRE_FIELD_COPY(dst, src, csum);
  FAIRMPI_WIRE_FIELD_COPY(dst, src, imm);
}

/// One fabric packet: header + inline or heap payload. Move-only; the heap
/// buffer's ownership rides through the RX ring to the receiver.
struct Packet {
  WireHeader hdr{};
  /// Deliberately NOT value-initialized: zeroing 64 bytes per packet was
  /// measurable on the injection path, and set_payload/payload() only ever
  /// expose the first hdr.payload_size bytes.
  std::array<std::byte, kInlineBytes> inline_data;
  PayloadBuffer heap;

  Packet() = default;
  /// Payload-size-aware move: the defaulted move copied all 64 inline bytes
  /// even for header-only packets, and a packet is moved at least twice per
  /// delivery (into the RX ring, out at drain). Only the bytes set_payload
  /// actually wrote are meaningful, so only those move.
  Packet(Packet&& other) noexcept : heap(std::move(other.heap)) {
    copy_header(hdr, other.hdr);
    // n-1 wraps for n==0, folding the "empty" and "heap-resident" cases
    // into one compare on the hot path.
    const std::size_t n = hdr.payload_size;
    if (n - 1 < kInlineBytes) {
      std::memcpy(inline_data.data(), other.inline_data.data(), n);
    }
  }
  Packet& operator=(Packet&& other) noexcept {
    copy_header(hdr, other.hdr);
    heap = std::move(other.heap);
    const std::size_t n = hdr.payload_size;
    if (n - 1 < kInlineBytes) {
      std::memcpy(inline_data.data(), other.inline_data.data(), n);
    }
    return *this;
  }
  Packet(const Packet&) = delete;
  Packet& operator=(const Packet&) = delete;

  /// Copy `n` payload bytes in, choosing inline vs pooled-heap storage.
  void set_payload(const void* data, std::size_t n) {
    hdr.payload_size = static_cast<std::uint32_t>(n);
    if (n == 0) return;
    if (n <= kInlineBytes) {
      std::memcpy(inline_data.data(), data, n);
      heap.reset();
    } else {
      heap = make_payload(n);
      std::memcpy(heap.get(), data, n);
    }
  }

  const std::byte* payload() const noexcept {
    if (hdr.payload_size == 0) return nullptr;
    return hdr.payload_size <= kInlineBytes ? inline_data.data() : heap.get();
  }

  std::byte* mutable_payload() noexcept {
    if (hdr.payload_size == 0) return nullptr;
    return hdr.payload_size <= kInlineBytes ? inline_data.data() : heap.get();
  }
};

/// Checksum of a header (with its csum field zeroed) plus `n` payload bytes.
/// FNV-1a folded to 16 bits — error detection for the fault injector, not
/// cryptography.
std::uint16_t wire_checksum(const WireHeader& hdr, const std::byte* payload,
                            std::size_t n) noexcept;

/// Stamp pkt.hdr.csum; called by the fabric at injection when checksums are
/// enabled (before fault injection, so corruption is detectable).
void stamp_checksum(Packet& pkt) noexcept;

/// Recompute and compare. A packet whose payload pointer is inconsistent
/// with payload_size fails structural validation before this is called.
bool verify_checksum(const Packet& pkt) noexcept;

/// Deep copy (header + payload) for duplication and retransmit tracking;
/// heap payloads are cloned through the pool.
Packet clone_packet(const Packet& pkt);

/// Structural validation of an inbound packet, before it may reach matching:
/// known opcode, source rank within the universe, and a payload pointer
/// consistent with payload_size. Cheap enough to run unconditionally.
inline bool validate_structure(const Packet& pkt, int num_ranks) noexcept {
  const std::uint16_t op = static_cast<std::uint16_t>(pkt.hdr.opcode);
  if (op == 0 || op > kMaxOpcode) return false;
  if (static_cast<int>(pkt.hdr.src_rank) >= num_ranks) return false;
  if (pkt.hdr.payload_size > kInlineBytes && pkt.heap == nullptr) return false;
  return true;
}

}  // namespace fairmpi::fabric
