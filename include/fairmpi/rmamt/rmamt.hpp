// RMA-MT (paper refs [7][14]) over the *real* fairmpi engine: N threads on
// an initiating rank each perform rounds of `ops_per_round` puts of one
// message size followed by a flush, against a window exposed by the target
// rank. Reports the aggregate put rate.
#pragma once

#include <cstddef>
#include <cstdint>

#include "fairmpi/core/config.hpp"

namespace fairmpi::rmamt {

struct RmamtConfig {
  Config engine;              ///< instances / assignment / progress
  int threads = 1;
  std::size_t message_size = 1;
  int ops_per_round = 1000;   ///< puts between flushes (as in RMA-MT)
  double duration_s = 0.25;
};

struct RmamtResult {
  double msg_rate = 0.0;    ///< puts per wall second, all threads
  std::uint64_t ops = 0;    ///< puts counted in the timed region
  double duration_s = 0.0;
};

/// Run put+flush rounds for the configured duration (host-scale
/// validation; use the model backend for paper-scale sweeps).
RmamtResult run_put_flush(const RmamtConfig& cfg);

}  // namespace fairmpi::rmamt
