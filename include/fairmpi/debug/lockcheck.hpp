// Lock-rank / lock-order runtime validator (correctness tooling; DESIGN.md
// "Correctness tooling").
//
// Every lock in the engine belongs to a *class* — a (rank, name) pair — and
// all acquisitions go through RankedLock<T>, which forwards to the wrapped
// primitive and, when FAIRMPI_LOCKCHECK is enabled, maintains a thread-local
// held-lock stack plus a global acquisition-order graph:
//
//   * rank rule — a *blocking* lock() must target a rank strictly greater
//     than every rank already held (equal rank is tolerated across distinct
//     classes, see below; equal rank on the same class is a self-deadlock
//     and reported). The engine's hierarchy is
//
//         progress gate (10) < CRI instance (20) < ft detector (25)
//                            < match (30) < RMA accumulate (40)
//                            < RMA slots (45) < rndv state (50)
//                            < rndv control (55) < comm create (60)
//
//   * cycle rule — blocking acquisitions record directed edges
//     held-class -> acquired-class; an acquisition that would close a cycle
//     (e.g. A->B established, then B held while blocking on A) is reported
//     naming both classes and both acquisition sites. This catches
//     inversions between same-rank classes that the rank rule tolerates.
//
//   * try_lock() is exempt from both rules: a try-lock cannot block, so it
//     cannot deadlock, and Algorithm 2's sweep *depends* on being allowed to
//     try-lock same-rank sibling instances. A successful try_lock is pushed
//     on the held stack (so locks acquired under it are still validated);
//     a FAILED try_lock touches neither the lock nor any validator state —
//     the sweep's correctness requires failure to be entirely effect-free.
//
// RankedLock is also the attachment point for the lock-contention profiler
// (obs/contention.hpp): every class the validator knows is a class the
// profiler can attribute wait time to, using the same (rank, name) identity.
// Profiling is gated on obs::enabled() — one relaxed load and a predicted-
// not-taken branch per lock op when off (benchmarked by BM_RankedLockObs* in
// bench_ablation_locks) — so RankedLock<T> stays a near-zero-cost wrapper
// with FAIRMPI_LOCKCHECK=0 and FAIRMPI_OBS unset. The wrapper does carry the
// class identity (rank, name, cached profiler id) in both build modes now;
// that is data, not per-operation code.
#pragma once

#include <cstdint>

#include "fairmpi/common/align.hpp"
#include "fairmpi/common/timing.hpp"
#include "fairmpi/debug/thread_safety.hpp"
#include "fairmpi/obs/contention.hpp"

#ifndef FAIRMPI_LOCKCHECK
#define FAIRMPI_LOCKCHECK 0
#endif

#if FAIRMPI_LOCKCHECK
#include <source_location>
#endif

namespace fairmpi::debug {

/// Lock ranks, lowest acquired first. Gaps are deliberate: future classes
/// slot in without renumbering. Tests may mint private ranks >= kTestBase.
enum class LockRank : std::uint16_t {
  kProgressGate = 10,   ///< progress::ProgressEngine serial gate
  kCriInstance = 20,    ///< cri::CommResourceInstance lock
  kFtDetector = 25,     ///< ft::FailureDetector peer-liveness table (note_alive
                        ///< runs from packet dispatch, which progress_instance_
                        ///< locked executes under a CRI lock — so above 20; the
                        ///< poll collects under it and acts lock-free, so it
                        ///< acquires nothing and sits below match)
  kMatch = 30,          ///< match::MatchEngine per-communicator lock
  kRmaAccumulate = 40,  ///< rma::Window accumulate stripe locks
  kWatchdog = 42,       ///< progress::Watchdog sweep state (acquires the
                        ///< rndv registries, rank 50, while held — so below)
  kRmaSlots = 45,       ///< rma::Window pending-slot vector lock
  kReliability = 47,    ///< p2p::ReliabilityTracker in-flight table (taken
                        ///< under CRI/match locks on the tracked-send path)
  kRndvState = 50,      ///< core::Rank rendezvous registries (rndv_lock_)
  kRndvControl = 55,    ///< core::Rank deferred control queue (control_lock_)
  kCommCreate = 60,     ///< core::Universe communicator creation
  kFaultInject = 65,    ///< fabric::FaultInjector per-link state (held only
                        ///< across one injection; acquires only the payload
                        ///< pool, rank 70, for duplication)
  kSlabPool = 70,       ///< common::SlabArena global freelist (leaf: a pool
                        ///< refill/flush may run under any engine lock, so it
                        ///< must rank above all of them and acquire nothing)
  kTestBase = 1000,     ///< first rank available to unit tests
};

#if FAIRMPI_LOCKCHECK

/// One lock class: all locks sharing a (rank, name) are validated together.
struct LockClass {
  const char* name;
  LockRank rank;
  std::uint32_t id;  ///< index into the order graph
};

/// A rule violation, handed to the installed handler before (by default)
/// aborting. `report` is a complete human-readable description naming both
/// lock classes and both acquisition sites.
struct Violation {
  enum class Kind : std::uint8_t { kRankOrder, kCycle, kOverflow };
  Kind kind;
  const LockClass* attempted;    ///< class being acquired
  const LockClass* conflicting;  ///< held class it conflicts with (may be null)
  char report[1024];
};

using ViolationHandler = void (*)(const Violation&);

/// Install a handler (tests use this to capture reports instead of
/// aborting). Passing nullptr restores the default print-and-abort handler.
/// Returns the previous handler.
ViolationHandler set_violation_handler(ViolationHandler handler) noexcept;

/// Intern a lock class. Classes are identified by (rank, name string value);
/// repeated interning returns the same pointer. At most kMaxLockClasses
/// distinct classes may exist (aborts beyond that — raise the cap).
const LockClass* intern_lock_class(LockRank rank, const char* name);

inline constexpr int kMaxLockClasses = 64;
inline constexpr int kMaxHeldLocks = 16;

/// Rank + cycle validation for a *blocking* acquisition of `cls`. Call
/// before the underlying lock() so deadlocks are reported instead of hung.
void check_blocking_acquire(const LockClass* cls, const void* addr,
                            const std::source_location& loc);
/// Push an acquired lock (blocking or successful try_lock) on the held
/// stack. Failed try_locks must NOT call this.
void note_acquired(const LockClass* cls, const void* addr,
                   const std::source_location& loc);
/// Pop a released lock (out-of-order release is tolerated).
void note_released(const void* addr) noexcept;

/// Number of locks the calling thread currently holds (test hook).
int held_count() noexcept;
/// Reset the calling thread's held stack and the global order graph —
/// test isolation only, never called by the engine.
void reset_for_test() noexcept;

#endif  // FAIRMPI_LOCKCHECK

/// Ranked wrapper: the only way engine code should declare a lock. `LockT`
/// must be Lockable (lock / try_lock / unlock). The wrapper is itself
/// Lockable, so fairmpi::LockGuard / std::unique_lock work unchanged.
///
/// RankedLock is also a thread-safety capability in its own right: engine
/// state is declared FAIRMPI_GUARDED_BY the *wrapper*, not the wrapped
/// primitive, so one annotation covers all three build modes (plain,
/// FAIRMPI_LOCKCHECK, FAIRMPI_OBS). The forwarding shims carry interface
/// annotations for callers but suppress body analysis (FAIRMPI_NO_TSA):
/// the body's job is to manipulate `impl_` — a second capability the
/// analysis must not conflate with the wrapper. This is the standard
/// wrapper-primitive idiom; this header is lint-exempt, and the
/// no-tsa-hotpath lint rule keeps the escape hatch from spreading into
/// engine code.
template <typename LockT>
class FAIRMPI_CAPABILITY("mutex") RankedLock {
 public:
#if FAIRMPI_LOCKCHECK
  RankedLock(LockRank rank, const char* name)
      : rank_(rank), name_(name), cls_(intern_lock_class(rank, name)) {}
  RankedLock(const RankedLock&) = delete;
  RankedLock& operator=(const RankedLock&) = delete;

  void lock(const std::source_location& loc = std::source_location::current())
      FAIRMPI_ACQUIRE() FAIRMPI_NO_TSA {
    check_blocking_acquire(cls_, this, loc);
    if (obs::enabled()) [[unlikely]] {
      lock_profiled();
    } else {
      impl_.lock();
    }
    note_acquired(cls_, this, loc);
  }

  bool try_lock(const std::source_location& loc = std::source_location::current())
      FAIRMPI_TRY_ACQUIRE(true) FAIRMPI_NO_TSA {
    // On failure: no acquire, no validator state change (Alg. 2 sweep).
    // Profiler counters are observational, not validator state.
    if (obs::enabled()) [[unlikely]] {
      if (!try_lock_profiled()) return false;
    } else if (!impl_.try_lock()) {
      return false;
    }
    note_acquired(cls_, this, loc);
    return true;
  }

  void unlock() FAIRMPI_RELEASE() FAIRMPI_NO_TSA {
    note_released(this);
    impl_.unlock();
  }

  const LockClass* lock_class() const noexcept { return cls_; }
#else
  constexpr RankedLock(LockRank rank, const char* name) noexcept
      : rank_(rank), name_(name) {}
  RankedLock(const RankedLock&) = delete;
  RankedLock& operator=(const RankedLock&) = delete;

  void lock() FAIRMPI_ACQUIRE() FAIRMPI_NO_TSA {
    if (obs::enabled()) [[unlikely]] {
      lock_profiled();
    } else {
      impl_.lock();
    }
  }
  bool try_lock() FAIRMPI_TRY_ACQUIRE(true) FAIRMPI_NO_TSA {
    if (obs::enabled()) [[unlikely]] return try_lock_profiled();
    return impl_.try_lock();
  }
  void unlock() FAIRMPI_RELEASE() FAIRMPI_NO_TSA { impl_.unlock(); }
#endif

  /// The wrapped primitive, for primitive-specific queries (is_locked()).
  LockT& underlying() noexcept { return impl_; }
  const LockT& underlying() const noexcept { return impl_; }

 private:
  /// Sentinel for "profiler id not interned yet"; distinct from
  /// kNoContentionClass so an over-cap intern result is also cached (and
  /// the lock simply stays unprofiled instead of re-interning per op).
  static constexpr std::uint16_t kObsClsUnset = 0xFFFE;

  std::uint16_t obs_class() const noexcept {
    std::uint16_t c = obs_cls_.load(std::memory_order_relaxed);
    if (c == kObsClsUnset) [[unlikely]] {
      // Racy first intern is benign: interning is idempotent per (rank,
      // name), so concurrent callers cache the same id.
      c = obs::intern_contention_class(static_cast<std::uint16_t>(rank_), name_);
      obs_cls_.store(c, std::memory_order_relaxed);
    }
    return c;
  }

  /// Slow path for lock() with profiling on: probe first so the common
  /// uncontended acquire costs one try_lock, and only a contended acquire
  /// pays for two TSC reads around the blocking wait.
  void lock_profiled() FAIRMPI_NO_TSA {
    const std::uint16_t cls = obs_class();
    if (impl_.try_lock()) {
      obs::note_uncontended_acquire(cls);
      return;
    }
    const std::uint64_t t0 = CycleClock::now();
    impl_.lock();
    obs::note_contended_acquire(cls, CycleClock::now() - t0);
  }

  bool try_lock_profiled() FAIRMPI_NO_TSA {
    const std::uint16_t cls = obs_class();
    if (impl_.try_lock()) {
      obs::note_uncontended_acquire(cls);
      return true;
    }
    obs::note_trylock_fail(cls);
    return false;
  }

  LockT impl_;
  LockRank rank_;
  const char* name_;
  mutable std::atomic<std::uint16_t> obs_cls_{kObsClsUnset};
#if FAIRMPI_LOCKCHECK
  const LockClass* cls_;
#endif
};

}  // namespace fairmpi::debug

namespace fairmpi {
using debug::LockRank;
using debug::RankedLock;
}  // namespace fairmpi
