// Clang Thread Safety Analysis macros — the compile-time half of the
// concurrency contract (DESIGN.md §5e; runtime half in debug/lockcheck.hpp).
//
// Every lock class in the engine is annotated as a *capability*, every
// guarded member names the capability that protects it, and every function
// that assumes a lock is held declares it. Under the `tsa` CMake preset
// (Clang, -Wthread-safety -Werror=thread-safety) the compiler then proves,
// on every build, that
//
//   * no guarded member is touched without its lock held,
//   * no function with a REQUIRES contract is called without it,
//   * no acquisition leaks past a scope the analysis can't see.
//
// This is the static complement to the FAIRMPI_LOCKCHECK runtime validator:
// lockcheck catches rank/cycle violations on executed schedules; the
// annotations catch lock-*protection* violations on paths no test schedule
// ever executes. tools/lock_graph.py closes the remaining gap (static
// lock-*order* checking) from the same source of truth.
//
// The macros expand to nothing outside Clang (GCC has no thread-safety
// attributes), so annotated headers cost the default GCC build nothing —
// not even -Wattributes noise.
//
// Discipline:
//   * FAIRMPI_NO_TSA is an escape hatch for primitive *wrappers* whose
//     bodies manipulate the capability they themselves model (RankedLock's
//     forwarding shims). It is banned in hot-path engine files — enforced
//     by the `no-tsa-hotpath` rule in tools/lint_concurrency.py.
//   * Engine code never calls lock()/unlock() bare (bare-lock lint rule);
//     it uses fairmpi::LockGuard below, which Clang's analysis understands
//     (std::scoped_lock from libstdc++ carries no annotations, so it would
//     silently disable the analysis at every use).
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(acquire_capability)
#define FAIRMPI_TSA_ENABLED 1
#endif
#endif
#ifndef FAIRMPI_TSA_ENABLED
#define FAIRMPI_TSA_ENABLED 0
#endif

#if FAIRMPI_TSA_ENABLED
#define FAIRMPI_TSA_ATTR(x) __attribute__((x))
#else
#define FAIRMPI_TSA_ATTR(x)  // no-op off Clang
#endif

/// A type whose instances can be held: lock classes (Spinlock, TicketLock,
/// RankedLock<T>). The string names the capability kind in diagnostics.
#define FAIRMPI_CAPABILITY(x) FAIRMPI_TSA_ATTR(capability(x))

/// An RAII type whose lifetime equals a critical section (LockGuard).
#define FAIRMPI_SCOPED_CAPABILITY FAIRMPI_TSA_ATTR(scoped_lockable)

/// Member data protected by a capability: every access must hold `x`.
#define FAIRMPI_GUARDED_BY(x) FAIRMPI_TSA_ATTR(guarded_by(x))

/// Pointer member whose *pointee* is protected by `x` (the pointer itself
/// may be read freely).
#define FAIRMPI_PT_GUARDED_BY(x) FAIRMPI_TSA_ATTR(pt_guarded_by(x))

/// Declared acquisition-order edges between capabilities of one class.
#define FAIRMPI_ACQUIRED_BEFORE(...) FAIRMPI_TSA_ATTR(acquired_before(__VA_ARGS__))
#define FAIRMPI_ACQUIRED_AFTER(...) FAIRMPI_TSA_ATTR(acquired_after(__VA_ARGS__))

/// Function contract: callers must hold the listed capabilities (and the
/// function neither acquires nor releases them).
#define FAIRMPI_REQUIRES(...) FAIRMPI_TSA_ATTR(requires_capability(__VA_ARGS__))
#define FAIRMPI_REQUIRES_SHARED(...) \
  FAIRMPI_TSA_ATTR(requires_shared_capability(__VA_ARGS__))

/// Function acquires/releases the listed capabilities (empty list = `this`
/// for capability-type members like lock()/unlock() themselves).
#define FAIRMPI_ACQUIRE(...) FAIRMPI_TSA_ATTR(acquire_capability(__VA_ARGS__))
#define FAIRMPI_ACQUIRE_SHARED(...) \
  FAIRMPI_TSA_ATTR(acquire_shared_capability(__VA_ARGS__))
#define FAIRMPI_RELEASE(...) FAIRMPI_TSA_ATTR(release_capability(__VA_ARGS__))
#define FAIRMPI_RELEASE_SHARED(...) \
  FAIRMPI_TSA_ATTR(release_shared_capability(__VA_ARGS__))
#define FAIRMPI_RELEASE_GENERIC(...) \
  FAIRMPI_TSA_ATTR(release_generic_capability(__VA_ARGS__))

/// Conditional acquisition: holds the capability only when returning `b`
/// (Spinlock::try_lock — the primitive Algorithm 2's sweep is built on).
#define FAIRMPI_TRY_ACQUIRE(...) FAIRMPI_TSA_ATTR(try_acquire_capability(__VA_ARGS__))
#define FAIRMPI_TRY_ACQUIRE_SHARED(...) \
  FAIRMPI_TSA_ATTR(try_acquire_shared_capability(__VA_ARGS__))

/// Function must be called with the listed capabilities NOT held (deadlock
/// guards for blocking entry points that take the lock themselves).
#define FAIRMPI_EXCLUDES(...) FAIRMPI_TSA_ATTR(locks_excluded(__VA_ARGS__))

/// Runtime-verified assumption injected into the static state (used where a
/// capability is provably held through a channel the analysis can't see).
#define FAIRMPI_ASSERT_CAPABILITY(x) FAIRMPI_TSA_ATTR(assert_capability(x))

/// Accessor returns a reference that *is* capability `x` — lets the
/// analysis alias `inst.lock()` with the underlying member.
#define FAIRMPI_RETURN_CAPABILITY(x) FAIRMPI_TSA_ATTR(lock_returned(x))

/// Suppress body analysis (the function's *interface* annotations still
/// bind callers). Wrapper-primitive internals only; see header comment.
#define FAIRMPI_NO_TSA FAIRMPI_TSA_ATTR(no_thread_safety_analysis)

namespace fairmpi {

/// Tag for adopting an acquisition already performed (the timed-acquire and
/// try-lock-then-scope idioms): `LockGuard g(lock, adopt_lock);`.
struct AdoptLockTag {
  explicit AdoptLockTag() = default;
};
inline constexpr AdoptLockTag adopt_lock{};

/// The engine's RAII critical-section guard. Functionally std::scoped_lock
/// over one Lockable, but carries the scoped-capability annotations that
/// libstdc++'s guards lack, so Clang's thread-safety analysis tracks every
/// critical section in the engine. Works with RankedLock<T>, the raw
/// primitives, and any other Lockable.
template <typename LockT>
class FAIRMPI_SCOPED_CAPABILITY LockGuard {
 public:
  /// Blocking acquisition for the scope.
  explicit LockGuard(LockT& lock) FAIRMPI_ACQUIRE(lock) : lock_(lock) { lock.lock(); }

  /// Adopt an acquisition the caller already performed (timed acquire,
  /// successful try_lock): the caller must hold `lock`; this scope now owns
  /// the release.
  LockGuard(LockT& lock, AdoptLockTag) FAIRMPI_REQUIRES(lock) : lock_(lock) {}

  ~LockGuard() FAIRMPI_RELEASE() { lock_.unlock(); }

  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  LockT& lock_;
};

template <typename LockT>
LockGuard(LockT&) -> LockGuard<LockT>;
template <typename LockT>
LockGuard(LockT&, AdoptLockTag) -> LockGuard<LockT>;

}  // namespace fairmpi
