// Software-based Performance Counters (SPCs).
//
// Mirrors the Open MPI SPC infrastructure the paper uses (ref [9]) to expose
// low-overhead internal statistics. Table II of the paper is built from two
// of these counters (out-of-sequence messages and total matching time); we
// expose the full set the engine maintains so benches and tests can assert
// on internal behaviour, not just end-to-end rates.
//
// Sharding: every thread of a rank updates every counter on every message,
// so a single shared atomic per counter serializes the whole engine on the
// counter cache line (the contention arXiv:2002.02509 measures dominating
// multi-VCI scaling). CounterSet is therefore internally sharded: each
// registered thread gets a private shard (common/thread_slot.hpp), written
// with plain relaxed stores — the owning thread is the only writer — and
// snapshot()/get() sum the shards. The public add/get/update_max/snapshot
// API and the Table II semantics are unchanged; totals are exact, only the
// interleaving of a snapshot against in-flight adds is approximate, exactly
// as with the previous shared-atomic design.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

#include "fairmpi/common/align.hpp"
#include "fairmpi/common/thread_slot.hpp"

namespace fairmpi::spc {

enum class Counter : int {
  kMessagesSent = 0,       ///< completed two-sided sends
  kMessagesReceived,       ///< matched + delivered two-sided receives
  kBytesSent,              ///< payload bytes injected
  kBytesReceived,          ///< payload bytes delivered
  kUnexpectedMessages,     ///< arrived before a matching receive was posted
  kOutOfSequence,          ///< arrived with seq != expected (buffered)
  kMatchTimeNs,            ///< total time spent holding a matching lock
  kMatchAttempts,          ///< entries into the matching critical section
  kPostedQueueDepth,       ///< cumulative posted-recv queue length at search
  kUnexpectedQueueDepth,   ///< cumulative unexpected queue length at search
  kOosBufferPeak,          ///< high-water mark of the reorder buffer (max, not sum)
  kSendBackpressure,       ///< sends that had to retry on a full RX ring
  kProgressCalls,          ///< entries into the progress engine
  kProgressCompletions,    ///< completions harvested by progress
  kInstanceTrylockFail,    ///< failed try_lock on a CRI (Alg. 2 skip)
  kInstanceLockWaitNs,     ///< time spent blocked acquiring CRI locks
  kRmaPuts,                ///< one-sided put operations
  kRmaGets,                ///< one-sided get operations
  kRmaAccumulates,         ///< one-sided accumulate operations
  kRmaFlushes,             ///< passive-target flush operations
  kHeaderDrops,            ///< inbound packets failing structural validation
  kCsumDrops,              ///< inbound packets failing checksum verification
  kDupDiscards,            ///< duplicate deliveries discarded (exactly-once)
  kRetransmits,            ///< packets re-injected after an ack timeout
  kAcksSent,               ///< reliability acks injected
  kAcksReceived,           ///< reliability acks processed
  kReliabilityErrors,      ///< typed errors surfaced (budget/retry exhaustion)
  kWatchdogStalls,         ///< stalled instances/rendezvous flagged
  kSubmitQueued,           ///< injections routed through a submission ring
  kSubmitRingFull,         ///< submission attempts bounced off a full ring
  kSubmitDoorbells,        ///< batched doorbells rung by producers
  kSubmitCasRetries,       ///< submission-ring tail-CAS collisions
  kRmaFlushAllBusy,        ///< RMA flush sweeps that found every CRI busy
  kFtHeartbeatsSent,       ///< ft liveness probes injected on idle links
  kFtHeartbeatsReceived,   ///< ft liveness probes consumed
  kFtSuspects,             ///< peers that entered the suspect state
  kFtDeaths,               ///< peers confirmed dead
  kFtPeerFailedOps,        ///< operations completed with kPeerFailed
  kFtRevokedOps,           ///< operations refused/failed on a revoked comm
  kOverloadShedMessages,   ///< messages dropped at admission (kShed policy)
  kOverloadNacksSent,      ///< receiver-side NACKs queued for shed packets
  kOverloadNacksReceived,  ///< sender-side NACKs processed (op failed typed)
  kOverloadPausedPeers,    ///< peer RX pauses latched (kQueue backpressure)
  kOverloadLevelChanges,   ///< degradation-ladder transitions (any direction)
  kOverloadPoolPeak,       ///< payload-pool in-use bytes high-water (max)
  kCancelledOps,           ///< requests settled kCancelled
  kDeadlineExceededOps,    ///< requests settled kDeadlineExceeded
  kQuiesceTimeouts,        ///< quiesce calls that gave up with backlog
  kCollOps,                ///< collective operations entered (any algorithm)
  kCollRounds,             ///< tree/ring rounds executed across collectives
  kCollSegments,           ///< pipeline segments sent (segmented algorithms)
  kCollLaneAcquires,       ///< collective tag lanes acquired
  kCollLaneWaits,          ///< lane acquisitions that had to spin for a free lane
  kCollBinomialOps,        ///< collectives run with the binomial-tree algorithm
  kCollRsagOps,            ///< allreduces run as reduce-scatter + allgather
  kCollPipelinedOps,       ///< collectives run with pipelined segmentation
  kReservedTagRejects,     ///< user ops refused for a tag in the reserved block
  kCount
};

constexpr int kNumCounters = static_cast<int>(Counter::kCount);

/// Human-readable counter name ("OutOfSequence", ...).
const char* counter_name(Counter c) noexcept;

/// True for max-style (high-water) counters, which merge/reset differently
/// from sums.
constexpr bool is_high_water(Counter c) noexcept {
  return c == Counter::kOosBufferPeak || c == Counter::kOverloadPoolPeak;
}

/// Point-in-time copy of all counters; supports delta and merge so benches
/// can report per-phase numbers (Table II is the delta over the timed loop).
struct Snapshot {
  std::array<std::uint64_t, kNumCounters> values{};

  std::uint64_t get(Counter c) const noexcept { return values[static_cast<int>(c)]; }

  /// Counter-wise difference (this - earlier); kOosBufferPeak keeps the
  /// later (max-style) value since it is a high-water mark, not a sum.
  Snapshot delta_since(const Snapshot& earlier) const noexcept;

  /// Sum (max for high-water counters) across engines — e.g. both ranks.
  void merge(const Snapshot& other) noexcept;

  std::string to_string() const;
};

/// One set of counters, shared by all threads of a rank. Internally sharded
/// per thread (see file comment); reads sum the shards, so get()/snapshot()
/// are O(threads) — fine, they are off-path.
///
/// reset() is a *rebase*, not a destructive zeroing: it records the current
/// totals as the new baseline, so adds racing a reset are never lost (the
/// old design's store-zero could swallow a concurrent fetch_add's worth of
/// updates between the snapshot and the store). High-water counters are
/// lifetime maxima and are NOT lowered by reset(), matching
/// Snapshot::delta_since, which also keeps the later absolute value for
/// them. Benches that need per-phase numbers should prefer delta_since.
class CounterSet {
 private:
  /// Per-thread counter block. Cells are written only by the owning thread
  /// (plain-speed relaxed stores) and read by anyone via snapshot(). The
  /// whole block is one thread's property, so counters within it may share
  /// cache lines; the alignas keeps separate shards off each other's lines.
  struct alignas(fairmpi::kCacheLine) Shard {
    std::array<std::atomic<std::uint64_t>, kNumCounters> cells{};
  };

 public:
  CounterSet() = default;
  CounterSet(const CounterSet&) = delete;
  CounterSet& operator=(const CounterSet&) = delete;
  ~CounterSet();

  /// A resolved handle to the calling thread's shard: hot code that issues
  /// several updates back-to-back (the matching engine does up to five per
  /// envelope) takes one cursor and skips the per-call slot lookup. Must
  /// not outlive the statement block it was taken in — in particular never
  /// across a point where the thread could change (it cannot, within one
  /// function) or the CounterSet could die.
  class Cursor {
   public:
    void add(Counter c, std::uint64_t n = 1) noexcept {
      auto& cell = shard_->cells[static_cast<std::size_t>(c)];
      if (shared_) {
        cell.fetch_add(n, std::memory_order_relaxed);
        return;
      }
      cell.store(cell.load(std::memory_order_relaxed) + n, std::memory_order_relaxed);
    }

    void update_max(Counter c, std::uint64_t candidate) noexcept {
      auto& cell = shard_->cells[static_cast<std::size_t>(c)];
      // lint: allow(relaxed-sync) single-writer cell (CAS loop below covers shared)
      std::uint64_t cur = cell.load(std::memory_order_relaxed);
      if (!shared_) {
        if (candidate > cur) cell.store(candidate, std::memory_order_relaxed);
        return;
      }
      while (candidate > cur &&
             !cell.compare_exchange_weak(cur, candidate, std::memory_order_relaxed)) {
      }
    }

   private:
    friend class CounterSet;
    Cursor(Shard* shard, bool shared) noexcept : shard_(shard), shared_(shared) {}
    Shard* shard_;
    bool shared_;  ///< overflow shard: concurrent writers, RMWs required
  };

  Cursor cursor() noexcept {
    const int slot = common::this_thread_slot();
    if (slot == common::kNoThreadSlot) {
      return Cursor(&overflow_shard(), /*shared=*/true);
    }
    return Cursor(&owned_shard(slot), /*shared=*/false);
  }

  void add(Counter c, std::uint64_t n = 1) noexcept {
    const int slot = common::this_thread_slot();
    if (slot == common::kNoThreadSlot) return add_shared(c, n);
    auto& cell = owned_shard(slot).cells[static_cast<std::size_t>(c)];
    // Single-writer cell: a relaxed load+store is a data-race-free
    // increment and avoids the lock prefix a fetch_add would pay.
    cell.store(cell.load(std::memory_order_relaxed) + n, std::memory_order_relaxed);
  }

  /// Update a high-water-mark counter to max(current, candidate).
  void update_max(Counter c, std::uint64_t candidate) noexcept {
    const int slot = common::this_thread_slot();
    if (slot == common::kNoThreadSlot) return max_shared(c, candidate);
    auto& cell = owned_shard(slot).cells[static_cast<std::size_t>(c)];
    // lint: allow(relaxed-sync) single-writer cell, branch skips a same-thread rewrite
    if (candidate > cell.load(std::memory_order_relaxed)) {
      cell.store(candidate, std::memory_order_relaxed);
    }
  }

  /// Current value (sum or max over shards, minus the reset baseline).
  std::uint64_t get(Counter c) const noexcept;

  Snapshot snapshot() const noexcept;

  /// Reset-immune lifetime totals: the raw shard sums, ignoring the reset
  /// baseline. Monotone non-decreasing, so delta_since over lifetime
  /// snapshots gives exact per-phase accounting no matter who calls
  /// reset() in between — benches should prefer this over reset().
  Snapshot lifetime_snapshot() const noexcept;

  /// Rebase all sum counters to zero (see class comment).
  void reset() noexcept;

 private:
  /// The calling thread's private shard, allocated on first touch. Shards
  /// outlive their thread: when a slot is recycled to a later thread the
  /// shard (and its accumulated totals) is simply adopted — the slot
  /// registry's lock orders the handover.
  Shard& owned_shard(int slot) noexcept {
    Shard* s = shards_[static_cast<std::size_t>(slot)].load(std::memory_order_acquire);
    if (s != nullptr) return *s;
    return slow_shard(static_cast<std::size_t>(slot));
  }

  /// Allocates the slot's shard; out of line to keep add() small.
  Shard& slow_shard(std::size_t idx) noexcept;
  /// Sum (max for high-water) over shards, ignoring the reset baseline.
  std::uint64_t raw_total(Counter c) const noexcept;
  /// The shard shared by all threads past the slot registry's capacity
  /// (last index); writes to it need real atomic RMWs.
  Shard& overflow_shard() noexcept;
  void add_shared(Counter c, std::uint64_t n) noexcept;
  void max_shared(Counter c, std::uint64_t candidate) noexcept;

  std::array<std::atomic<Shard*>, common::kMaxThreadSlots + 1> shards_{};
  /// Reset baseline, subtracted from sum counters on read. Written only by
  /// reset() (rare, off-path), read by get()/snapshot().
  std::array<std::atomic<std::uint64_t>, kNumCounters> base_{};
};

}  // namespace fairmpi::spc
