// Software-based Performance Counters (SPCs).
//
// Mirrors the Open MPI SPC infrastructure the paper uses (ref [9]) to expose
// low-overhead internal statistics. Table II of the paper is built from two
// of these counters (out-of-sequence messages and total matching time); we
// expose the full set the engine maintains so benches and tests can assert
// on internal behaviour, not just end-to-end rates.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

#include "fairmpi/common/align.hpp"

namespace fairmpi::spc {

enum class Counter : int {
  kMessagesSent = 0,       ///< completed two-sided sends
  kMessagesReceived,       ///< matched + delivered two-sided receives
  kBytesSent,              ///< payload bytes injected
  kBytesReceived,          ///< payload bytes delivered
  kUnexpectedMessages,     ///< arrived before a matching receive was posted
  kOutOfSequence,          ///< arrived with seq != expected (buffered)
  kMatchTimeNs,            ///< total time spent holding a matching lock
  kMatchAttempts,          ///< entries into the matching critical section
  kPostedQueueDepth,       ///< cumulative posted-recv queue length at search
  kUnexpectedQueueDepth,   ///< cumulative unexpected queue length at search
  kOosBufferPeak,          ///< high-water mark of the reorder buffer (max, not sum)
  kSendBackpressure,       ///< sends that had to retry on a full RX ring
  kProgressCalls,          ///< entries into the progress engine
  kProgressCompletions,    ///< completions harvested by progress
  kInstanceTrylockFail,    ///< failed try_lock on a CRI (Alg. 2 skip)
  kInstanceLockWaitNs,     ///< time spent blocked acquiring CRI locks
  kRmaPuts,                ///< one-sided put operations
  kRmaGets,                ///< one-sided get operations
  kRmaAccumulates,         ///< one-sided accumulate operations
  kRmaFlushes,             ///< passive-target flush operations
  kCount
};

constexpr int kNumCounters = static_cast<int>(Counter::kCount);

/// Human-readable counter name ("OutOfSequence", ...).
const char* counter_name(Counter c) noexcept;

/// Point-in-time copy of all counters; supports delta and merge so benches
/// can report per-phase numbers (Table II is the delta over the timed loop).
struct Snapshot {
  std::array<std::uint64_t, kNumCounters> values{};

  std::uint64_t get(Counter c) const noexcept { return values[static_cast<int>(c)]; }

  /// Counter-wise difference (this - earlier); kOosBufferPeak keeps the
  /// later (max-style) value since it is a high-water mark, not a sum.
  Snapshot delta_since(const Snapshot& earlier) const noexcept;

  /// Sum (max for high-water counters) across engines — e.g. both ranks.
  void merge(const Snapshot& other) noexcept;

  std::string to_string() const;
};

/// One set of counters, shared by all threads of a rank. Relaxed atomics:
/// SPCs trade exactness of interleaving for negligible overhead, like the
/// Open MPI originals.
class CounterSet {
 public:
  void add(Counter c, std::uint64_t n = 1) noexcept {
    values_[static_cast<int>(c)]->fetch_add(n, std::memory_order_relaxed);
  }

  /// Update a high-water-mark counter to max(current, candidate).
  void update_max(Counter c, std::uint64_t candidate) noexcept {
    auto& cell = *values_[static_cast<int>(c)];
    std::uint64_t cur = cell.load(std::memory_order_relaxed);
    while (candidate > cur &&
           !cell.compare_exchange_weak(cur, candidate, std::memory_order_relaxed)) {
    }
  }

  std::uint64_t get(Counter c) const noexcept {
    return values_[static_cast<int>(c)]->load(std::memory_order_relaxed);
  }

  Snapshot snapshot() const noexcept {
    Snapshot snap;
    for (int i = 0; i < kNumCounters; ++i) {
      snap.values[static_cast<std::size_t>(i)] =
          values_[static_cast<std::size_t>(i)]->load(std::memory_order_relaxed);
    }
    return snap;
  }

  void reset() noexcept {
    for (auto& v : values_) v->store(0, std::memory_order_relaxed);
  }

 private:
  std::array<Padded<std::atomic<std::uint64_t>>, kNumCounters> values_{};
};

}  // namespace fairmpi::spc
