// Rendezvous protocol for large messages (extension beyond the paper's
// zero/small-byte experiments; DESIGN.md §6).
//
// Eager sends copy the payload at injection, which is wasteful past a few
// tens of KiB. Above Config::eager_limit the engine switches to
// rendezvous:
//
//   sender                         receiver
//   ──────                        ────────
//   RndvRts (envelope only,        matching engine matches the RTS like an
//     seq-numbered; 16-byte body     eager envelope (same FIFO/overtaking
//     carries total size + sender    semantics) but does not copy; it
//     cookie)                        reports the match to the rendezvous
//                                    hook, which schedules…
//   …RndvAck (receiver cookie) ◄──  an ack through the control queue
//   data fragments (RndvData,  ──►  copied straight into the posted
//     frag offset via hdr.seq)       buffer; the receive completes when
//                                    every fragment has landed; the send
//                                    completes when the last fragment is
//                                    injected.
//
// Lock discipline: matches and acks are discovered while holding the
// matching lock and possibly a CRI lock; sending from those contexts could
// deadlock two progress threads acquiring each other's instances. All
// protocol sends are therefore *deferred* to a control queue drained by
// Rank::progress() outside any engine lock.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>

#include "fairmpi/fabric/wire.hpp"
#include "fairmpi/p2p/request.hpp"

namespace fairmpi::p2p {

/// 16-byte body of a RndvRts packet.
struct RtsBody {
  std::uint64_t total = 0;         ///< full message size
  std::uint64_t sender_cookie = 0; ///< sender-side RndvSendState id
};
static_assert(sizeof(RtsBody) == 16);

inline RtsBody read_rts_body(const fabric::Packet& pkt) {
  RtsBody body;
  std::memcpy(&body, pkt.payload(), sizeof body);
  return body;
}

/// Sender-side state of one rendezvous transfer, registered under a cookie
/// so wire packets can reference it safely.
struct RndvSendState {
  const std::byte* data = nullptr;
  std::uint64_t total = 0;
  int dst = 0;
  std::uint32_t comm = 0;
  Request* request = nullptr;  ///< completes when all fragments are injected
  std::uint64_t born_ns = 0;   ///< registration time (watchdog stall scan)
  std::uint32_t rts_seq = 0;   ///< the RTS packet's seq — identifies this
                               ///< transfer when the receiver NACKs the RTS
                               ///< (overload shed, DESIGN.md §5h)
  bool stall_flagged = false;  ///< watchdog escalated once (rndv lock held)
  /// Cancelled / deadline-expired / NACKed before the receiver's ack
  /// arrived. Set under the rendezvous registry lock; the kSendData drain
  /// checks it after claiming the state and discards instead of streaming
  /// fragments from a buffer the settled owner may already have freed.
  bool failed = false;
};

/// Receiver-side state of one rendezvous transfer.
struct RndvRecvState {
  Request* request = nullptr;
  std::byte* buffer = nullptr;
  std::uint64_t capacity = 0;
  std::uint64_t total = 0;                  ///< size announced by the RTS
  std::atomic<std::uint64_t> remaining{0};  ///< bytes still in flight
  Status status{};                          ///< published when remaining hits 0
  std::uint64_t born_ns = 0;   ///< registration time (watchdog stall scan)
  bool stall_flagged = false;  ///< watchdog escalated once (rndv lock held)
  /// ft: source confirmed dead mid-transfer. Set under the rendezvous
  /// registry lock; handle_rndv_data checks it there (next to the fragment
  /// dedup) and discards, so no *new* deliverer touches the buffer after
  /// the request was failed. The state stays registered (never erased by
  /// the purge) — erasing could free it under a deliverer that claimed its
  /// pointer before the death was confirmed.
  bool failed = false;

  // Fragment-seen bitmap, allocated only in reliable mode: a duplicated or
  // retransmitted RndvData fragment must not double-decrement `remaining`.
  // fetch_or makes exactly one deliverer of each fragment the winner.
  std::unique_ptr<std::atomic<std::uint64_t>[]> frag_seen;
  std::size_t frag_words = 0;

  /// Atomically mark fragment `index` seen; true when this caller is first.
  bool mark_fragment(std::uint32_t index) noexcept {
    if (frag_seen == nullptr) return true;  // unreliable fabric: no dups
    const std::size_t word = index / 64;
    if (word >= frag_words) return false;   // corrupt index past the bitmap
    const std::uint64_t bit = std::uint64_t{1} << (index % 64);
    return (frag_seen[word].fetch_or(bit, std::memory_order_acq_rel) & bit) == 0;
  }
};

/// Deferred protocol action, queued from locked contexts and executed by
/// Rank::progress() with no engine lock held.
struct ControlMsg {
  enum class Kind : std::uint8_t {
    kNone = 0,
    kSendAck,         ///< rendezvous clear-to-send
    kSendData,        ///< rendezvous data burst
    kSendPacketAck,   ///< reliability ack echoing a received packet's key
    kSendPacketNack,  ///< overload NACK echoing a shed packet's key (§5h)
  };
  Kind kind = Kind::kNone;
  int peer = 0;                     ///< rank to talk to
  std::uint32_t comm = 0;
  std::uint64_t local_cookie = 0;   ///< our state id
  std::uint64_t remote_cookie = 0;  ///< peer's state id (kSendPacketAck: imm)
  std::uint32_t seq = 0;            ///< kSendPacketAck: acked packet's seq
  std::uint16_t ack_opcode = 0;     ///< kSendPacketAck: acked packet's opcode
};

/// Observer the matching engine calls when it matches a rendezvous RTS
/// (instead of copying payload). Implemented by core::Rank.
class RendezvousHook {
 public:
  virtual ~RendezvousHook() = default;
  /// Called with the matching lock held; must only record + enqueue
  /// control work, never inject.
  virtual void on_rts_matched(Request* req, const fabric::Packet& rts) = 0;
};

}  // namespace fairmpi::p2p
