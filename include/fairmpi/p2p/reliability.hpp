// Ack/retransmit reliability protocol (sender side).
//
// With fault injection enabled the fabric may drop, duplicate, corrupt or
// reorder packets; this tracker gives every reliable packet at-least-once
// delivery (the matching/rendezvous layers' dedup makes it exactly-once):
//
//   sender                              receiver
//   ──────                              ────────
//   track(clone) BEFORE injecting  ──►  validate + verify checksum, then
//   (so a racing ack never beats        ack *every* accepted packet
//   the bookkeeping)                    (Opcode::kAck echoing the key) —
//   ack arrives: entry retired   ◄──    duplicates are re-acked, because
//   timeout: clone re-injected,         the previous ack may be the loss
//     rto doubling per retry
//     (msgrate backoff idiom) up to
//     rto_max; after max_retries the
//     entry fails typed (common::Error)
//
// The key {opcode, peer, comm, seq, imm} uniquely identifies every packet
// kind on the wire: eager/RTS by their matching seq, RndvAck by the sender
// cookie in imm, RndvData by the receiver cookie + fragment index. Acks
// themselves are never tracked — a lost ack is recovered by retransmit +
// duplicate-discard + re-ack.
//
// Lock discipline: the table lock ranks kReliability (47) — *above* the CRI
// and match locks, because track() runs on the send path under them, and
// *below* the rendezvous registries. sweep() only collects clones under the
// lock; the caller re-injects after releasing it (injection takes CRI locks,
// rank 20, which must never be acquired under this one).
#pragma once

#include <atomic>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "fairmpi/common/error.hpp"
#include "fairmpi/common/spinlock.hpp"
#include "fairmpi/debug/lockcheck.hpp"
#include "fairmpi/debug/thread_safety.hpp"
#include "fairmpi/fabric/wire.hpp"

namespace fairmpi::p2p {

/// Identity of one reliable packet in flight.
struct PacketKey {
  std::uint16_t opcode = 0;
  std::uint16_t peer = 0;  ///< destination rank
  std::uint32_t comm = 0;
  std::uint32_t seq = 0;
  std::uint64_t imm = 0;

  bool operator==(const PacketKey&) const noexcept = default;
};

struct PacketKeyHash {
  std::size_t operator()(const PacketKey& k) const noexcept {
    // splitmix64-style finalizer over the packed fields.
    std::uint64_t x = (static_cast<std::uint64_t>(k.opcode) << 48) ^
                      (static_cast<std::uint64_t>(k.peer) << 32) ^ k.comm;
    x ^= (static_cast<std::uint64_t>(k.seq) << 32) ^ k.imm ^ 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<std::size_t>(x ^ (x >> 31));
  }
};

/// Key of an outbound packet (tracked at the sender).
inline PacketKey key_of(int dst, const fabric::WireHeader& h) noexcept {
  return PacketKey{static_cast<std::uint16_t>(h.opcode),
                   static_cast<std::uint16_t>(dst), h.comm_id, h.seq, h.imm};
}

/// Key echoed by an inbound ack: the acked opcode rides in hdr.tag, the
/// peer is the ack's sender (the original destination).
inline PacketKey key_of_ack(const fabric::WireHeader& ack) noexcept {
  return PacketKey{static_cast<std::uint16_t>(ack.tag), ack.src_rank,
                   ack.comm_id, ack.seq, ack.imm};
}

class ReliabilityTracker {
 public:
  ReliabilityTracker(std::uint64_t rto_ns, std::uint64_t rto_max_ns, int max_retries);
  ReliabilityTracker(const ReliabilityTracker&) = delete;
  ReliabilityTracker& operator=(const ReliabilityTracker&) = delete;

  /// Register a packet about to be injected; clones header + payload.
  /// MUST happen before the injection so an immediate ack finds the entry.
  void track(int dst, const fabric::Packet& pkt, std::uint64_t now_ns);

  /// Retire the entry an ack names. False when unknown (already acked —
  /// the ack of a duplicate).
  bool ack(const PacketKey& key);

  /// Remove a tracked entry whose injection ultimately failed (EAGAIN
  /// budget exhausted before the packet ever hit the wire).
  void untrack(const PacketKey& key);

  /// The receiver refused the packet at admission (Opcode::kNack,
  /// DESIGN.md §5h): retire the entry like an ack, but report it so the
  /// caller fails the op typed kReceiverOverloaded. False when the entry
  /// is unknown (a re-NACK of an already-failed shed, or an ack raced in).
  /// `out` (may be null) receives the failure record.
  struct Failure;
  bool nack(const PacketKey& key, Failure* out);

  struct Resend {
    int dst = 0;
    fabric::Packet pkt;
  };
  struct Failure {
    PacketKey key;
    int retries = 0;
    /// Why the entry failed: kRetryExhausted for ordinary timeout, or
    /// kPeerFailed when the destination was confirmed dead (fail_peer).
    common::ErrorCode code = common::ErrorCode::kRetryExhausted;
  };

  /// Collect expired entries: clones to re-inject into `resends` and
  /// retry-exhausted entries — removed from the table — into `failures`.
  /// Sweeping only *claims* an entry (its deadline moves one rto out); the
  /// retry budget and the exponential backoff are charged by
  /// confirm_retransmit once the clone actually made it onto the wire.
  /// A retransmit that dies on a full ring costs nothing — under
  /// backpressure storms the budget must measure genuine losses, not the
  /// sender's own congestion, or entries exhaust and messages vanish.
  /// Caller injects with no tracker lock held.
  void sweep(std::uint64_t now_ns, std::vector<Resend>& resends,
             std::vector<Failure>& failures);

  /// Record that a swept clone was injected: charges one retry and doubles
  /// the rto (bounded by rto_max). No-op when the entry was acked between
  /// the sweep and the injection.
  void confirm_retransmit(const PacketKey& key, std::uint64_t now_ns);

  /// Peer-death propagation (ft): mark `peer` permanently failed and move
  /// every tracked entry destined to it — removed from the table — into
  /// `failures` with code kPeerFailed, instead of letting each burn its
  /// retry budget into a dead link. Entries tracked *after* this call (a
  /// send racing the confirmation) are caught by the next sweep, which
  /// fails anything destined to a failed peer regardless of deadline.
  void fail_peer(int peer, std::vector<Failure>& failures);

  /// True once fail_peer(peer) has run (fail-fast gate for new tracks).
  bool peer_failed(int peer) const noexcept;

  /// Earliest deadline across tracked entries (relaxed; ~0 when empty).
  /// Cheap progress-path gate: no lock, no sweep until this passes.
  std::uint64_t next_deadline() const noexcept {
    return next_deadline_.load(std::memory_order_relaxed);
  }

  /// Tracked-but-unacked entry count (relaxed). The send window gate: a
  /// sender blocks (progressing) while this is at Config::reliability_window
  /// so retransmit bursts stay bounded and acks self-clock the flood.
  std::size_t in_flight() const noexcept {
    return in_flight_.load(std::memory_order_relaxed);
  }

 private:
  struct Entry {
    int dst = 0;
    int retries = 0;
    std::uint64_t deadline_ns = 0;
    std::uint64_t rto_ns = 0;
    fabric::Packet pkt;  ///< retransmit master copy
  };

  const std::uint64_t rto_ns_;
  const std::uint64_t rto_max_ns_;
  const int max_retries_;

  mutable RankedLock<Spinlock> lock_{debug::LockRank::kReliability,
                                     "p2p.reliability"};
  std::unordered_map<PacketKey, Entry, PacketKeyHash> inflight_
      FAIRMPI_GUARDED_BY(lock_);
  /// Peers confirmed dead (ft). Grown on fail_peer only; sweeps and tracks
  /// consult it so no entry to a dead peer ever retransmits.
  std::vector<bool> failed_peers_ FAIRMPI_GUARDED_BY(lock_);
  std::atomic<std::uint64_t> next_deadline_{~std::uint64_t{0}};
  std::atomic<std::size_t> in_flight_{0};
};

}  // namespace fairmpi::p2p
