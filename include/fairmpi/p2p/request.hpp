// Two-sided communication requests.
//
// A Request is the caller-owned handle for a nonblocking operation, kept
// alive until wait()/test() observes completion (standard MPI semantics).
// Completion may be signalled by any thread running the progress engine, so
// the done flag is an acquire/release atomic and all result fields (status,
// truncation) are written before the release store.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "fairmpi/common/error.hpp"

namespace fairmpi::p2p {

/// Wildcards, mirroring MPI_ANY_TAG / MPI_ANY_SOURCE.
inline constexpr int kAnyTag = -1;
inline constexpr int kAnySource = -1;

/// Result of a completed receive.
struct Status {
  int source = kAnySource;    ///< actual sending rank
  int tag = kAnyTag;          ///< actual message tag
  std::size_t size = 0;       ///< payload size as sent
  bool truncated = false;     ///< payload exceeded the receive buffer
};

class Request;

/// Engine-side owner a cancel must route through while the request sits on
/// internal queues: the matching engine for posted receives, the rank for
/// registered rendezvous transfers. cancel_request takes the owning lock,
/// checks the request is still queued, unlinks it and settles kCancelled —
/// so a cancel can never race a matcher into losing a consumed message.
/// Returns true when this call cancelled the request.
class CancelScope {
 public:
  virtual ~CancelScope() = default;
  virtual bool cancel_request(Request* req) = 0;
};

class Request {
 public:
  enum class Kind : std::uint8_t { kNone, kSend, kRecv };

  Request() = default;
  Request(const Request&) = delete;
  Request& operator=(const Request&) = delete;

  bool done() const noexcept { return done_.load(std::memory_order_acquire); }

  /// Valid once done() is true (for receives).
  const Status& status() const noexcept { return status_; }

  Kind kind() const noexcept { return kind_; }

  /// Best-effort cancellation (DESIGN.md §5h). Routed through the engine
  /// owner while the request is queued (posted receive, rendezvous
  /// transfer) so cancel-vs-match races settle exactly once; otherwise the
  /// request is failed kCancelled directly. Returns true when this call
  /// cancelled it; false when the operation already completed (or another
  /// settle won — the MPI caveat applies: a cancelled *send* may still
  /// have been delivered). wait() must still be called as usual.
  bool cancel() {
    if (done()) return false;
    CancelScope* scope = cancel_scope_.load(std::memory_order_acquire);
    if (scope != nullptr) return scope->cancel_request(this);
    return fail(common::ErrorCode::kCancelled);
  }

  /// Absolute per-op deadline in engine time (0 = none); settled
  /// kDeadlineExceeded by the progress-driven expiry sweep once passed.
  std::uint64_t deadline() const noexcept {
    return deadline_ns_.load(std::memory_order_relaxed);
  }

  // --- engine-internal below (set up by Rank::isend/irecv, completed by the
  //     matching engine / progress) ---

  void init_send(std::uint64_t deadline_ns = 0) noexcept {
    kind_ = Kind::kSend;
    error_ = common::ErrorCode::kOk;
    deadline_ns_.store(deadline_ns, std::memory_order_relaxed);
    cancel_scope_.store(nullptr, std::memory_order_relaxed);
    settled_.store(false, std::memory_order_relaxed);
    done_.store(false, std::memory_order_relaxed);
  }

  void init_recv(void* buffer, std::size_t capacity, int source, int tag,
                 std::uint64_t deadline_ns = 0) noexcept {
    kind_ = Kind::kRecv;
    buffer_ = buffer;
    capacity_ = capacity;
    source_ = source;
    tag_ = tag;
    error_ = common::ErrorCode::kOk;
    deadline_ns_.store(deadline_ns, std::memory_order_relaxed);
    cancel_scope_.store(nullptr, std::memory_order_relaxed);
    settled_.store(false, std::memory_order_relaxed);
    done_.store(false, std::memory_order_relaxed);
  }

  /// Install the engine owner cancels route through (match engine on post,
  /// rank on rendezvous registration). Release: the owner must be fully
  /// set up before a concurrent cancel() can reach it.
  void set_cancel_scope(CancelScope* scope) noexcept {
    cancel_scope_.store(scope, std::memory_order_release);
  }

  void* buffer() const noexcept { return buffer_; }
  std::size_t capacity() const noexcept { return capacity_; }
  int source_filter() const noexcept { return source_; }
  int tag_filter() const noexcept { return tag_; }

  std::uint64_t post_stamp = 0;  ///< matching order among posted receives

  // Intrusive hooks for the matching engine's posted queues (see
  // common/intrusive_list.hpp). A posted receive sits on exactly one list —
  // its peer's queue or the any-source queue — so one hook pair suffices.
  // Owned (read and written) exclusively under the match lock.
  Request* mq_prev = nullptr;
  Request* mq_next = nullptr;

  /// Publish completion. Must be the last write touching this request.
  /// Returns true when this call won the one-shot settle race (see
  /// try_settle): losers must not count the completion in SPCs — the
  /// classic double-settle is a reliability-sweep failure racing a late
  /// duplicate ack's delivery.
  bool complete(const Status& status) noexcept {
    if (!try_settle()) return false;
    status_ = status;
    done_.store(true, std::memory_order_release);
    return true;
  }

  bool complete() noexcept {
    if (!try_settle()) return false;
    done_.store(true, std::memory_order_release);
    return true;
  }

  /// Publish completion *with* a typed error (graceful degradation: the
  /// operation could not be performed — e.g. the EAGAIN retry budget ran
  /// out). done() becomes true so wait() returns; callers inspect error().
  /// One-shot like complete(): a request already settled (either way)
  /// ignores the fail and reports false.
  bool fail(common::ErrorCode code) noexcept {
    if (!try_settle()) return false;
    error_ = code;
    done_.store(true, std::memory_order_release);
    return true;
  }

  /// kOk unless the request completed with fail(). Valid once done().
  common::ErrorCode error() const noexcept { return error_; }
  bool failed() const noexcept { return error_ != common::ErrorCode::kOk; }

 private:
  /// CAS state guard making completion terminal: exactly one of
  /// complete()/fail() transitions the request per init_* cycle. acq_rel so
  /// the winner's result writes are ordered before any loser's observation.
  bool try_settle() noexcept {
    bool expected = false;
    return settled_.compare_exchange_strong(expected, true,
                                            std::memory_order_acq_rel,
                                            std::memory_order_acquire);
  }

  std::atomic<bool> done_{false};
  std::atomic<bool> settled_{false};
  std::atomic<std::uint64_t> deadline_ns_{0};
  std::atomic<CancelScope*> cancel_scope_{nullptr};
  Kind kind_ = Kind::kNone;
  void* buffer_ = nullptr;
  std::size_t capacity_ = 0;
  int source_ = kAnySource;
  int tag_ = kAnyTag;
  Status status_{};
  common::ErrorCode error_ = common::ErrorCode::kOk;
};

}  // namespace fairmpi::p2p
