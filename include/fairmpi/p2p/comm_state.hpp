// Per-communicator engine state.
//
// Holds the two things the paper's two-sided pipeline needs per
// communicator: the matching engine (receiver side) and the per-destination
// send sequence counters (sender side). As in OB1, the sequence number is
// ticketed with a relaxed atomic *before* the network resources are
// acquired — the race between ticketing and injection across threads is the
// source of out-of-sequence arrivals (DESIGN.md §5).
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <vector>

#include "fairmpi/common/align.hpp"
#include "fairmpi/match/match_engine.hpp"
#include "fairmpi/spc/spc.hpp"

namespace fairmpi::p2p {

using CommId = std::uint32_t;

/// Id of the predefined world communicator.
inline constexpr CommId kWorldComm = 0;

/// First tag of the engine-reserved block. User traffic posted through the
/// Communicator API must stay strictly below; collective tag lanes
/// (coll::kCollTagBase == this) and the dissemination barrier (1 << 30)
/// both live above it, and Communicator::isend/irecv refuse user tags in
/// the block with a typed kReservedTag failure (silent collision with
/// collective traffic was the alternative).
inline constexpr int kReservedTagBase = 1 << 29;

/// Concurrent collective tag lanes per communicator (one bitmap word).
inline constexpr int kMaxCollLanes = 64;

class CommState {
 public:
  /// `members`: the communicator's group as *universe* (global) rank ids in
  /// local-rank order; empty = span every rank (a dup of world, the only
  /// shape PRs 1–7 had). The matching engine and the sequence counters stay
  /// sized/indexed by global rank — packets carry global ids on the wire —
  /// and the group is consulted only at the Communicator boundary
  /// (rank/size and dst/src translation). This is what Universe::shrink
  /// builds the survivor communicator from (DESIGN.md §5g).
  CommState(CommId id, int num_ranks, bool allow_overtaking, spc::CounterSet& counters,
            bool reliable = false, std::vector<int> members = {})
      : id_(id), match_(num_ranks, allow_overtaking, counters, reliable),
        send_seq_(static_cast<std::size_t>(num_ranks)), members_(std::move(members)) {}

  CommState(const CommState&) = delete;
  CommState& operator=(const CommState&) = delete;

  CommId id() const noexcept { return id_; }
  match::MatchEngine& match() noexcept { return match_; }

  /// Ticket the next sequence number toward `dst` (Alg. 1 precursor).
  /// `dst` is a global rank.
  std::uint32_t next_seq(int dst) noexcept {
    return send_seq_[static_cast<std::size_t>(dst)]->fetch_add(1, std::memory_order_relaxed);
  }

  // --- group (empty = all ranks of the universe) ---

  bool has_group() const noexcept { return !members_.empty(); }
  int group_size() const noexcept { return static_cast<int>(members_.size()); }
  /// Global rank of group member `local`.
  int to_global(int local) const noexcept {
    return members_[static_cast<std::size_t>(local)];
  }
  /// Local rank of global rank `global`; -1 when not a member. Linear scan:
  /// groups are small and translation sits outside the packet hot path.
  int to_local(int global) const noexcept {
    for (std::size_t i = 0; i < members_.size(); ++i) {
      if (members_[i] == global) return static_cast<int>(i);
    }
    return -1;
  }

  // --- collective tag lanes (DESIGN.md §5i) ---

  /// Claim the lowest free collective lane; -1 when all kMaxCollLanes are
  /// busy. Lowest-free-bit allocation is what makes lane agreement across
  /// ranks deterministic: when every rank acquires handles in the same
  /// order, each acquisition yields the same lane number everywhere.
  int try_acquire_coll_lane() noexcept {
    std::uint64_t cur = coll_lanes_.load(std::memory_order_relaxed);
    while (~cur != 0) {
      const int lane = std::countr_one(cur);
      if (coll_lanes_.compare_exchange_weak(cur, cur | (std::uint64_t{1} << lane),
                                            std::memory_order_acquire,
                                            std::memory_order_relaxed)) {
        return lane;
      }
    }
    return -1;
  }

  /// Release a lane claimed by try_acquire_coll_lane.
  void release_coll_lane(int lane) noexcept {
    coll_lanes_.fetch_and(~(std::uint64_t{1} << lane), std::memory_order_release);
  }

  // --- ft revocation (ULFM MPI_Comm_revoke analog) ---

  /// Once revoked, every subsequent operation on this communicator fails
  /// fast with kCommRevoked. One-way; release pairs with revoked()'s
  /// acquire so op entry checks see the flag before fail_all_posted's
  /// purge could race them (the match lock closes the posting race).
  void revoke() noexcept { revoked_.store(true, std::memory_order_release); }
  bool revoked() const noexcept { return revoked_.load(std::memory_order_acquire); }

 private:
  const CommId id_;
  match::MatchEngine match_;
  /// One padded counter per destination: the counters are deliberately hot
  /// (every sending thread increments them) but must not false-share.
  std::vector<Padded<std::atomic<std::uint32_t>>> send_seq_;
  std::vector<int> members_;  ///< global ranks in local order; immutable
  std::atomic<bool> revoked_{false};
  /// Collective lane bitmap (bit set = lane busy). Lock-free: acquire is a
  /// lowest-clear-bit CAS, release a fetch_and — no rank in the lock order.
  std::atomic<std::uint64_t> coll_lanes_{0};
};

}  // namespace fairmpi::p2p
