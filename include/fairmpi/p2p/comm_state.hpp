// Per-communicator engine state.
//
// Holds the two things the paper's two-sided pipeline needs per
// communicator: the matching engine (receiver side) and the per-destination
// send sequence counters (sender side). As in OB1, the sequence number is
// ticketed with a relaxed atomic *before* the network resources are
// acquired — the race between ticketing and injection across threads is the
// source of out-of-sequence arrivals (DESIGN.md §5).
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "fairmpi/common/align.hpp"
#include "fairmpi/match/match_engine.hpp"
#include "fairmpi/spc/spc.hpp"

namespace fairmpi::p2p {

using CommId = std::uint32_t;

/// Id of the predefined world communicator.
inline constexpr CommId kWorldComm = 0;

class CommState {
 public:
  CommState(CommId id, int num_ranks, bool allow_overtaking, spc::CounterSet& counters,
            bool reliable = false)
      : id_(id), match_(num_ranks, allow_overtaking, counters, reliable),
        send_seq_(static_cast<std::size_t>(num_ranks)) {}

  CommState(const CommState&) = delete;
  CommState& operator=(const CommState&) = delete;

  CommId id() const noexcept { return id_; }
  match::MatchEngine& match() noexcept { return match_; }

  /// Ticket the next sequence number toward `dst` (Alg. 1 precursor).
  std::uint32_t next_seq(int dst) noexcept {
    return send_seq_[static_cast<std::size_t>(dst)]->fetch_add(1, std::memory_order_relaxed);
  }

 private:
  const CommId id_;
  match::MatchEngine match_;
  /// One padded counter per destination: the counters are deliberately hot
  /// (every sending thread increments them) but must not false-share.
  std::vector<Padded<std::atomic<std::uint32_t>>> send_seq_;
};

}  // namespace fairmpi::p2p
