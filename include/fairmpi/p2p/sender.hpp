// The eager send path (Algorithm 1, SEND).
#pragma once

#include <cstddef>
#include <cstdint>

#include "fairmpi/cri/cri.hpp"
#include "fairmpi/overload/overload.hpp"
#include "fairmpi/p2p/comm_state.hpp"
#include "fairmpi/p2p/reliability.hpp"
#include "fairmpi/p2p/request.hpp"
#include "fairmpi/progress/progress.hpp"
#include "fairmpi/spc/spc.hpp"

namespace fairmpi::p2p {

/// Reliability/backpressure policy for one send. The default — no tracker,
/// unbounded retry — is the paper's pristine-fabric behaviour.
struct SendPolicy {
  /// Non-null: register the packet for ack/retransmit before injecting.
  ReliabilityTracker* tracker = nullptr;
  /// Max EAGAIN retries before the send fails typed (kSendBudgetExhausted);
  /// 0 = retry forever. Bounding this turns a peer that never drains its
  /// ring from a livelock into a reported error.
  std::uint64_t retry_limit = 0;
  /// Max tracked-unacked packets before a send blocks (progressing) until
  /// acks open the window; 0 = unbounded. Self-clocks a flood: without it
  /// thousands of unacked packets turn every sweep into a retransmit storm.
  std::size_t window = 0;
  /// Full-rank progress hook for the wait loops. The engine alone cannot
  /// transmit deferred acks (they leave via the rank's control drain), so
  /// blocking on `engine.progress()` while our peer blocks on our acks
  /// would deadlock a bidirectional flood.
  std::size_t (*progress)(void* user) = nullptr;
  void* progress_user = nullptr;
  /// ft hook: non-null when the failure detector runs. Checked at entry and
  /// inside both wait loops so a send blocked on (or headed for) a peer that
  /// is confirmed dead mid-wait escapes with kPeerFailed instead of burning
  /// its whole EAGAIN/backpressure budget into a permanently-down link.
  bool (*peer_failed)(void* user, int dst) = nullptr;
  void* peer_failed_user = nullptr;
  /// Overload admission (DESIGN.md §5h): non-null consults the payload-pool
  /// and reliability-tracker caps *before* the sequence number is ticketed,
  /// so a refused send never leaves a hole in the peer's ordered stream.
  /// kQueue caps wait (progressing) like the window gate; kShed caps fail
  /// the op typed kLocalOverloaded.
  overload::Governor* governor = nullptr;
  /// Absolute per-op deadline on the engine clock (now_ns; 0 = none): every
  /// wait loop abandons the send typed kDeadlineExceeded once passed.
  std::uint64_t deadline_ns = 0;
};

/// Execute one eager send: ticket the sequence number, acquire a CRI per
/// the pool's policy, inject through the per-peer endpoint; on backpressure
/// (full destination ring) release the instance, progress own resources,
/// spin-then-yield and retry up to the policy's budget. Completes `req`
/// before returning — normally (buffered-send semantics) or via
/// Request::fail when the retry budget runs out. Returns the outcome
/// (kOk or the failure code): once `req` is completed the waiting owner
/// may destroy it, so callers must consult the return value rather than
/// read `req` back.
///
/// Cancellation: another thread may Request::cancel() `req` while a wait
/// loop is blocked; the loop observes the settle and abandons the send
/// (untracking it). The caller must keep `req` alive until this function
/// returns — the handle hasn't been handed back yet, so that is the
/// natural ownership anyway.
common::ErrorCode eager_send(CommState& comm, cri::CriPool& pool,
                             progress::ProgressEngine& engine,
                             spc::CounterSet& counters, int src_rank, int dst, int tag,
                             const void* buf, std::size_t n, Request& req,
                             const SendPolicy& policy = {});

}  // namespace fairmpi::p2p
