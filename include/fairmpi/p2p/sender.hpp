// The eager send path (Algorithm 1, SEND).
#pragma once

#include <cstddef>

#include "fairmpi/cri/cri.hpp"
#include "fairmpi/p2p/comm_state.hpp"
#include "fairmpi/p2p/request.hpp"
#include "fairmpi/progress/progress.hpp"
#include "fairmpi/spc/spc.hpp"

namespace fairmpi::p2p {

/// Execute one eager send: ticket the sequence number, acquire a CRI per
/// the pool's policy, inject through the per-peer endpoint; on backpressure
/// (full destination ring) release the instance, progress own resources and
/// retry. Completes `req` before returning (buffered-send semantics).
void eager_send(CommState& comm, cri::CriPool& pool, progress::ProgressEngine& engine,
                spc::CounterSet& counters, int src_rank, int dst, int tag,
                const void* buf, std::size_t n, Request& req);

}  // namespace fairmpi::p2p
