// Discrete-event model of the RMA-MT benchmark (paper refs [7][14]) —
// Figures 6 (Haswell) and 7 (KNL).
//
// N threads on the initiating node each issue `ops_per_round` MPI_Put
// descriptors of one message size and then MPI_Win_flush. Puts are pure
// initiator work (no target involvement, no matching): select a CRI
// (Alg. 1), inject under the instance lock, pace on the shared NIC wire;
// the completion becomes visible on the initiating instance's CQ when the
// wire has carried the message. Flush polls the thread's own instance
// first, then sweeps — independent of the two-sided progress design, which
// is why serial vs concurrent progress barely differ here (paper §IV-F).
#pragma once

#include <cstdint>

#include "fairmpi/cri/cri.hpp"
#include "fairmpi/model/costs.hpp"
#include "fairmpi/progress/progress.hpp"

namespace fairmpi::model {

struct RmaModelConfig {
  CostModel costs = trinitite_haswell();
  int threads = 1;
  int instances = 32;  ///< ugni creates one per available core by default
  cri::Assignment assignment = cri::Assignment::kDedicated;
  progress::ProgressMode progress = progress::ProgressMode::kSerial;
  std::uint64_t message_size = 1;
  int ops_per_round = 1000;  ///< puts per thread between flushes (RMA-MT)
  sim::Time warmup_ns = 500'000;
  sim::Time measure_ns = 20'000'000;
  std::uint64_t seed = 1;
};

struct RmaModelResult {
  double msg_rate = 0.0;      ///< puts per (virtual) second, all threads
  std::uint64_t ops = 0;      ///< puts injected during measurement
  double peak_rate = 0.0;     ///< wire-limited theoretical peak for the size
  std::uint64_t events = 0;
};

/// Deterministic: identical config + seed => identical result.
RmaModelResult run_rma_model(const RmaModelConfig& cfg);

}  // namespace fairmpi::model
