// Calibrated cost model of the paper's testbeds (Table I).
//
// Every constant is a virtual-nanosecond charge for one step of the
// engine's algorithms; the model actors in msgrate.cpp / rmamt_model.cpp
// execute the paper's algorithms (Alg. 1 & 2, OB1 matching) and co_await
// these costs. Calibration targets the paper's *absolute anchors*
// (single-pair message rate ≈ 0.35 M msg/s on Alembert, single-thread RMA
// put rate ≈ 1 M ops/s on Trinitite Haswell, wire peaks of a 100 Gb/s
// link) and its *relative shapes*; see EXPERIMENTS.md for the
// paper-vs-model comparison of every figure.
#pragma once

#include <cstdint>

#include "fairmpi/sim/sim.hpp"

namespace fairmpi::model {

using sim::Time;

struct CostModel {
  const char* name = "unnamed";

  // --- generic CPU / synchronization ---
  Time atomic_op = 20;        ///< relaxed fetch_add on a shared line
  Time tls_lookup = 6;        ///< thread-local instance-id lookup
  Time lock_uncontended = 25; ///< acquire+release of a free lock
  /// Contended-handoff penalties (cache-line transfer + spinner storm),
  /// charged to the incoming owner: base + per_waiter * spinners.
  Time lock_handoff_base = 150;
  Time lock_handoff_per_waiter = 180;
  double jitter_frac = 0.25;  ///< multiplicative cost jitter (OS/cache noise)

  // --- two-sided sender path ---
  Time send_path = 900;       ///< PML bookkeeping outside the instance lock
  Time send_inject = 1450;    ///< envelope pack + doorbell, instance lock held
  /// Serialized per-message section shared by all threads of one process
  /// (allocator, request pool, SPC/refcount atomics). This is the paper's
  /// "not yet identified bottleneck" that keeps the best threaded
  /// configuration an order of magnitude below process mode (Fig. 5).
  Time process_shared = 190;

  // --- receiver / progress ---
  Time progress_gate = 60;    ///< entering the engine + gate attempt
  Time poll_empty = 250;      ///< polling an instance with nothing pending
  Time extract_msg = 900;     ///< taking one envelope off a ring/CQ
  int progress_batch = 64;    ///< max envelopes per instance visit

  // --- matching (per envelope, match lock held) ---
  Time match_base = 260;              ///< seq validation + in-order bookkeeping
  Time match_search_per_entry = 14;   ///< posted-queue scan, per entry
  Time match_any_tag = 120;           ///< wildcard-tag match (no queue search)
  Time oos_insert = 500;              ///< buffer an out-of-sequence envelope
  Time oos_drain = 220;               ///< re-match one buffered envelope
  Time recv_post = 310;               ///< post one receive
  /// Cache-takeover penalty when a different thread enters matching
  /// (charged inside the timed critical section; separate from the CRI
  /// locks' handoff because matching state is a wider working set touched
  /// through one lock).
  Time match_handoff_base = 150;
  Time match_handoff_per_waiter = 90;

  // --- wait loop ---
  Time wait_spin = 120;       ///< one wait iteration that found nothing

  // --- one-sided ---
  Time rma_op_cpu = 950;      ///< initiator CPU per put/get descriptor
  double rma_byte_ns = 0.012; ///< per-byte initiator cost (~80 GB/s local)
  Time rma_flush_poll = 140;  ///< polling one CQ during flush
  Time rma_migration = 300;   ///< instance-affinity miss (RR rotation)

  // --- wire (per NIC, shared by every thread/process on the node) ---
  double wire_msg_gap_ns = 34.0;   ///< min per-message gap (~29 M msg/s)
  double wire_byte_ns = 0.08;      ///< serialization at 100 Gb/s = 0.08 ns/B

  /// Wire occupancy of one message of `bytes` payload.
  double wire_service_ns(std::uint64_t bytes) const {
    const double serial = static_cast<double>(bytes) * wire_byte_ns;
    return serial > wire_msg_gap_ns ? serial : wire_msg_gap_ns;
  }

  /// Theoretical peak message rate for a payload size (the black horizontal
  /// line in the paper's Figures 6 and 7).
  double wire_peak_rate(std::uint64_t bytes) const { return 1e9 / wire_service_ns(bytes); }
};

/// Alembert (Table I): dual 10-core Haswell, InfiniBand EDR. Used for the
/// two-sided studies (Figures 3-5, Table II).
CostModel alembert();

/// Trinitite Haswell partition: dual 16-core Haswell, Cray Aries. Used for
/// the RMA-MT study (Figure 6).
CostModel trinitite_haswell();

/// Trinitite KNL partition: Knights Landing, Cray Aries. Slow serial cores
/// (roughly 3x the per-op CPU cost), many more hardware contexts (Figure 7).
CostModel trinitite_knl();

}  // namespace fairmpi::model
