// Analytic latency model of the §5i collective algorithms.
//
// Closed-form LogGP-style estimates (no discrete-event simulation): each
// algorithm's round structure is walked symbolically and charged per-hop
// overhead + per-byte bandwidth from the CostModel, plus a serialization
// term for threads contending on one communicator's matching lock. The
// point is the *shape* the OSU-MT bench compares against — concurrent
// collectives on per-thread communicators scale with threads, serialized
// collectives on one communicator do not — and determinism: identical
// config => identical nanoseconds, so BENCH_osu_coll_mt.json baselines
// never jitter on the model series.
#pragma once

#include <cstddef>
#include <cstdint>

#include "fairmpi/model/costs.hpp"

namespace fairmpi::model {

/// Which collective algorithm to price.
enum class CollAlgo {
  kBinomialBcast,    ///< log2(n) forwarding rounds
  kPipelinedBcast,   ///< segmented binomial (latency ≈ segs + log2(n) - 1 hops)
  kBinomialReduce,   ///< log2(n) combine rounds toward the root
  kReduceBcast,      ///< small allreduce: reduce to 0 + broadcast
  kRsagAllreduce,    ///< ring reduce-scatter + allgather, 2(n-1) steps
};

struct CollModelConfig {
  CostModel costs = alembert();
  CollAlgo algo = CollAlgo::kBinomialBcast;
  int ranks = 8;
  std::uint64_t payload_bytes = 8;
  std::size_t segment_bytes = 32 * 1024;  ///< pipelined bcast segment size
  /// Threads issuing collectives at once. comm_per_thread == true models
  /// the tag-lane design (each thread on its own communicator: matching
  /// contention only within one tree); false serializes all threads on one
  /// communicator's matching lock — the baseline the bench's
  /// Serialized1Comm series measures.
  int threads = 1;
  bool comm_per_thread = true;
};

/// Nanoseconds for one collective to complete across all participants
/// under `threads` concurrent issuers. Deterministic.
double coll_latency_ns(const CollModelConfig& cfg);

}  // namespace fairmpi::model
