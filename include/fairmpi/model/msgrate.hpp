// Discrete-event model of Multirate-pairwise (paper ref [6]) over the
// fairmpi engine designs — the workhorse behind Figures 3, 4, 5 and
// Table II.
//
// Two simulated nodes: every pair contributes one sender entity on node 0
// and one receiver entity on node 1 (paper Fig. 2). Entities map to threads
// of one MPI process per node (thread mode), to single-threaded processes
// (process mode), or to threads serialized by one big lock (the
// global-lock baseline standing in for stock MPICH/Intel MPI threading —
// DESIGN.md §4). The actors execute the actual algorithms — sequence
// ticketing before instance acquisition, Alg. 1 instance assignment,
// serial-gate or Alg. 2 progress, OB1 per-communicator matching with
// out-of-sequence buffering — charging the CostModel for each step.
#pragma once

#include <cstdint>

#include "fairmpi/cri/cri.hpp"
#include "fairmpi/model/costs.hpp"
#include "fairmpi/progress/progress.hpp"

namespace fairmpi::model {

struct MsgRateConfig {
  CostModel costs = alembert();
  int pairs = 1;            ///< communication entities per node
  int instances = 1;        ///< CRIs per MPI process (thread mode)
  cri::Assignment assignment = cri::Assignment::kDedicated;
  progress::ProgressMode progress = progress::ProgressMode::kSerial;
  bool comm_per_pair = false;  ///< dedicated communicator per pair (Fig. 3c)
  bool overtaking = false;     ///< mpi_assert_allow_overtaking (Fig. 4)
  bool any_tag = false;        ///< receives posted with MPI_ANY_TAG (Fig. 4)
  bool process_mode = false;   ///< single-threaded process per entity (Fig. 5)
  bool global_lock = false;    ///< big-lock threading baseline (Fig. 5)
  /// Software-offload baseline (paper ref [20], DESIGN.md §6): one
  /// dedicated communication actor per node owns the engine; application
  /// entities only enqueue commands. No lock storms, but single-driver
  /// throughput.
  bool offload = false;
  std::uint64_t payload_bytes = 0;  ///< 0-byte messages in all paper runs
  int window = 128;            ///< outstanding receives per pair
  std::size_t ring_entries = 4096;
  /// Long enough for the RX-ring backlog to reach steady state even at the
  /// lowest rates the sweep produces.
  sim::Time warmup_ns = 8'000'000;
  sim::Time measure_ns = 12'000'000;
  std::uint64_t seed = 1;
};

struct MsgRateResult {
  double msg_rate = 0.0;             ///< delivered messages per (virtual) second
  std::uint64_t delivered = 0;       ///< during the measurement window
  std::uint64_t sent = 0;            ///< injected during the measurement window
  std::uint64_t out_of_sequence = 0; ///< OOS arrivals during measurement
  std::uint64_t incoming = 0;        ///< envelopes processed by matching
  double oos_fraction = 0.0;         ///< out_of_sequence / incoming (paper's %)
  sim::Time match_time_ns = 0;       ///< total time in matching (incl. lock wait)
  std::uint64_t events = 0;          ///< simulator events processed
};

/// Run one configuration to completion (warmup + measurement) and report.
/// Deterministic: identical config + seed => identical result.
MsgRateResult run_msgrate(const MsgRateConfig& cfg);

}  // namespace fairmpi::model
