// Overload control & graceful degradation (DESIGN.md §5h).
//
// The engine survives a lossy fabric (reliability layer) and dead ranks
// (ft layer); this layer makes it survive *its own users*: an incast flood
// against a slow consumer must not grow the unexpected queues or the
// payload pool without bound, and a pending operation must be cancellable
// or deadline-bounded instead of waiting forever (ROADMAP item 4, the
// million-client service scenario).
//
// Three capped resources, each with a policy:
//
//   resource                 cap cvar            policies
//   ---------------------    -----------------   ------------------------
//   per-peer unexpected      unexpected_cap      kShed (NACK) / kQueue
//   payload-pool bytes       payload_pool_cap    kQueue (wait) / kShed
//   reliability in-flight    tracker_cap         kQueue (wait) / kShed
//
//   * kShed — refuse at admission. Receiver-side sheds answer the sender
//     with Opcode::kNack (echoing the packet key like an ack), so the
//     sender's reliability tracker fails the op typed kReceiverOverloaded
//     instead of retransmitting into a full queue. Sender-side sheds
//     (pool/tracker caps at injection) fail typed kLocalOverloaded.
//   * kQueue — backpressure the producer through the existing
//     EAGAIN/backoff machinery: the receiver trickles its RX drains
//     (1 admitted visit in kRxTrickle) until the hot peer falls back under
//     its low watermark, so the sender's ring fills and its injection loop
//     backs off; sender-side caps spin (progressing) until pressure drains.
//
// The Governor is the per-rank control block: the degradation ladder
// kHealthy -> kPressured -> kOverloaded (watermark crossings, with
// hysteresis on the way down), the paused-peer latch count, and the RX
// trickle gate. It is deliberately atomics-only — no lock, no rank in the
// §5e hierarchy — because every consultation sits on a hot path where the
// uncapped configuration must cost exactly one relaxed load.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace fairmpi::overload {

/// What to do when a capped resource is at its limit.
enum class Policy : std::uint8_t {
  kQueue = 0,  ///< backpressure the producer (EAGAIN/backoff path)
  kShed,       ///< refuse at admission (NACK / typed local error)
};

const char* policy_name(Policy p) noexcept;

/// Degradation ladder, exported per rank through dump_observability().
enum class Level : std::uint8_t {
  kHealthy = 0,
  kPressured,   ///< some capped resource crossed the high watermark
  kOverloaded,  ///< a resource is at cap (shedding or pausing producers)
};

const char* level_name(Level l) noexcept;

/// Resolved caps + policies (from Config; all caps 0 = layer disabled).
struct Limits {
  std::size_t unexpected_cap = 0;          ///< per-peer unexpected depth
  Policy unexpected_policy = Policy::kShed;
  std::uint64_t pool_cap_bytes = 0;        ///< process-global payload pool
  Policy pool_policy = Policy::kQueue;
  std::size_t tracker_cap = 0;             ///< in-flight reliability entries
  Policy tracker_policy = Policy::kQueue;
  int high_pct = 75;  ///< kHealthy -> kPressured watermark (percent of cap)
  int low_pct = 50;   ///< hysteresis: re-admit / step down below this
};

class Governor {
 public:
  /// Progress visits admitted while paused: 1 in kRxTrickle. A full RX
  /// pause would also starve inbound acks and heartbeats (ft false
  /// positives); the trickle keeps the control plane alive while still
  /// filling the producer's ring. The admitted fraction bounds unexpected
  /// overshoot past the cap by (ring depth / kRxTrickle) per sweep.
  static constexpr std::uint64_t kRxTrickle = 8;

  explicit Governor(const Limits& lim) noexcept
      : lim_(lim),
        enabled_(lim.unexpected_cap != 0 || lim.pool_cap_bytes != 0 ||
                 lim.tracker_cap != 0) {}

  Governor(const Governor&) = delete;
  Governor& operator=(const Governor&) = delete;

  const Limits& limits() const noexcept { return lim_; }

  /// Any cap configured? The uncapped fast path folds to this one branch.
  bool enabled() const noexcept { return enabled_; }

  Level level() const noexcept {
    return static_cast<Level>(level_.load(std::memory_order_relaxed));
  }

  // --- kQueue backpressure: peers latched over their unexpected cap ---

  /// A peer crossed its unexpected cap under kQueue (match lock held by
  /// the caller; the latch itself is just a count).
  void pause_peer() noexcept {
    paused_peers_.fetch_add(1, std::memory_order_relaxed);
  }
  /// The peer drained back under the low watermark.
  void resume_peer() noexcept {
    paused_peers_.fetch_sub(1, std::memory_order_relaxed);
  }
  std::size_t paused_peers() const noexcept {
    return paused_peers_.load(std::memory_order_relaxed);
  }

  /// RX trickle gate, consulted once per progress visit: true = skip the
  /// RX/CQ drains this visit. One relaxed load when nothing is paused.
  bool defer_rx() noexcept {
    // lint: allow(relaxed-sync) advisory throttle; the match lock owns the latch
    if (paused_peers_.load(std::memory_order_relaxed) == 0) return false;
    return (rx_visits_.fetch_add(1, std::memory_order_relaxed) % kRxTrickle) != 0;
  }

  // --- sender-side admission (one relaxed load + compare each) ---

  bool pool_at_cap(std::uint64_t in_use_bytes) const noexcept {
    return lim_.pool_cap_bytes != 0 && in_use_bytes >= lim_.pool_cap_bytes;
  }
  bool tracker_at_cap(std::size_t in_flight) const noexcept {
    return lim_.tracker_cap != 0 && in_flight >= lim_.tracker_cap;
  }

  // --- degradation ladder ---

  struct Transition {
    Level from = Level::kHealthy;
    Level to = Level::kHealthy;
    bool changed = false;
  };

  /// Re-evaluate the ladder from current resource usage (progress-driven;
  /// any thread may call, a CAS keeps transitions exactly-once). Up
  /// transitions are immediate; down transitions need pressure <= low_pct
  /// (hysteresis), so the ladder doesn't flap at a watermark.
  Transition sample(std::uint64_t unexpected_total, std::uint64_t pool_in_use,
                    std::uint64_t tracker_in_flight) noexcept;

  /// Worst resource pressure as a percentage of its cap (100 = at cap).
  int pressure_pct(std::uint64_t unexpected_total, std::uint64_t pool_in_use,
                   std::uint64_t tracker_in_flight) const noexcept;

 private:
  const Limits lim_;
  const bool enabled_;
  std::atomic<std::uint8_t> level_{static_cast<std::uint8_t>(Level::kHealthy)};
  std::atomic<std::size_t> paused_peers_{0};
  std::atomic<std::uint64_t> rx_visits_{0};
};

}  // namespace fairmpi::overload
