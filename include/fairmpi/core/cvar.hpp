// Control variables: the paper's hint mechanism (§III-B).
//
// "An implementation can provide the user with a way to give a hint via
// environment variable(s), MPI info key(s), or other means (MCA parameters
// for Open MPI or the new MPI control variables MPI_T cvar) to let the
// implementation know how many threads the application intends to use."
//
// fairmpi exposes every Config knob as a named control variable, settable
// programmatically (apply_cvar) or through FAIRMPI_* environment variables
// (config_from_env) — so a deployment can switch between the paper's
// designs without recompiling:
//
//   FAIRMPI_NUM_INSTANCES=20 FAIRMPI_ASSIGNMENT=dedicated ...
//   FAIRMPI_PROGRESS=concurrent ./my_app
#pragma once

#include <string>
#include <string_view>

#include "fairmpi/core/config.hpp"

namespace fairmpi {

/// Apply one control variable to a Config. Names (case-sensitive):
///   num_instances        int >= 1       CRIs per rank
///   assignment           rr|round-robin|dedicated
///   progress             serial|concurrent
///   allow_overtaking     0|1|true|false
///   progress_batch       int >= 1
///   eager_limit          bytes
///   rndv_frag_bytes      bytes >= 1
///   rx_ring_entries      int >= 2   PER-LANE RX depth (per-source credit
///                        window; a context's RX queue is one SPSC lane per
///                        source stream, see fabric.hpp)
///   submit_ring_entries  int >= 2   per-CRI lock-free submission ring
///   cq_entries           int >= 2
///   max_communicators    int >= 1
///   trace                0|1|true|false   enable the per-rank trace ring
///   trace_entries        ring capacity (0 with trace=1 uses a default)
///   obs                  0|1|true|false   observability layer (contention
///                        profiling + per-CRI utilization; process-sticky)
/// Returns false (leaving cfg untouched) on unknown name or bad value.
bool apply_cvar(Config& cfg, std::string_view name, std::string_view value);

/// Build a Config from FAIRMPI_<UPPERCASE_NAME> environment variables,
/// starting from `base`. Unset variables keep the base value; malformed
/// values abort (a misspelled deployment knob should be loud).
Config config_from_env(Config base = {});

/// Human-readable list of every control variable with its current value —
/// the MPI_T-style introspection surface.
std::string list_cvars(const Config& cfg);

}  // namespace fairmpi
