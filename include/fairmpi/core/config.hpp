// Runtime configuration of a fairmpi universe.
//
// Every design axis the paper studies is a knob here, so one binary can
// sweep the whole space: number of CRIs, thread->CRI assignment, progress
// design, and message overtaking.
#pragma once

#include "fairmpi/cri/cri.hpp"
#include "fairmpi/fabric/fabric.hpp"
#include "fairmpi/overload/overload.hpp"
#include "fairmpi/progress/progress.hpp"

namespace fairmpi {

struct Config {
  /// Ranks ("MPI processes") in the universe. Thread mode uses 2 ranks with
  /// many threads each; process mode uses 2*N single-threaded ranks.
  int num_ranks = 2;

  /// CRIs per rank (network contexts + endpoints + CQs). The paper's hint
  /// mechanism (MCA parameter / MPI_T cvar) maps to this field.
  int num_instances = 1;

  /// Thread -> CRI assignment policy (Algorithm 1).
  cri::Assignment assignment = cri::Assignment::kDedicated;

  /// Per-CRI lock-free submission-ring depth (DESIGN.md §5f). Rounded up
  /// to a power of two; bounds how many contended injections can queue
  /// behind a busy instance before producers fall back to blocking.
  std::size_t submit_ring_entries = cri::CommResourceInstance::kDefaultSubmitEntries;

  /// Progress-engine design (serial vs Algorithm 2).
  progress::ProgressMode progress_mode = progress::ProgressMode::kSerial;

  /// Skip sequence-number validation (mpi_assert_allow_overtaking, §IV-D).
  /// Applies to every communicator created in this universe.
  bool allow_overtaking = false;

  /// Max packets drained from one RX ring per progress visit.
  int progress_batch = 64;

  /// Largest payload sent eagerly (copied at injection); larger messages
  /// use the rendezvous protocol (RTS/ACK/fragments).
  std::size_t eager_limit = 32 * 1024;

  /// Fragment size for rendezvous data transfer.
  std::size_t rndv_frag_bytes = 64 * 1024;

  /// Per-rank trace-ring capacity (0 = tracing compiled out of the data
  /// path except one relaxed load). Enable at runtime with
  /// Rank::tracer().enable(true).
  std::size_t trace_entries = 0;

  /// Enable tracing from construction (cvar `trace`, env FAIRMPI_TRACE=1).
  /// When set with trace_entries == 0, Universe applies a default ring
  /// capacity so "FAIRMPI_TRACE=1" alone records something exportable.
  bool trace_enabled = false;

  /// Observability layer (lock-contention profiling + per-CRI utilization;
  /// cvar `obs`, env FAIRMPI_OBS=1). Process-global and sticky once a
  /// universe with this set has been constructed.
  bool obs_enabled = false;

  /// Capacity of the communicator table (ids are dense, starting at 0 for
  /// the world communicator).
  int max_communicators = 1024;

  /// Fabric sizing (RX ring / CQ depths).
  fabric::FabricParams fabric{};

  // --- fault injection & reliability (DESIGN.md "Fault model") ---

  /// Per-link fault probabilities; all zero by default (pristine fabric).
  /// Universe auto-enables `reliable` whenever any probability is nonzero.
  fabric::FaultParams faults{};

  /// Ack/retransmit reliability protocol + wire checksums. Off by default:
  /// the pristine fabric needs neither, and the hot path stays untouched.
  bool reliable = false;

  /// Initial retransmit timeout; doubles per retry up to rto_max_ns
  /// (the msgrate backoff idiom), then the send fails typed after
  /// max_retries unacked attempts.
  std::uint64_t rto_ns = 500'000;
  std::uint64_t rto_max_ns = 16'000'000;
  int max_retries = 12;

  /// Send window: max tracked-unacked packets before an eager send blocks
  /// (progressing) until acks drain the backlog. Bounds the retransmit
  /// burst a sweep can emit and makes floods self-clocking; without it a
  /// sender can park thousands of unacked packets against an 8-entry ring
  /// and every sweep becomes a storm. 0 = unbounded.
  std::size_t reliability_window = 64;

  /// EAGAIN retry budget for one injection (eager_send / control sends):
  /// spin-then-yield attempts before the op fails with a typed error
  /// instead of livelocking. Generous: legitimate backpressure resolves in
  /// a few thousand retries even on one core.
  std::uint64_t send_retry_limit = 1'000'000;

  /// Progress-engine watchdog: sweep cadence and the number of consecutive
  /// no-drain sweeps (backlogged instance whose consumption is frozen)
  /// before escalation. watchdog_interval_ns == 0 checks on every
  /// progress() call (tests); UINT64_MAX disables the watchdog.
  std::uint64_t watchdog_interval_ns = 10'000'000;
  int watchdog_stall_sweeps = 5;

  /// Age past which a pending rendezvous transfer is reported stalled.
  std::uint64_t rndv_stall_ns = 1'000'000'000;

  // --- failure tolerance (DESIGN.md §5g) ---

  /// Rank-failure tolerance layer (fairmpi::ft): heartbeat failure
  /// detector, typed kPeerFailed propagation, communicator revoke/shrink.
  /// Off by default — with it off no heartbeat ever flows and the hot path
  /// pays one null-pointer branch. Enabling it forces the fault injector
  /// into the delivery path (its kill_rank peer-death mode is the
  /// detector's counterpart) even with all-zero fault probabilities.
  bool ft_enabled = false;

  /// Failure-detector probe cadence: every live peer gets an explicit
  /// heartbeat once per interval (sender-side cadence), and one suspicion
  /// strike accrues per unanswered interval.
  std::uint64_t ft_heartbeat_ns = 1'000'000;

  /// Silence past this threshold moves a peer alive -> suspect.
  std::uint64_t ft_suspect_ns = 5'000'000;

  /// Unanswered probe rounds while suspect before the peer is confirmed
  /// dead (terminal).
  int ft_strikes = 3;

  // --- overload control & degradation (DESIGN.md §5h) ---

  /// Per-peer unexpected-queue depth cap (0 = unbounded, the historical
  /// behaviour). At cap, `unexpected_policy` decides: kShed drops the
  /// message at admission and NACKs the sender (whose tracked op fails
  /// typed kReceiverOverloaded — requires `reliable`; without it the drop
  /// is silent, exactly like fabric loss); kQueue latches the peer paused
  /// and trickles RX drains so the producer backs off on its full ring.
  std::size_t unexpected_cap = 0;
  overload::Policy unexpected_policy = overload::Policy::kShed;

  /// Payload-pool in-use byte cap, checked at eager injection (process
  /// global, like the pool itself; 0 = unbounded). kQueue spins the sender
  /// (progressing) until buffers recycle; kShed fails the op typed
  /// kLocalOverloaded.
  std::uint64_t payload_pool_cap_bytes = 0;
  overload::Policy payload_pool_policy = overload::Policy::kQueue;

  /// In-flight reliability-tracker entry cap, checked before track() (0 =
  /// only the reliability_window gate applies). Policies as for the pool.
  std::size_t tracker_cap = 0;
  overload::Policy tracker_policy = overload::Policy::kQueue;

  /// Degradation-ladder watermarks, percent of the tightest cap:
  /// kHealthy -> kPressured at high; back down only at/below low
  /// (hysteresis so the ladder doesn't flap at a boundary).
  int overload_high_pct = 75;
  int overload_low_pct = 50;

  /// Default deadline applied by the *_checked ops (and through them every
  /// collective) as now + this many ns; 0 = no deadline. Explicit
  /// Request::set_deadline on an individual op overrides.
  std::uint64_t op_deadline_ns = 0;

  // --- collectives (DESIGN.md §5i) ---

  /// Pipeline segment size for large-payload broadcast/reduce trees: a
  /// payload strictly larger than this is cut into segments of this many
  /// bytes so interior tree nodes forward segment k while receiving k+1.
  /// 0 disables segmentation. Ignored (single-shot) with allow_overtaking,
  /// which drops the in-order matching the pipeline relies on.
  std::size_t coll_segment_bytes = 32 * 1024;

  /// Smallest payload routed to the reduce-scatter + allgather (ring)
  /// allreduce; below it the latency-bound reduce+broadcast binomial pair
  /// wins. ~0 (the default here is bytes) — 0 sends everything through the
  /// ring, a large value keeps everything binomial.
  std::size_t coll_rsag_min_bytes = 4096;
};

}  // namespace fairmpi
