// Runtime configuration of a fairmpi universe.
//
// Every design axis the paper studies is a knob here, so one binary can
// sweep the whole space: number of CRIs, thread->CRI assignment, progress
// design, and message overtaking.
#pragma once

#include "fairmpi/cri/cri.hpp"
#include "fairmpi/fabric/fabric.hpp"
#include "fairmpi/progress/progress.hpp"

namespace fairmpi {

struct Config {
  /// Ranks ("MPI processes") in the universe. Thread mode uses 2 ranks with
  /// many threads each; process mode uses 2*N single-threaded ranks.
  int num_ranks = 2;

  /// CRIs per rank (network contexts + endpoints + CQs). The paper's hint
  /// mechanism (MCA parameter / MPI_T cvar) maps to this field.
  int num_instances = 1;

  /// Thread -> CRI assignment policy (Algorithm 1).
  cri::Assignment assignment = cri::Assignment::kDedicated;

  /// Progress-engine design (serial vs Algorithm 2).
  progress::ProgressMode progress_mode = progress::ProgressMode::kSerial;

  /// Skip sequence-number validation (mpi_assert_allow_overtaking, §IV-D).
  /// Applies to every communicator created in this universe.
  bool allow_overtaking = false;

  /// Max packets drained from one RX ring per progress visit.
  int progress_batch = 64;

  /// Largest payload sent eagerly (copied at injection); larger messages
  /// use the rendezvous protocol (RTS/ACK/fragments).
  std::size_t eager_limit = 32 * 1024;

  /// Fragment size for rendezvous data transfer.
  std::size_t rndv_frag_bytes = 64 * 1024;

  /// Per-rank trace-ring capacity (0 = tracing compiled out of the data
  /// path except one relaxed load). Enable at runtime with
  /// Rank::tracer().enable(true).
  std::size_t trace_entries = 0;

  /// Capacity of the communicator table (ids are dense, starting at 0 for
  /// the world communicator).
  int max_communicators = 1024;

  /// Fabric sizing (RX ring / CQ depths).
  fabric::FabricParams fabric{};
};

}  // namespace fairmpi
