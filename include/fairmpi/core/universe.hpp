// The public faces of fairmpi: Universe, Rank, Communicator.
//
// A Universe is a simulated MPI job living inside one OS process: N ranks,
// each with its own NIC (CRI pool), progress engine, SPC counters and
// communicator table, connected by the in-process fabric. User threads call
// into a Rank concurrently — the engine is MPI_THREAD_MULTIPLE by
// construction, and which of the paper's designs protects it is chosen by
// the Config.
//
// Quickstart (examples/quickstart.cpp):
//   fairmpi::Config cfg;                  // 2 ranks, 1 CRI, serial progress
//   fairmpi::Universe uni(cfg);
//   auto w0 = uni.rank(0).world(), w1 = uni.rank(1).world();
//   // thread A:                         // thread B:
//   w0.send(1, /*tag=*/7, "hi", 3);      char buf[8]; w1.recv(0, 7, buf, 8);
#pragma once

#include <atomic>
#include <cstddef>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "fairmpi/common/spinlock.hpp"
#include "fairmpi/core/config.hpp"
#include "fairmpi/debug/lockcheck.hpp"
#include "fairmpi/cri/cri.hpp"
#include "fairmpi/fabric/fabric.hpp"
#include "fairmpi/p2p/comm_state.hpp"
#include "fairmpi/p2p/rendezvous.hpp"
#include "fairmpi/p2p/request.hpp"
#include "fairmpi/progress/progress.hpp"
#include "fairmpi/spc/spc.hpp"
#include "fairmpi/trace/trace.hpp"

namespace fairmpi {

class Universe;
class Rank;

using p2p::CommId;
using p2p::kWorldComm;
using p2p::Request;
using p2p::Status;
using p2p::kAnySource;
using p2p::kAnyTag;

/// Lightweight handle pairing a rank with a communicator id. Copyable;
/// all operations forward to the owning Rank.
class Communicator {
 public:
  Communicator(Rank& rank, CommId id) noexcept : rank_(&rank), id_(id) {}

  /// This endpoint's rank id within the universe.
  int rank() const noexcept;
  /// Number of ranks in the communicator (== universe size; fairmpi
  /// communicators are duplicates of world, per the paper's usage).
  int size() const noexcept;
  CommId id() const noexcept { return id_; }

  void isend(int dst, int tag, const void* buf, std::size_t n, Request& req);
  void irecv(int src, int tag, void* buf, std::size_t capacity, Request& req);
  void send(int dst, int tag, const void* buf, std::size_t n);
  Status recv(int src, int tag, void* buf, std::size_t capacity);

  /// Dissemination barrier over all ranks of the communicator. Every rank
  /// must have (at least) one thread inside barrier() for it to complete.
  void barrier();

 private:
  Rank* rank_;
  CommId id_;
};

/// One simulated MPI process.
class Rank final : public progress::PacketSink, public p2p::RendezvousHook {
 public:
  ~Rank() override;
  Rank(const Rank&) = delete;
  Rank& operator=(const Rank&) = delete;

  int id() const noexcept { return id_; }
  Universe& universe() noexcept { return *uni_; }

  Communicator world() noexcept { return Communicator(*this, kWorldComm); }
  Communicator comm(CommId id) noexcept { return Communicator(*this, id); }

  // --- two-sided ---
  void isend(CommId comm, int dst, int tag, const void* buf, std::size_t n, Request& req);
  void irecv(CommId comm, int src, int tag, void* buf, std::size_t capacity, Request& req);
  void send(CommId comm, int dst, int tag, const void* buf, std::size_t n);
  Status recv(CommId comm, int src, int tag, void* buf, std::size_t capacity);

  /// Spin (progressing) until the request completes.
  void wait(Request& req);
  /// Progress once; true when the request is complete.
  bool test(Request& req);
  void wait_all(Request* const* reqs, std::size_t n);
  /// Spin until any request completes; returns its index.
  std::size_t wait_any(Request* const* reqs, std::size_t n);

  /// Non-destructive check for a matchable incoming message (MPI_Iprobe):
  /// progresses once, then queries the unexpected queue.
  bool iprobe(CommId comm, int src, int tag, Status* status = nullptr);
  /// Blocking probe: progress until a matching message is available.
  Status probe(CommId comm, int src, int tag);

  /// One explicit progress call (normally implicit in wait/test).
  std::size_t progress();

  // --- internals exposed for substrates, benches and tests ---
  spc::CounterSet& counters() noexcept { return spc_; }
  trace::Tracer& tracer() noexcept { return tracer_; }
  cri::CriPool& pool() noexcept { return pool_; }
  progress::ProgressEngine& engine() noexcept { return engine_; }
  p2p::CommState& comm_state(CommId id);

  // PacketSink
  std::size_t handle_packet(fabric::Packet&& pkt) override;
  std::size_t handle_completion(const fabric::Completion& c) override;

  // RendezvousHook (called by the matching engine, match lock held)
  void on_rts_matched(p2p::Request* req, const fabric::Packet& rts) override;

 private:
  friend class Universe;
  Rank(Universe& uni, int id);
  void install_comm(CommId id);

  // --- rendezvous protocol (see p2p/rendezvous.hpp) ---
  void rndv_isend(CommId comm, int dst, int tag, const void* buf, std::size_t n,
                  Request& req);
  std::size_t handle_rndv_ack(const fabric::Packet& pkt);
  std::size_t handle_rndv_data(const fabric::Packet& pkt);
  /// Execute deferred protocol sends; called from progress() with no
  /// engine lock held.
  void drain_control();
  /// Inject one protocol packet, retrying on backpressure.
  void inject_control(int dst, fabric::Packet&& pkt);

  Universe* uni_;
  const int id_;
  spc::CounterSet spc_;
  trace::Tracer tracer_;
  cri::CriPool pool_;
  progress::ProgressEngine engine_;
  std::vector<std::atomic<p2p::CommState*>> comms_;

  // Rendezvous registries and the deferred-send queue. A plain mutex-style
  // spinlock is fine here: traffic is one entry per large message, not per
  // fragment-byte. Both rank above match: they are acquired from
  // on_rts_matched with the match lock (and a CRI lock) held.
  RankedLock<Spinlock> rndv_lock_{LockRank::kRndvState, "rank.rndv-state"};
  std::uint64_t next_cookie_ = 1;
  std::unordered_map<std::uint64_t, std::unique_ptr<p2p::RndvSendState>> rndv_sends_;
  std::unordered_map<std::uint64_t, std::unique_ptr<p2p::RndvRecvState>> rndv_recvs_;
  RankedLock<Spinlock> control_lock_{LockRank::kRndvControl, "rank.rndv-control"};
  std::deque<p2p::ControlMsg> control_;
};

class Universe {
 public:
  explicit Universe(Config cfg);
  ~Universe();
  Universe(const Universe&) = delete;
  Universe& operator=(const Universe&) = delete;

  int num_ranks() const noexcept { return static_cast<int>(ranks_.size()); }
  Rank& rank(int r) { return *ranks_[static_cast<std::size_t>(r)]; }
  const Config& config() const noexcept { return cfg_; }
  fabric::Fabric& fabric() noexcept { return fabric_; }

  /// Create a new communicator spanning all ranks (a dup of world). Safe to
  /// call from any one thread; the id is usable on every rank once this
  /// returns. Models MPI_Comm_dup for the paper's comm-per-pair runs.
  CommId create_communicator();

  /// Sum of all ranks' SPC counters (high-water counters take the max).
  spc::Snapshot aggregate_counters() const;

 private:
  friend class Rank;
  Config cfg_;
  fabric::Fabric fabric_;
  std::vector<std::unique_ptr<Rank>> ranks_;
  std::atomic<CommId> next_comm_{kWorldComm + 1};
  RankedLock<Spinlock> comm_create_lock_{LockRank::kCommCreate, "universe.comm-create"};
};

}  // namespace fairmpi
