// The public faces of fairmpi: Universe, Rank, Communicator.
//
// A Universe is a simulated MPI job living inside one OS process: N ranks,
// each with its own NIC (CRI pool), progress engine, SPC counters and
// communicator table, connected by the in-process fabric. User threads call
// into a Rank concurrently — the engine is MPI_THREAD_MULTIPLE by
// construction, and which of the paper's designs protects it is chosen by
// the Config.
//
// Quickstart (examples/quickstart.cpp):
//   fairmpi::Config cfg;                  // 2 ranks, 1 CRI, serial progress
//   fairmpi::Universe uni(cfg);
//   auto w0 = uni.rank(0).world(), w1 = uni.rank(1).world();
//   // thread A:                         // thread B:
//   w0.send(1, /*tag=*/7, "hi", 3);      char buf[8]; w1.recv(0, 7, buf, 8);
#pragma once

#include <atomic>
#include <cstddef>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "fairmpi/common/error.hpp"
#include "fairmpi/common/spinlock.hpp"
#include "fairmpi/core/config.hpp"
#include "fairmpi/debug/lockcheck.hpp"
#include "fairmpi/debug/thread_safety.hpp"
#include "fairmpi/cri/cri.hpp"
#include "fairmpi/fabric/fabric.hpp"
#include "fairmpi/ft/failure_detector.hpp"
#include "fairmpi/p2p/comm_state.hpp"
#include "fairmpi/p2p/reliability.hpp"
#include "fairmpi/p2p/rendezvous.hpp"
#include "fairmpi/p2p/request.hpp"
#include "fairmpi/progress/progress.hpp"
#include "fairmpi/progress/watchdog.hpp"
#include "fairmpi/spc/spc.hpp"
#include "fairmpi/trace/trace.hpp"

namespace fairmpi {

class Universe;
class Rank;
namespace rma {
class Window;  // befriended by Rank for typed RMA failure reporting
}  // namespace rma

using p2p::CommId;
using p2p::kWorldComm;
using p2p::Request;
using p2p::Status;
using p2p::kAnySource;
using p2p::kAnyTag;

/// Lightweight handle pairing a rank with a communicator id. Copyable;
/// all operations forward to the owning Rank.
///
/// Rank translation: communicators built from a group (Universe::shrink /
/// create_communicator(members)) expose *local* ranks — rank()/size(),
/// dst/src arguments and returned Status.source are all group-local; the
/// translation to the universe's global ids happens here, at the boundary.
/// World-spanning communicators (every one before PR 8) translate
/// identically (local == global).
class Communicator {
 public:
  Communicator(Rank& rank, CommId id) noexcept : rank_(&rank), id_(id) {}

  /// This endpoint's rank id within the communicator (group-local).
  int rank() const noexcept;
  /// Number of ranks in the communicator (group size; == universe size for
  /// world-spanning communicators, the paper's only shape).
  int size() const noexcept;
  CommId id() const noexcept { return id_; }

  /// ft: true once Universe::revoke ran on this communicator — every
  /// subsequent operation fails fast with kCommRevoked.
  bool revoked() const noexcept;

  /// Nonblocking ops take an optional absolute deadline (engine now_ns
  /// clock; 0 = none, DESIGN.md §5h): the request settles typed
  /// kDeadlineExceeded once the deadline passes without completion. The
  /// deadline must ride in here — not be attached after the fact — so it
  /// is set before the request becomes visible to the engine.
  ///
  /// Tags at or above p2p::kReservedTagBase belong to the engine
  /// (collective lanes, barrier rounds): posting one here settles the
  /// request typed kReservedTag instead of silently colliding with
  /// collective traffic. Engine internals bypass via the Rank-level ops.
  void isend(int dst, int tag, const void* buf, std::size_t n, Request& req,
             std::uint64_t deadline_ns = 0);
  void irecv(int src, int tag, void* buf, std::size_t capacity, Request& req,
             std::uint64_t deadline_ns = 0);
  void send(int dst, int tag, const void* buf, std::size_t n);
  Status recv(int src, int tag, void* buf, std::size_t capacity);

  /// Typed-outcome variants (ft): same blocking semantics, but a peer
  /// failure or a revocation surfaces as the returned code (kPeerFailed /
  /// kCommRevoked / kRetryExhausted / ...) instead of only via the error
  /// sink. The unchecked wrappers above forward here and discard the code.
  common::ErrorCode send_checked(int dst, int tag, const void* buf, std::size_t n);
  common::ErrorCode recv_checked(int src, int tag, void* buf, std::size_t capacity,
                                 Status* status = nullptr);

  /// Dissemination barrier over all ranks of the communicator. Every rank
  /// must have (at least) one thread inside barrier() for it to complete.
  void barrier();
  /// Barrier with a typed outcome: returns kOk when every round paired, or
  /// the first failure (kPeerFailed when a partner died, kCommRevoked when
  /// the communicator was revoked mid-barrier) — instead of hanging, the
  /// failure mode this PR exists to remove (DESIGN.md §5g).
  common::ErrorCode barrier_checked();

  /// The endpoint Rank behind this handle — substrate access (the coll
  /// subsystem routes its reserved-tag traffic through the Rank-level ops,
  /// which the reserved-tag guard above does not apply to). No new power:
  /// Universe::rank() already hands out every Rank.
  Rank& owner() const noexcept { return *rank_; }

  /// Group-local -> global translation (identity on world-spanning comms).
  /// Public for substrates (coll) that address Rank-level ops, which speak
  /// global ids.
  int global_of(int local) const noexcept;

 private:
  /// The reserved-tag guard body: settles `req` typed kReservedTag and
  /// reports to the error sink when `tag` is inside the engine block.
  /// Returns true when the op was rejected.
  bool reject_reserved_tag(Request& req, int tag, int peer, bool is_send) const;

  Rank* rank_;
  CommId id_;
};

/// One simulated MPI process.
class Rank final : public progress::PacketSink,
                   public p2p::RendezvousHook,
                   public progress::StallProbe,
                   public p2p::CancelScope {
 public:
  ~Rank() override;
  Rank(const Rank&) = delete;
  Rank& operator=(const Rank&) = delete;

  int id() const noexcept { return id_; }
  Universe& universe() noexcept { return *uni_; }

  Communicator world() noexcept { return Communicator(*this, kWorldComm); }
  Communicator comm(CommId id) noexcept { return Communicator(*this, id); }

  // --- two-sided ---
  /// deadline_ns: optional absolute per-op deadline (0 = none; §5h). Must
  /// be passed at submission so it is armed before the request is posted.
  void isend(CommId comm, int dst, int tag, const void* buf, std::size_t n, Request& req,
             std::uint64_t deadline_ns = 0);
  void irecv(CommId comm, int src, int tag, void* buf, std::size_t capacity, Request& req,
             std::uint64_t deadline_ns = 0);
  void send(CommId comm, int dst, int tag, const void* buf, std::size_t n);
  Status recv(CommId comm, int src, int tag, void* buf, std::size_t capacity);

  /// Spin (progressing) until the request completes.
  void wait(Request& req);
  /// Progress once; true when the request is complete.
  bool test(Request& req);
  void wait_all(Request* const* reqs, std::size_t n);
  /// Spin until any request completes; returns its index.
  std::size_t wait_any(Request* const* reqs, std::size_t n);

  /// Non-destructive check for a matchable incoming message (MPI_Iprobe):
  /// progresses once, then queries the unexpected queue.
  bool iprobe(CommId comm, int src, int tag, Status* status = nullptr);
  /// Blocking probe: progress until a matching message is available.
  Status probe(CommId comm, int src, int tag);

  /// One explicit progress call (normally implicit in wait/test).
  std::size_t progress();

  // --- internals exposed for substrates, benches and tests ---
  spc::CounterSet& counters() noexcept { return spc_; }
  trace::Tracer& tracer() noexcept { return tracer_; }
  cri::CriPool& pool() noexcept { return pool_; }
  progress::ProgressEngine& engine() noexcept { return engine_; }
  p2p::CommState& comm_state(CommId id);

  /// The ack/retransmit tracker (null unless Config::reliable) and the
  /// stall watchdog (null when watchdog_interval_ns is ~0) — test hooks.
  p2p::ReliabilityTracker* reliability() noexcept { return tracker_.get(); }
  progress::Watchdog* watchdog() noexcept { return watchdog_.get(); }

  /// The overload governor (DESIGN.md §5h): degradation level, paused-peer
  /// count, resolved caps. Always present; with no caps configured it is
  /// disabled and the hot path pays one branch.
  overload::Governor& governor() noexcept { return governor_; }
  const overload::Governor& governor() const noexcept { return governor_; }

  /// The rank-failure detector (null unless Config::ft_enabled).
  ft::FailureDetector* failure_detector() noexcept { return ft_.get(); }
  /// True once the detector confirmed `peer` dead. False with ft off.
  bool peer_failed(int peer) const noexcept {
    return ft_ != nullptr && ft_->is_dead(peer);
  }

  /// Install the typed-error callback (retry exhaustion, send budget, stall
  /// escalation). Not thread-safe against in-flight traffic: install before
  /// communication starts.
  void set_error_sink(common::ErrorSink sink, void* user) noexcept;

  // PacketSink
  std::size_t handle_packet(fabric::Packet&& pkt) override;
  std::size_t handle_completion(const fabric::Completion& c) override;

  // RendezvousHook (called by the matching engine, match lock held)
  void on_rts_matched(p2p::Request* req, const fabric::Packet& rts) override;

  // StallProbe (called by the watchdog, its sweep lock held): flag
  // rendezvous transfers pending since before `horizon_ns`.
  std::size_t scan_stalled(std::uint64_t now_ns, std::uint64_t horizon_ns) override;

  // p2p::CancelScope for requests owned by the rendezvous registries
  // (posted receives route through their MatchEngine instead): tombstones
  // the transfer under the registry lock and settles the request
  // kCancelled, so a cancel can never race a completing fragment drain.
  bool cancel_request(p2p::Request* req) override;

 private:
  friend class Universe;
  friend class Communicator;  ///< report_error for the reserved-tag guard
  friend class rma::Window;  ///< report_error for ft fail-fast RMA ops
  Rank(Universe& uni, int id);
  void install_comm(CommId id, std::vector<int> members = {});

  // --- ft layer (see ft/failure_detector.hpp; DESIGN.md §5g) ---
  /// One detection sweep from progress(): classify under the detector lock,
  /// then (lock-free) inject heartbeats toward idle links and run failure
  /// propagation for newly confirmed deaths.
  void ft_poll(std::uint64_t now);
  /// Single-attempt header-only liveness probe (never tracked, never acked).
  void send_heartbeat(int dst);
  /// Failure propagation for one confirmed-dead peer: fail tracked sends,
  /// purge posted receives on every installed communicator, fail in-flight
  /// rendezvous transfers, report one typed error.
  void on_peer_dead(int peer);
  /// Rendezvous part of the propagation (rndv registry purge).
  void fail_rendezvous_peer(int peer);

  // --- rendezvous protocol (see p2p/rendezvous.hpp) ---
  void rndv_isend(CommId comm, int dst, int tag, const void* buf, std::size_t n,
                  Request& req, std::uint64_t deadline_ns);
  std::size_t handle_rndv_ack(const fabric::Packet& pkt);
  std::size_t handle_rndv_data(const fabric::Packet& pkt);
  /// Execute deferred protocol sends; called from progress() with no
  /// engine lock held.
  void drain_control();
  /// Inject one protocol packet, retrying on backpressure (bounded by the
  /// send budget when reliable; tracked for retransmit unless it is an ack).
  void inject_control(int dst, fabric::Packet&& pkt);

  // --- reliability layer (see p2p/reliability.hpp) ---
  /// One injection attempt with no tracking and no backpressure loop: used
  /// for retransmits and acks, whose loss the protocol already absorbs.
  bool inject_raw(int dst, fabric::Packet&& pkt);
  /// Defer an ack echoing `hdr`'s key through the ack queue.
  void enqueue_packet_ack(const fabric::WireHeader& hdr);
  /// Defer an overload NACK (Opcode::kNack) echoing a shed packet's key
  /// through the same queue (DESIGN.md §5h).
  void enqueue_packet_nack(const fabric::WireHeader& hdr);
  /// Process an inbound NACK: retire the named tracker entry, surface the
  /// failure typed kReceiverOverloaded, and fail the owning rendezvous
  /// send when the NACKed packet was an RTS.
  void handle_nack(const fabric::WireHeader& hdr);

  // --- overload control & deadlines (DESIGN.md §5h) ---
  /// Deadline/ladder poll from progress(): expire posted receives (per
  /// match engine) and rendezvous transfers past their deadline, then
  /// re-sample the degradation ladder (throttled). Gated so the
  /// no-deadline, no-cap configuration pays two relaxed loads.
  void overload_poll(std::uint64_t now);
  /// Lower the rank-level deadline gate to `deadline_ns` (CAS-min).
  void arm_deadline(std::uint64_t deadline_ns) noexcept;
  /// Tombstone + fail rendezvous transfers past their deadline; lowers
  /// `*next` to the earliest surviving rendezvous deadline.
  void expire_rendezvous_deadlines(std::uint64_t now, std::uint64_t* next);
  /// Transmit deferred acks (single injection attempt each; a full ring
  /// stops the flush — the peer retransmits and we re-ack). Kept separate
  /// from drain_control so every backpressure wait loop can call it: acks
  /// must keep flowing while a sender blocks, or two flooding ranks
  /// deadlock waiting for each other's acks.
  void flush_acks();
  /// Retransmit expired in-flight packets; fail retry-exhausted ones typed.
  void reliability_sweep(std::uint64_t now);
  /// Report a typed error through the installed sink (if any).
  void report_error(const common::Error& err) noexcept;

  Universe* uni_;
  const int id_;
  spc::CounterSet spc_;
  trace::Tracer tracer_;
  cri::CriPool pool_;
  progress::ProgressEngine engine_;
  std::vector<std::atomic<p2p::CommState*>> comms_;

  /// Overload control block (§5h): constructed from the Config caps;
  /// atomics-only, so it takes no rank in the lock hierarchy.
  overload::Governor governor_;
  /// Earliest sweepable deadline on this rank (~0 = none): posted receives
  /// and rendezvous transfers arm it; overload_poll's one-relaxed-load
  /// gate. Raised after a sweep only by a CAS conditioned on the pre-sweep
  /// value, so a concurrent arm is never lost.
  std::atomic<std::uint64_t> earliest_deadline_{~std::uint64_t{0}};
  /// Progress-visit counter throttling governor ladder sampling.
  std::atomic<std::uint64_t> overload_visits_{0};

  std::unique_ptr<p2p::ReliabilityTracker> tracker_;  ///< Config::reliable only
  std::unique_ptr<progress::Watchdog> watchdog_;
  std::unique_ptr<ft::FailureDetector> ft_;  ///< Config::ft_enabled only
  common::ErrorSink err_sink_ = nullptr;
  void* err_user_ = nullptr;
  /// Reentrancy guard: a retransmit injection can recurse into progress(),
  /// which must not start a second sweep on the same stack (or convoy
  /// concurrent threads into duplicate retransmit bursts).
  std::atomic<bool> sweeping_{false};
  /// Same shape for the detector sweep: exactly one thread at a time runs
  /// ft_poll, which makes the probe/death scratch vectors below safely
  /// single-writer without per-poll allocation.
  std::atomic<bool> ft_polling_{false};
  std::vector<int> ft_probes_;
  std::vector<int> ft_newly_dead_;

  // Rendezvous registries and the deferred-send queue. A plain mutex-style
  // spinlock is fine here: traffic is one entry per large message, not per
  // fragment-byte. Both rank above match: they are acquired from
  // on_rts_matched with the match lock (and a CRI lock) held.
  RankedLock<Spinlock> rndv_lock_{LockRank::kRndvState, "rank.rndv-state"};
  std::uint64_t next_cookie_ FAIRMPI_GUARDED_BY(rndv_lock_) = 1;
  std::unordered_map<std::uint64_t, std::unique_ptr<p2p::RndvSendState>> rndv_sends_
      FAIRMPI_GUARDED_BY(rndv_lock_);
  std::unordered_map<std::uint64_t, std::unique_ptr<p2p::RndvRecvState>> rndv_recvs_
      FAIRMPI_GUARDED_BY(rndv_lock_);
  RankedLock<Spinlock> control_lock_{LockRank::kRndvControl, "rank.rndv-control"};
  std::deque<p2p::ControlMsg> control_ FAIRMPI_GUARDED_BY(control_lock_);
  /// Reliability acks ride their own queue (same lock) so flush_acks can
  /// run from wait loops without reentering the full control drain.
  std::deque<p2p::ControlMsg> acks_ FAIRMPI_GUARDED_BY(control_lock_);
};

class Universe {
 public:
  explicit Universe(Config cfg);
  ~Universe();
  Universe(const Universe&) = delete;
  Universe& operator=(const Universe&) = delete;

  int num_ranks() const noexcept { return static_cast<int>(ranks_.size()); }
  Rank& rank(int r) { return *ranks_[static_cast<std::size_t>(r)]; }
  const Config& config() const noexcept { return cfg_; }
  fabric::Fabric& fabric() noexcept { return fabric_; }

  /// Create a new communicator spanning all ranks (a dup of world). Safe to
  /// call from any one thread; the id is usable on every rank once this
  /// returns. Models MPI_Comm_dup for the paper's comm-per-pair runs.
  CommId create_communicator();

  /// Create a communicator over an explicit group: `members` lists global
  /// rank ids in local-rank order (strictly increasing, non-empty). The
  /// building block of shrink(); also usable directly (MPI_Comm_create).
  CommId create_communicator(std::vector<int> members);

  // --- ft: communicator-level recovery (ULFM revoke/shrink; DESIGN.md §5g) ---

  /// Revoke `id` on every rank: all posted receives fail with kCommRevoked
  /// and every subsequent operation on the communicator fails fast. The
  /// escape hatch from collectives wedged by a rank failure — one rank
  /// observes kPeerFailed, revokes, and every other rank's blocked
  /// operation unblocks typed instead of hanging.
  void revoke(CommId id);

  /// Rebuild after failure: revoke `id` (idempotent), drain in-flight
  /// traffic among survivors (quiesce), and return a new communicator
  /// whose group is survivors() — ranks not confirmed dead by any live
  /// rank's detector nor killed in the injector. The returned communicator
  /// renumbers survivors densely (Communicator::rank()/size() are
  /// group-local).
  CommId shrink(CommId id);

  /// Progress every surviving rank until no rank completes further work
  /// and every reliability tracker is empty, or `timeout_ns` elapses.
  /// Returns true when quiescent. Call from exactly one thread with no
  /// other application threads inside blocking fairmpi calls.
  bool quiesce(std::uint64_t timeout_ns);

  /// Global ranks currently believed alive: not killed in the fault
  /// injector and not confirmed dead by any live rank's failure detector.
  std::vector<int> survivors() const;

  /// Sum of all ranks' SPC counters (high-water counters take the max).
  spc::Snapshot aggregate_counters() const;

  // --- observability (defined in src/obs/export.cpp) ---

  /// Merge every rank's trace ring into Chrome trace-event JSON
  /// (chrome://tracing / https://ui.perfetto.dev): one process per rank,
  /// one track per recording thread, one async lane per CRI (kCriDrain
  /// events). Trace-less runs produce a valid file with metadata only.
  void export_chrome_trace(std::ostream& os) const;

  /// JSON snapshot of the observability layer: per-class lock contention
  /// (process-global), per-rank/per-CRI utilization, and the aggregate
  /// SPCs. Rendered by tools/obs_report.py.
  void dump_observability(std::ostream& os) const;

  /// Retransmit sweep over EVERY rank's in-flight table, called from any
  /// rank's progress(). Cooperative by design: a real NIC retransmits
  /// autonomously, so recovery must not depend on the victim rank's
  /// application threads still driving its progress loop (a sender that
  /// fire-and-forgets eager traffic and then blocks elsewhere would
  /// otherwise strand its own dropped packets forever).
  void sweep_reliability(std::uint64_t now_ns) noexcept;

 private:
  friend class Rank;
  Config cfg_;
  fabric::Fabric fabric_;
  std::vector<std::unique_ptr<Rank>> ranks_;
  std::atomic<CommId> next_comm_{kWorldComm + 1};
  /// Serializes create_communicator: installs the new CommState on every
  /// rank before the id is published (comms_ slots themselves are atomics).
  RankedLock<Spinlock> comm_create_lock_{LockRank::kCommCreate, "universe.comm-create"};
};

}  // namespace fairmpi
