// Heartbeat-based rank-failure detector (ULFM-inspired; DESIGN.md §5g).
//
// The paper's designs — and PRs 1–7 — assume every rank lives forever: a
// dead peer turns the reliability layer into a retry furnace, blocking
// collectives into hangs, and the watchdog into an oracle that knows
// *something* stalled but not *who*. This detector gives each rank a local,
// typed answer to "is peer p alive?":
//
//   kAlive ──silence ≥ suspect_ns──► kSuspect ──strikes unanswered probe
//     ▲                                 │        rounds──► kDead (terminal)
//     └────────any packet───────────────┘
//
// Liveness evidence is piggybacked on the existing wire traffic — every
// structurally valid inbound packet refreshes its source's epoch — plus
// explicit Opcode::kHeartbeat probes injected toward every live peer on a
// sender-side cadence (one per heartbeat interval per link), so an
// idle-but-alive peer never trips the silence threshold. The cadence is
// deliberately NOT gated on inbound silence: receive-gated probing
// deadlocks symmetric idleness (A's probes keep B's inbound silence low,
// so B never probes back and A confirms a live peer dead). Suspicion and confirmation are driven from the owning
// rank's progress loop (Rank::progress -> poll()); death is confirmed after
// `strikes` unanswered probe rounds beyond the suspicion threshold and is
// permanent, matching the fault injector's permanent link-down kill mode.
//
// Determinism: the injector kills at a packet *index*, and confirmation
// only requires sustained silence, so a killed rank is always eventually
// confirmed dead — the detector's outcome is deterministic even though the
// wall-clock detection latency is not (it is recorded in a histogram for
// dump_observability()).
//
// Lock discipline: note_alive is one relaxed store (it runs on the packet
// dispatch path, which progress_instance_locked executes under a CRI lock).
// poll() try-locks the detector table (rank kFtDetector, 25 — above the CRI
// locks for the same reason), *collects* probe targets and newly confirmed
// deaths under it, and returns; the caller injects heartbeats and runs
// failure propagation with no detector lock held. is_dead()/suspect hint
// are lock-free reads for the send paths and the watchdog.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <vector>

#include "fairmpi/common/align.hpp"
#include "fairmpi/common/spinlock.hpp"
#include "fairmpi/debug/lockcheck.hpp"
#include "fairmpi/debug/thread_safety.hpp"
#include "fairmpi/spc/spc.hpp"
#include "fairmpi/trace/trace.hpp"

namespace fairmpi::ft {

/// Detector knobs (cvars ft_heartbeat_ns / ft_suspect_ns / ft_strikes).
struct FtParams {
  /// Probe cadence: every live peer gets an explicit heartbeat once per
  /// interval (sender-side cadence — see the deadlock note above), and
  /// one suspicion strike accrues per unanswered interval.
  std::uint64_t heartbeat_ns = 1'000'000;
  /// Silence past this threshold moves a peer kAlive -> kSuspect.
  std::uint64_t suspect_ns = 5'000'000;
  /// Unanswered probe rounds while suspect before kDead. >= 1.
  int strikes = 3;
};

enum class PeerState : std::uint8_t { kAlive = 0, kSuspect, kDead };

inline const char* peer_state_name(PeerState s) noexcept {
  switch (s) {
    case PeerState::kAlive: return "alive";
    case PeerState::kSuspect: return "suspect";
    case PeerState::kDead: return "dead";
  }
  return "unknown";
}

class FailureDetector {
 public:
  /// Detection-latency histogram: bucket i counts confirmations whose
  /// last-contact-to-confirmation latency was < 2^i milliseconds (last
  /// bucket is the overflow).
  static constexpr int kLatencyBuckets = 8;

  FailureDetector(int num_ranks, int self, const FtParams& params,
                  spc::CounterSet& counters, trace::Tracer& tracer);
  FailureDetector(const FailureDetector&) = delete;
  FailureDetector& operator=(const FailureDetector&) = delete;

  /// Refresh `peer`'s liveness epoch (any structurally valid inbound
  /// packet). One relaxed store — safe under any engine lock.
  void note_alive(int peer, std::uint64_t now_ns) noexcept {
    cells_[static_cast<std::size_t>(peer)].value.last_heard.store(
        now_ns, std::memory_order_relaxed);
  }

  /// True once `peer` is confirmed dead (terminal). Lock-free; the send
  /// paths use this as their fail-fast gate.
  bool is_dead(int peer) const noexcept {
    return cells_[static_cast<std::size_t>(peer)].value.dead.load(
        std::memory_order_acquire);
  }

  /// One detection sweep, driven from the owning rank's progress loop.
  /// Under the table lock this only *classifies*: live peers whose link
  /// has not been probed for a heartbeat interval land in `probes` (the
  /// caller injects Opcode::kHeartbeat toward them), peers whose suspicion just ran out
  /// of strikes land in `newly_dead` (the caller runs failure
  /// propagation). Returns false when gated by cadence or when another
  /// thread holds the sweep. Both vectors are appended to, not cleared.
  bool poll(std::uint64_t now_ns, std::vector<int>& probes,
            std::vector<int>& newly_dead);

  /// Current state of one peer (takes the table lock; obs/test hook).
  PeerState state(int peer) const;

  /// First currently-suspected (or confirmed-dead) peer, -1 when none.
  /// Lock-free; the watchdog reads this to attribute a stall escalation.
  const std::atomic<int>* suspect_hint() const noexcept { return &suspect_hint_; }

  std::uint64_t suspects() const noexcept {
    return suspects_.load(std::memory_order_relaxed);
  }
  std::uint64_t deaths() const noexcept {
    return deaths_.load(std::memory_order_relaxed);
  }

  /// Copy of the detection-latency histogram (see kLatencyBuckets).
  std::array<std::uint64_t, kLatencyBuckets> latency_hist() const noexcept {
    std::array<std::uint64_t, kLatencyBuckets> out{};
    for (int i = 0; i < kLatencyBuckets; ++i) {
      out[static_cast<std::size_t>(i)] =
          lat_hist_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
    }
    return out;
  }

  const FtParams& params() const noexcept { return params_; }

 private:
  /// Lock-free per-peer hot state: written by note_alive on the packet
  /// path, read by the send paths (dead) and poll. Padded — every
  /// dispatching thread stores into its source's cell.
  struct Cell {
    std::atomic<std::uint64_t> last_heard{0};  ///< 0 = no contact yet
    std::atomic<bool> dead{false};
  };
  /// Cold per-peer classification state, owned by poll() under lock_.
  struct Cold {
    PeerState state = PeerState::kAlive;
    int strikes = 0;
    std::uint64_t last_probe_ns = 0;
    std::uint64_t last_strike_ns = 0;
  };

  const int num_ranks_;
  const int self_;
  const FtParams params_;
  spc::CounterSet& spc_;
  trace::Tracer& tracer_;

  std::vector<Padded<Cell>> cells_;
  mutable RankedLock<Spinlock> lock_{debug::LockRank::kFtDetector, "ft.detector"};
  std::vector<Cold> cold_ FAIRMPI_GUARDED_BY(lock_);
  std::atomic<std::uint64_t> last_poll_ns_{0};
  std::atomic<int> suspect_hint_{-1};
  std::atomic<std::uint64_t> suspects_{0};
  std::atomic<std::uint64_t> deaths_{0};
  std::array<std::atomic<std::uint64_t>, kLatencyBuckets> lat_hist_{};
};

}  // namespace fairmpi::ft
