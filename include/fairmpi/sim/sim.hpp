// Discrete-event simulation kernel.
//
// Substitution substrate (DESIGN.md §4): the paper's evaluation needs two
// cluster nodes with 20-64 cores; this kernel provides *virtual* threads
// (C++20 coroutines) and virtual time so the model in src/model can execute
// the paper's algorithms at full scale on any host, deterministically.
//
// Concepts:
//   * Simulation — the event loop: a priority queue of (time, seq, handle).
//     Determinism: ties in time resolve by schedule order (seq), so the
//     same program produces the same trace on every run.
//   * Task — a coroutine returning sim::Task is a simulated thread. Tasks
//     are awaitable (child tasks run inline at the current virtual time
//     with symmetric transfer) and spawnable (root actors).
//   * delay(ns) — advance this actor's local time.
//   * SimMutex — FIFO mutex with try_acquire; models a contended lock,
//     including a configurable handoff penalty that grows with the number
//     of spinning waiters (cache-line ping-pong on real hardware).
//   * SimBarrier — arrival barrier for phase synchronization.
#pragma once

#include <coroutine>
#include <cstdint>
#include <exception>
#include <deque>
#include <queue>
#include <vector>

#include "fairmpi/common/error.hpp"
#include "fairmpi/common/rng.hpp"

namespace fairmpi::sim {

using Time = std::uint64_t;  ///< virtual nanoseconds

class Simulation;

/// Coroutine task: simulated thread (root) or awaitable sub-task.
class [[nodiscard]] Task {
 public:
  struct promise_type {
    Task get_return_object() noexcept {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    std::suspend_always initial_suspend() noexcept { return {}; }

    struct FinalAwaiter {
      bool await_ready() noexcept { return false; }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<promise_type> h) noexcept {
        // Resume whoever co_awaited us; root tasks park (the Simulation
        // owns and reaps them).
        auto cont = h.promise().continuation;
        return cont ? cont : std::noop_coroutine();
      }
      void await_resume() noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }

    void return_void() noexcept {}
    void unhandled_exception() { std::terminate(); }

    std::coroutine_handle<> continuation = nullptr;
  };

  Task() = default;
  explicit Task(std::coroutine_handle<promise_type> h) noexcept : handle_(h) {}
  Task(Task&& other) noexcept : handle_(other.handle_) { other.handle_ = nullptr; }
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = other.handle_;
      other.handle_ = nullptr;
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  /// Awaiting a Task runs it inline (same virtual time) until it finishes
  /// or suspends into the simulation.
  auto operator co_await() && noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> child;
      bool await_ready() const noexcept { return !child || child.done(); }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> parent) noexcept {
        child.promise().continuation = parent;
        return child;  // symmetric transfer: start the child now
      }
      void await_resume() noexcept {}
    };
    return Awaiter{handle_};
  }

  bool done() const noexcept { return !handle_ || handle_.done(); }
  std::coroutine_handle<promise_type> handle() const noexcept { return handle_; }
  std::coroutine_handle<promise_type> release() noexcept {
    auto h = handle_;
    handle_ = nullptr;
    return h;
  }

 private:
  void destroy() {
    if (handle_) handle_.destroy();
    handle_ = nullptr;
  }
  std::coroutine_handle<promise_type> handle_ = nullptr;
};

class Simulation {
 public:
  Simulation() = default;
  ~Simulation();
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  Time now() const noexcept { return now_; }

  /// Take ownership of a root task and schedule it at the current time.
  void spawn(Task task);

  /// Schedule a raw handle (used by synchronization primitives).
  void schedule(Time at, std::coroutine_handle<> h);

  /// Awaitable: resume this actor `ns` virtual nanoseconds from now.
  /// delay(0) still round-trips through the event queue (deterministic
  /// yield point).
  auto delay(Time ns) noexcept {
    struct Awaiter {
      Simulation* sim;
      Time ns;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) { sim->schedule(sim->now_ + ns, h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{this, ns};
  }

  /// Run until the event queue drains. Returns the final virtual time.
  Time run();

  /// Run until (at most) virtual time `deadline`; events at later times
  /// stay queued. Returns true if events remain.
  bool run_until(Time deadline);

  /// Number of events processed so far (diagnostics / perf counters).
  std::uint64_t events_processed() const noexcept { return events_; }

 private:
  void reap_done_roots();

  struct Event {
    Time at;
    std::uint64_t seq;
    std::coroutine_handle<> handle;
    bool operator>(const Event& other) const noexcept {
      return at != other.at ? at > other.at : seq > other.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  std::vector<std::coroutine_handle<Task::promise_type>> roots_;
  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_ = 0;
};

/// Mutex for simulated threads.
///
/// `handoff_base` + `handoff_per_waiter` model the cache-coherence cost a
/// real contended lock pays on every ownership transfer: the incoming owner
/// stalls on the lock/data cache lines, and test-and-set spinners make the
/// transfer more expensive the more of them there are. Zero by default
/// (ideal lock).
///
/// Grant order: FIFO by default (ticket lock). Passing an RNG switches to
/// *random* handoff, modeling an unfair test-and-set spinlock where any
/// spinner may win the next acquisition — the grant-order randomness is
/// what turns concurrent senders into out-of-sequence message streams
/// (paper §II-C), so the model uses random handoff for instance locks.
class SimMutex {
 public:
  explicit SimMutex(Simulation& sim, Time handoff_base = 0, Time handoff_per_waiter = 0,
                    Xoshiro256* rng = nullptr)
      : sim_(&sim), handoff_base_(handoff_base), handoff_per_waiter_(handoff_per_waiter),
        rng_(rng) {}

  SimMutex(const SimMutex&) = delete;
  SimMutex& operator=(const SimMutex&) = delete;

  /// Awaitable blocking acquire (FIFO among waiters).
  auto acquire() noexcept {
    struct Awaiter {
      SimMutex* mu;
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> h) {
        if (!mu->locked_) {
          mu->locked_ = true;
          return h;  // uncontended: continue immediately
        }
        mu->waiters_.push_back(h);
        return std::noop_coroutine();
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this};
  }

  /// Non-blocking acquire (the paper's try-lock primitive).
  bool try_acquire() noexcept {
    if (locked_) return false;
    locked_ = true;
    return true;
  }

  /// Release; if waiters exist the lock transfers (FIFO, or uniformly at
  /// random with an RNG) and the next owner resumes after the handoff
  /// penalty.
  void release() {
    FAIRMPI_CHECK_MSG(locked_, "release of an unlocked SimMutex");
    if (waiters_.empty()) {
      locked_ = false;
      return;
    }
    std::size_t idx = 0;
    if (rng_ != nullptr && waiters_.size() > 1) {
      idx = static_cast<std::size_t>(rng_->bounded(waiters_.size()));
    }
    auto next = waiters_[idx];
    waiters_.erase(waiters_.begin() + static_cast<std::ptrdiff_t>(idx));
    // Lock stays held; ownership moves to `next` after the handoff cost.
    // The spinner-storm term saturates: real spinners back off, so the
    // coherence traffic stops growing past a dozen waiters.
    constexpr std::size_t kStormCap = 12;
    const std::size_t spinners = waiters_.size() < kStormCap ? waiters_.size() : kStormCap;
    const Time penalty = handoff_base_ + handoff_per_waiter_ * spinners;
    sim_->schedule(sim_->now() + penalty, next);
  }

  bool locked() const noexcept { return locked_; }
  std::size_t waiters() const noexcept { return waiters_.size(); }

 private:
  Simulation* sim_;
  const Time handoff_base_;
  const Time handoff_per_waiter_;
  Xoshiro256* rng_;
  bool locked_ = false;
  std::deque<std::coroutine_handle<>> waiters_;
};

/// Arrival barrier: the N-th arriving actor releases everyone.
class SimBarrier {
 public:
  SimBarrier(Simulation& sim, std::size_t parties) : sim_(&sim), parties_(parties) {
    FAIRMPI_CHECK(parties >= 1);
  }

  SimBarrier(const SimBarrier&) = delete;
  SimBarrier& operator=(const SimBarrier&) = delete;

  auto arrive_and_wait() noexcept {
    struct Awaiter {
      SimBarrier* bar;
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> h) {
        if (bar->waiting_.size() + 1 == bar->parties_) {
          for (auto w : bar->waiting_) bar->sim_->schedule(bar->sim_->now(), w);
          bar->waiting_.clear();
          return h;  // last arriver proceeds immediately
        }
        bar->waiting_.push_back(h);
        return std::noop_coroutine();
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this};
  }

 private:
  Simulation* sim_;
  const std::size_t parties_;
  std::vector<std::coroutine_handle<>> waiting_;
};

}  // namespace fairmpi::sim
