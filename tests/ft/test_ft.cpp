// End-to-end failure-tolerance tests (DESIGN.md §5g): heartbeat liveness,
// seeded rank kills with typed propagation into p2p/rendezvous/RMA/
// collectives, communicator revoke/shrink recovery, and the observability
// surface (detection-latency histogram, liveness states, failed-op counts).
//
// Every universe here runs with deliberately aggressive detector knobs so a
// death confirms in well under a millisecond of driven progress; every
// blocking drive is wall-clock bounded, so a regression that reintroduces a
// hang fails the test instead of wedging the suite.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "fairmpi/common/timing.hpp"
#include "fairmpi/coll/coll.hpp"
#include "fairmpi/core/universe.hpp"
#include "fairmpi/rma/window.hpp"

namespace fairmpi {
namespace {

using common::Error;
using common::ErrorCode;
using spc::Counter;

Config ft_config(int ranks) {
  Config cfg;
  cfg.num_ranks = ranks;
  cfg.ft_enabled = true;
  cfg.reliable = true;  // sends are tracked, so death propagation fails them
  cfg.ft_heartbeat_ns = 50'000;  // probe every 0.05 ms
  cfg.ft_suspect_ns = 200'000;   // suspect after 0.2 ms of silence
  cfg.ft_strikes = 2;            // confirm ~0.3 ms after last contact
  return cfg;
}

/// Drive the given ranks' progress loops until `pred` holds; false on a
/// 5 s wall-clock timeout (the no-hang guard every ft test leans on).
template <typename Pred>
bool drive(Universe& uni, const std::vector<int>& ranks, Pred pred) {
  const std::uint64_t deadline = now_ns() + 5'000'000'000ULL;
  while (!pred()) {
    for (const int r : ranks) uni.rank(r).progress();
    if (now_ns() > deadline) return false;
  }
  return true;
}

struct ErrorCapture {
  std::vector<Error> errors;
  Spinlock lock;
  static void sink(const Error& err, void* user) {
    auto* self = static_cast<ErrorCapture*>(user);
    LockGuard guard(self->lock);
    self->errors.push_back(err);
  }
  bool saw(ErrorCode code) {
    LockGuard guard(lock);
    for (const Error& e : errors) {
      if (e.code == code) return true;
    }
    return false;
  }
};

TEST(Ft, DisabledByDefault) {
  Config cfg;
  cfg.num_ranks = 2;
  Universe uni(cfg);
  EXPECT_EQ(uni.rank(0).failure_detector(), nullptr);
  EXPECT_FALSE(uni.rank(0).peer_failed(1));

  std::ostringstream os;
  uni.dump_observability(os);
  EXPECT_NE(os.str().find("\"ft\": null"), std::string::npos);
}

TEST(Ft, IdlePeersStayAliveViaHeartbeats) {
  // No application traffic at all: only the detector's own probes keep the
  // links warm. Gentler knobs than the kill tests so a CI scheduling bubble
  // between two polls cannot fake a full strike cascade.
  Config cfg = ft_config(2);
  cfg.ft_heartbeat_ns = 100'000;
  cfg.ft_suspect_ns = 500'000;
  cfg.ft_strikes = 3;
  Universe uni(cfg);

  const std::uint64_t until = now_ns() + 5'000'000;  // 5 ms of idle driving
  ASSERT_TRUE(drive(uni, {0, 1}, [&] { return now_ns() > until; }));

  for (int r = 0; r < 2; ++r) {
    ft::FailureDetector* det = uni.rank(r).failure_detector();
    ASSERT_NE(det, nullptr);
    EXPECT_EQ(det->deaths(), 0u) << "rank " << r;
    EXPECT_EQ(det->state(1 - r), ft::PeerState::kAlive) << "rank " << r;
    EXPECT_FALSE(uni.rank(r).peer_failed(1 - r));
  }
  const spc::Snapshot total = uni.aggregate_counters();
  EXPECT_GT(total.get(Counter::kFtHeartbeatsSent), 0u);
  EXPECT_GT(total.get(Counter::kFtHeartbeatsReceived), 0u);
}

TEST(Ft, KilledRankOpsFailTypedWithoutHanging) {
  Universe uni(ft_config(3));
  ErrorCapture cap0;
  ErrorCapture cap1;
  uni.rank(0).set_error_sink(ErrorCapture::sink, &cap0);
  uni.rank(1).set_error_sink(ErrorCapture::sink, &cap1);

  // Outstanding operations toward the victim before it dies: a posted
  // eager receive, an eager send, and a rendezvous send mid-protocol.
  std::uint32_t in = 0;
  Request recv_req;
  uni.rank(0).irecv(kWorldComm, /*src=*/2, /*tag=*/1, &in, sizeof in, recv_req);

  // An eager send completes at injection (fire-and-forget; the tracker owns
  // delivery) — its typed failure must surface through rank 1's error sink
  // when death propagation purges the never-acked tracker entry.
  const std::uint32_t out = 7;
  Request eager_req;
  uni.rank(1).isend(kWorldComm, /*dst=*/2, /*tag=*/2, &out, sizeof out, eager_req);
  EXPECT_TRUE(eager_req.done());

  std::vector<std::byte> big(128 * 1024);  // past eager_limit => rendezvous
  Request rndv_req;
  uni.rank(1).isend(kWorldComm, /*dst=*/2, /*tag=*/3, big.data(), big.size(),
                    rndv_req);

  // Rank 2 dies without ever progressing; only the survivors run. Every
  // outstanding operation must settle AND the purged tracker entries must
  // reach the sink — with zero hangs.
  uni.fabric().injector()->kill_rank(2);
  ASSERT_TRUE(drive(uni, {0, 1}, [&] {
    return recv_req.done() && rndv_req.done() && cap1.saw(ErrorCode::kPeerFailed);
  })) << "an operation toward the dead rank hung instead of failing typed";

  EXPECT_EQ(recv_req.error(), ErrorCode::kPeerFailed);
  EXPECT_EQ(rndv_req.error(), ErrorCode::kPeerFailed);
  EXPECT_TRUE(cap0.saw(ErrorCode::kPeerFailed));
  EXPECT_EQ(uni.rank(1).reliability()->in_flight(), 0u);  // corpse entries purged

  // Both survivors confirmed the death; a fresh send now fails fast.
  EXPECT_TRUE(uni.rank(0).peer_failed(2));
  EXPECT_TRUE(uni.rank(1).peer_failed(2));
  Request late;
  uni.rank(0).isend(kWorldComm, 2, /*tag=*/4, &out, sizeof out, late);
  EXPECT_TRUE(late.done());
  EXPECT_EQ(late.error(), ErrorCode::kPeerFailed);

  const spc::Snapshot total = uni.aggregate_counters();
  EXPECT_GE(total.get(Counter::kFtDeaths), 2u);  // one confirmation per survivor
  EXPECT_GT(total.get(Counter::kFtPeerFailedOps), 0u);

  // The observability snapshot carries the liveness verdicts, the failure
  // counts and the detection-latency histogram.
  std::ostringstream os;
  uni.dump_observability(os);
  const std::string snap = os.str();
  EXPECT_NE(snap.find("\"dead\""), std::string::npos);
  EXPECT_NE(snap.find("\"deaths\": 1"), std::string::npos);
  EXPECT_NE(snap.find("detection_latency_ms_hist"), std::string::npos);
  EXPECT_NE(snap.find("FtPeerFailedOps"), std::string::npos);

  std::uint64_t hist_total = 0;
  for (const std::uint64_t b : uni.rank(0).failure_detector()->latency_hist()) {
    hist_total += b;
  }
  EXPECT_EQ(hist_total, 1u);  // exactly one confirmation recorded on rank 0
}

TEST(Ft, BlockingCollectivesUnblockTyped) {
  Universe uni(ft_config(3));
  uni.fabric().injector()->kill_rank(2);

  // Every survivor's barrier must return a typed failure instead of
  // spinning forever on a partner that will never arrive.
  ErrorCode rc1 = ErrorCode::kOk;
  std::thread t1([&] { rc1 = uni.rank(1).world().barrier_checked(); });
  const ErrorCode rc0 = uni.rank(0).world().barrier_checked();
  t1.join();
  EXPECT_NE(rc0, ErrorCode::kOk);
  EXPECT_NE(rc1, ErrorCode::kOk);

  // Same contract through the coll layer (tree algorithms): the survivor
  // whose tree edge touches the corpse gets the typed code.
  std::uint32_t value = 9;
  const ErrorCode bc = coll::broadcast(uni.rank(0).world(), /*root=*/0, &value, 1);
  EXPECT_EQ(bc, ErrorCode::kPeerFailed);
}

TEST(Ft, RevokeFailsPostedAndFastFailsNewOps) {
  Universe uni(ft_config(2));
  const CommId id = uni.create_communicator();

  std::uint32_t in = 0;
  Request posted;
  uni.rank(1).irecv(id, /*src=*/0, /*tag=*/5, &in, sizeof in, posted);
  ASSERT_FALSE(posted.done());

  uni.revoke(id);
  EXPECT_TRUE(posted.done());
  EXPECT_EQ(posted.error(), ErrorCode::kCommRevoked);

  auto c0 = uni.rank(0).comm(id);
  EXPECT_TRUE(c0.revoked());
  const std::uint32_t out = 1;
  EXPECT_EQ(c0.send_checked(1, /*tag=*/5, &out, sizeof out), ErrorCode::kCommRevoked);
  EXPECT_EQ(c0.barrier_checked(), ErrorCode::kCommRevoked);
  uni.revoke(id);  // idempotent

  EXPECT_GT(uni.aggregate_counters().get(Counter::kFtRevokedOps), 0u);
}

TEST(Ft, ShrinkYieldsWorkingCommunicator) {
  // Roomier knobs than the other kill tests: the cross-thread phase below
  // has windows where only one survivor is scheduled (thread spawn on a
  // sanitizer build can take milliseconds), and a live peer must never be
  // suspected to death while its thread is still being scheduled.
  Config cfg = ft_config(3);
  cfg.ft_heartbeat_ns = 1'000'000;  // 1 ms
  cfg.ft_suspect_ns = 25'000'000;   // 25 ms of silence before suspicion
  cfg.ft_strikes = 3;
  Universe uni(cfg);
  uni.fabric().injector()->kill_rank(2);
  ASSERT_TRUE(drive(uni, {0, 1}, [&] {
    return uni.rank(0).peer_failed(2) && uni.rank(1).peer_failed(2);
  }));

  const std::vector<int> alive = uni.survivors();
  ASSERT_EQ(alive, (std::vector<int>{0, 1}));
  const CommId small = uni.shrink(kWorldComm);

  // Dense group-local numbering on the replacement communicator.
  auto c0 = uni.rank(0).comm(small);
  auto c1 = uni.rank(1).comm(small);
  EXPECT_EQ(c0.rank(), 0);
  EXPECT_EQ(c1.rank(), 1);
  EXPECT_EQ(c0.size(), 2);
  EXPECT_EQ(c1.size(), 2);
  EXPECT_FALSE(c0.revoked());
  auto world0 = uni.rank(0).world();
  EXPECT_TRUE(world0.revoked());  // shrink revoked the old communicator

  // The survivors talk (group-local addressing) and synchronize on it.
  ErrorCode recv_rc = ErrorCode::kOk;
  ErrorCode bar1 = ErrorCode::kPeerFailed;
  Status st{};
  std::uint32_t got = 0;
  std::thread t1([&] {
    recv_rc = c1.recv_checked(/*src=*/0, /*tag=*/6, &got, sizeof got, &st);
    bar1 = c1.barrier_checked();
  });
  const std::uint32_t sent = 0xfeedu;
  const ErrorCode send_rc = c0.send_checked(/*dst=*/1, /*tag=*/6, &sent, sizeof sent);
  const ErrorCode bar0 = c0.barrier_checked();
  t1.join();

  EXPECT_EQ(send_rc, ErrorCode::kOk);
  EXPECT_EQ(recv_rc, ErrorCode::kOk);
  EXPECT_EQ(got, sent);
  EXPECT_EQ(st.source, 0);  // group-local source in the returned status
  EXPECT_EQ(bar0, ErrorCode::kOk);
  EXPECT_EQ(bar1, ErrorCode::kOk);
}

TEST(Ft, RmaToDeadTargetFailsTypedAndFenceEscapes) {
  Universe uni(ft_config(2));
  ErrorCapture cap;
  uni.rank(0).set_error_sink(ErrorCapture::sink, &cap);

  uni.fabric().injector()->kill_rank(1);
  ASSERT_TRUE(drive(uni, {0}, [&] { return uni.rank(0).peer_failed(1); }));

  alignas(8) std::byte mem0[64] = {};
  alignas(8) std::byte mem1[64] = {};
  rma::WindowGroup group(uni, {{mem0, sizeof mem0}, {mem1, sizeof mem1}});
  rma::Window& w0 = group.window(0);

  const std::uint64_t payload = 0xabcdu;
  w0.put(1, 0, &payload, sizeof payload);
  EXPECT_EQ(w0.pending(), 0u);  // failed op never becomes a pending one
  std::uint64_t target_word = 0;
  std::memcpy(&target_word, mem1, sizeof target_word);
  EXPECT_EQ(target_word, 0u);  // no data moved into the corpse's region

  std::uint64_t back = ~0ULL;
  w0.get(1, 0, &back, sizeof back);
  EXPECT_EQ(back, ~0ULL);  // destination untouched on failure
  EXPECT_EQ(w0.fetch_add_u64(1, 0, 5), 0u);

  w0.flush_all();  // must return immediately: nothing pending
  EXPECT_TRUE(cap.saw(ErrorCode::kPeerFailed));
  const std::uint64_t before = uni.rank(0).counters().get(Counter::kFtPeerFailedOps);
  EXPECT_GE(before, 3u);

  // Active-target fence with a dead participant: the arrival spin escapes
  // typed instead of waiting for rank 1 forever.
  w0.fence();
  EXPECT_GT(uni.rank(0).counters().get(Counter::kFtPeerFailedOps), before);

  // A live (self) target still works.
  w0.put(0, 0, &payload, sizeof payload);
  w0.flush_all();
  std::uint64_t self_word = 0;
  std::memcpy(&self_word, mem0, sizeof self_word);
  EXPECT_EQ(self_word, payload);
}

TEST(Ft, MaxRetriesZeroFailsFastTyped) {
  // Fail-fast profile: no retransmits at all. On a fabric that eats every
  // packet the first sweep must fail the send typed — kRetryExhausted
  // through both the request and the error sink — instead of retrying.
  Config cfg;
  cfg.num_ranks = 2;
  cfg.faults.drop = 1.0;
  cfg.max_retries = 0;
  cfg.rto_ns = 50'000;
  Universe uni(cfg);
  ASSERT_TRUE(uni.config().reliable);

  ErrorCapture cap;
  uni.rank(0).set_error_sink(ErrorCapture::sink, &cap);

  // The send itself completes at injection (fire-and-forget); the typed
  // exhaustion is the sink's to deliver, on the very first sweep.
  const std::uint32_t out = 3;
  Request req;
  uni.rank(0).isend(kWorldComm, 1, /*tag=*/0, &out, sizeof out, req);
  ASSERT_TRUE(drive(uni, {0}, [&] { return cap.saw(ErrorCode::kRetryExhausted); }));
  EXPECT_EQ(uni.rank(0).reliability()->in_flight(), 0u);
  EXPECT_EQ(uni.aggregate_counters().get(Counter::kRetransmits), 0u);
  EXPECT_GT(uni.rank(0).counters().get(Counter::kReliabilityErrors), 0u);
}

}  // namespace
}  // namespace fairmpi
