// Tests of the one-sided (RMA-MT) performance model, encoding the paper's
// Figure 6/7 findings: dedicated instances scale almost perfectly with
// threads toward the wire peak; a single instance degrades; round-robin
// sits in between; serial vs concurrent progress barely matters; large
// messages pin every configuration at the bandwidth-limited peak.
#include "fairmpi/model/rmamt.hpp"

#include <gtest/gtest.h>

namespace fairmpi::model {
namespace {

using cri::Assignment;
using progress::ProgressMode;

RmaModelConfig cfg_haswell(int threads, int instances = 32) {
  RmaModelConfig cfg;
  cfg.threads = threads;
  cfg.instances = instances;
  return cfg;
}

TEST(RmaModel, Deterministic) {
  const RmaModelConfig cfg = cfg_haswell(8);
  const RmaModelResult a = run_rma_model(cfg);
  const RmaModelResult b = run_rma_model(cfg);
  EXPECT_EQ(a.ops, b.ops);
  EXPECT_EQ(a.events, b.events);
}

TEST(RmaModel, SingleThreadAnchorRate) {
  // Calibration anchor: ~1 M put/s for one thread, 1-byte puts, Haswell.
  const RmaModelResult r = run_rma_model(cfg_haswell(1));
  EXPECT_GT(r.msg_rate, 0.7e6);
  EXPECT_LT(r.msg_rate, 1.4e6);
}

TEST(RmaModel, Fig6_DedicatedScalesNearPerfectly) {
  const double r1 = run_rma_model(cfg_haswell(1)).msg_rate;
  const double r8 = run_rma_model(cfg_haswell(8)).msg_rate;
  const double r32 = run_rma_model(cfg_haswell(32)).msg_rate;
  EXPECT_GT(r8, 6.0 * r1);   // "scales almost perfectly"
  EXPECT_GT(r32, 20.0 * r1);
}

TEST(RmaModel, Fig6_DedicatedApproachesWirePeakAt32Threads) {
  const RmaModelResult r = run_rma_model(cfg_haswell(32));
  EXPECT_GT(r.msg_rate, 0.8 * r.peak_rate);
  EXPECT_LE(r.msg_rate, 1.02 * r.peak_rate);
}

TEST(RmaModel, Fig6_SingleInstanceDegradesWithThreads) {
  const double r1 = run_rma_model(cfg_haswell(1, 1)).msg_rate;
  const double r32 = run_rma_model(cfg_haswell(32, 1)).msg_rate;
  EXPECT_LT(r32, 0.5 * r1);  // lock contention collapse
}

TEST(RmaModel, Fig6_RoundRobinBelowDedicated) {
  for (const int threads : {2, 8, 32}) {
    RmaModelConfig rr = cfg_haswell(threads);
    rr.assignment = Assignment::kRoundRobin;
    const double ded = run_rma_model(cfg_haswell(threads)).msg_rate;
    const double rrr = run_rma_model(rr).msg_rate;
    EXPECT_LT(rrr, 0.95 * ded) << threads << " threads";
    // ... but far above the single-instance collapse.
    RmaModelConfig single = cfg_haswell(threads, 1);
    EXPECT_GT(rrr, run_rma_model(single).msg_rate) << threads << " threads";
  }
}

TEST(RmaModel, Fig6_SerialVsConcurrentProgressBarelyDiffer) {
  // §IV-F: "little benefit from concurrent progress in this configuration".
  RmaModelConfig serial = cfg_haswell(16);
  serial.progress = ProgressMode::kSerial;
  RmaModelConfig conc = serial;
  conc.progress = ProgressMode::kConcurrent;
  const double rs = run_rma_model(serial).msg_rate;
  const double rc = run_rma_model(conc).msg_rate;
  EXPECT_NEAR(rs, rc, 0.1 * rs);
}

TEST(RmaModel, Fig6_LargeMessagesPinnedAtBandwidthPeak) {
  for (const int threads : {1, 8, 32}) {
    RmaModelConfig cfg = cfg_haswell(threads);
    cfg.message_size = 16384;
    const RmaModelResult r = run_rma_model(cfg);
    EXPECT_GT(r.msg_rate, 0.85 * r.peak_rate) << threads << " threads";
    EXPECT_LE(r.msg_rate, 1.05 * r.peak_rate) << threads << " threads";
  }
}

TEST(RmaModel, PeakRateFollowsWireModel) {
  const CostModel C = trinitite_haswell();
  // Small messages: message-gap limited.
  EXPECT_NEAR(C.wire_peak_rate(1), 1e9 / C.wire_msg_gap_ns, 1.0);
  // 16 KiB: bandwidth limited.
  EXPECT_NEAR(C.wire_peak_rate(16384), 1e9 / (16384 * C.wire_byte_ns), 1.0);
  // Crossover is monotone non-increasing.
  EXPECT_GE(C.wire_peak_rate(128), C.wire_peak_rate(1024));
}

TEST(RmaModel, Fig7_KnlSlowerPerThreadButScalesFurther) {
  RmaModelConfig knl1 = cfg_haswell(1, 72);
  knl1.costs = trinitite_knl();
  const double k1 = run_rma_model(knl1).msg_rate;
  // KNL single-thread rate ~3x below Haswell.
  const double h1 = run_rma_model(cfg_haswell(1)).msg_rate;
  EXPECT_LT(k1, 0.5 * h1);
  // 64 threads on 72 instances: still scaling (dedicated, no sharing).
  RmaModelConfig knl64 = cfg_haswell(64, 72);
  knl64.costs = trinitite_knl();
  const double k64 = run_rma_model(knl64).msg_rate;
  EXPECT_GT(k64, 40.0 * k1);
}

TEST(RmaModel, OpsCountMatchesRateDefinition) {
  const RmaModelConfig cfg = cfg_haswell(4);
  const RmaModelResult r = run_rma_model(cfg);
  EXPECT_NEAR(r.msg_rate,
              static_cast<double>(r.ops) * 1e9 / static_cast<double>(cfg.measure_ns),
              1.0);
}

}  // namespace
}  // namespace fairmpi::model
