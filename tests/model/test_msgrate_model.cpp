// Tests of the two-sided performance model. Beyond mechanical correctness
// (determinism, conservation), these encode the *paper's qualitative
// findings* as assertions, so a regression in the model is a regression in
// the reproduction:
//   Fig 3a — more instances help the send path (~2x), single instance
//            degrades with threads;
//   Fig 3b — concurrent progress without concurrent matching hurts;
//   Fig 3c — comm-per-pair matching scales; dedicated best at mid counts;
//   Tab II — OOS% high on a shared communicator, ~0 with comm-per-pair +
//            dedicated; matching time inflates under concurrent progress;
//   Fig 4  — overtaking removes OOS and serial progress flattens;
//   Fig 5  — process mode is an order of magnitude above any thread mode.
#include "fairmpi/model/msgrate.hpp"

#include <gtest/gtest.h>

namespace fairmpi::model {
namespace {

using cri::Assignment;
using progress::ProgressMode;

MsgRateConfig base_cfg(int pairs, int instances) {
  MsgRateConfig cfg;
  cfg.pairs = pairs;
  cfg.instances = instances;
  cfg.assignment = Assignment::kDedicated;
  cfg.progress = ProgressMode::kSerial;
  return cfg;
}

TEST(MsgRateModel, DeterministicForSameSeed) {
  MsgRateConfig cfg = base_cfg(6, 4);
  const MsgRateResult a = run_msgrate(cfg);
  const MsgRateResult b = run_msgrate(cfg);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.out_of_sequence, b.out_of_sequence);
  EXPECT_EQ(a.match_time_ns, b.match_time_ns);
  EXPECT_EQ(a.events, b.events);
}

TEST(MsgRateModel, DifferentSeedsCloseButNotIdentical) {
  MsgRateConfig cfg = base_cfg(6, 4);
  const MsgRateResult a = run_msgrate(cfg);
  cfg.seed = 99;
  const MsgRateResult b = run_msgrate(cfg);
  EXPECT_NE(a.events, b.events);
  // The paper reports consistently small standard deviations.
  EXPECT_NEAR(a.msg_rate, b.msg_rate, 0.15 * a.msg_rate);
}

TEST(MsgRateModel, SinglePairAnchorRate) {
  // Calibration anchor: ~0.35-0.45 M msg/s for one pair on Alembert.
  const MsgRateResult r = run_msgrate(base_cfg(1, 1));
  EXPECT_GT(r.msg_rate, 0.30e6);
  EXPECT_LT(r.msg_rate, 0.50e6);
  EXPECT_EQ(r.out_of_sequence, 0u);  // single sender thread: in order
}

TEST(MsgRateModel, Fig3a_SingleInstanceDegradesWithThreads) {
  const double rate1 = run_msgrate(base_cfg(1, 1)).msg_rate;
  const double rate20 = run_msgrate(base_cfg(20, 1)).msg_rate;
  EXPECT_LT(rate20, 0.75 * rate1);  // red line falls
}

TEST(MsgRateModel, Fig3a_MoreInstancesRoughlyDouble) {
  const double single = run_msgrate(base_cfg(20, 1)).msg_rate;
  const double many = run_msgrate(base_cfg(20, 20)).msg_rate;
  EXPECT_GT(many, 1.5 * single);  // "performance gain of up to 100%"
  EXPECT_LT(many, 4.0 * single);
}

TEST(MsgRateModel, Fig3a_OosFractionHighOnSharedComm) {
  const MsgRateResult r = run_msgrate(base_cfg(20, 20));
  EXPECT_GT(r.oos_fraction, 0.6);  // paper: 83-90 %
}

TEST(MsgRateModel, Fig3b_ConcurrentProgressHurtsWithoutConcurrentMatching) {
  MsgRateConfig serial = base_cfg(20, 20);
  MsgRateConfig conc = serial;
  conc.progress = ProgressMode::kConcurrent;
  const MsgRateResult rs = run_msgrate(serial);
  const MsgRateResult rc = run_msgrate(conc);
  EXPECT_LT(rc.msg_rate, 0.85 * rs.msg_rate);
  // Per-message matching time inflates (paper: ~3x).
  const double per_msg_serial =
      static_cast<double>(rs.match_time_ns) / static_cast<double>(rs.delivered);
  const double per_msg_conc =
      static_cast<double>(rc.match_time_ns) / static_cast<double>(rc.delivered);
  EXPECT_GT(per_msg_conc, 1.7 * per_msg_serial);
}

TEST(MsgRateModel, Fig3c_ConcurrentMatchingScales) {
  MsgRateConfig cfg = base_cfg(14, 20);
  cfg.progress = ProgressMode::kConcurrent;
  cfg.comm_per_pair = true;
  const MsgRateResult r = run_msgrate(cfg);
  // Major increase over serial shared-comm matching (paper: ~10x base).
  const double base = run_msgrate(base_cfg(14, 1)).msg_rate;
  EXPECT_GT(r.msg_rate, 4.0 * base);
  // Dedicated + comm-per-pair: no out-of-sequence at all (Table II).
  EXPECT_EQ(r.out_of_sequence, 0u);
}

TEST(MsgRateModel, Fig3c_DedicatedBeatsRoundRobinAtMidThreadCounts) {
  MsgRateConfig ded = base_cfg(10, 20);
  ded.progress = ProgressMode::kConcurrent;
  ded.comm_per_pair = true;
  MsgRateConfig rr = ded;
  rr.assignment = Assignment::kRoundRobin;
  EXPECT_GT(run_msgrate(ded).msg_rate, 1.2 * run_msgrate(rr).msg_rate);
}

TEST(MsgRateModel, Fig4_OvertakingEliminatesOos) {
  MsgRateConfig cfg = base_cfg(10, 20);
  cfg.overtaking = true;
  cfg.any_tag = true;
  const MsgRateResult r = run_msgrate(cfg);
  EXPECT_EQ(r.out_of_sequence, 0u);
}

TEST(MsgRateModel, Fig4_OvertakingReducesMatchTime) {
  MsgRateConfig normal = base_cfg(10, 20);
  MsgRateConfig ovt = normal;
  ovt.overtaking = true;
  ovt.any_tag = true;
  const MsgRateResult rn = run_msgrate(normal);
  const MsgRateResult ro = run_msgrate(ovt);
  const double per_msg_normal =
      static_cast<double>(rn.match_time_ns) / static_cast<double>(rn.delivered);
  const double per_msg_ovt =
      static_cast<double>(ro.match_time_ns) / static_cast<double>(ro.delivered);
  EXPECT_LT(per_msg_ovt, 0.5 * per_msg_normal);
  EXPECT_GE(ro.msg_rate, 0.9 * rn.msg_rate);
}

TEST(MsgRateModel, Fig4_SerialProgressFlattens) {
  MsgRateConfig a = base_cfg(10, 20);
  a.overtaking = true;
  a.any_tag = true;
  MsgRateConfig b = base_cfg(20, 20);
  b.overtaking = true;
  b.any_tag = true;
  const double r10 = run_msgrate(a).msg_rate;
  const double r20 = run_msgrate(b).msg_rate;
  // Flat: serial extraction is the cap regardless of thread count.
  EXPECT_NEAR(r20, r10, 0.25 * r10);
}

TEST(MsgRateModel, Fig5_ProcessModeFarAboveThreadMode) {
  MsgRateConfig process = base_cfg(20, 1);
  process.process_mode = true;
  const double p = run_msgrate(process).msg_rate;
  const double t = run_msgrate(base_cfg(20, 1)).msg_rate;
  EXPECT_GT(p, 10.0 * t);  // the paper's "abysmal performance gap"
}

TEST(MsgRateModel, Fig5_ProcessModeScalesNearLinearly) {
  MsgRateConfig one = base_cfg(1, 1);
  one.process_mode = true;
  MsgRateConfig twenty = base_cfg(20, 1);
  twenty.process_mode = true;
  const double r1 = run_msgrate(one).msg_rate;
  const double r20 = run_msgrate(twenty).msg_rate;
  EXPECT_GT(r20, 12.0 * r1);
}

TEST(MsgRateModel, Fig5_GlobalLockBaselineIsPoorAndFlat) {
  MsgRateConfig g1 = base_cfg(1, 1);
  g1.global_lock = true;
  MsgRateConfig g20 = base_cfg(20, 1);
  g20.global_lock = true;
  const double r1 = run_msgrate(g1).msg_rate;
  const double r20 = run_msgrate(g20).msg_rate;
  EXPECT_LT(r20, r1);  // degrades, like every stock threaded MPI in Fig. 5
  // And no better than the fairmpi base design.
  EXPECT_LT(r20, 1.2 * run_msgrate(base_cfg(20, 1)).msg_rate);
}

TEST(MsgRateModel, Fig5_BestThreadedStillBelowProcessMode) {
  MsgRateConfig best = base_cfg(20, 20);
  best.progress = ProgressMode::kConcurrent;
  best.comm_per_pair = true;
  MsgRateConfig process = base_cfg(20, 1);
  process.process_mode = true;
  EXPECT_LT(run_msgrate(best).msg_rate, run_msgrate(process).msg_rate);
}

TEST(MsgRateModel, SentAndDeliveredBalanceUnderBackpressure) {
  // With small RX rings the sender is paced by extraction, so deliveries
  // track sends within the bounded in-flight backlog.
  MsgRateConfig cfg = base_cfg(4, 4);
  cfg.ring_entries = 128;
  const MsgRateResult r = run_msgrate(cfg);
  EXPECT_NEAR(static_cast<double>(r.delivered), static_cast<double>(r.sent),
              0.2 * static_cast<double>(r.sent));
  EXPECT_GT(r.delivered, 0u);
}

TEST(MsgRateModel, InvalidConfigAborts) {
  MsgRateConfig cfg = base_cfg(1, 1);
  cfg.process_mode = true;
  cfg.global_lock = true;
  EXPECT_DEATH(run_msgrate(cfg), "exclusive");
}

}  // namespace
}  // namespace fairmpi::model
