// Submission-ring property tests (DESIGN.md §5f): multi-producer wraparound
// with exactly-once consumption, per-producer publish ordering, doorbell
// batching, and the full-ring bounce. The stress tests run the production
// protocol end to end — stack packet + ticket per submission, producers
// blocked until their ticket resolves — so TSan checks the [P3]/[C1]/[T1]
// edges exactly as inject() exercises them.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "fairmpi/fabric/submit_ring.hpp"

namespace fairmpi::fabric {
namespace {

TEST(SubmitRing, CapacityRoundsUpToPow2) {
  EXPECT_EQ(SubmitRing(5).capacity(), 8u);
  EXPECT_EQ(SubmitRing(8).capacity(), 8u);
  EXPECT_EQ(SubmitRing(0).capacity(), 2u);
}

TEST(SubmitRing, FullRingBouncesWithoutConsumingDescriptor) {
  SubmitRing ring(4);
  Packet pkt;
  SubmitTicket ticket;
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(ring.try_push({&pkt, &ticket, i}).ok);
  }
  const SubmitPushOutcome full = ring.try_push({&pkt, &ticket, 99});
  EXPECT_FALSE(full.ok);
  // A bounced push leaves the ring intact: draining yields exactly the
  // four accepted descriptors, in claim order.
  std::vector<int> dsts;
  ring.drain([&](const SubmitDesc& d) {
    dsts.push_back(d.dst);
    d.ticket->status.store(static_cast<std::uint8_t>(SubmitStatus::kInjected),
                           std::memory_order_release);
  });
  EXPECT_EQ(dsts, (std::vector<int>{0, 1, 2, 3}));
}

TEST(SubmitRing, DoorbellRingsOncePerBatchAndClearsOnDrain) {
  SubmitRing ring(64);
  Packet pkt;
  SubmitTicket ticket;
  int doorbells = 0;
  for (std::uint64_t i = 0; i < 2 * SubmitRing::kDoorbellBatch; ++i) {
    EXPECT_FALSE(ring.doorbell_rung() && i < SubmitRing::kDoorbellBatch - 1)
        << "bell rang before the first batch completed";
    if (ring.try_push({&pkt, &ticket, 0}).rang_doorbell) ++doorbells;
  }
  EXPECT_EQ(doorbells, 2);
  EXPECT_TRUE(ring.doorbell_rung());
  ring.drain([](const SubmitDesc& d) {
    d.ticket->status.store(static_cast<std::uint8_t>(SubmitStatus::kInjected),
                           std::memory_order_release);
  });
  EXPECT_FALSE(ring.doorbell_rung());
}

TEST(SubmitRing, ExplicitDoorbellIsIdempotent) {
  SubmitRing ring(8);
  ring.ring_doorbell();
  ring.ring_doorbell();
  EXPECT_TRUE(ring.doorbell_rung());
  ring.drain([](const SubmitDesc&) {});
  EXPECT_FALSE(ring.doorbell_rung());
}

/// The property test: P producers push N submissions each through a ring
/// far smaller than P*N (forced wraparound), running the full production
/// protocol — each producer reuses one stack packet + ticket and spins
/// until the consumer resolves it. The consumer checks exactly-once
/// consumption and per-producer FIFO (slot claim order is program order
/// within one producer, so ids must arrive ascending per producer).
TEST(SubmitRing, StressManyProducersWraparoundExactlyOnceInOrder) {
  constexpr int kProducers = 4;
  constexpr std::uint64_t kPerProducer = 20'000;
  SubmitRing ring(8);  // tiny: every producer laps the ring thousands of times

  std::atomic<std::uint64_t> consumed{0};
  std::atomic<bool> stop{false};
  // Single-consumer log, touched only by the consumer thread.
  std::vector<std::uint64_t> next_expected(kProducers, 0);
  std::atomic<std::uint64_t> order_violations{0};
  std::atomic<std::uint64_t> rejected{0};

  std::thread consumer([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const std::size_t n = ring.drain([&](const SubmitDesc& d) {
        // [C1] made the producer's packet visible: imm carries
        // (producer << 32 | i), written before try_push.
        const std::uint64_t imm = d.pkt->hdr.imm;
        const auto producer = static_cast<std::size_t>(imm >> 32);
        const std::uint64_t i = imm & 0xffffffffu;
        if (producer >= kProducers || next_expected[producer] != i) {
          order_violations.fetch_add(1, std::memory_order_relaxed);
        } else {
          ++next_expected[producer];
        }
        d.ticket->status.store(static_cast<std::uint8_t>(SubmitStatus::kInjected),
                               std::memory_order_release);
      });
      consumed.fetch_add(n, std::memory_order_relaxed);
      if (n == 0) std::this_thread::yield();
    }
  });

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      Packet pkt;  // reused across submissions, exactly like eager_send
      SubmitTicket ticket;
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        pkt.hdr.imm = (static_cast<std::uint64_t>(p) << 32) | i;
        ticket.status.store(static_cast<std::uint8_t>(SubmitStatus::kPending),
                            std::memory_order_relaxed);
        while (!ring.try_push({&pkt, &ticket, p}).ok) {
          rejected.fetch_add(1, std::memory_order_relaxed);
          std::this_thread::yield();  // ring full: consumer will catch up
        }
        while (ticket.load_acquire() == SubmitStatus::kPending) {
          std::this_thread::yield();
        }
        // Ticket resolved: pkt and ticket are ours again ([T1]).
      }
    });
  }
  for (auto& t : producers) t.join();
  // Producers only return once every ticket resolved, so everything they
  // pushed has been consumed; stop the consumer and tally.
  stop.store(true, std::memory_order_release);
  consumer.join();

  EXPECT_EQ(consumed.load(), kProducers * kPerProducer);
  EXPECT_EQ(order_violations.load(), 0u);
  for (int p = 0; p < kProducers; ++p) {
    EXPECT_EQ(next_expected[static_cast<std::size_t>(p)], kPerProducer) << "producer " << p;
  }
}

/// Producers with interleaved claims never see each other's half-written
/// descriptors: each descriptor's dst must equal the producer id encoded in
/// the packet it points at (both written between claim and publish).
TEST(SubmitRing, PublishedDescriptorsAreInternallyConsistent) {
  constexpr int kProducers = 3;
  constexpr std::uint64_t kPerProducer = 10'000;
  SubmitRing ring(16);
  std::atomic<std::uint64_t> mismatches{0};
  std::atomic<std::uint64_t> consumed{0};
  std::atomic<bool> stop{false};

  std::thread consumer([&] {
    while (!stop.load(std::memory_order_acquire)) {
      consumed.fetch_add(ring.drain([&](const SubmitDesc& d) {
        if (static_cast<std::uint64_t>(d.dst) != (d.pkt->hdr.imm >> 32)) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
        d.ticket->status.store(static_cast<std::uint8_t>(SubmitStatus::kInjected),
                               std::memory_order_release);
      }), std::memory_order_relaxed);
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      Packet pkt;
      SubmitTicket ticket;
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        pkt.hdr.imm = (static_cast<std::uint64_t>(p) << 32) | i;
        ticket.status.store(static_cast<std::uint8_t>(SubmitStatus::kPending),
                            std::memory_order_relaxed);
        while (!ring.try_push({&pkt, &ticket, p}).ok) std::this_thread::yield();
        while (ticket.load_acquire() == SubmitStatus::kPending) std::this_thread::yield();
      }
    });
  }
  for (auto& t : producers) t.join();
  stop.store(true, std::memory_order_release);
  consumer.join();

  EXPECT_EQ(consumed.load(), kProducers * kPerProducer);
  EXPECT_EQ(mismatches.load(), 0u);
}

}  // namespace
}  // namespace fairmpi::fabric
