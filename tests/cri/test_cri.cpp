#include "fairmpi/cri/cri.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

namespace fairmpi::cri {
namespace {

TEST(CriPool, OneInstancePerContext) {
  fabric::Fabric fabric({4, 4});
  CriPool pool(fabric, 0, Assignment::kRoundRobin);
  EXPECT_EQ(pool.size(), 4);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(pool.instance(i).id(), i);
    EXPECT_EQ(pool.instance(i).context().index(), i);
  }
}

TEST(CriPool, RoundRobinIsCircular) {
  fabric::Fabric fabric({3});
  CriPool pool(fabric, 0, Assignment::kRoundRobin);
  // Alg. 1: first-come-first-served circular hand-out.
  EXPECT_EQ(pool.next_round_robin(), 0);
  EXPECT_EQ(pool.next_round_robin(), 1);
  EXPECT_EQ(pool.next_round_robin(), 2);
  EXPECT_EQ(pool.next_round_robin(), 0);
}

TEST(CriPool, RoundRobinSharedAcrossThreads) {
  fabric::Fabric fabric({4});
  CriPool pool(fabric, 0, Assignment::kRoundRobin);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 1000;
  std::vector<int> counts(4, 0);
  std::atomic<int> total[4] = {};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        total[pool.next_round_robin()].fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : threads) t.join();
  // Perfect balance: the counter is global, so each instance gets exactly
  // (threads*per_thread)/4 assignments.
  for (int i = 0; i < 4; ++i) EXPECT_EQ(total[i].load(), kThreads * kPerThread / 4);
}

TEST(CriPool, DedicatedIsStickyPerThread) {
  fabric::Fabric fabric({4});
  CriPool pool(fabric, 0, Assignment::kDedicated);
  const int first = pool.dedicated_id();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(pool.dedicated_id(), first);
}

TEST(CriPool, DedicatedDistinctWhileInstancesAvailable) {
  fabric::Fabric fabric({4});
  CriPool pool(fabric, 0, Assignment::kDedicated);
  constexpr int kThreads = 4;
  std::vector<int> ids(kThreads, -1);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const int id = pool.dedicated_id();
      // Sticky within the thread.
      for (int i = 0; i < 10; ++i) ASSERT_EQ(pool.dedicated_id(), id);
      ids[static_cast<std::size_t>(t)] = id;
    });
  }
  for (auto& t : threads) t.join();
  // 4 threads, 4 instances, first-touch round-robin: all distinct.
  std::set<int> unique(ids.begin(), ids.end());
  EXPECT_EQ(unique.size(), static_cast<std::size_t>(kThreads));
}

TEST(CriPool, DedicatedWrapsWhenOversubscribed) {
  fabric::Fabric fabric({2});
  CriPool pool(fabric, 0, Assignment::kDedicated);
  constexpr int kThreads = 6;
  std::vector<int> ids(kThreads, -1);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] { ids[static_cast<std::size_t>(t)] = pool.dedicated_id(); });
  }
  for (auto& t : threads) t.join();
  int in_range = 0;
  for (const int id : ids) in_range += (id == 0 || id == 1);
  EXPECT_EQ(in_range, kThreads);
}

TEST(CriPool, TwoPoolsGetIndependentDedicatedBindings) {
  fabric::Fabric fabric({3, 3});
  CriPool pool_a(fabric, 0, Assignment::kDedicated);
  CriPool pool_b(fabric, 1, Assignment::kDedicated);
  // Same thread can be bound to different instance ids in different pools;
  // bindings must not interfere.
  const int a = pool_a.dedicated_id();
  const int b = pool_b.dedicated_id();
  EXPECT_EQ(pool_a.dedicated_id(), a);
  EXPECT_EQ(pool_b.dedicated_id(), b);
}

TEST(CriPool, IdForThreadFollowsPolicy) {
  fabric::Fabric fabric({3});
  CriPool rr(fabric, 0, Assignment::kRoundRobin);
  EXPECT_NE(rr.id_for_thread(), rr.id_for_thread());  // 0 then 1
  CriPool ded(fabric, 0, Assignment::kDedicated);
  EXPECT_EQ(ded.id_for_thread(), ded.id_for_thread());
}

TEST(CriPool, EndpointsReachEveryPeer) {
  fabric::Fabric fabric({2, 2, 2});
  CriPool pool(fabric, 1, Assignment::kRoundRobin);
  for (int peer = 0; peer < 3; ++peer) {
    EXPECT_EQ(pool.instance(0).endpoint(peer).dst_rank(), peer);
  }
}

TEST(CriPool, AssignmentNames) {
  EXPECT_STREQ(assignment_name(Assignment::kRoundRobin), "round-robin");
  EXPECT_STREQ(assignment_name(Assignment::kDedicated), "dedicated");
}

}  // namespace
}  // namespace fairmpi::cri
