// Failure tolerance of the §5i collective algorithms: a rank killed
// mid-tree (or mid-ring) must settle EVERY surviving participant with a
// typed code — no survivor may hang waiting on a corpse, and none may
// return kOk for a collective that could not have completed. Suite name
// carries "Coll" for the CI regexes; the ft-profile chaos job repeats
// these under seeded kills.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "fairmpi/coll/coll.hpp"
#include "fairmpi/common/timing.hpp"

namespace fairmpi {
namespace {

using common::ErrorCode;
using spc::Counter;

Config ft_config(int ranks) {
  Config cfg;
  cfg.num_ranks = ranks;
  cfg.ft_enabled = true;
  cfg.reliable = true;
  cfg.ft_heartbeat_ns = 50'000;
  cfg.ft_suspect_ns = 200'000;
  cfg.ft_strikes = 2;
  // Deadline backstop (§5h): a survivor whose tree edge does NOT touch the
  // corpse (e.g. a leaf whose parent bailed out before forwarding) has no
  // failed peer to propagate from — the per-collective deadline is what
  // settles it typed instead of hanging.
  cfg.op_deadline_ns = 100'000'000;
  return cfg;
}

/// Run `body(comm, rank)` on one thread per SURVIVING rank after killing
/// `victim` pre-entry; collect every survivor's returned code.
template <typename Body>
std::vector<ErrorCode> survivors_run(int n, int victim, Body body) {
  Universe uni(ft_config(n));
  uni.fabric().injector()->kill_rank(victim);
  std::vector<ErrorCode> codes(static_cast<std::size_t>(n), ErrorCode::kOk);
  std::vector<std::thread> threads;
  for (int r = 0; r < n; ++r) {
    if (r == victim) continue;
    threads.emplace_back([&, r] {
      codes[static_cast<std::size_t>(r)] = body(uni.rank(r).world(), r);
    });
  }
  for (auto& t : threads) t.join();
  return codes;
}

TEST(CollFt, TreeAllreduceMidTreeKillSettlesAllSurvivorsTyped) {
  // Victim 2 sits mid-tree at n=5 (it both combines and forwards). An
  // allreduce needs every rank's contribution, so no survivor can complete:
  // ranks adjacent to the corpse fail via peer-failed propagation, the
  // rest via the per-collective deadline — every one settles typed, none
  // hangs.
  const auto codes = survivors_run(5, 2, [](Communicator comm, int) {
    std::int64_t mine = 3, sum = 0;
    return coll::allreduce(comm, &mine, &sum, 1, coll::ReduceOp::kSum);
  });
  for (int r = 0; r < 5; ++r) {
    if (r == 2) continue;
    EXPECT_NE(codes[static_cast<std::size_t>(r)], ErrorCode::kOk) << "rank " << r;
  }
}

TEST(CollFt, RsagAllreduceRingKillSettlesAllSurvivorsTyped) {
  // The ring touches every rank every step, so a corpse anywhere breaks
  // every survivor's chain within one lap.
  Universe uni(ft_config(4));
  Config check = uni.config();
  ASSERT_TRUE(check.ft_enabled);
  uni.fabric().injector()->kill_rank(3);
  std::vector<ErrorCode> codes(4, ErrorCode::kOk);
  std::vector<std::thread> threads;
  for (int r = 0; r < 3; ++r) {
    threads.emplace_back([&, r] {
      // Large enough to clear coll_rsag_min_bytes: the ring path.
      std::vector<std::int64_t> in(1024, r), out(1024);
      codes[static_cast<std::size_t>(r)] = coll::allreduce(
          uni.rank(r).world(), in.data(), out.data(), in.size(), coll::ReduceOp::kSum);
    });
  }
  for (auto& t : threads) t.join();
  for (int r = 0; r < 3; ++r) {
    EXPECT_NE(codes[static_cast<std::size_t>(r)], ErrorCode::kOk) << "rank " << r;
  }
}

TEST(CollFt, RevokeMidCollectiveSettlesTypedAndLaneIsReleased) {
  // Revocation during a collective must surface kCommRevoked on every
  // participant AND release the tag lane on the error path (LaneScope /
  // Ctx cleanup) — a leaked lane would strand later collectives. No
  // heartbeat detector here: the root deliberately stalls past the revoke,
  // and aggressive ft timeouts would declare it dead first (kPeerFailed
  // would mask the code under test).
  Config cfg;
  cfg.num_ranks = 3;
  cfg.op_deadline_ns = 100'000'000;  // no-hang backstop
  Universe uni(cfg);
  const CommId id = uni.create_communicator();
  std::vector<ErrorCode> codes(3, ErrorCode::kOk);
  std::vector<std::thread> threads;
  for (int r = 0; r < 3; ++r) {
    threads.emplace_back([&, r] {
      // The root holds back past the revoke, so ranks 1/2 are parked on
      // posted tree receives when it lands (revoke fails posted requests);
      // the root then enters a revoked communicator and fast-fails.
      if (r == 0) std::this_thread::sleep_for(std::chrono::milliseconds(10));
      std::vector<std::uint32_t> data(64, 5);
      codes[static_cast<std::size_t>(r)] =
          coll::broadcast(uni.rank(r).comm(id), /*root=*/0, data.data(), data.size());
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  uni.revoke(id);
  for (auto& t : threads) t.join();
  for (const ErrorCode rc : codes) EXPECT_EQ(rc, ErrorCode::kCommRevoked);
  // Every lane freed: a full complement of handles is acquirable with no
  // blocking (all-lanes-busy would spin in acquire_lane).
  for (int r = 0; r < 3; ++r) {
    Communicator comm = uni.rank(r).comm(id);
    std::vector<coll::CollHandle> handles;
    handles.reserve(static_cast<std::size_t>(coll::kMaxCollLanes));
    for (int i = 0; i < coll::kMaxCollLanes; ++i) handles.emplace_back(comm);
    EXPECT_EQ(handles.back().lane(), coll::kMaxCollLanes - 1);
  }
}

TEST(CollFt, ShrunkCommunicatorRunsCollectivesClean) {
  // Recovery path: after kill -> revoke -> shrink, the survivor
  // communicator must run collectives normally (group-local roots and
  // ring neighbours must not trip over the hole in the global ids).
  // Generous detector timeouts: this test needs NO false positives among
  // the survivors, and the aggressive ft_config timings suspect live
  // ranks to death under sanitizer slowdown (cf. test_ft.cpp's
  // no-false-positives configuration).
  Config cfg = ft_config(4);
  cfg.ft_heartbeat_ns = 1'000'000;
  cfg.ft_suspect_ns = 50'000'000;
  cfg.ft_strikes = 3;
  Universe uni(cfg);
  uni.fabric().injector()->kill_rank(1);
  uni.revoke(kWorldComm);
  const CommId shrunk = uni.shrink(kWorldComm);
  std::vector<std::thread> threads;
  for (const int r : {0, 2, 3}) {
    threads.emplace_back([&, r] {
      Communicator comm = uni.rank(r).comm(shrunk);
      ASSERT_EQ(comm.size(), 3);
      std::int64_t mine = r, sum = 0;
      ASSERT_EQ(coll::allreduce(comm, &mine, &sum, 1, coll::ReduceOp::kSum),
                ErrorCode::kOk);
      ASSERT_EQ(sum, 0 + 2 + 3);
      std::vector<std::uint32_t> big(2048, comm.rank() == 0 ? 77u : 0u);
      ASSERT_EQ(coll::broadcast(comm, /*root=*/0, big.data(), big.size()),
                ErrorCode::kOk);
      for (const auto v : big) ASSERT_EQ(v, 77u);
    });
  }
  for (auto& t : threads) t.join();
}

}  // namespace
}  // namespace fairmpi
