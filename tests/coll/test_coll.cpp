// Collective-operations tests: correctness across rank counts (including
// non-powers of two, where binomial trees earn their keep), roots,
// datatypes, and repetition (stream reuse / tag hygiene).
#include "fairmpi/coll/coll.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <thread>
#include <vector>

namespace fairmpi {
namespace {

using spc::Counter;

/// Run `body(comm, rank)` on one thread per rank of a fresh universe.
template <typename Body>
void run_ranks(int n, Body body, Config cfg = {}) {
  cfg.num_ranks = n;
  Universe uni(cfg);
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) {
    threads.emplace_back([&, r] { body(uni.rank(r).world(), r); });
  }
  for (auto& t : threads) t.join();
}

class CollRankCounts : public ::testing::TestWithParam<int> {};

TEST_P(CollRankCounts, BroadcastFromEveryRoot) {
  const int n = GetParam();
  run_ranks(n, [n](Communicator comm, int rank) {
    for (int root = 0; root < n; ++root) {
      std::vector<int> data(5, rank == root ? root * 100 + 7 : -1);
      coll::broadcast(comm, root, data.data(), data.size());
      for (const int v : data) ASSERT_EQ(v, root * 100 + 7) << "root " << root;
      comm.barrier();
    }
  });
}

TEST_P(CollRankCounts, ReduceSumAtEveryRoot) {
  const int n = GetParam();
  run_ranks(n, [n](Communicator comm, int rank) {
    for (int root = 0; root < n; ++root) {
      const std::vector<std::int64_t> in{rank, rank * 2, 1};
      std::vector<std::int64_t> out(3, -999);
      coll::reduce(comm, root, in.data(), rank == root ? out.data() : nullptr, in.size(),
                   coll::ReduceOp::kSum);
      if (rank == root) {
        const std::int64_t sum = static_cast<std::int64_t>(n) * (n - 1) / 2;
        ASSERT_EQ(out[0], sum);
        ASSERT_EQ(out[1], 2 * sum);
        ASSERT_EQ(out[2], n);
      }
      comm.barrier();
    }
  });
}

TEST_P(CollRankCounts, AllreduceMinMax) {
  const int n = GetParam();
  run_ranks(n, [n](Communicator comm, int rank) {
    const double in[2] = {static_cast<double>(rank), static_cast<double>(-rank)};
    double out[2] = {0, 0};
    coll::allreduce(comm, in, out, 2, coll::ReduceOp::kMax);
    ASSERT_EQ(out[0], n - 1);
    ASSERT_EQ(out[1], 0.0);
    comm.barrier();
    coll::allreduce(comm, in, out, 2, coll::ReduceOp::kMin);
    ASSERT_EQ(out[0], 0.0);
    ASSERT_EQ(out[1], -(n - 1));
  });
}

TEST_P(CollRankCounts, GatherThenScatterRoundTrip) {
  const int n = GetParam();
  run_ranks(n, [n](Communicator comm, int rank) {
    constexpr std::size_t kCount = 4;
    std::vector<std::uint32_t> mine(kCount);
    for (std::size_t i = 0; i < kCount; ++i) {
      mine[i] = static_cast<std::uint32_t>(rank * 1000 + static_cast<int>(i));
    }
    std::vector<std::uint32_t> all(kCount * static_cast<std::size_t>(n), 0);
    coll::gather(comm, /*root=*/0, mine.data(), kCount, rank == 0 ? all.data() : nullptr);
    if (rank == 0) {
      for (int r = 0; r < n; ++r) {
        for (std::size_t i = 0; i < kCount; ++i) {
          ASSERT_EQ(all[static_cast<std::size_t>(r) * kCount + i],
                    static_cast<std::uint32_t>(r * 1000 + static_cast<int>(i)));
        }
      }
      // Rotate blocks by one rank and scatter back.
      std::vector<std::uint32_t> rotated(all.size());
      for (int r = 0; r < n; ++r) {
        std::copy_n(all.begin() + static_cast<std::ptrdiff_t>(
                                      (static_cast<std::size_t>((r + 1) % n)) * kCount),
                    kCount,
                    rotated.begin() + static_cast<std::ptrdiff_t>(
                                          static_cast<std::size_t>(r) * kCount));
      }
      all = rotated;
    }
    std::vector<std::uint32_t> back(kCount, 0);
    coll::scatter(comm, 0, rank == 0 ? all.data() : nullptr, back.data(), kCount);
    const int expect_rank = (rank + 1) % n;
    for (std::size_t i = 0; i < kCount; ++i) {
      ASSERT_EQ(back[i], static_cast<std::uint32_t>(expect_rank * 1000 +
                                                    static_cast<int>(i)));
    }
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, CollRankCounts,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8));

TEST(Coll, RepeatedAllreduceIsStable) {
  run_ranks(4, [](Communicator comm, int rank) {
    std::int64_t value = rank + 1;
    for (int iter = 0; iter < 50; ++iter) {
      std::int64_t sum = 0;
      coll::allreduce(comm, &value, &sum, 1, coll::ReduceOp::kSum);
      ASSERT_EQ(sum % 10, 0) << "iter " << iter;  // 1+2+3+4 = 10 scaled
      value = sum / 4 + rank + 1 - (10 / 4);      // keep values bounded, per-rank distinct
      value = rank + 1;                           // reset: sum stays 10
    }
  });
}

TEST(Coll, BroadcastLargePayloadUsesRendezvous) {
  Config cfg;
  cfg.eager_limit = 2048;  // force fragments through the collective path
  run_ranks(
      4,
      [](Communicator comm, int rank) {
        std::vector<std::uint64_t> data(8192, rank == 2 ? 0xfeedface : 0);
        coll::broadcast(comm, /*root=*/2, data.data(), data.size());
        for (const auto v : data) ASSERT_EQ(v, 0xfeedfaceu);
      },
      cfg);
}

TEST(Coll, ConcurrentCollectivesOnDistinctCommunicators) {
  // Two thread groups run independent allreduce streams on separate
  // communicators of the same universe — the §III-F isolation trick.
  Config cfg;
  cfg.num_ranks = 3;
  cfg.num_instances = 2;
  cfg.progress_mode = progress::ProgressMode::kConcurrent;
  Universe uni(cfg);
  const CommId extra = uni.create_communicator();
  std::vector<std::thread> threads;
  for (int r = 0; r < 3; ++r) {
    for (const CommId comm_id : {kWorldComm, extra}) {
      threads.emplace_back([&, r, comm_id] {
        Communicator comm = uni.rank(r).comm(comm_id);
        const std::int64_t mine = comm_id == kWorldComm ? r : 10 * r;
        for (int iter = 0; iter < 30; ++iter) {
          std::int64_t sum = 0;
          coll::allreduce(comm, &mine, &sum, 1, coll::ReduceOp::kSum);
          ASSERT_EQ(sum, comm_id == kWorldComm ? 3 : 30);
        }
      });
    }
  }
  for (auto& t : threads) t.join();
}

TEST(Coll, SingleRankDegenerateCases) {
  run_ranks(1, [](Communicator comm, int) {
    int x = 41;
    coll::broadcast(comm, 0, &x, 1);
    EXPECT_EQ(x, 41);
    int sum = 0;
    coll::reduce(comm, 0, &x, &sum, 1, coll::ReduceOp::kSum);
    EXPECT_EQ(sum, 41);
    int all = 0;
    coll::allreduce(comm, &x, &all, 1, coll::ReduceOp::kMax);
    EXPECT_EQ(all, 41);
    int gathered = 0;
    coll::gather(comm, 0, &x, 1, &gathered);
    EXPECT_EQ(gathered, 41);
    int scattered = 0;
    coll::scatter(comm, 0, &gathered, &scattered, 1);
    EXPECT_EQ(scattered, 41);
  });
}

TEST(Coll, RsagAllreduceLargePayload) {
  // Above coll_rsag_min_bytes the allreduce runs the ring reduce-scatter +
  // allgather; exercise both divisible and ragged chunkings (count % n != 0)
  // across non-power-of-two rank counts.
  for (const int n : {2, 3, 4, 5, 8}) {
    Config cfg;
    cfg.coll_rsag_min_bytes = 256;  // force the ring even for modest payloads
    run_ranks(
        n,
        [n](Communicator comm, int rank) {
          for (const std::size_t count : {64u, 67u, 1024u}) {
            std::vector<std::int64_t> in(count), out(count, -1);
            for (std::size_t i = 0; i < count; ++i) {
              in[i] = static_cast<std::int64_t>(i) + rank;
            }
            ASSERT_EQ(coll::allreduce(comm, in.data(), out.data(), count,
                                      coll::ReduceOp::kSum),
                      common::ErrorCode::kOk);
            const std::int64_t ranksum = static_cast<std::int64_t>(n) * (n - 1) / 2;
            for (std::size_t i = 0; i < count; ++i) {
              ASSERT_EQ(out[i], static_cast<std::int64_t>(i) * n + ranksum)
                  << "n=" << n << " count=" << count << " i=" << i;
            }
            comm.barrier();
          }
        },
        cfg);
  }
  // SPC: confirm the dispatch actually took the ring path.
  Config cfg;
  cfg.num_ranks = 4;
  cfg.coll_rsag_min_bytes = 256;
  Universe uni(cfg);
  std::vector<std::thread> threads;
  for (int r = 0; r < 4; ++r) {
    threads.emplace_back([&, r] {
      std::vector<double> in(128, r), out(128);
      coll::allreduce(uni.rank(r).world(), in.data(), out.data(), in.size(),
                      coll::ReduceOp::kSum);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(uni.aggregate_counters().get(Counter::kCollRsagOps), 4u);
}

TEST(Coll, SegmentedBroadcastAndReduce) {
  // coll_segment_bytes far below the payload forces the pipelined tree;
  // the payload must still arrive intact and the segment SPC must tick.
  Config cfg;
  cfg.num_ranks = 5;
  cfg.coll_segment_bytes = 512;
  cfg.coll_rsag_min_bytes = 1 << 30;  // keep allreduce on the tree path
  Universe uni(cfg);
  std::vector<std::thread> threads;
  for (int r = 0; r < 5; ++r) {
    threads.emplace_back([&, r] {
      Communicator comm = uni.rank(r).world();
      std::vector<std::uint32_t> data(4096);  // 16 KiB => 32 segments
      if (r == 1) {
        for (std::size_t i = 0; i < data.size(); ++i) {
          data[i] = static_cast<std::uint32_t>(i * 2654435761u);
        }
      }
      ASSERT_EQ(coll::broadcast(comm, /*root=*/1, data.data(), data.size()),
                common::ErrorCode::kOk);
      for (std::size_t i = 0; i < data.size(); ++i) {
        ASSERT_EQ(data[i], static_cast<std::uint32_t>(i * 2654435761u));
      }
      comm.barrier();
      std::vector<std::int64_t> in(1024, r), sum(1024);
      ASSERT_EQ(coll::reduce(comm, /*root=*/0, in.data(), r == 0 ? sum.data() : nullptr,
                             in.size(), coll::ReduceOp::kSum),
                common::ErrorCode::kOk);
      if (r == 0) {
        for (const auto v : sum) ASSERT_EQ(v, 0 + 1 + 2 + 3 + 4);
      }
    });
  }
  for (auto& t : threads) t.join();
  const spc::Snapshot total = uni.aggregate_counters();
  EXPECT_GT(total.get(Counter::kCollSegments), 0u);
  EXPECT_GT(total.get(Counter::kCollPipelinedOps), 0u);
}

TEST(Coll, SegmentationDisabledUnderOvertaking) {
  // allow_overtaking drops in-order matching, which the segment streams
  // rely on — the dispatch must fall back to single-shot trees.
  Config cfg;
  cfg.num_ranks = 3;
  cfg.allow_overtaking = true;
  cfg.coll_segment_bytes = 128;
  Universe uni(cfg);
  std::vector<std::thread> threads;
  for (int r = 0; r < 3; ++r) {
    threads.emplace_back([&, r] {
      std::vector<std::uint64_t> data(2048, r == 0 ? 0xabcdef01u : 0u);
      ASSERT_EQ(coll::broadcast(uni.rank(r).world(), 0, data.data(), data.size()),
                common::ErrorCode::kOk);
      for (const auto v : data) ASSERT_EQ(v, 0xabcdef01u);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(uni.aggregate_counters().get(Counter::kCollSegments), 0u);
  EXPECT_EQ(uni.aggregate_counters().get(Counter::kCollPipelinedOps), 0u);
}

TEST(Coll, CollHandleOutstandingCollectivesOneCommunicator) {
  // Two lanes on ONE communicator: every rank acquires handle A then B (the
  // same-order contract), then two threads per rank run interleaved
  // allreduce streams, one per handle. Lane isolation keeps the streams
  // from cross-matching.
  Config cfg;
  cfg.num_ranks = 4;
  Universe uni(cfg);
  std::vector<std::thread> threads;
  for (int r = 0; r < 4; ++r) {
    threads.emplace_back([&, r] {
      Communicator comm = uni.rank(r).world();
      coll::CollHandle a(comm);
      coll::CollHandle b(comm);
      ASSERT_EQ(a.lane(), 0);
      ASSERT_EQ(b.lane(), 1);
      std::thread ta([&] {
        for (int iter = 0; iter < 40; ++iter) {
          std::int64_t mine = r + 1, sum = 0;
          ASSERT_EQ(coll::allreduce(comm, &mine, &sum, 1, coll::ReduceOp::kSum, &a),
                    common::ErrorCode::kOk);
          ASSERT_EQ(sum, 10);
        }
      });
      std::thread tb([&] {
        for (int iter = 0; iter < 40; ++iter) {
          std::int64_t mine = 100 * (r + 1), sum = 0;
          ASSERT_EQ(coll::allreduce(comm, &mine, &sum, 1, coll::ReduceOp::kSum, &b),
                    common::ErrorCode::kOk);
          ASSERT_EQ(sum, 1000);
        }
      });
      ta.join();
      tb.join();
    });
  }
  for (auto& t : threads) t.join();
  const spc::Snapshot total = uni.aggregate_counters();
  EXPECT_GE(total.get(Counter::kCollLaneAcquires), 8u);  // 2 handles x 4 ranks
}

TEST(Coll, HandleLanesAreRecycled) {
  // Dropping a handle frees its lane for the next acquisition
  // (lowest-free-bit), so lanes can't leak across collective phases.
  Config cfg;
  cfg.num_ranks = 1;
  Universe uni(cfg);
  Communicator comm = uni.rank(0).world();
  {
    coll::CollHandle a(comm);
    EXPECT_EQ(a.lane(), 0);
    coll::CollHandle b(comm);
    EXPECT_EQ(b.lane(), 1);
  }
  coll::CollHandle again(comm);
  EXPECT_EQ(again.lane(), 0);
}

TEST(Coll, ReservedTagRejectedTyped) {
  // Regression (§5i bugfix): user ops on tags inside the reserved block
  // must fail typed at post time — before this guard they would silently
  // collide with collective lane traffic.
  Config cfg;
  cfg.num_ranks = 2;
  Universe uni(cfg);
  Communicator c0 = uni.rank(0).world();
  const int bad_tags[] = {coll::kCollTagBase, coll::kCollTagBase + 12345, 1 << 30};
  int payload = 7;
  for (const int tag : bad_tags) {
    Request sreq;
    c0.isend(1, tag, &payload, sizeof(payload), sreq);
    EXPECT_TRUE(sreq.done()) << "tag " << tag;
    EXPECT_EQ(sreq.error(), common::ErrorCode::kReservedTag) << "tag " << tag;
    Request rreq;
    int sink = 0;
    c0.irecv(1, tag, &sink, sizeof(sink), rreq);
    EXPECT_TRUE(rreq.done()) << "tag " << tag;
    EXPECT_EQ(rreq.error(), common::ErrorCode::kReservedTag) << "tag " << tag;
  }
  EXPECT_EQ(c0.send_checked(1, coll::kCollTagBase + 3, &payload, sizeof(payload)),
            common::ErrorCode::kReservedTag);
  EXPECT_EQ(uni.aggregate_counters().get(Counter::kReservedTagRejects), 7u);
  // The guard must not eat legal traffic: the largest legal tag round-trips.
  const int max_legal = p2p::kReservedTagBase - 1;
  Request sreq;
  c0.isend(1, max_legal, &payload, sizeof(payload), sreq);
  int got = 0;
  Status st = uni.rank(1).world().recv(0, max_legal, &got, sizeof(got));
  uni.rank(0).wait(sreq);
  EXPECT_EQ(sreq.error(), common::ErrorCode::kOk);
  EXPECT_EQ(got, 7);
  EXPECT_EQ(st.source, 0);
}

TEST(Coll, InvalidRootAborts) {
  EXPECT_DEATH(run_ranks(2,
                         [](Communicator comm, int) {
                           int x = 0;
                           coll::broadcast(comm, 9, &x, 1);
                         }),
               "root");
}

}  // namespace
}  // namespace fairmpi
