// Collective-operations tests: correctness across rank counts (including
// non-powers of two, where binomial trees earn their keep), roots,
// datatypes, and repetition (stream reuse / tag hygiene).
#include "fairmpi/coll/coll.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <thread>
#include <vector>

namespace fairmpi {
namespace {

/// Run `body(comm, rank)` on one thread per rank of a fresh universe.
template <typename Body>
void run_ranks(int n, Body body, Config cfg = {}) {
  cfg.num_ranks = n;
  Universe uni(cfg);
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) {
    threads.emplace_back([&, r] { body(uni.rank(r).world(), r); });
  }
  for (auto& t : threads) t.join();
}

class CollRankCounts : public ::testing::TestWithParam<int> {};

TEST_P(CollRankCounts, BroadcastFromEveryRoot) {
  const int n = GetParam();
  run_ranks(n, [n](Communicator comm, int rank) {
    for (int root = 0; root < n; ++root) {
      std::vector<int> data(5, rank == root ? root * 100 + 7 : -1);
      coll::broadcast(comm, root, data.data(), data.size());
      for (const int v : data) ASSERT_EQ(v, root * 100 + 7) << "root " << root;
      comm.barrier();
    }
  });
}

TEST_P(CollRankCounts, ReduceSumAtEveryRoot) {
  const int n = GetParam();
  run_ranks(n, [n](Communicator comm, int rank) {
    for (int root = 0; root < n; ++root) {
      const std::vector<std::int64_t> in{rank, rank * 2, 1};
      std::vector<std::int64_t> out(3, -999);
      coll::reduce(comm, root, in.data(), rank == root ? out.data() : nullptr, in.size(),
                   coll::ReduceOp::kSum);
      if (rank == root) {
        const std::int64_t sum = static_cast<std::int64_t>(n) * (n - 1) / 2;
        ASSERT_EQ(out[0], sum);
        ASSERT_EQ(out[1], 2 * sum);
        ASSERT_EQ(out[2], n);
      }
      comm.barrier();
    }
  });
}

TEST_P(CollRankCounts, AllreduceMinMax) {
  const int n = GetParam();
  run_ranks(n, [n](Communicator comm, int rank) {
    const double in[2] = {static_cast<double>(rank), static_cast<double>(-rank)};
    double out[2] = {0, 0};
    coll::allreduce(comm, in, out, 2, coll::ReduceOp::kMax);
    ASSERT_EQ(out[0], n - 1);
    ASSERT_EQ(out[1], 0.0);
    comm.barrier();
    coll::allreduce(comm, in, out, 2, coll::ReduceOp::kMin);
    ASSERT_EQ(out[0], 0.0);
    ASSERT_EQ(out[1], -(n - 1));
  });
}

TEST_P(CollRankCounts, GatherThenScatterRoundTrip) {
  const int n = GetParam();
  run_ranks(n, [n](Communicator comm, int rank) {
    constexpr std::size_t kCount = 4;
    std::vector<std::uint32_t> mine(kCount);
    for (std::size_t i = 0; i < kCount; ++i) {
      mine[i] = static_cast<std::uint32_t>(rank * 1000 + static_cast<int>(i));
    }
    std::vector<std::uint32_t> all(kCount * static_cast<std::size_t>(n), 0);
    coll::gather(comm, /*root=*/0, mine.data(), kCount, rank == 0 ? all.data() : nullptr);
    if (rank == 0) {
      for (int r = 0; r < n; ++r) {
        for (std::size_t i = 0; i < kCount; ++i) {
          ASSERT_EQ(all[static_cast<std::size_t>(r) * kCount + i],
                    static_cast<std::uint32_t>(r * 1000 + static_cast<int>(i)));
        }
      }
      // Rotate blocks by one rank and scatter back.
      std::vector<std::uint32_t> rotated(all.size());
      for (int r = 0; r < n; ++r) {
        std::copy_n(all.begin() + static_cast<std::ptrdiff_t>(
                                      (static_cast<std::size_t>((r + 1) % n)) * kCount),
                    kCount,
                    rotated.begin() + static_cast<std::ptrdiff_t>(
                                          static_cast<std::size_t>(r) * kCount));
      }
      all = rotated;
    }
    std::vector<std::uint32_t> back(kCount, 0);
    coll::scatter(comm, 0, rank == 0 ? all.data() : nullptr, back.data(), kCount);
    const int expect_rank = (rank + 1) % n;
    for (std::size_t i = 0; i < kCount; ++i) {
      ASSERT_EQ(back[i], static_cast<std::uint32_t>(expect_rank * 1000 +
                                                    static_cast<int>(i)));
    }
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, CollRankCounts,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8));

TEST(Coll, RepeatedAllreduceIsStable) {
  run_ranks(4, [](Communicator comm, int rank) {
    std::int64_t value = rank + 1;
    for (int iter = 0; iter < 50; ++iter) {
      std::int64_t sum = 0;
      coll::allreduce(comm, &value, &sum, 1, coll::ReduceOp::kSum);
      ASSERT_EQ(sum % 10, 0) << "iter " << iter;  // 1+2+3+4 = 10 scaled
      value = sum / 4 + rank + 1 - (10 / 4);      // keep values bounded, per-rank distinct
      value = rank + 1;                           // reset: sum stays 10
    }
  });
}

TEST(Coll, BroadcastLargePayloadUsesRendezvous) {
  Config cfg;
  cfg.eager_limit = 2048;  // force fragments through the collective path
  run_ranks(
      4,
      [](Communicator comm, int rank) {
        std::vector<std::uint64_t> data(8192, rank == 2 ? 0xfeedface : 0);
        coll::broadcast(comm, /*root=*/2, data.data(), data.size());
        for (const auto v : data) ASSERT_EQ(v, 0xfeedfaceu);
      },
      cfg);
}

TEST(Coll, ConcurrentCollectivesOnDistinctCommunicators) {
  // Two thread groups run independent allreduce streams on separate
  // communicators of the same universe — the §III-F isolation trick.
  Config cfg;
  cfg.num_ranks = 3;
  cfg.num_instances = 2;
  cfg.progress_mode = progress::ProgressMode::kConcurrent;
  Universe uni(cfg);
  const CommId extra = uni.create_communicator();
  std::vector<std::thread> threads;
  for (int r = 0; r < 3; ++r) {
    for (const CommId comm_id : {kWorldComm, extra}) {
      threads.emplace_back([&, r, comm_id] {
        Communicator comm = uni.rank(r).comm(comm_id);
        const std::int64_t mine = comm_id == kWorldComm ? r : 10 * r;
        for (int iter = 0; iter < 30; ++iter) {
          std::int64_t sum = 0;
          coll::allreduce(comm, &mine, &sum, 1, coll::ReduceOp::kSum);
          ASSERT_EQ(sum, comm_id == kWorldComm ? 3 : 30);
        }
      });
    }
  }
  for (auto& t : threads) t.join();
}

TEST(Coll, SingleRankDegenerateCases) {
  run_ranks(1, [](Communicator comm, int) {
    int x = 41;
    coll::broadcast(comm, 0, &x, 1);
    EXPECT_EQ(x, 41);
    int sum = 0;
    coll::reduce(comm, 0, &x, &sum, 1, coll::ReduceOp::kSum);
    EXPECT_EQ(sum, 41);
    int all = 0;
    coll::allreduce(comm, &x, &all, 1, coll::ReduceOp::kMax);
    EXPECT_EQ(all, 41);
    int gathered = 0;
    coll::gather(comm, 0, &x, 1, &gathered);
    EXPECT_EQ(gathered, 41);
    int scattered = 0;
    coll::scatter(comm, 0, &gathered, &scattered, 1);
    EXPECT_EQ(scattered, 41);
  });
}

TEST(Coll, InvalidRootAborts) {
  EXPECT_DEATH(run_ranks(2,
                         [](Communicator comm, int) {
                           int x = 0;
                           coll::broadcast(comm, 9, &x, 1);
                         }),
               "root");
}

}  // namespace
}  // namespace fairmpi
