// Concurrent-collectives stress (§5i tentpole): N application threads per
// rank, each on its own communicator (the paper's §III-F per-thread-
// communicator trick), run interleaved broadcast/allreduce streams with
// per-operation payload checks. The point is cross-talk: before tag lanes,
// two collectives in flight on the same universe could match each other's
// traffic; any mixup here corrupts a payload deterministically.
//
// Suite names carry "CollMt" so the CI regexes (`-R '...|Coll'`) pick them
// up under TSan, lockcheck, and the seeded-chaos profiles.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "fairmpi/coll/coll.hpp"

namespace fairmpi {
namespace {

using spc::Counter;

/// Distinct per-(thread, iteration) payload seed — wrong-stream data can
/// never masquerade as the right value.
std::uint64_t stamp(int thread, int iter) {
  return (static_cast<std::uint64_t>(thread + 1) << 32) |
         static_cast<std::uint64_t>(iter * 2654435761u);
}

/// N ranks x T threads: thread t of every rank shares communicator t.
/// Every thread interleaves broadcast (rotating root) and allreduce with
/// full payload verification each iteration.
void stress(int ranks, int threads_per_rank, int iters, Config cfg = {}) {
  cfg.num_ranks = ranks;
  Universe uni(cfg);
  std::vector<CommId> comms(static_cast<std::size_t>(threads_per_rank));
  comms[0] = kWorldComm;
  for (int t = 1; t < threads_per_rank; ++t) comms[static_cast<std::size_t>(t)] = uni.create_communicator();

  std::atomic<int> failures{0};
  std::vector<std::thread> pool;
  for (int r = 0; r < ranks; ++r) {
    for (int t = 0; t < threads_per_rank; ++t) {
      pool.emplace_back([&, r, t] {
        Communicator comm = uni.rank(r).comm(comms[static_cast<std::size_t>(t)]);
        std::vector<std::uint64_t> bcast_buf(97);
        std::vector<std::uint64_t> in(64), out(64);
        for (int iter = 0; iter < iters; ++iter) {
          // Broadcast with a rotating root; only the root fills the buffer.
          const int root = iter % ranks;
          const std::uint64_t want = stamp(t, iter);
          for (std::size_t i = 0; i < bcast_buf.size(); ++i) {
            bcast_buf[i] = r == root ? want + i : 0;
          }
          if (coll::broadcast(comm, root, bcast_buf.data(), bcast_buf.size()) !=
              common::ErrorCode::kOk) {
            failures.fetch_add(1);
            return;
          }
          for (std::size_t i = 0; i < bcast_buf.size(); ++i) {
            if (bcast_buf[i] != want + i) {
              ADD_FAILURE() << "bcast cross-talk: rank " << r << " thread " << t
                            << " iter " << iter << " slot " << i;
              failures.fetch_add(1);
              return;
            }
          }
          // Allreduce sum with a thread-tagged payload.
          for (std::size_t i = 0; i < in.size(); ++i) {
            in[i] = stamp(t, iter) + static_cast<std::uint64_t>(r) * 1000 + i;
          }
          if (coll::allreduce(comm, in.data(), out.data(), in.size(),
                              coll::ReduceOp::kSum) != common::ErrorCode::kOk) {
            failures.fetch_add(1);
            return;
          }
          const auto n = static_cast<std::uint64_t>(ranks);
          for (std::size_t i = 0; i < out.size(); ++i) {
            const std::uint64_t expect =
                n * (stamp(t, iter) + i) + 1000 * (n * (n - 1) / 2);
            if (out[i] != expect) {
              ADD_FAILURE() << "allreduce cross-talk: rank " << r << " thread " << t
                            << " iter " << iter << " slot " << i;
              failures.fetch_add(1);
              return;
            }
          }
        }
      });
    }
  }
  for (auto& th : pool) th.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(CollMt, FourRanksFourThreadsPerThreadComms) { stress(4, 4, 30); }

TEST(CollMt, NonPowerOfTwoRanksAndThreads) { stress(3, 5, 25); }

TEST(CollMt, EightThreadsConcurrentProgress) {
  Config cfg;
  cfg.num_instances = 4;
  cfg.progress_mode = progress::ProgressMode::kConcurrent;
  stress(2, 8, 25, cfg);
}

TEST(CollMt, MixedAlgorithmsSegmentedAndRsag) {
  // Payload sizes straddling both thresholds so pipelined trees and the
  // rsag ring run concurrently on different communicators.
  Config cfg;
  cfg.num_ranks = 4;
  cfg.coll_segment_bytes = 1024;
  cfg.coll_rsag_min_bytes = 2048;
  Universe uni(cfg);
  const CommId big = uni.create_communicator();
  std::vector<std::thread> pool;
  for (int r = 0; r < 4; ++r) {
    pool.emplace_back([&, r] {  // small payloads: binomial + reduce/bcast
      Communicator comm = uni.rank(r).world();
      for (int iter = 0; iter < 20; ++iter) {
        std::int64_t mine = r + iter, sum = 0;
        ASSERT_EQ(coll::allreduce(comm, &mine, &sum, 1, coll::ReduceOp::kSum),
                  common::ErrorCode::kOk);
        ASSERT_EQ(sum, 6 + 4 * iter);
      }
    });
    pool.emplace_back([&, r] {  // large payloads: pipelined bcast + rsag ring
      Communicator comm = uni.rank(r).comm(big);
      std::vector<std::int64_t> in(1024), out(1024);
      for (int iter = 0; iter < 20; ++iter) {
        for (std::size_t i = 0; i < in.size(); ++i) {
          in[i] = r + static_cast<std::int64_t>(i) + iter;
        }
        ASSERT_EQ(coll::allreduce(comm, in.data(), out.data(), in.size(),
                                  coll::ReduceOp::kSum),
                  common::ErrorCode::kOk);
        for (std::size_t i = 0; i < out.size(); ++i) {
          ASSERT_EQ(out[i], 6 + 4 * (static_cast<std::int64_t>(i) + iter));
        }
        // 8 KiB broadcast > coll_segment_bytes: the pipelined tree.
        std::vector<std::uint64_t> blob(1024, r == iter % 4 ? 0xc0ffee00u + iter : 0u);
        ASSERT_EQ(coll::broadcast(comm, iter % 4, blob.data(), blob.size()),
                  common::ErrorCode::kOk);
        for (const auto v : blob) ASSERT_EQ(v, 0xc0ffee00u + iter);
      }
    });
  }
  for (auto& th : pool) th.join();
  const spc::Snapshot total = uni.aggregate_counters();
  EXPECT_GT(total.get(Counter::kCollRsagOps), 0u);
  EXPECT_GT(total.get(Counter::kCollPipelinedOps), 0u);
}

TEST(CollMt, LaneExhaustionBlocksThenRecovers) {
  // More outstanding handle requests than lanes on one communicator: the
  // excess acquisitions must block (counting kCollLaneWaits), then obtain
  // a lane as earlier handles drop. Single rank keeps it a pure
  // lane-allocator test with no tree traffic.
  Config cfg;
  cfg.num_ranks = 1;
  Universe uni(cfg);
  Communicator comm = uni.rank(0).world();
  std::vector<coll::CollHandle> held;
  held.reserve(static_cast<std::size_t>(coll::kMaxCollLanes));
  for (int i = 0; i < coll::kMaxCollLanes; ++i) held.emplace_back(comm);
  std::atomic<bool> acquired{false};
  std::thread waiter([&] {
    coll::CollHandle extra(comm);  // blocks until a lane frees
    acquired.store(true);
  });
  // Give the waiter time to hit the full bitmap, then free one lane.
  while (uni.aggregate_counters().get(Counter::kCollLaneWaits) == 0) {
    std::this_thread::yield();
  }
  EXPECT_FALSE(acquired.load());
  held.pop_back();
  waiter.join();
  EXPECT_TRUE(acquired.load());
  EXPECT_GE(uni.aggregate_counters().get(Counter::kCollLaneWaits), 1u);
}

}  // namespace
}  // namespace fairmpi
