// Tests for the lock-rank / lock-order validator itself.
//
// The validator-behaviour tests only exist when FAIRMPI_LOCKCHECK is on
// (cmake --preset lockcheck); a plain build compiles the wrapper-transparency
// and zero-cost checks only.
#include "fairmpi/debug/lockcheck.hpp"

#include <gtest/gtest.h>

#include <mutex>
#include <string>
#include <thread>

#include "fairmpi/common/spinlock.hpp"
#include "fairmpi/multirate/multirate.hpp"

namespace fairmpi {
namespace {

#if !FAIRMPI_LOCKCHECK
// Near-zero-cost when disabled: the wrapper carries its class identity
// (rank, name, cached contention-profiler id) in every build mode so the
// obs layer can attribute wait time in release binaries, but that identity
// must fit one extra cache line — the lock word itself keeps a private
// line, so the hot-path layout of the primitives the engine embeds per-CRI
// is unchanged.
static_assert(sizeof(RankedLock<Spinlock>) <= sizeof(Spinlock) + kCacheLine,
              "disabled RankedLock identity must fit one cache line");
static_assert(sizeof(RankedLock<TicketLock>) <= sizeof(TicketLock) + kCacheLine,
              "disabled RankedLock identity must fit one cache line");
static_assert(alignof(RankedLock<Spinlock>) == alignof(Spinlock));
#endif

TEST(RankedLock, IsLockableThroughStdGuards) {
  RankedLock<Spinlock> lock{LockRank::kTestBase, "test.lockable"};
  {
    std::scoped_lock guard(lock);
    EXPECT_TRUE(lock.underlying().is_locked());
  }
  EXPECT_FALSE(lock.underlying().is_locked());
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

#if FAIRMPI_LOCKCHECK

using debug::held_count;
using debug::reset_for_test;
using debug::set_violation_handler;
using debug::Violation;

// Captured state of the most recent violation (single-threaded tests).
std::string g_last_report;
int g_violations = 0;
Violation::Kind g_last_kind{};

void capture_handler(const Violation& v) {
  g_last_report = v.report;
  g_last_kind = v.kind;
  ++g_violations;
}

class LockcheckTest : public ::testing::Test {
 protected:
  void SetUp() override {
    reset_for_test();
    g_last_report.clear();
    g_violations = 0;
    set_violation_handler(&capture_handler);
  }
  void TearDown() override {
    set_violation_handler(nullptr);
    reset_for_test();
  }
};

LockRank test_rank(int offset) {
  return static_cast<LockRank>(static_cast<std::uint16_t>(LockRank::kTestBase) + offset);
}

TEST_F(LockcheckTest, InOrderAcquisitionIsClean) {
  RankedLock<Spinlock> low{test_rank(1), "test.order-low"};
  RankedLock<Spinlock> high{test_rank(2), "test.order-high"};
  {
    std::scoped_lock a(low);
    std::scoped_lock b(high);
    EXPECT_EQ(held_count(), 2);
  }
  EXPECT_EQ(held_count(), 0);
  EXPECT_EQ(g_violations, 0);
}

TEST_F(LockcheckTest, RankInversionCaughtAndReportNamesBothLocks) {
  RankedLock<Spinlock> low{test_rank(1), "test.inv-low"};
  RankedLock<Spinlock> high{test_rank(2), "test.inv-high"};
  high.lock();
  low.lock();  // B->A inversion: blocking acquire of a lower rank
  EXPECT_EQ(g_violations, 1);
  EXPECT_EQ(g_last_kind, Violation::Kind::kRankOrder);
  // The report names both lock classes and the attempting acquisition site.
  EXPECT_NE(g_last_report.find("test.inv-low"), std::string::npos) << g_last_report;
  EXPECT_NE(g_last_report.find("test.inv-high"), std::string::npos) << g_last_report;
  EXPECT_NE(g_last_report.find("test_lockcheck.cpp"), std::string::npos) << g_last_report;
  low.unlock();
  high.unlock();
  EXPECT_EQ(held_count(), 0);
}

TEST_F(LockcheckTest, SameClassRecursionIsARankViolation) {
  RankedLock<Spinlock> a{test_rank(3), "test.recursive"};
  RankedLock<Spinlock> b{test_rank(3), "test.recursive"};  // same class
  a.lock();
  b.lock();  // same-class blocking nesting can deadlock against a peer
  EXPECT_EQ(g_violations, 1);
  EXPECT_EQ(g_last_kind, Violation::Kind::kRankOrder);
  b.unlock();
  a.unlock();
}

TEST_F(LockcheckTest, EqualRankCycleCaughtAcrossClasses) {
  // Distinct classes at the same rank: nesting is tolerated (rank rule)
  // until both orders have been observed — then it is a provable inversion.
  RankedLock<Spinlock> a{test_rank(4), "test.cycle-a"};
  RankedLock<Spinlock> b{test_rank(4), "test.cycle-b"};
  {
    std::scoped_lock ga(a);
    std::scoped_lock gb(b);  // establishes a -> b
  }
  EXPECT_EQ(g_violations, 0);
  {
    std::scoped_lock gb(b);
    a.lock();  // b held, acquiring a: closes the cycle
    a.unlock();
  }
  EXPECT_EQ(g_violations, 1);
  EXPECT_EQ(g_last_kind, Violation::Kind::kCycle);
  EXPECT_NE(g_last_report.find("test.cycle-a"), std::string::npos) << g_last_report;
  EXPECT_NE(g_last_report.find("test.cycle-b"), std::string::npos) << g_last_report;
}

TEST_F(LockcheckTest, SameRankTryLockFailureIsToleratedAndEffectFree) {
  // Algorithm 2's sweep: holding one instance, try-lock a busy same-rank
  // sibling. Must fail without a violation and without touching the held
  // stack (a failed try_lock performs no acquire — spinlock contract).
  RankedLock<Spinlock> own{test_rank(5), "test.sweep"};
  RankedLock<Spinlock> sibling{test_rank(5), "test.sweep"};

  std::scoped_lock hold(own);
  ASSERT_EQ(held_count(), 1);

  std::thread holder([&] { sibling.lock(); });
  while (!sibling.underlying().is_locked()) std::this_thread::yield();

  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(sibling.try_lock());
  }
  EXPECT_EQ(held_count(), 1);  // no phantom acquisition recorded
  EXPECT_EQ(g_violations, 0);

  // And a *successful* same-rank try_lock is fine too (cannot deadlock).
  holder.join();
  sibling.unlock();  // release on holder's behalf: plain spinlock state
  EXPECT_TRUE(sibling.try_lock());
  EXPECT_EQ(held_count(), 2);
  sibling.unlock();
  EXPECT_EQ(held_count(), 1);
}

TEST_F(LockcheckTest, TryLockIsExemptFromRankRule) {
  RankedLock<Spinlock> low{test_rank(6), "test.exempt-low"};
  RankedLock<Spinlock> high{test_rank(7), "test.exempt-high"};
  std::scoped_lock hold(high);
  // Blocking would violate; try_lock must not (it cannot block).
  ASSERT_TRUE(low.try_lock());
  EXPECT_EQ(g_violations, 0);
  low.unlock();
}

TEST_F(LockcheckTest, EngineHierarchyIsViolationFreeUnderLoad) {
  // Drive the real engine (cri + progress + match + p2p) through the
  // multirate harness with the validator live: any ordering bug aborts the
  // run via the capture handler assertions below.
  multirate::MultirateConfig cfg;
  cfg.pairs = 2;
  cfg.duration_s = 0.05;
  cfg.window = 16;
  cfg.engine.num_instances = 2;
  cfg.engine.progress_mode = progress::ProgressMode::kConcurrent;
  const auto res = run_pairwise(cfg);
  EXPECT_GT(res.delivered, 0u);
  EXPECT_EQ(g_violations, 0) << g_last_report;
  EXPECT_EQ(held_count(), 0);
}

#endif  // FAIRMPI_LOCKCHECK

}  // namespace
}  // namespace fairmpi
