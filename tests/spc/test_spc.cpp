#include "fairmpi/spc/spc.hpp"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace fairmpi::spc {
namespace {

TEST(Spc, StartsAtZero) {
  CounterSet set;
  for (int i = 0; i < kNumCounters; ++i) {
    EXPECT_EQ(set.get(static_cast<Counter>(i)), 0u);
  }
}

TEST(Spc, AddAccumulates) {
  CounterSet set;
  set.add(Counter::kMessagesSent);
  set.add(Counter::kMessagesSent, 9);
  EXPECT_EQ(set.get(Counter::kMessagesSent), 10u);
  EXPECT_EQ(set.get(Counter::kMessagesReceived), 0u);
}

TEST(Spc, UpdateMaxKeepsHighWater) {
  CounterSet set;
  set.update_max(Counter::kOosBufferPeak, 5);
  set.update_max(Counter::kOosBufferPeak, 3);
  EXPECT_EQ(set.get(Counter::kOosBufferPeak), 5u);
  set.update_max(Counter::kOosBufferPeak, 12);
  EXPECT_EQ(set.get(Counter::kOosBufferPeak), 12u);
}

TEST(Spc, ConcurrentAddsDoNotLoseUpdates) {
  CounterSet set;
  constexpr int kThreads = 4;
  constexpr int kIters = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) set.add(Counter::kMatchAttempts);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(set.get(Counter::kMatchAttempts),
            static_cast<std::uint64_t>(kThreads) * kIters);
}

TEST(Spc, SnapshotDelta) {
  CounterSet set;
  set.add(Counter::kMessagesSent, 100);
  set.update_max(Counter::kOosBufferPeak, 7);
  const Snapshot before = set.snapshot();
  set.add(Counter::kMessagesSent, 23);
  set.update_max(Counter::kOosBufferPeak, 9);
  const Snapshot delta = set.snapshot().delta_since(before);
  EXPECT_EQ(delta.get(Counter::kMessagesSent), 23u);
  // High-water counters keep the later absolute value.
  EXPECT_EQ(delta.get(Counter::kOosBufferPeak), 9u);
}

TEST(Spc, MergeSumsAndMaxes) {
  Snapshot a, b;
  a.values[static_cast<int>(Counter::kMessagesSent)] = 10;
  b.values[static_cast<int>(Counter::kMessagesSent)] = 5;
  a.values[static_cast<int>(Counter::kOosBufferPeak)] = 3;
  b.values[static_cast<int>(Counter::kOosBufferPeak)] = 8;
  a.merge(b);
  EXPECT_EQ(a.get(Counter::kMessagesSent), 15u);
  EXPECT_EQ(a.get(Counter::kOosBufferPeak), 8u);
}

TEST(Spc, ResetClears) {
  CounterSet set;
  set.add(Counter::kRmaPuts, 3);
  set.reset();
  EXPECT_EQ(set.get(Counter::kRmaPuts), 0u);
}

TEST(Spc, AllCountersHaveDistinctNames) {
  std::vector<std::string> names;
  for (int i = 0; i < kNumCounters; ++i) {
    names.emplace_back(counter_name(static_cast<Counter>(i)));
    EXPECT_NE(names.back(), "Unknown");
  }
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::adjacent_find(names.begin(), names.end()), names.end());
}

TEST(Spc, ToStringContainsEveryCounter) {
  CounterSet set;
  set.add(Counter::kOutOfSequence, 42);
  const std::string s = set.snapshot().to_string();
  EXPECT_NE(s.find("OutOfSequence = 42"), std::string::npos);
  EXPECT_NE(s.find("MatchTimeNs"), std::string::npos);
}

}  // namespace
}  // namespace fairmpi::spc
