#include "fairmpi/spc/spc.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

namespace fairmpi::spc {
namespace {

TEST(Spc, StartsAtZero) {
  CounterSet set;
  for (int i = 0; i < kNumCounters; ++i) {
    EXPECT_EQ(set.get(static_cast<Counter>(i)), 0u);
  }
}

TEST(Spc, AddAccumulates) {
  CounterSet set;
  set.add(Counter::kMessagesSent);
  set.add(Counter::kMessagesSent, 9);
  EXPECT_EQ(set.get(Counter::kMessagesSent), 10u);
  EXPECT_EQ(set.get(Counter::kMessagesReceived), 0u);
}

TEST(Spc, UpdateMaxKeepsHighWater) {
  CounterSet set;
  set.update_max(Counter::kOosBufferPeak, 5);
  set.update_max(Counter::kOosBufferPeak, 3);
  EXPECT_EQ(set.get(Counter::kOosBufferPeak), 5u);
  set.update_max(Counter::kOosBufferPeak, 12);
  EXPECT_EQ(set.get(Counter::kOosBufferPeak), 12u);
}

TEST(Spc, ConcurrentAddsDoNotLoseUpdates) {
  CounterSet set;
  constexpr int kThreads = 4;
  constexpr int kIters = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) set.add(Counter::kMatchAttempts);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(set.get(Counter::kMatchAttempts),
            static_cast<std::uint64_t>(kThreads) * kIters);
}

TEST(Spc, SnapshotDelta) {
  CounterSet set;
  set.add(Counter::kMessagesSent, 100);
  set.update_max(Counter::kOosBufferPeak, 7);
  const Snapshot before = set.snapshot();
  set.add(Counter::kMessagesSent, 23);
  set.update_max(Counter::kOosBufferPeak, 9);
  const Snapshot delta = set.snapshot().delta_since(before);
  EXPECT_EQ(delta.get(Counter::kMessagesSent), 23u);
  // High-water counters keep the later absolute value.
  EXPECT_EQ(delta.get(Counter::kOosBufferPeak), 9u);
}

TEST(Spc, MergeSumsAndMaxes) {
  Snapshot a, b;
  a.values[static_cast<int>(Counter::kMessagesSent)] = 10;
  b.values[static_cast<int>(Counter::kMessagesSent)] = 5;
  a.values[static_cast<int>(Counter::kOosBufferPeak)] = 3;
  b.values[static_cast<int>(Counter::kOosBufferPeak)] = 8;
  a.merge(b);
  EXPECT_EQ(a.get(Counter::kMessagesSent), 15u);
  EXPECT_EQ(a.get(Counter::kOosBufferPeak), 8u);
}

TEST(Spc, ResetClears) {
  CounterSet set;
  set.add(Counter::kRmaPuts, 3);
  set.reset();
  EXPECT_EQ(set.get(Counter::kRmaPuts), 0u);
}

TEST(Spc, ResetIsRebaseNotDestruction) {
  CounterSet set;
  set.add(Counter::kRmaPuts, 10);
  set.update_max(Counter::kOosBufferPeak, 6);
  set.reset();
  // Sums restart from zero and count exactly from the reset point...
  EXPECT_EQ(set.get(Counter::kRmaPuts), 0u);
  set.add(Counter::kRmaPuts, 4);
  EXPECT_EQ(set.get(Counter::kRmaPuts), 4u);
  // ...high-water marks are lifetime maxima and survive...
  EXPECT_EQ(set.get(Counter::kOosBufferPeak), 6u);
  // ...and the underlying cells keep the full history: lifetime totals are
  // reset-immune, which is what makes delta_since exact across resets.
  EXPECT_EQ(set.lifetime_snapshot().get(Counter::kRmaPuts), 14u);
}

// Regression test for the reset()/add() lost-update bug: the old reset()
// stored zero into the counters, so a fetch_add landing between the store
// and a racing add simply vanished. The rebase design never writes the
// cells, so the lifetime total must equal exactly the number of adds no
// matter how many resets ran concurrently.
TEST(Spc, ResetConcurrentWithAddsLosesNothing) {
  CounterSet set;
  constexpr int kWriters = 4;
  constexpr int kIters = 100000;
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kWriters; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) set.add(Counter::kRmaPuts);
    });
  }
  std::thread resetter([&] {
    while (!stop.load(std::memory_order_acquire)) set.reset();
  });
  for (auto& t : threads) t.join();
  stop.store(true, std::memory_order_release);
  resetter.join();

  constexpr std::uint64_t kTotal = std::uint64_t{kWriters} * kIters;
  EXPECT_EQ(set.lifetime_snapshot().get(Counter::kRmaPuts), kTotal);
  // The rebased view shows only the adds since the last reset — at most
  // everything, never more (and never negative / wrapped).
  EXPECT_LE(set.get(Counter::kRmaPuts), kTotal);
}

TEST(Spc, AllCountersHaveDistinctNames) {
  std::vector<std::string> names;
  for (int i = 0; i < kNumCounters; ++i) {
    names.emplace_back(counter_name(static_cast<Counter>(i)));
    EXPECT_NE(names.back(), "Unknown");
  }
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::adjacent_find(names.begin(), names.end()), names.end());
}

TEST(Spc, ToStringContainsEveryCounter) {
  CounterSet set;
  set.add(Counter::kOutOfSequence, 42);
  const std::string s = set.snapshot().to_string();
  EXPECT_NE(s.find("OutOfSequence = 42"), std::string::npos);
  EXPECT_NE(s.find("MatchTimeNs"), std::string::npos);
}

}  // namespace
}  // namespace fairmpi::spc
