// Observability layer tests: contention-profiler shards (TSan-exercised),
// CRI-utilization conservation against SPC totals, and exporter structure.
//
// obs::enabled() is a process-global switch; every test that flips it on
// restores it (and resets the shards) so suites stay order-independent.
// The one exception is the intern-past-cap test, which permanently fills
// the class registry — it is declared LAST so its suite runs last.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "fairmpi/common/spinlock.hpp"
#include "fairmpi/core/universe.hpp"
#include "fairmpi/debug/lockcheck.hpp"
#include "fairmpi/obs/contention.hpp"
#include "fairmpi/obs/utilization.hpp"

namespace fairmpi {
namespace {

/// Unsets the chaos fault-injection environment for the lifetime of a test
/// and restores it afterwards (same idiom as test_chaos.cpp): the
/// conservation assertions below equate injections with messages sent,
/// which only holds on a pristine fabric — a retransmitting universe
/// injects the same message several times by design.
class ScopedChaosEnvClear {
 public:
  ScopedChaosEnvClear() {
    for (const char* name : kVars) {
      const char* value = std::getenv(name);
      saved_.emplace_back(name, value == nullptr ? std::string() : std::string(value));
      if (value != nullptr) ::unsetenv(name);
    }
  }
  ~ScopedChaosEnvClear() {
    for (const auto& [name, value] : saved_) {
      if (!value.empty()) ::setenv(name, value.c_str(), 1);
    }
  }

 private:
  static constexpr const char* kVars[] = {
      "FAIRMPI_FAULT_DROP",    "FAIRMPI_FAULT_DUP",  "FAIRMPI_FAULT_DELAY",
      "FAIRMPI_FAULT_REORDER", "FAIRMPI_FAULT_CORRUPT", "FAIRMPI_FAULT_SEED",
      "FAIRMPI_RELIABLE",
  };
  std::vector<std::pair<const char*, std::string>> saved_;
};

/// RAII: obs on for the scope, shards zeroed on both edges.
struct ObsScope {
  ObsScope() {
    obs::reset_contention_for_test();
    obs::set_enabled(true);
  }
  ~ObsScope() {
    obs::set_enabled(false);
    obs::reset_contention_for_test();
  }
};

const obs::ClassContention* find_class(const std::vector<obs::ClassContention>& all,
                                       const char* name) {
  for (const auto& c : all) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

// --- LockContention.* (name matches the CI TSan job's test filter) ---

TEST(LockContention, DisabledRecordsNothing) {
  obs::set_enabled(false);
  obs::reset_contention_for_test();
  RankedLock<Spinlock> lock(LockRank::kTestBase, "obs.test.disabled");
  for (int i = 0; i < 100; ++i) {
    lock.lock();
    lock.unlock();
    ASSERT_TRUE(lock.try_lock());
    lock.unlock();
  }
  const auto all = obs::contention_snapshot();
  const auto* c = find_class(all, "obs.test.disabled");
  // The class is not even interned (nothing forces it while disabled); if a
  // future change interns eagerly, its cells must still read zero.
  if (c != nullptr) {
    EXPECT_EQ(c->acquires, 0u);
    EXPECT_EQ(c->trylock_fails, 0u);
  }
}

TEST(LockContention, CountsAcquiresAndTrylockFails) {
  ObsScope scope;
  RankedLock<Spinlock> lock(LockRank::kTestBase, "obs.test.counts");
  constexpr int kOps = 1000;
  for (int i = 0; i < kOps; ++i) {
    lock.lock();
    lock.unlock();
  }
  lock.lock();
  for (int i = 0; i < 7; ++i) {
    EXPECT_FALSE(lock.try_lock());  // held by us: every probe fails
  }
  lock.unlock();

  const auto all = obs::contention_snapshot();
  const auto* c = find_class(all, "obs.test.counts");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->acquires, static_cast<std::uint64_t>(kOps) + 1);
  EXPECT_EQ(c->trylock_fails, 7u);
  EXPECT_EQ(c->rank, static_cast<std::uint16_t>(LockRank::kTestBase));
}

TEST(LockContention, AttributesWaitTimeUnderContention) {
  ObsScope scope;
  RankedLock<Spinlock> lock(LockRank::kTestBase, "obs.test.contended");
  std::atomic<bool> held{false};
  std::atomic<bool> release{false};
  std::thread holder([&] {
    lock.lock();
    held.store(true, std::memory_order_release);
    while (!release.load(std::memory_order_acquire)) {
    }
    lock.unlock();
  });
  while (!held.load(std::memory_order_acquire)) {
  }
  std::thread waiter([&] {
    lock.lock();  // blocks until the holder releases
    lock.unlock();
  });
  // Give the waiter time to actually block on the lock before releasing.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  release.store(true, std::memory_order_release);
  holder.join();
  waiter.join();

  const auto all = obs::contention_snapshot();
  const auto* c = find_class(all, "obs.test.contended");
  ASSERT_NE(c, nullptr);
  EXPECT_GE(c->acquires, 2u);
  EXPECT_GE(c->contended, 1u);
  EXPECT_GT(c->wait_ns, 0u);
}

// The TSan target: many threads pounding one class through private
// per-thread-slot shards must neither race nor lose counts.
TEST(LockContention, ShardsSumExactlyAcrossThreads) {
  ObsScope scope;
  RankedLock<Spinlock> lock(LockRank::kTestBase, "obs.test.shards");
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        if (lock.try_lock()) {
          lock.unlock();
        }
        lock.lock();
        lock.unlock();
      }
    });
  }
  for (auto& t : threads) t.join();

  const auto all = obs::contention_snapshot();
  const auto* c = find_class(all, "obs.test.shards");
  ASSERT_NE(c, nullptr);
  // Every blocking lock() is exactly one acquire; successful try_locks add
  // more, failed ones only bump trylock_fails — together they account for
  // every one of the kThreads * kOpsPerThread probes.
  const std::uint64_t blocking =
      static_cast<std::uint64_t>(kThreads) * kOpsPerThread;
  EXPECT_GE(c->acquires, blocking);
  EXPECT_LE(c->acquires, 2 * blocking);
  EXPECT_EQ((c->acquires - blocking) + c->trylock_fails, blocking);
}

// --- CriUtilization.* (name matches the CI TSan job's test filter) ---

TEST(CriUtilization, DrainHistogramBuckets) {
  using obs::InstanceCounters;
  EXPECT_EQ(InstanceCounters::bucket(1), 0);
  EXPECT_EQ(InstanceCounters::bucket(2), 1);
  EXPECT_EQ(InstanceCounters::bucket(3), 2);
  EXPECT_EQ(InstanceCounters::bucket(4), 2);
  EXPECT_EQ(InstanceCounters::bucket(5), 3);
  EXPECT_EQ(InstanceCounters::bucket(8), 3);
  EXPECT_EQ(InstanceCounters::bucket(16), 4);
  EXPECT_EQ(InstanceCounters::bucket(32), 5);
  EXPECT_EQ(InstanceCounters::bucket(33), 6);
  EXPECT_EQ(InstanceCounters::bucket(64), 6);
}

/// Conservation: with a pristine fabric, reliability off and only eager
/// traffic, every completed send is exactly one injection into some CRI and
/// exactly one packet drained from some CRI — so at quiescence the
/// per-instance counters must sum to the aggregate SPCs.
TEST(CriUtilization, InjectionsAndDrainsConserveAgainstSpc) {
  ScopedChaosEnvClear env;  // conservation requires a lossless fabric
  ObsScope scope;
  Config cfg;
  cfg.num_ranks = 2;
  cfg.num_instances = 3;
  cfg.progress_mode = progress::ProgressMode::kConcurrent;
  cfg.obs_enabled = true;
  Universe uni(cfg);

  constexpr int kMessages = 200;
  std::thread peer([&] {
    char buf[64];
    for (int i = 0; i < kMessages; ++i) {
      uni.rank(1).recv(kWorldComm, 0, /*tag=*/1, buf, sizeof buf);
      uni.rank(1).send(kWorldComm, 0, /*tag=*/2, buf, 16);
    }
  });
  {
    char buf[64] = "conservation";
    for (int i = 0; i < kMessages; ++i) {
      uni.rank(0).send(kWorldComm, 1, /*tag=*/1, buf, 32);
      uni.rank(0).recv(kWorldComm, 1, /*tag=*/2, buf, sizeof buf);
    }
  }
  peer.join();

  const spc::Snapshot total = uni.aggregate_counters();
  std::uint64_t injections = 0, pkts = 0, comps = 0, visits = 0, hist = 0;
  for (int r = 0; r < uni.num_ranks(); ++r) {
    cri::CriPool& pool = uni.rank(r).pool();
    for (int i = 0; i < pool.size(); ++i) {
      const obs::InstanceUtilization u = pool.instance(i).stats().snapshot();
      injections += u.injections;
      pkts += u.packets_drained;
      comps += u.completions_drained;
      visits += u.drain_visits;
      for (const std::uint64_t h : u.drain_hist) hist += h;
    }
  }
  EXPECT_EQ(injections, total.get(spc::Counter::kMessagesSent));
  EXPECT_EQ(pkts, injections);  // quiescent: everything injected was drained
  EXPECT_EQ(comps, 0u);         // eager sends complete inline, no CQ events
  EXPECT_GE(visits, hist);      // only non-empty drains land in the histogram
  EXPECT_EQ(total.get(spc::Counter::kMessagesSent),
            static_cast<std::uint64_t>(2 * kMessages));
}

TEST(CriUtilization, ObsOffLeavesCountersZero) {
  obs::set_enabled(false);
  Config cfg;
  cfg.num_ranks = 2;
  Universe uni(cfg);
  char buf[16];
  std::thread peer([&] { uni.rank(1).recv(kWorldComm, 0, 0, buf, sizeof buf); });
  uni.rank(0).send(kWorldComm, 1, 0, "off", 4);
  peer.join();
  for (int r = 0; r < uni.num_ranks(); ++r) {
    const obs::InstanceUtilization u =
        uni.rank(r).pool().instance(0).stats().snapshot();
    EXPECT_EQ(u.injections, 0u);
    EXPECT_EQ(u.drain_visits, 0u);
  }
}

// --- exporter structure ---

TEST(ObsExport, ChromeTraceWellFormedWithEvents) {
  ObsScope scope;
  Config cfg;
  cfg.num_ranks = 2;
  cfg.trace_enabled = true;
  Universe uni(cfg);
  char buf[16];
  std::thread peer(
      [&] { uni.rank(1).recv(kWorldComm, 0, 0, buf, sizeof buf); });
  uni.rank(0).send(kWorldComm, 1, 0, "trace", 6);
  peer.join();

  std::ostringstream os;
  uni.export_chrome_trace(os);
  const std::string json = os.str();
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"Send\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"RecvPost\""), std::string::npos);
  // The drained eager packet produced a CriDrain async lane event.
  EXPECT_NE(json.find("\"name\":\"CriDrain\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"n\""), std::string::npos);
  EXPECT_NE(json.find("\"id\":\"cri-"), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ns\""), std::string::npos);
}

TEST(ObsExport, TracelessUniverseStillExportsValidSkeleton) {
  Config cfg;
  cfg.num_ranks = 1;
  Universe uni(cfg);
  std::ostringstream os;
  uni.export_chrome_trace(os);
  const std::string json = os.str();
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
}

TEST(ObsExport, DumpObservabilityHasAllSections) {
  ObsScope scope;
  Config cfg;
  cfg.num_ranks = 2;
  cfg.num_instances = 2;
  cfg.obs_enabled = true;
  Universe uni(cfg);
  char buf[16];
  std::thread peer(
      [&] { uni.rank(1).recv(kWorldComm, 0, 0, buf, sizeof buf); });
  uni.rank(0).send(kWorldComm, 1, 0, "dump", 5);
  peer.join();

  std::ostringstream os;
  uni.dump_observability(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"obs_enabled\": true"), std::string::npos);
  EXPECT_NE(json.find("\"contention\""), std::string::npos);
  EXPECT_NE(json.find("\"cri.instance\""), std::string::npos);
  EXPECT_NE(json.find("\"ranks\""), std::string::npos);
  EXPECT_NE(json.find("\"injections\""), std::string::npos);
  EXPECT_NE(json.find("\"drain_hist\""), std::string::npos);
  EXPECT_NE(json.find("\"spc_total\""), std::string::npos);
  EXPECT_NE(json.find("\"MessagesSent\""), std::string::npos);
  // Braces balance (cheap structural sanity without a JSON parser).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

// --- declared last on purpose: exhausts the process-global class registry ---

TEST(LockContentionCapacity, InternPastCapIsNonFatal) {
  ObsScope scope;
  std::uint16_t last = 0;
  // Interning keeps the pointer, not a copy, so the names must outlive the
  // test. Anchor them through a never-destroyed static so LeakSanitizer
  // sees the over-cap ones (which the registry drops) as reachable — a
  // plain static vector would be destructed before the leak check runs.
  static std::vector<char*>* const names = new std::vector<char*>();
  for (int i = 0; i < obs::kMaxContentionClasses + 8; ++i) {
    char name[32];
    std::snprintf(name, sizeof name, "obs.test.cap.%d", i);
    names->push_back(strdup(name));
    last = obs::intern_contention_class(2000, names->back());
  }
  EXPECT_EQ(last, obs::kNoContentionClass);
  // Over-cap hooks are no-ops, not crashes.
  obs::note_uncontended_acquire(last);
  obs::note_contended_acquire(last, 123);
  obs::note_trylock_fail(last);
}

}  // namespace
}  // namespace fairmpi
