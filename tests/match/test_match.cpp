#include "fairmpi/match/match_engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <numeric>
#include <string>
#include <vector>

#include "fairmpi/common/rng.hpp"

namespace fairmpi::match {
namespace {

using p2p::kAnySource;
using p2p::kAnyTag;
using p2p::Request;
using spc::Counter;

fabric::Packet make_eager(int src, std::uint32_t seq, int tag,
                          const std::string& payload = {}, std::uint32_t comm = 0) {
  fabric::Packet pkt;
  pkt.hdr.opcode = fabric::Opcode::kEager;
  pkt.hdr.src_rank = static_cast<std::uint16_t>(src);
  pkt.hdr.comm_id = comm;
  pkt.hdr.tag = tag;
  pkt.hdr.seq = seq;
  pkt.set_payload(payload.data(), payload.size());
  return pkt;
}

class MatchTest : public ::testing::Test {
 protected:
  spc::CounterSet spc_;
};

TEST_F(MatchTest, PostedThenIncomingDelivers) {
  MatchEngine eng(2, false, spc_);
  char buf[16] = {};
  Request req;
  req.init_recv(buf, sizeof buf, /*src=*/1, /*tag=*/7);
  EXPECT_FALSE(eng.post(&req));
  EXPECT_EQ(eng.incoming(make_eager(1, 0, 7, "hi")), 1u);
  ASSERT_TRUE(req.done());
  EXPECT_EQ(req.status().source, 1);
  EXPECT_EQ(req.status().tag, 7);
  EXPECT_EQ(req.status().size, 2u);
  EXPECT_FALSE(req.status().truncated);
  EXPECT_EQ(std::memcmp(buf, "hi", 2), 0);
}

TEST_F(MatchTest, IncomingThenPostedMatchesUnexpected) {
  MatchEngine eng(2, false, spc_);
  EXPECT_EQ(eng.incoming(make_eager(1, 0, 7, "yo")), 0u);
  EXPECT_EQ(eng.unexpected_count(), 1u);
  EXPECT_EQ(spc_.get(Counter::kUnexpectedMessages), 1u);
  char buf[16] = {};
  Request req;
  req.init_recv(buf, sizeof buf, 1, 7);
  EXPECT_TRUE(eng.post(&req));
  EXPECT_TRUE(req.done());
  EXPECT_EQ(eng.unexpected_count(), 0u);
  EXPECT_EQ(std::memcmp(buf, "yo", 2), 0);
}

TEST_F(MatchTest, TagFilterKeepsNonMatchingUnexpected) {
  MatchEngine eng(2, false, spc_);
  eng.incoming(make_eager(1, 0, 1));
  char buf[4];
  Request req;
  req.init_recv(buf, sizeof buf, 1, /*tag=*/2);
  EXPECT_FALSE(eng.post(&req));
  // Next in-sequence message with tag 2 matches the posted request even
  // though an older tag-1 message is still queued.
  EXPECT_EQ(eng.incoming(make_eager(1, 1, 2)), 1u);
  EXPECT_TRUE(req.done());
  EXPECT_EQ(eng.unexpected_count(), 1u);
}

TEST_F(MatchTest, OutOfSequenceIsBufferedUntilGapFills) {
  MatchEngine eng(2, false, spc_);
  char b1[4], b2[4], b3[4];
  Request r1, r2, r3;
  r1.init_recv(b1, 4, 1, 5);
  r2.init_recv(b2, 4, 1, 5);
  r3.init_recv(b3, 4, 1, 5);
  eng.post(&r1);
  eng.post(&r2);
  eng.post(&r3);

  // Arrive 2, 1, 0 — nothing can match until seq 0 shows up.
  EXPECT_EQ(eng.incoming(make_eager(1, 2, 5, "c")), 0u);
  EXPECT_EQ(eng.incoming(make_eager(1, 1, 5, "b")), 0u);
  EXPECT_EQ(eng.reorder_buffered(), 2u);
  EXPECT_EQ(spc_.get(Counter::kOutOfSequence), 2u);
  EXPECT_FALSE(r1.done());

  // Seq 0 arrives: all three drain in one call, in seq order.
  EXPECT_EQ(eng.incoming(make_eager(1, 0, 5, "a")), 3u);
  EXPECT_EQ(eng.reorder_buffered(), 0u);
  EXPECT_EQ(b1[0], 'a');
  EXPECT_EQ(b2[0], 'b');
  EXPECT_EQ(b3[0], 'c');
  EXPECT_EQ(spc_.get(Counter::kOosBufferPeak), 2u);
}

TEST_F(MatchTest, FifoMatchOrderWithinSeqStream) {
  MatchEngine eng(2, false, spc_);
  // Two receives posted with same filters: earlier post matches earlier seq.
  char b1[4] = {}, b2[4] = {};
  Request r1, r2;
  r1.init_recv(b1, 4, 1, 9);
  r2.init_recv(b2, 4, 1, 9);
  eng.post(&r1);
  eng.post(&r2);
  eng.incoming(make_eager(1, 0, 9, "1"));
  eng.incoming(make_eager(1, 1, 9, "2"));
  EXPECT_EQ(b1[0], '1');
  EXPECT_EQ(b2[0], '2');
}

TEST_F(MatchTest, AnyTagMatchesFirstAvailable) {
  MatchEngine eng(2, false, spc_);
  char buf[4] = {};
  Request req;
  req.init_recv(buf, 4, 1, kAnyTag);
  eng.post(&req);
  EXPECT_EQ(eng.incoming(make_eager(1, 0, 1234)), 1u);
  EXPECT_EQ(req.status().tag, 1234);
}

TEST_F(MatchTest, AnySourceMatchesAcrossPeers) {
  MatchEngine eng(4, false, spc_);
  char buf[4] = {};
  Request req;
  req.init_recv(buf, 4, kAnySource, 3);
  eng.post(&req);
  EXPECT_EQ(eng.incoming(make_eager(2, 0, 3, "x")), 1u);
  EXPECT_EQ(req.status().source, 2);
}

TEST_F(MatchTest, AnySourcePicksEarliestArrivalAmongUnexpected) {
  MatchEngine eng(4, false, spc_);
  eng.incoming(make_eager(3, 0, 8, "late-peer-first"));
  eng.incoming(make_eager(1, 0, 8, "second"));
  char buf[32] = {};
  Request req;
  req.init_recv(buf, sizeof buf, kAnySource, 8);
  EXPECT_TRUE(eng.post(&req));
  EXPECT_EQ(req.status().source, 3);  // earliest arrival wins
}

TEST_F(MatchTest, PostOrderRespectedBetweenSpecificAndWildcardQueues) {
  MatchEngine eng(2, false, spc_);
  char b1[4] = {}, b2[4] = {};
  Request wildcard, specific;
  wildcard.init_recv(b1, 4, kAnySource, 5);
  specific.init_recv(b2, 4, 1, 5);
  eng.post(&wildcard);  // posted first
  eng.post(&specific);
  eng.incoming(make_eager(1, 0, 5, "A"));
  EXPECT_TRUE(wildcard.done());
  EXPECT_FALSE(specific.done());

  // And the reverse order.
  MatchEngine eng2(2, false, spc_);
  Request wildcard2, specific2;
  wildcard2.init_recv(b1, 4, kAnySource, 5);
  specific2.init_recv(b2, 4, 1, 5);
  eng2.post(&specific2);  // posted first
  eng2.post(&wildcard2);
  eng2.incoming(make_eager(1, 0, 5, "B"));
  EXPECT_TRUE(specific2.done());
  EXPECT_FALSE(wildcard2.done());
}

TEST_F(MatchTest, TruncationFlaggedAndClamped) {
  MatchEngine eng(2, false, spc_);
  char small[3] = {};
  Request req;
  req.init_recv(small, sizeof small, 1, 1);
  eng.post(&req);
  eng.incoming(make_eager(1, 0, 1, "abcdefgh"));
  ASSERT_TRUE(req.done());
  EXPECT_TRUE(req.status().truncated);
  EXPECT_EQ(req.status().size, 8u);  // sent size reported
  EXPECT_EQ(std::memcmp(small, "abc", 3), 0);
}

TEST_F(MatchTest, LargePayloadThroughHeapPath) {
  MatchEngine eng(2, false, spc_);
  const std::string big(8192, 'm');
  std::vector<char> buf(8192);
  Request req;
  req.init_recv(buf.data(), buf.size(), 1, 1);
  eng.post(&req);
  eng.incoming(make_eager(1, 0, 1, big));
  ASSERT_TRUE(req.done());
  EXPECT_EQ(std::memcmp(buf.data(), big.data(), big.size()), 0);
}

TEST_F(MatchTest, OvertakingSkipsSequenceValidation) {
  MatchEngine eng(2, true, spc_);
  char b1[4] = {}, b2[4] = {};
  Request r1, r2;
  r1.init_recv(b1, 4, 1, 5);
  r2.init_recv(b2, 4, 1, 5);
  eng.post(&r1);
  eng.post(&r2);
  // Reverse seq order: with overtaking both match immediately, in arrival
  // order, and nothing is buffered.
  EXPECT_EQ(eng.incoming(make_eager(1, 1, 5, "X")), 1u);
  EXPECT_EQ(eng.incoming(make_eager(1, 0, 5, "Y")), 1u);
  EXPECT_EQ(b1[0], 'X');
  EXPECT_EQ(b2[0], 'Y');
  EXPECT_EQ(spc_.get(Counter::kOutOfSequence), 0u);
  EXPECT_EQ(eng.reorder_buffered(), 0u);
}

TEST_F(MatchTest, SeparateSeqStreamsPerPeer) {
  MatchEngine eng(3, false, spc_);
  // Peer 1 and peer 2 each start at seq 0; interleaving is fine.
  EXPECT_EQ(eng.incoming(make_eager(1, 0, 1, "a")), 0u);
  EXPECT_EQ(eng.incoming(make_eager(2, 0, 1, "b")), 0u);
  EXPECT_EQ(spc_.get(Counter::kOutOfSequence), 0u);
  EXPECT_EQ(eng.unexpected_count(), 2u);
}

TEST_F(MatchTest, MatchTimeAccumulates) {
  MatchEngine eng(2, false, spc_);
  for (std::uint32_t i = 0; i < 100; ++i) eng.incoming(make_eager(1, i, 1));
  EXPECT_GT(spc_.get(Counter::kMatchTimeNs), 0u);
  EXPECT_EQ(spc_.get(Counter::kMatchAttempts), 100u);
}

// Deterministic worst case for the reorder structures: deliver seq 1..N-1
// first with seq 0 withheld, so everything parks. Deltas 1..63 land in the
// fixed ring, deltas >= 64 take the spill-map fallback; a second epoch at
// base 300 repeats the pattern with expected_seq no longer a multiple of
// the window, so ring indices (seq & 63) wrap around the array. The final
// in-order packet must drain ring and spill in one incoming() call.
TEST_F(MatchTest, ReorderRingWraparoundAndSpillFallback) {
  constexpr std::uint32_t kPerEpoch = 300;  // > kReorderWindow => spill used
  constexpr int kEpochs = 2;
  MatchEngine eng(2, false, spc_);

  std::vector<Request> reqs(kPerEpoch * kEpochs);
  std::vector<std::uint32_t> bufs(kPerEpoch * kEpochs, 0xffffffffu);
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    reqs[i].init_recv(&bufs[i], sizeof(std::uint32_t), 1, 5);
    eng.post(&reqs[i]);
  }

  for (int epoch = 0; epoch < kEpochs; ++epoch) {
    const std::uint32_t base = static_cast<std::uint32_t>(epoch) * kPerEpoch;
    for (std::uint32_t d = 1; d < kPerEpoch; ++d) {
      const std::uint32_t seq = base + d;
      std::uint32_t payload = seq;
      EXPECT_EQ(eng.incoming(make_eager(
                    1, seq, 5, std::string(reinterpret_cast<char*>(&payload), 4))),
                0u);
    }
    EXPECT_EQ(eng.reorder_buffered(), kPerEpoch - 1);
    std::uint32_t payload = base;
    EXPECT_EQ(eng.incoming(make_eager(
                  1, base, 5, std::string(reinterpret_cast<char*>(&payload), 4))),
              kPerEpoch);
    EXPECT_EQ(eng.reorder_buffered(), 0u);
  }

  EXPECT_EQ(spc_.get(Counter::kOutOfSequence),
            static_cast<std::uint64_t>(kEpochs) * (kPerEpoch - 1));
  EXPECT_EQ(spc_.get(Counter::kOosBufferPeak), kPerEpoch - 1);
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    ASSERT_TRUE(reqs[i].done());
    EXPECT_EQ(bufs[i], static_cast<std::uint32_t>(i));
  }
}

// Property test: random arrival permutation + random wildcard mix still
// delivers every message exactly once, and (without overtaking) the i-th
// posted identical-filter receive gets the i-th sequence number.
class MatchPermutation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MatchPermutation, RandomArrivalOrderAlwaysDeliversAll) {
  spc::CounterSet spc;
  MatchEngine eng(2, false, spc);
  Xoshiro256 rng(GetParam());
  constexpr int kMessages = 200;

  std::vector<Request> reqs(kMessages);
  std::vector<std::uint32_t> bufs(kMessages, 0);
  for (int i = 0; i < kMessages; ++i) {
    const bool wildcard_tag = rng.bounded(4) == 0;
    reqs[i].init_recv(&bufs[i], sizeof(std::uint32_t), 1,
                      wildcard_tag ? kAnyTag : 42);
    eng.post(&reqs[i]);
  }

  std::vector<std::uint32_t> seqs(kMessages);
  std::iota(seqs.begin(), seqs.end(), 0);
  for (std::size_t i = seqs.size(); i > 1; --i) {
    std::swap(seqs[i - 1], seqs[rng.bounded(i)]);
  }
  std::size_t delivered = 0;
  for (const std::uint32_t seq : seqs) {
    std::uint32_t payload = seq;
    delivered += eng.incoming(
        make_eager(1, seq, 42, std::string(reinterpret_cast<char*>(&payload), 4)));
  }
  EXPECT_EQ(delivered, static_cast<std::size_t>(kMessages));
  EXPECT_EQ(eng.reorder_buffered(), 0u);
  EXPECT_EQ(eng.unexpected_count(), 0u);
  for (int i = 0; i < kMessages; ++i) {
    ASSERT_TRUE(reqs[i].done());
    // Non-overtaking: matching order == seq order == post order.
    EXPECT_EQ(bufs[i], static_cast<std::uint32_t>(i));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatchPermutation,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace fairmpi::match
