#include "fairmpi/progress/progress.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace fairmpi::progress {
namespace {

using spc::Counter;

fabric::Packet make_pkt(std::uint32_t seq) {
  fabric::Packet pkt;
  pkt.hdr.opcode = fabric::Opcode::kEager;
  pkt.hdr.seq = seq;
  return pkt;
}

/// Counts extractions; optionally blocks inside handle_packet to probe
/// mutual-exclusion properties of the engine designs.
class CountingSink : public PacketSink {
 public:
  std::size_t handle_packet(fabric::Packet&&) override {
    packets.fetch_add(1, std::memory_order_relaxed);
    if (hold_ns > 0) {
      const auto start = std::chrono::steady_clock::now();
      concurrent_now.fetch_add(1);
      while (std::chrono::steady_clock::now() - start < std::chrono::nanoseconds(hold_ns)) {
      }
      max_concurrent.store(std::max(max_concurrent.load(), concurrent_now.load()));
      concurrent_now.fetch_sub(1);
    }
    return 1;
  }
  std::size_t handle_completion(const fabric::Completion&) override {
    completions.fetch_add(1, std::memory_order_relaxed);
    return 1;
  }

  std::atomic<std::size_t> packets{0};
  std::atomic<std::size_t> completions{0};
  long hold_ns = 0;
  std::atomic<int> concurrent_now{0};
  std::atomic<int> max_concurrent{0};
};

class ProgressTest : public ::testing::Test {
 protected:
  void build(int instances, cri::Assignment assign, ProgressMode mode, int batch = 64) {
    fabric_ = std::make_unique<fabric::Fabric>(std::vector<int>{instances});
    pool_ = std::make_unique<cri::CriPool>(*fabric_, 0, assign);
    engine_ = std::make_unique<ProgressEngine>(*pool_, sink_, mode, spc_, batch);
  }

  void inject(int ctx, int count) {
    for (int i = 0; i < count; ++i) {
      ASSERT_TRUE(fabric_->nic(0).context(ctx).rx().try_push(make_pkt(0)));
    }
  }

  spc::CounterSet spc_;
  CountingSink sink_;
  std::unique_ptr<fabric::Fabric> fabric_;
  std::unique_ptr<cri::CriPool> pool_;
  std::unique_ptr<ProgressEngine> engine_;
};

TEST_F(ProgressTest, SerialDrainsAllInstances) {
  build(4, cri::Assignment::kRoundRobin, ProgressMode::kSerial);
  inject(0, 3);
  inject(2, 2);
  inject(3, 1);
  EXPECT_EQ(engine_->progress(), 6u);
  EXPECT_EQ(sink_.packets.load(), 6u);
  EXPECT_EQ(engine_->progress(), 0u);
}

TEST_F(ProgressTest, SerialRespectsBatchLimitPerInstance) {
  build(1, cri::Assignment::kRoundRobin, ProgressMode::kSerial, /*batch=*/4);
  inject(0, 10);
  EXPECT_EQ(engine_->progress(), 4u);
  EXPECT_EQ(engine_->progress(), 4u);
  EXPECT_EQ(engine_->progress(), 2u);
}

TEST_F(ProgressTest, SerialGateExcludesSecondThread) {
  // batch=1 so the holder's call consumes exactly one packet.
  build(1, cri::Assignment::kRoundRobin, ProgressMode::kSerial, /*batch=*/1);
  sink_.hold_ns = 50'000'000;  // 50 ms inside the sink
  inject(0, 1);
  std::thread holder([&] { engine_->progress(); });
  // Wait until the holder is inside the sink, then try to progress.
  while (sink_.concurrent_now.load() == 0) {
  }
  inject(0, 1);
  EXPECT_EQ(engine_->progress(), 0u);  // gate busy -> immediate return
  EXPECT_GE(spc_.get(Counter::kInstanceTrylockFail), 1u);
  holder.join();
  sink_.hold_ns = 0;
  EXPECT_EQ(engine_->progress(), 1u);  // second packet still there
}

TEST_F(ProgressTest, ConcurrentAllowsParallelExtraction) {
  build(2, cri::Assignment::kDedicated, ProgressMode::kConcurrent);
  sink_.hold_ns = 20'000'000;  // 20 ms
  inject(0, 1);
  inject(1, 1);
  std::thread a([&] { engine_->progress(); });
  std::thread b([&] { engine_->progress(); });
  a.join();
  b.join();
  EXPECT_EQ(sink_.packets.load(), 2u);
  // Both threads should have been inside the sink simultaneously (each on
  // its own dedicated instance).
  EXPECT_EQ(sink_.max_concurrent.load(), 2);
}

TEST_F(ProgressTest, ConcurrentOwnInstanceFirst) {
  build(4, cri::Assignment::kDedicated, ProgressMode::kConcurrent);
  const int own = pool_->dedicated_id();
  inject(own, 1);
  EXPECT_EQ(engine_->progress(), 1u);
  // Fallback sweep not needed: only own instance was touched.
}

TEST_F(ProgressTest, ConcurrentFallbackSweepFindsOrphanedInstances) {
  // Alg. 2 liveness: a completion sitting on an instance no thread owns is
  // still harvested by any progressing thread once its own instance is dry.
  build(4, cri::Assignment::kDedicated, ProgressMode::kConcurrent);
  const int own = pool_->dedicated_id();
  const int orphan = (own + 2) % 4;
  inject(orphan, 5);
  std::size_t total = 0;
  for (int i = 0; i < 10 && total < 5; ++i) total += engine_->progress();
  EXPECT_EQ(total, 5u);
}

TEST_F(ProgressTest, ConcurrentSkipsLockedInstanceAndMovesOn) {
  build(2, cri::Assignment::kDedicated, ProgressMode::kConcurrent);
  const int own = pool_->dedicated_id();
  const int other = 1 - own;
  inject(other, 1);
  // Hold our own instance's lock from another thread: progress must skip it
  // (try-lock) and still find the other instance's packet via the sweep.
  pool_->instance(own).lock().lock();
  EXPECT_EQ(engine_->progress(), 1u);
  pool_->instance(own).lock().unlock();
  EXPECT_GE(spc_.get(Counter::kInstanceTrylockFail), 1u);
}

TEST_F(ProgressTest, CompletionQueueDrainedBeforePackets) {
  build(1, cri::Assignment::kRoundRobin, ProgressMode::kSerial);
  std::atomic<std::uint64_t> pending{1};
  fabric::Completion comp{fabric::Completion::Kind::kRmaDone, &pending};
  // CountingSink ignores the cookie; use the real kind routing only.
  ASSERT_TRUE(fabric_->nic(0).context(0).cq().try_push(comp));
  inject(0, 2);
  EXPECT_EQ(engine_->progress(), 3u);
  EXPECT_EQ(sink_.completions.load(), 1u);
  EXPECT_EQ(sink_.packets.load(), 2u);
}

TEST_F(ProgressTest, SpcCountsCallsAndCompletions) {
  build(1, cri::Assignment::kRoundRobin, ProgressMode::kSerial);
  inject(0, 2);
  engine_->progress();
  engine_->progress();
  EXPECT_EQ(spc_.get(Counter::kProgressCalls), 2u);
  EXPECT_EQ(spc_.get(Counter::kProgressCompletions), 2u);
}

TEST_F(ProgressTest, ManyThreadsManyInstancesNoLoss) {
  build(4, cri::Assignment::kDedicated, ProgressMode::kConcurrent);
  constexpr int kTotal = 20000;
  // Producer floods all 4 rings while 3 consumers progress concurrently.
  std::thread producer([&] {
    int sent = 0;
    while (sent < kTotal) {
      if (fabric_->nic(0).context(sent % 4).rx().try_push(make_pkt(0))) ++sent;
    }
  });
  std::vector<std::thread> consumers;
  for (int t = 0; t < 3; ++t) {
    consumers.emplace_back([&] {
      while (sink_.packets.load(std::memory_order_relaxed) < kTotal) {
        engine_->progress();
      }
    });
  }
  producer.join();
  for (auto& t : consumers) t.join();
  EXPECT_EQ(sink_.packets.load(), static_cast<std::size_t>(kTotal));
}

TEST(ProgressModeNames, Names) {
  EXPECT_STREQ(progress_mode_name(ProgressMode::kSerial), "serial");
  EXPECT_STREQ(progress_mode_name(ProgressMode::kConcurrent), "concurrent");
}

}  // namespace
}  // namespace fairmpi::progress
