// Watchdog stall-episode semantics, driven through the real lock-free
// instrumentation (NetworkContext::delivered() / RxQueue::size_approx())
// by pushing and popping packets on a CRI's RX queue directly:
//   - a frozen backlog escalates once per episode after stall_sweeps;
//   - *partial* progress (one packet drained, backlog remains) ends the
//     episode and re-arms the strike counter — the partial-progress
//     regression: `consumed != last` treated racy decreases as progress,
//     while requiring a full drain would never re-arm a slow consumer;
//   - an escalation names the peer the ft detector currently suspects.
#include "fairmpi/progress/watchdog.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "fairmpi/cri/cri.hpp"
#include "fairmpi/fabric/fabric.hpp"
#include "fairmpi/spc/spc.hpp"
#include "fairmpi/trace/trace.hpp"

namespace fairmpi::progress {
namespace {

fabric::Packet make_pkt(std::uint32_t seq) {
  fabric::Packet pkt;
  pkt.hdr.opcode = fabric::Opcode::kEager;
  pkt.hdr.seq = seq;
  return pkt;
}

class WatchdogTest : public ::testing::Test {
 protected:
  WatchdogTest()
      : fabric_(std::vector<int>{1}),
        pool_(fabric_, 0, cri::Assignment::kRoundRobin),
        dog_(pool_, spc_, tracer_, /*interval_ns=*/0, /*stall_sweeps=*/2,
             /*rndv_stall_ns=*/~std::uint64_t{0}) {}

  fabric::RxQueue& rx() { return pool_.instance(0).context().rx(); }

  void push(int n) {
    for (int i = 0; i < n; ++i) {
      ASSERT_TRUE(rx().try_push(make_pkt(static_cast<std::uint32_t>(i))));
    }
  }

  fabric::Fabric fabric_;
  cri::CriPool pool_;
  spc::CounterSet spc_;
  trace::Tracer tracer_;
  Watchdog dog_;
};

TEST_F(WatchdogTest, FrozenBacklogEscalatesOncePerEpisode) {
  push(4);
  std::uint64_t now = 1;
  EXPECT_EQ(dog_.poll(now++), 0u);  // strike 1: frontier baselined, frozen
  EXPECT_EQ(dog_.poll(now++), 1u);  // strike 2: escalate
  EXPECT_EQ(dog_.stalls_flagged(), 1u);
  // Still frozen: the episode already escalated — no repeat reports.
  for (int i = 0; i < 5; ++i) EXPECT_EQ(dog_.poll(now++), 0u);
  EXPECT_EQ(dog_.stalls_flagged(), 1u);
  EXPECT_EQ(spc_.snapshot().values[static_cast<std::size_t>(
                spc::Counter::kWatchdogStalls)],
            1u);
}

TEST_F(WatchdogTest, PartialProgressResetsTheEpisode) {
  push(4);
  std::uint64_t now = 1;
  dog_.poll(now++);
  dog_.poll(now++);
  ASSERT_EQ(dog_.stalls_flagged(), 1u);

  // Drain ONE packet of four: delta > 0 with a backlog remaining must end
  // the episode (partial progress is progress).
  fabric::Packet out;
  ASSERT_TRUE(rx().try_pop(out));
  EXPECT_EQ(dog_.poll(now++), 0u);  // reset observed, episode re-armed

  // Freeze again: a full strike run is required before the next report.
  EXPECT_EQ(dog_.poll(now++), 0u);
  EXPECT_EQ(dog_.poll(now++), 1u);
  EXPECT_EQ(dog_.stalls_flagged(), 2u);
}

TEST_F(WatchdogTest, EmptyBacklogNeverEscalates) {
  std::uint64_t now = 1;
  for (int i = 0; i < 10; ++i) EXPECT_EQ(dog_.poll(now++), 0u);
  EXPECT_EQ(dog_.stalls_flagged(), 0u);
}

struct Captured {
  std::vector<common::Error> errors;
};

void capture_sink(const common::Error& err, void* user) {
  static_cast<Captured*>(user)->errors.push_back(err);
}

TEST_F(WatchdogTest, EscalationAttributesTheSuspectedPeer) {
  Captured cap;
  dog_.set_error_sink(&capture_sink, &cap, /*rank=*/0);
  std::atomic<int> hint{-1};
  dog_.set_suspect_hint(&hint);

  push(2);
  std::uint64_t now = 1;
  dog_.poll(now++);
  hint.store(1, std::memory_order_relaxed);  // detector now suspects rank 1
  dog_.poll(now++);
  ASSERT_EQ(cap.errors.size(), 1u);
  EXPECT_EQ(cap.errors[0].code, common::ErrorCode::kStalledInstance);
  EXPECT_EQ(cap.errors[0].rank, 0);
  EXPECT_EQ(cap.errors[0].peer, 1);  // attributed, not -1
  EXPECT_EQ(cap.errors[0].detail, 0u);  // instance id

  // Without a hint installed the report stays unattributed.
  fabric::Packet out;
  ASSERT_TRUE(rx().try_pop(out));
  dog_.poll(now++);  // episode reset
  dog_.set_suspect_hint(nullptr);
  dog_.poll(now++);
  dog_.poll(now++);
  ASSERT_EQ(cap.errors.size(), 2u);
  EXPECT_EQ(cap.errors[1].peer, -1);
}

}  // namespace
}  // namespace fairmpi::progress
