#include "fairmpi/fabric/fabric.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

namespace fairmpi::fabric {
namespace {

Packet make_packet(int src, std::uint32_t seq, const std::string& payload = {}) {
  Packet pkt;
  pkt.hdr.opcode = Opcode::kEager;
  pkt.hdr.src_rank = static_cast<std::uint16_t>(src);
  pkt.hdr.seq = seq;
  pkt.set_payload(payload.data(), payload.size());
  return pkt;
}

TEST(Wire, HeaderIsCompact) {
  EXPECT_EQ(sizeof(WireHeader), 32u);
}

TEST(Wire, InlinePayloadRoundTrip) {
  Packet pkt = make_packet(0, 0, "hello");
  ASSERT_EQ(pkt.hdr.payload_size, 5u);
  EXPECT_EQ(pkt.heap, nullptr);
  EXPECT_EQ(std::memcmp(pkt.payload(), "hello", 5), 0);
}

TEST(Wire, HeapPayloadRoundTrip) {
  const std::string big(kInlineBytes + 100, 'z');
  Packet pkt = make_packet(0, 0, big);
  EXPECT_NE(pkt.heap, nullptr);
  EXPECT_EQ(std::memcmp(pkt.payload(), big.data(), big.size()), 0);
}

TEST(Wire, ZeroBytePayload) {
  Packet pkt = make_packet(0, 0);
  EXPECT_EQ(pkt.hdr.payload_size, 0u);
  EXPECT_EQ(pkt.payload(), nullptr);
}

TEST(Wire, MoveTransfersHeapOwnership) {
  const std::string big(kInlineBytes * 2, 'q');
  Packet a = make_packet(1, 7, big);
  Packet b = std::move(a);
  EXPECT_EQ(a.heap, nullptr);  // NOLINT(bugprone-use-after-move): asserting move semantics
  ASSERT_NE(b.heap, nullptr);
  EXPECT_EQ(std::memcmp(b.payload(), big.data(), big.size()), 0);
}

TEST(Fabric, RouteModulo) {
  Fabric fabric({4, 2});
  // Sender context i lands in receiver context i mod n_receiver.
  EXPECT_EQ(fabric.route(/*dst=*/1, /*src_ctx=*/0), 0);
  EXPECT_EQ(fabric.route(1, 1), 1);
  EXPECT_EQ(fabric.route(1, 2), 0);
  EXPECT_EQ(fabric.route(1, 3), 1);
  EXPECT_EQ(fabric.route(0, 1), 1);
  EXPECT_EQ(fabric.route(0, 5), 1);
}

TEST(Fabric, DeliverLandsInRoutedContext) {
  Fabric fabric({2, 2});
  ASSERT_TRUE(fabric.try_deliver(1, /*src_rank=*/0, /*src_ctx=*/1, make_packet(0, 42)));
  EXPECT_EQ(fabric.nic(1).context(1).delivered(), 1u);
  EXPECT_EQ(fabric.nic(1).context(0).delivered(), 0u);
  Packet out;
  ASSERT_TRUE(fabric.nic(1).context(1).rx().try_pop(out));
  EXPECT_EQ(out.hdr.seq, 42u);
  EXPECT_FALSE(fabric.nic(1).context(0).rx().try_pop(out));
}

TEST(Fabric, BackpressureWhenRingFull) {
  FabricParams params;
  params.rx_ring_entries = 4;
  Fabric fabric({1, 1}, params);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(fabric.try_deliver(1, 0, 0, make_packet(0, static_cast<std::uint32_t>(i))));
  }
  EXPECT_FALSE(fabric.try_deliver(1, 0, 0, make_packet(0, 99)));
  Packet out;
  ASSERT_TRUE(fabric.nic(1).context(0).rx().try_pop(out));
  EXPECT_TRUE(fabric.try_deliver(1, 0, 0, make_packet(0, 99)));
}

TEST(Fabric, EndpointStampsSourceContext) {
  Fabric fabric({3, 3});
  Endpoint ep(fabric, fabric.nic(0).context(2), /*dst=*/1);
  ASSERT_TRUE(ep.try_send(make_packet(0, 5)));
  Packet out;
  ASSERT_TRUE(fabric.nic(1).context(2).rx().try_pop(out));
  EXPECT_EQ(out.hdr.src_ctx, 2u);
}

TEST(Fabric, SelfDeliveryWorks) {
  Fabric fabric({2});
  ASSERT_TRUE(fabric.try_deliver(0, /*src_rank=*/0, /*src_ctx=*/1, make_packet(0, 3)));
  Packet out;
  ASSERT_TRUE(fabric.nic(0).context(1).rx().try_pop(out));
  EXPECT_EQ(out.hdr.seq, 3u);
}

TEST(Fabric, AsymmetricContextCounts) {
  // 8-context sender talking to a 1-context receiver: everything funnels
  // into ring 0 (the paper's single-instance receiver).
  Fabric fabric({8, 1});
  for (int ctx = 0; ctx < 8; ++ctx) {
    ASSERT_TRUE(fabric.try_deliver(1, 0, ctx, make_packet(0, static_cast<std::uint32_t>(ctx))));
  }
  EXPECT_EQ(fabric.nic(1).context(0).delivered(), 8u);
}

}  // namespace
}  // namespace fairmpi::fabric
