// Unit tests for the seeded fault injector: deterministic fates, the fault
// model's per-fault contracts (drop/dup/delay/reorder/corrupt), packet
// conservation, and checksum detection of injected corruption.
#include "fairmpi/fabric/faults.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

namespace fairmpi::fabric {
namespace {

Packet make_packet(std::uint32_t seq, const std::string& payload = "payload") {
  Packet pkt;
  pkt.hdr.opcode = Opcode::kEager;
  pkt.hdr.src_rank = 0;
  pkt.hdr.tag = 7;
  pkt.hdr.seq = seq;
  pkt.set_payload(payload.data(), payload.size());
  return pkt;
}

/// Compressed fate of one injection: how many packets came out, which one
/// was the caller's, and the seq numbers emitted (order matters).
struct Fate {
  std::size_t n;
  int primary;
  std::vector<std::uint32_t> seqs;

  bool operator==(const Fate&) const = default;
};

std::vector<Fate> run_sequence(FaultInjector& inj, int count) {
  std::vector<Fate> fates;
  for (int i = 0; i < count; ++i) {
    FaultInjector::Batch batch;
    inj.process(0, 1, make_packet(static_cast<std::uint32_t>(i)), batch);
    Fate f{batch.n, batch.primary, {}};
    for (std::size_t k = 0; k < batch.n; ++k) f.seqs.push_back(batch.pkts[k].hdr.seq);
    fates.push_back(std::move(f));
  }
  return fates;
}

TEST(FaultInjector, SameSeedSameFates) {
  FaultParams params;
  params.drop = 0.1;
  params.dup = 0.1;
  params.delay = 0.1;
  params.reorder = 0.1;
  params.seed = 42;

  FaultInjector a(2, params);
  FaultInjector b(2, params);
  EXPECT_EQ(run_sequence(a, 500), run_sequence(b, 500));
}

TEST(FaultInjector, DifferentSeedsDiverge) {
  FaultParams params;
  params.drop = 0.2;
  params.dup = 0.2;
  params.seed = 1;
  FaultInjector a(2, params);
  params.seed = 2;
  FaultInjector b(2, params);
  EXPECT_NE(run_sequence(a, 500), run_sequence(b, 500));
}

TEST(FaultInjector, LinksHaveIndependentStreams) {
  FaultParams params;
  params.drop = 0.5;
  params.seed = 7;
  FaultInjector inj(3, params);
  // Same per-link packet order on two different links: the forked streams
  // must not be identical copies of each other.
  std::vector<int> fates01;
  std::vector<int> fates12;
  for (int i = 0; i < 200; ++i) {
    FaultInjector::Batch b01;
    FaultInjector::Batch b12;
    inj.process(0, 1, make_packet(static_cast<std::uint32_t>(i)), b01);
    inj.process(1, 2, make_packet(static_cast<std::uint32_t>(i)), b12);
    fates01.push_back(b01.primary);
    fates12.push_back(b12.primary);
  }
  EXPECT_NE(fates01, fates12);
}

TEST(FaultInjector, ZeroProbabilitiesPassThrough) {
  FaultParams params;  // all zero
  EXPECT_FALSE(params.any());
  FaultInjector inj(2, params);
  for (int i = 0; i < 100; ++i) {
    FaultInjector::Batch batch;
    inj.process(0, 1, make_packet(static_cast<std::uint32_t>(i)), batch);
    ASSERT_EQ(batch.n, 1u);
    ASSERT_EQ(batch.primary, 0);
    EXPECT_EQ(batch.pkts[0].hdr.seq, static_cast<std::uint32_t>(i));
    EXPECT_EQ(std::memcmp(batch.pkts[0].payload(), "payload", 7), 0);
  }
  EXPECT_EQ(inj.stats().injected.load(), 100u);
  EXPECT_EQ(inj.stats().dropped.load(), 0u);
  EXPECT_EQ(inj.stats().duplicated.load(), 0u);
  EXPECT_EQ(inj.stats().delayed.load(), 0u);
  EXPECT_EQ(inj.stats().corrupted.load(), 0u);
  EXPECT_EQ(inj.held(), 0u);
}

TEST(FaultInjector, CertainDropSwallowsEverything) {
  FaultParams params;
  params.drop = 1.0;
  FaultInjector inj(2, params);
  for (int i = 0; i < 50; ++i) {
    FaultInjector::Batch batch;
    inj.process(0, 1, make_packet(static_cast<std::uint32_t>(i)), batch);
    EXPECT_EQ(batch.n, 0u);
    EXPECT_EQ(batch.primary, -1);
  }
  EXPECT_EQ(inj.stats().dropped.load(), 50u);
}

TEST(FaultInjector, CertainDupEmitsDeepClone) {
  FaultParams params;
  params.dup = 1.0;
  FaultInjector inj(2, params);
  // Heap payload so a shallow copy would alias the clone.
  const std::string big(kInlineBytes + 32, 'd');
  FaultInjector::Batch batch;
  inj.process(0, 1, make_packet(9, big), batch);
  ASSERT_EQ(batch.n, 2u);
  ASSERT_GE(batch.primary, 0);
  EXPECT_EQ(batch.pkts[0].hdr.seq, 9u);
  EXPECT_EQ(batch.pkts[1].hdr.seq, 9u);
  ASSERT_NE(batch.pkts[0].payload(), nullptr);
  ASSERT_NE(batch.pkts[1].payload(), nullptr);
  EXPECT_NE(batch.pkts[0].payload(), batch.pkts[1].payload());  // deep clone
  EXPECT_EQ(std::memcmp(batch.pkts[0].payload(), big.data(), big.size()), 0);
  EXPECT_EQ(std::memcmp(batch.pkts[1].payload(), big.data(), big.size()), 0);
  EXPECT_EQ(inj.stats().duplicated.load(), 1u);
}

TEST(FaultInjector, DelayParksWithinHoldbackBound) {
  FaultParams params;
  params.delay = 1.0;
  FaultInjector inj(2, params);
  std::size_t emitted = 0;
  for (int i = 0; i < 200; ++i) {
    FaultInjector::Batch batch;
    inj.process(0, 1, make_packet(static_cast<std::uint32_t>(i)), batch);
    emitted += batch.n;
    EXPECT_LE(inj.held(), FaultInjector::kHoldback);
  }
  // Count-based release: most parked packets must have come back out.
  EXPECT_GT(inj.stats().delayed.load(), 0u);
  EXPECT_GT(inj.stats().released.load(), 0u);
  // Conservation: every injected packet is emitted, still parked or dropped.
  EXPECT_EQ(emitted + inj.held() + inj.stats().dropped.load(), 200u);
}

TEST(FaultInjector, ConservationUnderMixedFaults) {
  FaultParams params;
  params.drop = 0.1;
  params.dup = 0.1;
  params.delay = 0.1;
  params.reorder = 0.1;
  params.seed = 0xfeed;
  FaultInjector inj(2, params);
  std::size_t emitted = 0;
  for (int i = 0; i < 1000; ++i) {
    FaultInjector::Batch batch;
    inj.process(0, 1, make_packet(static_cast<std::uint32_t>(i)), batch);
    emitted += batch.n;
  }
  const auto& s = inj.stats();
  EXPECT_EQ(s.injected.load(), 1000u);
  EXPECT_GT(s.dropped.load(), 0u);
  EXPECT_GT(s.duplicated.load(), 0u);
  EXPECT_GT(s.reordered.load(), 0u);
  // emitted = injected + dup clones − dropped − still parked.
  EXPECT_EQ(emitted, 1000u + s.duplicated.load() - s.dropped.load() - inj.held());
}

TEST(FaultInjector, CorruptionIsDetectedByChecksum) {
  FaultParams params;
  params.corrupt = 1.0;
  params.seed = 0xc0;
  FaultInjector inj(2, params);
  int detected = 0;
  for (int i = 0; i < 100; ++i) {
    // Stamp before injection, exactly as Fabric::try_deliver does.
    Packet pkt = make_packet(static_cast<std::uint32_t>(i), "corruptible payload");
    stamp_checksum(pkt);
    ASSERT_TRUE(verify_checksum(pkt));
    FaultInjector::Batch batch;
    inj.process(0, 1, std::move(pkt), batch);
    ASSERT_EQ(batch.n, 1u);
    if (!verify_checksum(batch.pkts[0])) ++detected;
  }
  EXPECT_EQ(inj.stats().corrupted.load(), 100u);
  // A 16-bit folded FNV cannot promise 100% detection in principle, but a
  // single flipped bit should essentially never collide.
  EXPECT_GT(detected, 90);
}

TEST(FaultInjector, KillRankAtEatsFromTheNthInjection) {
  // kill_rank_at(r, N) pins the death to an injection *index*: the charge
  // happens before the liveness check, so packet N itself is the first one
  // the wire eats. No other faults configured — every fate is the kill's.
  FaultParams params;
  params.seed = 11;
  FaultInjector inj(2, params);
  inj.kill_rank_at(0, 10);

  for (int i = 1; i <= 20; ++i) {
    FaultInjector::Batch batch;
    const bool was_dead = inj.rank_dead(0);
    inj.process(0, 1, make_packet(static_cast<std::uint32_t>(i)), batch);
    if (i < 10) {
      EXPECT_FALSE(was_dead) << "packet " << i;
      ASSERT_EQ(batch.n, 1u) << "packet " << i;
      EXPECT_EQ(batch.primary, 0);
    } else {
      ASSERT_EQ(batch.n, 0u) << "packet " << i;
      EXPECT_EQ(batch.primary, -1);
      EXPECT_TRUE(inj.rank_dead(0));
    }
  }
  const auto& s = inj.stats();
  EXPECT_EQ(s.injected.load(), 9u);     // dead-rank packets never count
  EXPECT_EQ(s.kill_drops.load(), 11u);  // packets 10..20
}

TEST(FaultInjector, KillIsDeterministicAcrossSeedReforks) {
  // The rank-kill must compose with the probabilistic faults without
  // perturbing determinism: two injectors with the same seed and the same
  // kill point observe identical fates for the whole sequence.
  FaultParams params;
  params.drop = 0.1;
  params.dup = 0.1;
  params.delay = 0.1;
  params.reorder = 0.1;
  params.seed = 42;

  FaultInjector a(2, params);
  FaultInjector b(2, params);
  a.kill_rank_at(0, 100);
  b.kill_rank_at(0, 100);
  EXPECT_EQ(run_sequence(a, 300), run_sequence(b, 300));
  EXPECT_EQ(a.stats().kill_drops.load(), b.stats().kill_drops.load());
  EXPECT_EQ(a.stats().injected.load(), b.stats().injected.load());
  EXPECT_GT(a.stats().kill_drops.load(), 0u);
}

TEST(FaultInjector, DeadDestinationEatsInboundPackets) {
  // Permanent link-down is bidirectional: packets *to* a corpse vanish too,
  // and the sender stays alive.
  FaultParams params;
  params.seed = 3;
  FaultInjector inj(2, params);
  inj.kill_rank(1);
  EXPECT_TRUE(inj.rank_dead(1));
  EXPECT_FALSE(inj.rank_dead(0));

  for (int i = 0; i < 5; ++i) {
    FaultInjector::Batch batch;
    inj.process(0, 1, make_packet(static_cast<std::uint32_t>(i)), batch);
    EXPECT_EQ(batch.n, 0u);
  }
  EXPECT_FALSE(inj.rank_dead(0));  // sending into the void is not fatal
  EXPECT_EQ(inj.stats().kill_drops.load(), 5u);
  EXPECT_EQ(inj.stats().injected.load(), 0u);
}

}  // namespace
}  // namespace fairmpi::fabric
