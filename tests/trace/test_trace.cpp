#include "fairmpi/trace/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <thread>
#include <vector>

#include "fairmpi/core/universe.hpp"

namespace fairmpi::trace {
namespace {

TEST(Trace, DisabledByDefault) {
  Tracer t(64);
  EXPECT_FALSE(t.enabled());
  t.record(Event::kSend, 1, 2);
  EXPECT_EQ(t.recorded(), 0u);
  EXPECT_TRUE(t.snapshot().empty());
}

TEST(Trace, ZeroCapacityNeverEnables) {
  Tracer t(0);
  t.enable(true);
  EXPECT_FALSE(t.enabled());
  t.record(Event::kSend);
  EXPECT_EQ(t.recorded(), 0u);
}

TEST(Trace, RecordsInOrder) {
  Tracer t(64);
  t.enable(true);
  t.record(Event::kSend, 1, 10);
  t.record(Event::kRecvPost, 2, 20);
  t.record(Event::kProgress, 3);
  const auto entries = t.snapshot();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].event, Event::kSend);
  EXPECT_EQ(entries[0].a, 1u);
  EXPECT_EQ(entries[0].b, 10u);
  EXPECT_EQ(entries[1].event, Event::kRecvPost);
  EXPECT_EQ(entries[2].event, Event::kProgress);
  EXPECT_LE(entries[0].timestamp_ns, entries[2].timestamp_ns);
}

TEST(Trace, RingOverwritesOldest) {
  Tracer t(8);
  t.enable(true);
  for (std::uint32_t i = 0; i < 20; ++i) t.record(Event::kSend, i);
  const auto entries = t.snapshot();
  EXPECT_EQ(entries.size(), 8u);
  // Only the most recent 8 survive.
  for (const auto& e : entries) EXPECT_GE(e.a, 12u);
  EXPECT_EQ(t.recorded(), 20u);
}

TEST(Trace, ConcurrentRecordingDoesNotCorrupt) {
  Tracer t(1024);
  t.enable(true);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int th = 0; th < kThreads; ++th) {
    threads.emplace_back([&, th] {
      for (int i = 0; i < kPerThread; ++i) {
        t.record(Event::kSend, static_cast<std::uint32_t>(th),
                 static_cast<std::uint32_t>(i));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(t.recorded(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  const auto entries = t.snapshot();
  EXPECT_LE(entries.size(), 1024u);
  for (const auto& e : entries) {
    EXPECT_EQ(e.event, Event::kSend);
    EXPECT_LT(e.a, static_cast<std::uint32_t>(kThreads));
    EXPECT_LT(e.b, static_cast<std::uint32_t>(kPerThread));
  }
}

TEST(Trace, DumpIsReadable) {
  Tracer t(16);
  t.enable(true);
  t.record(Event::kRmaPut, 1, 4096);
  std::ostringstream os;
  t.dump(os);
  EXPECT_NE(os.str().find("RmaPut"), std::string::npos);
  EXPECT_NE(os.str().find("a=1"), std::string::npos);
  EXPECT_NE(os.str().find("b=4096"), std::string::npos);
}

TEST(Trace, EventNamesDistinct) {
  EXPECT_STREQ(event_name(Event::kSend), "Send");
  EXPECT_STREQ(event_name(Event::kRndvDone), "RndvDone");
  EXPECT_STREQ(event_name(Event::kRmaFlush), "RmaFlush");
}

TEST(Trace, EngineIntegrationCapturesTraffic) {
  Config cfg;
  cfg.trace_entries = 256;
  Universe uni(cfg);
  uni.rank(0).tracer().enable(true);
  uni.rank(1).tracer().enable(true);

  std::thread receiver([&] {
    int got = 0;
    uni.rank(1).recv(kWorldComm, 0, 9, &got, sizeof got);
  });
  const int payload = 1;
  uni.rank(0).send(kWorldComm, 1, 9, &payload, sizeof payload);
  receiver.join();

  bool saw_send = false;
  for (const auto& e : uni.rank(0).tracer().snapshot()) {
    saw_send = saw_send || (e.event == Event::kSend && e.a == 1 && e.b == 9);
  }
  EXPECT_TRUE(saw_send);
  bool saw_post = false, saw_progress = false;
  for (const auto& e : uni.rank(1).tracer().snapshot()) {
    saw_post = saw_post || e.event == Event::kRecvPost;
    saw_progress = saw_progress || e.event == Event::kProgress;
  }
  EXPECT_TRUE(saw_post);
  EXPECT_TRUE(saw_progress);
}

TEST(Trace, EngineTracingOffByDefaultCostsNothingVisible) {
  Universe uni(Config{});  // trace_entries = 0
  const int payload = 1;
  std::thread receiver([&] {
    int got = 0;
    uni.rank(1).recv(kWorldComm, 0, 1, &got, sizeof got);
  });
  uni.rank(0).send(kWorldComm, 1, 1, &payload, sizeof payload);
  receiver.join();
  EXPECT_EQ(uni.rank(0).tracer().recorded(), 0u);
}

}  // namespace
}  // namespace fairmpi::trace
