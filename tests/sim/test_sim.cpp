#include "fairmpi/sim/sim.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace fairmpi::sim {
namespace {

TEST(Sim, DelayAdvancesVirtualTime) {
  Simulation sim;
  std::vector<Time> stamps;
  sim.spawn([](Simulation& s, std::vector<Time>& out) -> Task {
    out.push_back(s.now());
    co_await s.delay(100);
    out.push_back(s.now());
    co_await s.delay(250);
    out.push_back(s.now());
  }(sim, stamps));
  const Time end = sim.run();
  ASSERT_EQ(stamps.size(), 3u);
  EXPECT_EQ(stamps[0], 0u);
  EXPECT_EQ(stamps[1], 100u);
  EXPECT_EQ(stamps[2], 350u);
  EXPECT_EQ(end, 350u);
}

TEST(Sim, ActorsInterleaveByTime) {
  Simulation sim;
  std::vector<std::string> trace;
  auto actor = [](Simulation& s, std::vector<std::string>& out, std::string name,
                  Time step) -> Task {
    for (int i = 0; i < 3; ++i) {
      co_await s.delay(step);
      out.push_back(name + std::to_string(i));
    }
  };
  sim.spawn(actor(sim, trace, "a", 100));
  sim.spawn(actor(sim, trace, "b", 70));
  sim.run();
  // b: 70,140,210  a: 100,200,300
  const std::vector<std::string> expect{"b0", "a0", "b1", "a1", "b2", "a2"};
  EXPECT_EQ(trace, expect);
}

TEST(Sim, TieBreakIsSpawnOrder) {
  Simulation sim;
  std::vector<int> order;
  auto actor = [](Simulation& s, std::vector<int>& out, int id) -> Task {
    co_await s.delay(50);
    out.push_back(id);
  };
  for (int i = 0; i < 5; ++i) sim.spawn(actor(sim, order, i));
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Sim, DeterministicAcrossRuns) {
  auto run_once = [] {
    Simulation sim;
    std::vector<Time> stamps;
    auto actor = [](Simulation& s, std::vector<Time>& out, Time d) -> Task {
      for (int i = 0; i < 10; ++i) {
        co_await s.delay(d);
        out.push_back(s.now());
      }
    };
    sim.spawn(actor(sim, stamps, 13));
    sim.spawn(actor(sim, stamps, 7));
    sim.run();
    return stamps;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Sim, RunUntilStopsAtDeadline) {
  Simulation sim;
  int ticks = 0;
  sim.spawn([](Simulation& s, int& n) -> Task {
    for (;;) {
      co_await s.delay(10);
      ++n;
    }
  }(sim, ticks));
  EXPECT_TRUE(sim.run_until(100));
  EXPECT_EQ(ticks, 10);
  EXPECT_EQ(sim.now(), 100u);
  EXPECT_TRUE(sim.run_until(205));
  EXPECT_EQ(ticks, 20);
}

TEST(Sim, AwaitedChildRunsInline) {
  Simulation sim;
  std::vector<std::string> trace;
  auto child = [](Simulation& s, std::vector<std::string>& out) -> Task {
    out.push_back("child-start@" + std::to_string(s.now()));
    co_await s.delay(40);
    out.push_back("child-end@" + std::to_string(s.now()));
  };
  sim.spawn([](Simulation& s, std::vector<std::string>& out, auto make_child) -> Task {
    out.push_back("parent-start");
    co_await make_child(s, out);
    out.push_back("parent-resumed@" + std::to_string(s.now()));
  }(sim, trace, child));
  sim.run();
  const std::vector<std::string> expect{"parent-start", "child-start@0", "child-end@40",
                                        "parent-resumed@40"};
  EXPECT_EQ(trace, expect);
}

TEST(SimMutex, UncontendedAcquireIsImmediate) {
  Simulation sim;
  Time acquired_at = 999;
  sim.spawn([](Simulation& s, Time& at) -> Task {
    SimMutex mu(s);
    co_await mu.acquire();
    at = s.now();
    mu.release();
  }(sim, acquired_at));
  sim.run();
  EXPECT_EQ(acquired_at, 0u);
}

TEST(SimMutex, MutualExclusionAndFifo) {
  Simulation sim;
  SimMutex mu(sim);
  std::vector<int> order;
  auto actor = [](Simulation& s, SimMutex& m, std::vector<int>& out, int id,
                  Time arrive) -> Task {
    co_await s.delay(arrive);
    co_await m.acquire();
    out.push_back(id);
    co_await s.delay(100);  // hold
    m.release();
  };
  sim.spawn(actor(sim, mu, order, 0, 0));
  sim.spawn(actor(sim, mu, order, 1, 10));
  sim.spawn(actor(sim, mu, order, 2, 5));
  sim.run();
  // Arrival order 0, 2, 1 -> FIFO service order.
  EXPECT_EQ(order, (std::vector<int>{0, 2, 1}));
  EXPECT_EQ(sim.now(), 300u);
}

TEST(SimMutex, TryAcquire) {
  Simulation sim;
  SimMutex mu(sim);
  std::vector<bool> results;
  sim.spawn([](Simulation& s, SimMutex& m, std::vector<bool>& out) -> Task {
    out.push_back(m.try_acquire());  // true
    out.push_back(m.try_acquire());  // false: already held
    m.release();
    out.push_back(m.try_acquire());  // true again
    m.release();
    co_await s.delay(0);
  }(sim, mu, results));
  sim.run();
  EXPECT_EQ(results, (std::vector<bool>{true, false, true}));
}

TEST(SimMutex, HandoffPenaltyScalesWithWaiters) {
  // 1 holder + 3 waiters; handoff = 100 + 50*waiters_remaining.
  Simulation sim;
  SimMutex mu(sim, /*handoff_base=*/100, /*handoff_per_waiter=*/50);
  std::vector<Time> grant_times;
  auto actor = [](Simulation& s, SimMutex& m, std::vector<Time>& out, Time arrive) -> Task {
    co_await s.delay(arrive);
    co_await m.acquire();
    out.push_back(s.now());
    co_await s.delay(10);
    m.release();
  };
  for (int i = 0; i < 4; ++i) sim.spawn(actor(sim, mu, grant_times, static_cast<Time>(i)));
  sim.run();
  ASSERT_EQ(grant_times.size(), 4u);
  EXPECT_EQ(grant_times[0], 0u);
  // Release at t=10 with 2 remaining waiters: handoff 100+100 -> t=210.
  EXPECT_EQ(grant_times[1], 10u + 100 + 2 * 50);
  // Next release at 220, 1 waiter left: +150 -> 370.
  EXPECT_EQ(grant_times[2], grant_times[1] + 10 + 100 + 50);
  EXPECT_EQ(grant_times[3], grant_times[2] + 10 + 100);
}

TEST(SimMutex, ReleaseWithoutHoldAborts) {
  Simulation sim;
  SimMutex mu(sim);
  EXPECT_DEATH(mu.release(), "unlocked");
}

TEST(SimBarrier, ReleasesAllAtLastArrival) {
  Simulation sim;
  SimBarrier bar(sim, 3);
  std::vector<Time> out_times;
  auto actor = [](Simulation& s, SimBarrier& b, std::vector<Time>& out, Time arrive) -> Task {
    co_await s.delay(arrive);
    co_await b.arrive_and_wait();
    out.push_back(s.now());
  };
  sim.spawn(actor(sim, bar, out_times, 10));
  sim.spawn(actor(sim, bar, out_times, 200));
  sim.spawn(actor(sim, bar, out_times, 50));
  sim.run();
  ASSERT_EQ(out_times.size(), 3u);
  for (const Time t : out_times) EXPECT_EQ(t, 200u);
}

TEST(SimBarrier, ReusableAcrossPhases) {
  Simulation sim;
  SimBarrier bar(sim, 2);
  int phases_done = 0;
  auto actor = [](Simulation& s, SimBarrier& b, int& done, Time step) -> Task {
    for (int phase = 0; phase < 5; ++phase) {
      co_await s.delay(step);
      co_await b.arrive_and_wait();
    }
    ++done;
  };
  sim.spawn(actor(sim, bar, phases_done, 10));
  sim.spawn(actor(sim, bar, phases_done, 25));
  sim.run();
  EXPECT_EQ(phases_done, 2);
  EXPECT_EQ(sim.now(), 125u);
}

TEST(Sim, DestructorCleansUpUnfinishedActors) {
  // An actor parked forever must not leak or crash at teardown (ASan-clean).
  auto sim = std::make_unique<Simulation>();
  SimMutex* mu = new SimMutex(*sim);
  mu->try_acquire();  // held forever
  sim->spawn([](Simulation& s, SimMutex& m) -> Task {
    co_await s.delay(5);
    co_await m.acquire();  // never granted
  }(*sim, *mu));
  sim->run_until(100);
  sim.reset();  // must destroy the suspended frame
  delete mu;
}

TEST(Sim, ManyActorsStress) {
  Simulation sim;
  constexpr int kActors = 1000;
  std::uint64_t total = 0;
  auto actor = [](Simulation& s, std::uint64_t& sum, Time step) -> Task {
    for (int i = 0; i < 100; ++i) {
      co_await s.delay(step);
      ++sum;
    }
  };
  for (int i = 0; i < kActors; ++i) sim.spawn(actor(sim, total, 1 + (i % 17)));
  sim.run();
  EXPECT_EQ(total, kActors * 100u);
  EXPECT_EQ(sim.events_processed(), kActors * 100u + kActors);
}

}  // namespace
}  // namespace fairmpi::sim
