// Software-offload driver tests (paper ref [20] design).
#include "fairmpi/offload/offload.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace fairmpi::offload {
namespace {

TEST(Offload, RoundTripThroughCommThreads) {
  Universe uni(Config{});
  OffloadDriver d0(uni.rank(0));
  OffloadDriver d1(uni.rank(1));

  int got = 0;
  Request rreq, sreq;
  d1.submit_irecv(kWorldComm, 0, 1, &got, sizeof got, rreq);
  const int payload = 314;
  d0.submit_isend(kWorldComm, 1, 1, &payload, sizeof payload, sreq);
  OffloadDriver::wait(sreq);
  OffloadDriver::wait(rreq);
  EXPECT_EQ(got, 314);
  EXPECT_EQ(d0.submitted(), 1u);
  EXPECT_EQ(d1.submitted(), 1u);
}

TEST(Offload, ManySubmittingThreadsOneCommThread) {
  Universe uni(Config{});
  OffloadDriver d0(uni.rank(0));
  OffloadDriver d1(uni.rank(1));

  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  std::atomic<std::uint64_t> sum_sent{0}, sum_got{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {  // submitters on rank 0
      for (int i = 0; i < kPerThread; ++i) {
        const std::uint32_t v = static_cast<std::uint32_t>(t * kPerThread + i);
        Request req;
        d0.submit_isend(kWorldComm, 1, t, &v, sizeof v, req);
        OffloadDriver::wait(req);  // buffer reuse requires completion
        sum_sent.fetch_add(v, std::memory_order_relaxed);
      }
    });
    threads.emplace_back([&, t] {  // consumers on rank 1
      for (int i = 0; i < kPerThread; ++i) {
        std::uint32_t v = 0;
        Request req;
        d1.submit_irecv(kWorldComm, 0, t, &v, sizeof v, req);
        OffloadDriver::wait(req);
        sum_got.fetch_add(v, std::memory_order_relaxed);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(sum_sent.load(), sum_got.load());
  // User threads never entered the progress engine: every progress call on
  // each rank came from its single comm thread, so there can have been no
  // gate contention at all.
  EXPECT_EQ(uni.rank(1).counters().get(spc::Counter::kInstanceTrylockFail), 0u);
}

TEST(Offload, LargeMessagesUseRendezvousUnderOffload) {
  Config cfg;
  cfg.eager_limit = 1024;
  Universe uni(cfg);
  OffloadDriver d0(uni.rank(0));
  OffloadDriver d1(uni.rank(1));

  std::vector<std::uint8_t> data(50'000);
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = static_cast<std::uint8_t>(i);
  std::vector<std::uint8_t> got(data.size());
  Request rreq, sreq;
  d1.submit_irecv(kWorldComm, 0, 1, got.data(), got.size(), rreq);
  d0.submit_isend(kWorldComm, 1, 1, data.data(), data.size(), sreq);
  OffloadDriver::wait(sreq);
  OffloadDriver::wait(rreq);
  EXPECT_EQ(got, data);
}

TEST(Offload, CleanShutdownWithIdleDriver) {
  Universe uni(Config{});
  {
    OffloadDriver driver(uni.rank(0));
    // No traffic; destructor must stop the comm thread promptly.
  }
  SUCCEED();
}

TEST(Offload, QueueBackpressureDoesNotLoseCommands) {
  Universe uni(Config{});
  OffloadDriver d0(uni.rank(0), /*queue_entries=*/8);  // tiny queue
  OffloadDriver d1(uni.rank(1));

  constexpr int kMsgs = 2000;
  std::thread consumer([&] {
    std::uint32_t v = 0;
    for (int i = 0; i < kMsgs; ++i) {
      Request req;
      d1.submit_irecv(kWorldComm, 0, 1, &v, sizeof v, req);
      OffloadDriver::wait(req);
      ASSERT_EQ(v, static_cast<std::uint32_t>(i));
    }
  });
  for (int i = 0; i < kMsgs; ++i) {
    const auto v = static_cast<std::uint32_t>(i);
    Request req;
    d0.submit_isend(kWorldComm, 1, 1, &v, sizeof v, req);
    OffloadDriver::wait(req);
  }
  consumer.join();
}

}  // namespace
}  // namespace fairmpi::offload
