// Unit tests for the ack/retransmit tracker: key round-trips, the
// claim-then-confirm retry accounting (sweeps claim entries; only confirmed
// retransmits charge the budget and back off), and retry exhaustion.
#include "fairmpi/p2p/reliability.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

namespace fairmpi::p2p {
namespace {

using fabric::Opcode;
using fabric::Packet;

Packet make_packet(std::uint32_t seq, std::uint64_t imm = 0,
                   const std::string& payload = "retransmit me") {
  Packet pkt;
  pkt.hdr.opcode = Opcode::kEager;
  pkt.hdr.src_rank = 0;
  pkt.hdr.comm_id = 1;
  pkt.hdr.tag = 3;
  pkt.hdr.seq = seq;
  pkt.hdr.imm = imm;
  pkt.set_payload(payload.data(), payload.size());
  return pkt;
}

TEST(PacketKey, AckEchoRoundTrip) {
  // Build the ack the way Rank::flush_acks does: acked opcode rides in tag,
  // the ack's sender is the original destination.
  const int dst = 5;
  const Packet orig = make_packet(77, 0xabcdef);
  fabric::WireHeader ack;
  ack.opcode = Opcode::kAck;
  ack.src_rank = static_cast<std::uint16_t>(dst);
  ack.comm_id = orig.hdr.comm_id;
  ack.tag = static_cast<std::int32_t>(orig.hdr.opcode);
  ack.seq = orig.hdr.seq;
  ack.imm = orig.hdr.imm;
  EXPECT_EQ(key_of_ack(ack), key_of(dst, orig.hdr));
}

TEST(PacketKey, DistinguishesPacketKinds) {
  Packet eager = make_packet(7);
  Packet rts = make_packet(7);
  rts.hdr.opcode = Opcode::kRndvRts;
  EXPECT_NE(key_of(1, eager.hdr), key_of(1, rts.hdr));   // opcode
  EXPECT_NE(key_of(1, eager.hdr), key_of(2, eager.hdr)); // destination
  Packet frag = make_packet(7, /*imm=*/9);
  EXPECT_NE(key_of(1, eager.hdr), key_of(1, frag.hdr));  // cookie
}

TEST(ReliabilityTracker, AckRetiresEntry) {
  ReliabilityTracker t(/*rto_ns=*/100, /*rto_max_ns=*/1000, /*max_retries=*/3);
  const Packet pkt = make_packet(1);
  EXPECT_EQ(t.in_flight(), 0u);
  t.track(1, pkt, /*now_ns=*/0);
  EXPECT_EQ(t.in_flight(), 1u);
  EXPECT_EQ(t.next_deadline(), 100u);

  EXPECT_TRUE(t.ack(key_of(1, pkt.hdr)));
  EXPECT_EQ(t.in_flight(), 0u);
  // The ack of a duplicate finds nothing and says so.
  EXPECT_FALSE(t.ack(key_of(1, pkt.hdr)));
}

TEST(ReliabilityTracker, UntrackRemovesFailedInjection) {
  ReliabilityTracker t(100, 1000, 3);
  const Packet pkt = make_packet(2);
  t.track(1, pkt, 0);
  t.untrack(key_of(1, pkt.hdr));
  EXPECT_EQ(t.in_flight(), 0u);

  std::vector<ReliabilityTracker::Resend> resends;
  std::vector<ReliabilityTracker::Failure> failures;
  t.sweep(/*now_ns=*/1000, resends, failures);
  EXPECT_TRUE(resends.empty());
  EXPECT_TRUE(failures.empty());
}

TEST(ReliabilityTracker, SweepClonesExpiredEntries) {
  ReliabilityTracker t(100, 1000, 3);
  const std::string payload(fabric::kInlineBytes + 10, 'r');  // heap payload
  const Packet pkt = make_packet(3, 0, payload);
  t.track(2, pkt, 0);

  std::vector<ReliabilityTracker::Resend> resends;
  std::vector<ReliabilityTracker::Failure> failures;
  t.sweep(/*now_ns=*/50, resends, failures);  // not yet expired
  EXPECT_TRUE(resends.empty());

  t.sweep(/*now_ns=*/150, resends, failures);
  ASSERT_EQ(resends.size(), 1u);
  EXPECT_EQ(resends[0].dst, 2);
  EXPECT_EQ(resends[0].pkt.hdr.seq, 3u);
  EXPECT_EQ(std::memcmp(resends[0].pkt.payload(), payload.data(), payload.size()), 0);
  EXPECT_TRUE(failures.empty());
}

TEST(ReliabilityTracker, SweepOnlyClaimsNoDoubleClone) {
  ReliabilityTracker t(100, 1000, 3);
  t.track(1, make_packet(4), 0);

  std::vector<ReliabilityTracker::Resend> resends;
  std::vector<ReliabilityTracker::Failure> failures;
  t.sweep(150, resends, failures);
  ASSERT_EQ(resends.size(), 1u);

  // The claim pushed the deadline one rto out (150 + 100): an immediate
  // second sweep must not clone the same entry again.
  resends.clear();
  t.sweep(151, resends, failures);
  EXPECT_TRUE(resends.empty());
  EXPECT_EQ(t.next_deadline(), 250u);
}

TEST(ReliabilityTracker, ConfirmChargesRetryAndBacksOff) {
  ReliabilityTracker t(100, 1000, 3);
  const Packet pkt = make_packet(5);
  const PacketKey key = key_of(1, pkt.hdr);
  t.track(1, pkt, 0);

  std::vector<ReliabilityTracker::Resend> resends;
  std::vector<ReliabilityTracker::Failure> failures;
  t.sweep(150, resends, failures);
  ASSERT_EQ(resends.size(), 1u);
  t.confirm_retransmit(key, 150);

  // Backoff doubled the rto: the next deadline is 150 + 200.
  resends.clear();
  t.sweep(300, resends, failures);
  EXPECT_TRUE(resends.empty());
  t.sweep(350, resends, failures);
  EXPECT_EQ(resends.size(), 1u);
}

TEST(ReliabilityTracker, ConfirmAfterAckIsNoOp) {
  ReliabilityTracker t(100, 1000, 3);
  const Packet pkt = make_packet(6);
  const PacketKey key = key_of(1, pkt.hdr);
  t.track(1, pkt, 0);
  EXPECT_TRUE(t.ack(key));
  t.confirm_retransmit(key, 200);  // raced: must not resurrect the entry
  EXPECT_EQ(t.in_flight(), 0u);
}

TEST(ReliabilityTracker, RtoBackoffIsBoundedByMax) {
  ReliabilityTracker t(/*rto_ns=*/100, /*rto_max_ns=*/300, /*max_retries=*/10);
  const Packet pkt = make_packet(7);
  const PacketKey key = key_of(1, pkt.hdr);
  t.track(1, pkt, 0);

  std::vector<ReliabilityTracker::Resend> resends;
  std::vector<ReliabilityTracker::Failure> failures;
  std::uint64_t now = 0;
  for (int i = 0; i < 4; ++i) {
    now += 1000;  // comfortably past any deadline
    resends.clear();
    t.sweep(now, resends, failures);
    ASSERT_EQ(resends.size(), 1u) << "retry " << i;
    t.confirm_retransmit(key, now);
  }
  // rto is now clamped to 300: a sweep 299 past the confirm sees nothing,
  // one at 300 claims.
  resends.clear();
  t.sweep(now + 299, resends, failures);
  EXPECT_TRUE(resends.empty());
  t.sweep(now + 300, resends, failures);
  EXPECT_EQ(resends.size(), 1u);
}

TEST(ReliabilityTracker, ExhaustionAfterMaxConfirmedRetries) {
  ReliabilityTracker t(100, 1000, /*max_retries=*/2);
  const Packet pkt = make_packet(8);
  const PacketKey key = key_of(1, pkt.hdr);
  t.track(1, pkt, 0);

  std::vector<ReliabilityTracker::Resend> resends;
  std::vector<ReliabilityTracker::Failure> failures;
  std::uint64_t now = 0;
  for (int i = 0; i < 2; ++i) {
    now += 10000;
    resends.clear();
    t.sweep(now, resends, failures);
    ASSERT_EQ(resends.size(), 1u);
    ASSERT_TRUE(failures.empty());
    t.confirm_retransmit(key, now);
  }
  // Retry budget spent: the next expiry fails the entry typed and removes it.
  now += 10000;
  resends.clear();
  t.sweep(now, resends, failures);
  EXPECT_TRUE(resends.empty());
  ASSERT_EQ(failures.size(), 1u);
  EXPECT_EQ(failures[0].key, key);
  EXPECT_EQ(failures[0].retries, 2);
  EXPECT_EQ(t.in_flight(), 0u);
}

TEST(ReliabilityTracker, UnconfirmedSweepsNeverExhaust) {
  // Ring-full retransmit attempts (sweep claims that were never confirmed)
  // must not burn the retry budget — the backpressure-storm regression.
  ReliabilityTracker t(100, 1000, /*max_retries=*/2);
  t.track(1, make_packet(9), 0);

  std::vector<ReliabilityTracker::Resend> resends;
  std::vector<ReliabilityTracker::Failure> failures;
  std::uint64_t now = 0;
  for (int i = 0; i < 20; ++i) {
    now += 10000;
    resends.clear();
    t.sweep(now, resends, failures);
    EXPECT_EQ(resends.size(), 1u) << "claim " << i;
    EXPECT_TRUE(failures.empty()) << "claim " << i;
  }
  EXPECT_EQ(t.in_flight(), 1u);  // still tracked, still recoverable
}

TEST(ReliabilityTracker, MaxRetriesZeroFailsFastWithoutResending) {
  // Fail-fast mode: the first unacked rto expiry fails the entry typed and
  // never retransmits. No resend clone may be emitted.
  ReliabilityTracker t(100, 1000, /*max_retries=*/0);
  const Packet pkt = make_packet(11);
  const PacketKey key = key_of(1, pkt.hdr);
  t.track(1, pkt, 0);
  EXPECT_EQ(t.in_flight(), 1u);

  std::vector<ReliabilityTracker::Resend> resends;
  std::vector<ReliabilityTracker::Failure> failures;
  t.sweep(50, resends, failures);  // deadline (100) not reached yet
  EXPECT_TRUE(resends.empty());
  EXPECT_TRUE(failures.empty());

  t.sweep(200, resends, failures);
  EXPECT_TRUE(resends.empty());
  ASSERT_EQ(failures.size(), 1u);
  EXPECT_EQ(failures[0].key, key);
  EXPECT_EQ(failures[0].retries, 0);
  EXPECT_EQ(failures[0].code, common::ErrorCode::kRetryExhausted);
  EXPECT_EQ(t.in_flight(), 0u);
}

TEST(ReliabilityTracker, FailPeerPurgesTypedAndLatchesDeath) {
  ReliabilityTracker t(100, 1000, /*max_retries=*/2);
  t.track(1, make_packet(1), 0);
  t.track(1, make_packet(2), 0);
  t.track(2, make_packet(3), 0);
  EXPECT_EQ(t.in_flight(), 3u);

  std::vector<ReliabilityTracker::Failure> failures;
  t.fail_peer(1, failures);
  ASSERT_EQ(failures.size(), 2u);
  for (const auto& f : failures) {
    EXPECT_EQ(f.key.peer, 1);
    EXPECT_EQ(f.code, common::ErrorCode::kPeerFailed);
  }
  EXPECT_TRUE(t.peer_failed(1));
  EXPECT_FALSE(t.peer_failed(2));
  EXPECT_EQ(t.in_flight(), 1u);  // the peer-2 entry is untouched

  // A track racing the confirmation (registered after fail_peer) is caught
  // by the next sweep regardless of its deadline — no retry budget burned
  // into a dead link.
  t.track(1, make_packet(4), 0);
  std::vector<ReliabilityTracker::Resend> resends;
  failures.clear();
  t.sweep(1, resends, failures);  // nothing has expired at now=1
  EXPECT_TRUE(resends.empty());
  ASSERT_EQ(failures.size(), 1u);
  EXPECT_EQ(failures[0].code, common::ErrorCode::kPeerFailed);
  EXPECT_EQ(failures[0].key.peer, 1);
  EXPECT_EQ(t.in_flight(), 1u);
}

}  // namespace
}  // namespace fairmpi::p2p
