// Regression tests for the Request settle guard: complete()/fail() are a
// one-shot race per init_* cycle, and the winner's result survives any
// late loser. The motivating double-settle is a reliability-sweep failure
// racing the delivery of a late duplicate ack — both sides now report
// whether they won so SPC counting stays exact.
#include "fairmpi/p2p/request.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace fairmpi::p2p {
namespace {

using common::ErrorCode;

TEST(RequestSettle, CompleteThenFailKeepsSuccess) {
  Request req;
  req.init_send();
  EXPECT_TRUE(req.complete());
  EXPECT_FALSE(req.fail(ErrorCode::kPeerFailed));  // loser: settled already
  EXPECT_TRUE(req.done());
  EXPECT_FALSE(req.failed());
  EXPECT_EQ(req.error(), ErrorCode::kOk);
}

TEST(RequestSettle, FailThenCompleteKeepsError) {
  Request req;
  char buf[8];
  req.init_recv(buf, sizeof buf, kAnySource, kAnyTag);
  EXPECT_TRUE(req.fail(ErrorCode::kPeerFailed));
  Status st;
  st.source = 3;
  st.size = 8;
  EXPECT_FALSE(req.complete(st));  // the late match must not resurrect it
  EXPECT_TRUE(req.done());
  EXPECT_TRUE(req.failed());
  EXPECT_EQ(req.error(), ErrorCode::kPeerFailed);
  // The loser's status write never happened.
  EXPECT_EQ(req.status().source, kAnySource);
  EXPECT_EQ(req.status().size, 0u);
}

TEST(RequestSettle, DoubleFailReportsOneWinnerAndFirstCode) {
  Request req;
  req.init_send();
  EXPECT_TRUE(req.fail(ErrorCode::kRetryExhausted));
  EXPECT_FALSE(req.fail(ErrorCode::kPeerFailed));
  EXPECT_EQ(req.error(), ErrorCode::kRetryExhausted);
}

TEST(RequestSettle, ReinitReopensTheOneShot) {
  Request req;
  req.init_send();
  EXPECT_TRUE(req.fail(ErrorCode::kPeerFailed));
  req.init_send();  // request objects are reused across operations
  EXPECT_FALSE(req.done());
  EXPECT_EQ(req.error(), ErrorCode::kOk);
  EXPECT_TRUE(req.complete());
  EXPECT_FALSE(req.failed());
}

TEST(RequestSettle, ConcurrentSettleHasExactlyOneWinner) {
  // Hammer the CAS from both sides; every iteration must produce exactly
  // one winner, and error() must agree with who won.
  for (int iter = 0; iter < 200; ++iter) {
    Request req;
    req.init_send();
    int complete_wins = 0;
    int fail_wins = 0;
    std::thread completer([&] {
      if (req.complete()) complete_wins = 1;
    });
    std::thread failer([&] {
      if (req.fail(ErrorCode::kPeerFailed)) fail_wins = 1;
    });
    completer.join();
    failer.join();
    ASSERT_EQ(complete_wins + fail_wins, 1);
    EXPECT_TRUE(req.done());
    EXPECT_EQ(req.failed(), fail_wins == 1);
  }
}

}  // namespace
}  // namespace fairmpi::p2p
