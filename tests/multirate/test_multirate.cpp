// Host-scale runs of the real-backend benchmarks: small configurations,
// short durations — these validate plumbing (no hangs, sane rates, SPC
// deltas), not paper-scale performance shapes.
#include "fairmpi/multirate/multirate.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

#include "fairmpi/rmamt/rmamt.hpp"

namespace fairmpi {
namespace {

using multirate::MultirateConfig;
using multirate::run_pairwise;
using spc::Counter;

/// True when the chaos CI profile injects faults via the environment: the
/// "no out-of-sequence arrivals" assertions below describe a pristine
/// fabric and are legitimately violated by injected reordering (delivery
/// counts — the exactly-once property — still must hold).
bool chaos_env() {
  for (const char* v : {"FAIRMPI_FAULT_DROP", "FAIRMPI_FAULT_DUP",
                        "FAIRMPI_FAULT_DELAY", "FAIRMPI_FAULT_REORDER",
                        "FAIRMPI_FAULT_CORRUPT"}) {
    if (std::getenv(v) != nullptr) return true;
  }
  return false;
}

MultirateConfig quick(int pairs) {
  MultirateConfig cfg;
  cfg.pairs = pairs;
  cfg.duration_s = 0.08;
  cfg.window = 32;
  return cfg;
}

TEST(Multirate, SinglePairDeliversAtPlausibleRate) {
  const auto res = run_pairwise(quick(1));
  EXPECT_GT(res.delivered, 100u);
  EXPECT_GT(res.msg_rate, 1e4);
  if (!chaos_env()) {
    EXPECT_EQ(res.receiver_spc.get(Counter::kOutOfSequence), 0u);  // one sender
  }
}

TEST(Multirate, TwoPairsSharedCommCompletes) {
  MultirateConfig cfg = quick(2);
  cfg.engine.num_instances = 2;
  cfg.engine.assignment = cri::Assignment::kRoundRobin;
  const auto res = run_pairwise(cfg);
  EXPECT_GT(res.delivered, 200u);
  // Receiver-side SPC saw the traffic.
  EXPECT_GE(res.receiver_spc.get(Counter::kMessagesReceived), res.delivered);
}

TEST(Multirate, CommPerPairMode) {
  MultirateConfig cfg = quick(2);
  cfg.comm_per_pair = true;
  cfg.engine.progress_mode = progress::ProgressMode::kConcurrent;
  cfg.engine.num_instances = 2;
  const auto res = run_pairwise(cfg);
  EXPECT_GT(res.delivered, 200u);
}

TEST(Multirate, AnyTagAndOvertaking) {
  MultirateConfig cfg = quick(2);
  cfg.any_tag = true;
  cfg.comm_per_pair = true;  // ANY_TAG needs per-pair streams to stay sane
  cfg.engine.allow_overtaking = true;
  const auto res = run_pairwise(cfg);
  EXPECT_GT(res.delivered, 200u);
  if (!chaos_env()) {
    EXPECT_EQ(res.receiver_spc.get(Counter::kOutOfSequence), 0u);
  }
}

TEST(Multirate, ProcessMode) {
  MultirateConfig cfg = quick(2);
  cfg.process_mode = true;
  const auto res = run_pairwise(cfg);
  EXPECT_GT(res.delivered, 200u);
  if (!chaos_env()) {
    EXPECT_EQ(res.receiver_spc.get(Counter::kOutOfSequence), 0u);  // private streams
  }
}

TEST(Multirate, PayloadBytesFlow) {
  MultirateConfig cfg = quick(1);
  cfg.payload_bytes = 1024;
  const auto res = run_pairwise(cfg);
  EXPECT_GT(res.delivered, 50u);
  EXPECT_GE(res.receiver_spc.get(Counter::kBytesReceived), res.delivered * 1024);
}

TEST(MultirateIncast, SingleSenderDelivers) {
  MultirateConfig cfg = quick(1);
  const auto res = multirate::run_incast(cfg);
  EXPECT_GT(res.delivered, 100u);
  if (!chaos_env()) {
    EXPECT_EQ(res.receiver_spc.get(Counter::kOutOfSequence), 0u);  // one stream
  }
}

TEST(MultirateIncast, ManySendersShareOneStream) {
  MultirateConfig cfg = quick(3);
  cfg.engine.num_instances = 2;
  cfg.engine.assignment = cri::Assignment::kRoundRobin;
  const auto res = multirate::run_incast(cfg);
  EXPECT_GT(res.delivered, 100u);
  // Three senders racing on one sequence stream: out-of-sequence arrivals
  // are near-certain (the §II-C worst case the pattern exists to show).
  EXPECT_GT(res.receiver_spc.get(Counter::kOutOfSequence), 0u);
}

TEST(MultirateIncast, OvertakingRemovesTheStreamPenalty) {
  MultirateConfig cfg = quick(3);
  cfg.engine.num_instances = 2;
  cfg.engine.allow_overtaking = true;
  const auto res = multirate::run_incast(cfg);
  EXPECT_GT(res.delivered, 100u);
  if (!chaos_env()) {
    EXPECT_EQ(res.receiver_spc.get(Counter::kOutOfSequence), 0u);
  }
}

TEST(Rmamt, SingleThreadPuts) {
  rmamt::RmamtConfig cfg;
  cfg.threads = 1;
  cfg.duration_s = 0.08;
  cfg.ops_per_round = 100;
  const auto res = rmamt::run_put_flush(cfg);
  EXPECT_GT(res.ops, 100u);
  EXPECT_GT(res.msg_rate, 1e4);
}

TEST(Rmamt, MultiThreadDedicatedInstances) {
  rmamt::RmamtConfig cfg;
  cfg.threads = 4;
  cfg.engine.num_instances = 4;
  cfg.engine.assignment = cri::Assignment::kDedicated;
  cfg.duration_s = 0.08;
  cfg.ops_per_round = 100;
  cfg.message_size = 64;
  const auto res = rmamt::run_put_flush(cfg);
  EXPECT_GT(res.ops, 400u);
}

TEST(Rmamt, RoundRobinSharedInstance) {
  rmamt::RmamtConfig cfg;
  cfg.threads = 4;
  cfg.engine.num_instances = 2;
  cfg.engine.assignment = cri::Assignment::kRoundRobin;
  cfg.duration_s = 0.08;
  cfg.ops_per_round = 50;
  const auto res = rmamt::run_put_flush(cfg);
  EXPECT_GT(res.ops, 200u);
}

}  // namespace
}  // namespace fairmpi
