#include "fairmpi/benchsupport/report.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace fairmpi::benchsupport {
namespace {

TEST(Repeat, AggregatesAcrossSeeds) {
  std::vector<std::uint64_t> seeds;
  const RunningStats stats = repeat(3, 100, [&](std::uint64_t seed) {
    seeds.push_back(seed);
    return static_cast<double>(seed);
  });
  EXPECT_EQ(stats.count(), 3u);
  ASSERT_EQ(seeds.size(), 3u);
  EXPECT_EQ(seeds[0], 100u);
  EXPECT_NE(seeds[1], seeds[0]);  // distinct seeds per repetition
  EXPECT_NE(seeds[2], seeds[1]);
}

TEST(FigureReport, RenderContainsSeriesAndValues) {
  FigureReport report("figX", "Test figure", "threads", "msg/s");
  report.add_point("alpha", 1, 1e6, 5e4);
  report.add_point("alpha", 2, 2e6, 5e4);
  report.add_point("beta", 1, 0.5e6);
  const std::string out = report.render();
  EXPECT_NE(out.find("figX"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("beta"), std::string::npos);
  EXPECT_NE(out.find("2.00 M"), std::string::npos);
}

TEST(FigureReport, ValueAtAndHasPoint) {
  FigureReport report("f", "t", "x", "y");
  report.add_point("s", 4, 42.0);
  EXPECT_TRUE(report.has_point("s", 4));
  EXPECT_FALSE(report.has_point("s", 5));
  EXPECT_FALSE(report.has_point("other", 4));
  EXPECT_EQ(report.value_at("s", 4), 42.0);
  EXPECT_DEATH(report.value_at("other", 4), "unknown series");
  EXPECT_DEATH(report.value_at("s", 99), "no point");
}

TEST(FigureReport, CsvRoundTrip) {
  const std::string dir = ::testing::TempDir() + "fairmpi_report_test";
  FigureReport report("fig_csv", "t", "x", "y");
  report.add_point("s1", 1, 10.5, 0.25);
  report.add_point("s2", 2, 20.0);
  report.write_csv(dir);
  std::ifstream in(dir + "/fig_csv.csv");
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(ss.str(), "series,x,mean,stddev\ns1,1,10.5,0.25\ns2,2,20,0\n");
  std::filesystem::remove_all(dir);
}

TEST(CheckList, PassAndFailCounting) {
  CheckList checks;
  checks.expect(true, "always passes");
  checks.expect(false, "always fails", "detail here");
  EXPECT_EQ(checks.total(), 2);
  EXPECT_EQ(checks.failures(), 1);
  const std::string out = checks.render();
  EXPECT_NE(out.find("[PASS] always passes"), std::string::npos);
  EXPECT_NE(out.find("[FAIL] always fails"), std::string::npos);
  EXPECT_NE(out.find("detail here"), std::string::npos);
  EXPECT_NE(out.find("1/2 checks passed"), std::string::npos);
}

TEST(CheckList, RatioCheck) {
  CheckList checks;
  checks.expect_ratio_at_least(10.0, 5.0, 1.5, "10 vs 5 at 1.5x");
  checks.expect_ratio_at_least(6.0, 5.0, 1.5, "6 vs 5 at 1.5x");
  EXPECT_EQ(checks.failures(), 1);
}

TEST(CheckList, CloseCheck) {
  CheckList checks;
  checks.expect_close(100.0, 109.0, 0.10, "within 10%");
  checks.expect_close(100.0, 150.0, 0.10, "not within 10%");
  checks.expect_close(0.0, 0.0, 0.10, "zeros are close");
  EXPECT_EQ(checks.failures(), 1);
}

}  // namespace
}  // namespace fairmpi::benchsupport
