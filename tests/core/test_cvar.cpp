// Control-variable (cvar / environment hint) tests.
#include "fairmpi/core/cvar.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

namespace fairmpi {
namespace {

TEST(Cvar, NumInstances) {
  Config cfg;
  EXPECT_TRUE(apply_cvar(cfg, "num_instances", "16"));
  EXPECT_EQ(cfg.num_instances, 16);
  EXPECT_FALSE(apply_cvar(cfg, "num_instances", "0"));
  EXPECT_FALSE(apply_cvar(cfg, "num_instances", "many"));
  EXPECT_EQ(cfg.num_instances, 16);  // untouched on failure
}

TEST(Cvar, AssignmentNames) {
  Config cfg;
  EXPECT_TRUE(apply_cvar(cfg, "assignment", "rr"));
  EXPECT_EQ(cfg.assignment, cri::Assignment::kRoundRobin);
  EXPECT_TRUE(apply_cvar(cfg, "assignment", "dedicated"));
  EXPECT_EQ(cfg.assignment, cri::Assignment::kDedicated);
  EXPECT_TRUE(apply_cvar(cfg, "assignment", "round-robin"));
  EXPECT_EQ(cfg.assignment, cri::Assignment::kRoundRobin);
  EXPECT_FALSE(apply_cvar(cfg, "assignment", "magic"));
}

TEST(Cvar, ProgressMode) {
  Config cfg;
  EXPECT_TRUE(apply_cvar(cfg, "progress", "concurrent"));
  EXPECT_EQ(cfg.progress_mode, progress::ProgressMode::kConcurrent);
  EXPECT_TRUE(apply_cvar(cfg, "progress", "serial"));
  EXPECT_EQ(cfg.progress_mode, progress::ProgressMode::kSerial);
  EXPECT_FALSE(apply_cvar(cfg, "progress", "psychic"));
}

TEST(Cvar, Booleans) {
  Config cfg;
  for (const char* yes : {"1", "true", "on"}) {
    cfg.allow_overtaking = false;
    EXPECT_TRUE(apply_cvar(cfg, "allow_overtaking", yes));
    EXPECT_TRUE(cfg.allow_overtaking);
  }
  for (const char* no : {"0", "false", "off"}) {
    cfg.allow_overtaking = true;
    EXPECT_TRUE(apply_cvar(cfg, "allow_overtaking", no));
    EXPECT_FALSE(cfg.allow_overtaking);
  }
  EXPECT_FALSE(apply_cvar(cfg, "allow_overtaking", "maybe"));
}

TEST(Cvar, SizesAndLimits) {
  Config cfg;
  EXPECT_TRUE(apply_cvar(cfg, "eager_limit", "4096"));
  EXPECT_EQ(cfg.eager_limit, 4096u);
  EXPECT_TRUE(apply_cvar(cfg, "rndv_frag_bytes", "8192"));
  EXPECT_EQ(cfg.rndv_frag_bytes, 8192u);
  EXPECT_TRUE(apply_cvar(cfg, "rx_ring_entries", "128"));
  EXPECT_EQ(cfg.fabric.rx_ring_entries, 128u);
  EXPECT_TRUE(apply_cvar(cfg, "cq_entries", "64"));
  EXPECT_EQ(cfg.fabric.cq_entries, 64u);
  EXPECT_TRUE(apply_cvar(cfg, "progress_batch", "8"));
  EXPECT_EQ(cfg.progress_batch, 8);
  EXPECT_TRUE(apply_cvar(cfg, "max_communicators", "7"));
  EXPECT_EQ(cfg.max_communicators, 7);
}

TEST(Cvar, UnknownNameRejected) {
  Config cfg;
  EXPECT_FALSE(apply_cvar(cfg, "warp_speed", "9"));
}

TEST(Cvar, ConfigFromEnv) {
  ::setenv("FAIRMPI_NUM_INSTANCES", "12", 1);
  ::setenv("FAIRMPI_ASSIGNMENT", "dedicated", 1);
  ::setenv("FAIRMPI_PROGRESS", "concurrent", 1);
  ::setenv("FAIRMPI_ALLOW_OVERTAKING", "1", 1);
  const Config cfg = config_from_env();
  EXPECT_EQ(cfg.num_instances, 12);
  EXPECT_EQ(cfg.assignment, cri::Assignment::kDedicated);
  EXPECT_EQ(cfg.progress_mode, progress::ProgressMode::kConcurrent);
  EXPECT_TRUE(cfg.allow_overtaking);
  ::unsetenv("FAIRMPI_NUM_INSTANCES");
  ::unsetenv("FAIRMPI_ASSIGNMENT");
  ::unsetenv("FAIRMPI_PROGRESS");
  ::unsetenv("FAIRMPI_ALLOW_OVERTAKING");
}

TEST(Cvar, ConfigFromEnvKeepsBaseWhenUnset) {
  Config base;
  base.num_instances = 5;
  const Config cfg = config_from_env(base);
  EXPECT_EQ(cfg.num_instances, 5);
}

TEST(Cvar, MalformedEnvAborts) {
  ::setenv("FAIRMPI_NUM_INSTANCES", "banana", 1);
  EXPECT_DEATH(config_from_env(), "malformed");
  ::unsetenv("FAIRMPI_NUM_INSTANCES");
}

TEST(Cvar, ListContainsEveryKnob) {
  Config cfg;
  cfg.num_instances = 42;
  const std::string listing = list_cvars(cfg);
  for (const char* name :
       {"num_instances", "assignment", "progress", "allow_overtaking", "progress_batch",
        "eager_limit", "rndv_frag_bytes", "rx_ring_entries", "cq_entries",
        "max_communicators"}) {
    EXPECT_NE(listing.find(name), std::string::npos) << name;
  }
  EXPECT_NE(listing.find("42"), std::string::npos);
}

}  // namespace
}  // namespace fairmpi
