// probe / iprobe / wait_any tests.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "fairmpi/core/universe.hpp"

namespace fairmpi {
namespace {

TEST(Probe, IprobeFalseWhenNothingPending) {
  Universe uni(Config{});
  EXPECT_FALSE(uni.rank(1).iprobe(kWorldComm, 0, 1));
  EXPECT_FALSE(uni.rank(1).iprobe(kWorldComm, kAnySource, kAnyTag));
}

TEST(Probe, IprobeSeesUnexpectedMessage) {
  Universe uni(Config{});
  const int payload = 99;
  uni.rank(0).send(kWorldComm, 1, 5, &payload, sizeof payload);
  Status st;
  // iprobe progresses internally; a few attempts cover ring latency.
  bool found = false;
  for (int i = 0; i < 100 && !found; ++i) found = uni.rank(1).iprobe(kWorldComm, 0, 5, &st);
  ASSERT_TRUE(found);
  EXPECT_EQ(st.source, 0);
  EXPECT_EQ(st.tag, 5);
  EXPECT_EQ(st.size, sizeof payload);
  // Probing is non-destructive: the message is still receivable.
  int got = 0;
  uni.rank(1).recv(kWorldComm, 0, 5, &got, sizeof got);
  EXPECT_EQ(got, 99);
}

TEST(Probe, BlockingProbeThenRecvSizedBuffer) {
  Universe uni(Config{});
  std::thread sender([&] {
    const std::vector<char> data(300, 'x');
    uni.rank(0).send(kWorldComm, 1, 2, data.data(), data.size());
  });
  const Status st = uni.rank(1).probe(kWorldComm, 0, 2);
  ASSERT_EQ(st.size, 300u);
  std::vector<char> buf(st.size);  // the classic probe-then-allocate pattern
  const Status recv_st = uni.rank(1).recv(kWorldComm, 0, 2, buf.data(), buf.size());
  EXPECT_FALSE(recv_st.truncated);
  EXPECT_EQ(buf[299], 'x');
  sender.join();
}

TEST(Probe, ProbeReportsRendezvousTotalSize) {
  Config cfg;
  cfg.eager_limit = 256;
  Universe uni(cfg);
  Request sreq;
  const std::vector<char> big(100'000, 'r');
  uni.rank(0).isend(kWorldComm, 1, 3, big.data(), big.size(), sreq);
  const Status st = uni.rank(1).probe(kWorldComm, 0, 3);
  EXPECT_EQ(st.size, big.size());  // RTS announces the full size
  std::vector<char> buf(st.size);
  Request rreq;
  uni.rank(1).irecv(kWorldComm, 0, 3, buf.data(), buf.size(), rreq);
  while (!rreq.done() || !sreq.done()) {
    uni.rank(0).progress();
    uni.rank(1).progress();
  }
  EXPECT_EQ(buf[99'999], 'r');
}

TEST(Probe, WildcardProbe) {
  Universe uni(Config{});
  const int payload = 1;
  uni.rank(0).send(kWorldComm, 1, 77, &payload, sizeof payload);
  const Status st = uni.rank(1).probe(kWorldComm, kAnySource, kAnyTag);
  EXPECT_EQ(st.source, 0);
  EXPECT_EQ(st.tag, 77);
}

TEST(Probe, TagFilterSkipsNonMatching) {
  Universe uni(Config{});
  const int payload = 1;
  uni.rank(0).send(kWorldComm, 1, 10, &payload, sizeof payload);
  for (int i = 0; i < 50; ++i) uni.rank(1).progress();
  EXPECT_FALSE(uni.rank(1).iprobe(kWorldComm, 0, 11));
  EXPECT_TRUE(uni.rank(1).iprobe(kWorldComm, 0, 10));
}

TEST(WaitAny, ReturnsFirstCompletedIndex) {
  Universe uni(Config{});
  Request reqs[3];
  int bufs[3] = {};
  uni.rank(1).irecv(kWorldComm, 0, 0, &bufs[0], sizeof(int), reqs[0]);
  uni.rank(1).irecv(kWorldComm, 0, 1, &bufs[1], sizeof(int), reqs[1]);
  uni.rank(1).irecv(kWorldComm, 0, 2, &bufs[2], sizeof(int), reqs[2]);
  const int payload = 5;
  uni.rank(0).send(kWorldComm, 1, 1, &payload, sizeof payload);  // completes index 1
  Request* ptrs[3] = {&reqs[0], &reqs[1], &reqs[2]};
  const std::size_t idx = uni.rank(1).wait_any(ptrs, 3);
  EXPECT_EQ(idx, 1u);
  EXPECT_EQ(bufs[1], 5);
  // Complete the rest so no posted receives dangle at teardown.
  uni.rank(0).send(kWorldComm, 1, 0, &payload, sizeof payload);
  uni.rank(0).send(kWorldComm, 1, 2, &payload, sizeof payload);
  uni.rank(1).wait(reqs[0]);
  uni.rank(1).wait(reqs[2]);
}

TEST(WaitAny, EmptySetAborts) {
  Universe uni(Config{});
  EXPECT_DEATH(uni.rank(0).wait_any(nullptr, 0), "at least one");
}

}  // namespace
}  // namespace fairmpi
