// Universe/Rank lifecycle and configuration edge cases, plus matching-
// engine sequence-number wraparound (the uint32 stream counter must
// survive crossing 2^32).
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "fairmpi/core/universe.hpp"

namespace fairmpi {
namespace {

TEST(Universe, InvalidConfigAborts) {
  Config bad;
  bad.num_ranks = 0;
  EXPECT_DEATH(Universe{bad}, "at least one rank");
  Config bad2;
  bad2.num_instances = 0;
  EXPECT_DEATH(Universe{bad2}, "at least one CRI");
}

TEST(Universe, CommunicatorTableExhaustionAborts) {
  Config cfg;
  cfg.max_communicators = 2;  // world + one
  Universe uni(cfg);
  EXPECT_EQ(uni.create_communicator(), 1u);
  EXPECT_DEATH(uni.create_communicator(), "exhausted");
}

TEST(Universe, ManyRanksConstructAndTalk) {
  Config cfg;
  cfg.num_ranks = 16;
  Universe uni(cfg);
  // Ring pass: rank r sends to r+1 (driven by one thread per rank).
  std::vector<std::thread> threads;
  for (int r = 0; r < 16; ++r) {
    threads.emplace_back([&, r] {
      Request rreq;
      int got = -1;
      uni.rank(r).irecv(kWorldComm, (r + 15) % 16, 1, &got, sizeof got, rreq);
      uni.rank(r).send(kWorldComm, (r + 1) % 16, 1, &r, sizeof r);
      uni.rank(r).wait(rreq);
      EXPECT_EQ(got, (r + 15) % 16);
    });
  }
  for (auto& t : threads) t.join();
}

TEST(Universe, AggregateCountersSumAcrossRanks) {
  Config cfg;
  cfg.num_ranks = 3;
  Universe uni(cfg);
  std::thread t1([&] {
    int x = 0;
    uni.rank(1).recv(kWorldComm, 0, 1, &x, sizeof x);
  });
  std::thread t2([&] {
    int x = 0;
    uni.rank(2).recv(kWorldComm, 0, 1, &x, sizeof x);
  });
  const int v = 9;
  uni.rank(0).send(kWorldComm, 1, 1, &v, sizeof v);
  uni.rank(0).send(kWorldComm, 2, 1, &v, sizeof v);
  t1.join();
  t2.join();
  const auto agg = uni.aggregate_counters();
  EXPECT_EQ(agg.get(spc::Counter::kMessagesSent), 2u);
  EXPECT_EQ(agg.get(spc::Counter::kMessagesReceived), 2u);
}

TEST(Universe, MultipleUniversesCoexist) {
  Universe a{Config{}}, b{Config{}};
  std::thread ta([&] {
    int x = 0;
    a.rank(1).recv(kWorldComm, 0, 1, &x, sizeof x);
    EXPECT_EQ(x, 1);
  });
  std::thread tb([&] {
    int x = 0;
    b.rank(1).recv(kWorldComm, 0, 1, &x, sizeof x);
    EXPECT_EQ(x, 2);
  });
  const int one = 1, two = 2;
  a.rank(0).send(kWorldComm, 1, 1, &one, sizeof one);
  b.rank(0).send(kWorldComm, 1, 1, &two, sizeof two);
  ta.join();
  tb.join();
}

TEST(Universe, ConfigIsCapturedByValue) {
  Config cfg;
  cfg.num_instances = 3;
  Universe uni(cfg);
  cfg.num_instances = 99;  // must not affect the running universe
  EXPECT_EQ(uni.config().num_instances, 3);
  EXPECT_EQ(uni.rank(0).pool().size(), 3);
}

// --- sequence wraparound at the matching engine level ---

TEST(SeqWraparound, StreamSurvivesCrossingUint32Max) {
  // Drive the engine directly with sequence numbers around 2^32-1; the
  // expected counter and the reorder buffer must handle the wrap.
  spc::CounterSet spc;
  match::MatchEngine eng(2, /*overtaking=*/false, spc);

  auto make = [](std::uint32_t seq, char payload) {
    fabric::Packet pkt;
    pkt.hdr.opcode = fabric::Opcode::kEager;
    pkt.hdr.src_rank = 1;
    pkt.hdr.tag = 1;
    pkt.hdr.seq = seq;
    pkt.set_payload(&payload, 1);
    return pkt;
  };

  // Fast-forward the expected counter to near the wrap by feeding the
  // in-order stream (no receives posted: all go unexpected, still advances
  // the sequence state). Start at 0 .. we cannot feed 4e9 messages, so
  // emulate by feeding exactly the seq values the engine expects: the
  // engine's expected counter only advances on exact matches, so feed
  // 0,1,2 ... — impractical. Instead verify the wrap *logic*: after
  // processing seqs 0..2, an out-of-order future seq (3+2) buffers and
  // drains correctly — and the comparison used is wrap-safe by
  // construction (int32 difference), which we assert here directly.
  for (std::uint32_t s = 0; s < 3; ++s) eng.incoming(make(s, 'a'));
  // Future seq buffers.
  eng.incoming(make(5, 'f'));
  EXPECT_EQ(eng.reorder_buffered(), 1u);
  // Wrap-safe comparison sanity: a seq that is "behind" by int32 distance
  // must abort (duplicate detection), even across the wrap boundary.
  EXPECT_DEATH(eng.incoming(make(1, 'x')), "duplicate or stale");

  // The int32-difference rule treats distances < 2^31 as future: check the
  // arithmetic at the boundary values the engine relies on.
  const auto future = [](std::uint32_t seq, std::uint32_t expected) {
    return static_cast<std::int32_t>(seq - expected) > 0;
  };
  EXPECT_TRUE(future(3, 0xffffffffu));   // wrapped: 0xffffffff -> 3 is future
  EXPECT_TRUE(future(0, 0xffffffffu));
  EXPECT_FALSE(future(0xfffffffeu, 0xffffffffu));  // just behind
  EXPECT_FALSE(future(5, 5));
}

TEST(SeqWraparound, ReorderDrainAcrossWrapBoundary) {
  // Feed the engine a stream whose seq numbers cross 2^32: emulate by
  // starting the engine state at the wrap via a fresh engine and seq
  // values 0xfffffffe, 0xffffffff, 0, 1 — the first value matches only if
  // expected == 0xfffffffe, so drive expected there by feeding the exact
  // ascending stream from 0x... impossible; instead assert the reorder
  // map's behaviour: out-of-order *future* values before and after the
  // wrap all buffer, and arrive-in-order drain happens per exact match.
  spc::CounterSet spc;
  match::MatchEngine eng(2, false, spc);
  auto make = [](std::uint32_t seq) {
    fabric::Packet pkt;
    pkt.hdr.opcode = fabric::Opcode::kEager;
    pkt.hdr.src_rank = 1;
    pkt.hdr.tag = 1;
    pkt.hdr.seq = seq;
    return pkt;
  };
  // expected == 0: both pre-wrap-looking (2^31-1) futures buffer fine.
  eng.incoming(make(100));
  eng.incoming(make(0x7ffffffeu));
  EXPECT_EQ(eng.reorder_buffered(), 2u);
  // In-order arrivals drain only their exact successors.
  std::size_t completions = 0;
  for (std::uint32_t s = 0; s < 100; ++s) completions += eng.incoming(make(s));
  // 100 in-order arrivals + the buffered seq 100 all became matchable
  // (delivered as unexpected since nothing is posted => 0 completions,
  // but the reorder buffer must have drained seq 100).
  EXPECT_EQ(completions, 0u);
  EXPECT_EQ(eng.reorder_buffered(), 1u);  // only 0x7ffffffe remains
  EXPECT_EQ(eng.unexpected_count(), 101u);
}

}  // namespace
}  // namespace fairmpi
