// Randomized end-to-end property test: many concurrent streams of
// randomly-sized messages (mixing eager and rendezvous, zero-byte and
// multi-fragment) across a 3-rank universe with concurrent progress.
//
// Oracle: each (sender-thread -> receiver-thread) stream uses a unique tag
// and deterministic per-message contents derived from the stream seed, so
// the receiver can verify *order, size and every byte* independently.
// Global conservation is checked via SPCs afterwards.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "fairmpi/common/rng.hpp"
#include "fairmpi/core/universe.hpp"

namespace fairmpi {
namespace {

constexpr int kRanks = 3;
constexpr int kThreadsPerRank = 2;
constexpr int kMsgsPerStream = 250;
constexpr std::size_t kMaxBytes = 2048;  // eager_limit=512 => mixes rendezvous

std::vector<std::uint8_t> message_bytes(std::uint64_t stream_seed, int index,
                                        std::size_t size) {
  Xoshiro256 rng(stream_seed ^ (static_cast<std::uint64_t>(index) * 0x9e3779b9ULL));
  std::vector<std::uint8_t> data(size);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng());
  return data;
}

std::size_t message_size(std::uint64_t stream_seed, int index) {
  Xoshiro256 rng(stream_seed + static_cast<std::uint64_t>(index));
  // Bias toward small, but exercise zero-byte and rendezvous regularly.
  const std::uint64_t pick = rng.bounded(10);
  if (pick == 0) return 0;
  if (pick <= 6) return static_cast<std::size_t>(rng.bounded(256));
  return static_cast<std::size_t>(rng.bounded(kMaxBytes));
}

class FuzzIntegration : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzIntegration, StreamsDeliverInOrderWithExactContents) {
  const std::uint64_t seed = GetParam();
  Config cfg;
  cfg.num_ranks = kRanks;
  cfg.num_instances = 2;
  cfg.assignment = cri::Assignment::kDedicated;
  cfg.progress_mode = progress::ProgressMode::kConcurrent;
  cfg.eager_limit = 512;
  cfg.rndv_frag_bytes = 300;  // several fragments per rendezvous message
  cfg.fabric.rx_ring_entries = 128;  // exercise backpressure
  Universe uni(cfg);

  auto stream_seed = [&](int src, int t) {
    return seed * 1000003ULL + static_cast<std::uint64_t>(src * 16 + t);
  };
  auto stream_tag = [](int src, int t) { return src * 10 + t; };

  std::vector<std::thread> threads;
  for (int r = 0; r < kRanks; ++r) {
    const int dst = (r + 1) % kRanks;
    const int src_of_r = (r + kRanks - 1) % kRanks;
    for (int t = 0; t < kThreadsPerRank; ++t) {
      threads.emplace_back([&, r, dst, t] {  // sender stream (r,t) -> dst
        const std::uint64_t sseed = stream_seed(r, t);
        for (int i = 0; i < kMsgsPerStream; ++i) {
          const std::size_t size = message_size(sseed, i);
          const auto data = message_bytes(sseed, i, size);
          uni.rank(r).send(kWorldComm, dst, stream_tag(r, t), data.data(), size);
        }
      });
      threads.emplace_back([&, r, src_of_r, t] {  // receiver for (src_of_r, t)
        const std::uint64_t sseed = stream_seed(src_of_r, t);
        std::vector<std::uint8_t> buf(kMaxBytes);
        for (int i = 0; i < kMsgsPerStream; ++i) {
          const Status st = uni.rank(r).recv(kWorldComm, src_of_r,
                                             stream_tag(src_of_r, t), buf.data(),
                                             buf.size());
          const std::size_t size = message_size(sseed, i);
          ASSERT_EQ(st.size, size) << "stream (" << src_of_r << "," << t << ") msg " << i;
          ASSERT_FALSE(st.truncated);
          const auto expect = message_bytes(sseed, i, size);
          // Zero-byte messages have nothing to compare; an empty vector's
          // data() may be null, which memcmp must never receive (UBSan).
          if (size != 0) {
            ASSERT_EQ(std::memcmp(buf.data(), expect.data(), size), 0)
                << "stream (" << src_of_r << "," << t << ") msg " << i;
          }
        }
      });
    }
  }
  for (auto& th : threads) th.join();

  // Conservation: every sent message was received, nothing is left queued.
  const auto agg = uni.aggregate_counters();
  const std::uint64_t expected =
      static_cast<std::uint64_t>(kRanks) * kThreadsPerRank * kMsgsPerStream;
  EXPECT_EQ(agg.get(spc::Counter::kMessagesSent), expected);
  EXPECT_EQ(agg.get(spc::Counter::kMessagesReceived), expected);
  for (int r = 0; r < kRanks; ++r) {
    EXPECT_EQ(uni.rank(r).comm_state(kWorldComm).match().unexpected_count(), 0u);
    EXPECT_EQ(uni.rank(r).comm_state(kWorldComm).match().reorder_buffered(), 0u);
    EXPECT_EQ(uni.rank(r).comm_state(kWorldComm).match().posted_count(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzIntegration, ::testing::Values(1, 7, 42, 1234));

TEST(FuzzOvertaking, UnorderedStreamsStillConserveMessages) {
  // With overtaking + ANY_TAG the per-stream order oracle no longer holds;
  // check conservation and per-message integrity via a self-describing
  // payload (first 8 bytes = stream seed + index).
  Config cfg;
  cfg.num_instances = 2;
  cfg.progress_mode = progress::ProgressMode::kConcurrent;
  cfg.allow_overtaking = true;
  Universe uni(cfg);

  constexpr int kThreads = 3;
  constexpr int kMsgs = 400;
  std::atomic<std::uint64_t> sent_sum{0}, got_sum{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng(static_cast<std::uint64_t>(t) + 77);
      for (int i = 0; i < kMsgs; ++i) {
        const std::uint64_t token = rng();
        sent_sum.fetch_add(token, std::memory_order_relaxed);
        uni.rank(0).send(kWorldComm, 1, /*tag=*/t, &token, sizeof token);
      }
    });
    threads.emplace_back([&] {
      for (int i = 0; i < kMsgs; ++i) {
        std::uint64_t token = 0;
        uni.rank(1).recv(kWorldComm, 0, kAnyTag, &token, sizeof token);
        got_sum.fetch_add(token, std::memory_order_relaxed);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(sent_sum.load(), got_sum.load());
}

}  // namespace
}  // namespace fairmpi
