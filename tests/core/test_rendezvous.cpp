// Rendezvous-protocol integration tests: payloads above Config::eager_limit
// travel via RTS/ACK/fragments while preserving the matching semantics
// (FIFO per stream, wildcards, truncation, unexpected arrival).
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "fairmpi/core/universe.hpp"

namespace fairmpi {
namespace {

using spc::Counter;

Config small_eager_cfg() {
  Config cfg;
  cfg.eager_limit = 1024;     // force rendezvous early
  cfg.rndv_frag_bytes = 4096; // several fragments for medium payloads
  return cfg;
}

std::vector<std::uint8_t> pattern(std::size_t n, std::uint8_t salt = 0) {
  std::vector<std::uint8_t> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::uint8_t>((i * 131 + salt) & 0xff);
  }
  return v;
}

TEST(Rendezvous, LargeMessageRoundTrip) {
  Universe uni(small_eager_cfg());
  const auto data = pattern(100'000);
  std::vector<std::uint8_t> got(data.size());
  std::thread receiver([&] {
    const Status st = uni.rank(1).recv(kWorldComm, 0, 5, got.data(), got.size());
    EXPECT_EQ(st.size, data.size());
    EXPECT_FALSE(st.truncated);
    EXPECT_EQ(st.source, 0);
    EXPECT_EQ(st.tag, 5);
  });
  uni.rank(0).send(kWorldComm, 1, 5, data.data(), data.size());
  receiver.join();
  EXPECT_EQ(got, data);
  // Counted once per message, not per fragment.
  EXPECT_EQ(uni.rank(0).counters().get(Counter::kMessagesSent), 1u);
  EXPECT_EQ(uni.rank(1).counters().get(Counter::kMessagesReceived), 1u);
}

TEST(Rendezvous, ExactEagerLimitStaysEager) {
  Config cfg = small_eager_cfg();
  Universe uni(cfg);
  const auto data = pattern(cfg.eager_limit);  // == limit: still eager
  std::vector<std::uint8_t> got(data.size());
  Request rreq;
  uni.rank(1).irecv(kWorldComm, 0, 1, got.data(), got.size(), rreq);
  Request sreq;
  uni.rank(0).isend(kWorldComm, 1, 1, data.data(), data.size(), sreq);
  EXPECT_TRUE(sreq.done());  // eager completes at injection
  uni.rank(1).wait(rreq);
  EXPECT_EQ(got, data);
}

TEST(Rendezvous, UnexpectedRtsThenPost) {
  Universe uni(small_eager_cfg());
  const auto data = pattern(50'000);
  Request sreq;
  uni.rank(0).isend(kWorldComm, 1, 3, data.data(), data.size(), sreq);
  // Let the RTS arrive unexpected.
  for (int i = 0; i < 50; ++i) uni.rank(1).progress();
  EXPECT_EQ(uni.rank(1).comm_state(kWorldComm).match().unexpected_count(), 1u);

  std::vector<std::uint8_t> got(data.size());
  Request rreq;
  uni.rank(1).irecv(kWorldComm, 0, 3, got.data(), got.size(), rreq);
  // Single-threaded test: drive both ranks — the ack needs sender-side
  // progress before the data can flow.
  while (!rreq.done() || !sreq.done()) {
    uni.rank(0).progress();
    uni.rank(1).progress();
  }
  EXPECT_EQ(got, data);
}

TEST(Rendezvous, TruncationClampsButDrainsWire) {
  Universe uni(small_eager_cfg());
  const auto data = pattern(20'000);
  std::vector<std::uint8_t> small(7'000);
  std::thread receiver([&] {
    const Status st = uni.rank(1).recv(kWorldComm, 0, 2, small.data(), small.size());
    EXPECT_TRUE(st.truncated);
    EXPECT_EQ(st.size, data.size());  // sent size reported
  });
  uni.rank(0).send(kWorldComm, 1, 2, data.data(), data.size());
  receiver.join();
  EXPECT_EQ(std::memcmp(small.data(), data.data(), small.size()), 0);
}

TEST(Rendezvous, FifoOrderAcrossEagerAndRendezvous) {
  // An eager message sent after a rendezvous RTS on the same stream must
  // match second: the RTS carries the earlier sequence number.
  Universe uni(small_eager_cfg());
  const auto big = pattern(30'000, 1);
  const auto tiny = pattern(16, 2);

  Request s1, s2;
  uni.rank(0).isend(kWorldComm, 1, 9, big.data(), big.size(), s1);
  uni.rank(0).isend(kWorldComm, 1, 9, tiny.data(), tiny.size(), s2);

  std::vector<std::uint8_t> first(big.size()), second(big.size());
  Request r1, r2;
  uni.rank(1).irecv(kWorldComm, 0, 9, first.data(), first.size(), r1);
  uni.rank(1).irecv(kWorldComm, 0, 9, second.data(), second.size(), r2);
  std::thread receiver([&] {
    uni.rank(1).wait(r1);
    uni.rank(1).wait(r2);
  });
  uni.rank(0).wait(s1);
  uni.rank(0).wait(s2);
  receiver.join();

  EXPECT_EQ(r1.status().size, big.size());
  EXPECT_EQ(std::memcmp(first.data(), big.data(), big.size()), 0);
  EXPECT_EQ(r2.status().size, tiny.size());
  EXPECT_EQ(std::memcmp(second.data(), tiny.data(), tiny.size()), 0);
}

TEST(Rendezvous, AnyTagMatchesRts) {
  Universe uni(small_eager_cfg());
  const auto data = pattern(40'000);
  std::vector<std::uint8_t> got(data.size());
  std::thread receiver([&] {
    const Status st =
        uni.rank(1).recv(kWorldComm, 0, kAnyTag, got.data(), got.size());
    EXPECT_EQ(st.tag, 31);
  });
  uni.rank(0).send(kWorldComm, 1, 31, data.data(), data.size());
  receiver.join();
  EXPECT_EQ(got, data);
}

TEST(Rendezvous, ManyConcurrentLargeTransfers) {
  Config cfg = small_eager_cfg();
  cfg.num_instances = 4;
  cfg.assignment = cri::Assignment::kDedicated;
  cfg.progress_mode = progress::ProgressMode::kConcurrent;
  Universe uni(cfg);

  constexpr int kThreads = 4;
  constexpr int kMsgs = 20;
  constexpr std::size_t kSize = 24'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {  // senders, tag = t
      const auto data = pattern(kSize, static_cast<std::uint8_t>(t));
      for (int i = 0; i < kMsgs; ++i) {
        uni.rank(0).send(kWorldComm, 1, t, data.data(), data.size());
      }
    });
    threads.emplace_back([&, t] {  // receivers, tag = t
      const auto expect = pattern(kSize, static_cast<std::uint8_t>(t));
      std::vector<std::uint8_t> got(kSize);
      for (int i = 0; i < kMsgs; ++i) {
        const Status st = uni.rank(1).recv(kWorldComm, 0, t, got.data(), got.size());
        ASSERT_EQ(st.size, kSize);
        ASSERT_EQ(got, expect) << "thread " << t << " msg " << i;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(uni.rank(1).counters().get(Counter::kMessagesReceived),
            static_cast<std::uint64_t>(kThreads) * kMsgs);
}

TEST(Rendezvous, MixedSizesInterleaved) {
  Universe uni(small_eager_cfg());
  // Alternate eager and rendezvous sizes on one stream; everything must
  // arrive in order with correct contents.
  constexpr int kMsgs = 30;
  std::thread receiver([&] {
    for (int i = 0; i < kMsgs; ++i) {
      const std::size_t size = (i % 2 == 0) ? 64 : 9'000;
      std::vector<std::uint8_t> got(size);
      const Status st = uni.rank(1).recv(kWorldComm, 0, 4, got.data(), got.size());
      ASSERT_EQ(st.size, size);
      ASSERT_EQ(got, pattern(size, static_cast<std::uint8_t>(i)));
    }
  });
  for (int i = 0; i < kMsgs; ++i) {
    const std::size_t size = (i % 2 == 0) ? 64 : 9'000;
    const auto data = pattern(size, static_cast<std::uint8_t>(i));
    uni.rank(0).send(kWorldComm, 1, 4, data.data(), data.size());
  }
  receiver.join();
}

TEST(Rendezvous, SelfSendLargeMessage) {
  Config cfg = small_eager_cfg();
  cfg.num_ranks = 1;
  Universe uni(cfg);
  const auto data = pattern(15'000);
  std::vector<std::uint8_t> got(data.size());
  Request rreq, sreq;
  uni.rank(0).irecv(kWorldComm, 0, 1, got.data(), got.size(), rreq);
  uni.rank(0).isend(kWorldComm, 0, 1, data.data(), data.size(), sreq);
  uni.rank(0).wait(sreq);
  uni.rank(0).wait(rreq);
  EXPECT_EQ(got, data);
}

TEST(Rendezvous, SingleFragmentWhenFragLarger) {
  Config cfg;
  cfg.eager_limit = 512;
  cfg.rndv_frag_bytes = 1 << 20;  // one fragment covers everything
  Universe uni(cfg);
  const auto data = pattern(10'000);
  std::vector<std::uint8_t> got(data.size());
  std::thread receiver(
      [&] { uni.rank(1).recv(kWorldComm, 0, 1, got.data(), got.size()); });
  uni.rank(0).send(kWorldComm, 1, 1, data.data(), data.size());
  receiver.join();
  EXPECT_EQ(got, data);
}

}  // namespace
}  // namespace fairmpi
