// Integration tests for one-sided (RMA) communication.
#include <gtest/gtest.h>

#include <atomic>
#include <barrier>
#include <cstring>
#include <numeric>
#include <thread>
#include <vector>

#include "fairmpi/rma/window.hpp"

namespace fairmpi {
namespace {

using rma::WindowGroup;
using spc::Counter;

class RmaTest : public ::testing::Test {
 protected:
  void build(Config cfg, std::size_t bytes_per_rank = 4096) {
    uni_ = std::make_unique<Universe>(cfg);
    regions_.resize(static_cast<std::size_t>(cfg.num_ranks));
    std::vector<WindowGroup::Region> specs;
    for (auto& region : regions_) {
      region.assign(bytes_per_rank, std::byte{0});
      specs.push_back({region.data(), region.size()});
    }
    group_ = std::make_unique<WindowGroup>(*uni_, specs);
  }

  std::unique_ptr<Universe> uni_;
  std::vector<std::vector<std::byte>> regions_;
  std::unique_ptr<WindowGroup> group_;
};

TEST_F(RmaTest, PutThenFlushLandsAtTarget) {
  build(Config{});
  const char data[] = "rdma!";
  group_->window(0).put(/*target=*/1, /*disp=*/64, data, sizeof data);
  group_->window(0).flush(1);
  EXPECT_EQ(std::memcmp(regions_[1].data() + 64, data, sizeof data), 0);
  EXPECT_EQ(group_->window(0).pending(), 0u);
}

TEST_F(RmaTest, GetReadsRemoteMemory) {
  build(Config{});
  const char data[] = "remote";
  std::memcpy(regions_[1].data() + 128, data, sizeof data);
  char got[16] = {};
  group_->window(0).get(1, 128, got, sizeof data);
  group_->window(0).flush_all();
  EXPECT_EQ(std::memcmp(got, data, sizeof data), 0);
}

TEST_F(RmaTest, ZeroByteOpsComplete) {
  build(Config{});
  group_->window(0).put(1, 0, nullptr, 0);
  group_->window(0).flush_all();
  EXPECT_EQ(group_->window(0).pending(), 0u);
}

TEST_F(RmaTest, PendingReflectsOutstandingOps) {
  build(Config{});
  char byte = 'a';
  for (int i = 0; i < 10; ++i) group_->window(0).put(1, 0, &byte, 1);
  EXPECT_EQ(group_->window(0).pending(), 10u);
  group_->window(0).flush_all();
  EXPECT_EQ(group_->window(0).pending(), 0u);
}

TEST_F(RmaTest, FetchAddReturnsOldValue) {
  build(Config{});
  auto* cell = reinterpret_cast<std::uint64_t*>(regions_[1].data());
  *cell = 100;
  EXPECT_EQ(group_->window(0).fetch_add_u64(1, 0, 5), 100u);
  EXPECT_EQ(group_->window(0).fetch_add_u64(1, 0, 5), 105u);
  group_->window(0).flush_all();
  EXPECT_EQ(*cell, 110u);
}

TEST_F(RmaTest, AccumulatesAreAtomicAcrossThreadsAndRanks) {
  Config cfg;
  cfg.num_instances = 4;
  cfg.assignment = cri::Assignment::kDedicated;
  build(cfg);
  constexpr int kThreads = 4;
  constexpr int kIters = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Initiators on both ranks target rank 1's first word.
      rma::Window& win = group_->window(t % 2);
      for (int i = 0; i < kIters; ++i) win.accumulate_add_u64(1, 0, 1);
      win.flush_all();
    });
  }
  for (auto& t : threads) t.join();
  const auto* cell = reinterpret_cast<const std::uint64_t*>(regions_[1].data());
  EXPECT_EQ(*cell, static_cast<std::uint64_t>(kThreads) * kIters);
}

TEST_F(RmaTest, ConcurrentPutsToDisjointSlotsAllLand) {
  Config cfg;
  cfg.num_instances = 4;
  cfg.assignment = cri::Assignment::kDedicated;
  build(cfg, /*bytes_per_rank=*/4 * 1024);
  constexpr int kThreads = 4;
  constexpr int kSlots = 256;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int s = t; s < kSlots; s += kThreads) {
        const std::uint32_t value = 0xbeef0000u + static_cast<std::uint32_t>(s);
        group_->window(0).put(1, static_cast<std::size_t>(s) * 4, &value, 4);
      }
      group_->window(0).flush_all();
    });
  }
  for (auto& t : threads) t.join();
  for (int s = 0; s < kSlots; ++s) {
    std::uint32_t got = 0;
    std::memcpy(&got, regions_[1].data() + s * 4, 4);
    EXPECT_EQ(got, 0xbeef0000u + static_cast<std::uint32_t>(s)) << "slot " << s;
  }
}

TEST_F(RmaTest, FlushWithNoPendingReturnsImmediately) {
  build(Config{});
  group_->window(0).flush_all();  // must not hang
  EXPECT_EQ(group_->window(0).pending(), 0u);
  EXPECT_EQ(uni_->rank(0).counters().get(Counter::kRmaFlushes), 1u);
}

TEST_F(RmaTest, UnlockAllFlushes) {
  build(Config{});
  group_->window(0).lock_all();
  char byte = 'q';
  group_->window(0).put(1, 7, &byte, 1);
  group_->window(0).unlock_all();
  EXPECT_EQ(group_->window(0).pending(), 0u);
  EXPECT_EQ(static_cast<char>(regions_[1][7]), 'q');
}

TEST_F(RmaTest, SpcCountsOps) {
  build(Config{});
  char byte = 1;
  group_->window(0).put(1, 0, &byte, 1);
  group_->window(0).get(1, 0, &byte, 1);
  group_->window(0).accumulate_add_u64(1, 8, 1);
  group_->window(0).flush_all();
  auto& spc = uni_->rank(0).counters();
  EXPECT_EQ(spc.get(Counter::kRmaPuts), 1u);
  EXPECT_EQ(spc.get(Counter::kRmaGets), 1u);
  EXPECT_EQ(spc.get(Counter::kRmaAccumulates), 1u);
  EXPECT_EQ(spc.get(Counter::kRmaFlushes), 1u);
}

TEST_F(RmaTest, OutOfBoundsAborts) {
  build(Config{}, 256);
  char byte = 0;
  EXPECT_DEATH(group_->window(0).put(1, 256, &byte, 1), "bounds");
  EXPECT_DEATH(group_->window(0).get(1, 250, &byte, 100), "bounds");
  EXPECT_DEATH(group_->window(0).accumulate_add_u64(1, 3, 1), "aligned");
}

TEST_F(RmaTest, CqOverrunDrainsInline) {
  // More outstanding puts than CQ entries: post_completion must harvest
  // inline rather than deadlock.
  Config cfg;
  cfg.fabric.cq_entries = 8;
  build(cfg);
  char byte = 'z';
  for (int i = 0; i < 100; ++i) group_->window(0).put(1, 0, &byte, 1);
  group_->window(0).flush_all();
  EXPECT_EQ(group_->window(0).pending(), 0u);
}

TEST_F(RmaTest, ManyThreadsScalePendingCorrectly) {
  Config cfg;
  cfg.num_instances = 2;
  build(cfg);
  constexpr int kThreads = 4;
  constexpr int kIters = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    // Distinct per-thread displacement: concurrent *conflicting* puts to
    // one location within an epoch are erroneous MPI (and, in this
    // shared-memory engine, racing memcpys).
    threads.emplace_back([&, t] {
      char byte = 1;
      for (int i = 0; i < kIters; ++i) {
        group_->window(0).put(1, static_cast<std::size_t>(t), &byte, 1);
        if (i % 100 == 99) group_->window(0).flush_all();
      }
      group_->window(0).flush_all();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(group_->window(0).pending(), 0u);
  EXPECT_EQ(uni_->rank(0).counters().get(Counter::kRmaPuts),
            static_cast<std::uint64_t>(kThreads) * kIters);
}

TEST_F(RmaTest, FenceSynchronizesEpochs) {
  Config cfg;
  cfg.num_ranks = 3;
  build(cfg);
  constexpr int kIters = 50;
  std::vector<std::thread> threads;
  for (int r = 0; r < 3; ++r) {
    threads.emplace_back([&, r] {
      rma::Window& win = group_->window(r);
      for (int it = 0; it < kIters; ++it) {
        // Everyone writes its rank into its slot of the next rank's
        // region, fences, then checks the value the previous rank wrote.
        const std::uint32_t value = static_cast<std::uint32_t>(it * 10 + r);
        const int next = (r + 1) % 3;
        win.put(next, static_cast<std::size_t>(r) * 4, &value, 4);
        win.fence();
        const int prev = (r + 2) % 3;
        std::uint32_t got = 0;
        std::memcpy(&got, regions_[static_cast<std::size_t>(r)].data() + prev * 4, 4);
        ASSERT_EQ(got, static_cast<std::uint32_t>(it * 10 + prev)) << "iter " << it;
        win.fence();  // second fence: writes of iteration it fully consumed
      }
    });
  }
  for (auto& t : threads) t.join();
}

TEST_F(RmaTest, ExclusiveLockSerializesReadModifyWrite) {
  Config cfg;
  cfg.num_instances = 4;
  build(cfg);
  // Non-atomic read-modify-write under MPI_Win_lock(EXCLUSIVE): correct
  // only if the lock truly serializes.
  constexpr int kThreads = 4;
  constexpr int kIters = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      rma::Window& win = group_->window(0);
      for (int i = 0; i < kIters; ++i) {
        win.lock(rma::Window::LockKind::kExclusive, 1);
        std::uint64_t value = 0;
        win.get(1, 0, &value, sizeof value);
        win.flush(1);
        ++value;
        win.put(1, 0, &value, sizeof value);
        win.unlock(1);  // flushes
      }
    });
  }
  for (auto& t : threads) t.join();
  const auto* cell = reinterpret_cast<const std::uint64_t*>(regions_[1].data());
  EXPECT_EQ(*cell, static_cast<std::uint64_t>(kThreads) * kIters);
}

TEST_F(RmaTest, SharedLockAdmitsConcurrentReaders) {
  build(Config{});
  rma::Window& win = group_->window(0);
  win.lock(rma::Window::LockKind::kShared, 1);
  std::atomic<bool> second_acquired{false};
  std::thread other([&] {
    win.lock(rma::Window::LockKind::kShared, 1);
    second_acquired.store(true);
    win.unlock(1);
  });
  other.join();
  EXPECT_TRUE(second_acquired.load());  // shared holders coexist
  win.unlock(1);
}

TEST_F(RmaTest, ExclusiveExcludesShared) {
  build(Config{});
  rma::Window& win0 = group_->window(0);
  rma::Window& win1 = group_->window(1);
  win0.lock(rma::Window::LockKind::kExclusive, 1);
  std::atomic<bool> acquired{false};
  std::thread waiter([&] {
    win1.lock(rma::Window::LockKind::kShared, 1);
    acquired.store(true);
    win1.unlock(1);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(acquired.load());  // blocked behind the exclusive holder
  win0.unlock(1);
  waiter.join();
  EXPECT_TRUE(acquired.load());
}

TEST_F(RmaTest, UnlockWithoutLockAborts) {
  build(Config{});
  EXPECT_DEATH(group_->window(0).unlock(1), "without a held");
}

}  // namespace
}  // namespace fairmpi
