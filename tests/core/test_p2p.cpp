// Integration tests: the full two-sided engine across ranks and threads,
// for every combination of the paper's design axes.
#include <gtest/gtest.h>

#include <atomic>
#include <barrier>
#include <cstring>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "fairmpi/core/universe.hpp"

namespace fairmpi {
namespace {

using spc::Counter;

TEST(P2p, BlockingSendRecvSingleThreaded) {
  Universe uni(Config{});
  std::thread receiver([&] {
    char buf[16] = {};
    const Status st = uni.rank(1).world().recv(0, 7, buf, sizeof buf);
    EXPECT_EQ(st.source, 0);
    EXPECT_EQ(st.tag, 7);
    EXPECT_EQ(st.size, 5u);
    EXPECT_EQ(std::string(buf, 5), "hello");
  });
  uni.rank(0).world().send(1, 7, "hello", 5);
  receiver.join();
}

TEST(P2p, NonblockingRoundTrip) {
  Universe uni(Config{});
  Request sreq, rreq;
  int payload = 1234, got = 0;
  uni.rank(1).irecv(kWorldComm, 0, 1, &got, sizeof got, rreq);
  uni.rank(0).isend(kWorldComm, 1, 1, &payload, sizeof payload, sreq);
  uni.rank(0).wait(sreq);
  uni.rank(1).wait(rreq);
  EXPECT_EQ(got, 1234);
}

TEST(P2p, SelfSend) {
  Config cfg;
  cfg.num_ranks = 1;
  Universe uni(cfg);
  Request rreq;
  int got = 0, payload = 55;
  uni.rank(0).irecv(kWorldComm, 0, 3, &got, sizeof got, rreq);
  uni.rank(0).send(kWorldComm, 0, 3, &payload, sizeof payload);
  uni.rank(0).wait(rreq);
  EXPECT_EQ(got, 55);
}

TEST(P2p, ZeroByteMessageCarriesEnvelopeOnly) {
  Universe uni(Config{});
  Request rreq;
  uni.rank(1).irecv(kWorldComm, 0, 9, nullptr, 0, rreq);
  uni.rank(0).send(kWorldComm, 1, 9, nullptr, 0);
  uni.rank(1).wait(rreq);
  EXPECT_EQ(rreq.status().size, 0u);
  EXPECT_FALSE(rreq.status().truncated);
}

TEST(P2p, LargePayloadHeapPath) {
  Universe uni(Config{});
  const std::string big(1 << 20, 'x');
  std::vector<char> got(big.size());
  std::thread receiver([&] {
    uni.rank(1).recv(kWorldComm, 0, 2, got.data(), got.size());
  });
  uni.rank(0).send(kWorldComm, 1, 2, big.data(), big.size());
  receiver.join();
  EXPECT_EQ(std::memcmp(got.data(), big.data(), big.size()), 0);
}

TEST(P2p, FifoOrderSingleSenderThread) {
  Universe uni(Config{});
  constexpr int kN = 500;
  std::thread receiver([&] {
    for (int i = 0; i < kN; ++i) {
      int got = -1;
      uni.rank(1).recv(kWorldComm, 0, 1, &got, sizeof got);
      ASSERT_EQ(got, i) << "non-overtaking FIFO violated";
    }
  });
  for (int i = 0; i < kN; ++i) uni.rank(0).send(kWorldComm, 1, 1, &i, sizeof i);
  receiver.join();
}

TEST(P2p, WaitAll) {
  Universe uni(Config{});
  constexpr int kN = 64;
  std::vector<Request> rreqs(kN), sreqs(kN);
  std::vector<int> in(kN, -1), out(kN);
  std::iota(out.begin(), out.end(), 0);
  std::vector<Request*> rptrs, sptrs;
  for (int i = 0; i < kN; ++i) {
    uni.rank(1).irecv(kWorldComm, 0, i, &in[i], sizeof(int), rreqs[i]);
    rptrs.push_back(&rreqs[i]);
  }
  for (int i = 0; i < kN; ++i) {
    uni.rank(0).isend(kWorldComm, 1, i, &out[i], sizeof(int), sreqs[i]);
    sptrs.push_back(&sreqs[i]);
  }
  uni.rank(0).wait_all(sptrs.data(), sptrs.size());
  uni.rank(1).wait_all(rptrs.data(), rptrs.size());
  EXPECT_EQ(in, out);
}

TEST(P2p, TestReturnsFalseThenTrue) {
  Universe uni(Config{});
  Request rreq;
  int got = 0;
  uni.rank(1).irecv(kWorldComm, 0, 4, &got, sizeof got, rreq);
  EXPECT_FALSE(uni.rank(1).test(rreq));
  uni.rank(0).send(kWorldComm, 1, 4, &got, sizeof got);
  while (!uni.rank(1).test(rreq)) {
  }
  EXPECT_TRUE(rreq.done());
}

TEST(P2p, CommunicatorsIsolateTraffic) {
  Universe uni(Config{});
  const CommId extra = uni.create_communicator();
  // Same (src, dst, tag) on two communicators must not cross-match.
  Request r_world, r_extra;
  int got_world = 0, got_extra = 0;
  uni.rank(1).irecv(kWorldComm, 0, 5, &got_world, sizeof(int), r_world);
  uni.rank(1).irecv(extra, 0, 5, &got_extra, sizeof(int), r_extra);
  const int a = 111, b = 222;
  uni.rank(0).send(extra, 1, 5, &b, sizeof b);
  uni.rank(1).wait(r_extra);
  EXPECT_EQ(got_extra, 222);
  EXPECT_FALSE(r_world.done());
  uni.rank(0).send(kWorldComm, 1, 5, &a, sizeof a);
  uni.rank(1).wait(r_world);
  EXPECT_EQ(got_world, 111);
}

TEST(P2p, BarrierSynchronizesAllRanks) {
  Config cfg;
  cfg.num_ranks = 4;
  Universe uni(cfg);
  std::atomic<int> arrived{0};
  std::vector<std::thread> threads;
  for (int r = 0; r < 4; ++r) {
    threads.emplace_back([&, r] {
      for (int round = 0; round < 10; ++round) {
        arrived.fetch_add(1);
        uni.rank(r).world().barrier();
        // After the barrier, every rank must have arrived in this round.
        EXPECT_GE(arrived.load(), (round + 1) * 4);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(arrived.load(), 40);
}

TEST(P2p, SpcSentReceivedAgree) {
  Universe uni(Config{});
  constexpr int kN = 100;
  std::thread receiver([&] {
    char buf[8];
    for (int i = 0; i < kN; ++i) uni.rank(1).recv(kWorldComm, 0, 1, buf, sizeof buf);
  });
  for (int i = 0; i < kN; ++i) uni.rank(0).send(kWorldComm, 1, 1, "x", 1);
  receiver.join();
  EXPECT_EQ(uni.rank(0).counters().get(Counter::kMessagesSent), static_cast<std::uint64_t>(kN));
  EXPECT_EQ(uni.rank(1).counters().get(Counter::kMessagesReceived),
            static_cast<std::uint64_t>(kN));
}

TEST(P2p, BidirectionalFloodOnTinyRingsDoesNotDeadlock) {
  // Both ranks flood each other while their RX rings hold only 8 packets:
  // the backpressure path (release CRI, progress own resources, retry) must
  // keep both sides live.
  Config cfg;
  cfg.fabric.rx_ring_entries = 8;
  Universe uni(cfg);
  constexpr int kN = 5000;
  auto worker = [&](int me, int peer) {
    std::vector<Request> rreqs(kN);
    std::vector<char> sink(kN);
    for (int i = 0; i < kN; ++i) {
      uni.rank(me).irecv(kWorldComm, peer, 1, &sink[i], 1, rreqs[i]);
    }
    for (int i = 0; i < kN; ++i) {
      uni.rank(me).send(kWorldComm, peer, 1, "z", 1);
    }
    for (int i = 0; i < kN; ++i) uni.rank(me).wait(rreqs[i]);
  };
  std::thread t0(worker, 0, 1), t1(worker, 1, 0);
  t0.join();
  t1.join();
  const auto agg = uni.aggregate_counters();
  EXPECT_EQ(agg.get(Counter::kMessagesSent), 2u * kN);
  EXPECT_EQ(agg.get(Counter::kMessagesReceived), 2u * kN);
}

// The full design matrix: {instances 1,4} x {RR, dedicated} x {serial,
// concurrent} x {overtaking on/off}, with 4 sender threads and 4 receiver
// threads hammering one communicator. Checks: no loss, no corruption.
struct MatrixParam {
  int instances;
  cri::Assignment assign;
  progress::ProgressMode mode;
  bool overtaking;
};

class P2pMatrix : public ::testing::TestWithParam<MatrixParam> {};

TEST_P(P2pMatrix, MultithreadedFloodDeliversEverything) {
  const MatrixParam& p = GetParam();
  Config cfg;
  cfg.num_instances = p.instances;
  cfg.assignment = p.assign;
  cfg.progress_mode = p.mode;
  cfg.allow_overtaking = p.overtaking;
  Universe uni(cfg);

  constexpr int kThreads = 4;
  constexpr int kPerThread = 2000;
  std::atomic<std::uint64_t> checksum_sent{0}, checksum_recv{0};

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {  // senders on rank 0
      for (int i = 0; i < kPerThread; ++i) {
        const std::uint32_t value = static_cast<std::uint32_t>(t * kPerThread + i);
        uni.rank(0).send(kWorldComm, 1, /*tag=*/7, &value, sizeof value);
        checksum_sent.fetch_add(value, std::memory_order_relaxed);
      }
    });
  }
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {  // receivers on rank 1
      for (int i = 0; i < kPerThread; ++i) {
        std::uint32_t value = 0;
        const Status st = uni.rank(1).recv(kWorldComm, 0, 7, &value, sizeof value);
        ASSERT_EQ(st.size, sizeof value);
        checksum_recv.fetch_add(value, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(checksum_sent.load(), checksum_recv.load());
  EXPECT_EQ(uni.rank(1).counters().get(Counter::kMessagesReceived),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

std::string matrix_name(const ::testing::TestParamInfo<MatrixParam>& info) {
  const MatrixParam& p = info.param;
  std::string name = std::to_string(p.instances) + "cri_";
  name += p.assign == cri::Assignment::kDedicated ? "ded_" : "rr_";
  name += p.mode == progress::ProgressMode::kSerial ? "serial" : "conc";
  if (p.overtaking) name += "_ovt";
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    DesignMatrix, P2pMatrix,
    ::testing::Values(
        MatrixParam{1, cri::Assignment::kRoundRobin, progress::ProgressMode::kSerial, false},
        MatrixParam{1, cri::Assignment::kDedicated, progress::ProgressMode::kSerial, false},
        MatrixParam{4, cri::Assignment::kRoundRobin, progress::ProgressMode::kSerial, false},
        MatrixParam{4, cri::Assignment::kDedicated, progress::ProgressMode::kSerial, false},
        MatrixParam{4, cri::Assignment::kRoundRobin, progress::ProgressMode::kConcurrent,
                    false},
        MatrixParam{4, cri::Assignment::kDedicated, progress::ProgressMode::kConcurrent,
                    false},
        MatrixParam{4, cri::Assignment::kDedicated, progress::ProgressMode::kConcurrent, true},
        MatrixParam{4, cri::Assignment::kRoundRobin, progress::ProgressMode::kConcurrent,
                    true}),
    matrix_name);

TEST(P2p, OutOfSequenceCounterRisesWithConcurrentSenders) {
  // Several sender threads sharing one communicator and several instances
  // should produce out-of-sequence arrivals (the §II-C effect); a single
  // sender thread should produce none.
  Config cfg;
  cfg.num_instances = 4;
  cfg.assignment = cri::Assignment::kRoundRobin;
  Universe uni(cfg);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 3000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        uni.rank(0).send(kWorldComm, 1, 1, nullptr, 0);
      }
    });
  }
  std::thread receiver([&] {
    for (int i = 0; i < kThreads * kPerThread; ++i) {
      uni.rank(1).recv(kWorldComm, 0, 1, nullptr, 0);
    }
  });
  for (auto& t : threads) t.join();
  receiver.join();
  EXPECT_GT(uni.rank(1).counters().get(Counter::kOutOfSequence), 0u);
}

TEST(P2p, InvalidArgumentsAbort) {
  Universe uni(Config{});
  Request req;
  EXPECT_DEATH(uni.rank(0).isend(kWorldComm, 99, 1, nullptr, 0, req), "destination");
  EXPECT_DEATH(uni.rank(0).isend(kWorldComm, 1, -5, nullptr, 0, req), "tag");
  EXPECT_DEATH(uni.rank(0).irecv(kWorldComm, 42, 1, nullptr, 0, req), "source");
  EXPECT_DEATH(uni.rank(0).comm_state(777), "not created");
}

}  // namespace
}  // namespace fairmpi
