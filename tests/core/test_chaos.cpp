// End-to-end chaos tests: exactly-once delivery over a seeded lossy fabric
// (eager and rendezvous, with drops, duplicates, reordering and corruption),
// the stall watchdog's escalation ladder, and typed send-budget errors.
//
// Every test clears the FAIRMPI_* chaos environment first: the fault model
// here is programmatic and seeded so the runs stay deterministic even when
// the suite itself is executed under the CI chaos profile.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "fairmpi/common/timing.hpp"
#include "fairmpi/core/universe.hpp"

namespace fairmpi {
namespace {

using common::Error;
using common::ErrorCode;
using spc::Counter;

/// Unsets the chaos/reliability environment for the lifetime of a test and
/// restores it afterwards, so this file's programmatic fault configs are
/// authoritative no matter what profile ctest runs under.
class ScopedChaosEnvClear {
 public:
  ScopedChaosEnvClear() {
    for (const char* name : kVars) {
      const char* value = std::getenv(name);
      saved_.emplace_back(name, value == nullptr ? std::string()
                                                 : std::string(value));
      if (value != nullptr) ::unsetenv(name);
    }
  }
  ~ScopedChaosEnvClear() {
    for (const auto& [name, value] : saved_) {
      if (!value.empty()) ::setenv(name, value.c_str(), 1);
    }
  }

 private:
  static constexpr const char* kVars[] = {
      "FAIRMPI_FAULT_DROP",      "FAIRMPI_FAULT_DUP",
      "FAIRMPI_FAULT_DELAY",     "FAIRMPI_FAULT_REORDER",
      "FAIRMPI_FAULT_CORRUPT",   "FAIRMPI_FAULT_SEED",
      "FAIRMPI_RELIABLE",        "FAIRMPI_RTO_NS",
      "FAIRMPI_RTO_MAX_NS",      "FAIRMPI_MAX_RETRIES",
      "FAIRMPI_RELIABILITY_WINDOW", "FAIRMPI_SEND_RETRY_LIMIT",
      "FAIRMPI_WATCHDOG_INTERVAL_NS", "FAIRMPI_WATCHDOG_STALL_SWEEPS",
      "FAIRMPI_RNDV_STALL_NS",   "FAIRMPI_FT",
      "FAIRMPI_FT_HEARTBEAT_NS", "FAIRMPI_FT_SUSPECT_NS",
      "FAIRMPI_FT_STRIKES",
  };
  std::vector<std::pair<const char*, std::string>> saved_;
};

Config lossy_config() {
  Config cfg;
  cfg.num_ranks = 2;
  cfg.faults.drop = 0.02;
  cfg.faults.dup = 0.01;
  cfg.faults.reorder = 0.05;
  cfg.faults.seed = 0x5eed;
  cfg.rto_ns = 200'000;  // 0.2 ms: recover fast, keep the test short
  return cfg;
}

/// Error-sink capture target for the watchdog / budget tests.
struct ErrorCapture {
  std::vector<Error> errors;
  static void sink(const Error& err, void* user) {
    static_cast<ErrorCapture*>(user)->errors.push_back(err);
  }
  bool saw(ErrorCode code) const {
    for (const Error& e : errors) {
      if (e.code == code) return true;
    }
    return false;
  }
};

TEST(Chaos, ExactlyOnceEagerFifo) {
  ScopedChaosEnvClear env;
  Universe uni(lossy_config());
  ASSERT_TRUE(uni.config().reliable);  // faults.any() switches it on
  constexpr int kMessages = 400;

  std::thread sender([&] {
    auto w0 = uni.rank(0).world();
    for (std::uint32_t i = 0; i < kMessages; ++i) {
      w0.send(1, /*tag=*/7, &i, sizeof i);
    }
  });
  // FIFO: despite drops, duplicates and reordering on the wire, the
  // application-visible stream is in order and every message arrives once.
  auto w1 = uni.rank(1).world();
  for (std::uint32_t i = 0; i < kMessages; ++i) {
    std::uint32_t got = ~0u;
    const Status st = w1.recv(0, 7, &got, sizeof got);
    ASSERT_EQ(st.size, sizeof got);
    ASSERT_EQ(got, i) << "stream broke order at message " << i;
  }
  sender.join();

  EXPECT_EQ(uni.rank(1).counters().get(Counter::kMessagesReceived),
            static_cast<std::uint64_t>(kMessages));

  // The run must actually have been lossy, and the protocol visibly active.
  const auto& stats = uni.fabric().injector()->stats();
  EXPECT_GT(stats.dropped.load(), 0u);
  const spc::Snapshot total = uni.aggregate_counters();
  EXPECT_GT(total.get(Counter::kRetransmits), 0u);
  EXPECT_GT(total.get(Counter::kAcksSent), 0u);
  EXPECT_GT(total.get(Counter::kAcksReceived), 0u);
  EXPECT_GT(total.get(Counter::kDupDiscards), 0u);
  EXPECT_EQ(total.get(Counter::kReliabilityErrors), 0u);
}

TEST(Chaos, ExactlyOnceConcurrentSenders) {
  ScopedChaosEnvClear env;
  Config cfg = lossy_config();
  cfg.num_instances = 2;
  cfg.assignment = cri::Assignment::kRoundRobin;
  cfg.progress_mode = progress::ProgressMode::kConcurrent;
  Universe uni(cfg);
  constexpr int kThreads = 3;
  constexpr std::uint32_t kPerThread = 150;

  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&uni, t] {
      auto w0 = uni.rank(0).world();
      for (std::uint32_t i = 0; i < kPerThread; ++i) {
        w0.send(1, /*tag=*/t, &i, sizeof i);
      }
    });
    workers.emplace_back([&uni, t] {
      // Per-tag FIFO must survive the lossy fabric in threaded mode too.
      auto w1 = uni.rank(1).world();
      for (std::uint32_t i = 0; i < kPerThread; ++i) {
        std::uint32_t got = ~0u;
        w1.recv(0, t, &got, sizeof got);
        ASSERT_EQ(got, i) << "tag " << t;
      }
    });
  }
  for (auto& w : workers) w.join();

  EXPECT_EQ(uni.rank(1).counters().get(Counter::kMessagesReceived),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(uni.aggregate_counters().get(Counter::kReliabilityErrors), 0u);
}

TEST(Chaos, ExactlyOnceSubmitRingOversubscribed) {
  // Submission-ring stress under a lossy fabric: one instance, dedicated
  // assignment, more sender threads than instances, and a deliberately tiny
  // ring (8 entries) so producers hit every ring path — combining-funnel
  // flushes, full-ring blocking acquires, doorbell escalation — while the
  // reliability layer retransmits around drops. Exactly-once delivery and
  // per-tag FIFO must hold regardless of which path each packet took.
  ScopedChaosEnvClear env;
  Config cfg = lossy_config();
  cfg.num_instances = 1;
  cfg.assignment = cri::Assignment::kDedicated;
  cfg.progress_mode = progress::ProgressMode::kConcurrent;
  cfg.submit_ring_entries = 8;
  Universe uni(cfg);
  constexpr int kThreads = 4;
  constexpr std::uint32_t kPerThread = 150;

  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&uni, t] {
      auto w0 = uni.rank(0).world();
      for (std::uint32_t i = 0; i < kPerThread; ++i) {
        w0.send(1, /*tag=*/t, &i, sizeof i);
      }
    });
    workers.emplace_back([&uni, t] {
      auto w1 = uni.rank(1).world();
      for (std::uint32_t i = 0; i < kPerThread; ++i) {
        std::uint32_t got = ~0u;
        w1.recv(0, t, &got, sizeof got);
        ASSERT_EQ(got, i) << "tag " << t;
      }
    });
  }
  for (auto& w : workers) w.join();

  EXPECT_EQ(uni.rank(1).counters().get(Counter::kMessagesReceived),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(uni.aggregate_counters().get(Counter::kReliabilityErrors), 0u);
}

TEST(Chaos, RendezvousIntegrityUnderCorruption) {
  ScopedChaosEnvClear env;
  Config cfg = lossy_config();
  cfg.faults.corrupt = 0.02;
  cfg.rndv_frag_bytes = 4096;  // many fragments => many fault opportunities
  Universe uni(cfg);
  constexpr int kMessages = 3;
  const std::size_t kBytes = 200 * 1024;  // well past eager_limit

  std::vector<std::byte> out(kBytes);
  for (std::size_t i = 0; i < kBytes; ++i) {
    out[i] = static_cast<std::byte>(i * 131 + 17);
  }

  std::thread sender([&] {
    auto w0 = uni.rank(0).world();
    for (int m = 0; m < kMessages; ++m) {
      w0.send(1, /*tag=*/m, out.data(), out.size());
    }
  });
  auto w1 = uni.rank(1).world();
  for (int m = 0; m < kMessages; ++m) {
    std::vector<std::byte> in(kBytes);
    const Status st = w1.recv(0, m, in.data(), in.size());
    ASSERT_EQ(st.size, kBytes);
    ASSERT_FALSE(st.truncated);
    // Bit-exact despite corrupted fragments on the wire: the checksum
    // rejects them and the retransmit path re-sends clean copies.
    ASSERT_EQ(std::memcmp(in.data(), out.data(), kBytes), 0) << "message " << m;
  }
  sender.join();

  const spc::Snapshot total = uni.aggregate_counters();
  EXPECT_GT(total.get(Counter::kCsumDrops), 0u);
  EXPECT_GT(total.get(Counter::kRetransmits), 0u);
  EXPECT_EQ(total.get(Counter::kReliabilityErrors), 0u);
  EXPECT_GT(uni.fabric().injector()->stats().corrupted.load(), 0u);
}

TEST(Chaos, WatchdogEscalatesStalledInstance) {
  ScopedChaosEnvClear env;
  Config cfg;
  cfg.num_ranks = 2;
  cfg.watchdog_interval_ns = 0;  // sweep on every poll
  cfg.watchdog_stall_sweeps = 2;
  Universe uni(cfg);

  ErrorCapture capture;
  uni.rank(1).set_error_sink(ErrorCapture::sink, &capture);

  // Park a packet in rank 1's RX ring and never progress rank 1: its
  // consumption frontier is frozen with a non-empty backlog — the stall
  // signature the watchdog exists to catch.
  const std::uint32_t payload = 42;
  uni.rank(0).world().send(1, /*tag=*/0, &payload, sizeof payload);

  progress::Watchdog* dog = uni.rank(1).watchdog();
  ASSERT_NE(dog, nullptr);
  for (int i = 0; i < 10; ++i) dog->poll(now_ns());

  EXPECT_GT(dog->stalls_flagged(), 0u);
  EXPECT_GT(uni.rank(1).counters().get(Counter::kWatchdogStalls), 0u);
  EXPECT_TRUE(capture.saw(ErrorCode::kStalledInstance));
}

TEST(Chaos, WatchdogFlagsStalledRendezvous) {
  ScopedChaosEnvClear env;
  Config cfg;
  cfg.num_ranks = 2;
  cfg.watchdog_interval_ns = 0;
  cfg.rndv_stall_ns = 1;  // everything pending is immediately "old"
  Universe uni(cfg);

  ErrorCapture capture;
  uni.rank(0).set_error_sink(ErrorCapture::sink, &capture);

  // A rendezvous send whose RTS the peer never matches (rank 1 never posts
  // a receive or progresses): the transfer is orphaned at the sender.
  std::vector<std::byte> big(64 * 1024);
  Request req;
  uni.rank(0).isend(kWorldComm, 1, /*tag=*/0, big.data(), big.size(), req);
  ASSERT_FALSE(req.done());

  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  progress::Watchdog* dog = uni.rank(0).watchdog();
  ASSERT_NE(dog, nullptr);
  dog->poll(now_ns());

  EXPECT_GT(uni.rank(0).counters().get(Counter::kWatchdogStalls), 0u);
  EXPECT_TRUE(capture.saw(ErrorCode::kStalledRendezvous));
}

TEST(Chaos, SendBudgetExhaustionIsTypedNotLivelock) {
  ScopedChaosEnvClear env;
  Config cfg;
  cfg.num_ranks = 2;
  cfg.fabric.rx_ring_entries = 8;
  cfg.send_retry_limit = 500;  // bounded spin instead of forever
  Universe uni(cfg);

  ErrorCapture capture;
  uni.rank(0).set_error_sink(ErrorCapture::sink, &capture);

  // Fill the peer's only RX ring; it never drains (rank 1 never progresses).
  const std::uint32_t payload = 7;
  std::vector<std::unique_ptr<Request>> reqs;
  bool failed = false;
  for (int i = 0; i < 16 && !failed; ++i) {
    reqs.push_back(std::make_unique<Request>());
    uni.rank(0).isend(kWorldComm, 1, /*tag=*/0, &payload, sizeof payload,
                      *reqs.back());
    ASSERT_TRUE(reqs.back()->done());  // typed failure still completes
    failed = reqs.back()->failed();
  }

  ASSERT_TRUE(failed) << "ring never filled";
  EXPECT_EQ(reqs.back()->error(), ErrorCode::kSendBudgetExhausted);
  EXPECT_GT(uni.rank(0).counters().get(Counter::kReliabilityErrors), 0u);
  EXPECT_GT(uni.rank(0).counters().get(Counter::kSendBackpressure), 0u);
  EXPECT_TRUE(capture.saw(ErrorCode::kSendBudgetExhausted));
}

}  // namespace
}  // namespace fairmpi
