// Boundary-condition tests: payload sizes exactly at the inline/eager/
// rendezvous thresholds, request object reuse, and dissemination barriers
// at non-power-of-two rank counts.
#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

#include "fairmpi/core/universe.hpp"
#include "fairmpi/fabric/wire.hpp"

namespace fairmpi {
namespace {

/// Round-trip one payload of exactly `size` bytes and verify content.
void round_trip(Universe& uni, std::size_t size, int tag) {
  std::vector<std::uint8_t> data(size);
  for (std::size_t i = 0; i < size; ++i) data[i] = static_cast<std::uint8_t>(i * 7 + tag);
  std::vector<std::uint8_t> got(size ? size : 1);

  Request sreq, rreq;
  uni.rank(1).irecv(kWorldComm, 0, tag, got.data(), size, rreq);
  uni.rank(0).isend(kWorldComm, 1, tag, data.data(), size, sreq);
  while (!rreq.done() || !sreq.done()) {
    uni.rank(0).progress();
    uni.rank(1).progress();
  }
  ASSERT_EQ(rreq.status().size, size);
  ASSERT_FALSE(rreq.status().truncated);
  if (size != 0) ASSERT_EQ(std::memcmp(got.data(), data.data(), size), 0);
}

TEST(Boundaries, PayloadSizesAroundEveryStorageThreshold) {
  Config cfg;
  cfg.eager_limit = 4096;
  cfg.rndv_frag_bytes = 4096;
  Universe uni(cfg);
  int tag = 1;
  for (const std::size_t size : {
           std::size_t{0},                      // pure envelope
           fabric::kInlineBytes - 1,            // inline slot
           fabric::kInlineBytes,                // inline boundary
           fabric::kInlineBytes + 1,            // first heap-payload size
           cfg.eager_limit - 1,                 // largest-but-one eager
           cfg.eager_limit,                     // eager boundary (still eager)
           cfg.eager_limit + 1,                 // first rendezvous size
           cfg.rndv_frag_bytes,                 // exactly one fragment
           cfg.rndv_frag_bytes + 1,             // fragment boundary + 1
           3 * cfg.rndv_frag_bytes,             // exact multiple of fragments
       }) {
    SCOPED_TRACE(size);
    round_trip(uni, size, tag++);
  }
}

TEST(Boundaries, RequestObjectReuseAcrossKindsAndOperations) {
  Universe uni(Config{});
  Request req;  // one request object reused for sends and receives
  for (int i = 0; i < 20; ++i) {
    const int v = i;
    uni.rank(0).isend(kWorldComm, 1, 1, &v, sizeof v, req);
    uni.rank(0).wait(req);
    int got = -1;
    uni.rank(1).irecv(kWorldComm, 0, 1, &got, sizeof got, req);  // reuse as recv
    uni.rank(1).wait(req);
    ASSERT_EQ(got, i);
    ASSERT_EQ(req.kind(), Request::Kind::kRecv);
  }
}

class BarrierRankCounts : public ::testing::TestWithParam<int> {};

TEST_P(BarrierRankCounts, DisseminationBarrierNonPowerOfTwo) {
  const int n = GetParam();
  Config cfg;
  cfg.num_ranks = n;
  Universe uni(cfg);
  std::atomic<int> phase_count{0};
  std::vector<std::thread> threads;
  for (int r = 0; r < n; ++r) {
    threads.emplace_back([&, r] {
      for (int phase = 0; phase < 5; ++phase) {
        phase_count.fetch_add(1, std::memory_order_relaxed);
        uni.rank(r).world().barrier();
        // After the barrier, every rank has entered this phase.
        ASSERT_GE(phase_count.load(std::memory_order_relaxed), (phase + 1) * n)
            << "rank " << r << " phase " << phase;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(phase_count.load(), 5 * n);
}

INSTANTIATE_TEST_SUITE_P(Ns, BarrierRankCounts, ::testing::Values(1, 2, 3, 5, 6, 7));

TEST(Boundaries, TruncationAtEveryStorageClass) {
  Config cfg;
  cfg.eager_limit = 1024;
  Universe uni(cfg);
  int tag = 50;
  for (const std::size_t sent_size : {std::size_t{32}, std::size_t{512},
                                      std::size_t{5000}}) {
    SCOPED_TRACE(sent_size);
    std::vector<std::uint8_t> data(sent_size, 0xEE);
    std::uint8_t tiny[8] = {};
    Request sreq, rreq;
    uni.rank(1).irecv(kWorldComm, 0, tag, tiny, sizeof tiny, rreq);
    uni.rank(0).isend(kWorldComm, 1, tag, data.data(), data.size(), sreq);
    while (!rreq.done() || !sreq.done()) {
      uni.rank(0).progress();
      uni.rank(1).progress();
    }
    ASSERT_TRUE(rreq.status().truncated);
    ASSERT_EQ(rreq.status().size, sent_size);
    ASSERT_EQ(tiny[0], 0xEE);  // prefix still delivered
    ++tag;
  }
}

TEST(Boundaries, ZeroCapacityReceiveOfNonEmptyMessage) {
  Universe uni(Config{});
  Request sreq, rreq;
  const int v = 7;
  uni.rank(1).irecv(kWorldComm, 0, 2, nullptr, 0, rreq);
  uni.rank(0).isend(kWorldComm, 1, 2, &v, sizeof v, sreq);
  while (!rreq.done()) uni.rank(1).progress();
  EXPECT_TRUE(rreq.status().truncated);
  EXPECT_EQ(rreq.status().size, sizeof v);
}

}  // namespace
}  // namespace fairmpi
