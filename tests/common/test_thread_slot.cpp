#include "fairmpi/common/thread_slot.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

namespace fairmpi::common {
namespace {

TEST(ThreadSlot, StableWithinAThread) {
  const int a = this_thread_slot();
  const int b = this_thread_slot();
  EXPECT_EQ(a, b);
  ASSERT_NE(a, kNoThreadSlot);
  EXPECT_GE(a, 0);
  EXPECT_LT(a, kMaxThreadSlots);
}

TEST(ThreadSlot, DistinctAmongLiveThreads) {
  constexpr int kThreads = 16;
  std::vector<int> slots(kThreads, kNoThreadSlot);
  std::atomic<int> arrived{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      slots[static_cast<std::size_t>(t)] = this_thread_slot();
      // Keep every thread alive until all have registered, so the registry
      // cannot recycle a slot mid-test and mask an aliasing bug.
      arrived.fetch_add(1, std::memory_order_acq_rel);
      while (arrived.load(std::memory_order_acquire) < kThreads) {
        std::this_thread::yield();
      }
    });
  }
  for (auto& t : threads) t.join();
  std::set<int> unique;
  for (int s : slots) {
    ASSERT_NE(s, kNoThreadSlot);
    EXPECT_TRUE(unique.insert(s).second) << "two live threads shared slot " << s;
  }
}

TEST(ThreadSlot, SlotsAreRecycledAfterThreadExit) {
  // Far more sequential threads than slots: without recycling the registry
  // would exhaust after kMaxThreadSlots and start returning kNoThreadSlot.
  constexpr int kRuns = kMaxThreadSlots + 72;
  for (int i = 0; i < kRuns; ++i) {
    int got = kNoThreadSlot;
    std::thread([&] { got = this_thread_slot(); }).join();
    ASSERT_NE(got, kNoThreadSlot) << "registry leaked slots after " << i << " threads";
  }
}

}  // namespace
}  // namespace fairmpi::common
