#include "fairmpi/common/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace fairmpi {
namespace {

TEST(Table, RendersAlignedCells) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "123456"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| alpha"), std::string::npos);
  EXPECT_NE(out.find("123456"), std::string::npos);
  // All lines equal width.
  std::istringstream is(out);
  std::string line;
  std::size_t width = 0;
  while (std::getline(is, line)) {
    if (width == 0) width = line.size();
    EXPECT_EQ(line.size(), width);
  }
}

TEST(Table, CsvEscapesSpecials) {
  Table t({"a", "b"});
  t.add_row({"x,y", "he said \"hi\""});
  std::ostringstream os;
  t.write_csv(os);
  const std::string csv = os.str();
  EXPECT_NE(csv.find("\"x,y\""), std::string::npos);
  EXPECT_NE(csv.find("\"he said \"\"hi\"\"\""), std::string::npos);
}

TEST(Table, RowWidthMismatchAborts) {
  Table t({"a", "b"});
  EXPECT_DEATH(t.add_row({"only-one"}), "row width");
}

TEST(FormatSi, Scales) {
  EXPECT_EQ(format_si(950, 0), "950");
  EXPECT_EQ(format_si(1500, 1), "1.5 K");
  EXPECT_EQ(format_si(2.5e6), "2.50 M");
  EXPECT_EQ(format_si(3e9, 0), "3 G");
}

TEST(FormatNs, Scales) {
  EXPECT_EQ(format_ns(500), "500 ns");
  EXPECT_EQ(format_ns(2500), "2.50 us");
  EXPECT_EQ(format_ns(3.2e6), "3.20 ms");
  EXPECT_EQ(format_ns(1.5e9), "1.50 s");
}

TEST(SeriesChart, RendersAllSeriesMarkersAndLegend) {
  SeriesChart chart("Test", "x", "y");
  chart.add_series("one", {{0, 1}, {1, 2}, {2, 3}});
  chart.add_series("two", {{0, 3}, {1, 2}, {2, 1}});
  const std::string out = chart.render(40, 10);
  EXPECT_NE(out.find("=== Test ==="), std::string::npos);
  EXPECT_NE(out.find("[*] one"), std::string::npos);
  EXPECT_NE(out.find("[o] two"), std::string::npos);
  EXPECT_NE(out.find('*'), std::string::npos);
  EXPECT_NE(out.find('o'), std::string::npos);
}

TEST(SeriesChart, LogScaleHandlesWideRange) {
  SeriesChart chart("Log", "x", "y");
  chart.set_log_y(true);
  chart.add_series("s", {{1, 1e5}, {2, 1e6}, {3, 1e7}});
  const std::string out = chart.render(40, 10);
  EXPECT_NE(out.find("log-scale"), std::string::npos);
}

TEST(SeriesChart, EmptyChartDoesNotCrash) {
  SeriesChart chart("Empty", "x", "y");
  EXPECT_NE(chart.render().find("(no data)"), std::string::npos);
}

TEST(SeriesChart, CsvLongFormat) {
  SeriesChart chart("T", "x", "y");
  chart.add_series("s1", {{1, 10}, {2, 20}});
  std::ostringstream os;
  chart.write_csv(os);
  EXPECT_EQ(os.str(), "series,x,y\ns1,1,10\ns1,2,20\n");
}

}  // namespace
}  // namespace fairmpi
