#include "fairmpi/common/align.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace fairmpi {
namespace {

TEST(Align, PaddedOccupiesFullCacheLines) {
  EXPECT_EQ(sizeof(Padded<char>) % kCacheLine, 0u);
  EXPECT_EQ(sizeof(Padded<std::uint64_t>) % kCacheLine, 0u);
  struct Big {
    char data[200];
  };
  EXPECT_GE(sizeof(Padded<Big>), sizeof(Big));
  EXPECT_EQ(sizeof(Padded<Big>) % kCacheLine, 0u);
}

TEST(Align, PaddedArrayElementsOnDistinctLines) {
  std::vector<Padded<int>> values(4);
  for (std::size_t i = 1; i < values.size(); ++i) {
    const auto prev = reinterpret_cast<std::uintptr_t>(&values[i - 1].value);
    const auto cur = reinterpret_cast<std::uintptr_t>(&values[i].value);
    EXPECT_GE(cur - prev, kCacheLine);
  }
}

TEST(Align, PaddedAccessors) {
  Padded<int> p(42);
  EXPECT_EQ(*p, 42);
  *p = 7;
  EXPECT_EQ(p.value, 7);
}

TEST(Align, RoundUp) {
  EXPECT_EQ(round_up(0, 64), 0u);
  EXPECT_EQ(round_up(1, 64), 64u);
  EXPECT_EQ(round_up(64, 64), 64u);
  EXPECT_EQ(round_up(65, 64), 128u);
}

TEST(Align, IsPow2) {
  EXPECT_FALSE(is_pow2(0));
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_TRUE(is_pow2(1ull << 40));
  EXPECT_FALSE(is_pow2((1ull << 40) + 1));
}

TEST(Align, NextPow2) {
  EXPECT_EQ(next_pow2(0), 1u);
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(4), 4u);
  EXPECT_EQ(next_pow2(4097), 8192u);
}

}  // namespace
}  // namespace fairmpi
