// Topology probe + topology-aware dedicated placement tests. The sysfs
// probe is pointed at a mocked directory tree (LLC layout, NUMA fallback,
// empty host) and the CriPool claim scan at an injected synthetic topology,
// so the assertions are deterministic on any CI host including 1-CPU
// runners.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "fairmpi/common/topology.hpp"
#include "fairmpi/cri/cri.hpp"
#include "fairmpi/fabric/fabric.hpp"

namespace fairmpi::common {
namespace {

namespace fs = std::filesystem;

TEST(ParseCpuList, RangesSinglesAndMixes) {
  EXPECT_EQ(parse_cpu_list("0-3,8,10-11"), (std::vector<int>{0, 1, 2, 3, 8, 10, 11}));
  EXPECT_EQ(parse_cpu_list("5"), (std::vector<int>{5}));
  EXPECT_EQ(parse_cpu_list("0-1\n"), (std::vector<int>{0, 1}));
  EXPECT_EQ(parse_cpu_list(" 2 , 4 "), (std::vector<int>{2, 4}));
}

TEST(ParseCpuList, MalformedChunksAreSkippedNotFatal) {
  EXPECT_TRUE(parse_cpu_list("").empty());
  EXPECT_TRUE(parse_cpu_list("garbage").empty());
  EXPECT_EQ(parse_cpu_list("bad,3,worse"), (std::vector<int>{3}));
  EXPECT_EQ(parse_cpu_list("1,1,0-1"), (std::vector<int>{0, 1}));  // deduped
}

/// Builds a throwaway sysfs tree under the gtest temp dir. The path is
/// pid-qualified: ctest runs each test case as its own process, so a plain
/// per-process counter would hand concurrently running cases the same tree.
class MockSysfs {
 public:
  MockSysfs() : root_(fs::path(::testing::TempDir()) /
                      ("sysfs_" + std::to_string(::getpid()) + "_" +
                       std::to_string(counter_++))) {
    fs::create_directories(root_);
  }
  ~MockSysfs() {
    std::error_code ec;
    fs::remove_all(root_, ec);
  }

  void write(const std::string& rel, const std::string& content) {
    const fs::path p = root_ / rel;
    fs::create_directories(p.parent_path());
    std::ofstream(p) << content << "\n";
  }

  std::string root() const { return root_.string(); }

 private:
  fs::path root_;
  static inline int counter_ = 0;
};

TEST(ProbeTopology, LlcSharedCpuListsDefineDomains) {
  MockSysfs sys;
  sys.write("devices/system/cpu/online", "0-3");
  // Two LLC domains: {0,1} and {2,3}.
  for (int c : {0, 1}) {
    sys.write("devices/system/cpu/cpu" + std::to_string(c) + "/cache/index3/shared_cpu_list",
              "0-1");
  }
  for (int c : {2, 3}) {
    sys.write("devices/system/cpu/cpu" + std::to_string(c) + "/cache/index3/shared_cpu_list",
              "2-3");
  }
  const CpuTopology topo = probe_topology(sys.root());
  EXPECT_EQ(topo.num_cpus, 4);
  EXPECT_EQ(topo.num_domains, 2);
  EXPECT_EQ(topo.domain_of(0), topo.domain_of(1));
  EXPECT_EQ(topo.domain_of(2), topo.domain_of(3));
  EXPECT_NE(topo.domain_of(0), topo.domain_of(2));
}

TEST(ProbeTopology, FallsBackToNumaNodesWithoutCacheInfo) {
  MockSysfs sys;
  sys.write("devices/system/cpu/online", "0-3");
  sys.write("devices/system/node/node0/cpulist", "0,2");
  sys.write("devices/system/node/node1/cpulist", "1,3");
  const CpuTopology topo = probe_topology(sys.root());
  EXPECT_EQ(topo.num_domains, 2);
  EXPECT_EQ(topo.domain_of(0), topo.domain_of(2));
  EXPECT_EQ(topo.domain_of(1), topo.domain_of(3));
  EXPECT_NE(topo.domain_of(0), topo.domain_of(1));
}

TEST(ProbeTopology, BareHostDegeneratesToSingleDomain) {
  MockSysfs sys;  // no files at all
  const CpuTopology topo = probe_topology(sys.root());
  EXPECT_EQ(topo.num_cpus, 1);
  EXPECT_EQ(topo.num_domains, 1);
  EXPECT_EQ(topo.domain_of(0), 0);
  EXPECT_EQ(topo.domain_of(123), 0);  // out-of-range ids are tolerated
}

TEST(ProbeTopology, OnlineListWithoutDomainInfoIsSingleDomain) {
  MockSysfs sys;
  sys.write("devices/system/cpu/online", "0-7");
  const CpuTopology topo = probe_topology(sys.root());
  EXPECT_EQ(topo.num_cpus, 8);
  EXPECT_EQ(topo.num_domains, 1);
}

TEST(ProbeTopology, SparseOnlineCpusMapUnseenIdsToDomainZero) {
  MockSysfs sys;
  sys.write("devices/system/cpu/online", "0,2");
  sys.write("devices/system/cpu/cpu0/cache/index3/shared_cpu_list", "0");
  sys.write("devices/system/cpu/cpu2/cache/index3/shared_cpu_list", "2");
  const CpuTopology topo = probe_topology(sys.root());
  EXPECT_EQ(topo.num_domains, 2);
  EXPECT_EQ(topo.domain_of(1), 0);  // offline cpu: default domain
}

/// Installs a synthetic topology for the scope of one test.
class ScopedTopology {
 public:
  explicit ScopedTopology(CpuTopology topo) { set_topology_for_testing(std::move(topo)); }
  ~ScopedTopology() { clear_topology_for_testing(); }
};

CpuTopology every_cpu_in_domain(int domain, int num_domains) {
  CpuTopology topo;
  topo.num_cpus = 1024;  // cover any CPU id current_cpu() can return
  topo.num_domains = num_domains;
  topo.cpu_domain.assign(1024, domain);
  return topo;
}

TEST(CriPoolPlacement, InstancesLaidOutRoundRobinAcrossDomains) {
  ScopedTopology topo(every_cpu_in_domain(0, 2));
  fabric::Fabric fab({4});
  cri::CriPool pool(fab, 0, cri::Assignment::kDedicated);
  ASSERT_EQ(pool.size(), 4);
  EXPECT_EQ(pool.instance_domain(0), 0);
  EXPECT_EQ(pool.instance_domain(1), 1);
  EXPECT_EQ(pool.instance_domain(2), 0);
  EXPECT_EQ(pool.instance_domain(3), 1);
}

TEST(CriPoolPlacement, DedicatedClaimPrefersOwnDomainThenOverflows) {
  // Every CPU reports domain 1, so with the i%2 layout the preference
  // order of fresh threads is instance 1, 3 (domain 1) then 0, 2.
  ScopedTopology topo(every_cpu_in_domain(1, 2));
  fabric::Fabric fab({4});
  cri::CriPool pool(fab, 0, cri::Assignment::kDedicated);

  std::vector<int> bound;
  for (int t = 0; t < 4; ++t) {
    std::thread([&] { bound.push_back(pool.dedicated_id()); }).join();
  }
  EXPECT_EQ(bound, (std::vector<int>{1, 3, 0, 2}));

  // Oversubscription: a fifth thread finds every instance claimed and
  // falls back to round-robin — still a valid id.
  int fifth = -1;
  std::thread([&] { fifth = pool.dedicated_id(); }).join();
  EXPECT_GE(fifth, 0);
  EXPECT_LT(fifth, pool.size());
}

TEST(CriPoolPlacement, SingleDomainClaimIsFirstFreeInstance) {
  ScopedTopology topo(every_cpu_in_domain(0, 1));
  fabric::Fabric fab({3});
  cri::CriPool pool(fab, 0, cri::Assignment::kDedicated);
  std::vector<int> bound;
  for (int t = 0; t < 3; ++t) {
    std::thread([&] { bound.push_back(pool.dedicated_id()); }).join();
  }
  EXPECT_EQ(bound, (std::vector<int>{0, 1, 2}));
}

}  // namespace
}  // namespace fairmpi::common
