#include "fairmpi/common/mpsc_ring.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

namespace fairmpi {
namespace {

TEST(MpscRing, CapacityRoundsUpToPow2) {
  MpscRing<int> ring(5);
  EXPECT_EQ(ring.capacity(), 8u);
  MpscRing<int> tiny(0);
  EXPECT_EQ(tiny.capacity(), 2u);
}

TEST(MpscRing, PushPopSingleThread) {
  MpscRing<int> ring(4);
  EXPECT_TRUE(ring.try_push(1));
  EXPECT_TRUE(ring.try_push(2));
  int out = 0;
  EXPECT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 1);
  EXPECT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 2);
  EXPECT_FALSE(ring.try_pop(out));
}

TEST(MpscRing, FullRingRejectsPush) {
  MpscRing<int> ring(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.try_push(i));
  EXPECT_FALSE(ring.try_push(99));
  int out = -1;
  EXPECT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 0);
  EXPECT_TRUE(ring.try_push(99));  // slot freed
}

TEST(MpscRing, FifoOrderPreservedSingleProducer) {
  MpscRing<int> ring(64);
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 50; ++i) ASSERT_TRUE(ring.try_push(round * 100 + i));
    for (int i = 0; i < 50; ++i) {
      int out = -1;
      ASSERT_TRUE(ring.try_pop(out));
      ASSERT_EQ(out, round * 100 + i);
    }
  }
}

TEST(MpscRing, MoveOnlyPayloadOwnershipTransfers) {
  MpscRing<std::unique_ptr<int>> ring(8);
  ASSERT_TRUE(ring.try_push(std::make_unique<int>(42)));
  std::unique_ptr<int> out;
  ASSERT_TRUE(ring.try_pop(out));
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(*out, 42);
}

TEST(MpscRing, SizeApprox) {
  MpscRing<int> ring(8);
  EXPECT_TRUE(ring.empty_approx());
  ring.try_push(1);
  ring.try_push(2);
  EXPECT_EQ(ring.size_approx(), 2u);
  int out;
  ring.try_pop(out);
  EXPECT_EQ(ring.size_approx(), 1u);
}

// Property: with P producers each pushing a disjoint tagged sequence and one
// consumer, every element arrives exactly once and per-producer order holds.
class MpscRingStress : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(MpscRingStress, NoLossNoDuplicationPerProducerFifo) {
  const int producers = std::get<0>(GetParam());
  const int per_producer = std::get<1>(GetParam());
  MpscRing<std::uint64_t> ring(256);

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(producers));
  for (int p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < per_producer; ++i) {
        const std::uint64_t value =
            (static_cast<std::uint64_t>(p) << 32) | static_cast<std::uint32_t>(i);
        while (!ring.try_push(std::uint64_t{value})) {
          std::this_thread::yield();
        }
      }
    });
  }

  std::vector<std::uint32_t> next_expected(static_cast<std::size_t>(producers), 0);
  std::uint64_t received = 0;
  const std::uint64_t total =
      static_cast<std::uint64_t>(producers) * static_cast<std::uint64_t>(per_producer);
  while (received < total) {
    std::uint64_t value = 0;
    if (!ring.try_pop(value)) {
      std::this_thread::yield();
      continue;
    }
    const auto producer = static_cast<std::size_t>(value >> 32);
    const auto index = static_cast<std::uint32_t>(value & 0xffffffffu);
    ASSERT_LT(producer, next_expected.size());
    ASSERT_EQ(index, next_expected[producer]) << "per-producer FIFO violated";
    ++next_expected[producer];
    ++received;
  }
  for (auto& t : threads) t.join();
  std::uint64_t leftover;
  EXPECT_FALSE(ring.try_pop(leftover));
}

INSTANTIATE_TEST_SUITE_P(Shapes, MpscRingStress,
                         ::testing::Values(std::make_tuple(1, 50000),
                                           std::make_tuple(2, 30000),
                                           std::make_tuple(4, 20000),
                                           std::make_tuple(8, 10000)));

}  // namespace
}  // namespace fairmpi
