#include "fairmpi/common/slab_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include "fairmpi/common/align.hpp"
#include "fairmpi/common/mpsc_ring.hpp"

namespace fairmpi::common {
namespace {

struct Payload {
  std::uint64_t a;
  std::uint64_t b;
  Payload(std::uint64_t a_, std::uint64_t b_) : a(a_), b(b_) {}
};

TEST(SlabPool, AcquireConstructsReleaseDestroys) {
  static std::atomic<int> live{0};
  struct Counted {
    Counted() { live.fetch_add(1, std::memory_order_relaxed); }
    ~Counted() { live.fetch_sub(1, std::memory_order_relaxed); }
  };
  SlabPool<Counted> pool(8);
  Counted* c = pool.acquire();
  EXPECT_EQ(live.load(), 1);
  pool.release(c);
  EXPECT_EQ(live.load(), 0);
}

TEST(SlabPool, SteadyStateReusesSlotsWithoutNewSlabs) {
  SlabPool<Payload> pool(/*slab_objects=*/8);
  std::vector<Payload*> live;
  for (std::uint64_t i = 0; i < 8; ++i) live.push_back(pool.acquire(i, i + 1));
  const std::size_t warm = pool.slabs_allocated();
  EXPECT_GE(warm, 1u);
  // Churn well past the slab size: every acquire must be served from the
  // thread cache / global freelist, never a fresh slab.
  for (int round = 0; round < 1000; ++round) {
    for (Payload* p : live) pool.release(p);
    live.clear();
    for (std::uint64_t i = 0; i < 8; ++i) live.push_back(pool.acquire(i, i));
  }
  EXPECT_EQ(pool.slabs_allocated(), warm);
  for (Payload* p : live) pool.release(p);
}

TEST(SlabPool, SlotsAreCacheLineAlignedAndDistinct) {
  SlabPool<Payload> pool(16);
  std::set<Payload*> seen;
  std::vector<Payload*> live;
  for (std::uint64_t i = 0; i < 64; ++i) {
    Payload* p = pool.acquire(i, i);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % kCacheLine, 0u);
    EXPECT_TRUE(seen.insert(p).second) << "slot handed out twice while live";
    live.push_back(p);
  }
  for (Payload* p : live) pool.release(p);
}

// Cross-thread alloc/free: producers acquire objects and hand them through a
// ring to a consumer that validates and releases them — the match engine's
// exact pattern (unexpected nodes are pooled by whichever thread runs the
// matching section, not necessarily the one that allocated). Run under the
// tsan preset this doubles as the data-race check on the global-freelist
// handoff path.
TEST(SlabPool, CrossThreadAcquireReleaseStress) {
  constexpr int kProducers = 4;
  constexpr std::uint64_t kPerProducer = 20000;
  constexpr std::uint64_t kSalt = 0x9e3779b97f4a7c15ull;

  SlabPool<Payload> pool(64);
  MpscRing<Payload*> ring(1024);
  std::atomic<std::uint64_t> verified{0};

  std::thread consumer([&] {
    std::uint64_t got = 0;
    while (got < kProducers * kPerProducer) {
      Payload* p = nullptr;
      if (!ring.try_pop(p)) {
        std::this_thread::yield();
        continue;
      }
      ASSERT_EQ(p->b, p->a ^ kSalt) << "object corrupted across threads";
      pool.release(p);
      ++got;
    }
    verified.store(got, std::memory_order_release);
  });

  std::vector<std::thread> producers;
  for (int t = 0; t < kProducers; ++t) {
    producers.emplace_back([&, t] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        const std::uint64_t v = (static_cast<std::uint64_t>(t) << 32) | i;
        Payload* p = pool.acquire(v, v ^ kSalt);
        while (!ring.try_push(std::move(p))) std::this_thread::yield();
      }
    });
  }
  for (auto& t : producers) t.join();
  consumer.join();
  EXPECT_EQ(verified.load(), kProducers * kPerProducer);
}

}  // namespace
}  // namespace fairmpi::common
