#include "fairmpi/common/cli.hpp"

#include <gtest/gtest.h>

namespace fairmpi {
namespace {

TEST(Cli, DefaultsWhenUnspecified) {
  Cli cli("prog", "test");
  auto& n = cli.opt_int("n", 42, "count");
  auto& s = cli.opt_str("name", "abc", "label");
  auto& f = cli.opt_flag("fast", "go fast");
  EXPECT_EQ(cli.parse_for_test({}), "");
  EXPECT_EQ(*n, 42);
  EXPECT_EQ(*s, "abc");
  EXPECT_FALSE(*f);
}

TEST(Cli, ParsesValues) {
  Cli cli("prog", "test");
  auto& n = cli.opt_int("n", 0, "count");
  auto& d = cli.opt_double("ratio", 1.0, "ratio");
  auto& s = cli.opt_str("name", "", "label");
  auto& f = cli.opt_flag("fast", "go fast");
  EXPECT_EQ(cli.parse_for_test({"--n", "7", "--ratio", "2.5", "--name", "x", "--fast"}), "");
  EXPECT_EQ(*n, 7);
  EXPECT_DOUBLE_EQ(*d, 2.5);
  EXPECT_EQ(*s, "x");
  EXPECT_TRUE(*f);
}

TEST(Cli, EqualsSyntax) {
  Cli cli("prog", "test");
  auto& n = cli.opt_int("n", 0, "count");
  EXPECT_EQ(cli.parse_for_test({"--n=19"}), "");
  EXPECT_EQ(*n, 19);
}

TEST(Cli, IntList) {
  Cli cli("prog", "test");
  auto& sizes = cli.opt_int_list("sizes", {1, 2}, "sizes");
  EXPECT_EQ(cli.parse_for_test({"--sizes", "1,128,1024"}), "");
  ASSERT_EQ((*sizes).size(), 3u);
  EXPECT_EQ((*sizes)[2], 1024);
}

TEST(Cli, Errors) {
  Cli cli("prog", "test");
  cli.opt_int("n", 0, "count");
  cli.opt_flag("fast", "go fast");
  EXPECT_NE(cli.parse_for_test({"--bogus"}), "");
  EXPECT_NE(cli.parse_for_test({"--n"}), "");
  EXPECT_NE(cli.parse_for_test({"--n", "xyz"}), "");
  EXPECT_NE(cli.parse_for_test({"--fast=1"}), "");
  EXPECT_NE(cli.parse_for_test({"positional"}), "");
  EXPECT_EQ(cli.parse_for_test({"--help"}), "help");
}

TEST(Cli, UsageMentionsOptions) {
  Cli cli("prog", "does things");
  cli.opt_int("threads", 4, "thread count");
  const std::string u = cli.usage();
  EXPECT_NE(u.find("--threads"), std::string::npos);
  EXPECT_NE(u.find("thread count"), std::string::npos);
  EXPECT_NE(u.find("does things"), std::string::npos);
}

TEST(Cli, NegativeNumbers) {
  Cli cli("prog", "test");
  auto& n = cli.opt_int("n", 0, "count");
  EXPECT_EQ(cli.parse_for_test({"--n", "-3"}), "");
  EXPECT_EQ(*n, -3);
}

}  // namespace
}  // namespace fairmpi
