#include "fairmpi/common/stats.hpp"

#include <gtest/gtest.h>

namespace fairmpi {
namespace {

TEST(Stats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(Stats, SingleValue) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.stddev(), 0.0);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
}

TEST(Stats, KnownMeanAndStddev) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance of this classic dataset is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(Stats, MergeEqualsCombinedStream) {
  RunningStats a, b, all;
  for (int i = 0; i < 100; ++i) {
    const double x = i * 0.37;
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(Stats, MergeWithEmpty) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(3.0);
  const double mean = a.mean();
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.mean(), mean);
  RunningStats b;
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_EQ(b.mean(), mean);
}

TEST(Stats, RelStddev) {
  RunningStats s;
  s.add(10.0);
  s.add(10.0);
  EXPECT_EQ(s.rel_stddev(), 0.0);
  s.add(13.0);
  EXPECT_GT(s.rel_stddev(), 0.0);
}

TEST(Stats, Percentile) {
  std::vector<double> xs{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 5.5);
  EXPECT_DOUBLE_EQ(percentile({}, 50), 0.0);
  EXPECT_DOUBLE_EQ(percentile({7.0}, 99), 7.0);
}

}  // namespace
}  // namespace fairmpi
