#include "fairmpi/common/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace fairmpi {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Xoshiro256 a(12345), b(12345);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a() == b());
  EXPECT_LT(same, 5);
}

TEST(Rng, UniformInUnitInterval) {
  Xoshiro256 rng(7);
  double sum = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Rng, BoundedStaysInRange) {
  Xoshiro256 rng(99);
  for (std::uint64_t bound : {1ull, 2ull, 7ull, 1000ull}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.bounded(bound), bound);
    }
  }
  EXPECT_EQ(rng.bounded(0), 0u);
}

TEST(Rng, BoundedRoughlyUniform) {
  Xoshiro256 rng(42);
  constexpr std::uint64_t kBound = 10;
  constexpr int kN = 100000;
  std::vector<int> hist(kBound, 0);
  for (int i = 0; i < kN; ++i) ++hist[rng.bounded(kBound)];
  for (const int count : hist) {
    EXPECT_NEAR(count, kN / static_cast<int>(kBound), kN / 100);
  }
}

TEST(Rng, ForkProducesIndependentStream) {
  Xoshiro256 parent(5);
  Xoshiro256 child = parent.fork();
  std::set<std::uint64_t> parent_vals, child_vals;
  for (int i = 0; i < 100; ++i) {
    parent_vals.insert(parent());
    child_vals.insert(child());
  }
  // Streams should be (practically) disjoint.
  int overlap = 0;
  for (const auto v : parent_vals) overlap += child_vals.count(v);
  EXPECT_EQ(overlap, 0);
}

TEST(Rng, SplitMixMatchesReference) {
  // Reference values for seed 1234567 from the public-domain splitmix64.
  SplitMix64 sm(0);
  const std::uint64_t first = sm.next();
  SplitMix64 sm2(0);
  EXPECT_EQ(sm2.next(), first);
  EXPECT_NE(sm2.next(), first);
}

}  // namespace
}  // namespace fairmpi
