#include "fairmpi/common/spinlock.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <thread>
#include <vector>

namespace fairmpi {
namespace {

template <typename Lock>
class LockTest : public ::testing::Test {};

using LockTypes = ::testing::Types<Spinlock, TicketLock>;
TYPED_TEST_SUITE(LockTest, LockTypes);

TYPED_TEST(LockTest, BasicLockUnlock) {
  TypeParam lock;
  lock.lock();
  lock.unlock();
  lock.lock();
  lock.unlock();
}

TYPED_TEST(LockTest, TryLockSucceedsWhenFree) {
  TypeParam lock;
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

TYPED_TEST(LockTest, TryLockFailsWhenHeld) {
  TypeParam lock;
  lock.lock();
  std::atomic<bool> result{true};
  std::thread other([&] { result = lock.try_lock(); });
  other.join();
  EXPECT_FALSE(result.load());
  lock.unlock();
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

TYPED_TEST(LockTest, MutualExclusionUnderContention) {
  TypeParam lock;
  constexpr int kThreads = 4;
  constexpr int kItersPerThread = 20000;
  // Non-atomic counter: any mutual-exclusion violation shows up as a lost
  // update (and as a race under TSan).
  long counter = 0;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kItersPerThread; ++i) {
        std::scoped_lock guard(lock);
        ++counter;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, static_cast<long>(kThreads) * kItersPerThread);
}

TYPED_TEST(LockTest, TryLockMixedWithLock) {
  TypeParam lock;
  constexpr int kThreads = 4;
  constexpr int kIters = 10000;
  long counter = 0;
  std::atomic<long> attempts{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        if (t % 2 == 0) {
          std::scoped_lock guard(lock);
          ++counter;
        } else if (lock.try_lock()) {
          ++counter;
          lock.unlock();
        } else {
          attempts.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  // Every try_lock either incremented or was counted as a failed attempt.
  EXPECT_EQ(counter + attempts.load(), static_cast<long>(kThreads) * kIters);
}

TYPED_TEST(LockTest, FailedTryLockIsEffectFree) {
  // Contract (see Spinlock::try_lock): a FAILED try_lock performs no
  // acquire operation and leaves no trace — no state change, no memory
  // ordering, no queue position. Algorithm 2's sweep try-locks busy
  // sibling instances constantly; any side effect of failure would
  // corrupt either the lock or the happens-before reasoning of the sweep.
  TypeParam lock;
  lock.lock();
  std::thread prober([&] {
    for (int i = 0; i < 1000; ++i) {
      ASSERT_FALSE(lock.try_lock());
    }
  });
  prober.join();
  // The holder's critical section was undisturbed and its unlock is the
  // next state transition: a single try_lock now succeeds immediately.
  // (For TicketLock this proves failed probes consumed no tickets — a
  // consumed ticket would leave serving_ forever behind next_.)
  lock.unlock();
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
  // Repeatable: the lock is back to a pristine handoff cycle.
  lock.lock();
  lock.unlock();
}

TEST(Spinlock, IsLockedReflectsState) {
  Spinlock lock;
  EXPECT_FALSE(lock.is_locked());
  lock.lock();
  EXPECT_TRUE(lock.is_locked());
  lock.unlock();
  EXPECT_FALSE(lock.is_locked());
}

TEST(TicketLock, FifoHandoffOrder) {
  // One holder, two queued waiters that enqueued in a known order must be
  // served in that order.
  TicketLock lock;
  lock.lock();
  std::atomic<int> stage{0};
  std::vector<int> order;
  std::mutex order_mu;

  std::thread first([&] {
    stage = 1;
    lock.lock();
    {
      std::scoped_lock g(order_mu);
      order.push_back(1);
    }
    lock.unlock();
  });
  while (stage.load() != 1) {
  }
  // Give `first` time to actually take its ticket.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  std::thread second([&] {
    stage = 2;
    lock.lock();
    {
      std::scoped_lock g(order_mu);
      order.push_back(2);
    }
    lock.unlock();
  });
  while (stage.load() != 2) {
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  lock.unlock();
  first.join();
  second.join();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 2);
}

}  // namespace
}  // namespace fairmpi
