#!/usr/bin/env python3
"""Golden-fixture runner: proves the lint and lock-graph gates actually fire.

A static gate that has never been seen to fail is indistinguishable from a
gate that cannot fail. Every fixture under tests/lint/fixtures/ embeds its
expected outcome as markers, and this runner asserts the tools produce
EXACTLY that outcome — no missing findings, no extras, no drifted line
numbers:

  // expect: <rule> @ <line>   the tool must report <rule> at <line>
  // expect: clean             the tool must report nothing for this file

Three suites:

  rules/         each file linted individually (lint_concurrency.py with the
                 repo root, explicit path), exercising bare-lock,
                 relaxed-sync (incl. the statement-level adjacency upgrade),
                 unranked-mutex, and allow-without-reason.

  hotpath_tree/  a miniature source tree whose files pose as hot-path files
                 (path-keyed rules), linted with --root at the tree so
                 hotpath-alloc and no-tsa-hotpath fire.

  lockgraph_*/   miniature trees fed to lock_graph.py, one producing a
                 lock-order cycle (same-rank locks taken in both orders) and
                 one a rank inversion — each must exit 1 with that exact
                 violation kind.

tsa/ is NOT run here: its fixture is a GUARDED_BY violation that must fail
to *compile* under clang -Werror=thread-safety, which only CI has a clang
for (see .github/workflows/ci.yml).

Exit status: 0 all fixtures behave, 1 any deviation, 2 setup error.
"""

from __future__ import annotations

import pathlib
import re
import subprocess
import sys

HERE = pathlib.Path(__file__).resolve().parent
REPO = HERE.parent.parent
FIXTURES = HERE / "fixtures"
TOOLS = REPO / "tools"

EXPECT_RE = re.compile(r"//\s*expect:\s*(?P<rule>[\w-]+)(?:\s*@\s*(?P<line>\d+))?")
FINDING_RE = re.compile(r"^(?P<path>[^:]+):(?P<line>\d+): \[(?P<rule>[\w-]+)\]")

failures: list[str] = []


def fail(msg: str) -> None:
    failures.append(msg)
    print(f"FAIL: {msg}")


def expectations(path: pathlib.Path) -> set[tuple[str, int]]:
    """Parse expect markers; 'clean' means the empty set (and must be the
    only marker in the file)."""
    expected: set[tuple[str, int]] = set()
    clean = False
    for m in EXPECT_RE.finditer(path.read_text()):
        if m.group("rule") == "clean":
            clean = True
        else:
            if m.group("line") is None:
                raise SystemExit(f"{path}: expect marker without '@ <line>'")
            expected.add((m.group("rule"), int(m.group("line"))))
    if clean and expected:
        raise SystemExit(f"{path}: mixes 'expect: clean' with findings")
    if not clean and not expected:
        raise SystemExit(f"{path}: no expect markers at all")
    return expected


def run(cmd: list[str]) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, *cmd], capture_output=True, text=True, cwd=REPO
    )


def parse_findings(stdout: str) -> set[tuple[str, str, int]]:
    out = set()
    for line in stdout.splitlines():
        m = FINDING_RE.match(line)
        if m:
            out.add((m.group("path"), m.group("rule"), int(m.group("line"))))
    return out


def check_lint(name: str, cmd: list[str],
               expected_by_file: dict[pathlib.Path, set[tuple[str, int]]]) -> None:
    proc = run(cmd)
    # Findings print resolved paths; compare on (suffix-matched path, rule, line).
    got = parse_findings(proc.stdout)
    matched: set[tuple[str, str, int]] = set()
    n_expected = 0
    for path, exps in expected_by_file.items():
        for rule, line in exps:
            n_expected += 1
            hit = [g for g in got if g[0].endswith(path.name)
                   and g[1] == rule and g[2] == line]
            if hit:
                matched.update(hit)
            else:
                fail(f"{name}: missing expected [{rule}] @ {path.name}:{line}")
    for p, r, l in sorted(got - matched):
        fail(f"{name}: unexpected finding [{r}] {p}:{l}")
    want_exit = 1 if n_expected else 0
    if proc.returncode != want_exit:
        fail(f"{name}: exit {proc.returncode}, wanted {want_exit}\n"
             f"stdout: {proc.stdout}stderr: {proc.stderr}")


def suite_rules() -> None:
    rules_dir = FIXTURES / "rules"
    files = sorted(p for p in rules_dir.iterdir()
                   if p.suffix in (".cpp", ".hpp", ".h"))
    if not files:
        raise SystemExit(f"no fixtures under {rules_dir}")
    for f in files:
        check_lint(
            f"rules/{f.name}",
            [str(TOOLS / "lint_concurrency.py"), "--root", str(REPO), str(f)],
            {f: expectations(f)},
        )
    print(f"suite rules: {len(files)} fixtures")


def suite_hotpath() -> None:
    tree = FIXTURES / "hotpath_tree"
    files = sorted(tree.rglob("*.cpp")) + sorted(tree.rglob("*.hpp"))
    expected_by_file = {f: expectations(f) for f in files}
    check_lint(
        "hotpath_tree",
        [str(TOOLS / "lint_concurrency.py"), "--root", str(tree)],
        expected_by_file,
    )
    print(f"suite hotpath_tree: {len(files)} fixtures")


def suite_lockgraph() -> None:
    cases = {
        "lockgraph_cycle": "cycle",
        "lockgraph_inversion": "rank-inversion",
    }
    for tree_name, kind in cases.items():
        tree = FIXTURES / tree_name
        proc = run([str(TOOLS / "lock_graph.py"), "--root", str(tree)])
        if proc.returncode != 1:
            fail(f"{tree_name}: exit {proc.returncode}, wanted 1 (violations)\n"
                 f"stderr: {proc.stderr}")
            continue
        kinds = re.findall(r"VIOLATION \[([\w-]+)\]", proc.stderr)
        if kinds != [kind]:
            fail(f"{tree_name}: violation kinds {kinds}, wanted ['{kind}']\n"
                 f"stderr: {proc.stderr}")
    print(f"suite lockgraph: {len(cases)} fixtures")


def main() -> int:
    if not FIXTURES.is_dir():
        print(f"run_lint_fixtures: no such dir: {FIXTURES}", file=sys.stderr)
        return 2
    suite_rules()
    suite_hotpath()
    suite_lockgraph()
    if failures:
        print(f"run_lint_fixtures: {len(failures)} failure(s)", file=sys.stderr)
        return 1
    print("run_lint_fixtures: all fixtures behave")
    return 0


if __name__ == "__main__":
    sys.exit(main())
