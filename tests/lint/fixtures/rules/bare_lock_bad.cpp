// Fixture: a bare lock()/unlock() statement pair outside RAII.
// expect: bare-lock @ 8
// expect: bare-lock @ 10
struct L { void lock(); void unlock(); };
L mu;
int g;
void touch() {
  mu.lock();
  ++g;
  mu.unlock();
}
